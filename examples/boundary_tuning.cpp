// Boundary tuning example: the paper's third claimed benefit — users can
// trade PI cost against the guaranteed privacy level by tuning the DINA
// failure threshold sigma. This example runs Algorithm 1 at several
// thresholds on AlexNet and shows how the boundary, accuracy and
// end-to-end cost move together.
//
// Build & run:  ./build/examples/boundary_tuning

#include <cstdio>

#include "attack/inverse.hpp"
#include "nn/zoo.hpp"
#include "nn/trainer.hpp"
#include "pi/c2pi.hpp"

int main() {
    using namespace c2pi;
    std::printf("=== Tuning the privacy threshold sigma ===\n\n");

    auto dcfg = data::DatasetConfig::cifar10_like();
    dcfg.image_size = 16;
    dcfg.train_size = 256;
    dcfg.test_size = 96;
    data::SyntheticImageDataset dataset(dcfg);

    nn::ModelConfig mcfg;
    mcfg.width_multiplier = 0.1F;
    mcfg.input_hw = 16;
    nn::Graph model = nn::zoo::build("alexnet", mcfg);
    nn::TrainConfig tcfg;
    tcfg.epochs = 12;
    tcfg.lr = 0.01F;
    tcfg.momentum = 0.9F;
    const auto rep = nn::train_classifier(model, dataset, tcfg);
    std::printf("AlexNet baseline accuracy: %.1f%%\n\n", 100.0 * rep.final_test_accuracy);

    attack::InverseConfig dina_cfg;
    dina_cfg.epochs = 5;
    dina_cfg.train_samples = 96;
    const attack::IdpaFactory dina = [&] {
        return std::make_unique<attack::InverseNetAttack>(attack::InverseKind::kDistilled,
                                                          dina_cfg);
    };

    const Tensor input = dataset.test()[0].image.reshaped({1, 3, 16, 16});

    // Full-PI reference cost.
    pi::C2piOptions base;
    base.backend = pi::PiBackend::kCheetah;
    base.he_ring_degree = 1024;
    const pi::CompiledModel full(model,
                                 {.input_chw = {3, 16, 16}, .he_ring_degree = base.he_ring_degree});
    const auto full_res =
        pi::run_private_inference(full, pi::SessionConfig{.backend = base.backend}, input);
    const double full_wan = full_res.stats.latency_seconds(net::NetworkModel::wan());
    const double full_mb = static_cast<double>(full_res.stats.total_bytes()) / (1024.0 * 1024.0);
    std::printf("%8s  %10s  %10s  %12s  %12s\n", "sigma", "boundary", "accuracy", "WAN latency",
                "comm");
    std::printf("%8s  %10s  %10.1f%%  %9.3fs   %9.2f MB   (full PI reference)\n", "-", "full",
                100.0 * rep.final_test_accuracy, full_wan, full_mb);

    for (const double sigma : {0.5, 0.3, 0.2}) {
        pi::C2piOptions opts = base;
        opts.boundary.ssim_threshold = sigma;
        opts.boundary.noise_lambda = 0.1F;
        opts.boundary.max_accuracy_drop = 0.025;
        opts.boundary.attack_eval_samples = 6;
        pi::C2piSystem system(model, dataset, dina, opts);
        const auto res = system.infer(input);
        const double wan = res.stats.latency_seconds(net::NetworkModel::wan());
        const double mb = static_cast<double>(res.stats.total_bytes()) / (1024.0 * 1024.0);
        std::printf("%8.1f  %10.1f  %10.1f%%  %9.3fs   %9.2f MB   (%.2fx faster, %.2fx less comm)\n",
                    sigma, system.boundary().boundary.as_decimal(),
                    100.0 * system.boundary().boundary_accuracy, wan, mb, full_wan / wan,
                    full_mb / mb);
        std::fflush(stdout);
    }

    std::printf(
        "\nHigher sigma tolerates lower-quality recoveries -> earlier boundary -> more\n"
        "savings; sigma -> 0 recovers full PI. Existing PI frameworks are the special\n"
        "case of C2PI with the boundary at the last layer (paper Section I).\n");
    return 0;
}
