// pi_client: the input owner's half of a real two-process deployment —
// a WEIGHTLESS client.
//
// Connects to a running pi_server over localhost TCP, receives the
// public pi::ModelArtifact the server ships at session start (layer
// plan, boundary, fixed-point format, BFV parameters — never weights),
// compiles a pi::ClientModel from it, runs one private inference with
// pi::ClientSession over net::TcpTransport, and prints the prediction
// plus the per-phase traffic accounting. The only model-derived data
// this process ever holds arrives via the wire artifact.
//
//   ./build/examples/pi_client [--host H] [--port P]
//                              [--backend delphi|cheetah] [--noise L]
//                              [--input-seed N] [--check --with-model]
//
// Exit codes: 0 success, 1 failed check, 2 usage, 3 server at capacity
// (the server's serving pool answered with the typed BUSY frame — retry
// later; this is load shedding, not an error in either binary).
//
// --check audits the private result against plaintext inference, which
// requires a local copy of the reference model: it must be paired with
// --with-model (the CI smoke test runs both a weightless client and a
// checking one). --check without --with-model fails up front — the
// default client has no weights to check against, by design.
//
// Peer binary: examples/pi_server.cpp. Wire format: docs/PROTOCOL.md.

#include <cmath>
#include <cstdio>

#include "core/stopwatch.hpp"
#include "net/tcp.hpp"
#include "remote_common.hpp"

int main(int argc, char** argv) {
    using namespace c2pi;

    demo::RemoteOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (!demo::parse_remote_flag(argc, argv, i, opts)) {
            std::fprintf(stderr,
                         "usage: pi_client [--host H] [--port P]\n"
                         "                 [--backend delphi|cheetah] [--nonlinear gc|ot|fss]\n"
                         "                 [--noise L] [--input-seed N] [--check --with-model]\n");
            return 2;
        }
    }
    if (opts.check && !opts.with_model) {
        std::fprintf(stderr,
                     "pi_client: --check needs a local reference model to compare against; "
                     "pass --with-model to opt into holding the demo weights\n");
        return 2;
    }

    std::printf("connecting to %s:%u ...\n", opts.host.c_str(), opts.port);
    auto transport = net::connect(opts.host, opts.port, /*timeout_ms=*/30'000);
    transport->set_recv_timeout(120'000);

    // Session bootstrap: the server ships its public artifact first — or
    // a BUSY frame if its serving pool is saturated.
    std::vector<std::uint8_t> artifact_bytes;
    try {
        artifact_bytes = transport->recv_artifact_bytes();
    } catch (const net::ServerBusy& e) {
        std::fprintf(stderr, "pi_client: %s\n", e.what());
        return 3;
    }
    const pi::ModelArtifact artifact = pi::ModelArtifact::deserialize(artifact_bytes);
    std::printf("model artifact: %zu bytes (%lld crypto + %lld clear linear ops, %s)   "
                "nonlinear backend: %s\n",
                artifact_bytes.size(), static_cast<long long>(artifact.crypto_linear_ops()),
                static_cast<long long>(artifact.hidden_linear_ops()),
                artifact.full_pi ? "full PI" : "crypto-clear",
                opts.session.nonlinear.has_value()
                    ? pi::nonlinear_name(*opts.session.nonlinear)
                    : "server's choice");
    const pi::ClientModel client_model(artifact);
    const pi::ClientSession session(client_model, opts.session);

    // The input shape, too, comes from the artifact — nothing about the
    // deployment is hard-coded into the input owner's binary.
    Shape input_shape{1};
    input_shape.insert(input_shape.end(), artifact.input_chw.begin(),
                       artifact.input_chw.end());
    Rng input_rng(opts.input_seed);
    const Tensor input = Tensor::uniform(input_shape, input_rng, 0.0F, 1.0F);

    Stopwatch watch;
    const Tensor logits = session.run(*transport, input);
    auto stats = pi::stats_from_channel(transport->stats());
    stats.wall_seconds = watch.seconds();
    transport->close();

    std::int64_t predicted = 0;
    for (std::int64_t j = 1; j < logits.dim(1); ++j)
        if (logits[j] > logits[predicted]) predicted = j;
    std::printf("predicted class: %lld   (%.3f s end-to-end)\n",
                static_cast<long long>(predicted), stats.wall_seconds);
    demo::print_stats(stats);

    if (opts.check) {
        // Opt-in audit path (--with-model): reconstruct the demo model
        // locally and compare against plaintext inference. The weights
        // exist only on this side branch — the protocol above never saw
        // them.
        const nn::Sequential model = demo::make_demo_model();
        const Tensor want = model.infer(input);
        float max_diff = 0.0F;
        for (std::int64_t i = 0; i < want.numel(); ++i)
            max_diff = std::max(max_diff, std::fabs(logits[i] - want[i]));
        const float tolerance = 0.05F + opts.session.noise_lambda;
        if (!(max_diff <= tolerance)) {
            std::printf("CHECK FAILED: max |logit delta| = %.4f > %.4f\n", max_diff, tolerance);
            return 1;
        }
        std::printf("CHECK OK: max |logit delta| = %.4f\n", max_diff);
    }
    return 0;
}
