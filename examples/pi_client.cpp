// pi_client: the input owner's half of a real two-process deployment.
//
// Connects to a running pi_server over localhost TCP, runs one private
// inference with pi::ClientSession over net::TcpTransport, and prints
// the prediction plus the per-phase traffic accounting.
//
//   ./build/examples/pi_client [--host H] [--port P] [--full-pi]
//                              [--backend delphi|cheetah] [--noise L]
//                              [--input-seed N] [--check]
//
// --check recomputes the logits with plaintext inference on the (shared)
// demo model and fails unless the private result matches within
// fixed-point tolerance — this is what the CI smoke test asserts across
// two real OS processes.
//
// Peer binary: examples/pi_server.cpp. Wire format: docs/PROTOCOL.md.

#include <cmath>
#include <cstdio>

#include "core/stopwatch.hpp"
#include "net/tcp.hpp"
#include "remote_common.hpp"

int main(int argc, char** argv) {
    using namespace c2pi;

    demo::RemoteOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (!demo::parse_remote_flag(argc, argv, i, opts)) {
            std::fprintf(stderr,
                         "usage: pi_client [--host H] [--port P] [--full-pi]\n"
                         "                 [--backend delphi|cheetah] [--noise L]\n"
                         "                 [--input-seed N] [--check]\n");
            return 2;
        }
    }

    const nn::Sequential model = demo::make_demo_model();
    // Input-owner artifact: skip the server-side weight-NTT precompute —
    // the client side of the protocol only uses encoder geometry.
    auto compile_opts = demo::demo_compile_options(opts.full_pi);
    compile_opts.server_precompute = false;
    const pi::CompiledModel compiled(model, compile_opts);
    const pi::ClientSession session(compiled, opts.session);

    Rng input_rng(opts.input_seed);
    const Tensor input = Tensor::uniform({1, 3, 16, 16}, input_rng, 0.0F, 1.0F);

    std::printf("connecting to %s:%u ...\n", opts.host.c_str(), opts.port);
    auto transport = net::connect(opts.host, opts.port, /*timeout_ms=*/30'000);
    transport->set_recv_timeout(120'000);

    Stopwatch watch;
    const Tensor logits = session.run(*transport, input);
    auto stats = pi::stats_from_channel(transport->stats());
    stats.wall_seconds = watch.seconds();
    transport->close();

    std::int64_t predicted = 0;
    for (std::int64_t j = 1; j < logits.dim(1); ++j)
        if (logits[j] > logits[predicted]) predicted = j;
    std::printf("predicted class: %lld   (%.3f s end-to-end)\n",
                static_cast<long long>(predicted), stats.wall_seconds);
    demo::print_stats(stats);

    if (opts.check) {
        // The demo client holds the full model (see remote_common.hpp),
        // so it can audit the private result against plaintext inference.
        const Tensor want = model.infer(input);
        float max_diff = 0.0F;
        for (std::int64_t i = 0; i < want.numel(); ++i)
            max_diff = std::max(max_diff, std::fabs(logits[i] - want[i]));
        const float tolerance = 0.05F + opts.session.noise_lambda;
        if (!(max_diff <= tolerance)) {
            std::printf("CHECK FAILED: max |logit delta| = %.4f > %.4f\n", max_diff, tolerance);
            return 1;
        }
        std::printf("CHECK OK: max |logit delta| = %.4f\n", max_diff);
    }
    return 0;
}
