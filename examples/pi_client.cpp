// pi_client: the input owner's half of a real two-process deployment —
// a WEIGHTLESS client.
//
// Connects to a running pi_server over localhost TCP, runs the
// digest-first artifact bootstrap (docs/PROTOCOL.md §3) — receiving the
// public pi::ModelArtifact unless a previous run of this process cached
// it — compiles a pi::ClientModel, runs one or more private inferences
// with pi::ClientSession over net::TcpTransport, and prints the
// prediction plus the per-phase traffic accounting. The only
// model-derived data this process ever holds arrives via the wire
// artifact.
//
//   ./build/examples/pi_client [--host H] [--port P]
//                              [--backend delphi|cheetah] [--noise L]
//                              [--input-seed N] [--check --with-model]
//                              [--retries N] [--retry-backoff MS]
//                              [--runs N] [--pin HEXDIGEST] [--stall-ms MS]
//
// Exit codes (scripts depend on these — keep them stable):
//   0  success
//   1  --check audit failed (logits diverged from plaintext inference)
//   2  usage error
//   3  admission exhausted: every attempt ended in the server's typed
//      BUSY frame or a connect failure (load shedding, not a bug;
//      --retries N with capped-exponential backoff spreads attempts)
//   4  protocol failure (peer closed mid-protocol, recv timeout, codec
//      violation) — by the §9 safety rule these are NEVER auto-retried:
//      a run that may have sent input-dependent traffic must restart,
//      not resume
//   5  artifact swap detected: the server's announced digest does not
//      match --pin (or a digest learned by an earlier --runs iteration)
//
// --runs N performs N inferences over N sessions sharing one
// pi::ArtifactCache: the first run ships the artifact, later runs
// advertise its digest and resume weightless with zero artifact bytes
// ("artifact cache hit"). Each run pins the digest of the first, so a
// server swap mid-sequence exits 5. --stall-ms is a chaos hook: sleep
// that long after connecting before the bootstrap reply, to exercise the
// server's handshake deadline from the outside (scripts/smoke_chaos.sh).
//
// Peer binary: examples/pi_server.cpp. Wire format: docs/PROTOCOL.md.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "core/stopwatch.hpp"
#include "net/tcp.hpp"
#include "pi/bootstrap.hpp"
#include "pi/retry.hpp"
#include "remote_common.hpp"

int main(int argc, char** argv) {
    using namespace c2pi;

    demo::RemoteOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (!demo::parse_remote_flag(argc, argv, i, opts)) {
            std::fprintf(stderr,
                         "usage: pi_client [--host H] [--port P]\n"
                         "                 [--model demo|alexnet|vgg16|vgg19|resnet9|resnet18]\n"
                         "                 [--backend delphi|cheetah] [--nonlinear gc|ot|fss]\n"
                         "                 [--noise L] [--no-pipeline] [--input-seed N]\n"
                         "                 [--check --with-model]\n"
                         "                 [--retries N] [--retry-backoff MS] [--runs N]\n"
                         "                 [--pin HEXDIGEST] [--stall-ms MS]\n");
            return 2;
        }
    }
    if (opts.check && !opts.with_model) {
        std::fprintf(stderr,
                     "pi_client: --check needs a local reference model to compare against; "
                     "pass --with-model to opt into holding the demo weights\n");
        return 2;
    }
    if (opts.retries < 1 || opts.runs < 1) {
        std::fprintf(stderr, "pi_client: --retries and --runs must be >= 1\n");
        return 2;
    }

    pi::RetryPolicy policy;
    policy.max_attempts = opts.retries;
    policy.initial_backoff_ms = opts.retry_backoff_ms;
    policy.jitter_seed = opts.input_seed;  // deterministic per client identity

    pi::ArtifactCache cache;
    std::optional<pi::ArtifactDigest> pinned;
    if (!opts.pin.empty()) {
        try {
            pinned = pi::digest_from_hex(opts.pin);
        } catch (const Error& e) {
            std::fprintf(stderr, "pi_client: bad --pin value: %s\n", e.what());
            return 2;
        }
    }

    for (int run_index = 0; run_index < opts.runs; ++run_index) {
        try {
            const auto outcome = pi::with_admission_retry(policy, [&] {
                std::printf("connecting to %s:%u ...\n", opts.host.c_str(), opts.port);
                auto transport = net::connect(opts.host, opts.port, /*timeout_ms=*/30'000);
                transport->set_recv_timeout(120'000);
                if (opts.stall_ms > 0)  // chaos hook: look like a bootstrap laggard
                    std::this_thread::sleep_for(std::chrono::milliseconds(opts.stall_ms));

                // Digest-first bootstrap: a cache hit resumes weightless
                // with zero artifact bytes; a pin mismatch is a typed
                // ArtifactSwap before any protocol traffic.
                const pi::Bootstrap boot = pi::fetch_artifact(*transport, &cache, pinned);
                const pi::ModelArtifact& artifact = boot.model->artifact();
                if (boot.from_cache) {
                    std::printf("artifact cache hit (%s...): resumed weightless, 0 bytes shipped\n",
                                pi::digest_hex(boot.digest).substr(0, 16).c_str());
                } else {
                    std::printf(
                        "model artifact: %zu bytes, digest %s... "
                        "(%lld crypto + %lld clear linear ops, %s)   "
                        "nonlinear backend: %s\n",
                        artifact.serialize().size(),
                        pi::digest_hex(boot.digest).substr(0, 16).c_str(),
                        static_cast<long long>(artifact.crypto_linear_ops()),
                        static_cast<long long>(artifact.hidden_linear_ops()),
                        artifact.full_pi ? "full PI" : "crypto-clear",
                        opts.session.nonlinear.has_value()
                            ? pi::nonlinear_name(*opts.session.nonlinear)
                            : "server's choice");
                }
                const pi::ClientSession session(*boot.model, opts.session);

                // The input shape, too, comes from the artifact — nothing
                // about the deployment is hard-coded into this binary.
                Shape input_shape{1};
                input_shape.insert(input_shape.end(), artifact.input_chw.begin(),
                                   artifact.input_chw.end());
                Rng input_rng(opts.input_seed + static_cast<std::uint64_t>(run_index));
                const Tensor input = Tensor::uniform(input_shape, input_rng, 0.0F, 1.0F);

                Stopwatch watch;
                Tensor logits = session.run(*transport, input);
                auto stats = pi::stats_from_transport(*transport);
                stats.wall_seconds = watch.seconds();
                transport->close();
                return std::make_tuple(std::move(logits), stats, boot.digest, input);
            });
            const auto& [logits, stats, digest, input] = outcome;
            pinned = digest;  // later runs must see the same model

            std::int64_t predicted = 0;
            for (std::int64_t j = 1; j < logits.dim(1); ++j)
                if (logits[j] > logits[predicted]) predicted = j;
            std::printf("predicted class: %lld   (%.3f s end-to-end)\n",
                        static_cast<long long>(predicted), stats.wall_seconds);
            demo::print_stats(stats);

            if (opts.check) {
                // Opt-in audit path (--with-model): reconstruct the served
                // model locally and compare against plaintext inference.
                // The weights exist only on this side branch — the
                // protocol above never saw them. --model must match the
                // server's choice for the audit to be meaningful.
                const nn::Graph model = demo::make_remote_model(opts.model);
                const Tensor want = model.infer(input);
                float max_diff = 0.0F;
                for (std::int64_t i = 0; i < want.numel(); ++i)
                    max_diff = std::max(max_diff, std::fabs(logits[i] - want[i]));
                const float tolerance = 0.05F + opts.session.noise_lambda;
                if (!(max_diff <= tolerance)) {
                    std::printf("CHECK FAILED: max |logit delta| = %.4f > %.4f\n", max_diff,
                                tolerance);
                    return 1;
                }
                std::printf("CHECK OK: max |logit delta| = %.4f\n", max_diff);
            }
        } catch (const pi::ArtifactSwap& e) {
            std::fprintf(stderr, "pi_client: %s\n", e.what());
            return 5;
        } catch (const net::ServerBusy& e) {
            std::fprintf(stderr, "pi_client: admission exhausted after %d attempts: %s\n",
                         opts.retries, e.what());
            return 3;
        } catch (const net::ConnectFailed& e) {
            std::fprintf(stderr, "pi_client: admission exhausted after %d attempts: %s\n",
                         opts.retries, e.what());
            return 3;
        } catch (const std::exception& e) {
            std::fprintf(stderr, "pi_client: protocol failure (not retried — restart the "
                                 "inference): %s\n",
                         e.what());
            return 4;
        }
    }
    return 0;
}
