// Scenario example: privacy-preserving medical image triage — the use
// case the paper's introduction motivates (a patient's sensitive image, a
// hospital's proprietary model). Compares full PI against C2PI at two
// privacy levels on the same "scan", reporting the latency/communication
// trade-off and what each party learned.
//
// Build & run:  ./build/examples/private_diagnosis

#include <cstdio>

#include "nn/zoo.hpp"
#include "nn/trainer.hpp"
#include "pi/c2pi.hpp"

namespace {

using namespace c2pi;

void report(const char* name, const pi::PiResult& res, const pi::PiResult* baseline) {
    const double lan = res.stats.latency_seconds(net::NetworkModel::lan());
    const double wan = res.stats.latency_seconds(net::NetworkModel::wan());
    const double mb = static_cast<double>(res.stats.total_bytes()) / (1024.0 * 1024.0);
    std::printf("  %-22s LAN %7.3fs  WAN %7.3fs  comm %8.2f MB", name, lan, wan, mb);
    if (baseline != nullptr) {
        std::printf("  (%.2fx faster WAN, %.2fx less comm)",
                    baseline->stats.latency_seconds(net::NetworkModel::wan()) / wan,
                    static_cast<double>(baseline->stats.total_bytes()) /
                        static_cast<double>(res.stats.total_bytes()));
    }
    std::printf("\n");
    std::printf("  %-22s architecture visible to patient: %lld of %lld linear ops\n", "",
                static_cast<long long>(res.crypto_linear_ops),
                static_cast<long long>(res.crypto_linear_ops + res.hidden_linear_ops));
}

}  // namespace

int main() {
    std::printf("=== Private diagnosis: hospital model, patient scan ===\n\n");

    // The "hospital" trains a VGG-style classifier on its dataset.
    auto dcfg = data::DatasetConfig::cifar10_like();
    dcfg.image_size = 32;
    dcfg.train_size = 384;
    dcfg.test_size = 96;
    data::SyntheticImageDataset scans(dcfg);

    nn::ModelConfig mcfg;
    mcfg.width_multiplier = 0.1F;
    mcfg.input_hw = 32;
    nn::Graph model = nn::zoo::build("vgg16", mcfg);
    std::printf("Training the hospital's VGG16 classifier ...\n");
    nn::TrainConfig tcfg;
    tcfg.epochs = 8;
    tcfg.lr = 0.01F;
    tcfg.momentum = 0.95F;
    const auto rep = nn::train_classifier(model, scans, tcfg);
    std::printf("  diagnostic accuracy: %.1f%%\n\n", 100.0 * rep.final_test_accuracy);

    const Tensor scan = scans.test()[3].image.reshaped({1, 3, 32, 32});

    // Full PI baseline: every layer under MPC (the paper's special case of
    // C2PI with the boundary at the last layer). The model is compiled
    // exactly once per boundary; sessions then serve against the const
    // artifact.
    const pi::SessionConfig cheetah{.backend = pi::PiBackend::kCheetah};
    std::printf("Full private inference (Cheetah backend) ...\n");
    const pi::CompiledModel full(model, {.input_chw = {3, 32, 32}});
    const auto full_res = pi::run_private_inference(full, cheetah, scan);
    report("full PI", full_res, nullptr);

    // C2PI at two privacy levels (boundaries as Algorithm 1 would pick for
    // sigma=0.2 / 0.3 — precomputed here to keep the example quick; see
    // examples/boundary_tuning.cpp and bench/fig8 for the live search).
    for (const auto& [label, cut] :
         {std::pair<const char*, nn::CutPoint>{"C2PI (conservative)",
                                               {.linear_index = 10, .after_relu = false}},
          std::pair<const char*, nn::CutPoint>{"C2PI (aggressive)",
                                               {.linear_index = 6, .after_relu = false}}}) {
        std::printf("%s: crypto layers up to conv %.1f ...\n", label, cut.as_decimal());
        const pi::CompiledModel compiled(model, {.input_chw = {3, 32, 32}, .boundary = cut});
        pi::SessionConfig config = cheetah;
        config.noise_lambda = 0.1F;
        const auto res = pi::run_private_inference(compiled, config, scan);
        report(label, res, &full_res);

        // Both settings must agree with full PI on the diagnosis.
        std::int64_t pred_full = 0, pred_c2pi = 0;
        for (std::int64_t j = 1; j < full_res.logits.dim(1); ++j) {
            if (full_res.logits[j] > full_res.logits[pred_full]) pred_full = j;
            if (res.logits[j] > res.logits[pred_c2pi]) pred_c2pi = j;
        }
        std::printf("  diagnosis agrees with full PI: %s\n\n",
                    pred_full == pred_c2pi ? "yes" : "NO (noise flipped the class)");
    }

    std::printf("What each party learned:\n");
    std::printf("  patient : the diagnosis + the crypto-layer architecture only\n");
    std::printf("  hospital: the (noised) boundary activation — IDPA-resistant by\n");
    std::printf("            Algorithm 1's choice of boundary — and nothing else\n");
    return 0;
}
