#pragma once

// Shared setup for the two-process deployment demo (pi_server/pi_client).
//
// Only the SERVER constructs the demo model: the deployed client is
// weightless — it receives the public pi::ModelArtifact (topology,
// boundary, fixed-point format, BFV parameters) over the wire at session
// start and compiles a pi::ClientModel from it, holding no weights at
// any point. make_demo_model() appears on the client side only behind
// the explicit --check --with-model audit path, which reconstructs the
// reference model to compare the private result against plaintext
// inference.
//
// The two processes must agree on the SessionConfig; pass the same
// --backend/--noise flags to both (--full-pi is a server-side compile
// choice the client learns from the artifact). --nonlinear is server-
// authoritative: the server announces its resolved choice at session
// start, a client that omits the flag adopts it, and a client that
// passes a conflicting flag fails with a typed NonlinearMismatch error
// instead of hanging mid-protocol.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "nn/layers.hpp"
#include "nn/zoo.hpp"
#include "pi/session.hpp"

namespace c2pi::demo {

inline constexpr std::uint16_t kDefaultPort = 17117;

/// Small conv net on 16x16 RGB inputs (the tests' reference topology:
/// conv/pool/ReLU/FC coverage, fast enough for a CI smoke test).
inline nn::Sequential make_demo_model() {
    Rng rng(7);
    nn::Sequential m;
    m.emplace<nn::Conv2d>(3, 6, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::MaxPool2d>(2, 2);
    m.emplace<nn::Conv2d>(6, 8, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::MaxPool2d>(2, 2);
    m.emplace<nn::Flatten>();
    m.emplace<nn::Linear>(8 * 4 * 4, 16, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::Linear>(16, 10, rng);
    return m;
}

inline pi::CompiledModel::Options demo_compile_options(bool full_pi) {
    pi::CompiledModel::Options opts;
    opts.input_chw = {3, 16, 16};
    opts.he_ring_degree = 1024;
    if (!full_pi) opts.boundary = nn::CutPoint{.linear_index = 2, .after_relu = true};
    return opts;
}

/// Build the model served under `--model <id>`: "demo" is the classic
/// hand-rolled smoke-test net above; anything else resolves through the
/// typed zoo registry at smoke-test scale (16x16 inputs, 1/8 width).
/// Throws nn::zoo::UnknownModel on an unrecognized id.
inline nn::Graph make_remote_model(const std::string& id) {
    if (id == "demo") return make_demo_model();
    nn::ModelConfig cfg;
    cfg.input_hw = 16;
    cfg.width_multiplier = 0.125F;
    return nn::zoo::build(id, cfg);
}

/// Compile options for `--model <id>`. The demo model keeps its historic
/// boundary {2, after_relu} so its wire transcript stays byte-identical;
/// zoo models cut at the deepest articulation point among their
/// sweepable cuts (skip connections make some linear ops non-sweepable),
/// which for residual models puts whole blocks — including their
/// secret-shared skip-adds — inside the crypto prefix.
inline pi::CompiledModel::Options remote_compile_options(const nn::Graph& model,
                                                         const std::string& id, bool full_pi) {
    if (id == "demo") return demo_compile_options(full_pi);
    pi::CompiledModel::Options opts;
    opts.input_chw = {3, 16, 16};
    opts.he_ring_degree = 1024;
    if (!full_pi) {
        const auto linear = model.linear_op_indices();
        std::vector<std::int64_t> sweepable;  // 1-based linear indices
        for (std::size_t i = 1; i < linear.size(); ++i)
            if (model.is_articulation(linear[i - 1]))
                sweepable.push_back(static_cast<std::int64_t>(i));
        require(!sweepable.empty(), "model has no sweepable cut points");
        opts.boundary = nn::CutPoint{.linear_index = sweepable.back(), .after_relu = false};
    }
    return opts;
}

/// Flags shared by both binaries; each adds its own on top.
struct RemoteOptions {
    std::string host = "127.0.0.1";
    std::uint16_t port = kDefaultPort;
    std::string model = "demo";  // server: model id; client: --check reference
    bool full_pi = false;
    pi::SessionConfig session{};  // backend/noise/seed: must match peer
    int clients = 1;              // server: connections to serve (0 = forever)
    int pool = 0;                 // server: concurrent sessions (0 = auto)
    int queue = 8;                // server: waiting connections before BUSY
    int tail_window_ms = 0;       // server: cross-client clear-tail batching
    int handshake_timeout_ms = 5'000;  // server: bootstrap-laggard deadline
    std::uint64_t input_seed = 100;  // client: RNG seed for the demo input
    bool check = false;              // client: verify against plaintext
    bool with_model = false;         // client: opt into local reference weights
    int retries = 1;             // client: admission attempts (BUSY/connect)
    int retry_backoff_ms = 200;  // client: initial backoff between attempts
    int runs = 1;                // client: inferences over one artifact cache
    int stall_ms = 0;            // client: chaos hook — sleep before the
                                 // first protocol send (0 = disabled)
    std::string pin;             // client: expected artifact digest (hex)
};

/// Parse flags understood by both binaries; returns nullopt-style false
/// on an unknown flag (caller prints usage).
inline bool parse_remote_flag(int argc, char** argv, int& i, RemoteOptions& o) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", flag.c_str());
            std::exit(2);
        }
        return argv[++i];
    };
    if (flag == "--host") {
        o.host = value();
    } else if (flag == "--model") {
        o.model = value();
    } else if (flag == "--port") {
        o.port = static_cast<std::uint16_t>(std::strtoul(value(), nullptr, 10));
    } else if (flag == "--full-pi") {
        o.full_pi = true;
    } else if (flag == "--backend") {
        const std::string b = value();
        if (b == "delphi") {
            o.session.backend = pi::PiBackend::kDelphi;
        } else if (b == "cheetah") {
            o.session.backend = pi::PiBackend::kCheetah;
        } else {
            std::fprintf(stderr, "unknown backend '%s' (delphi|cheetah)\n", b.c_str());
            std::exit(2);
        }
    } else if (flag == "--nonlinear") {
        const std::string b = value();
        if (b == "gc") {
            o.session.nonlinear = mpc::NonlinearBackend::kGarbledCircuit;
        } else if (b == "ot") {
            o.session.nonlinear = mpc::NonlinearBackend::kOtMillionaire;
        } else if (b == "fss") {
            o.session.nonlinear = mpc::NonlinearBackend::kFss;
        } else {
            std::fprintf(stderr, "unknown nonlinear backend '%s' (gc|ot|fss)\n", b.c_str());
            std::exit(2);
        }
    } else if (flag == "--no-pipeline") {
        o.session.pipeline = false;  // synchronous sends + batched HE responses
    } else if (flag == "--noise") {
        o.session.noise_lambda = std::strtof(value(), nullptr);
    } else if (flag == "--clients") {
        o.clients = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (flag == "--pool") {
        o.pool = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (flag == "--queue") {
        o.queue = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (flag == "--tail-window") {
        o.tail_window_ms = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (flag == "--handshake-timeout") {
        o.handshake_timeout_ms = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (flag == "--retries") {
        o.retries = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (flag == "--retry-backoff") {
        o.retry_backoff_ms = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (flag == "--runs") {
        o.runs = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (flag == "--stall-ms") {
        o.stall_ms = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (flag == "--pin") {
        o.pin = value();
    } else if (flag == "--input-seed") {
        o.input_seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--check") {
        o.check = true;
    } else if (flag == "--with-model") {
        o.with_model = true;
    } else {
        return false;
    }
    return true;
}

inline void print_stats(const pi::PiStats& s) {
    std::printf("  traffic: %.2f KiB preproc + %.2f KiB offline + %.2f KiB online   "
                "flights: %llu + %llu + %llu\n",
                static_cast<double>(s.preprocess_bytes) / 1024.0,
                static_cast<double>(s.offline_bytes) / 1024.0,
                static_cast<double>(s.online_bytes) / 1024.0,
                static_cast<unsigned long long>(s.preprocess_flights),
                static_cast<unsigned long long>(s.offline_flights),
                static_cast<unsigned long long>(s.online_flights));
    // Compute vs blocked-on-network split (zero when the transport does
    // not measure waits, e.g. plain recorders).
    if (s.total_wait_seconds() > 0.0) {
        std::printf("  net-wait: %.1f ms preproc + %.1f ms offline + %.1f ms online   "
                    "(compute %.1f ms of %.1f ms wall)\n",
                    s.preprocess_wait_seconds * 1e3, s.offline_wait_seconds * 1e3,
                    s.online_wait_seconds * 1e3,
                    (s.wall_seconds - s.total_wait_seconds()) * 1e3, s.wall_seconds * 1e3);
    }
}

}  // namespace c2pi::demo
