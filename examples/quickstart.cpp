// Quickstart: the complete C2PI pipeline in ~80 lines.
//
//  1. The server trains a model (AlexNet on a CIFAR-10-like dataset).
//  2. The server runs Algorithm 1 with DINA to find the crypto-clear
//     boundary (here with a small budget; see bench/ for paper scale).
//  3. The boundary is compiled ONCE into an immutable artifact
//     (pi::CompiledModel) and served many times: one single inference,
//     then a batch of four whose revealed clear-layer tails the server
//     executes as one batched plaintext pass (pi::InferenceService).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "attack/inverse.hpp"
#include "nn/zoo.hpp"
#include "nn/trainer.hpp"
#include "pi/c2pi.hpp"

int main() {
    using namespace c2pi;

    // ---- 1. server side: data + model ------------------------------------
    auto dcfg = data::DatasetConfig::cifar10_like();
    dcfg.image_size = 16;
    dcfg.train_size = 256;
    dcfg.test_size = 96;
    data::SyntheticImageDataset dataset(dcfg);

    nn::ModelConfig mcfg;
    mcfg.width_multiplier = 0.1F;
    mcfg.input_hw = 16;
    nn::Graph model = nn::zoo::build("alexnet", mcfg);

    std::printf("Training AlexNet (width x%.2f) ...\n", mcfg.width_multiplier);
    nn::TrainConfig tcfg;
    tcfg.epochs = 12;
    tcfg.lr = 0.01F;
    tcfg.momentum = 0.9F;
    const auto report = nn::train_classifier(model, dataset, tcfg);
    std::printf("  test accuracy: %.1f%%\n\n", 100.0 * report.final_test_accuracy);

    // ---- 2. Algorithm 1: find the crypto-clear boundary with DINA --------
    pi::C2piOptions options;
    options.backend = pi::PiBackend::kCheetah;
    options.he_ring_degree = 1024;  // 16x16 images fit small HE parameters
    options.boundary.ssim_threshold = 0.3;   // sigma
    options.boundary.noise_lambda = 0.1F;    // lambda
    options.boundary.max_accuracy_drop = 0.025;  // delta
    options.boundary.attack_eval_samples = 6;

    attack::InverseConfig dina_cfg;
    dina_cfg.epochs = 5;
    dina_cfg.train_samples = 96;
    const attack::IdpaFactory dina = [&] {
        return std::make_unique<attack::InverseNetAttack>(attack::InverseKind::kDistilled,
                                                          dina_cfg);
    };

    std::printf("Running Algorithm 1 (boundary search with DINA) ...\n");
    pi::C2piSystem system(model, dataset, dina, options);
    std::printf("  boundary: linear op %.1f of %lld  (accuracy there: %.1f%%)\n\n",
                system.boundary().boundary.as_decimal(),
                static_cast<long long>(model.num_linear_ops()),
                100.0 * system.boundary().boundary_accuracy);

    // ---- 3. serve-many: one inference, then a batch ----------------------
    const auto& sample = dataset.test()[0];
    std::printf("Private inference on a client image (true class %lld) ...\n",
                static_cast<long long>(sample.label));
    const auto result = system.infer(sample.image.reshaped({1, 3, 16, 16}));

    std::int64_t predicted = 0;
    for (std::int64_t j = 1; j < result.logits.dim(1); ++j)
        if (result.logits[j] > result.logits[predicted]) predicted = j;

    std::printf("  predicted class: %lld\n", static_cast<long long>(predicted));
    std::printf("  crypto linear ops: %lld   clear (hidden) linear ops: %lld\n",
                static_cast<long long>(result.crypto_linear_ops),
                static_cast<long long>(result.hidden_linear_ops));
    std::printf("  traffic: %.2f MB   LAN latency: %.3f s   WAN latency: %.3f s\n",
                static_cast<double>(result.stats.total_bytes()) / (1024.0 * 1024.0),
                result.stats.latency_seconds(net::NetworkModel::lan()),
                result.stats.latency_seconds(net::NetworkModel::wan()));

    // ---- 4. batched serving: crypto per request, ONE clear-tail pass -----
    std::vector<Tensor> requests;
    for (std::size_t i = 1; i <= 4; ++i)
        requests.push_back(dataset.test()[i].image.reshaped({1, 3, 16, 16}));
    std::printf("\nBatched private inference on %zu client requests ...\n", requests.size());
    const auto batch = system.infer_batch(requests);
    for (std::size_t i = 0; i < batch.results.size(); ++i) {
        const auto& logits = batch.results[i].logits;
        std::int64_t cls = 0;
        for (std::int64_t j = 1; j < logits.dim(1); ++j)
            if (logits[j] > logits[cls]) cls = j;
        std::printf("  request %zu: predicted class %lld (true %lld)\n", i,
                    static_cast<long long>(cls),
                    static_cast<long long>(dataset.test()[i + 1].label));
    }
    std::printf("  clear-tail passes on the server so far: %llu "
                "(the single inference + ONE for the whole batch)\n",
                static_cast<unsigned long long>(system.compiled().clear_tail_passes()));
    std::printf("  batch traffic: %.2f MB   joint wall time: %.3f s\n",
                static_cast<double>(batch.aggregate.total_bytes()) / (1024.0 * 1024.0),
                batch.aggregate.wall_seconds);
    return 0;
}
