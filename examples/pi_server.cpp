// pi_server: the model owner's half of a real two-process deployment —
// now a CONCURRENT server.
//
// Compiles the demo model ONCE into an immutable pi::CompiledModel, then
// listens on localhost TCP and hands every accepted connection to a
// pi::ServingPool: N worker sessions share the one const model, bounded
// queueing answers overload with the typed BUSY frame (the client sees
// net::ServerBusy, not a protocol error), and shutdown drains — every
// admitted session finishes. Each session starts by shipping the
// serialized public pi::ModelArtifact (plan, boundary, formats — no
// weights), so the peer pi_client runs weightless. With --tail-window,
// sessions reaching the crypto-clear boundary within the window share
// ONE batched plaintext tail pass across clients.
//
//   ./build/examples/pi_server [--port P] [--clients N] [--full-pi]
//                              [--backend delphi|cheetah] [--noise L]
//                              [--pool W] [--queue Q] [--tail-window MS]
//                              [--handshake-timeout MS]
//
// Every session failure is classified at the worker boundary
// (client-abort / protocol-violation / timeout / internal, see
// docs/PROTOCOL.md §9) and counted per class in the final stats line;
// --handshake-timeout bounds how long a connected-but-silent client can
// hold an admission slot before it is shed as a timeout.
//
// --port 0 binds an ephemeral port (the "listening on" line reports the
// real one — scripts parse it). --clients 0 serves forever; SIGINT/
// SIGTERM then drains in-flight sessions and prints the aggregate pool
// stats before exiting. --pool 0 sizes the pool automatically
// (C2PI_THREADS / hardware_concurrency).
//
// Peer binary: examples/pi_client.cpp. Wire format: docs/PROTOCOL.md.

#include <atomic>
#include <csignal>
#include <cstdio>

#include "net/tcp.hpp"
#include "pi/serving_pool.hpp"
#include "remote_common.hpp"

namespace {

std::atomic<bool> g_stop{false};

void request_stop(int) { g_stop.store(true); }

void print_pool_stats(const c2pi::pi::ServingPool::Stats& s) {
    using c2pi::pi::FailureClass;
    std::printf("pool stats: served %llu sessions (%llu rejected, %llu failed), "
                "peak %d concurrent\n",
                static_cast<unsigned long long>(s.served),
                static_cast<unsigned long long>(s.rejected),
                static_cast<unsigned long long>(s.failed), s.concurrent_peak);
    if (s.failed > 0)
        std::printf("  failures by class: %llu client-abort, %llu protocol-violation, "
                    "%llu timeout, %llu internal\n",
                    static_cast<unsigned long long>(
                        s.failed_by_class[static_cast<int>(FailureClass::kClientAbort)]),
                    static_cast<unsigned long long>(
                        s.failed_by_class[static_cast<int>(FailureClass::kProtocolViolation)]),
                    static_cast<unsigned long long>(
                        s.failed_by_class[static_cast<int>(FailureClass::kTimeout)]),
                    static_cast<unsigned long long>(
                        s.failed_by_class[static_cast<int>(FailureClass::kInternal)]));
    if (s.artifact_skips > 0)
        std::printf("  artifact: %llu digest-cache skips (resumed bootstraps)\n",
                    static_cast<unsigned long long>(s.artifact_skips));
    c2pi::demo::print_stats(s.traffic);
    if (s.tail_batches > 0)
        std::printf("  clear tail: %llu batched passes over %llu requests\n",
                    static_cast<unsigned long long>(s.tail_batches),
                    static_cast<unsigned long long>(s.tail_requests));
}

}  // namespace

int main(int argc, char** argv) {
    using namespace c2pi;

    demo::RemoteOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (!demo::parse_remote_flag(argc, argv, i, opts)) {
            std::fprintf(stderr,
                         "usage: pi_server [--port P] [--clients N] [--full-pi]\n"
                         "                 [--model demo|alexnet|vgg16|vgg19|resnet9|resnet18]\n"
                         "                 [--backend delphi|cheetah] [--nonlinear gc|ot|fss]\n"
                         "                 [--noise L] [--no-pipeline] [--pool W] [--queue Q]\n"
                         "                 [--tail-window MS] [--handshake-timeout MS]\n");
            return 2;
        }
    }

    nn::Graph model;
    try {
        model = demo::make_remote_model(opts.model);
    } catch (const nn::zoo::UnknownModel& e) {
        std::fprintf(stderr, "pi_server: %s\n", e.what());
        return 2;
    }
    const pi::CompiledModel compiled(
        model, demo::remote_compile_options(model, opts.model, opts.full_pi));
    std::printf("compiled %s model: %lld crypto + %lld clear linear ops\n",
                opts.full_pi ? "full-PI" : "crypto-clear",
                static_cast<long long>(compiled.crypto_linear_ops()),
                static_cast<long long>(compiled.hidden_linear_ops()));

    pi::ServingPool pool(
        compiled, opts.session,
        {.workers = opts.pool,
         .queue_capacity = opts.queue,
         .tail_window_ms = opts.tail_window_ms,
         .handshake_timeout_ms = opts.handshake_timeout_ms},
        [](const pi::ServingPool::SessionReport& r) {
            if (r.ok) {
                std::printf("served client %llu in %.3f s%s\n",
                            static_cast<unsigned long long>(r.index), r.stats.wall_seconds,
                            r.artifact_from_cache ? "   (artifact skipped: digest hit)" : "");
                demo::print_stats(r.stats);
            } else {
                std::fprintf(stderr, "client %llu failed [%s]: %s\n",
                             static_cast<unsigned long long>(r.index),
                             pi::failure_class_name(r.failure), r.error.c_str());
            }
            std::fflush(stdout);
        });
    std::printf("model artifact: %zu bytes   nonlinear backend: %s\n",
                compiled.artifact().serialize().size(),
                pi::nonlinear_name(pi::resolve_nonlinear(opts.session)));
    std::printf("serving pool: %d workers, queue %d, tail window %d ms\n", pool.workers(),
                opts.queue, opts.tail_window_ms);

    net::TcpListener listener(opts.port, opts.host);
    std::printf("listening on %s:%u\n", opts.host.c_str(), listener.port());
    std::fflush(stdout);

    std::signal(SIGINT, request_stop);
    std::signal(SIGTERM, request_stop);

    // Finite --clients (the CI smoke case) treats an accept failure as
    // fatal so scripts see a nonzero exit; serve-forever logs and keeps
    // accepting (a port scanner failing the handshake must not take the
    // server down). Either way the pool drains before exit: admitted
    // sessions always finish.
    const bool forever = opts.clients <= 0;
    for (int accepted = 0; (forever || accepted < opts.clients) && !g_stop.load();) {
        try {
            // Short poll in forever mode so SIGINT/SIGTERM is honored
            // promptly; finite mode waits out the full smoke-test budget.
            auto transport = listener.try_accept(forever ? 250 : 120'000);
            if (!transport) {
                if (forever) continue;
                std::fprintf(stderr, "timed out waiting for client %d\n", accepted + 1);
                pool.drain();
                return 1;
            }
            ++accepted;
            (void)pool.serve(std::move(transport));  // rejection counted in stats
        } catch (const std::exception& e) {
            std::fprintf(stderr, "accept failed: %s\n", e.what());
            if (!forever) {
                pool.drain();
                return 1;
            }
        }
    }

    pool.drain();
    const auto stats = pool.stats();
    print_pool_stats(stats);
    std::fflush(stdout);
    // Finite mode promised to serve exactly --clients sessions; anything
    // the pool refused or that died mid-protocol breaks that promise.
    if (!forever && (stats.failed > 0 || stats.rejected > 0)) return 1;
    return 0;
}
