// pi_server: the model owner's half of a real two-process deployment.
//
// Compiles the demo model ONCE into an immutable pi::CompiledModel, then
// listens on localhost TCP and serves each accepted connection with a
// pi::ServerSession over net::TcpTransport — the same session code that
// runs in-process in quickstart, now as its own OS process. Each session
// starts by shipping the serialized public pi::ModelArtifact (plan,
// boundary, formats — no weights), so the peer pi_client runs weightless.
//
//   ./build/examples/pi_server [--port P] [--clients N] [--full-pi]
//                              [--backend delphi|cheetah] [--noise L]
//
// --port 0 binds an ephemeral port (the "listening on" line reports the
// real one — scripts parse it). --clients 0 serves forever.
//
// Peer binary: examples/pi_client.cpp. Wire format: docs/PROTOCOL.md.

#include <cstdio>

#include "core/stopwatch.hpp"
#include "net/tcp.hpp"
#include "remote_common.hpp"

int main(int argc, char** argv) {
    using namespace c2pi;

    demo::RemoteOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (!demo::parse_remote_flag(argc, argv, i, opts)) {
            std::fprintf(stderr,
                         "usage: pi_server [--port P] [--clients N] [--full-pi]\n"
                         "                 [--backend delphi|cheetah] [--noise L]\n");
            return 2;
        }
    }

    const nn::Sequential model = demo::make_demo_model();
    const pi::CompiledModel compiled(model, demo::demo_compile_options(opts.full_pi));
    const pi::ServerSession session(compiled, opts.session);
    // Serialized once; every session ships the same bytes.
    const std::vector<std::uint8_t> artifact_bytes = compiled.artifact().serialize();
    std::printf("compiled %s model: %lld crypto + %lld clear linear ops\n",
                opts.full_pi ? "full-PI" : "crypto-clear",
                static_cast<long long>(compiled.crypto_linear_ops()),
                static_cast<long long>(compiled.hidden_linear_ops()));
    std::printf("model artifact: %zu bytes\n", artifact_bytes.size());

    net::TcpListener listener(opts.port, opts.host);
    std::printf("listening on %s:%u\n", opts.host.c_str(), listener.port());
    std::fflush(stdout);

    // Finite --clients (the CI smoke case) treats any failure as fatal so
    // scripts see a nonzero exit; serve-forever logs and keeps accepting
    // (a port scanner failing the handshake must not take the server down).
    const bool forever = opts.clients <= 0;
    for (int served = 0; forever || served < opts.clients; ++served) {
        try {
            auto transport = listener.accept(forever ? -1 : 120'000);
            transport->set_recv_timeout(120'000);
            Stopwatch watch;
            transport->send_artifact_bytes(artifact_bytes);
            session.run(*transport);
            auto stats = pi::stats_from_channel(transport->stats());
            stats.wall_seconds = watch.seconds();
            transport->close();
            std::printf("served client %d in %.3f s\n", served + 1, stats.wall_seconds);
            demo::print_stats(stats);
            std::fflush(stdout);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "client %d failed: %s\n", served + 1, e.what());
            if (!forever) return 1;
        }
    }
    return 0;
}
