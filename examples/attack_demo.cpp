// Attack demo: step into the curious server's shoes. Trains DINA against
// activations at several depths, renders the recovered images as ASCII
// art next to the original, and shows how the paper's uniform-noise
// defense degrades recovery.
//
// Build & run:  ./build/examples/attack_demo

#include <cstdio>

#include "attack/inverse.hpp"
#include "metrics/ssim.hpp"
#include "nn/zoo.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace c2pi;

/// Render a [3,H,W] image as ASCII luminance art.
void render(const Tensor& image, const char* caption) {
    static const char* ramp = " .:-=+*#%@";
    const std::int64_t h = image.dim(1), w = image.dim(2);
    std::printf("%s\n", caption);
    for (std::int64_t y = 0; y < h; y += 1) {
        std::printf("    ");
        for (std::int64_t x = 0; x < w; ++x) {
            const float lum = (image[(0 * h + y) * w + x] + image[(1 * h + y) * w + x] +
                               image[(2 * h + y) * w + x]) /
                              3.0F;
            const int level = std::min(9, std::max(0, static_cast<int>(lum * 9.99F)));
            std::printf("%c%c", ramp[level], ramp[level]);
        }
        std::printf("\n");
    }
}

}  // namespace

int main() {
    std::printf("=== DINA attack demo: what does the server see? ===\n\n");

    auto dcfg = data::DatasetConfig::cifar10_like();
    dcfg.image_size = 16;
    dcfg.train_size = 256;
    dcfg.test_size = 64;
    data::SyntheticImageDataset dataset(dcfg);

    nn::ModelConfig mcfg;
    mcfg.width_multiplier = 0.1F;
    mcfg.input_hw = 16;
    nn::Graph model = nn::zoo::build("alexnet", mcfg);
    nn::TrainConfig tcfg;
    tcfg.epochs = 12;
    tcfg.lr = 0.01F;
    tcfg.momentum = 0.9F;
    (void)nn::train_classifier(model, dataset, tcfg);

    const Tensor& truth = dataset.test()[5].image;
    render(truth, "Client's private input:");

    attack::InverseConfig cfg;
    cfg.epochs = 8;
    cfg.train_samples = 192;

    Rng rng(17);
    struct Probe {
        std::int64_t conv_id;
        float lambda;
    };
    for (const Probe probe : {Probe{1, 0.0F}, Probe{3, 0.0F}, Probe{5, 0.0F}, Probe{1, 0.4F}}) {
        const nn::CutPoint cut{.linear_index = probe.conv_id, .after_relu = true};
        attack::InverseNetAttack dina(attack::InverseKind::kDistilled, cfg);
        dina.fit(model, cut, dataset, probe.lambda);
        const Tensor act = attack::noised_activation(model, cut, truth, probe.lambda, rng);
        const Tensor guess = dina.recover(model, cut, act).reshaped(truth.shape());
        const double ssim = metrics::ssim(truth, guess);
        char caption[128];
        std::snprintf(caption, sizeof(caption),
                      "\nDINA recovery from conv %lld.5 (noise lambda=%.1f)  SSIM %.3f -> %s:",
                      static_cast<long long>(probe.conv_id), probe.lambda, ssim,
                      ssim >= 0.3 ? "RECOVERED" : "protected");
        render(guess, caption);
    }

    std::printf(
        "\nTakeaway: shallow activations leak the image; depth and share noise both\n"
        "push SSIM under the 0.3 failure threshold — exactly where C2PI's Algorithm 1\n"
        "places the crypto-clear boundary.\n");
    return 0;
}
