#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

namespace c2pi {

std::string shape_to_string(const Shape& s) {
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (i != 0) os << ',';
        os << s[i];
    }
    os << ']';
    return os.str();
}

Tensor Tensor::full(Shape shape, float value) {
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
    Tensor t(std::move(shape));
    for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal(0.0F, stddev);
    return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
    Tensor t(std::move(shape));
    for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(lo, hi);
    return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
    require(shape_numel(new_shape) == numel(), "reshape must preserve numel");
    Tensor t;
    t.shape_ = std::move(new_shape);
    t.data_ = data_;
    return t;
}

bool Tensor::allclose(const Tensor& other, float atol) const {
    if (!same_shape(other)) return false;
    for (std::int64_t i = 0; i < numel(); ++i) {
        if (std::fabs((*this)[i] - other[i]) > atol) return false;
    }
    return true;
}

}  // namespace c2pi
