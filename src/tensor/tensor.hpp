#pragma once

/// \file tensor.hpp
/// Dense float tensor (row-major, contiguous) used by the plaintext NN
/// stack, the IDPA attacks, and as the source/sink of fixed-point MPC
/// tensors. Layout convention is NCHW for 4-D tensors.

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace c2pi {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape.
[[nodiscard]] inline std::int64_t shape_numel(const Shape& s) {
    std::int64_t n = 1;
    for (const auto d : s) n *= d;
    return n;
}

[[nodiscard]] std::string shape_to_string(const Shape& s);

/// Contiguous row-major float tensor with value semantics.
class Tensor {
public:
    Tensor() = default;

    explicit Tensor(Shape shape) : shape_(std::move(shape)) {
        for (const auto d : shape_) require(d > 0, "tensor dims must be positive");
        data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0F);
    }

    Tensor(Shape shape, std::vector<float> values) : shape_(std::move(shape)), data_(std::move(values)) {
        require(static_cast<std::int64_t>(data_.size()) == shape_numel(shape_),
                "value count does not match shape");
    }

    // -- factories ---------------------------------------------------------
    [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
    [[nodiscard]] static Tensor full(Shape shape, float value);
    /// i.i.d. N(0, stddev^2) entries.
    [[nodiscard]] static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0F);
    /// i.i.d. U[lo, hi) entries.
    [[nodiscard]] static Tensor uniform(Shape shape, Rng& rng, float lo, float hi);

    // -- introspection ------------------------------------------------------
    [[nodiscard]] const Shape& shape() const { return shape_; }
    [[nodiscard]] std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
    [[nodiscard]] std::int64_t dim(std::int64_t i) const {
        require(i >= 0 && i < rank(), "dim index out of range");
        return shape_[static_cast<std::size_t>(i)];
    }
    [[nodiscard]] std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
    [[nodiscard]] bool empty() const { return data_.empty(); }
    [[nodiscard]] bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

    // -- element access -----------------------------------------------------
    [[nodiscard]] float* data() { return data_.data(); }
    [[nodiscard]] const float* data() const { return data_.data(); }

    [[nodiscard]] float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
    [[nodiscard]] float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

    /// 4-D accessor (NCHW).
    [[nodiscard]] float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
        return data_[static_cast<std::size_t>(offset4(n, c, h, w))];
    }
    [[nodiscard]] float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
        return data_[static_cast<std::size_t>(offset4(n, c, h, w))];
    }
    /// 2-D accessor (rows, cols).
    [[nodiscard]] float& at(std::int64_t r, std::int64_t c) {
        return data_[static_cast<std::size_t>(r * shape_[1] + c)];
    }
    [[nodiscard]] float at(std::int64_t r, std::int64_t c) const {
        return data_[static_cast<std::size_t>(r * shape_[1] + c)];
    }

    // -- mutation -----------------------------------------------------------
    void fill(float value) { std::fill(data_.begin(), data_.end(), value); }
    void zero() { fill(0.0F); }

    /// Same data, new shape (numel must match).
    [[nodiscard]] Tensor reshaped(Shape new_shape) const;

    /// Deep equality within absolute tolerance.
    [[nodiscard]] bool allclose(const Tensor& other, float atol = 1e-5F) const;

    [[nodiscard]] const std::vector<float>& storage() const { return data_; }
    [[nodiscard]] std::vector<float>& storage() { return data_; }

private:
    [[nodiscard]] std::int64_t offset4(std::int64_t n, std::int64_t c, std::int64_t h,
                                       std::int64_t w) const {
        return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
    }

    Shape shape_;
    std::vector<float> data_;
};

}  // namespace c2pi
