#include "tensor/tensor_ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace c2pi::ops {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b) {
    require(a.same_shape(b), "elementwise op requires matching shapes");
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
    check_same_shape(a, b);
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] + b[i];
    return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
    check_same_shape(a, b);
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] - b[i];
    return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
    check_same_shape(a, b);
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * b[i];
    return out;
}

Tensor scale(const Tensor& a, float s) {
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * s;
    return out;
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
    check_same_shape(x, y);
    for (std::int64_t i = 0; i < x.numel(); ++i) y[i] += alpha * x[i];
}

float sum(const Tensor& a) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i) acc += a[i];
    return static_cast<float>(acc);
}

float mean(const Tensor& a) {
    require(a.numel() > 0, "mean of empty tensor");
    return sum(a) / static_cast<float>(a.numel());
}

float max_abs(const Tensor& a) {
    float m = 0.0F;
    for (std::int64_t i = 0; i < a.numel(); ++i) m = std::max(m, std::fabs(a[i]));
    return m;
}

double squared_distance(const Tensor& a, const Tensor& b) {
    check_same_shape(a, b);
    double acc = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        acc += d * d;
    }
    return acc;
}

Tensor clamp(const Tensor& a, float lo, float hi) {
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = std::clamp(a[i], lo, hi);
    return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
    require(a.rank() == 2 && b.rank() == 2, "matmul expects rank-2 tensors");
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    require(b.dim(0) == k, "matmul inner dims must agree");
    const std::int64_t n = b.dim(1);
    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    // ikj loop order: streams B rows, accumulates into C row — cache friendly.
    for (std::int64_t i = 0; i < m; ++i) {
        float* crow = pc + i * n;
        for (std::int64_t kk = 0; kk < k; ++kk) {
            const float aval = pa[i * k + kk];
            if (aval == 0.0F) continue;
            const float* brow = pb + kk * n;
            for (std::int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
        }
    }
    return c;
}

Tensor transpose2d(const Tensor& a) {
    require(a.rank() == 2, "transpose2d expects rank-2 tensor");
    const std::int64_t m = a.dim(0);
    const std::int64_t n = a.dim(1);
    Tensor t({n, m});
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j) t.at(j, i) = a.at(i, j);
    return t;
}

Tensor im2col(const Tensor& x, const ConvSpec& spec) {
    require(x.rank() == 4, "im2col expects NCHW input");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    const std::int64_t oh = spec.out_dim(h), ow = spec.out_dim(w);
    require(oh > 0 && ow > 0, "conv output dims must be positive");
    const std::int64_t patch = c * spec.kernel * spec.kernel;
    Tensor cols({n, patch, oh * ow});
    for (std::int64_t b = 0; b < n; ++b) {
        float* dst = cols.data() + b * patch * oh * ow;
        for (std::int64_t ch = 0; ch < c; ++ch) {
            for (std::int64_t ky = 0; ky < spec.kernel; ++ky) {
                for (std::int64_t kx = 0; kx < spec.kernel; ++kx) {
                    const std::int64_t row = (ch * spec.kernel + ky) * spec.kernel + kx;
                    for (std::int64_t oy = 0; oy < oh; ++oy) {
                        const std::int64_t iy = oy * spec.stride - spec.pad + ky * spec.dilation;
                        for (std::int64_t ox = 0; ox < ow; ++ox) {
                            const std::int64_t ix = ox * spec.stride - spec.pad + kx * spec.dilation;
                            float v = 0.0F;
                            if (iy >= 0 && iy < h && ix >= 0 && ix < w) v = x.at(b, ch, iy, ix);
                            dst[row * oh * ow + oy * ow + ox] = v;
                        }
                    }
                }
            }
        }
    }
    return cols;
}

Tensor col2im(const Tensor& cols, const Shape& x_shape, const ConvSpec& spec) {
    require(cols.rank() == 3 && x_shape.size() == 4, "col2im shape mismatch");
    const std::int64_t n = x_shape[0], c = x_shape[1], h = x_shape[2], w = x_shape[3];
    const std::int64_t oh = spec.out_dim(h), ow = spec.out_dim(w);
    Tensor x(Shape{n, c, h, w});
    for (std::int64_t b = 0; b < n; ++b) {
        const float* src = cols.data() + b * (c * spec.kernel * spec.kernel) * oh * ow;
        for (std::int64_t ch = 0; ch < c; ++ch) {
            for (std::int64_t ky = 0; ky < spec.kernel; ++ky) {
                for (std::int64_t kx = 0; kx < spec.kernel; ++kx) {
                    const std::int64_t row = (ch * spec.kernel + ky) * spec.kernel + kx;
                    for (std::int64_t oy = 0; oy < oh; ++oy) {
                        const std::int64_t iy = oy * spec.stride - spec.pad + ky * spec.dilation;
                        if (iy < 0 || iy >= h) continue;
                        for (std::int64_t ox = 0; ox < ow; ++ox) {
                            const std::int64_t ix = ox * spec.stride - spec.pad + kx * spec.dilation;
                            if (ix < 0 || ix >= w) continue;
                            x.at(b, ch, iy, ix) += src[row * oh * ow + oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
    return x;
}

Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& bias, const ConvSpec& spec) {
    require(x.rank() == 4 && w.rank() == 4, "conv2d expects NCHW input and OIKK weights");
    require(w.dim(1) == x.dim(1), "conv2d channel mismatch");
    require(w.dim(2) == spec.kernel && w.dim(3) == spec.kernel, "conv2d kernel size mismatch");
    const std::int64_t n = x.dim(0), o = w.dim(0);
    const std::int64_t oh = spec.out_dim(x.dim(2)), ow = spec.out_dim(x.dim(3));
    const std::int64_t patch = w.dim(1) * spec.kernel * spec.kernel;
    const Tensor cols = im2col(x, spec);
    const Tensor wmat = w.reshaped({o, patch});
    Tensor y({n, o, oh, ow});
    for (std::int64_t b = 0; b < n; ++b) {
        const Tensor colb({patch, oh * ow},
                          std::vector<float>(cols.data() + b * patch * oh * ow,
                                             cols.data() + (b + 1) * patch * oh * ow));
        const Tensor yb = matmul(wmat, colb);  // [o, oh*ow]
        std::copy(yb.data(), yb.data() + o * oh * ow, y.data() + b * o * oh * ow);
    }
    if (!bias.empty()) {
        require(bias.numel() == o, "conv2d bias size mismatch");
        for (std::int64_t b = 0; b < n; ++b)
            for (std::int64_t oc = 0; oc < o; ++oc) {
                float* plane = y.data() + (b * o + oc) * oh * ow;
                for (std::int64_t i = 0; i < oh * ow; ++i) plane[i] += bias[oc];
            }
    }
    return y;
}

Tensor conv2d_backward_input(const Tensor& grad_y, const Tensor& w, const Shape& x_shape,
                             const ConvSpec& spec) {
    const std::int64_t n = grad_y.dim(0), o = grad_y.dim(1);
    const std::int64_t oh = grad_y.dim(2), ow = grad_y.dim(3);
    const std::int64_t patch = w.dim(1) * spec.kernel * spec.kernel;
    const Tensor wmat_t = transpose2d(w.reshaped({o, patch}));  // [patch, o]
    Tensor cols({n, patch, oh * ow});
    for (std::int64_t b = 0; b < n; ++b) {
        const Tensor gyb({o, oh * ow},
                         std::vector<float>(grad_y.data() + b * o * oh * ow,
                                            grad_y.data() + (b + 1) * o * oh * ow));
        const Tensor colb = matmul(wmat_t, gyb);  // [patch, oh*ow]
        std::copy(colb.data(), colb.data() + patch * oh * ow, cols.data() + b * patch * oh * ow);
    }
    return col2im(cols, x_shape, spec);
}

void conv2d_backward_params(const Tensor& grad_y, const Tensor& x, const ConvSpec& spec,
                            Tensor& grad_w, Tensor& grad_b) {
    const std::int64_t n = grad_y.dim(0), o = grad_y.dim(1);
    const std::int64_t oh = grad_y.dim(2), ow = grad_y.dim(3);
    const std::int64_t patch = grad_w.dim(1) * spec.kernel * spec.kernel;
    const Tensor cols = im2col(x, spec);
    for (std::int64_t b = 0; b < n; ++b) {
        const Tensor gyb({o, oh * ow},
                         std::vector<float>(grad_y.data() + b * o * oh * ow,
                                            grad_y.data() + (b + 1) * o * oh * ow));
        const Tensor colb_t = transpose2d(
            Tensor({patch, oh * ow}, std::vector<float>(cols.data() + b * patch * oh * ow,
                                                        cols.data() + (b + 1) * patch * oh * ow)));
        const Tensor gw = matmul(gyb, colb_t);  // [o, patch]
        for (std::int64_t i = 0; i < gw.numel(); ++i) grad_w[i] += gw[i];
    }
    if (!grad_b.empty()) {
        for (std::int64_t b = 0; b < n; ++b)
            for (std::int64_t oc = 0; oc < o; ++oc) {
                const float* plane = grad_y.data() + (b * o + oc) * oh * ow;
                float acc = 0.0F;
                for (std::int64_t i = 0; i < oh * ow; ++i) acc += plane[i];
                grad_b[oc] += acc;
            }
    }
}

PoolResult maxpool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride) {
    require(x.rank() == 4, "maxpool2d expects NCHW input");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    const std::int64_t oh = (h - kernel) / stride + 1;
    const std::int64_t ow = (w - kernel) / stride + 1;
    require(oh > 0 && ow > 0, "maxpool output dims must be positive");
    PoolResult res;
    res.output = Tensor({n, c, oh, ow});
    res.argmax.assign(static_cast<std::size_t>(res.output.numel()), 0);
    std::int64_t oidx = 0;
    for (std::int64_t b = 0; b < n; ++b)
        for (std::int64_t ch = 0; ch < c; ++ch)
            for (std::int64_t oy = 0; oy < oh; ++oy)
                for (std::int64_t ox = 0; ox < ow; ++ox, ++oidx) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::int64_t best_idx = 0;
                    for (std::int64_t ky = 0; ky < kernel; ++ky)
                        for (std::int64_t kx = 0; kx < kernel; ++kx) {
                            const std::int64_t iy = oy * stride + ky;
                            const std::int64_t ix = ox * stride + kx;
                            const std::int64_t idx = ((b * c + ch) * h + iy) * w + ix;
                            if (x[idx] > best) {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    res.output[oidx] = best;
                    res.argmax[static_cast<std::size_t>(oidx)] = best_idx;
                }
    return res;
}

Tensor maxpool2d_backward(const Tensor& grad_y, const Shape& x_shape,
                          const std::vector<std::int64_t>& argmax) {
    Tensor gx(x_shape);
    for (std::int64_t i = 0; i < grad_y.numel(); ++i)
        gx[argmax[static_cast<std::size_t>(i)]] += grad_y[i];
    return gx;
}

Tensor avgpool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride) {
    require(x.rank() == 4, "avgpool2d expects NCHW input");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    const std::int64_t oh = (h - kernel) / stride + 1;
    const std::int64_t ow = (w - kernel) / stride + 1;
    Tensor y({n, c, oh, ow});
    const float inv = 1.0F / static_cast<float>(kernel * kernel);
    for (std::int64_t b = 0; b < n; ++b)
        for (std::int64_t ch = 0; ch < c; ++ch)
            for (std::int64_t oy = 0; oy < oh; ++oy)
                for (std::int64_t ox = 0; ox < ow; ++ox) {
                    float acc = 0.0F;
                    for (std::int64_t ky = 0; ky < kernel; ++ky)
                        for (std::int64_t kx = 0; kx < kernel; ++kx)
                            acc += x.at(b, ch, oy * stride + ky, ox * stride + kx);
                    y.at(b, ch, oy, ox) = acc * inv;
                }
    return y;
}

Tensor avgpool2d_backward(const Tensor& grad_y, const Shape& x_shape, std::int64_t kernel,
                          std::int64_t stride) {
    Tensor gx(x_shape);
    const std::int64_t n = grad_y.dim(0), c = grad_y.dim(1);
    const std::int64_t oh = grad_y.dim(2), ow = grad_y.dim(3);
    const float inv = 1.0F / static_cast<float>(kernel * kernel);
    for (std::int64_t b = 0; b < n; ++b)
        for (std::int64_t ch = 0; ch < c; ++ch)
            for (std::int64_t oy = 0; oy < oh; ++oy)
                for (std::int64_t ox = 0; ox < ow; ++ox) {
                    const float g = grad_y.at(b, ch, oy, ox) * inv;
                    for (std::int64_t ky = 0; ky < kernel; ++ky)
                        for (std::int64_t kx = 0; kx < kernel; ++kx)
                            gx.at(b, ch, oy * stride + ky, ox * stride + kx) += g;
                }
    return gx;
}

Tensor upsample_nearest(const Tensor& x, std::int64_t factor) {
    require(x.rank() == 4 && factor >= 1, "upsample expects NCHW input and factor >= 1");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    Tensor y({n, c, h * factor, w * factor});
    for (std::int64_t b = 0; b < n; ++b)
        for (std::int64_t ch = 0; ch < c; ++ch)
            for (std::int64_t oy = 0; oy < h * factor; ++oy)
                for (std::int64_t ox = 0; ox < w * factor; ++ox)
                    y.at(b, ch, oy, ox) = x.at(b, ch, oy / factor, ox / factor);
    return y;
}

Tensor upsample_nearest_backward(const Tensor& grad_y, std::int64_t factor) {
    const std::int64_t n = grad_y.dim(0), c = grad_y.dim(1);
    const std::int64_t oh = grad_y.dim(2), ow = grad_y.dim(3);
    Tensor gx({n, c, oh / factor, ow / factor});
    for (std::int64_t b = 0; b < n; ++b)
        for (std::int64_t ch = 0; ch < c; ++ch)
            for (std::int64_t oy = 0; oy < oh; ++oy)
                for (std::int64_t ox = 0; ox < ow; ++ox)
                    gx.at(b, ch, oy / factor, ox / factor) += grad_y.at(b, ch, oy, ox);
    return gx;
}

Tensor relu(const Tensor& x) {
    Tensor y(x.shape());
    for (std::int64_t i = 0; i < x.numel(); ++i) y[i] = x[i] > 0.0F ? x[i] : 0.0F;
    return y;
}

Tensor relu_backward(const Tensor& grad_y, const Tensor& x) {
    Tensor gx(x.shape());
    for (std::int64_t i = 0; i < x.numel(); ++i) gx[i] = x[i] > 0.0F ? grad_y[i] : 0.0F;
    return gx;
}

Tensor sigmoid(const Tensor& x) {
    Tensor y(x.shape());
    for (std::int64_t i = 0; i < x.numel(); ++i) y[i] = 1.0F / (1.0F + std::exp(-x[i]));
    return y;
}

Tensor tanh_act(const Tensor& x) {
    Tensor y(x.shape());
    for (std::int64_t i = 0; i < x.numel(); ++i) y[i] = std::tanh(x[i]);
    return y;
}

Tensor softmax(const Tensor& logits) {
    require(logits.rank() == 2, "softmax expects [batch, classes]");
    const std::int64_t n = logits.dim(0), k = logits.dim(1);
    Tensor p(logits.shape());
    for (std::int64_t i = 0; i < n; ++i) {
        float mx = -std::numeric_limits<float>::infinity();
        for (std::int64_t j = 0; j < k; ++j) mx = std::max(mx, logits.at(i, j));
        double denom = 0.0;
        for (std::int64_t j = 0; j < k; ++j) {
            p.at(i, j) = std::exp(logits.at(i, j) - mx);
            denom += p.at(i, j);
        }
        for (std::int64_t j = 0; j < k; ++j)
            p.at(i, j) = static_cast<float>(p.at(i, j) / denom);
    }
    return p;
}

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
    const std::int64_t n = logits.dim(0), k = logits.dim(1);
    require(static_cast<std::int64_t>(labels.size()) == n, "label count mismatch");
    LossResult res;
    res.grad_logits = softmax(logits);
    double loss = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t y = labels[static_cast<std::size_t>(i)];
        require(y >= 0 && y < k, "label out of range");
        loss -= std::log(std::max(res.grad_logits.at(i, y), 1e-12F));
        res.grad_logits.at(i, y) -= 1.0F;
    }
    const float inv_n = 1.0F / static_cast<float>(n);
    for (std::int64_t i = 0; i < res.grad_logits.numel(); ++i) res.grad_logits[i] *= inv_n;
    res.loss = static_cast<float>(loss / n);
    return res;
}

LossResult mse_loss(const Tensor& a, const Tensor& b) {
    check_same_shape(a, b);
    LossResult res;
    res.grad_logits = Tensor(a.shape());
    double loss = 0.0;
    const float inv_n = 1.0F / static_cast<float>(a.numel());
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        const float d = a[i] - b[i];
        loss += static_cast<double>(d) * d;
        res.grad_logits[i] = 2.0F * d * inv_n;
    }
    res.loss = static_cast<float>(loss / static_cast<double>(a.numel()));
    return res;
}

}  // namespace c2pi::ops
