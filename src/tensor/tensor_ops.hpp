#pragma once

/// \file tensor_ops.hpp
/// Numeric kernels on Tensor: BLAS-lite matmul, im2col convolution,
/// pooling, activations and their backward passes. These are the only
/// compute kernels in the repo; nn layers and attacks are thin wrappers.

#include "tensor/tensor.hpp"

namespace c2pi::ops {

/// Spatial convolution hyper-parameters (square kernels/strides).
struct ConvSpec {
    std::int64_t kernel = 3;
    std::int64_t stride = 1;
    std::int64_t pad = 1;
    std::int64_t dilation = 1;

    [[nodiscard]] std::int64_t out_dim(std::int64_t in) const {
        const std::int64_t eff = dilation * (kernel - 1) + 1;
        return (in + 2 * pad - eff) / stride + 1;
    }
};

// -- elementwise -------------------------------------------------------------
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor scale(const Tensor& a, float s);
/// y += alpha * x
void axpy(float alpha, const Tensor& x, Tensor& y);

[[nodiscard]] float sum(const Tensor& a);
[[nodiscard]] float mean(const Tensor& a);
[[nodiscard]] float max_abs(const Tensor& a);
/// Squared L2 norm of (a - b).
[[nodiscard]] double squared_distance(const Tensor& a, const Tensor& b);

/// Clamp every element into [lo, hi].
[[nodiscard]] Tensor clamp(const Tensor& a, float lo, float hi);

// -- dense linear algebra -----------------------------------------------------
/// C[m,n] = A[m,k] * B[k,n]
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);
/// B[n,m] = A[m,n]^T
[[nodiscard]] Tensor transpose2d(const Tensor& a);

// -- convolution ---------------------------------------------------------------
/// im2col: x[N,C,H,W] -> cols[N, C*k*k, OH*OW]
[[nodiscard]] Tensor im2col(const Tensor& x, const ConvSpec& spec);
/// col2im: inverse scatter-add of im2col, returning [N,C,H,W].
[[nodiscard]] Tensor col2im(const Tensor& cols, const Shape& x_shape, const ConvSpec& spec);

/// y[N,O,OH,OW] = conv(x[N,C,H,W], w[O,C,k,k]) + bias[O]
[[nodiscard]] Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                            const ConvSpec& spec);
/// Gradient w.r.t. input.
[[nodiscard]] Tensor conv2d_backward_input(const Tensor& grad_y, const Tensor& w,
                                           const Shape& x_shape, const ConvSpec& spec);
/// Gradients w.r.t. weights and bias (accumulated into grad_w / grad_b).
void conv2d_backward_params(const Tensor& grad_y, const Tensor& x, const ConvSpec& spec,
                            Tensor& grad_w, Tensor& grad_b);

// -- pooling -------------------------------------------------------------------
struct PoolResult {
    Tensor output;
    std::vector<std::int64_t> argmax;  ///< flat input index per output element (max pool only)
};
[[nodiscard]] PoolResult maxpool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride);
[[nodiscard]] Tensor maxpool2d_backward(const Tensor& grad_y, const Shape& x_shape,
                                        const std::vector<std::int64_t>& argmax);
[[nodiscard]] Tensor avgpool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride);
[[nodiscard]] Tensor avgpool2d_backward(const Tensor& grad_y, const Shape& x_shape,
                                        std::int64_t kernel, std::int64_t stride);

// -- resampling -----------------------------------------------------------------
/// Nearest-neighbour upsample by integer factor.
[[nodiscard]] Tensor upsample_nearest(const Tensor& x, std::int64_t factor);
[[nodiscard]] Tensor upsample_nearest_backward(const Tensor& grad_y, std::int64_t factor);

// -- activations / losses ---------------------------------------------------------
[[nodiscard]] Tensor relu(const Tensor& x);
[[nodiscard]] Tensor relu_backward(const Tensor& grad_y, const Tensor& x);
[[nodiscard]] Tensor sigmoid(const Tensor& x);
[[nodiscard]] Tensor tanh_act(const Tensor& x);

/// Row-wise softmax of logits[n, classes].
[[nodiscard]] Tensor softmax(const Tensor& logits);

/// Mean cross-entropy over the batch plus gradient w.r.t. logits.
struct LossResult {
    float loss = 0.0F;
    Tensor grad_logits;
};
[[nodiscard]] LossResult softmax_cross_entropy(const Tensor& logits,
                                               const std::vector<std::int64_t>& labels);

/// Mean squared error 1/n * ||a-b||^2 with gradient w.r.t. `a`.
[[nodiscard]] LossResult mse_loss(const Tensor& a, const Tensor& b);

}  // namespace c2pi::ops
