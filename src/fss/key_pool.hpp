#pragma once

/// \file key_pool.hpp
/// Buffer of preprocessed FSS ReLU key material, one per session party.
///
/// The preprocessing phase fills the pool with one `ReluKeyShare` per
/// upcoming comparison (sized from the compiled layer plan); the online
/// nonlinear layers drain it FIFO. Both parties' pools stay equal-sized
/// by construction — prefill counts derive from the shared plan and
/// every secure_relu consumes and replenishes symmetrically — so the
/// dealer never has to signal "which key is next".
///
/// Mutex-guarded: a session runs its protocol on one thread, but pools
/// live inside PartyContext which the serving pool exercises under TSan,
/// and a cheap uncontended lock keeps the invariant local.

#include <deque>
#include <mutex>
#include <vector>

#include "core/error.hpp"
#include "fss/compare.hpp"

namespace c2pi::fss {

class KeyPool {
public:
    [[nodiscard]] std::size_t size() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return keys_.size();
    }

    void push(std::vector<ReluKeyShare> batch) {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (auto& k : batch) keys_.push_back(std::move(k));
    }

    /// Remove and return the n oldest keys; throws if fewer are pooled
    /// (the caller is responsible for replenishing first).
    [[nodiscard]] std::vector<ReluKeyShare> take(std::size_t n) {
        const std::lock_guard<std::mutex> lock(mutex_);
        require(keys_.size() >= n, "fss::KeyPool: not enough preprocessed keys");
        std::vector<ReluKeyShare> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(std::move(keys_.front()));
            keys_.pop_front();
        }
        return out;
    }

private:
    mutable std::mutex mutex_;
    std::deque<ReluKeyShare> keys_;
};

}  // namespace c2pi::fss
