#pragma once

/// \file dcf.hpp
/// Distributed comparison function (DCF) over the 64-bit ring — the
/// function-secret-sharing primitive behind the kFss nonlinear backend.
///
/// A DCF for (alpha, beta) splits the comparison function
///     f(x) = beta if x < alpha else 0        (unsigned, over Z_{2^64})
/// into two keys k0, k1 such that Eval(0, k0, x) + Eval(1, k1, x) = f(x)
/// for every x, while either key alone reveals nothing about alpha or
/// beta. The construction is the GGM-tree DCF of Boyle et al.
/// (EUROCRYPT 2021, "Function Secret Sharing for Mixed-Mode and
/// Fixed-Point Secure Computation"): one 128-bit seed per party walks a
/// depth-64 binary tree, with one correction word per level plus a final
/// output correction. Keys are input-independent, so generation hoists
/// into the preprocessing phase (compare.hpp builds ReLU material from
/// pairs of DCFs; key_pool.hpp buffers shipped batches).
///
/// The payload group is Z_{2^64} x Z_{2^64} (`DcfPayload`): the interval-
/// containment trick needs shares of both the predicate bit and
/// predicate*mask, and one 128-bit PRG block converts to exactly one
/// payload. The per-node PRG is one ChaCha20 block (64 bytes -> left/
/// right child seeds + left/right payload converts), reusing the repo's
/// existing primitive.

#include <array>
#include <cstdint>

#include "core/fixed_point.hpp"
#include "crypto/chacha20.hpp"

namespace c2pi::fss {

inline constexpr int kDomainBits = 64;

/// Element of the DCF payload group Z_{2^64} x Z_{2^64}, componentwise
/// addition. `u` carries the comparison predicate, `v` carries
/// predicate * mask (see compare.hpp).
struct DcfPayload {
    Ring u = 0;
    Ring v = 0;

    friend DcfPayload operator+(const DcfPayload& a, const DcfPayload& b) {
        return {a.u + b.u, a.v + b.v};
    }
    friend DcfPayload operator-(const DcfPayload& a, const DcfPayload& b) {
        return {a.u - b.u, a.v - b.v};
    }
    DcfPayload& operator+=(const DcfPayload& b) {
        u += b.u;
        v += b.v;
        return *this;
    }
    [[nodiscard]] DcfPayload negated() const { return {Ring{0} - u, Ring{0} - v}; }
    friend bool operator==(const DcfPayload&, const DcfPayload&) = default;
};

/// One party's half of a DCF: the root seed plus per-level correction
/// words. The party id (0 or 1) is NOT part of the key — Eval takes it
/// explicitly, matching the server/client roles of the session.
struct DcfKey {
    crypto::Block128 root;
    std::array<crypto::Block128, kDomainBits> seed_cw;
    std::array<DcfPayload, kDomainBits> value_cw;
    std::uint64_t t_cw_left = 0;   ///< bit i = level i's left control correction
    std::uint64_t t_cw_right = 0;  ///< bit i = level i's right control correction
    DcfPayload final_cw;

    /// Fixed serialized size (codec in dcf.cpp): root + per-level seed and
    /// value corrections + packed control bits + final correction.
    static constexpr std::size_t kSerializedBytes =
        16 + kDomainBits * 16 + kDomainBits * 16 + 8 + 8 + 16;

    void serialize_into(std::uint8_t* out) const;
    [[nodiscard]] static DcfKey deserialize(const std::uint8_t* in);
};

struct DcfKeyPair {
    DcfKey k0, k1;
};

/// Generate a DCF key pair for f(x) = beta if x < alpha else 0. `prg`
/// supplies the two root seeds (the dealer's local randomness; in the
/// session protocol the server plays dealer, DESIGN.md §4).
[[nodiscard]] DcfKeyPair dcf_gen(Ring alpha, const DcfPayload& beta, crypto::ChaCha20Prg& prg);

/// Evaluate one party's key share at x; the two parties' results sum to
/// f(x) in the payload group.
[[nodiscard]] DcfPayload dcf_eval(const DcfKey& key, int party, Ring x);

}  // namespace c2pi::fss
