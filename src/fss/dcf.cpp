#include "fss/dcf.hpp"

#include <cstring>

#include "core/error.hpp"

namespace c2pi::fss {

namespace {

/// Fixed PRG nonce for node expansion. Distinct from every nonce the
/// repo derives elsewhere (party PRGs use nonce = party + 100, the
/// client key PRG uses 3), so tree seeds never collide with another
/// ChaCha20 stream even under equal keys.
constexpr std::uint64_t kNodeNonce = 0xF55;

/// One GGM node expansion: a single ChaCha20 block (64 bytes) from the
/// node seed yields left/right child seeds and left/right payload
/// converts. The control bits ride as the lsb of each child seed and are
/// masked off, leaving 127-bit effective seeds.
struct NodeExpansion {
    crypto::Block128 seed_l, seed_r;
    DcfPayload value_l, value_r;
    bool t_l, t_r;
};

NodeExpansion expand(const crypto::Block128& seed) {
    crypto::ChaCha20Prg prg(seed, kNodeNonce);
    std::uint8_t buf[64];
    prg.fill_bytes(buf);
    NodeExpansion e;
    e.seed_l = crypto::Block128::from_bytes(buf);
    const crypto::Block128 vl = crypto::Block128::from_bytes(buf + 16);
    e.seed_r = crypto::Block128::from_bytes(buf + 32);
    const crypto::Block128 vr = crypto::Block128::from_bytes(buf + 48);
    e.t_l = (e.seed_l.lo & 1ULL) != 0;
    e.t_r = (e.seed_r.lo & 1ULL) != 0;
    e.seed_l.lo &= ~1ULL;
    e.seed_r.lo &= ~1ULL;
    e.value_l = {vl.lo, vl.hi};
    e.value_r = {vr.lo, vr.hi};
    return e;
}

/// Convert a final-level seed into the payload group (the same map the
/// per-level payload converts use).
DcfPayload convert(const crypto::Block128& s) { return {s.lo, s.hi}; }

DcfPayload signed_by(bool negate, const DcfPayload& p) { return negate ? p.negated() : p; }

}  // namespace

DcfKeyPair dcf_gen(Ring alpha, const DcfPayload& beta, crypto::ChaCha20Prg& prg) {
    DcfKeyPair kp;
    crypto::Block128 s0 = prg.next_block();
    crypto::Block128 s1 = prg.next_block();
    kp.k0.root = s0;
    kp.k1.root = s1;
    bool t0 = false, t1 = true;
    DcfPayload v_alpha{};  // running payload correction along the alpha path

    for (int i = 0; i < kDomainBits; ++i) {
        const bool alpha_bit = ((alpha >> (kDomainBits - 1 - i)) & 1ULL) != 0;
        const NodeExpansion e0 = expand(s0);
        const NodeExpansion e1 = expand(s1);
        // Keep follows the alpha path; Lose is the sibling. When alpha's
        // bit is 1 the lost (left) subtree lies entirely below alpha, so
        // its correction must add beta.
        const bool lose_is_left = alpha_bit;
        const crypto::Block128& s_lose0 = lose_is_left ? e0.seed_l : e0.seed_r;
        const crypto::Block128& s_lose1 = lose_is_left ? e1.seed_l : e1.seed_r;
        const DcfPayload& v_lose0 = lose_is_left ? e0.value_l : e0.value_r;
        const DcfPayload& v_lose1 = lose_is_left ? e1.value_l : e1.value_r;
        const crypto::Block128& s_keep0 = lose_is_left ? e0.seed_r : e0.seed_l;
        const crypto::Block128& s_keep1 = lose_is_left ? e1.seed_r : e1.seed_l;
        const DcfPayload& v_keep0 = lose_is_left ? e0.value_r : e0.value_l;
        const DcfPayload& v_keep1 = lose_is_left ? e1.value_r : e1.value_l;
        const bool t_keep0 = lose_is_left ? e0.t_r : e0.t_l;
        const bool t_keep1 = lose_is_left ? e1.t_r : e1.t_l;

        const crypto::Block128 seed_cw = s_lose0 ^ s_lose1;
        DcfPayload value_cw = signed_by(t1, v_lose1 - v_lose0 - v_alpha);
        if (lose_is_left) value_cw += signed_by(t1, beta);
        v_alpha = v_alpha - v_keep1 + v_keep0 + signed_by(t1, value_cw);

        const bool t_cw_l = e0.t_l ^ e1.t_l ^ alpha_bit ^ true;
        const bool t_cw_r = e0.t_r ^ e1.t_r ^ alpha_bit;
        const bool t_cw_keep = lose_is_left ? t_cw_r : t_cw_l;

        kp.k0.seed_cw[static_cast<std::size_t>(i)] = seed_cw;
        kp.k1.seed_cw[static_cast<std::size_t>(i)] = seed_cw;
        kp.k0.value_cw[static_cast<std::size_t>(i)] = value_cw;
        kp.k1.value_cw[static_cast<std::size_t>(i)] = value_cw;
        if (t_cw_l) {
            kp.k0.t_cw_left |= 1ULL << i;
            kp.k1.t_cw_left |= 1ULL << i;
        }
        if (t_cw_r) {
            kp.k0.t_cw_right |= 1ULL << i;
            kp.k1.t_cw_right |= 1ULL << i;
        }

        s0 = t0 ? (s_keep0 ^ seed_cw) : s_keep0;
        s1 = t1 ? (s_keep1 ^ seed_cw) : s_keep1;
        t0 = t_keep0 ^ (t0 && t_cw_keep);
        t1 = t_keep1 ^ (t1 && t_cw_keep);
    }

    const DcfPayload final_cw = signed_by(t1, convert(s1) - convert(s0) - v_alpha);
    kp.k0.final_cw = final_cw;
    kp.k1.final_cw = final_cw;
    return kp;
}

DcfPayload dcf_eval(const DcfKey& key, int party, Ring x) {
    require(party == 0 || party == 1, "dcf_eval: party must be 0 or 1");
    const bool negate = party == 1;
    crypto::Block128 s = key.root;
    bool t = party == 1;
    DcfPayload out{};

    for (int i = 0; i < kDomainBits; ++i) {
        const bool x_bit = ((x >> (kDomainBits - 1 - i)) & 1ULL) != 0;
        const NodeExpansion e = expand(s);
        // Payload converts are taken RAW (pre-correction); only the child
        // seeds and control bits absorb the correction word.
        const DcfPayload& v_child = x_bit ? e.value_r : e.value_l;
        out += signed_by(negate, t ? v_child + key.value_cw[static_cast<std::size_t>(i)]
                                   : v_child);
        crypto::Block128 s_child = x_bit ? e.seed_r : e.seed_l;
        bool t_child = x_bit ? e.t_r : e.t_l;
        if (t) {
            s_child ^= key.seed_cw[static_cast<std::size_t>(i)];
            const std::uint64_t t_cw = x_bit ? key.t_cw_right : key.t_cw_left;
            t_child ^= ((t_cw >> i) & 1ULL) != 0;
        }
        s = s_child;
        t = t_child;
    }

    out += signed_by(negate, t ? convert(s) + key.final_cw : convert(s));
    return out;
}

// ------------------------------------------------------------------- codec ---

namespace {

void put_u64(std::uint8_t* out, std::uint64_t v) { std::memcpy(out, &v, 8); }
std::uint64_t get_u64(const std::uint8_t* in) {
    std::uint64_t v;
    std::memcpy(&v, in, 8);
    return v;
}

}  // namespace

void DcfKey::serialize_into(std::uint8_t* out) const {
    root.to_bytes(out);
    out += 16;
    for (const auto& cw : seed_cw) {
        cw.to_bytes(out);
        out += 16;
    }
    for (const auto& cw : value_cw) {
        put_u64(out, cw.u);
        put_u64(out + 8, cw.v);
        out += 16;
    }
    put_u64(out, t_cw_left);
    put_u64(out + 8, t_cw_right);
    out += 16;
    put_u64(out, final_cw.u);
    put_u64(out + 8, final_cw.v);
}

DcfKey DcfKey::deserialize(const std::uint8_t* in) {
    DcfKey key;
    key.root = crypto::Block128::from_bytes(in);
    in += 16;
    for (auto& cw : key.seed_cw) {
        cw = crypto::Block128::from_bytes(in);
        in += 16;
    }
    for (auto& cw : key.value_cw) {
        cw.u = get_u64(in);
        cw.v = get_u64(in + 8);
        in += 16;
    }
    key.t_cw_left = get_u64(in);
    key.t_cw_right = get_u64(in + 8);
    in += 16;
    key.final_cw.u = get_u64(in);
    key.final_cw.v = get_u64(in + 8);
    return key;
}

}  // namespace c2pi::fss
