#include "fss/compare.hpp"

#include <cstring>

#include "core/error.hpp"
#include "fss/key_pool.hpp"
#include "net/transport.hpp"

namespace c2pi::fss {

namespace {

constexpr Ring kHalfRing = Ring{1} << 63;

void put_u64(std::uint8_t* out, std::uint64_t v) { std::memcpy(out, &v, 8); }
std::uint64_t get_u64(const std::uint8_t* in) {
    std::uint64_t v;
    std::memcpy(&v, in, 8);
    return v;
}

}  // namespace

ReluKeyPair gen_relu_material(crypto::ChaCha20Prg& prg) {
    const Ring r = prg.next_u64();
    const bool wrap = r >= kHalfRing;
    const DcfPayload beta{1, r};
    // Interval containment: 1{(z-r) mod 2^64 in [0, 2^63)} equals
    // DCF_{r+2^63}(z) - DCF_r(z) + wrap, case-checked for both wrap
    // values; the payload's second lane carries the same identity
    // multiplied by r.
    const DcfKeyPair pair_a = dcf_gen(r, beta, prg);
    const DcfKeyPair pair_b = dcf_gen(r + kHalfRing, beta, prg);

    ReluKeyPair out;
    out.server.key_a = pair_a.k0;
    out.server.key_b = pair_b.k0;
    out.client.key_a = pair_a.k1;
    out.client.key_b = pair_b.k1;

    out.server.r_share = prg.next_u64();
    out.client.r_share = r - out.server.r_share;
    const Ring wrap_u = wrap ? Ring{1} : Ring{0};
    const Ring wrap_v = wrap ? r : Ring{0};
    out.server.u_const = prg.next_u64();
    out.client.u_const = wrap_u - out.server.u_const;
    out.server.v_const = prg.next_u64();
    out.client.v_const = wrap_v - out.server.v_const;
    return out;
}

Ring eval_relu(const ReluKeyShare& key, int party, Ring z) {
    const DcfPayload d =
        dcf_eval(key.key_b, party, z) - dcf_eval(key.key_a, party, z);
    const Ring u = d.u + key.u_const;  // share of the drelu bit 1{y >= 0}
    const Ring v = d.v + key.v_const;  // share of drelu * r
    return z * u - v;                  // shares of drelu * (z - r) = ReLU(y)
}

// ------------------------------------------------------------------- codec ---

std::vector<std::uint8_t> serialize_batch(const std::vector<ReluKeyShare>& keys) {
    std::vector<std::uint8_t> out(keys.size() * ReluKeyShare::kSerializedBytes);
    std::uint8_t* p = out.data();
    for (const auto& key : keys) {
        put_u64(p, key.r_share);
        put_u64(p + 8, key.u_const);
        put_u64(p + 16, key.v_const);
        key.key_a.serialize_into(p + 24);
        key.key_b.serialize_into(p + 24 + DcfKey::kSerializedBytes);
        p += ReluKeyShare::kSerializedBytes;
    }
    return out;
}

std::vector<ReluKeyShare> deserialize_batch(const std::vector<std::uint8_t>& bytes) {
    require(bytes.size() % ReluKeyShare::kSerializedBytes == 0,
            "fss key batch: payload is not a whole number of key records");
    std::vector<ReluKeyShare> keys(bytes.size() / ReluKeyShare::kSerializedBytes);
    const std::uint8_t* p = bytes.data();
    for (auto& key : keys) {
        key.r_share = get_u64(p);
        key.u_const = get_u64(p + 8);
        key.v_const = get_u64(p + 16);
        key.key_a = DcfKey::deserialize(p + 24);
        key.key_b = DcfKey::deserialize(p + 24 + DcfKey::kSerializedBytes);
        p += ReluKeyShare::kSerializedBytes;
    }
    return keys;
}

// ---------------------------------------------------------------- shipment ---

void dealer_replenish(net::Transport& transport, crypto::ChaCha20Prg& prg, KeyPool& pool,
                      std::size_t count) {
    if (count == 0) return;
    std::vector<ReluKeyShare> mine;
    std::vector<ReluKeyShare> theirs;
    mine.reserve(count);
    theirs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        ReluKeyPair pair = gen_relu_material(prg);
        mine.push_back(std::move(pair.server));
        theirs.push_back(std::move(pair.client));
    }
    transport.send_keys_bytes(serialize_batch(theirs));
    pool.push(std::move(mine));
}

void client_replenish(net::Transport& transport, KeyPool& pool, std::size_t count) {
    if (count == 0) return;
    auto batch = deserialize_batch(transport.recv_keys_bytes());
    require(batch.size() == count,
            "fss key batch: shipped key count does not match the plan-derived schedule");
    pool.push(std::move(batch));
}

}  // namespace c2pi::fss
