#pragma once

/// \file compare.hpp
/// FSS ReLU material: interval-containment comparison built from DCF
/// pairs, plus the dealer/client shipment protocol.
///
/// The kFss backend computes ReLU(y) on an additively shared y with one
/// reconstruction round and local DCF evaluations. Per comparison the
/// dealer (the server, DESIGN.md §4) samples a random mask r and builds:
///
///   - K_a  = DCF key pair for alpha = r            with payload (1, r)
///   - K_b  = DCF key pair for alpha = r + 2^63     with payload (1, r)
///   - additive shares of r and of wrap*(1, r), wrap = 1{r >= 2^63}
///
/// Online, the parties reveal z = y + r (each sends its share of
/// y + r in the same round as the existing reveal_shares), then locally
///
///   (u_p, v_p) = Eval(K_b, p, z) - Eval(K_a, p, z) + wrap-constant_p
///   out_p      = z * u_p - v_p
///
/// which sums to 1{z - r in [0, 2^63)} * (z - r) = ReLU(y), matching
/// the signed drelu semantics b = 1{y >= 0}. Keys are input-independent,
/// so generation and shipment hoist into the preprocessing phase
/// (key_pool.hpp buffers batches; the transport's KEYS frames carry the
/// client halves).

#include <cstdint>
#include <vector>

#include "fss/dcf.hpp"

namespace c2pi::net {
class Transport;
}

namespace c2pi::fss {

class KeyPool;

/// One party's material for one FSS ReLU comparison.
struct ReluKeyShare {
    Ring r_share = 0;   ///< additive share of the mask r
    Ring u_const = 0;   ///< share of wrap * 1
    Ring v_const = 0;   ///< share of wrap * r
    DcfKey key_a;       ///< DCF at alpha = r
    DcfKey key_b;       ///< DCF at alpha = r + 2^63

    static constexpr std::size_t kSerializedBytes = 8 + 8 + 8 + 2 * DcfKey::kSerializedBytes;
};

/// Both parties' halves of one comparison's material.
struct ReluKeyPair {
    ReluKeyShare server;  ///< party 0 half
    ReluKeyShare client;  ///< party 1 half
};

/// Dealer-side generation of one comparison's material. `prg` supplies
/// every random choice (mask, share splits, DCF root seeds).
[[nodiscard]] ReluKeyPair gen_relu_material(crypto::ChaCha20Prg& prg);

/// Local online evaluation: given this party's key share and the
/// reconstructed masked value z = y + r, return this party's additive
/// share of ReLU(y).
[[nodiscard]] Ring eval_relu(const ReluKeyShare& key, int party, Ring z);

/// Batch codec for KEYS-frame shipment. Layout: count * kSerializedBytes,
/// keys back to back (r_share | u_const | v_const | key_a | key_b, all
/// little-endian).
[[nodiscard]] std::vector<std::uint8_t> serialize_batch(const std::vector<ReluKeyShare>& keys);
/// Rejects a payload whose size is not an exact multiple of the record
/// size with a typed c2pi::Error (truncated shipment, corrupt frame).
[[nodiscard]] std::vector<ReluKeyShare> deserialize_batch(const std::vector<std::uint8_t>& bytes);

/// Dealer side of one replenish round: generate `count` comparisons,
/// ship the client halves in one KEYS frame, push the server halves into
/// `pool`. No-op when count == 0 (no frame on the wire, so the client
/// must compute the same count and skip its recv symmetrically).
void dealer_replenish(net::Transport& transport, crypto::ChaCha20Prg& prg, KeyPool& pool,
                      std::size_t count);

/// Client side: receive one KEYS frame and pool the shipped halves;
/// throws if the batch size differs from the expected `count` (the two
/// sides must agree on the plan-derived schedule). No-op when count == 0.
void client_replenish(net::Transport& transport, KeyPool& pool, std::size_t count);

}  // namespace c2pi::fss
