#pragma once

/// \file optimizer.hpp
/// First-order optimizers bound to a fixed parameter list. The paper
/// trains inversion models with SGD (lr 0.001); Adam is provided for the
/// MLA input optimisation and classifier training.

#include <span>
#include <vector>

#include "nn/layer.hpp"

namespace c2pi::nn {

class Optimizer {
public:
    explicit Optimizer(std::vector<Parameter*> params) : params_(std::move(params)) {}
    virtual ~Optimizer() = default;
    Optimizer(const Optimizer&) = delete;
    Optimizer& operator=(const Optimizer&) = delete;

    /// Apply one update from accumulated gradients, then zero them.
    virtual void step() = 0;

    void zero_grad() {
        for (auto* p : params_) p->zero_grad();
    }

protected:
    std::vector<Parameter*> params_;
};

/// SGD with classical momentum and optional weight decay.
class Sgd final : public Optimizer {
public:
    Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.9F, float weight_decay = 0.0F);
    void step() override;
    void set_lr(float lr) { lr_ = lr; }

private:
    float lr_, momentum_, weight_decay_;
    std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015).
class Adam final : public Optimizer {
public:
    Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9F, float beta2 = 0.999F,
         float eps = 1e-8F);
    void step() override;
    void set_lr(float lr) { lr_ = lr; }

private:
    float lr_, beta1_, beta2_, eps_;
    std::int64_t t_ = 0;
    std::vector<Tensor> m_, v_;
};

}  // namespace c2pi::nn
