#pragma once

/// \file zoo.hpp
/// Typed model-zoo registry. Replaces the stringly make_model(name,
/// config) factory: list() enumerates what exists (with input shapes and
/// parameter counts, so tools can print a catalogue without hard-coding
/// it), build(id, config) constructs by id, and an unknown id raises the
/// typed UnknownModel error naming every valid id instead of a bare
/// string mismatch deep in a bench.

#include <string>
#include <vector>

#include "nn/models.hpp"

namespace c2pi::nn::zoo {

/// Catalogue entry for one registered architecture, evaluated at the
/// default ModelConfig (width 0.25, 32x32 RGB, 10 classes).
struct Descriptor {
    std::string id;                ///< build() key, e.g. "resnet9"
    std::string description;       ///< one-line human summary
    Shape input_chw;               ///< default input shape {C, H, W}
    std::int64_t param_count = 0;  ///< trainable scalars at default config
    std::int64_t num_linear_ops = 0;
    bool residual = false;         ///< true when the graph has skip edges
};

/// Typed error for build() with an id that is not in list().
struct UnknownModel final : Error {
    explicit UnknownModel(const std::string& id);
};

/// All registered models, in registration order. Built once, lazily.
[[nodiscard]] const std::vector<Descriptor>& list();

/// Construct a model by id; throws UnknownModel for ids not in list().
[[nodiscard]] Graph build(const std::string& id, const ModelConfig& config = {});

}  // namespace c2pi::nn::zoo
