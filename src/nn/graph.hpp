#pragma once

/// \file graph.hpp
/// DAG model IR — the representation shared by plaintext inference,
/// training, the IDPA attacks, the PI engines and the C2PI boundary
/// search.
///
/// A Graph is a topologically-ordered list of nodes. Each node is either
/// a Layer applied to the output of one earlier node, or an explicit
/// residual-add joining two earlier nodes. Node -1 (kInput) denotes the
/// graph input. Edges always point backward, so evaluation is a single
/// forward sweep; Sequential (sequential.hpp) is the trivially-linear
/// special case every pre-DAG call site was written against.
///
/// Cut-point convention (paper §II "Notations"): linear ops (Conv2d /
/// Linear) are numbered 1..n; "layer 3" is the third linear op and "layer
/// 3.5" is the ReLU right after it. A CutPoint names the last *crypto*
/// operation; flat_cut_index() translates it into the index of the last
/// node evaluated under MPC. On a DAG, only cuts at articulation points
/// (no skip edge crossing the cut — is_articulation()) give the
/// crypto-clear split a well-defined boundary activation.

#include <functional>
#include <optional>

#include "nn/layer.hpp"

namespace c2pi::nn {

/// Boundary position in the paper's numbering scheme.
struct CutPoint {
    std::int64_t linear_index = 1;  ///< 1-based index of a Conv2d/Linear op
    bool after_relu = false;        ///< true = the ".5" position

    [[nodiscard]] double as_decimal() const {
        return static_cast<double>(linear_index) + (after_relu ? 0.5 : 0.0);
    }
    friend bool operator==(const CutPoint&, const CutPoint&) = default;
};

class Graph {
public:
    /// Edge value naming the graph input rather than a node.
    static constexpr std::int64_t kInput = -1;

    Graph() = default;
    Graph(Graph&&) = default;
    Graph& operator=(Graph&&) = default;

    /// Append a layer consuming the previous node (chain order); returns
    /// it for convenient chaining/configuration.
    Layer& add(LayerPtr layer);

    template <typename T, typename... Args>
    T& emplace(Args&&... args) {
        auto layer = std::make_unique<T>(std::forward<Args>(args)...);
        T& ref = *layer;
        add(std::move(layer));
        return ref;
    }

    /// Append a layer consuming an explicit earlier node (or kInput);
    /// returns the new node's index.
    std::int64_t add_node(LayerPtr layer, std::int64_t input);
    /// Append a residual add joining two earlier nodes; returns the new
    /// node's index. Free under additive secret sharing (plan.cpp).
    std::int64_t add_residual(std::int64_t a, std::int64_t b);

    /// Index of the most recently appended node (kInput when empty).
    [[nodiscard]] std::int64_t last() const {
        return static_cast<std::int64_t>(nodes_.size()) - 1;
    }

    [[nodiscard]] std::size_t size() const { return nodes_.size(); }
    /// True when node i is a residual add (it has no Layer).
    [[nodiscard]] bool is_add(std::size_t i) const { return nodes_.at(i).layer == nullptr; }
    [[nodiscard]] Layer& layer(std::size_t i);
    [[nodiscard]] const Layer& layer(std::size_t i) const;
    /// First input edge of node i (kInput = the graph input).
    [[nodiscard]] std::int64_t input0(std::size_t i) const { return nodes_.at(i).input0; }
    /// Second input edge (adds only; kInput-1 never occurs — it is -1
    /// for non-add nodes, meaning "unused").
    [[nodiscard]] std::int64_t input1(std::size_t i) const { return nodes_.at(i).input1; }

    /// True when every chain edge is i-1 and no skip edges exist — such a
    /// graph is behaviorally a Sequential.
    [[nodiscard]] bool is_linear_chain() const;
    /// True when no edge from a later node reaches back past node i, i.e.
    /// cutting after node i separates the graph. Only articulation points
    /// are valid crypto-clear boundaries.
    [[nodiscard]] bool is_articulation(std::size_t i) const;

    /// Full forward pass.
    [[nodiscard]] Tensor forward(const Tensor& x);
    /// Forward through nodes [begin, end); x stands in for node begin-1.
    /// Fails if an edge inside the range reaches back past begin-1.
    [[nodiscard]] Tensor forward_range(std::size_t begin, std::size_t end, const Tensor& x);
    /// Inference-only full forward: no activation caches are written, so
    /// a const model can serve many threads concurrently (Layer::infer).
    [[nodiscard]] Tensor infer(const Tensor& x) const;
    /// Inference-only forward through nodes [begin, end).
    [[nodiscard]] Tensor infer_range(std::size_t begin, std::size_t end, const Tensor& x) const;
    /// Backward through nodes [begin, end) in reverse order; returns
    /// dL/d(input of node begin-1's consumer), accumulating fan-out
    /// gradients across skip edges. forward_range over the same range
    /// must have run immediately before.
    [[nodiscard]] Tensor backward_range(std::size_t begin, std::size_t end, const Tensor& grad);

    [[nodiscard]] std::vector<Parameter*> parameters();
    void zero_grad();

    /// Node indices of all linear ops (Conv2d / Linear), in order.
    [[nodiscard]] std::vector<std::size_t> linear_op_indices() const;
    /// Number of linear ops.
    [[nodiscard]] std::int64_t num_linear_ops() const;

    /// Node index of the last layer covered by the cut (the conv/linear op
    /// itself, or its directly-following ReLU for the ".5" position).
    [[nodiscard]] std::size_t flat_cut_index(const CutPoint& cut) const;

    /// Output of the first `cut` operations for input x (the paper's M_l(x)).
    [[nodiscard]] Tensor forward_prefix(const CutPoint& cut, const Tensor& x);
    /// Remaining network applied to an intermediate activation.
    [[nodiscard]] Tensor forward_suffix(const CutPoint& cut, const Tensor& intermediate);

    /// Fold every BatchNorm2d into the Conv2d feeding it (compile-time:
    /// W'[o] = W[o]·γ/σ, b' = (b−μ)·γ/σ + β) and drop the BN nodes.
    /// Requires each BN's producer to be a Conv2d with bias that no other
    /// node consumes. Inference is unchanged up to float rounding; the PI
    /// planner only accepts BN-free graphs, so residual zoo models fold
    /// before compilation.
    void fold_batch_norms();

    /// Human-readable architecture listing (skip edges annotated).
    [[nodiscard]] std::string describe() const;

private:
    struct Node {
        LayerPtr layer;               // null = residual add
        std::int64_t input0 = kInput;
        std::int64_t input1 = -1;     // second operand (adds only)
    };

    std::vector<Node> nodes_;
};

/// Shape of M_l(x) for a given input shape, computed by a cache-free dry run.
[[nodiscard]] Shape activation_shape(const Graph& model, const CutPoint& cut,
                                     const Shape& input_shape);

}  // namespace c2pi::nn
