#include "nn/layers.hpp"

#include <cmath>
#include <sstream>

namespace c2pi::nn {

namespace {
Tensor kaiming_init(Shape shape, std::int64_t fan_in, Rng& rng) {
    const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
    return Tensor::randn(std::move(shape), rng, stddev);
}
}  // namespace

// ---------------------------------------------------------------- Conv2d ---

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels, ops::ConvSpec spec, Rng& rng,
               bool with_bias)
    : spec_(spec),
      weight_(kaiming_init({out_channels, in_channels, spec.kernel, spec.kernel},
                           in_channels * spec.kernel * spec.kernel, rng)),
      bias_(with_bias ? Parameter(Tensor({out_channels})) : Parameter(Tensor({1}))),
      with_bias_(with_bias) {
    require(in_channels > 0 && out_channels > 0, "conv channels must be positive");
}

Tensor Conv2d::forward(const Tensor& x) {
    cached_input_ = x;
    return infer(x);
}

Tensor Conv2d::infer(const Tensor& x) const {
    return ops::conv2d(x, weight_.value, with_bias_ ? bias_.value : Tensor{}, spec_);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
    require(!cached_input_.empty(), "backward before forward");
    if (with_bias_) {
        ops::conv2d_backward_params(grad_out, cached_input_, spec_, weight_.grad, bias_.grad);
    } else {
        Tensor no_bias;
        ops::conv2d_backward_params(grad_out, cached_input_, spec_, weight_.grad, no_bias);
    }
    return ops::conv2d_backward_input(grad_out, weight_.value, cached_input_.shape(), spec_);
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
    out.push_back(&weight_);
    if (with_bias_) out.push_back(&bias_);
}

std::string Conv2d::describe() const {
    std::ostringstream os;
    os << "Conv2d(" << in_channels() << "->" << out_channels() << ", k=" << spec_.kernel
       << ", s=" << spec_.stride << ", p=" << spec_.pad;
    if (spec_.dilation != 1) os << ", d=" << spec_.dilation;
    os << ')';
    return os.str();
}

// ---------------------------------------------------------------- Linear ---

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng, bool with_bias)
    : weight_(kaiming_init({out_features, in_features}, in_features, rng)),
      bias_(with_bias ? Parameter(Tensor({out_features})) : Parameter(Tensor({1}))),
      with_bias_(with_bias) {}

Tensor Linear::forward(const Tensor& x) {
    require(x.rank() == 2 && x.dim(1) == in_features(), "linear input shape mismatch");
    cached_input_ = x;
    return infer(x);
}

Tensor Linear::infer(const Tensor& x) const {
    require(x.rank() == 2 && x.dim(1) == in_features(), "linear input shape mismatch");
    Tensor y = ops::matmul(x, ops::transpose2d(weight_.value));  // [n, out]
    if (with_bias_) {
        for (std::int64_t i = 0; i < y.dim(0); ++i)
            for (std::int64_t j = 0; j < y.dim(1); ++j) y.at(i, j) += bias_.value[j];
    }
    return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
    require(!cached_input_.empty(), "backward before forward");
    // dW = grad^T x ; dx = grad W
    const Tensor gw = ops::matmul(ops::transpose2d(grad_out), cached_input_);
    for (std::int64_t i = 0; i < gw.numel(); ++i) weight_.grad[i] += gw[i];
    if (with_bias_) {
        for (std::int64_t i = 0; i < grad_out.dim(0); ++i)
            for (std::int64_t j = 0; j < grad_out.dim(1); ++j) bias_.grad[j] += grad_out.at(i, j);
    }
    return ops::matmul(grad_out, weight_.value);
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
    out.push_back(&weight_);
    if (with_bias_) out.push_back(&bias_);
}

std::string Linear::describe() const {
    std::ostringstream os;
    os << "Linear(" << in_features() << "->" << out_features() << ')';
    return os.str();
}

// ------------------------------------------------------------------ Relu ---

Tensor Relu::forward(const Tensor& x) {
    cached_input_ = x;
    return infer(x);
}

Tensor Relu::infer(const Tensor& x) const { return ops::relu(x); }

Tensor Relu::backward(const Tensor& grad_out) {
    require(!cached_input_.empty(), "backward before forward");
    return ops::relu_backward(grad_out, cached_input_);
}

// ------------------------------------------------------------- MaxPool2d ---

Tensor MaxPool2d::forward(const Tensor& x) {
    cached_shape_ = x.shape();
    auto res = ops::maxpool2d(x, kernel_, stride_);
    cached_argmax_ = std::move(res.argmax);
    return std::move(res.output);
}

Tensor MaxPool2d::infer(const Tensor& x) const {
    return std::move(ops::maxpool2d(x, kernel_, stride_).output);
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
    require(!cached_argmax_.empty(), "backward before forward");
    return ops::maxpool2d_backward(grad_out, cached_shape_, cached_argmax_);
}

std::string MaxPool2d::describe() const {
    std::ostringstream os;
    os << "MaxPool2d(k=" << kernel_ << ", s=" << stride_ << ')';
    return os.str();
}

// ------------------------------------------------------------- AvgPool2d ---

Tensor AvgPool2d::forward(const Tensor& x) {
    cached_shape_ = x.shape();
    return infer(x);
}

Tensor AvgPool2d::infer(const Tensor& x) const { return ops::avgpool2d(x, kernel_, stride_); }

Tensor AvgPool2d::backward(const Tensor& grad_out) {
    require(!cached_shape_.empty(), "backward before forward");
    return ops::avgpool2d_backward(grad_out, cached_shape_, kernel_, stride_);
}

std::string AvgPool2d::describe() const {
    std::ostringstream os;
    os << "AvgPool2d(k=" << kernel_ << ", s=" << stride_ << ')';
    return os.str();
}

// ----------------------------------------------------------- BatchNorm2d ---

BatchNorm2d::BatchNorm2d(std::int64_t channels, Rng& rng)
    : gamma_(Parameter(Tensor({channels}))),
      beta_(Parameter(Tensor::randn({channels}, rng, 0.05F))),
      running_mean_(Tensor::randn({channels}, rng, 0.05F)),
      running_var_(Tensor({channels})) {
    require(channels > 0, "batch-norm channels must be positive");
    for (std::int64_t c = 0; c < channels; ++c) {
        gamma_.value[c] = 1.0F + rng.normal(0.0F, 0.1F);
        running_var_[c] = 1.0F + rng.uniform(0.0F, 0.25F);
    }
}

Tensor BatchNorm2d::forward(const Tensor& x) {
    cached_input_ = x;
    return infer(x);
}

Tensor BatchNorm2d::infer(const Tensor& x) const {
    require(x.rank() == 4 && x.dim(1) == gamma_.value.numel(),
            "batch-norm input must be [N,C,H,W] with matching channels");
    const std::int64_t channels = x.dim(1);
    const std::int64_t plane = x.dim(2) * x.dim(3);
    Tensor y(x.shape());
    for (std::int64_t n = 0; n < x.dim(0); ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
            const float inv_std = 1.0F / std::sqrt(running_var_[c] + eps_);
            const float scale = gamma_.value[c] * inv_std;
            const float shift = beta_.value[c] - running_mean_[c] * scale;
            const std::int64_t base = (n * channels + c) * plane;
            for (std::int64_t k = 0; k < plane; ++k) y[base + k] = x[base + k] * scale + shift;
        }
    }
    return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
    require(!cached_input_.empty(), "backward before forward");
    // Running statistics are constants here, so the map is a per-channel
    // affine: dx = g·γ/σ, dγ += Σ g·(x−μ)/σ, dβ += Σ g.
    const std::int64_t channels = cached_input_.dim(1);
    const std::int64_t plane = cached_input_.dim(2) * cached_input_.dim(3);
    Tensor gx(cached_input_.shape());
    for (std::int64_t n = 0; n < cached_input_.dim(0); ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
            const float inv_std = 1.0F / std::sqrt(running_var_[c] + eps_);
            const std::int64_t base = (n * channels + c) * plane;
            for (std::int64_t k = 0; k < plane; ++k) {
                const float g = grad_out[base + k];
                gx[base + k] = g * gamma_.value[c] * inv_std;
                gamma_.grad[c] += g * (cached_input_[base + k] - running_mean_[c]) * inv_std;
                beta_.grad[c] += g;
            }
        }
    }
    return gx;
}

void BatchNorm2d::collect_parameters(std::vector<Parameter*>& out) {
    out.push_back(&gamma_);
    out.push_back(&beta_);
}

std::string BatchNorm2d::describe() const {
    std::ostringstream os;
    os << "BatchNorm2d(" << gamma_.value.numel() << ')';
    return os.str();
}

// --------------------------------------------------------- GlobalAvgPool ---

Tensor GlobalAvgPool::forward(const Tensor& x) {
    cached_shape_ = x.shape();
    return infer(x);
}

Tensor GlobalAvgPool::infer(const Tensor& x) const {
    require(x.rank() == 4, "global-avgpool input must be [N,C,H,W]");
    const std::int64_t plane = x.dim(2) * x.dim(3);
    Tensor y({x.dim(0), x.dim(1)});
    for (std::int64_t i = 0; i < y.numel(); ++i) {
        float acc = 0.0F;
        for (std::int64_t k = 0; k < plane; ++k) acc += x[i * plane + k];
        y[i] = acc / static_cast<float>(plane);
    }
    return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
    require(!cached_shape_.empty(), "backward before forward");
    const std::int64_t plane = cached_shape_[2] * cached_shape_[3];
    Tensor gx(cached_shape_);
    for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
        const float g = grad_out[i] / static_cast<float>(plane);
        for (std::int64_t k = 0; k < plane; ++k) gx[i * plane + k] = g;
    }
    return gx;
}

// --------------------------------------------------------------- Flatten ---

Tensor Flatten::forward(const Tensor& x) {
    cached_shape_ = x.shape();
    return infer(x);
}

Tensor Flatten::infer(const Tensor& x) const {
    return x.reshaped({x.dim(0), x.numel() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
    require(!cached_shape_.empty(), "backward before forward");
    return grad_out.reshaped(cached_shape_);
}

// -------------------------------------------------------------- Upsample ---

Tensor Upsample::forward(const Tensor& x) { return infer(x); }

Tensor Upsample::infer(const Tensor& x) const { return ops::upsample_nearest(x, factor_); }

Tensor Upsample::backward(const Tensor& grad_out) {
    return ops::upsample_nearest_backward(grad_out, factor_);
}

std::string Upsample::describe() const {
    std::ostringstream os;
    os << "Upsample(x" << factor_ << ')';
    return os.str();
}

// --------------------------------------------------------------- Reshape ---

Tensor Reshape::forward(const Tensor& x) {
    cached_shape_ = x.shape();
    return infer(x);
}

Tensor Reshape::infer(const Tensor& x) const {
    Shape out{x.dim(0)};
    out.insert(out.end(), target_.begin(), target_.end());
    return x.reshaped(std::move(out));
}

Tensor Reshape::backward(const Tensor& grad_out) {
    require(!cached_shape_.empty(), "backward before forward");
    return grad_out.reshaped(cached_shape_);
}

std::string Reshape::describe() const { return "Reshape(to " + shape_to_string(target_) + ')'; }

// --------------------------------------------------------- ResidualBlock ---

ResidualBlock::ResidualBlock(std::int64_t in_channels, std::int64_t out_channels, Rng& rng)
    : conv1_(std::make_unique<Conv2d>(in_channels, out_channels,
                                      ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng)),
      relu1_(std::make_unique<Relu>()),
      conv2_(std::make_unique<Conv2d>(out_channels, out_channels,
                                      ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng)) {
    if (in_channels != out_channels) {
        projection_ = std::make_unique<Conv2d>(in_channels, out_channels,
                                               ops::ConvSpec{.kernel = 1, .stride = 1, .pad = 0}, rng);
    }
}

Tensor ResidualBlock::forward(const Tensor& x) {
    cached_input_ = x;
    Tensor h = conv2_->forward(relu1_->forward(conv1_->forward(x)));
    const Tensor skip = projection_ ? projection_->forward(x) : x;
    cached_pre_activation_ = ops::add(h, skip);
    return ops::relu(cached_pre_activation_);
}

Tensor ResidualBlock::infer(const Tensor& x) const {
    const Tensor h = conv2_->infer(relu1_->infer(conv1_->infer(x)));
    const Tensor skip = projection_ ? projection_->infer(x) : x;
    return ops::relu(ops::add(h, skip));
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
    require(!cached_pre_activation_.empty(), "backward before forward");
    const Tensor g = ops::relu_backward(grad_out, cached_pre_activation_);
    Tensor gx = conv1_->backward(relu1_->backward(conv2_->backward(g)));
    if (projection_) {
        ops::axpy(1.0F, projection_->backward(g), gx);
    } else {
        ops::axpy(1.0F, g, gx);
    }
    return gx;
}

void ResidualBlock::collect_parameters(std::vector<Parameter*>& out) {
    conv1_->collect_parameters(out);
    conv2_->collect_parameters(out);
    if (projection_) projection_->collect_parameters(out);
}

std::string ResidualBlock::describe() const {
    std::ostringstream os;
    os << "ResidualBlock(" << conv1_->in_channels() << "->" << conv1_->out_channels() << ')';
    return os.str();
}

}  // namespace c2pi::nn
