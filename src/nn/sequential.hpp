#pragma once

/// \file sequential.hpp
/// Sequential layer container — the model IR shared by plaintext
/// inference, training, the IDPA attacks, the PI engines and the C2PI
/// boundary search.
///
/// Cut-point convention (paper §II "Notations"): linear ops (Conv2d /
/// Linear) are numbered 1..n; "layer 3" is the third linear op and "layer
/// 3.5" is the ReLU right after it. A CutPoint names the last *crypto*
/// operation; flat_cut_index() translates it into the index of the last
/// flat layer evaluated under MPC.

#include <functional>
#include <optional>

#include "nn/layer.hpp"

namespace c2pi::nn {

/// Boundary position in the paper's numbering scheme.
struct CutPoint {
    std::int64_t linear_index = 1;  ///< 1-based index of a Conv2d/Linear op
    bool after_relu = false;        ///< true = the ".5" position

    [[nodiscard]] double as_decimal() const {
        return static_cast<double>(linear_index) + (after_relu ? 0.5 : 0.0);
    }
    friend bool operator==(const CutPoint&, const CutPoint&) = default;
};

class Sequential {
public:
    Sequential() = default;
    Sequential(Sequential&&) = default;
    Sequential& operator=(Sequential&&) = default;

    /// Append a layer; returns it for convenient chaining/configuration.
    Layer& add(LayerPtr layer);

    template <typename T, typename... Args>
    T& emplace(Args&&... args) {
        auto layer = std::make_unique<T>(std::forward<Args>(args)...);
        T& ref = *layer;
        add(std::move(layer));
        return ref;
    }

    [[nodiscard]] std::size_t size() const { return layers_.size(); }
    [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }
    [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_.at(i); }

    /// Full forward pass.
    [[nodiscard]] Tensor forward(const Tensor& x);
    /// Forward through flat layers [begin, end).
    [[nodiscard]] Tensor forward_range(std::size_t begin, std::size_t end, const Tensor& x);
    /// Inference-only full forward: no activation caches are written, so
    /// a const model can serve many threads concurrently (Layer::infer).
    [[nodiscard]] Tensor infer(const Tensor& x) const;
    /// Inference-only forward through flat layers [begin, end).
    [[nodiscard]] Tensor infer_range(std::size_t begin, std::size_t end, const Tensor& x) const;
    /// Backward through flat layers [begin, end) in reverse order; returns
    /// dL/d(input of layer begin). forward_range over the same range must
    /// have run immediately before.
    [[nodiscard]] Tensor backward_range(std::size_t begin, std::size_t end, const Tensor& grad);

    [[nodiscard]] std::vector<Parameter*> parameters();
    void zero_grad();

    /// Flat indices of all linear ops (Conv2d / Linear), in order.
    [[nodiscard]] std::vector<std::size_t> linear_op_indices() const;
    /// Number of linear ops.
    [[nodiscard]] std::int64_t num_linear_ops() const;

    /// Flat index of the last layer covered by the cut (the conv/linear op
    /// itself, or its following ReLU for the ".5" position).
    [[nodiscard]] std::size_t flat_cut_index(const CutPoint& cut) const;

    /// Output of the first `cut` operations for input x (the paper's M_l(x)).
    [[nodiscard]] Tensor forward_prefix(const CutPoint& cut, const Tensor& x);
    /// Remaining network applied to an intermediate activation.
    [[nodiscard]] Tensor forward_suffix(const CutPoint& cut, const Tensor& intermediate);

    /// Human-readable architecture listing.
    [[nodiscard]] std::string describe() const;

private:
    std::vector<LayerPtr> layers_;
};

/// Shape of M_l(x) for a given input shape, computed by a cache-free dry run.
[[nodiscard]] Shape activation_shape(const Sequential& model, const CutPoint& cut,
                                     const Shape& input_shape);

}  // namespace c2pi::nn
