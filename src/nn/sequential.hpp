#pragma once

/// \file sequential.hpp
/// Sequential layer container — the trivially-linear nn::Graph. Every
/// node consumes its predecessor and there are no skip edges, so every
/// index is an articulation point and all Graph machinery (cuts, ranges,
/// planning) applies unchanged. Kept as a distinct type so chain-built
/// models read as chains at call sites; residual models build a Graph
/// directly (see models.cpp / zoo.cpp).

#include "nn/graph.hpp"

namespace c2pi::nn {

class Sequential : public Graph {
public:
    Sequential() = default;
    Sequential(Sequential&&) = default;
    Sequential& operator=(Sequential&&) = default;
};

}  // namespace c2pi::nn
