#pragma once

/// \file trainer.hpp
/// Classifier training / evaluation loops over the synthetic datasets.

#include "data/synthetic.hpp"
#include "nn/graph.hpp"

namespace c2pi::nn {

struct TrainConfig {
    std::int64_t epochs = 6;
    std::int64_t batch_size = 32;
    float lr = 0.01F;
    float momentum = 0.9F;
    float weight_decay = 5e-4F;
    std::uint64_t seed = kDefaultSeed;
    bool verbose = false;
};

struct TrainReport {
    std::vector<float> epoch_loss;
    double final_train_accuracy = 0.0;
    double final_test_accuracy = 0.0;
};

/// Train `model` on `dataset.train()` with SGD + cross-entropy.
TrainReport train_classifier(Graph& model, const data::SyntheticImageDataset& dataset,
                             const TrainConfig& config);

/// Top-1 accuracy of `model` over a list of samples (batched internally).
[[nodiscard]] double evaluate_accuracy(Graph& model, std::span<const data::Sample> samples,
                                       std::int64_t batch_size = 64);

/// Accuracy when inference starts from (possibly noised) activations at a
/// cut point: the first `cut` ops run normally, uniform noise in
/// [-lambda, lambda] is added to M_l(x), and the suffix completes the
/// inference. This is exactly the accuracy(l, lambda) check of
/// Algorithm 1, and the quantity plotted in Fig. 7.
[[nodiscard]] double evaluate_accuracy_with_noise_at(Graph& model, const CutPoint& cut,
                                                     std::span<const data::Sample> samples,
                                                     float lambda, std::uint64_t seed,
                                                     std::int64_t batch_size = 64);

}  // namespace c2pi::nn
