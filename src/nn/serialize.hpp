#pragma once

/// \file serialize.hpp
/// Binary parameter (de)serialisation. Benches cache trained models on
/// disk so the six model x dataset combinations are trained once and
/// reused across figure/table reproductions.

#include <string>

#include "nn/graph.hpp"

namespace c2pi::nn {

/// Write all parameters of `model` to `path` (shapes + float32 data).
void save_parameters(Graph& model, const std::string& path);

/// Load parameters saved by save_parameters into an identically-shaped
/// model. Throws c2pi::Error on shape or format mismatch.
void load_parameters(Graph& model, const std::string& path);

/// True if `path` exists and holds a parameter file loadable into `model`
/// (used for opportunistic caching; never throws).
[[nodiscard]] bool try_load_parameters(Graph& model, const std::string& path);

}  // namespace c2pi::nn
