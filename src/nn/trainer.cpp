#include "nn/trainer.hpp"

#include <cstdio>
#include <numeric>

#include "metrics/ssim.hpp"
#include "nn/optimizer.hpp"

namespace c2pi::nn {

TrainReport train_classifier(Graph& model, const data::SyntheticImageDataset& dataset,
                             const TrainConfig& config) {
    Rng rng(config.seed);
    Sgd opt(model.parameters(), config.lr, config.momentum, config.weight_decay);

    const auto& train = dataset.train();
    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);

    TrainReport report;
    for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::int64_t batches = 0;
        for (std::size_t start = 0; start + 1 < order.size();
             start += static_cast<std::size_t>(config.batch_size)) {
            const std::size_t count =
                std::min(static_cast<std::size_t>(config.batch_size), order.size() - start);
            const std::span<const std::size_t> idx(order.data() + start, count);
            const Tensor x = dataset.make_batch(train, idx);
            const auto labels = dataset.make_labels(train, idx);

            const Tensor logits = model.forward(x);
            const auto loss = ops::softmax_cross_entropy(logits, labels);
            (void)model.backward_range(0, model.size(), loss.grad_logits);
            opt.step();

            epoch_loss += loss.loss;
            ++batches;
        }
        report.epoch_loss.push_back(static_cast<float>(epoch_loss / std::max<std::int64_t>(batches, 1)));
        if (config.verbose) {
            std::printf("  epoch %2lld  loss %.4f\n", static_cast<long long>(epoch),
                        report.epoch_loss.back());
        }
    }
    report.final_train_accuracy = evaluate_accuracy(model, dataset.train());
    report.final_test_accuracy = evaluate_accuracy(model, dataset.test());
    return report;
}

double evaluate_accuracy(Graph& model, std::span<const data::Sample> samples,
                         std::int64_t batch_size) {
    require(!samples.empty(), "evaluate_accuracy on empty sample set");
    std::int64_t correct = 0;
    for (std::size_t start = 0; start < samples.size();
         start += static_cast<std::size_t>(batch_size)) {
        const std::size_t count =
            std::min(static_cast<std::size_t>(batch_size), samples.size() - start);
        std::vector<std::size_t> idx(count);
        std::iota(idx.begin(), idx.end(), start);
        Tensor x({static_cast<std::int64_t>(count), samples[0].image.dim(0),
                  samples[0].image.dim(1), samples[0].image.dim(2)});
        std::vector<std::int64_t> labels(count);
        const std::int64_t per = samples[0].image.numel();
        for (std::size_t i = 0; i < count; ++i) {
            const auto& s = samples[start + i];
            std::copy(s.image.data(), s.image.data() + per,
                      x.data() + static_cast<std::int64_t>(i) * per);
            labels[i] = s.label;
        }
        const Tensor logits = model.forward(x);
        for (std::size_t i = 0; i < count; ++i) {
            std::int64_t best = 0;
            for (std::int64_t j = 1; j < logits.dim(1); ++j)
                if (logits.at(static_cast<std::int64_t>(i), j) >
                    logits.at(static_cast<std::int64_t>(i), best))
                    best = j;
            if (best == labels[i]) ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(samples.size());
}

double evaluate_accuracy_with_noise_at(Graph& model, const CutPoint& cut,
                                       std::span<const data::Sample> samples, float lambda,
                                       std::uint64_t seed, std::int64_t batch_size) {
    require(!samples.empty(), "empty sample set");
    Rng rng(seed);
    std::int64_t correct = 0;
    for (std::size_t start = 0; start < samples.size();
         start += static_cast<std::size_t>(batch_size)) {
        const std::size_t count =
            std::min(static_cast<std::size_t>(batch_size), samples.size() - start);
        Tensor x({static_cast<std::int64_t>(count), samples[0].image.dim(0),
                  samples[0].image.dim(1), samples[0].image.dim(2)});
        std::vector<std::int64_t> labels(count);
        const std::int64_t per = samples[0].image.numel();
        for (std::size_t i = 0; i < count; ++i) {
            const auto& s = samples[start + i];
            std::copy(s.image.data(), s.image.data() + per,
                      x.data() + static_cast<std::int64_t>(i) * per);
            labels[i] = s.label;
        }
        Tensor act = model.forward_prefix(cut, x);
        for (std::int64_t i = 0; i < act.numel(); ++i) act[i] += rng.uniform(-lambda, lambda);
        const Tensor logits = model.forward_suffix(cut, act);
        for (std::size_t i = 0; i < count; ++i) {
            std::int64_t best = 0;
            for (std::int64_t j = 1; j < logits.dim(1); ++j)
                if (logits.at(static_cast<std::int64_t>(i), j) >
                    logits.at(static_cast<std::int64_t>(i), best))
                    best = j;
            if (best == labels[i]) ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(samples.size());
}

}  // namespace c2pi::nn
