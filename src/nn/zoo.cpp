#include "nn/zoo.hpp"

#include <sstream>

namespace c2pi::nn::zoo {

namespace {

using Builder = Graph (*)(const ModelConfig&);

struct Entry {
    const char* id;
    const char* description;
    bool residual;
    Builder build;
};

// Chain models come back as Sequential; the Graph return type moves the
// base subobject, which owns everything.
Graph build_alexnet(const ModelConfig& c) { return make_alexnet(c); }
Graph build_vgg16(const ModelConfig& c) { return make_vgg16(c); }
Graph build_vgg19(const ModelConfig& c) { return make_vgg19(c); }
Graph build_resnet9(const ModelConfig& c) { return make_resnet9(c); }
Graph build_resnet18(const ModelConfig& c) { return make_resnet18(c); }

constexpr Entry kEntries[] = {
    {"alexnet", "AlexNet CIFAR variant: 5 conv + 3 FC", false, build_alexnet},
    {"vgg16", "VGG16 CIFAR variant: 13 conv + 1 FC", false, build_vgg16},
    {"vgg19", "VGG19 CIFAR variant: 16 conv + 1 FC", false, build_vgg19},
    {"resnet9", "ResNet-9: 2 basic blocks, BN-folded, GlobalAvgPool head", true,
     build_resnet9},
    {"resnet18", "ResNet-18: 4 stages x 2 basic blocks, BN-folded", true, build_resnet18},
};

std::int64_t count_parameters(Graph& g) {
    std::int64_t total = 0;
    for (const Parameter* p : g.parameters()) total += p->value.numel();
    return total;
}

}  // namespace

UnknownModel::UnknownModel(const std::string& id)
    : Error([&] {
          std::ostringstream os;
          os << "unknown model id '" << id << "' (known:";
          for (const Entry& e : kEntries) os << ' ' << e.id;
          os << ')';
          return os.str();
      }()) {}

const std::vector<Descriptor>& list() {
    static const std::vector<Descriptor> catalogue = [] {
        std::vector<Descriptor> out;
        const ModelConfig defaults{};
        for (const Entry& e : kEntries) {
            Graph g = e.build(defaults);
            out.push_back({e.id, e.description,
                           {defaults.input_channels, defaults.input_hw, defaults.input_hw},
                           count_parameters(g), g.num_linear_ops(), e.residual});
        }
        return out;
    }();
    return catalogue;
}

Graph build(const std::string& id, const ModelConfig& config) {
    for (const Entry& e : kEntries)
        if (id == e.id) return e.build(config);
    throw UnknownModel(id);
}

}  // namespace c2pi::nn::zoo
