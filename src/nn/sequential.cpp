#include "nn/sequential.hpp"

#include <sstream>

namespace c2pi::nn {

Layer& Sequential::add(LayerPtr layer) {
    require(layer != nullptr, "cannot add null layer");
    layers_.push_back(std::move(layer));
    return *layers_.back();
}

Tensor Sequential::forward(const Tensor& x) { return forward_range(0, layers_.size(), x); }

Tensor Sequential::forward_range(std::size_t begin, std::size_t end, const Tensor& x) {
    require(begin <= end && end <= layers_.size(), "forward_range out of bounds");
    Tensor h = x;
    for (std::size_t i = begin; i < end; ++i) h = layers_[i]->forward(h);
    return h;
}

Tensor Sequential::infer(const Tensor& x) const { return infer_range(0, layers_.size(), x); }

Tensor Sequential::infer_range(std::size_t begin, std::size_t end, const Tensor& x) const {
    require(begin <= end && end <= layers_.size(), "infer_range out of bounds");
    Tensor h = x;
    for (std::size_t i = begin; i < end; ++i) h = layers_[i]->infer(h);
    return h;
}

Tensor Sequential::backward_range(std::size_t begin, std::size_t end, const Tensor& grad) {
    require(begin <= end && end <= layers_.size(), "backward_range out of bounds");
    Tensor g = grad;
    for (std::size_t i = end; i > begin; --i) g = layers_[i - 1]->backward(g);
    return g;
}

std::vector<Parameter*> Sequential::parameters() {
    std::vector<Parameter*> params;
    for (auto& l : layers_) l->collect_parameters(params);
    return params;
}

void Sequential::zero_grad() {
    for (auto* p : parameters()) p->zero_grad();
}

std::vector<std::size_t> Sequential::linear_op_indices() const {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const auto k = layers_[i]->kind();
        if (k == LayerKind::kConv2d || k == LayerKind::kLinear) idx.push_back(i);
    }
    return idx;
}

std::int64_t Sequential::num_linear_ops() const {
    return static_cast<std::int64_t>(linear_op_indices().size());
}

std::size_t Sequential::flat_cut_index(const CutPoint& cut) const {
    const auto idx = linear_op_indices();
    require(cut.linear_index >= 1 &&
                cut.linear_index <= static_cast<std::int64_t>(idx.size()),
            "cut linear_index out of range");
    std::size_t flat = idx[static_cast<std::size_t>(cut.linear_index - 1)];
    if (cut.after_relu) {
        require(flat + 1 < layers_.size() && layers_[flat + 1]->kind() == LayerKind::kRelu,
                "cut names a .5 position but no ReLU follows that linear op");
        ++flat;
    }
    return flat;
}

Tensor Sequential::forward_prefix(const CutPoint& cut, const Tensor& x) {
    return forward_range(0, flat_cut_index(cut) + 1, x);
}

Tensor Sequential::forward_suffix(const CutPoint& cut, const Tensor& intermediate) {
    return forward_range(flat_cut_index(cut) + 1, layers_.size(), intermediate);
}

std::string Sequential::describe() const {
    std::ostringstream os;
    std::int64_t linear_id = 0;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const auto k = layers_[i]->kind();
        if (k == LayerKind::kConv2d || k == LayerKind::kLinear) ++linear_id;
        os << i << ": " << layers_[i]->describe();
        if (k == LayerKind::kConv2d || k == LayerKind::kLinear) os << "   [linear op " << linear_id << ']';
        os << '\n';
    }
    return os.str();
}

Shape activation_shape(const Sequential& model, const CutPoint& cut, const Shape& input_shape) {
    Tensor probe(input_shape);
    return model.infer_range(0, model.flat_cut_index(cut) + 1, probe).shape();
}

}  // namespace c2pi::nn
