#pragma once

/// \file layer.hpp
/// Neural-network layer abstraction with explicit forward/backward. Layers
/// cache what they need during forward() so that backward() can produce
/// input gradients (needed by the MLA attack and inverse-net training) and
/// accumulate parameter gradients (needed by training).

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace c2pi::nn {

/// Trainable tensor: value plus gradient accumulator of identical shape.
struct Parameter {
    Tensor value;
    Tensor grad;

    explicit Parameter(Tensor v) : value(std::move(v)), grad(value.shape()) {}
    void zero_grad() { grad.zero(); }
};

/// Discriminator used by the PI engines to dispatch secure protocols and by
/// the boundary-search logic to locate linear ops and ReLUs.
enum class LayerKind {
    kConv2d,
    kLinear,
    kRelu,
    kMaxPool,
    kAvgPool,
    kFlatten,
    kUpsample,
    kResidualBlock,
    kReshape,
    kBatchNorm,
    kGlobalAvgPool,
};

class Layer {
public:
    virtual ~Layer() = default;
    Layer(const Layer&) = delete;
    Layer& operator=(const Layer&) = delete;

    /// Compute the layer output; caches activations needed by backward().
    virtual Tensor forward(const Tensor& x) = 0;
    /// Inference-only forward: identical math to forward() but touches no
    /// caches, so it is const and safe to call concurrently from many
    /// threads on a shared model (the PI serving path relies on this).
    /// backward() after infer() is invalid — use forward() when training.
    [[nodiscard]] virtual Tensor infer(const Tensor& x) const = 0;
    /// Propagate gradients; returns dL/dx and accumulates parameter grads.
    /// Must be called after forward() on the same input.
    virtual Tensor backward(const Tensor& grad_out) = 0;

    virtual void collect_parameters(std::vector<Parameter*>& /*out*/) {}

    [[nodiscard]] virtual LayerKind kind() const = 0;
    [[nodiscard]] virtual std::string describe() const = 0;

protected:
    Layer() = default;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace c2pi::nn
