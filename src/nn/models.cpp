#include "nn/models.hpp"

#include <algorithm>

#include "nn/layers.hpp"

namespace c2pi::nn {

std::int64_t scaled_channels(std::int64_t base, float width_multiplier) {
    const auto scaled = static_cast<std::int64_t>(static_cast<float>(base) * width_multiplier);
    return std::max<std::int64_t>(scaled, 4);
}

namespace {

constexpr std::int64_t kPool = -1;  // sentinel in VGG channel plans

/// Build a VGG-style feature extractor from a channel plan, then a single
/// FC classifier (the CIFAR-VGG convention).
Sequential make_vgg(const std::vector<std::int64_t>& plan, const ModelConfig& cfg) {
    Rng rng(cfg.seed);
    Sequential model;
    std::int64_t channels = cfg.input_channels;
    std::int64_t hw = cfg.input_hw;
    for (const auto entry : plan) {
        if (entry == kPool) {
            require(hw >= 2, "input resolution too small for VGG pooling schedule");
            model.emplace<MaxPool2d>(2, 2);
            hw /= 2;
            continue;
        }
        const std::int64_t out = scaled_channels(entry, cfg.width_multiplier);
        model.emplace<Conv2d>(channels, out, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
        model.emplace<Relu>();
        channels = out;
    }
    model.emplace<Flatten>();
    model.emplace<Linear>(channels * hw * hw, cfg.num_classes, rng);
    return model;
}

}  // namespace

Sequential make_alexnet(const ModelConfig& cfg) {
    Rng rng(cfg.seed);
    Sequential model;
    const auto ch = [&](std::int64_t base) { return scaled_channels(base, cfg.width_multiplier); };
    std::int64_t hw = cfg.input_hw;

    model.emplace<Conv2d>(cfg.input_channels, ch(64), ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1},
                          rng);
    model.emplace<Relu>();
    model.emplace<MaxPool2d>(2, 2);
    hw /= 2;
    model.emplace<Conv2d>(ch(64), ch(192), ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    model.emplace<Relu>();
    model.emplace<MaxPool2d>(2, 2);
    hw /= 2;
    model.emplace<Conv2d>(ch(192), ch(384), ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    model.emplace<Relu>();
    model.emplace<Conv2d>(ch(384), ch(256), ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    model.emplace<Relu>();
    model.emplace<Conv2d>(ch(256), ch(256), ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    model.emplace<Relu>();
    model.emplace<MaxPool2d>(2, 2);
    hw /= 2;
    model.emplace<Flatten>();
    model.emplace<Linear>(ch(256) * hw * hw, ch(512), rng);
    model.emplace<Relu>();
    model.emplace<Linear>(ch(512), ch(256), rng);
    model.emplace<Relu>();
    model.emplace<Linear>(ch(256), cfg.num_classes, rng);
    return model;
}

Sequential make_vgg16(const ModelConfig& cfg) {
    // 13 convs: 64x2 M 128x2 M 256x3 M 512x3 M 512x3 M
    const std::vector<std::int64_t> plan = {64,  64,  kPool, 128, 128, kPool, 256, 256, 256, kPool,
                                            512, 512, 512,  kPool, 512, 512, 512, kPool};
    return make_vgg(plan, cfg);
}

Sequential make_vgg19(const ModelConfig& cfg) {
    // 16 convs: 64x2 M 128x2 M 256x4 M 512x4 M 512x4 M
    const std::vector<std::int64_t> plan = {64,  64,  kPool, 128, 128, kPool, 256, 256,
                                            256, 256, kPool, 512, 512, 512,  512, kPool,
                                            512, 512, 512,  512, kPool};
    return make_vgg(plan, cfg);
}

namespace {

/// Conv3x3 (or 1x1 projection) followed by BatchNorm2d; returns the BN
/// node. Convs keep their bias so fold_batch_norms() has a target.
std::int64_t conv_bn(Graph& g, std::int64_t input, std::int64_t in_ch, std::int64_t out_ch,
                     std::int64_t kernel, std::int64_t stride, std::int64_t pad, Rng& rng) {
    const auto conv = g.add_node(
        std::make_unique<Conv2d>(in_ch, out_ch,
                                 ops::ConvSpec{.kernel = kernel, .stride = stride, .pad = pad},
                                 rng),
        input);
    return g.add_node(std::make_unique<BatchNorm2d>(out_ch, rng), conv);
}

/// He et al. basic block: conv-BN-ReLU-conv-BN plus skip, post-add ReLU.
/// A stride-2 or channel-changing block projects the skip with a 1x1
/// conv-BN; otherwise the skip is the identity edge.
std::int64_t basic_block(Graph& g, std::int64_t input, std::int64_t in_ch, std::int64_t out_ch,
                         std::int64_t stride, Rng& rng) {
    auto h = conv_bn(g, input, in_ch, out_ch, 3, stride, 1, rng);
    h = g.add_node(std::make_unique<Relu>(), h);
    h = conv_bn(g, h, out_ch, out_ch, 3, 1, 1, rng);
    std::int64_t skip = input;
    if (stride != 1 || in_ch != out_ch) skip = conv_bn(g, input, in_ch, out_ch, 1, stride, 0, rng);
    const auto sum = g.add_residual(h, skip);
    return g.add_node(std::make_unique<Relu>(), sum);
}

std::int64_t gap_head(Graph& g, std::int64_t input, std::int64_t channels,
                      const ModelConfig& cfg, Rng& rng) {
    const auto gap = g.add_node(std::make_unique<GlobalAvgPool>(), input);
    return g.add_node(std::make_unique<Linear>(channels, cfg.num_classes, rng), gap);
}

}  // namespace

Graph make_resnet9(const ModelConfig& cfg, bool fold_bn) {
    require(cfg.input_hw % 4 == 0, "resnet9 needs input_hw divisible by 4");
    Rng rng(cfg.seed);
    Graph g;
    const auto ch = [&](std::int64_t base) { return scaled_channels(base, cfg.width_multiplier); };
    const std::int64_t c1 = ch(64), c2 = ch(128), c3 = ch(256);

    auto n = conv_bn(g, Graph::kInput, cfg.input_channels, c1, 3, 1, 1, rng);
    n = g.add_node(std::make_unique<Relu>(), n);
    n = conv_bn(g, n, c1, c2, 3, 1, 1, rng);
    n = g.add_node(std::make_unique<Relu>(), n);
    n = g.add_node(std::make_unique<MaxPool2d>(2, 2), n);
    n = basic_block(g, n, c2, c2, 1, rng);
    n = conv_bn(g, n, c2, c3, 3, 1, 1, rng);
    n = g.add_node(std::make_unique<Relu>(), n);
    n = g.add_node(std::make_unique<MaxPool2d>(2, 2), n);
    n = basic_block(g, n, c3, c3, 1, rng);
    (void)gap_head(g, n, c3, cfg, rng);
    if (fold_bn) g.fold_batch_norms();
    return g;
}

Graph make_resnet18(const ModelConfig& cfg, bool fold_bn) {
    require(cfg.input_hw % 8 == 0, "resnet18 needs input_hw divisible by 8");
    Rng rng(cfg.seed);
    Graph g;
    const auto ch = [&](std::int64_t base) { return scaled_channels(base, cfg.width_multiplier); };

    auto n = conv_bn(g, Graph::kInput, cfg.input_channels, ch(64), 3, 1, 1, rng);
    n = g.add_node(std::make_unique<Relu>(), n);
    std::int64_t channels = ch(64);
    for (const std::int64_t base : {64, 128, 256, 512}) {
        const std::int64_t out = ch(base);
        const std::int64_t stride = base == 64 ? 1 : 2;  // stage entry downsamples
        n = basic_block(g, n, channels, out, stride, rng);
        n = basic_block(g, n, out, out, 1, rng);
        channels = out;
    }
    (void)gap_head(g, n, channels, cfg, rng);
    if (fold_bn) g.fold_batch_norms();
    return g;
}

}  // namespace c2pi::nn
