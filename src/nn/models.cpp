#include "nn/models.hpp"

#include <algorithm>

#include "nn/layers.hpp"

namespace c2pi::nn {

std::int64_t scaled_channels(std::int64_t base, float width_multiplier) {
    const auto scaled = static_cast<std::int64_t>(static_cast<float>(base) * width_multiplier);
    return std::max<std::int64_t>(scaled, 4);
}

namespace {

constexpr std::int64_t kPool = -1;  // sentinel in VGG channel plans

/// Build a VGG-style feature extractor from a channel plan, then a single
/// FC classifier (the CIFAR-VGG convention).
Sequential make_vgg(const std::vector<std::int64_t>& plan, const ModelConfig& cfg) {
    Rng rng(cfg.seed);
    Sequential model;
    std::int64_t channels = cfg.input_channels;
    std::int64_t hw = cfg.input_hw;
    for (const auto entry : plan) {
        if (entry == kPool) {
            require(hw >= 2, "input resolution too small for VGG pooling schedule");
            model.emplace<MaxPool2d>(2, 2);
            hw /= 2;
            continue;
        }
        const std::int64_t out = scaled_channels(entry, cfg.width_multiplier);
        model.emplace<Conv2d>(channels, out, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
        model.emplace<Relu>();
        channels = out;
    }
    model.emplace<Flatten>();
    model.emplace<Linear>(channels * hw * hw, cfg.num_classes, rng);
    return model;
}

}  // namespace

Sequential make_alexnet(const ModelConfig& cfg) {
    Rng rng(cfg.seed);
    Sequential model;
    const auto ch = [&](std::int64_t base) { return scaled_channels(base, cfg.width_multiplier); };
    std::int64_t hw = cfg.input_hw;

    model.emplace<Conv2d>(cfg.input_channels, ch(64), ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1},
                          rng);
    model.emplace<Relu>();
    model.emplace<MaxPool2d>(2, 2);
    hw /= 2;
    model.emplace<Conv2d>(ch(64), ch(192), ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    model.emplace<Relu>();
    model.emplace<MaxPool2d>(2, 2);
    hw /= 2;
    model.emplace<Conv2d>(ch(192), ch(384), ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    model.emplace<Relu>();
    model.emplace<Conv2d>(ch(384), ch(256), ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    model.emplace<Relu>();
    model.emplace<Conv2d>(ch(256), ch(256), ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    model.emplace<Relu>();
    model.emplace<MaxPool2d>(2, 2);
    hw /= 2;
    model.emplace<Flatten>();
    model.emplace<Linear>(ch(256) * hw * hw, ch(512), rng);
    model.emplace<Relu>();
    model.emplace<Linear>(ch(512), ch(256), rng);
    model.emplace<Relu>();
    model.emplace<Linear>(ch(256), cfg.num_classes, rng);
    return model;
}

Sequential make_vgg16(const ModelConfig& cfg) {
    // 13 convs: 64x2 M 128x2 M 256x3 M 512x3 M 512x3 M
    const std::vector<std::int64_t> plan = {64,  64,  kPool, 128, 128, kPool, 256, 256, 256, kPool,
                                            512, 512, 512,  kPool, 512, 512, 512, kPool};
    return make_vgg(plan, cfg);
}

Sequential make_vgg19(const ModelConfig& cfg) {
    // 16 convs: 64x2 M 128x2 M 256x4 M 512x4 M 512x4 M
    const std::vector<std::int64_t> plan = {64,  64,  kPool, 128, 128, kPool, 256, 256,
                                            256, 256, kPool, 512, 512, 512,  512, kPool,
                                            512, 512, 512,  512, kPool};
    return make_vgg(plan, cfg);
}

Sequential make_model(const std::string& name, const ModelConfig& cfg) {
    if (name == "alexnet") return make_alexnet(cfg);
    if (name == "vgg16") return make_vgg16(cfg);
    if (name == "vgg19") return make_vgg19(cfg);
    fail("unknown model name: " + name);
}

}  // namespace c2pi::nn
