#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

namespace c2pi::nn {

namespace {
constexpr std::uint32_t kMagic = 0xC2F11A8E;
}

void save_parameters(Graph& model, const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    require(out.good(), "cannot open parameter file for writing: " + path);
    const auto params = model.parameters();
    const auto count = static_cast<std::uint32_t>(params.size());
    out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto* p : params) {
        const auto rank = static_cast<std::uint32_t>(p->value.rank());
        out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
        for (std::int64_t d = 0; d < p->value.rank(); ++d) {
            const std::int64_t dim = p->value.dim(d);
            out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
        }
        out.write(reinterpret_cast<const char*>(p->value.data()),
                  static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
    }
    require(out.good(), "failed writing parameter file: " + path);
}

void load_parameters(Graph& model, const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    require(in.good(), "cannot open parameter file: " + path);
    std::uint32_t magic = 0, count = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    require(magic == kMagic, "bad parameter file magic: " + path);
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    const auto params = model.parameters();
    require(count == params.size(), "parameter count mismatch loading: " + path);
    for (auto* p : params) {
        std::uint32_t rank = 0;
        in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
        require(rank == static_cast<std::uint32_t>(p->value.rank()), "parameter rank mismatch");
        for (std::int64_t d = 0; d < p->value.rank(); ++d) {
            std::int64_t dim = 0;
            in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
            require(dim == p->value.dim(d), "parameter shape mismatch");
        }
        in.read(reinterpret_cast<char*>(p->value.data()),
                static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
    }
    require(in.good(), "truncated parameter file: " + path);
}

bool try_load_parameters(Graph& model, const std::string& path) {
    try {
        load_parameters(model, path);
        return true;
    } catch (const Error&) {
        return false;
    }
}

}  // namespace c2pi::nn
