#include "nn/graph.hpp"

#include <cmath>
#include <sstream>

#include "nn/layers.hpp"
#include "tensor/tensor_ops.hpp"

namespace c2pi::nn {

Layer& Graph::add(LayerPtr layer) {
    require(layer != nullptr, "cannot add null layer");
    nodes_.push_back({std::move(layer), last(), -1});
    return *nodes_.back().layer;
}

std::int64_t Graph::add_node(LayerPtr layer, std::int64_t input) {
    require(layer != nullptr, "cannot add null layer");
    require(input >= kInput && input <= last(), "graph edge must name an earlier node");
    nodes_.push_back({std::move(layer), input, -1});
    return last();
}

std::int64_t Graph::add_residual(std::int64_t a, std::int64_t b) {
    require(a >= 0 && a <= last() && b >= 0 && b <= last(),
            "residual add operands must name earlier nodes");
    nodes_.push_back({nullptr, a, b});
    return last();
}

Layer& Graph::layer(std::size_t i) {
    require(!is_add(i), "node is a residual add, not a layer");
    return *nodes_[i].layer;
}

const Layer& Graph::layer(std::size_t i) const {
    require(!is_add(i), "node is a residual add, not a layer");
    return *nodes_[i].layer;
}

bool Graph::is_linear_chain() const {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node& n = nodes_[i];
        if (n.layer == nullptr) return false;
        if (n.input0 != static_cast<std::int64_t>(i) - 1) return false;
    }
    return true;
}

bool Graph::is_articulation(std::size_t i) const {
    require(i < nodes_.size(), "is_articulation out of bounds");
    const auto cut = static_cast<std::int64_t>(i);
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
        if (nodes_[j].input0 < cut) return false;
        if (nodes_[j].layer == nullptr && nodes_[j].input1 < cut) return false;
    }
    return true;
}

namespace {

/// Walk nodes [begin, end) with `x` standing in for node begin-1. The
/// per-node evaluation is a callback so forward (caching) and infer
/// (const) share the range/edge validation.
template <typename Eval>
Tensor walk_range(std::size_t begin, std::size_t end, std::size_t total, const Tensor& x,
                  Eval&& eval) {
    require(begin <= end && end <= total, "graph range out of bounds");
    if (begin == end) return x;
    const auto base = static_cast<std::int64_t>(begin) - 1;
    std::vector<Tensor> vals(end - begin);
    const auto value_of = [&](std::int64_t src) -> const Tensor& {
        require(src >= base,
                "graph range crosses a skip edge: the cut is not an articulation point");
        return src == base ? x : vals[static_cast<std::size_t>(src - base) - 1];
    };
    for (std::size_t i = begin; i < end; ++i) vals[i - begin] = eval(i, value_of);
    return std::move(vals.back());
}

}  // namespace

Tensor Graph::forward(const Tensor& x) { return forward_range(0, nodes_.size(), x); }

Tensor Graph::forward_range(std::size_t begin, std::size_t end, const Tensor& x) {
    return walk_range(begin, end, nodes_.size(), x, [&](std::size_t i, const auto& value_of) {
        Node& n = nodes_[i];
        return n.layer ? n.layer->forward(value_of(n.input0))
                       : ops::add(value_of(n.input0), value_of(n.input1));
    });
}

Tensor Graph::infer(const Tensor& x) const { return infer_range(0, nodes_.size(), x); }

Tensor Graph::infer_range(std::size_t begin, std::size_t end, const Tensor& x) const {
    return walk_range(begin, end, nodes_.size(), x, [&](std::size_t i, const auto& value_of) {
        const Node& n = nodes_[i];
        return n.layer ? n.layer->infer(value_of(n.input0))
                       : ops::add(value_of(n.input0), value_of(n.input1));
    });
}

Tensor Graph::backward_range(std::size_t begin, std::size_t end, const Tensor& grad) {
    require(begin <= end && end <= nodes_.size(), "backward_range out of bounds");
    if (begin == end) return grad;
    const auto base = static_cast<std::int64_t>(begin) - 1;
    std::vector<Tensor> grads(end - begin);
    Tensor input_grad;
    const auto accumulate = [&](std::int64_t dst, const Tensor& g) {
        require(dst >= base,
                "graph range crosses a skip edge: the cut is not an articulation point");
        Tensor& slot = dst == base ? input_grad : grads[static_cast<std::size_t>(dst - base) - 1];
        if (slot.empty()) {
            slot = g;
        } else {
            ops::axpy(1.0F, g, slot);  // fan-out: skip edges sum gradients
        }
    };
    grads.back() = grad;
    for (std::size_t i = end; i-- > begin;) {
        Tensor g = std::move(grads[i - begin]);
        if (g.empty()) continue;  // node output unused inside the range
        Node& n = nodes_[i];
        if (n.layer) {
            accumulate(n.input0, n.layer->backward(g));
        } else {
            accumulate(n.input0, g);
            accumulate(n.input1, g);
        }
    }
    require(!input_grad.empty(), "backward_range produced no input gradient");
    return input_grad;
}

std::vector<Parameter*> Graph::parameters() {
    std::vector<Parameter*> params;
    for (auto& n : nodes_)
        if (n.layer) n.layer->collect_parameters(params);
    return params;
}

void Graph::zero_grad() {
    for (auto* p : parameters()) p->zero_grad();
}

std::vector<std::size_t> Graph::linear_op_indices() const {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].layer == nullptr) continue;
        const auto k = nodes_[i].layer->kind();
        if (k == LayerKind::kConv2d || k == LayerKind::kLinear) idx.push_back(i);
    }
    return idx;
}

std::int64_t Graph::num_linear_ops() const {
    return static_cast<std::int64_t>(linear_op_indices().size());
}

std::size_t Graph::flat_cut_index(const CutPoint& cut) const {
    const auto idx = linear_op_indices();
    require(cut.linear_index >= 1 &&
                cut.linear_index <= static_cast<std::int64_t>(idx.size()),
            "cut linear_index out of range");
    std::size_t flat = idx[static_cast<std::size_t>(cut.linear_index - 1)];
    if (cut.after_relu) {
        require(flat + 1 < nodes_.size() && nodes_[flat + 1].layer != nullptr &&
                    nodes_[flat + 1].layer->kind() == LayerKind::kRelu &&
                    nodes_[flat + 1].input0 == static_cast<std::int64_t>(flat),
                "cut names a .5 position but no ReLU follows that linear op");
        ++flat;
    }
    return flat;
}

Tensor Graph::forward_prefix(const CutPoint& cut, const Tensor& x) {
    return forward_range(0, flat_cut_index(cut) + 1, x);
}

Tensor Graph::forward_suffix(const CutPoint& cut, const Tensor& intermediate) {
    return forward_range(flat_cut_index(cut) + 1, nodes_.size(), intermediate);
}

void Graph::fold_batch_norms() {
    // A BN folds into its producer conv only if that conv feeds nothing
    // else: rescaling the conv's weights must not change another branch.
    std::vector<int> consumers(nodes_.size(), 0);
    for (const Node& n : nodes_) {
        if (n.input0 >= 0) ++consumers[static_cast<std::size_t>(n.input0)];
        if (n.layer == nullptr && n.input1 >= 0)
            ++consumers[static_cast<std::size_t>(n.input1)];
    }

    std::vector<Node> folded;
    folded.reserve(nodes_.size());
    // remap[old+1] = new index of old node (+1 slot so kInput maps to itself).
    std::vector<std::int64_t> remap(nodes_.size() + 1);
    remap[0] = kInput;
    const auto mapped = [&](std::int64_t old) { return remap[static_cast<std::size_t>(old) + 1]; };

    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        Node& n = nodes_[i];
        if (n.layer != nullptr && n.layer->kind() == LayerKind::kBatchNorm) {
            // The producer's layer already moved into `folded`; resolve it
            // through the remap rather than the (moved-from) nodes_ slot.
            const std::int64_t src = n.input0 >= 0 ? mapped(n.input0) : kInput;
            require(src >= 0 && folded[static_cast<std::size_t>(src)].layer != nullptr &&
                        folded[static_cast<std::size_t>(src)].layer->kind() ==
                            LayerKind::kConv2d,
                    "batch-norm folding: BN must directly follow a Conv2d");
            require(consumers[static_cast<std::size_t>(n.input0)] == 1,
                    "batch-norm folding: the conv feeding a BN must have no other consumer");
            auto& bn = static_cast<BatchNorm2d&>(*n.layer);
            auto& conv = static_cast<Conv2d&>(*folded[static_cast<std::size_t>(src)].layer);
            Tensor& w = conv.weight().value;
            Tensor& b = conv.bias().value;
            const std::int64_t out = conv.out_channels();
            require(b.numel() == out, "batch-norm folding: conv must carry a bias");
            require(bn.gamma().value.numel() == out,
                    "batch-norm folding: channel counts disagree");
            const std::int64_t per_out = w.numel() / out;
            for (std::int64_t o = 0; o < out; ++o) {
                const float inv_std =
                    1.0F / std::sqrt(bn.running_var()[o] + bn.epsilon());
                const float scale = bn.gamma().value[o] * inv_std;
                for (std::int64_t k = 0; k < per_out; ++k) w[o * per_out + k] *= scale;
                b[o] = (b[o] - bn.running_mean()[o]) * scale + bn.beta().value[o];
            }
            // The BN node vanishes: it aliases its (folded) conv.
            remap[i + 1] = mapped(n.input0);
            continue;
        }
        remap[i + 1] = static_cast<std::int64_t>(folded.size());
        const bool add_node = n.layer == nullptr;
        folded.push_back({std::move(n.layer), mapped(n.input0),
                          add_node ? mapped(n.input1) : -1});
    }
    nodes_ = std::move(folded);
}

std::string Graph::describe() const {
    std::ostringstream os;
    std::int64_t linear_id = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node& n = nodes_[i];
        os << i << ": ";
        if (n.layer == nullptr) {
            os << "Add(" << n.input0 << ", " << n.input1 << ')';
        } else {
            os << n.layer->describe();
            const auto k = n.layer->kind();
            if (n.input0 != static_cast<std::int64_t>(i) - 1) os << "   [<- " << n.input0 << ']';
            if (k == LayerKind::kConv2d || k == LayerKind::kLinear)
                os << "   [linear op " << ++linear_id << ']';
        }
        os << '\n';
    }
    return os.str();
}

Shape activation_shape(const Graph& model, const CutPoint& cut, const Shape& input_shape) {
    Tensor probe(input_shape);
    return model.infer_range(0, model.flat_cut_index(cut) + 1, probe).shape();
}

}  // namespace c2pi::nn
