#pragma once

/// \file layers.hpp
/// Concrete layers: Conv2d (with dilation, used plain and as DINA's dilated
/// conv), Linear, ReLU, pooling, Flatten, nearest Upsample, and the ResNet
/// basic block used by the EINA/DINA inverse models.

#include "core/rng.hpp"
#include "nn/layer.hpp"

namespace c2pi::nn {

/// 2-D convolution, NCHW, square kernel. Kaiming-normal initialised.
class Conv2d final : public Layer {
public:
    Conv2d(std::int64_t in_channels, std::int64_t out_channels, ops::ConvSpec spec, Rng& rng,
           bool with_bias = true);

    Tensor forward(const Tensor& x) override;
    [[nodiscard]] Tensor infer(const Tensor& x) const override;
    Tensor backward(const Tensor& grad_out) override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    [[nodiscard]] LayerKind kind() const override { return LayerKind::kConv2d; }
    [[nodiscard]] std::string describe() const override;

    [[nodiscard]] const ops::ConvSpec& spec() const { return spec_; }
    [[nodiscard]] std::int64_t in_channels() const { return weight_.value.dim(1); }
    [[nodiscard]] std::int64_t out_channels() const { return weight_.value.dim(0); }
    [[nodiscard]] const Parameter& weight() const { return weight_; }
    [[nodiscard]] const Parameter& bias() const { return bias_; }
    [[nodiscard]] Parameter& weight() { return weight_; }
    [[nodiscard]] Parameter& bias() { return bias_; }

private:
    ops::ConvSpec spec_;
    Parameter weight_;  ///< [O, C, k, k]
    Parameter bias_;    ///< [O] (empty tensor when bias disabled)
    bool with_bias_;
    Tensor cached_input_;
};

/// Fully connected layer: y = x W^T + b, x:[n,in], W:[out,in].
class Linear final : public Layer {
public:
    Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng, bool with_bias = true);

    Tensor forward(const Tensor& x) override;
    [[nodiscard]] Tensor infer(const Tensor& x) const override;
    Tensor backward(const Tensor& grad_out) override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    [[nodiscard]] LayerKind kind() const override { return LayerKind::kLinear; }
    [[nodiscard]] std::string describe() const override;

    [[nodiscard]] std::int64_t in_features() const { return weight_.value.dim(1); }
    [[nodiscard]] std::int64_t out_features() const { return weight_.value.dim(0); }
    [[nodiscard]] const Parameter& weight() const { return weight_; }
    [[nodiscard]] const Parameter& bias() const { return bias_; }
    [[nodiscard]] Parameter& weight() { return weight_; }
    [[nodiscard]] Parameter& bias() { return bias_; }

private:
    Parameter weight_;  ///< [out, in]
    Parameter bias_;    ///< [out]
    bool with_bias_;
    Tensor cached_input_;
};

class Relu final : public Layer {
public:
    Relu() = default;
    Tensor forward(const Tensor& x) override;
    [[nodiscard]] Tensor infer(const Tensor& x) const override;
    Tensor backward(const Tensor& grad_out) override;
    [[nodiscard]] LayerKind kind() const override { return LayerKind::kRelu; }
    [[nodiscard]] std::string describe() const override { return "ReLU"; }

private:
    Tensor cached_input_;
};

class MaxPool2d final : public Layer {
public:
    MaxPool2d(std::int64_t kernel, std::int64_t stride) : kernel_(kernel), stride_(stride) {}
    Tensor forward(const Tensor& x) override;
    [[nodiscard]] Tensor infer(const Tensor& x) const override;
    Tensor backward(const Tensor& grad_out) override;
    [[nodiscard]] LayerKind kind() const override { return LayerKind::kMaxPool; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::int64_t kernel() const { return kernel_; }
    [[nodiscard]] std::int64_t stride() const { return stride_; }

private:
    std::int64_t kernel_, stride_;
    Shape cached_shape_;
    std::vector<std::int64_t> cached_argmax_;
};

class AvgPool2d final : public Layer {
public:
    AvgPool2d(std::int64_t kernel, std::int64_t stride) : kernel_(kernel), stride_(stride) {}
    Tensor forward(const Tensor& x) override;
    [[nodiscard]] Tensor infer(const Tensor& x) const override;
    Tensor backward(const Tensor& grad_out) override;
    [[nodiscard]] LayerKind kind() const override { return LayerKind::kAvgPool; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::int64_t kernel() const { return kernel_; }
    [[nodiscard]] std::int64_t stride() const { return stride_; }

private:
    std::int64_t kernel_, stride_;
    Shape cached_shape_;
};

/// [N,C,H,W] -> [N, C*H*W]
class Flatten final : public Layer {
public:
    Flatten() = default;
    Tensor forward(const Tensor& x) override;
    [[nodiscard]] Tensor infer(const Tensor& x) const override;
    Tensor backward(const Tensor& grad_out) override;
    [[nodiscard]] LayerKind kind() const override { return LayerKind::kFlatten; }
    [[nodiscard]] std::string describe() const override { return "Flatten"; }

private:
    Shape cached_shape_;
};

/// Inference-style batch normalisation over per-channel running
/// statistics: y = γ·(x−μ)/√(σ²+ε) + β on [N,C,H,W]. The PI planner
/// never sees this layer — Graph::fold_batch_norms() folds it into the
/// producing Conv2d at compile time. `rng` draws slightly-off-identity
/// parameters so folding is exercised non-trivially on untrained models.
class BatchNorm2d final : public Layer {
public:
    BatchNorm2d(std::int64_t channels, Rng& rng);

    Tensor forward(const Tensor& x) override;
    [[nodiscard]] Tensor infer(const Tensor& x) const override;
    Tensor backward(const Tensor& grad_out) override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    [[nodiscard]] LayerKind kind() const override { return LayerKind::kBatchNorm; }
    [[nodiscard]] std::string describe() const override;

    [[nodiscard]] const Parameter& gamma() const { return gamma_; }
    [[nodiscard]] const Parameter& beta() const { return beta_; }
    [[nodiscard]] const Tensor& running_mean() const { return running_mean_; }
    [[nodiscard]] const Tensor& running_var() const { return running_var_; }
    [[nodiscard]] float epsilon() const { return eps_; }

private:
    Parameter gamma_;      ///< [C]
    Parameter beta_;       ///< [C]
    Tensor running_mean_;  ///< [C]
    Tensor running_var_;   ///< [C]
    float eps_ = 1e-5F;
    Tensor cached_input_;
};

/// Global average pool: [N,C,H,W] -> [N,C]. Replaces Flatten+wide-FC in
/// the ResNet zoo entries; plans as a single local averaging op.
class GlobalAvgPool final : public Layer {
public:
    GlobalAvgPool() = default;
    Tensor forward(const Tensor& x) override;
    [[nodiscard]] Tensor infer(const Tensor& x) const override;
    Tensor backward(const Tensor& grad_out) override;
    [[nodiscard]] LayerKind kind() const override { return LayerKind::kGlobalAvgPool; }
    [[nodiscard]] std::string describe() const override { return "GlobalAvgPool"; }

private:
    Shape cached_shape_;
};

/// Nearest-neighbour upsample (inverse-model building block).
class Upsample final : public Layer {
public:
    explicit Upsample(std::int64_t factor) : factor_(factor) {}
    Tensor forward(const Tensor& x) override;
    [[nodiscard]] Tensor infer(const Tensor& x) const override;
    Tensor backward(const Tensor& grad_out) override;
    [[nodiscard]] LayerKind kind() const override { return LayerKind::kUpsample; }
    [[nodiscard]] std::string describe() const override;

private:
    std::int64_t factor_;
};

/// Reshape rows of a [N, F] tensor into [N, C, H, W] (the inverse of
/// Flatten; used by inversion models that cross a flatten boundary).
class Reshape final : public Layer {
public:
    explicit Reshape(Shape target_chw) : target_(std::move(target_chw)) {}
    Tensor forward(const Tensor& x) override;
    [[nodiscard]] Tensor infer(const Tensor& x) const override;
    Tensor backward(const Tensor& grad_out) override;
    [[nodiscard]] LayerKind kind() const override { return LayerKind::kReshape; }
    [[nodiscard]] std::string describe() const override;

private:
    Shape target_;  ///< per-sample target shape (no batch dim)
    Shape cached_shape_;
};

/// ResNet basic block (He et al. 2016): conv3x3-ReLU-conv3x3 + skip, final
/// ReLU. A 1x1 projection is inserted on the skip when channel counts
/// differ. Used by the EINA inversion model and inside DINA's basic
/// inverse blocks.
class ResidualBlock final : public Layer {
public:
    ResidualBlock(std::int64_t in_channels, std::int64_t out_channels, Rng& rng);

    Tensor forward(const Tensor& x) override;
    [[nodiscard]] Tensor infer(const Tensor& x) const override;
    Tensor backward(const Tensor& grad_out) override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    [[nodiscard]] LayerKind kind() const override { return LayerKind::kResidualBlock; }
    [[nodiscard]] std::string describe() const override;

private:
    std::unique_ptr<Conv2d> conv1_;
    std::unique_ptr<Relu> relu1_;
    std::unique_ptr<Conv2d> conv2_;
    std::unique_ptr<Conv2d> projection_;  ///< null when in==out channels
    Tensor cached_input_;
    Tensor cached_pre_activation_;
};

}  // namespace c2pi::nn
