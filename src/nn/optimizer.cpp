#include "nn/optimizer.hpp"

#include <cmath>

namespace c2pi::nn {

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
    velocity_.reserve(params_.size());
    for (auto* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Parameter& p = *params_[i];
        Tensor& vel = velocity_[i];
        for (std::int64_t j = 0; j < p.value.numel(); ++j) {
            const float g = p.grad[j] + weight_decay_ * p.value[j];
            vel[j] = momentum_ * vel[j] + g;
            p.value[j] -= lr_ * vel[j];
        }
        p.zero_grad();
    }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2, float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (auto* p : params_) {
        m_.emplace_back(p->value.shape());
        v_.emplace_back(p->value.shape());
    }
}

void Adam::step() {
    ++t_;
    const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Parameter& p = *params_[i];
        for (std::int64_t j = 0; j < p.value.numel(); ++j) {
            const float g = p.grad[j];
            m_[i][j] = beta1_ * m_[i][j] + (1.0F - beta1_) * g;
            v_[i][j] = beta2_ * v_[i][j] + (1.0F - beta2_) * g * g;
            const float mhat = m_[i][j] / bc1;
            const float vhat = v_[i][j] / bc2;
            p.value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
        }
        p.zero_grad();
    }
}

}  // namespace c2pi::nn
