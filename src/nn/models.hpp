#pragma once

/// \file models.hpp
/// The model zoo used in the paper's evaluation: AlexNet and VGG16/VGG19
/// CIFAR variants. Exact layer topology (conv counts, ReLU placement,
/// pooling schedule) is preserved; a width multiplier scales channel
/// counts so experiments run on CPU (DESIGN.md §4, substitution 2).

#include "core/rng.hpp"
#include "nn/sequential.hpp"

namespace c2pi::nn {

struct ModelConfig {
    std::int64_t num_classes = 10;
    std::int64_t input_hw = 32;      ///< square input resolution
    std::int64_t input_channels = 3;
    float width_multiplier = 0.25F;  ///< scales every channel count (min 4)
    std::uint64_t seed = kDefaultSeed;
};

/// AlexNet CIFAR variant: 5 conv layers + 3 FC layers (8 linear ops; the
/// paper's Fig. 8 sweeps ids 1..7, excluding the classifier output).
[[nodiscard]] Sequential make_alexnet(const ModelConfig& config);

/// VGG16 CIFAR variant: 13 conv layers + 1 FC classifier.
[[nodiscard]] Sequential make_vgg16(const ModelConfig& config);

/// VGG19 CIFAR variant: 16 conv layers + 1 FC classifier.
[[nodiscard]] Sequential make_vgg19(const ModelConfig& config);

/// Factory by name ("alexnet" | "vgg16" | "vgg19").
[[nodiscard]] Sequential make_model(const std::string& name, const ModelConfig& config);

/// Channel count after width scaling (exposed for tests).
[[nodiscard]] std::int64_t scaled_channels(std::int64_t base, float width_multiplier);

}  // namespace c2pi::nn
