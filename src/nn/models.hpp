#pragma once

/// \file models.hpp
/// The model zoo used in the paper's evaluation: AlexNet and VGG16/VGG19
/// CIFAR variants, plus ResNet-9/ResNet-18 residual models built on the
/// Graph IR. Exact layer topology (conv counts, ReLU placement, pooling
/// schedule, skip structure) is preserved; a width multiplier scales
/// channel counts so experiments run on CPU (DESIGN.md §4, substitution
/// 2). Prefer the typed registry in nn/zoo.hpp for building by id.

#include "core/rng.hpp"
#include "nn/sequential.hpp"

namespace c2pi::nn {

struct ModelConfig {
    std::int64_t num_classes = 10;
    std::int64_t input_hw = 32;      ///< square input resolution
    std::int64_t input_channels = 3;
    float width_multiplier = 0.25F;  ///< scales every channel count (min 4)
    std::uint64_t seed = kDefaultSeed;
};

/// AlexNet CIFAR variant: 5 conv layers + 3 FC layers (8 linear ops; the
/// paper's Fig. 8 sweeps ids 1..7, excluding the classifier output).
[[nodiscard]] Sequential make_alexnet(const ModelConfig& config);

/// VGG16 CIFAR variant: 13 conv layers + 1 FC classifier.
[[nodiscard]] Sequential make_vgg16(const ModelConfig& config);

/// VGG19 CIFAR variant: 16 conv layers + 1 FC classifier.
[[nodiscard]] Sequential make_vgg19(const ModelConfig& config);

/// ResNet-9 CIFAR variant: conv stem, two basic blocks with identity
/// skips, GlobalAvgPool head (8 linear ops after BN folding). Requires
/// input_hw divisible by 4. When `fold_bn` is set (the default) the
/// batch norms are folded into their convs so the graph compiles to PI.
[[nodiscard]] Graph make_resnet9(const ModelConfig& config, bool fold_bn = true);

/// ResNet-18 CIFAR variant (He et al. 2016): conv stem, four stages of
/// two basic blocks (stride-2 + 1x1-projection at each stage entry),
/// GlobalAvgPool head (21 linear ops after BN folding). Requires
/// input_hw divisible by 8.
[[nodiscard]] Graph make_resnet18(const ModelConfig& config, bool fold_bn = true);

/// Channel count after width scaling (exposed for tests).
[[nodiscard]] std::int64_t scaled_channels(std::int64_t base, float width_multiplier);

}  // namespace c2pi::nn
