#include "data/synthetic.hpp"

#include <cmath>

namespace c2pi::data {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// Per-class generative parameters, derived deterministically from
/// (dataset seed, label) so train and test share class structure.
struct ClassPrototype {
    double theta;       ///< grating orientation
    double freq;        ///< grating spatial frequency (cycles per image)
    double color[3];    ///< per-channel grating weight
    double blob_cx, blob_cy, blob_r, blob_amp;
    double edge_pos;    ///< vertical edge position in [0.2, 0.8]
    double edge_amp;
};

ClassPrototype make_prototype(std::uint64_t seed, std::int64_t label, std::int64_t num_classes,
                              float margin) {
    SplitMix64 sm(seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(label + 1)));
    Rng rng(sm.next());
    ClassPrototype p{};
    // Orientation is the primary class feature: evenly spread, scaled by margin.
    p.theta = (static_cast<double>(label) / static_cast<double>(num_classes)) * kPi;
    p.freq = 1.5 + 3.0 * rng.uniform() * margin + 1.0 * (1.0 - margin);
    for (auto& c : p.color) c = 0.35 + 0.65 * rng.uniform();
    p.blob_cx = 0.2 + 0.6 * rng.uniform();
    p.blob_cy = 0.2 + 0.6 * rng.uniform();
    p.blob_r = 0.12 + 0.15 * rng.uniform();
    p.blob_amp = (0.25 + 0.3 * rng.uniform()) * margin;
    p.edge_pos = 0.2 + 0.6 * rng.uniform();
    p.edge_amp = 0.2 * rng.uniform() * margin;
    return p;
}
}  // namespace

DatasetConfig DatasetConfig::cifar10_like() {
    DatasetConfig c;
    c.num_classes = 10;
    c.class_margin = 1.0F;
    c.seed = kDefaultSeed ^ 0x10;
    return c;
}

DatasetConfig DatasetConfig::cifar100_like() {
    DatasetConfig c;
    c.num_classes = 20;       // CIFAR-100 modelled by more classes ...
    c.class_margin = 0.55F;   // ... with smaller margins (DESIGN.md §4).
    c.noise_std = 0.07F;
    c.seed = kDefaultSeed ^ 0x100;
    return c;
}

SyntheticImageDataset::SyntheticImageDataset(DatasetConfig config) : config_(config) {
    require(config_.channels == 3, "synthetic dataset generates RGB images");
    Rng train_rng(config_.seed ^ 0xA11CE);
    Rng test_rng(config_.seed ^ 0xB0B);
    train_.reserve(static_cast<std::size_t>(config_.train_size));
    test_.reserve(static_cast<std::size_t>(config_.test_size));
    for (std::int64_t i = 0; i < config_.train_size; ++i)
        train_.push_back(generate_sample(i % config_.num_classes, train_rng));
    for (std::int64_t i = 0; i < config_.test_size; ++i)
        test_.push_back(generate_sample(i % config_.num_classes, test_rng));
}

Sample SyntheticImageDataset::generate_sample(std::int64_t label, Rng& rng) const {
    const auto proto = make_prototype(config_.seed, label, config_.num_classes, config_.class_margin);
    const std::int64_t hw = config_.image_size;
    Sample s;
    s.label = label;
    s.image = Tensor({config_.channels, hw, hw});

    // Per-sample jitter keeps the class recognisable while varying pixels.
    const double phase = rng.uniform() * 2.0 * kPi;
    const double dtheta = (rng.uniform() - 0.5) * 0.15;
    const double bx = proto.blob_cx + (rng.uniform() - 0.5) * 0.2;
    const double by = proto.blob_cy + (rng.uniform() - 0.5) * 0.2;
    const double amp = 0.30 + 0.10 * rng.uniform();

    const double ct = std::cos(proto.theta + dtheta);
    const double st = std::sin(proto.theta + dtheta);
    for (std::int64_t y = 0; y < hw; ++y) {
        for (std::int64_t x = 0; x < hw; ++x) {
            const double u = static_cast<double>(x) / static_cast<double>(hw);
            const double v = static_cast<double>(y) / static_cast<double>(hw);
            const double grating =
                std::sin(2.0 * kPi * proto.freq * (u * ct + v * st) + phase);
            const double dx = u - bx;
            const double dy = v - by;
            const double blob =
                proto.blob_amp * std::exp(-(dx * dx + dy * dy) / (2.0 * proto.blob_r * proto.blob_r));
            const double edge = (u > proto.edge_pos) ? proto.edge_amp : -proto.edge_amp;
            for (std::int64_t c = 0; c < config_.channels; ++c) {
                const double base = 0.5 + amp * proto.color[static_cast<std::size_t>(c)] * grating +
                                    blob + 0.5 * edge;
                const double noisy = base + rng.normal(0.0F, config_.noise_std);
                s.image[(c * hw + y) * hw + x] =
                    static_cast<float>(std::min(1.0, std::max(0.0, noisy)));
            }
        }
    }
    return s;
}

Tensor SyntheticImageDataset::make_batch(std::span<const Sample> samples,
                                         std::span<const std::size_t> indices) const {
    require(!indices.empty(), "empty batch");
    const auto& first = samples[indices[0]].image;
    Tensor batch({static_cast<std::int64_t>(indices.size()), first.dim(0), first.dim(1), first.dim(2)});
    const std::int64_t per = first.numel();
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const auto& img = samples[indices[i]].image;
        std::copy(img.data(), img.data() + per, batch.data() + static_cast<std::int64_t>(i) * per);
    }
    return batch;
}

std::vector<std::int64_t> SyntheticImageDataset::make_labels(
    std::span<const Sample> samples, std::span<const std::size_t> indices) const {
    std::vector<std::int64_t> labels;
    labels.reserve(indices.size());
    for (const auto idx : indices) labels.push_back(samples[idx].label);
    return labels;
}

Tensor SyntheticImageDataset::stack_images(std::span<const Sample> samples, std::size_t n) const {
    n = std::min(n, samples.size());
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    return make_batch(samples, idx);
}

std::vector<std::int64_t> SyntheticImageDataset::stack_labels(std::span<const Sample> samples,
                                                              std::size_t n) const {
    n = std::min(n, samples.size());
    std::vector<std::int64_t> labels(n);
    for (std::size_t i = 0; i < n; ++i) labels[i] = samples[i].label;
    return labels;
}

}  // namespace c2pi::data
