#pragma once

/// \file synthetic.hpp
/// Class-structured synthetic image datasets standing in for CIFAR-10 and
/// CIFAR-100 (which are not available in this offline environment; see
/// DESIGN.md §4, substitution 1).
///
/// Every class owns a prototype composed of an oriented sinusoidal grating,
/// a Gaussian blob and a colour profile; samples jitter phase, position and
/// amplitude and add pixel noise. The datasets are (a) learnable by small
/// conv nets, (b) spatially structured so SSIM-based recovery is
/// meaningful, and (c) harder in the "CIFAR-100-like" configuration (more
/// classes, smaller margins) which reproduces its lower baseline accuracy.

#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "tensor/tensor.hpp"

namespace c2pi::data {

struct DatasetConfig {
    std::int64_t num_classes = 10;
    std::int64_t image_size = 32;  ///< square images, CIFAR-sized by default
    std::int64_t channels = 3;
    std::int64_t train_size = 1024;
    std::int64_t test_size = 256;
    float class_margin = 1.0F;  ///< scales inter-class separation (lower = harder)
    float noise_std = 0.05F;    ///< additive pixel noise
    std::uint64_t seed = kDefaultSeed;

    /// CIFAR-10 stand-in: 10 well-separated classes.
    [[nodiscard]] static DatasetConfig cifar10_like();
    /// CIFAR-100 stand-in: 20 classes with smaller margins (see DESIGN.md).
    [[nodiscard]] static DatasetConfig cifar100_like();
};

struct Sample {
    Tensor image;  ///< [C,H,W], values in [0,1]
    std::int64_t label = 0;
};

/// Deterministic in-memory dataset with train/test splits.
class SyntheticImageDataset {
public:
    explicit SyntheticImageDataset(DatasetConfig config);

    [[nodiscard]] const DatasetConfig& config() const { return config_; }
    [[nodiscard]] const std::vector<Sample>& train() const { return train_; }
    [[nodiscard]] const std::vector<Sample>& test() const { return test_; }

    /// Stack samples indexed by `indices` into one [N,C,H,W] batch.
    [[nodiscard]] Tensor make_batch(std::span<const Sample> samples,
                                    std::span<const std::size_t> indices) const;
    [[nodiscard]] std::vector<std::int64_t> make_labels(std::span<const Sample> samples,
                                                        std::span<const std::size_t> indices) const;

    /// Stack the first n samples of a split into a batch (n clamped to size).
    [[nodiscard]] Tensor stack_images(std::span<const Sample> samples, std::size_t n) const;
    [[nodiscard]] std::vector<std::int64_t> stack_labels(std::span<const Sample> samples,
                                                         std::size_t n) const;

private:
    [[nodiscard]] Sample generate_sample(std::int64_t label, Rng& rng) const;

    DatasetConfig config_;
    std::vector<Sample> train_;
    std::vector<Sample> test_;
};

}  // namespace c2pi::data
