#pragma once

/// \file transport.hpp
/// The party-to-party transport seam shared by every protocol layer.
///
/// A `Transport` is one party's endpoint of a two-party connection. The
/// protocol code (OT extension, HE linear layers, the PI sessions) only
/// ever sees this interface, so the same session runs unchanged over the
/// in-process `DuplexChannel` (channel.hpp) or a real TCP socket
/// (tcp.hpp).
///
/// Every implementation keeps the exact same traffic accounting in
/// `ChannelStats`: payload bytes and message counts per (phase, sender),
/// and the number of message *flights* (maximal runs of messages in one
/// direction), which is what round-trip latency scales with. The
/// deterministic LAN/WAN latency model in cost_model.hpp turns (measured
/// compute, bytes, flights) into the latencies reported in Table II
/// (DESIGN.md §4, substitution 5). Transport-level overhead — frame
/// headers, handshakes — is deliberately *not* counted, so the stats are
/// comparable across transports and match the analytic cost model.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace c2pi::net {

/// Protocol phase tag for traffic accounting (Delphi separates an input-
/// independent offline phase; Cheetah is online-only). kPreprocess is the
/// per-session FSS key-shipment phase: input-independent like kOffline,
/// but kept in its own bucket so key-batch bytes never blur into the
/// offline HE traffic the paper's tables report.
enum class Phase { kOffline = 0, kOnline = 1, kPreprocess = 2 };
inline constexpr int kNumPhases = 3;

// -- typed transport failures ------------------------------------------------
// A serving pool must tell a dying client apart from a hostile one and
// from its own bugs (docs/PROTOCOL.md §9, "Failure semantics"), so the
// transport layer reports its three externally-caused failure shapes as
// distinct types. Everything else (malformed frames, codec violations)
// stays a plain c2pi::Error.

/// The peer went away: clean SHUTDOWN frame mid-protocol, raw EOF, a
/// connection reset, or EPIPE on send. From a server's point of view
/// this is a client abort — common under WAN serving, never fatal to
/// the worker.
struct PeerClosed : Error {
    using Error::Error;
};

/// A blocking receive exceeded its deadline (set_recv_timeout or the
/// handshake deadline): the peer is connected but silent.
struct RecvTimeout : Error {
    using Error::Error;
};

/// Could not establish the connection before the caller's deadline
/// (nobody listening, SYNs dropped, network unreachable). Typed so a
/// client retry policy can treat it like a BUSY rejection: nothing
/// secret has been sent yet, so retrying is always safe.
struct ConnectFailed : Error {
    using Error::Error;
};

/// Traffic counters for one two-party connection. For the in-process
/// channel the two parties share one instance; each TCP endpoint keeps
/// its own, and the two views are identical because both parties observe
/// every message of the (sequential) protocol in the same order.
struct ChannelStats {
    std::uint64_t bytes[kNumPhases][2] = {};     ///< [phase][sender]
    std::uint64_t messages[kNumPhases][2] = {};  ///< [phase][sender]
    std::uint64_t flights[kNumPhases] = {};      ///< direction-change runs per phase
    int last_sender = -1;                        ///< for flight counting

    /// Account one message: payload bytes under (phase, sender), and a
    /// new flight — charged to the phase of the message that opens it —
    /// whenever the direction turns over.
    void record(int sender, Phase phase, std::size_t payload_bytes) {
        const int p = static_cast<int>(phase);
        bytes[p][sender] += payload_bytes;
        messages[p][sender] += 1;
        if (last_sender != sender) {
            flights[p] += 1;
            last_sender = sender;
        }
    }

    [[nodiscard]] std::uint64_t total_bytes() const {
        std::uint64_t total = 0;
        for (int p = 0; p < kNumPhases; ++p) total += bytes[p][0] + bytes[p][1];
        return total;
    }
    [[nodiscard]] std::uint64_t phase_bytes(Phase p) const {
        return bytes[static_cast<int>(p)][0] + bytes[static_cast<int>(p)][1];
    }
    [[nodiscard]] std::uint64_t phase_flights(Phase p) const {
        return flights[static_cast<int>(p)];
    }
    [[nodiscard]] std::uint64_t total_flights() const {
        std::uint64_t total = 0;
        for (int p = 0; p < kNumPhases; ++p) total += flights[p];
        return total;
    }

    friend bool operator==(const ChannelStats&, const ChannelStats&) = default;
};

/// Seconds an endpoint spent *blocked on the network*, per phase and
/// direction: waiting for a peer message to arrive (recv), or waiting
/// for the transport to accept outgoing bytes (a synchronous socket
/// write, or a full pipelined send queue). Kept OUT of ChannelStats on
/// purpose — wall time is nondeterministic, and ChannelStats equality is
/// what the wire-parity tests pin. Subtracting the wait from a phase's
/// wall time yields its compute time, which is how pi_server/pi_client
/// report the compute/communication overlap of the pipelined online
/// phase.
struct WaitStats {
    double send_seconds[kNumPhases] = {};  ///< blocked handing bytes to the transport
    double recv_seconds[kNumPhases] = {};  ///< blocked waiting for the peer

    void add_send(Phase phase, double seconds) {
        send_seconds[static_cast<int>(phase)] += seconds;
    }
    void add_recv(Phase phase, double seconds) {
        recv_seconds[static_cast<int>(phase)] += seconds;
    }
    [[nodiscard]] double phase_seconds(Phase p) const {
        return send_seconds[static_cast<int>(p)] + recv_seconds[static_cast<int>(p)];
    }
    [[nodiscard]] double total_seconds() const {
        double total = 0.0;
        for (int p = 0; p < kNumPhases; ++p) total += send_seconds[p] + recv_seconds[p];
        return total;
    }
};

/// A party's endpoint of a two-party connection. party_id is 0 (server)
/// or 1 (client) by convention throughout the repo.
///
/// Message semantics (identical for every implementation): `send_bytes`
/// delivers one framed message; `recv_bytes` returns exactly one message,
/// in FIFO order, blocking until it arrives. Sizes are preserved — a
/// 7-byte send arrives as a 7-byte message, never split or coalesced.
class Transport {
public:
    explicit Transport(int party_id) : party_(party_id) {
        require(party_id == 0 || party_id == 1, "party_id must be 0 or 1");
    }
    virtual ~Transport() = default;

    Transport(const Transport&) = delete;
    Transport& operator=(const Transport&) = delete;

    [[nodiscard]] int party_id() const { return party_; }

    /// Phase under which subsequent sends are accounted (and, for framed
    /// transports, tagged on the wire so the receiver attributes them to
    /// the same phase).
    void set_phase(Phase phase) { phase_ = phase; }
    [[nodiscard]] Phase phase() const { return phase_; }

    /// Send one message to the peer.
    virtual void send_bytes(std::span<const std::uint8_t> data) = 0;
    /// Block until the peer's next message arrives and return it.
    [[nodiscard]] virtual std::vector<std::uint8_t> recv_bytes() = 0;
    /// Receive one message into a caller-owned buffer, reusing its
    /// capacity where the implementation can (TcpTransport reads the
    /// frame payload straight into it). Protocols that receive many
    /// same-sized messages (HE ciphertexts) pass a per-session scratch
    /// buffer to amortize the allocation.
    virtual void recv_bytes_into(std::vector<std::uint8_t>& out) { out = recv_bytes(); }
    /// Snapshot of this connection's traffic accounting.
    [[nodiscard]] virtual ChannelStats stats() const = 0;
    /// Snapshot of this endpoint's blocked-on-network time. Defaults to
    /// zero for transports that do not measure it (test recorders).
    [[nodiscard]] virtual WaitStats wait_stats() const { return {}; }

    // -- pipelined sends -----------------------------------------------------
    /// Switch this endpoint's send path between synchronous (send_bytes
    /// returns after the bytes reached the OS) and pipelined (send_bytes
    /// enqueues into a bounded per-session queue drained by a writer
    /// thread and returns immediately). Frame order, per-message bytes,
    /// and ChannelStats accounting are identical in both modes — stats
    /// are recorded at enqueue time on the protocol thread — so the wire
    /// transcript is bit-identical either way. Transports whose sends
    /// already never block (the in-process queue) treat this as a no-op.
    virtual void set_pipelined_sends(bool enabled) { (void)enabled; }
    /// Block until every pipelined send has been handed to the OS,
    /// rethrowing any asynchronous send failure on the calling thread.
    /// A no-op for synchronous transports.
    virtual void flush_sends() {}

    /// Hard abort: tear the connection down *without* the goodbye
    /// sequence, so the peer observes an abrupt end (PeerClosed) rather
    /// than a clean shutdown — exactly what a crashed process or a cut
    /// link looks like. The fault-injection layer (faulty.hpp) uses this
    /// to simulate mid-protocol disconnects; implementations without a
    /// connection to break may leave it a no-op.
    virtual void abort_connection() noexcept {}

    // -- session bootstrap ---------------------------------------------------
    /// Ship the serialized public model artifact to the peer, before any
    /// protocol message. Artifact bytes are session *setup*, not protocol
    /// traffic: like the handshake they are deliberately NOT recorded in
    /// ChannelStats, so the shipped-artifact and locally-compiled client
    /// paths keep identical per-phase stats (docs/PROTOCOL.md §3).
    /// Implemented by InProcTransport and TcpTransport; decorators and
    /// other transports refuse by default.
    virtual void send_artifact_bytes(std::span<const std::uint8_t> bytes) {
        (void)bytes;
        fail("this transport cannot ship a model artifact");
    }
    /// Receive the peer's artifact frame; must be called before the first
    /// protocol recv on transports whose peer ships one.
    [[nodiscard]] virtual std::vector<std::uint8_t> recv_artifact_bytes() {
        fail("this transport cannot receive a model artifact");
    }

    // -- preprocessing material ----------------------------------------------
    /// Ship one batch of input-independent correlated randomness (FSS key
    /// halves) to the peer. Unlike artifact shipping these bytes ARE
    /// protocol traffic — a real deployment pays for them — but they are
    /// always accounted under Phase::kPreprocess regardless of the
    /// transport's current phase, so online nonlinear bytes stay clean
    /// (docs/PROTOCOL.md §4). Implemented by InProcTransport and
    /// TcpTransport; other transports refuse by default.
    virtual void send_keys_bytes(std::span<const std::uint8_t> bytes) {
        (void)bytes;
        fail("this transport cannot ship preprocessing key material");
    }
    /// Receive one preprocessing key batch from the peer.
    [[nodiscard]] virtual std::vector<std::uint8_t> recv_keys_bytes() {
        fail("this transport cannot receive preprocessing key material");
    }

    // -- typed helpers -------------------------------------------------------
    void send_u64s(std::span<const std::uint64_t> values) {
        send_bytes(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(values.data()), values.size() * 8));
    }

    [[nodiscard]] std::vector<std::uint64_t> recv_u64s() {
        const auto raw = recv_bytes();
        require(raw.size() % 8 == 0, "recv_u64s: payload not a multiple of 8 bytes");
        std::vector<std::uint64_t> values(raw.size() / 8);
        std::memcpy(values.data(), raw.data(), raw.size());
        return values;
    }

    /// Like recv_u64s, but stages the frame through a caller-owned byte
    /// scratch (recv_bytes_into) so steady-state reveal rounds allocate
    /// nothing once the scratch and output have warmed up.
    void recv_u64s_into(std::vector<std::uint8_t>& scratch, std::vector<std::uint64_t>& values) {
        recv_bytes_into(scratch);
        require(scratch.size() % 8 == 0, "recv_u64s: payload not a multiple of 8 bytes");
        values.resize(scratch.size() / 8);
        std::memcpy(values.data(), scratch.data(), scratch.size());
    }

    void send_u64(std::uint64_t v) { send_u64s(std::span<const std::uint64_t>(&v, 1)); }

    [[nodiscard]] std::uint64_t recv_u64() {
        const auto v = recv_u64s();
        require(v.size() == 1, "expected a single u64");
        return v[0];
    }

protected:
    int party_;
    Phase phase_ = Phase::kOnline;
};

}  // namespace c2pi::net
