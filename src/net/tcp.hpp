#pragma once

/// \file tcp.hpp
/// Socket-backed implementation of the `Transport` seam: the two parties
/// run as two OS processes connected over TCP.
///
/// Wire format (normative spec: docs/PROTOCOL.md). After a fixed 8-byte
/// handshake in each direction, every `send_bytes` becomes one frame:
/// an 8-byte header (little-endian payload length, frame type, phase
/// tag) followed by the payload. The phase tag lets the *receiver*
/// attribute traffic to the sender's protocol phase, so each endpoint
/// reconstructs the full per-phase `ChannelStats` — bytes, messages and
/// flights bit-identical to the in-process `DuplexChannel` accounting
/// (only protocol payload is counted, never headers or the handshake).
///
/// Connection establishment is asymmetric (`listen` + `accept` on the
/// server, `connect` with a retry deadline on the client) but the
/// resulting `TcpTransport` endpoints are symmetric peers. Shutdown is
/// explicit: `close()` sends a kShutdown frame before closing the
/// socket, so the peer can distinguish a clean end-of-session from a
/// mid-protocol crash (abrupt EOF), and both throw `c2pi::Error` from a
/// pending `recv_bytes`.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/transport.hpp"

namespace c2pi::net {

/// Frame/handshake constants, shared with docs/PROTOCOL.md.
inline constexpr std::uint8_t kWireMagic[4] = {'C', '2', 'P', 'I'};
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHandshakeSize = 8;
inline constexpr std::size_t kFrameHeaderSize = 8;
/// Upper bound on a single frame's payload; a corrupt or hostile header
/// fails fast instead of triggering a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxFramePayload = 1U << 30;
/// Tighter bound for the session-bootstrap ARTIFACT frame: real
/// artifacts are a few hundred bytes, and the receiver allocates the
/// payload before the codec can reject it — don't let a hostile server
/// demand a gigabyte first.
inline constexpr std::uint32_t kMaxArtifactPayload = 1U << 20;

enum class FrameType : std::uint8_t {
    kData = 1,
    kShutdown = 2,
    kArtifact = 3,
    kBusy = 4,
    kKeys = 5,
};

/// Typed overload rejection: the server refused the session before it
/// began because its serving pool is saturated (BUSY frame,
/// docs/PROTOCOL.md §5). Distinct from Error so a client can tell "come
/// back later" apart from a protocol failure.
struct ServerBusy final : Error {
    ServerBusy() : Error("tcp recv: server is at capacity (BUSY frame) - retry later") {}
};

/// One party's endpoint of a TCP connection. Obtain via TcpListener
/// (server, party 0) or connect() (client, party 1); the constructor
/// performs the version/party handshake and enables TCP_NODELAY (the
/// protocols are ping-pong; Nagle would serialize every flight behind a
/// delayed ACK).
class TcpTransport final : public Transport {
public:
    /// Adopts a connected socket and runs the handshake, whose read is
    /// bounded by `handshake_timeout_ms` (an accepting server must not be
    /// wedged by a connected-but-silent peer; a connector must be allowed
    /// to wait out the server's accept queue, so connect() passes its
    /// caller's remaining deadline). Throws c2pi::Error on timeout, a
    /// magic/version mismatch, or if the peer claims the same party id.
    TcpTransport(int fd, int party_id, int handshake_timeout_ms = 10'000);
    ~TcpTransport() override;

    void send_bytes(std::span<const std::uint8_t> data) override;
    [[nodiscard]] std::vector<std::uint8_t> recv_bytes() override;
    /// Frame payload is read straight into `out` (resized, capacity
    /// reused) — no per-message allocation once the buffer has grown.
    void recv_bytes_into(std::vector<std::uint8_t>& out) override;
    [[nodiscard]] ChannelStats stats() const override;
    [[nodiscard]] WaitStats wait_stats() const override;

    /// Pipelined sends (docs/PROTOCOL.md §10): ON spawns a writer thread
    /// draining a bounded queue of pre-framed messages, so send_bytes
    /// copies the frame and returns while the NIC drains; OFF flushes the
    /// queue and joins the writer. Stats are recorded at enqueue time on
    /// the protocol thread, so ChannelStats — bytes, messages, flights —
    /// are bit-identical to the synchronous path. A writer-side socket
    /// failure is stored and rethrown from the next send/recv/flush on
    /// the protocol thread.
    void set_pipelined_sends(bool enabled) override;
    void flush_sends() override;

    /// Session bootstrap: the serialized model artifact travels in its
    /// own kArtifact frame, sent by the server immediately after the
    /// handshake and — like the handshake — NOT recorded in ChannelStats
    /// (docs/PROTOCOL.md §3). recv throws if the next frame is anything
    /// else: the artifact is the first thing on the wire, by spec.
    void send_artifact_bytes(std::span<const std::uint8_t> bytes) override;
    [[nodiscard]] std::vector<std::uint8_t> recv_artifact_bytes() override;

    /// Preprocessing key batches travel in kKeys frames: metered like
    /// DATA (a real deployment pays for key shipment) but always under
    /// Phase::kPreprocess, whatever phase the transport is in
    /// (docs/PROTOCOL.md §4).
    void send_keys_bytes(std::span<const std::uint8_t> bytes) override;
    [[nodiscard]] std::vector<std::uint8_t> recv_keys_bytes() override;

    /// Overload rejection: send a BUSY frame in place of the session's
    /// ARTIFACT frame (docs/PROTOCOL.md §5), telling the peer the server
    /// is at capacity. Caller follows up with close(); the peer's
    /// pending recv raises ServerBusy.
    void send_busy();

    /// Abort a `recv_bytes` blocked longer than this with a typed
    /// RecvTimeout (0 restores blocking forever). Protects servers from
    /// stalled peers. This is the *steady-state* deadline; see
    /// arm_handshake_deadline for the stricter session-bootstrap one.
    void set_recv_timeout(int milliseconds);

    /// Arm a one-shot, shorter deadline covering the session-bootstrap
    /// reads: it applies immediately and stays in force until the first
    /// DATA frame arrives from the peer, at which point the transport
    /// reverts to the steady set_recv_timeout value on its own. A
    /// connected-but-silent peer — a port scanner, a client that died
    /// right after the handshake — is then shed in `milliseconds`, not
    /// pinned against the (much longer) protocol recv timeout
    /// (docs/PROTOCOL.md §9). Call after set_recv_timeout.
    void arm_handshake_deadline(int milliseconds);

    /// Hard abort: close the socket with NO goodbye frame, so the peer
    /// observes a mid-protocol EOF (PeerClosed) — the shape of a crashed
    /// process. Used by the fault-injection layer; idempotent with
    /// close().
    void abort_connection() noexcept override;

    /// Graceful shutdown: send a kShutdown frame, half-close, drain the
    /// peer's remaining bytes (bounded — a hostile streamer cannot pin
    /// us here), close. Idempotent; also run (with errors swallowed) by
    /// the destructor.
    void close() noexcept;

    /// Immediate shutdown: the goodbye frame and half-close, but no
    /// drain. Only safe when the peer cannot have unsent-but-unread data
    /// in our receive buffer — the overload-rejection path qualifies
    /// (the peer has sent nothing past the handshake we already read),
    /// and skipping the drain keeps a rejection from stalling the accept
    /// loop on a slow peer. Idempotent with close().
    void close_now() noexcept;
    [[nodiscard]] bool is_open() const { return fd_ >= 0; }

private:
    void send_frame(FrameType type, Phase phase, std::span<const std::uint8_t> payload);
    /// Read the next frame into `out`, requiring its type to be
    /// `expected`; returns the sender's phase tag. Shutdown frames and
    /// malformed headers raise typed errors for both callers.
    Phase recv_frame_into(std::vector<std::uint8_t>& out, FrameType expected);

    /// Apply an SO_RCVTIMEO in milliseconds (0 = block forever).
    void apply_recv_timeout(int milliseconds);

    /// Queue one pre-framed buffer for the writer thread, blocking (and
    /// charging WaitStats) while the queue is over its byte bound.
    void enqueue_frame(std::vector<std::uint8_t> frame, Phase phase);
    /// Drain the queue through the writer, then join it. Rethrows a
    /// pending writer error unless `swallow_errors` (the close path).
    void stop_writer(bool swallow_errors) noexcept(false);
    void writer_loop();
    void rethrow_writer_error();

    int fd_ = -1;
    bool peer_shutdown_ = false;
    int steady_recv_timeout_ms_ = 0;     ///< set_recv_timeout's value
    bool handshake_deadline_armed_ = false;  ///< until the first DATA frame
    mutable std::mutex stats_mutex_;
    ChannelStats stats_;
    WaitStats waits_;  ///< guarded by stats_mutex_

    // -- pipelined send path (protocol thread + one writer thread) -----------
    bool pipelined_ = false;  ///< protocol-thread-only flag
    std::thread writer_;
    std::mutex send_mutex_;
    std::condition_variable send_cv_;    ///< wakes the writer
    std::condition_variable drain_cv_;   ///< wakes enqueuers / flush
    std::deque<std::vector<std::uint8_t>> send_queue_;
    std::size_t queued_send_bytes_ = 0;
    bool writer_stop_ = false;
    bool writer_busy_ = false;  ///< a frame is popped but not yet written
    std::exception_ptr writer_error_;
};

/// Listening socket for the server party. Binds immediately (port 0 asks
/// the OS for an ephemeral port — see port()); SO_REUSEADDR is set so
/// quick restarts don't trip TIME_WAIT.
class TcpListener {
public:
    /// Listen on `host:port`. Defaults to loopback; use "0.0.0.0" to
    /// accept remote clients.
    explicit TcpListener(std::uint16_t port, const std::string& host = "127.0.0.1");
    ~TcpListener();

    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    /// The actual bound port (resolves port 0).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Accept one client and complete the handshake as party 0.
    /// `timeout_ms` < 0 blocks indefinitely; on timeout throws c2pi::Error.
    [[nodiscard]] std::unique_ptr<TcpTransport> accept(int timeout_ms = -1);

    /// Like accept(), but a timeout returns nullptr instead of throwing —
    /// the shape an accept loop wants when it must periodically check a
    /// stop flag (pi_server's serve-forever mode under SIGINT/SIGTERM).
    [[nodiscard]] std::unique_ptr<TcpTransport> try_accept(int timeout_ms);

    void close() noexcept;

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/// Connect to a listening server and complete the handshake as party 1.
/// Retries refused connections until `timeout_ms` elapses, so a client
/// started moments before its server still connects.
[[nodiscard]] std::unique_ptr<TcpTransport> connect(const std::string& host, std::uint16_t port,
                                                    int timeout_ms = 5000);

}  // namespace c2pi::net
