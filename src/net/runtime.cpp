#include "net/runtime.hpp"

#include <exception>
#include <thread>

#include "core/stopwatch.hpp"

namespace c2pi::net {

namespace {
/// Unblock a peer that may be waiting on recv after our party died:
/// flood its queue with empty poison messages. The peer's typed recv
/// helpers reject them (size checks) and the peer unwinds too.
void poison_peer(DuplexChannel& channel, int dead_party) {
    for (int i = 0; i < 1024; ++i) channel.queue_to(1 - dead_party).push({});
}
}  // namespace

RunResult run_two_party(DuplexChannel& channel,
                        const std::function<void(Transport&)>& server,
                        const std::function<void(Transport&)>& client) {
    std::exception_ptr server_error, client_error;
    Stopwatch watch;

    std::thread server_thread([&] {
        try {
            InProcTransport t(channel, 0);
            server(t);
        } catch (...) {
            server_error = std::current_exception();
            poison_peer(channel, 0);
        }
    });
    std::thread client_thread([&] {
        try {
            InProcTransport t(channel, 1);
            client(t);
        } catch (...) {
            client_error = std::current_exception();
            poison_peer(channel, 1);
        }
    });
    server_thread.join();
    client_thread.join();

    if (server_error) std::rethrow_exception(server_error);
    if (client_error) std::rethrow_exception(client_error);

    RunResult result;
    result.wall_seconds = watch.seconds();
    result.stats = channel.stats();
    return result;
}

}  // namespace c2pi::net
