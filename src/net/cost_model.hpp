#pragma once

/// \file cost_model.hpp
/// Deterministic network latency model. The paper evaluates under LAN
/// (384 MBps bandwidth, 0.3 ms RTT) and WAN (44 MBps, 40 ms) — we adopt
/// exactly those link parameters and compute
///
///   latency = measured_compute + bytes / bandwidth + flights * RTT / 2
///
/// where a "flight" is a maximal run of same-direction messages (each
/// direction change costs half an RTT in a request/response pattern).

#include <cstdint>
#include <string>

#include "net/channel.hpp"

namespace c2pi::net {

struct NetworkModel {
    std::string name;
    double bandwidth_bytes_per_s = 0.0;
    double rtt_seconds = 0.0;

    /// Paper's LAN setting: 384 MBps, 0.3 ms RTT.
    [[nodiscard]] static NetworkModel lan() {
        return {"LAN", 384.0 * 1024 * 1024, 0.3e-3};
    }
    /// Paper's WAN setting: 44 MBps, 40 ms RTT.
    [[nodiscard]] static NetworkModel wan() {
        return {"WAN", 44.0 * 1024 * 1024, 40.0e-3};
    }

    [[nodiscard]] double latency_seconds(double compute_seconds, std::uint64_t bytes,
                                         std::uint64_t flights) const {
        return compute_seconds + static_cast<double>(bytes) / bandwidth_bytes_per_s +
               static_cast<double>(flights) * rtt_seconds / 2.0;
    }
};

}  // namespace c2pi::net
