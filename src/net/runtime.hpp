#pragma once

/// \file runtime.hpp
/// Two-party protocol runtime: runs server and client bodies on two
/// threads over a DuplexChannel and reports wall time + traffic.

#include <functional>

#include "net/channel.hpp"

namespace c2pi::net {

struct RunResult {
    ChannelStats stats;
    double wall_seconds = 0.0;           ///< total joint execution time
    double phase_seconds[kNumPhases] = {};  ///< filled when parties report phases
};

/// Execute the two party bodies concurrently. Exceptions thrown by either
/// body are captured and rethrown on the caller thread (first one wins).
/// `server` runs as party 0, `client` as party 1.
RunResult run_two_party(DuplexChannel& channel,
                        const std::function<void(Transport&)>& server,
                        const std::function<void(Transport&)>& client);

}  // namespace c2pi::net
