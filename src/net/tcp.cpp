#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // BSD/macOS: SO_NOSIGPIPE is set per-socket instead
#endif

namespace c2pi::net {

namespace {

[[noreturn]] void fail_errno(const char* what) {
    fail(std::string(what) + ": " + std::strerror(errno));
}

void close_quietly(int& fd) {
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/// A dead peer on the send side (EPIPE thanks to MSG_NOSIGNAL, or a
/// reset) is a typed PeerClosed, not a generic error: the serving pool
/// classifies it as a client abort.
[[noreturn]] void fail_send_errno() {
    if (errno == EPIPE || errno == ECONNRESET)
        throw PeerClosed(std::string("tcp send: peer went away (") + std::strerror(errno) +
                         ")");
    fail_errno("tcp send");
}

/// Write the whole buffer (send(2) may write short). MSG_NOSIGNAL turns
/// a dead peer into EPIPE instead of a process-killing SIGPIPE.
void write_all(int fd, const std::uint8_t* data, std::size_t len) {
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            fail_send_errno();
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
}

/// Read exactly `len` bytes; false on clean EOF at a frame boundary
/// (offset 0), throws typed errors on EOF mid-buffer (PeerClosed),
/// timeout (RecvTimeout), reset (PeerClosed), or socket error.
bool read_all(int fd, std::uint8_t* data, std::size_t len) {
    std::size_t got = 0;
    while (got < len) {
        const ssize_t n = ::recv(fd, data + got, len - got, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                throw RecvTimeout("tcp recv: timed out waiting for the peer");
            if (errno == ECONNRESET)
                throw PeerClosed("tcp recv: connection reset by peer");
            fail_errno("tcp recv");
        }
        if (n == 0) {
            if (got == 0) return false;
            throw PeerClosed("tcp recv: connection closed mid-frame");
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

void put_u32le(std::uint8_t* p, std::uint32_t v) {
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32le(const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Bound on bytes parked in the pipelined send queue; past it the
/// protocol thread blocks (charged as send wait) until the writer
/// catches up, so a slow link applies backpressure instead of buffering
/// a whole inference unboundedly. A single over-bound frame is still
/// admitted when the queue is empty.
constexpr std::size_t kMaxQueuedSendBytes = std::size_t{1} << 26;  // 64 MiB

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    require(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
            "not an IPv4 address: " + host);
    return addr;
}

}  // namespace

// ------------------------------------------------------------ TcpTransport ---

TcpTransport::TcpTransport(int fd, int party_id, int handshake_timeout_ms)
    : Transport(party_id), fd_(fd) {
    require(fd >= 0, "TcpTransport needs a connected socket");
    require(handshake_timeout_ms > 0, "handshake timeout must be positive");
    const int one = 1;
    (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
#ifdef SO_NOSIGPIPE  // BSD/macOS spelling of MSG_NOSIGNAL's job
    (void)::setsockopt(fd_, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif

    // Handshake: magic | version | party | reserved, both directions. On
    // failure the socket must be closed HERE: the destructor never runs
    // for a throwing constructor, and a leaked-open fd would leave the
    // peer blocked on recv instead of seeing our EOF. The read is
    // deadline-bounded so a connected-but-silent peer (a port scanner, a
    // stalled client) cannot wedge an accept-loop server; protocol recv
    // reverts to blocking-forever unless set_recv_timeout says otherwise.
    timeval handshake_tv{};
    handshake_tv.tv_sec = handshake_timeout_ms / 1000;
    handshake_tv.tv_usec = (handshake_timeout_ms % 1000) * 1000;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &handshake_tv, sizeof(handshake_tv));
    try {
        std::uint8_t hello[kHandshakeSize] = {kWireMagic[0], kWireMagic[1], kWireMagic[2],
                                              kWireMagic[3], kWireVersion,
                                              static_cast<std::uint8_t>(party_), 0, 0};
        write_all(fd_, hello, sizeof(hello));
        std::uint8_t peer[kHandshakeSize];
        if (!read_all(fd_, peer, sizeof(peer)))
            fail("tcp handshake: peer closed the connection");
        require(std::memcmp(peer, kWireMagic, sizeof(kWireMagic)) == 0,
                "tcp handshake: bad magic (not a C2PI peer)");
        require(peer[4] == kWireVersion, "tcp handshake: protocol version mismatch");
        require(peer[5] == static_cast<std::uint8_t>(1 - party_),
                "tcp handshake: both endpoints claim the same party role");
    } catch (...) {
        close_quietly(fd_);
        throw;
    }
    handshake_tv = timeval{};
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &handshake_tv, sizeof(handshake_tv));
}

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::send_frame(FrameType type, Phase phase,
                              std::span<const std::uint8_t> payload) {
    require(payload.size() <= kMaxFramePayload, "tcp send: frame payload too large");
    std::uint8_t header[kFrameHeaderSize];
    put_u32le(header, static_cast<std::uint32_t>(payload.size()));
    header[4] = static_cast<std::uint8_t>(type);
    header[5] = static_cast<std::uint8_t>(phase);
    header[6] = header[7] = 0;
    if (pipelined_) {
        // Pipelined path: copy header+payload into one contiguous frame
        // and hand it to the writer thread. The copy frees the caller's
        // buffer (protocols reuse a per-session scratch) immediately;
        // frame ORDER is the queue order, so the wire transcript is
        // byte-identical to the synchronous path.
        std::vector<std::uint8_t> frame(kFrameHeaderSize + payload.size());
        std::memcpy(frame.data(), header, kFrameHeaderSize);
        if (!payload.empty())
            std::memcpy(frame.data() + kFrameHeaderSize, payload.data(), payload.size());
        enqueue_frame(std::move(frame), phase);
        return;
    }
    // Gathered write: header and payload go out in one sendmsg (sharing a
    // TCP segment when they fit) without copying the payload — the HE
    // ciphertext messages are multiple megabytes. Partial writes resume
    // at the right offset across both buffers.
    const std::size_t total = kFrameHeaderSize + payload.size();
    std::size_t off = 0;
    while (off < total) {
        iovec iov[2];
        std::size_t cnt = 0;
        if (off < kFrameHeaderSize) {
            iov[cnt++] = {header + off, kFrameHeaderSize - off};
            if (!payload.empty())
                iov[cnt++] = {const_cast<std::uint8_t*>(payload.data()), payload.size()};
        } else {
            const std::size_t done = off - kFrameHeaderSize;
            iov[cnt++] = {const_cast<std::uint8_t*>(payload.data()) + done,
                          payload.size() - done};
        }
        msghdr msg{};
        msg.msg_iov = iov;
        msg.msg_iovlen = cnt;
        const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            fail_send_errno();
        }
        off += static_cast<std::size_t>(n);
    }
}

void TcpTransport::send_bytes(std::span<const std::uint8_t> data) {
    require(is_open(), "tcp send: transport is closed");
    // Synchronous sends charge the whole socket write as send wait; the
    // pipelined path charges only queue-full backpressure (inside
    // enqueue_frame). Stats are recorded here on the protocol thread in
    // BOTH modes, so ChannelStats ordering (flights) never depends on
    // writer scheduling.
    const auto t0 = std::chrono::steady_clock::now();
    send_frame(FrameType::kData, phase_, data);
    const double waited = pipelined_ ? 0.0 : seconds_since(t0);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.record(party_, phase_, data.size());
    waits_.add_send(phase_, waited);
}

std::vector<std::uint8_t> TcpTransport::recv_bytes() {
    std::vector<std::uint8_t> payload;
    recv_bytes_into(payload);
    return payload;
}

Phase TcpTransport::recv_frame_into(std::vector<std::uint8_t>& out, FrameType expected) {
    require(is_open(), "tcp recv: transport is closed");
    require(!peer_shutdown_, "tcp recv: peer already ended the session");
    // Surface an asynchronous send failure here rather than waiting out
    // the recv timeout on a reply that can never come (our request died
    // in the writer).
    rethrow_writer_error();
    std::uint8_t header[kFrameHeaderSize];
    if (!read_all(fd_, header, sizeof(header)))
        throw PeerClosed("tcp recv: connection closed mid-protocol (no shutdown frame)");
    const std::uint32_t len = get_u32le(header);
    require(len <= kMaxFramePayload, "tcp recv: frame payload too large (corrupt header?)");
    require(header[6] == 0 && header[7] == 0, "tcp recv: nonzero reserved header bytes");
    const auto type = static_cast<FrameType>(header[4]);
    if (type == FrameType::kShutdown) {
        peer_shutdown_ = true;
        throw PeerClosed("tcp recv: peer ended the session");
    }
    if (type == FrameType::kBusy) {
        // Typed overload rejection (PROTOCOL.md §5): only legal from
        // party 0, only where the ARTIFACT frame would go (the session's
        // first frame — i.e. we are a client waiting for the artifact),
        // and only empty. Anywhere else it is a protocol violation, not
        // load shedding — a mid-protocol "busy" would misreport a
        // misbehaving peer as our own capacity problem.
        if (party_ == 1 && expected == FrameType::kArtifact && len == 0) {
            // No more frames follow (the peer closes right after), so
            // treat the stream as ended.
            peer_shutdown_ = true;
            throw ServerBusy{};
        }
        fail("tcp recv: illegal BUSY frame (wrong sender, position, or length)");
    }
    if (type != FrameType::kData && type != FrameType::kArtifact && type != FrameType::kKeys)
        fail("tcp recv: unknown frame type");
    if (type != expected) {
        if (expected == FrameType::kArtifact)
            fail("tcp recv: expected the session's artifact frame");
        if (expected == FrameType::kKeys)
            fail("tcp recv: expected a preprocessing KEYS frame");
        fail(type == FrameType::kArtifact
                 ? "tcp recv: unexpected artifact frame mid-protocol"
                 : "tcp recv: unexpected KEYS frame mid-protocol");
    }
    if (type == FrameType::kArtifact)
        require(len <= kMaxArtifactPayload,
                "tcp recv: artifact frame implausibly large (corrupt or hostile peer)");
    // §3: the phase tag on an ARTIFACT frame is ignored (bootstrap bytes
    // are never attributed to a protocol phase), so only DATA validates
    // it. KEYS frames are kPreprocess by definition (§4) — the receiver
    // forces the bucket rather than trusting the tag.
    Phase phase = Phase::kOnline;
    if (type == FrameType::kData) {
        require(header[5] < kNumPhases, "tcp recv: bad phase tag");
        phase = static_cast<Phase>(header[5]);
        // First DATA frame = the peer is past bootstrap and running the
        // protocol: the one-shot handshake deadline (if armed) retires
        // in favor of the steady recv timeout. Bootstrap-only frames
        // (ARTIFACT, KEYS) deliberately do NOT promote — a client that
        // fetches the artifact and then goes silent is still a
        // handshake-phase laggard and is shed on the short deadline.
        if (handshake_deadline_armed_) {
            handshake_deadline_armed_ = false;
            apply_recv_timeout(steady_recv_timeout_ms_);
        }
    } else if (type == FrameType::kKeys) {
        phase = Phase::kPreprocess;
    }

    out.resize(len);
    if (len > 0 && !read_all(fd_, out.data(), len))
        fail("tcp recv: connection closed mid-frame");
    return phase;
}

void TcpTransport::recv_bytes_into(std::vector<std::uint8_t>& out) {
    const auto t0 = std::chrono::steady_clock::now();
    const Phase phase = recv_frame_into(out, FrameType::kData);
    const double waited = seconds_since(t0);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.record(1 - party_, phase, out.size());
    waits_.add_recv(phase, waited);
}

void TcpTransport::send_artifact_bytes(std::span<const std::uint8_t> bytes) {
    require(is_open(), "tcp send: transport is closed");
    require(bytes.size() <= kMaxArtifactPayload, "tcp send: artifact too large for one frame");
    // Deliberately unmetered: artifact bytes are session setup, charged
    // to the handshake like the 8-byte hello, never to a protocol phase.
    send_frame(FrameType::kArtifact, phase_, bytes);
}

void TcpTransport::send_busy() {
    require(is_open(), "tcp send: transport is closed");
    // Unmetered like the handshake: the session it would have belonged
    // to never starts, so there is no protocol phase to charge.
    send_frame(FrameType::kBusy, phase_, {});
}

std::vector<std::uint8_t> TcpTransport::recv_artifact_bytes() {
    std::vector<std::uint8_t> payload;
    (void)recv_frame_into(payload, FrameType::kArtifact);
    return payload;
}

void TcpTransport::send_keys_bytes(std::span<const std::uint8_t> bytes) {
    require(is_open(), "tcp send: transport is closed");
    send_frame(FrameType::kKeys, Phase::kPreprocess, bytes);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.record(party_, Phase::kPreprocess, bytes.size());
}

std::vector<std::uint8_t> TcpTransport::recv_keys_bytes() {
    std::vector<std::uint8_t> payload;
    const auto t0 = std::chrono::steady_clock::now();
    const Phase phase = recv_frame_into(payload, FrameType::kKeys);
    const double waited = seconds_since(t0);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.record(1 - party_, phase, payload.size());
    waits_.add_recv(phase, waited);
    return payload;
}

ChannelStats TcpTransport::stats() const {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
}

WaitStats TcpTransport::wait_stats() const {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    return waits_;
}

// --------------------------------------------------------- pipelined sends ---

void TcpTransport::set_pipelined_sends(bool enabled) {
    if (enabled == pipelined_) return;
    if (enabled) {
        require(is_open(), "set_pipelined_sends: transport is closed");
        writer_stop_ = false;
        writer_error_ = nullptr;
        writer_ = std::thread([this] { writer_loop(); });
        pipelined_ = true;
    } else {
        stop_writer(/*swallow_errors=*/false);
    }
}

void TcpTransport::flush_sends() {
    if (!pipelined_) return;
    std::unique_lock<std::mutex> lock(send_mutex_);
    double waited = 0.0;
    if (!send_queue_.empty() || writer_busy_) {
        const auto t0 = std::chrono::steady_clock::now();
        drain_cv_.wait(lock,
                       [&] { return writer_error_ || (send_queue_.empty() && !writer_busy_); });
        waited = seconds_since(t0);
    }
    if (writer_error_) std::rethrow_exception(writer_error_);
    lock.unlock();
    const std::lock_guard<std::mutex> slock(stats_mutex_);
    waits_.add_send(phase_, waited);
}

void TcpTransport::enqueue_frame(std::vector<std::uint8_t> frame, Phase phase) {
    std::unique_lock<std::mutex> lock(send_mutex_);
    if (writer_error_) std::rethrow_exception(writer_error_);
    double waited = 0.0;
    if (!send_queue_.empty() && queued_send_bytes_ + frame.size() > kMaxQueuedSendBytes) {
        const auto t0 = std::chrono::steady_clock::now();
        drain_cv_.wait(lock, [&] {
            return writer_error_ || send_queue_.empty() ||
                   queued_send_bytes_ + frame.size() <= kMaxQueuedSendBytes;
        });
        waited = seconds_since(t0);
        if (writer_error_) std::rethrow_exception(writer_error_);
    }
    queued_send_bytes_ += frame.size();
    send_queue_.push_back(std::move(frame));
    lock.unlock();
    send_cv_.notify_one();
    if (waited > 0.0) {
        const std::lock_guard<std::mutex> slock(stats_mutex_);
        waits_.add_send(phase, waited);
    }
}

void TcpTransport::writer_loop() {
    std::unique_lock<std::mutex> lock(send_mutex_);
    for (;;) {
        send_cv_.wait(lock, [&] { return writer_stop_ || !send_queue_.empty(); });
        if (send_queue_.empty()) {
            if (writer_stop_) return;  // graceful stop drains first
            continue;
        }
        std::vector<std::uint8_t> frame = std::move(send_queue_.front());
        send_queue_.pop_front();
        writer_busy_ = true;  // byte count stays up until the write lands
        lock.unlock();
        try {
            write_all(fd_, frame.data(), frame.size());
        } catch (...) {
            lock.lock();
            writer_error_ = std::current_exception();
            writer_busy_ = false;
            send_queue_.clear();
            queued_send_bytes_ = 0;
            drain_cv_.notify_all();
            return;
        }
        lock.lock();
        queued_send_bytes_ -= frame.size();
        writer_busy_ = false;
        drain_cv_.notify_all();
    }
}

void TcpTransport::stop_writer(bool swallow_errors) {
    pipelined_ = false;
    if (!writer_.joinable()) return;
    {
        const std::lock_guard<std::mutex> lock(send_mutex_);
        writer_stop_ = true;  // the writer drains the queue, then exits
    }
    send_cv_.notify_all();
    writer_.join();
    if (!swallow_errors) {
        const std::lock_guard<std::mutex> lock(send_mutex_);
        if (writer_error_) std::rethrow_exception(writer_error_);
    }
}

void TcpTransport::rethrow_writer_error() {
    if (!pipelined_) return;
    const std::lock_guard<std::mutex> lock(send_mutex_);
    if (writer_error_) std::rethrow_exception(writer_error_);
}

void TcpTransport::apply_recv_timeout(int milliseconds) {
    timeval tv{};
    tv.tv_sec = milliseconds / 1000;
    tv.tv_usec = (milliseconds % 1000) * 1000;
    require(::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0,
            "set_recv_timeout failed");
}

void TcpTransport::set_recv_timeout(int milliseconds) {
    require(is_open(), "set_recv_timeout: transport is closed");
    require(milliseconds >= 0, "set_recv_timeout: negative deadline");
    steady_recv_timeout_ms_ = milliseconds;
    // While a handshake deadline is armed the (stricter) bootstrap value
    // stays on the socket; the steady value takes over at promotion.
    if (!handshake_deadline_armed_) apply_recv_timeout(milliseconds);
}

void TcpTransport::arm_handshake_deadline(int milliseconds) {
    require(is_open(), "arm_handshake_deadline: transport is closed");
    require(milliseconds > 0, "arm_handshake_deadline: deadline must be positive");
    handshake_deadline_armed_ = true;
    apply_recv_timeout(milliseconds);
}

void TcpTransport::abort_connection() noexcept {
    // No goodbye frame, no drain: the peer's next read sees a raw EOF
    // (or a reset if it had data in flight) — indistinguishable from a
    // crashed process, which is the point. A writer stuck in send(2) is
    // unblocked by the shutdown BEFORE the fd closes (closing under an
    // in-flight write races fd reuse); its queue is dropped, not drained
    // — a hard abort sends nothing more.
    if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
    if (writer_.joinable()) {
        {
            const std::lock_guard<std::mutex> lock(send_mutex_);
            writer_stop_ = true;
            send_queue_.clear();
            queued_send_bytes_ = 0;
        }
        send_cv_.notify_all();
        writer_.join();
    }
    pipelined_ = false;
    close_quietly(fd_);
}

void TcpTransport::close() noexcept {
    // Drain the pipelined queue (the goodbye must FOLLOW every data
    // frame) and retire the writer before the synchronous goodbye below;
    // a writer that already failed has nothing left to deliver.
    stop_writer(/*swallow_errors=*/true);
    if (fd_ < 0) return;
    // Best-effort goodbye so the peer sees a clean end-of-session, then
    // half-close and drain: waiting for the peer's EOF (or goodbye)
    // avoids the RST-on-close race that can eat our last frame. The
    // drain is bounded in bytes as well as per-read time so a hostile
    // peer streaming garbage cannot pin the closing thread.
    try {
        send_frame(FrameType::kShutdown, phase_, {});
    } catch (...) {  // peer already gone; nothing to announce
    }
    (void)::shutdown(fd_, SHUT_WR);
    timeval tv{};
    tv.tv_sec = 1;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::uint8_t sink[4096];
    std::size_t drained = 0;
    constexpr std::size_t kMaxDrainBytes = 1U << 20;
    for (;;) {
        const ssize_t n = ::recv(fd_, sink, sizeof(sink), 0);
        if (n <= 0) break;
        drained += static_cast<std::size_t>(n);
        if (drained >= kMaxDrainBytes) break;
    }
    close_quietly(fd_);
}

void TcpTransport::close_now() noexcept {
    stop_writer(/*swallow_errors=*/true);
    if (fd_ < 0) return;
    try {
        send_frame(FrameType::kShutdown, phase_, {});
    } catch (...) {  // peer already gone; nothing to announce
    }
    (void)::shutdown(fd_, SHUT_WR);
    close_quietly(fd_);
}

// ------------------------------------------------------------- TcpListener ---

TcpListener::TcpListener(std::uint16_t port, const std::string& host) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) fail_errno("tcp listen: socket");
    const int one = 1;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = make_addr(host, port);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        close_quietly(fd_);
        fail_errno("tcp listen: bind");
    }
    if (::listen(fd_, /*backlog=*/16) != 0) {
        close_quietly(fd_);
        fail_errno("tcp listen: listen");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    require(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
            "tcp listen: getsockname failed");
    port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<TcpTransport> TcpListener::accept(int timeout_ms) {
    auto transport = try_accept(timeout_ms);
    if (!transport) fail("tcp accept: timed out waiting for a client");
    return transport;
}

std::unique_ptr<TcpTransport> TcpListener::try_accept(int timeout_ms) {
    require(fd_ >= 0, "accept: listener is closed");
    pollfd pfd{fd_, POLLIN, 0};
    for (;;) {
        const int r = ::poll(&pfd, 1, timeout_ms);
        if (r < 0) {
            if (errno == EINTR) continue;
            fail_errno("tcp accept: poll");
        }
        if (r == 0) return nullptr;
        break;
    }
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) fail_errno("tcp accept");
    return std::make_unique<TcpTransport>(client, /*party_id=*/0);
}

void TcpListener::close() noexcept { close_quietly(fd_); }

// ----------------------------------------------------------------- connect ---

namespace {

/// One non-blocking connect attempt bounded by `budget_ms`, so a host
/// that silently drops SYNs cannot stall past the caller's deadline the
/// way a blocking ::connect (kernel SYN-retry cycle, minutes) would.
/// Returns the connected fd, or -1 with errno set.
int try_connect_once(const sockaddr_in& addr, int budget_ms) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail_errno("tcp connect: socket");
    (void)::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    int err = 0;
    if (rc != 0) {
        if (errno != EINPROGRESS) {
            err = errno;
            ::close(fd);
            errno = err;
            return -1;
        }
        pollfd pfd{fd, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, budget_ms);
        socklen_t len = sizeof(err);
        if (ready <= 0 ||
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
            if (ready == 0) err = ETIMEDOUT;
            if (err == 0) err = errno;
            ::close(fd);
            errno = err;
            return -1;
        }
    }
    // Back to blocking mode for the transport's send/recv loops.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    (void)::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    return fd;
}

}  // namespace

std::unique_ptr<TcpTransport> connect(const std::string& host, std::uint16_t port,
                                      int timeout_ms) {
    const sockaddr_in addr = make_addr(host, port);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
        const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        const int budget_ms = std::max(1, static_cast<int>(remaining.count()));
        const int fd = try_connect_once(addr, budget_ms);
        // The handshake inherits the caller's remaining deadline: the
        // server's hello only arrives once it accept()s us, which can be
        // a full serving cycle away on a busy sequential server.
        if (fd >= 0) return std::make_unique<TcpTransport>(fd, /*party_id=*/1, budget_ms);
        const int err = errno;
        // The server may simply not be up yet; keep knocking until the
        // deadline for the errors that mean "nobody listening (yet)".
        const bool retryable = err == ECONNREFUSED || err == ETIMEDOUT || err == EINTR ||
                               err == ECONNRESET || err == EAGAIN;
        if (!retryable || std::chrono::steady_clock::now() >= deadline) {
            // Typed so a retry policy can treat it like BUSY: no secret-
            // dependent message can have been sent over a connection that
            // never existed, so retrying is unconditionally safe.
            throw ConnectFailed("tcp connect to " + host + ":" + std::to_string(port) + ": " +
                                std::strerror(err));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

}  // namespace c2pi::net
