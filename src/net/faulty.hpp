#pragma once

/// \file faulty.hpp
/// Deterministic fault injection over any `Transport`.
///
/// `FaultyTransport` is a decorator in the mold of the parity harness's
/// RecordingTransport: it forwards every call to an inner transport, but
/// consults a `FaultSchedule` first and — at scheduled operation indices
/// — delays, stalls, truncates, corrupts, or kills the connection. The
/// schedule is plain data (kind, op filter, index, parameter), so every
/// chaos run is replayable bit-for-bit: the same schedule against the
/// same protocol trace fires the same fault at the same frame.
///
/// The injection point is *above* the framing layer, which fixes what
/// each fault looks like to the peer:
///   - kDisconnect  -> inner abort_connection(): raw EOF / reset, the
///                     shape of a crashed process (PeerClosed).
///   - kTruncate    -> a prefix of the payload sent as a *valid* frame:
///                     transport-clean, rejected by the codec or a size
///                     check above it (protocol violation).
///   - kCorrupt     -> one payload byte flipped: under a semi-honest
///                     protocol this may be *undetectable* (random ring
///                     data decodes fine) — chaos tests assert
///                     containment, not a specific failure class.
///   - kStall       -> a long sleep before the op: the peer's recv
///                     deadline fires (RecvTimeout).
///   - kDelay       -> a short sleep: latency jitter, everything still
///                     succeeds.
///
/// The op counter covers every transport call (protocol sends/recvs,
/// artifact and key shipment) in program order, so a schedule addresses
/// "the 7th thing this party does on the wire" regardless of which
/// method that turns out to be. Run a schedule-free pass first and read
/// `ops_seen()` to size a sweep.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "net/transport.hpp"

namespace c2pi::net {

enum class FaultKind : std::uint8_t {
    kDelay = 0,       ///< sleep `param_ms`, then proceed normally
    kStall = 1,       ///< same, but sized to outlive the peer's deadline
    kDisconnect = 2,  ///< abort the connection; param = payload bytes to leak first
    kTruncate = 3,    ///< send only the first `param` payload bytes (valid frame)
    kCorrupt = 4,     ///< XOR-flip payload byte `param % size`
};

/// Which transport operations a fault may fire on.
enum class FaultOp : std::uint8_t { kSend = 0, kRecv = 1, kAny = 2 };

/// One scheduled fault: fires when the transport's op counter reaches
/// `at_op` (0-based, counting every send/recv/artifact/keys call) and
/// the op's direction matches `op`.
struct Fault {
    FaultKind kind = FaultKind::kDelay;
    FaultOp op = FaultOp::kAny;
    std::size_t at_op = 0;
    std::uint32_t param = 0;  ///< ms for delay/stall; bytes for disconnect/truncate; index for corrupt
};

/// Raised on the *injecting* side when a scheduled disconnect fires, so
/// its own session loop stops instead of talking into a dead socket.
/// Derives Error, not PeerClosed: the injector is the cause, not the
/// victim.
struct FaultInjected : Error {
    using Error::Error;
};

/// A replayable list of faults. Plain data; order does not matter
/// (matching is by op index). `from_seed` derives a schedule
/// deterministically so chaos sweeps can be reproduced from one integer.
class FaultSchedule {
public:
    FaultSchedule() = default;
    explicit FaultSchedule(std::vector<Fault> faults) : faults_(std::move(faults)) {}

    FaultSchedule& add(Fault f) {
        faults_.push_back(f);
        return *this;
    }

    [[nodiscard]] const std::vector<Fault>& faults() const { return faults_; }
    [[nodiscard]] bool empty() const { return faults_.empty(); }

    /// First fault scheduled for (op index, direction), if any.
    [[nodiscard]] std::optional<Fault> match(std::size_t op_index, FaultOp direction) const {
        for (const Fault& f : faults_) {
            if (f.at_op != op_index) continue;
            if (f.op == FaultOp::kAny || f.op == direction) return f;
        }
        return std::nullopt;
    }

    /// One seeded fault somewhere in `[0, total_ops)`: kind and position
    /// are mixed out of `seed` (splitmix64), so a sweep over seeds covers
    /// the kind x position grid without hand-enumerating it and any
    /// failing seed replays exactly.
    static FaultSchedule from_seed(std::uint64_t seed, std::size_t total_ops) {
        require(total_ops > 0, "fault schedule needs at least one op to target");
        auto mix = [](std::uint64_t& s) {
            s += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = s;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            return z ^ (z >> 31);
        };
        std::uint64_t s = seed;
        Fault f;
        // Disconnect / truncate / corrupt only — delay and stall are
        // timing faults with no interesting per-position behavior.
        constexpr FaultKind kKinds[] = {FaultKind::kDisconnect, FaultKind::kTruncate,
                                        FaultKind::kCorrupt};
        f.kind = kKinds[mix(s) % 3];
        f.at_op = static_cast<std::size_t>(mix(s) % total_ops);
        f.param = static_cast<std::uint32_t>(mix(s) % 8);
        return FaultSchedule({f});
    }

private:
    std::vector<Fault> faults_;
};

/// Fault-injecting decorator around any Transport. Non-owning: the
/// inner transport must outlive it. Phase is forwarded before every
/// send (set_phase is non-virtual, per the RecordingTransport idiom),
/// so stats attribution through the decorator is unchanged.
class FaultyTransport final : public Transport {
public:
    FaultyTransport(Transport& inner, FaultSchedule schedule)
        : Transport(inner.party_id()), inner_(&inner), schedule_(std::move(schedule)) {}

    /// Ops executed so far — run once with an empty schedule to learn
    /// how many ops a protocol trace has, then sweep `at_op` over it.
    [[nodiscard]] std::size_t ops_seen() const { return next_op_; }

    void send_bytes(std::span<const std::uint8_t> data) override {
        inner_->set_phase(phase_);
        const auto fault = take(FaultOp::kSend);
        if (!fault) {
            inner_->send_bytes(data);
            return;
        }
        send_with_fault(*fault, data,
                        [&](std::span<const std::uint8_t> d) { inner_->send_bytes(d); });
    }

    [[nodiscard]] std::vector<std::uint8_t> recv_bytes() override {
        std::vector<std::uint8_t> out;
        recv_bytes_into(out);
        return out;
    }

    void recv_bytes_into(std::vector<std::uint8_t>& out) override {
        const auto fault = take(FaultOp::kRecv);
        if (fault) apply_pre_recv(*fault);
        inner_->recv_bytes_into(out);
        if (fault && fault->kind == FaultKind::kCorrupt && !out.empty())
            out[fault->param % out.size()] ^= 0x80;
    }

    [[nodiscard]] ChannelStats stats() const override { return inner_->stats(); }
    [[nodiscard]] WaitStats wait_stats() const override { return inner_->wait_stats(); }

    /// Pipelined sends pass straight through: faults are applied on the
    /// protocol thread at enqueue time (above the inner transport's
    /// queue), so a schedule fires at the same op index in both modes.
    void set_pipelined_sends(bool enabled) override { inner_->set_pipelined_sends(enabled); }
    void flush_sends() override { inner_->flush_sends(); }

    void abort_connection() noexcept override { inner_->abort_connection(); }

    void send_artifact_bytes(std::span<const std::uint8_t> bytes) override {
        inner_->set_phase(phase_);
        const auto fault = take(FaultOp::kSend);
        if (!fault) {
            inner_->send_artifact_bytes(bytes);
            return;
        }
        send_with_fault(*fault, bytes,
                        [&](std::span<const std::uint8_t> d) { inner_->send_artifact_bytes(d); });
    }
    [[nodiscard]] std::vector<std::uint8_t> recv_artifact_bytes() override {
        const auto fault = take(FaultOp::kRecv);
        if (fault) apply_pre_recv(*fault);
        auto out = inner_->recv_artifact_bytes();
        if (fault && fault->kind == FaultKind::kCorrupt && !out.empty())
            out[fault->param % out.size()] ^= 0x80;
        return out;
    }

    void send_keys_bytes(std::span<const std::uint8_t> bytes) override {
        inner_->set_phase(phase_);
        const auto fault = take(FaultOp::kSend);
        if (!fault) {
            inner_->send_keys_bytes(bytes);
            return;
        }
        send_with_fault(*fault, bytes,
                        [&](std::span<const std::uint8_t> d) { inner_->send_keys_bytes(d); });
    }
    [[nodiscard]] std::vector<std::uint8_t> recv_keys_bytes() override {
        const auto fault = take(FaultOp::kRecv);
        if (fault) apply_pre_recv(*fault);
        auto out = inner_->recv_keys_bytes();
        if (fault && fault->kind == FaultKind::kCorrupt && !out.empty())
            out[fault->param % out.size()] ^= 0x80;
        return out;
    }

private:
    [[nodiscard]] std::optional<Fault> take(FaultOp direction) {
        return schedule_.match(next_op_++, direction);
    }

    static void sleep_ms(std::uint32_t ms) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }

    [[noreturn]] void disconnect_now() {
        inner_->abort_connection();
        throw FaultInjected("fault injection: scheduled disconnect fired");
    }

    void apply_pre_recv(const Fault& fault) {
        switch (fault.kind) {
            case FaultKind::kDelay:
            case FaultKind::kStall:
                sleep_ms(fault.param);
                return;
            case FaultKind::kDisconnect:
                disconnect_now();
            case FaultKind::kTruncate:  // truncation is a send-side shape; no-op on recv
            case FaultKind::kCorrupt:   // applied after the payload arrives
                return;
        }
    }

    template <typename SendFn>
    void send_with_fault(const Fault& fault, std::span<const std::uint8_t> data, SendFn&& send) {
        switch (fault.kind) {
            case FaultKind::kDelay:
            case FaultKind::kStall:
                sleep_ms(fault.param);
                send(data);
                return;
            case FaultKind::kDisconnect:
                // Leak the first `param` bytes as a (short, valid) frame
                // before dying, so "crashed mid-send" is reachable too.
                if (fault.param > 0 && !data.empty())
                    send(data.first(std::min<std::size_t>(fault.param, data.size())));
                disconnect_now();
            case FaultKind::kTruncate:
                send(data.first(std::min<std::size_t>(fault.param, data.size())));
                return;
            case FaultKind::kCorrupt: {
                scratch_.assign(data.begin(), data.end());
                if (!scratch_.empty()) scratch_[fault.param % scratch_.size()] ^= 0x80;
                send(scratch_);
                return;
            }
        }
    }

    Transport* inner_;
    FaultSchedule schedule_;
    std::size_t next_op_ = 0;
    std::vector<std::uint8_t> scratch_;
};

}  // namespace c2pi::net
