#pragma once

/// \file channel.hpp
/// In-process two-party transport with exact traffic accounting.
///
/// The two protocol parties run on two threads connected by a pair of
/// blocking byte queues; `InProcTransport` adapts one endpoint to the
/// `Transport` seam (transport.hpp). Every send is recorded in the
/// channel's shared ChannelStats. The socket-backed sibling is
/// `TcpTransport` (tcp.hpp); both keep bit-identical accounting.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "net/transport.hpp"

namespace c2pi::net {

/// One blocking FIFO direction of the duplex channel. Messages carry a
/// kind tag mirroring TcpTransport's frame types, so an artifact or key
/// batch met by a protocol recv (or vice versa) raises the same typed
/// error in-process that it would over a socket instead of silently
/// feeding setup bytes into the protocol.
class ByteQueue {
public:
    enum class MsgKind {
        kData = 0,      ///< ordinary protocol message
        kArtifact = 1,  ///< session-bootstrap artifact, not protocol data
        kKeys = 2,      ///< preprocessing key batch (Phase::kPreprocess)
    };

    struct Msg {
        std::vector<std::uint8_t> bytes;
        MsgKind kind = MsgKind::kData;
    };

    void push(Msg msg) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            queue_.push_back(std::move(msg));
        }
        cv_.notify_one();
    }

    /// FIN-like abrupt end: messages already queued still deliver, but a
    /// pop() finding the queue empty raises PeerClosed instead of
    /// blocking forever — the in-process analogue of reading EOF with no
    /// shutdown frame (fault injection's disconnect path).
    void abort() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            aborted_ = true;
        }
        cv_.notify_all();
    }

    [[nodiscard]] Msg pop() {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return !queue_.empty() || aborted_; });
        if (queue_.empty())
            throw PeerClosed("in-proc recv: peer aborted the connection mid-protocol");
        auto msg = std::move(queue_.front());
        queue_.pop_front();
        return msg;
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Msg> queue_;
    bool aborted_ = false;
};

/// Shared state of an in-process two-party connection.
class DuplexChannel {
public:
    ByteQueue& queue_to(int receiver) { return queues_[receiver]; }

    void record_send(int sender, Phase phase, std::size_t bytes) {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.record(sender, phase, bytes);
    }

    [[nodiscard]] ChannelStats stats() const {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        return stats_;
    }

    void reset_stats() {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_ = ChannelStats{};
    }

private:
    ByteQueue queues_[2];
    mutable std::mutex stats_mutex_;
    ChannelStats stats_;
};

/// A party's in-process endpoint of the duplex channel.
class InProcTransport final : public Transport {
public:
    InProcTransport(DuplexChannel& channel, int party_id)
        : Transport(party_id), channel_(&channel) {}

    void send_bytes(std::span<const std::uint8_t> data) override {
        channel_->record_send(party_, phase_, data.size());
        channel_->queue_to(1 - party_).push(
            {std::vector<std::uint8_t>(data.begin(), data.end()), ByteQueue::MsgKind::kData});
    }

    [[nodiscard]] std::vector<std::uint8_t> recv_bytes() override {
        auto msg = timed_pop(phase_);
        require(msg.kind == ByteQueue::MsgKind::kData,
                "in-proc recv: unexpected bootstrap/keys message mid-protocol");
        return std::move(msg.bytes);
    }

    [[nodiscard]] ChannelStats stats() const override { return channel_->stats(); }

    /// Recv wait is the queue-pop block; a push never blocks, so the
    /// in-process send path is already "pipelined" and set_pipelined_
    /// sends / flush_sends stay the base-class no-ops. Pop waits are
    /// attributed to the RECEIVER's current phase (the two parties move
    /// phases in lock-step, so this matches the sender's tag).
    [[nodiscard]] WaitStats wait_stats() const override {
        const std::lock_guard<std::mutex> lock(wait_mutex_);
        return waits_;
    }

    /// Abrupt disconnect: both directions die — the peer's next empty-
    /// queue pop raises PeerClosed, and so does ours (nothing more can
    /// ever arrive once the counterparty is "gone").
    void abort_connection() noexcept override {
        channel_->queue_to(1 - party_).abort();
        channel_->queue_to(party_).abort();
    }

    /// Session bootstrap (artifact shipping): enqueued like any message
    /// but NOT metered — setup bytes are transport overhead, never
    /// protocol traffic (mirrors TcpTransport's unmetered kArtifact
    /// frame).
    void send_artifact_bytes(std::span<const std::uint8_t> bytes) override {
        channel_->queue_to(1 - party_).push(
            {std::vector<std::uint8_t>(bytes.begin(), bytes.end()), ByteQueue::MsgKind::kArtifact});
    }
    [[nodiscard]] std::vector<std::uint8_t> recv_artifact_bytes() override {
        auto msg = channel_->queue_to(party_).pop();
        require(msg.kind == ByteQueue::MsgKind::kArtifact,
                "in-proc recv: expected the session's artifact message");
        return std::move(msg.bytes);
    }

    /// Preprocessing key batches: metered, but always under
    /// Phase::kPreprocess regardless of the transport's current phase
    /// (mirrors TcpTransport's kKeys frame).
    void send_keys_bytes(std::span<const std::uint8_t> bytes) override {
        channel_->record_send(party_, Phase::kPreprocess, bytes.size());
        channel_->queue_to(1 - party_).push(
            {std::vector<std::uint8_t>(bytes.begin(), bytes.end()), ByteQueue::MsgKind::kKeys});
    }
    [[nodiscard]] std::vector<std::uint8_t> recv_keys_bytes() override {
        auto msg = timed_pop(Phase::kPreprocess);
        require(msg.kind == ByteQueue::MsgKind::kKeys,
                "in-proc recv: expected a preprocessing key batch");
        return std::move(msg.bytes);
    }

private:
    [[nodiscard]] ByteQueue::Msg timed_pop(Phase phase) {
        const auto t0 = std::chrono::steady_clock::now();
        auto msg = channel_->queue_to(party_).pop();
        const double waited =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        const std::lock_guard<std::mutex> lock(wait_mutex_);
        waits_.add_recv(phase, waited);
        return msg;
    }

    DuplexChannel* channel_;
    mutable std::mutex wait_mutex_;
    WaitStats waits_;
};

}  // namespace c2pi::net
