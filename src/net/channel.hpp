#pragma once

/// \file channel.hpp
/// In-process two-party transport with exact traffic accounting.
///
/// The two protocol parties run on two threads connected by a pair of
/// blocking byte queues. Every send is recorded in shared ChannelStats:
/// bytes per phase (offline/online) and the number of message *flights*
/// (maximal runs of messages in one direction), which is what round-trip
/// latency scales with. The deterministic LAN/WAN latency model in
/// cost_model.hpp turns (measured compute, bytes, flights) into the
/// latencies reported in Table II (DESIGN.md §4, substitution 5).

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace c2pi::net {

/// Protocol phase tag for traffic accounting (Delphi separates an input-
/// independent offline phase; Cheetah is online-only).
enum class Phase { kOffline = 0, kOnline = 1 };
inline constexpr int kNumPhases = 2;

/// Traffic counters shared by both directions of a duplex channel.
/// Thread-safe: all mutation happens under the owning queue's mutex.
struct ChannelStats {
    std::uint64_t bytes[kNumPhases][2] = {};     ///< [phase][sender]
    std::uint64_t messages[kNumPhases][2] = {};  ///< [phase][sender]
    std::uint64_t flights[kNumPhases] = {};      ///< direction changes per phase
    int last_sender = -1;                        ///< for flight counting

    [[nodiscard]] std::uint64_t total_bytes() const {
        return bytes[0][0] + bytes[0][1] + bytes[1][0] + bytes[1][1];
    }
    [[nodiscard]] std::uint64_t phase_bytes(Phase p) const {
        return bytes[static_cast<int>(p)][0] + bytes[static_cast<int>(p)][1];
    }
    [[nodiscard]] std::uint64_t total_flights() const { return flights[0] + flights[1]; }
};

/// One blocking FIFO direction of the duplex channel.
class ByteQueue {
public:
    void push(std::vector<std::uint8_t> msg) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            queue_.push_back(std::move(msg));
        }
        cv_.notify_one();
    }

    [[nodiscard]] std::vector<std::uint8_t> pop() {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return !queue_.empty(); });
        auto msg = std::move(queue_.front());
        queue_.pop_front();
        return msg;
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::vector<std::uint8_t>> queue_;
};

/// Shared state of a two-party connection.
class DuplexChannel {
public:
    ByteQueue& queue_to(int receiver) { return queues_[receiver]; }

    void record_send(int sender, Phase phase, std::size_t bytes) {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        const int p = static_cast<int>(phase);
        stats_.bytes[p][sender] += bytes;
        stats_.messages[p][sender] += 1;
        if (stats_.last_sender != sender) {
            stats_.flights[p] += 1;
            stats_.last_sender = sender;
        }
    }

    [[nodiscard]] ChannelStats stats() const {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        return stats_;
    }

    void reset_stats() {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_ = ChannelStats{};
    }

private:
    ByteQueue queues_[2];
    mutable std::mutex stats_mutex_;
    ChannelStats stats_;
};

/// A party's endpoint of the duplex channel. party_id is 0 (server) or 1
/// (client) by convention throughout the repo.
class Transport {
public:
    Transport(DuplexChannel& channel, int party_id)
        : channel_(&channel), party_(party_id) {
        require(party_id == 0 || party_id == 1, "party_id must be 0 or 1");
    }

    [[nodiscard]] int party_id() const { return party_; }

    void set_phase(Phase phase) { phase_ = phase; }
    [[nodiscard]] Phase phase() const { return phase_; }

    void send_bytes(std::span<const std::uint8_t> data) {
        channel_->record_send(party_, phase_, data.size());
        channel_->queue_to(1 - party_).push(std::vector<std::uint8_t>(data.begin(), data.end()));
    }

    [[nodiscard]] std::vector<std::uint8_t> recv_bytes() {
        return channel_->queue_to(party_).pop();
    }

    // -- typed helpers -------------------------------------------------------
    void send_u64s(std::span<const std::uint64_t> values) {
        send_bytes(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(values.data()), values.size() * 8));
    }

    [[nodiscard]] std::vector<std::uint64_t> recv_u64s() {
        const auto raw = recv_bytes();
        require(raw.size() % 8 == 0, "recv_u64s: payload not a multiple of 8 bytes");
        std::vector<std::uint64_t> values(raw.size() / 8);
        std::memcpy(values.data(), raw.data(), raw.size());
        return values;
    }

    void send_u64(std::uint64_t v) { send_u64s(std::span<const std::uint64_t>(&v, 1)); }

    [[nodiscard]] std::uint64_t recv_u64() {
        const auto v = recv_u64s();
        require(v.size() == 1, "expected a single u64");
        return v[0];
    }

    [[nodiscard]] ChannelStats stats() const { return channel_->stats(); }

private:
    DuplexChannel* channel_;
    int party_;
    Phase phase_ = Phase::kOnline;
};

}  // namespace c2pi::net
