#pragma once

/// \file block.hpp
/// 128-bit block — wire labels in garbled circuits, OT messages, PRG seeds.

#include <cstdint>
#include <cstring>
#include <span>

namespace c2pi::crypto {

struct Block128 {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    friend Block128 operator^(const Block128& a, const Block128& b) {
        return {a.lo ^ b.lo, a.hi ^ b.hi};
    }
    Block128& operator^=(const Block128& b) {
        lo ^= b.lo;
        hi ^= b.hi;
        return *this;
    }
    friend bool operator==(const Block128&, const Block128&) = default;

    /// Point-and-permute colour bit (lsb of the label).
    [[nodiscard]] bool colour() const { return (lo & 1ULL) != 0; }

    [[nodiscard]] bool is_zero() const { return lo == 0 && hi == 0; }

    void to_bytes(std::uint8_t out[16]) const {
        std::memcpy(out, &lo, 8);
        std::memcpy(out + 8, &hi, 8);
    }
    [[nodiscard]] static Block128 from_bytes(const std::uint8_t in[16]) {
        Block128 b;
        std::memcpy(&b.lo, in, 8);
        std::memcpy(&b.hi, in + 8, 8);
        return b;
    }
};

static_assert(sizeof(Block128) == 16);

}  // namespace c2pi::crypto
