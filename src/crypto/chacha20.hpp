#pragma once

/// \file chacha20.hpp
/// ChaCha20 (RFC 8439 block function) in counter mode, used as the
/// cryptographic PRG for OT extension, garbling randomness and share
/// sampling inside protocols. Deterministic given (key, nonce).

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/block.hpp"

namespace c2pi::crypto {

/// Stream generator over the ChaCha20 block function.
class ChaCha20Prg {
public:
    /// Key is 32 bytes; a Block128 seed is expanded to a key by repetition.
    explicit ChaCha20Prg(const Block128& seed, std::uint64_t nonce = 0);
    ChaCha20Prg(std::span<const std::uint8_t> key32, std::uint64_t nonce);

    void fill_bytes(std::span<std::uint8_t> out);
    [[nodiscard]] std::uint64_t next_u64();
    [[nodiscard]] Block128 next_block();
    /// n pseudo-random bits packed one per byte (0/1).
    [[nodiscard]] std::vector<std::uint8_t> next_bits(std::size_t n);

private:
    void generate(std::uint8_t* dst, std::size_t nblocks);
    void refill();

    std::uint32_t state_[16] = {};
    // Keystream cache, refilled through the batched (SIMD-dispatched)
    // block kernel. The refill size doubles 1 -> 2 -> 4 -> 8 blocks so a
    // short-lived PRG (e.g. one DCF GGM node = one block) computes no
    // more than before, while long streams amortize into full-width
    // batches. The byte stream itself is pure counter mode and identical
    // regardless of batching.
    static constexpr std::size_t kMaxRefillBlocks = 8;
    std::uint8_t buffer_[kMaxRefillBlocks * 64] = {};
    std::size_t buffer_len_ = 0;
    std::size_t buffer_pos_ = 0;  // == buffer_len_: empty
    std::size_t refill_blocks_ = 1;
};

}  // namespace c2pi::crypto
