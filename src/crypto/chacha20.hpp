#pragma once

/// \file chacha20.hpp
/// ChaCha20 (RFC 8439 block function) in counter mode, used as the
/// cryptographic PRG for OT extension, garbling randomness and share
/// sampling inside protocols. Deterministic given (key, nonce).

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/block.hpp"

namespace c2pi::crypto {

/// Stream generator over the ChaCha20 block function.
class ChaCha20Prg {
public:
    /// Key is 32 bytes; a Block128 seed is expanded to a key by repetition.
    explicit ChaCha20Prg(const Block128& seed, std::uint64_t nonce = 0);
    ChaCha20Prg(std::span<const std::uint8_t> key32, std::uint64_t nonce);

    void fill_bytes(std::span<std::uint8_t> out);
    [[nodiscard]] std::uint64_t next_u64();
    [[nodiscard]] Block128 next_block();
    /// n pseudo-random bits packed one per byte (0/1).
    [[nodiscard]] std::vector<std::uint8_t> next_bits(std::size_t n);

private:
    void refill();

    std::uint32_t state_[16] = {};
    std::uint8_t buffer_[64] = {};
    std::size_t buffer_pos_ = 64;  // empty
};

}  // namespace c2pi::crypto
