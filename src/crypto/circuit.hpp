#pragma once

/// \file circuit.hpp
/// Boolean circuit IR + builder for the garbled-circuit protocols.
/// XOR and NOT are free (free-XOR garbling); only AND gates cost table
/// entries. Word helpers build the 64-bit ripple adders / comparators /
/// muxes that Delphi-style secure ReLU and MaxPool need.

#include <cstdint>
#include <vector>

#include "core/error.hpp"

namespace c2pi::crypto {

enum class GateKind : std::uint8_t { kXor, kAnd, kNot };

struct Gate {
    GateKind kind;
    std::int32_t in0 = -1;
    std::int32_t in1 = -1;  ///< unused for NOT
    std::int32_t out = -1;
};

/// Immutable gate-list circuit. Wires are numbered: first the garbler
/// inputs, then the evaluator inputs, then internal wires in topological
/// order.
struct Circuit {
    std::int32_t num_garbler_inputs = 0;
    std::int32_t num_evaluator_inputs = 0;
    std::int32_t num_wires = 0;
    std::vector<Gate> gates;
    std::vector<std::int32_t> outputs;

    [[nodiscard]] std::size_t and_count() const {
        std::size_t n = 0;
        for (const auto& g : gates) n += (g.kind == GateKind::kAnd);
        return n;
    }
};

/// A little-endian group of wires representing an unsigned integer.
using Word = std::vector<std::int32_t>;

class CircuitBuilder {
public:
    /// Inputs must be declared before any gate is added.
    [[nodiscard]] std::int32_t add_garbler_input();
    [[nodiscard]] std::int32_t add_evaluator_input();
    [[nodiscard]] Word add_garbler_word(int bits);
    [[nodiscard]] Word add_evaluator_word(int bits);

    [[nodiscard]] std::int32_t make_xor(std::int32_t a, std::int32_t b);
    [[nodiscard]] std::int32_t make_and(std::int32_t a, std::int32_t b);
    [[nodiscard]] std::int32_t make_not(std::int32_t a);

    void mark_output(std::int32_t wire);
    void mark_output_word(const Word& w);

    // -- word-level helpers (little endian, modular arithmetic) -------------
    /// sum = (a + b) mod 2^bits ; 1 AND per bit except the last.
    [[nodiscard]] Word ripple_add(const Word& a, const Word& b);
    /// diff = (a - b) mod 2^bits via a + ~b + 1.
    [[nodiscard]] Word ripple_sub(const Word& a, const Word& b);
    /// out = sel ? a : b, bitwise.
    [[nodiscard]] Word mux(std::int32_t sel, const Word& a, const Word& b);
    /// out = sel ? 0 : a  (the ReLU multiplexer).
    [[nodiscard]] Word zero_if(std::int32_t sel, const Word& a);
    /// Most significant bit (two's-complement sign).
    [[nodiscard]] static std::int32_t sign_bit(const Word& w) { return w.back(); }

    [[nodiscard]] Circuit build();

private:
    [[nodiscard]] std::int32_t new_wire() { return num_wires_++; }

    bool inputs_frozen_ = false;
    std::int32_t num_wires_ = 0;
    std::int32_t num_garbler_inputs_ = 0;
    std::int32_t num_evaluator_inputs_ = 0;
    std::vector<Gate> gates_;
    std::vector<std::int32_t> outputs_;
};

/// Plaintext reference evaluation (for tests): inputs are bit vectors.
[[nodiscard]] std::vector<std::uint8_t> evaluate_plain(const Circuit& c,
                                                       std::vector<std::uint8_t> garbler_bits,
                                                       std::vector<std::uint8_t> evaluator_bits);

// -- canned circuits used by the Delphi-style protocols -------------------------

/// ReLU with re-sharing: garbler inputs (x0, neg_r), evaluator input x1.
/// Output word = ReLU(x0 + x1) + neg_r (mod 2^bits). The garbler sets
/// neg_r = -r so the parties end with fresh additive shares (r, output).
[[nodiscard]] Circuit build_relu_circuit(int bits);

/// k-input max with re-sharing: garbler inputs (x0_1..x0_k, neg_r),
/// evaluator inputs (x1_1..x1_k). Output = max_i(x0_i + x1_i) + neg_r.
[[nodiscard]] Circuit build_max_circuit(int bits, int k);

}  // namespace c2pi::crypto
