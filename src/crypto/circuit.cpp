#include "crypto/circuit.hpp"

namespace c2pi::crypto {

std::int32_t CircuitBuilder::add_garbler_input() {
    require(!inputs_frozen_, "declare all inputs before adding gates");
    ++num_garbler_inputs_;
    return new_wire();
}

std::int32_t CircuitBuilder::add_evaluator_input() {
    require(!inputs_frozen_, "declare all inputs before adding gates");
    ++num_evaluator_inputs_;
    return new_wire();
}

Word CircuitBuilder::add_garbler_word(int bits) {
    Word w(static_cast<std::size_t>(bits));
    for (auto& wire : w) wire = add_garbler_input();
    return w;
}

Word CircuitBuilder::add_evaluator_word(int bits) {
    Word w(static_cast<std::size_t>(bits));
    for (auto& wire : w) wire = add_evaluator_input();
    return w;
}

std::int32_t CircuitBuilder::make_xor(std::int32_t a, std::int32_t b) {
    inputs_frozen_ = true;
    const auto out = new_wire();
    gates_.push_back({GateKind::kXor, a, b, out});
    return out;
}

std::int32_t CircuitBuilder::make_and(std::int32_t a, std::int32_t b) {
    inputs_frozen_ = true;
    const auto out = new_wire();
    gates_.push_back({GateKind::kAnd, a, b, out});
    return out;
}

std::int32_t CircuitBuilder::make_not(std::int32_t a) {
    inputs_frozen_ = true;
    const auto out = new_wire();
    gates_.push_back({GateKind::kNot, a, -1, out});
    return out;
}

void CircuitBuilder::mark_output(std::int32_t wire) { outputs_.push_back(wire); }

void CircuitBuilder::mark_output_word(const Word& w) {
    for (const auto wire : w) mark_output(wire);
}

Word CircuitBuilder::ripple_add(const Word& a, const Word& b) {
    require(a.size() == b.size() && !a.empty(), "adder operand width mismatch");
    Word sum(a.size());
    // Full adder with one AND per bit: s = a^b^c, c' = c ^ ((a^c)&(b^c)).
    std::int32_t carry = -1;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const std::int32_t axb = make_xor(a[i], b[i]);
        if (carry < 0) {
            sum[i] = axb;
            if (i + 1 < a.size()) carry = make_and(a[i], b[i]);
        } else {
            sum[i] = make_xor(axb, carry);
            if (i + 1 < a.size()) {
                const std::int32_t axc = make_xor(a[i], carry);
                const std::int32_t bxc = make_xor(b[i], carry);
                carry = make_xor(carry, make_and(axc, bxc));
            }
        }
    }
    return sum;
}

Word CircuitBuilder::ripple_sub(const Word& a, const Word& b) {
    require(a.size() == b.size() && !a.empty(), "subtractor operand width mismatch");
    // a - b = a + ~b + 1: seed the carry chain with 1.
    Word sum(a.size());
    std::int32_t carry = -1;  // conceptual carry-in of 1 folded into first step
    for (std::size_t i = 0; i < a.size(); ++i) {
        const std::int32_t nb = make_not(b[i]);
        const std::int32_t axb = make_xor(a[i], nb);
        if (i == 0) {
            // s0 = a ^ ~b ^ 1 ; c1 = majority(a, ~b, 1) = a | ~b
            sum[i] = make_not(axb);
            if (a.size() > 1) {
                // a | ~b = ~(~a & b)
                carry = make_not(make_and(make_not(a[i]), b[i]));
            }
        } else {
            sum[i] = make_xor(axb, carry);
            if (i + 1 < a.size()) {
                const std::int32_t axc = make_xor(a[i], carry);
                const std::int32_t bxc = make_xor(nb, carry);
                carry = make_xor(carry, make_and(axc, bxc));
            }
        }
    }
    return sum;
}

Word CircuitBuilder::mux(std::int32_t sel, const Word& a, const Word& b) {
    require(a.size() == b.size(), "mux operand width mismatch");
    // out = b ^ sel&(a^b)
    Word out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const std::int32_t diff = make_xor(a[i], b[i]);
        out[i] = make_xor(b[i], make_and(sel, diff));
    }
    return out;
}

Word CircuitBuilder::zero_if(std::int32_t sel, const Word& a) {
    // out = a & ~sel
    const std::int32_t keep = make_not(sel);
    Word out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = make_and(a[i], keep);
    return out;
}

Circuit CircuitBuilder::build() {
    Circuit c;
    c.num_garbler_inputs = num_garbler_inputs_;
    c.num_evaluator_inputs = num_evaluator_inputs_;
    c.num_wires = num_wires_;
    c.gates = std::move(gates_);
    c.outputs = std::move(outputs_);
    return c;
}

std::vector<std::uint8_t> evaluate_plain(const Circuit& c, std::vector<std::uint8_t> garbler_bits,
                                         std::vector<std::uint8_t> evaluator_bits) {
    require(garbler_bits.size() == static_cast<std::size_t>(c.num_garbler_inputs),
            "garbler input count mismatch");
    require(evaluator_bits.size() == static_cast<std::size_t>(c.num_evaluator_inputs),
            "evaluator input count mismatch");
    std::vector<std::uint8_t> wires(static_cast<std::size_t>(c.num_wires), 0);
    for (std::size_t i = 0; i < garbler_bits.size(); ++i) wires[i] = garbler_bits[i] & 1U;
    for (std::size_t i = 0; i < evaluator_bits.size(); ++i)
        wires[garbler_bits.size() + i] = evaluator_bits[i] & 1U;
    for (const auto& g : c.gates) {
        switch (g.kind) {
            case GateKind::kXor:
                wires[g.out] = wires[g.in0] ^ wires[g.in1];
                break;
            case GateKind::kAnd:
                wires[g.out] = wires[g.in0] & wires[g.in1];
                break;
            case GateKind::kNot:
                wires[g.out] = wires[g.in0] ^ 1U;
                break;
        }
    }
    std::vector<std::uint8_t> out;
    out.reserve(c.outputs.size());
    for (const auto w : c.outputs) out.push_back(wires[w]);
    return out;
}

Circuit build_relu_circuit(int bits) {
    CircuitBuilder b;
    const Word x0 = b.add_garbler_word(bits);
    const Word neg_r = b.add_garbler_word(bits);
    const Word x1 = b.add_evaluator_word(bits);
    const Word x = b.ripple_add(x0, x1);
    const std::int32_t negative = CircuitBuilder::sign_bit(x);
    const Word rectified = b.zero_if(negative, x);
    const Word shared = b.ripple_add(rectified, neg_r);
    b.mark_output_word(shared);
    return b.build();
}

Circuit build_max_circuit(int bits, int k) {
    require(k >= 2, "max circuit needs at least two inputs");
    CircuitBuilder b;
    std::vector<Word> x0(static_cast<std::size_t>(k)), x1(static_cast<std::size_t>(k));
    for (auto& w : x0) w = b.add_garbler_word(bits);
    const Word neg_r = b.add_garbler_word(bits);
    for (auto& w : x1) w = b.add_evaluator_word(bits);

    std::vector<Word> values(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
        values[static_cast<std::size_t>(i)] =
            b.ripple_add(x0[static_cast<std::size_t>(i)], x1[static_cast<std::size_t>(i)]);

    // Tournament max: best = (best - v) < 0 ? v : best.
    Word best = values[0];
    for (int i = 1; i < k; ++i) {
        const Word& v = values[static_cast<std::size_t>(i)];
        const Word diff = b.ripple_sub(best, v);
        const std::int32_t less = CircuitBuilder::sign_bit(diff);
        best = b.mux(less, v, best);
    }
    b.mark_output_word(b.ripple_add(best, neg_r));
    return b.build();
}

}  // namespace c2pi::crypto
