#pragma once

/// \file hash.hpp
/// Hash functions used by the protocols:
///  * SHA-256 (FIPS 180-4) — commitments, transcript checks, key derivation.
///  * SipHash-2-4 — fast keyed 64-bit PRF.
///  * CrHash — the tweakable correlation-robust hash H(i, x) -> Block128
///    used on the hot paths of garbling and OT extension. Production
///    implementations use fixed-key AES; offline we build it from two
///    independently keyed SipHash instances (DESIGN.md §4, substitution 3
///    documents this swap; the protocol structure is unchanged).

#include <array>
#include <cstdint>
#include <span>

#include "crypto/block.hpp"

namespace c2pi::crypto {

/// Streaming SHA-256.
class Sha256 {
public:
    Sha256();
    void update(std::span<const std::uint8_t> data);
    /// Finalise and return the 32-byte digest. The object must not be
    /// reused afterwards.
    [[nodiscard]] std::array<std::uint8_t, 32> finish();

    [[nodiscard]] static std::array<std::uint8_t, 32> digest(std::span<const std::uint8_t> data);

private:
    void compress(const std::uint8_t block[64]);

    std::uint32_t h_[8];
    std::uint8_t buffer_[64];
    std::size_t buffer_len_ = 0;
    std::uint64_t total_len_ = 0;
};

/// SipHash-2-4 keyed 64-bit hash (Aumasson & Bernstein).
[[nodiscard]] std::uint64_t siphash24(const Block128& key, std::span<const std::uint8_t> data);

/// Tweakable correlation-robust hash: H(tweak, x) -> 128-bit block.
[[nodiscard]] Block128 cr_hash(std::uint64_t tweak, const Block128& x);

/// Hash a block down to a single u64 (used for OT message masking of ring
/// elements).
[[nodiscard]] std::uint64_t cr_hash_u64(std::uint64_t tweak, const Block128& x);

}  // namespace c2pi::crypto
