#include "crypto/ot.hpp"

#include "crypto/hash.hpp"

namespace c2pi::crypto {

namespace {

/// Expand one base-OT key into a row of the IKNP matrix (packed bits).
std::vector<std::uint8_t> expand_row(const Block128& key, std::uint64_t round, std::size_t nbytes) {
    ChaCha20Prg prg(key, /*nonce=*/round + 1);
    std::vector<std::uint8_t> row(nbytes);
    prg.fill_bytes(row);
    return row;
}

/// Extract column j of a 128-row packed bit matrix as a block.
Block128 column_block(const std::vector<std::vector<std::uint8_t>>& rows, std::size_t j) {
    Block128 col{};
    const std::size_t byte = j / 8;
    const unsigned shift = static_cast<unsigned>(j % 8);
    for (std::size_t i = 0; i < 64; ++i)
        col.lo |= static_cast<std::uint64_t>((rows[i][byte] >> shift) & 1U) << i;
    for (std::size_t i = 0; i < 64; ++i)
        col.hi |= static_cast<std::uint64_t>((rows[64 + i][byte] >> shift) & 1U) << i;
    return col;
}

}  // namespace

OtSetupPair dealer_base_ots(const Block128& session_seed) {
    ChaCha20Prg prg(session_seed, /*nonce=*/0xBA5E);
    OtSetupPair pair;
    for (std::size_t i = 0; i < kOtSecurityParam; ++i) {
        const Block128 k0 = prg.next_block();
        const Block128 k1 = prg.next_block();
        const std::uint8_t s = static_cast<std::uint8_t>(prg.next_u64() & 1U);
        pair.receiver.keys0[i] = k0;
        pair.receiver.keys1[i] = k1;
        pair.sender.keys[i] = s ? k1 : k0;
        pair.sender.s[i] = s;
    }
    return pair;
}

RotReceiverOutput IknpReceiver::extend(net::Transport& t, std::span<const std::uint8_t> choices) {
    const std::size_t n = choices.size();
    require(n > 0, "empty OT extension");
    const std::size_t nbytes = (n + 7) / 8;

    std::vector<std::uint8_t> r_packed(nbytes, 0);
    for (std::size_t j = 0; j < n; ++j)
        if (choices[j]) r_packed[j / 8] |= static_cast<std::uint8_t>(1U << (j % 8));

    std::vector<std::vector<std::uint8_t>> t_rows(kOtSecurityParam);
    std::vector<std::uint8_t> u_flat(kOtSecurityParam * nbytes);
    for (std::size_t i = 0; i < kOtSecurityParam; ++i) {
        t_rows[i] = expand_row(setup_.keys0[i], round_, nbytes);
        const auto v_row = expand_row(setup_.keys1[i], round_, nbytes);
        for (std::size_t b = 0; b < nbytes; ++b)
            u_flat[i * nbytes + b] = t_rows[i][b] ^ v_row[b] ^ r_packed[b];
    }
    t.send_bytes(u_flat);

    RotReceiverOutput out;
    out.m.resize(n);
    for (std::size_t j = 0; j < n; ++j) out.m[j] = cr_hash(tweak_ + j, column_block(t_rows, j));
    ++round_;
    tweak_ += n;
    return out;
}

RotSenderOutput IknpSender::extend(net::Transport& t, std::size_t n) {
    require(n > 0, "empty OT extension");
    const std::size_t nbytes = (n + 7) / 8;
    const auto u_flat = t.recv_bytes();
    require(u_flat.size() == kOtSecurityParam * nbytes, "IKNP u-matrix size mismatch");

    std::vector<std::vector<std::uint8_t>> q_rows(kOtSecurityParam);
    for (std::size_t i = 0; i < kOtSecurityParam; ++i) {
        q_rows[i] = expand_row(setup_.keys[i], round_, nbytes);
        if (setup_.s[i]) {
            for (std::size_t b = 0; b < nbytes; ++b) q_rows[i][b] ^= u_flat[i * nbytes + b];
        }
    }
    Block128 s_block{};
    for (std::size_t i = 0; i < 64; ++i)
        s_block.lo |= static_cast<std::uint64_t>(setup_.s[i]) << i;
    for (std::size_t i = 0; i < 64; ++i)
        s_block.hi |= static_cast<std::uint64_t>(setup_.s[64 + i]) << i;

    RotSenderOutput out;
    out.m0.resize(n);
    out.m1.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
        const Block128 q = column_block(q_rows, j);
        out.m0[j] = cr_hash(tweak_ + j, q);
        out.m1[j] = cr_hash(tweak_ + j, q ^ s_block);
    }
    ++round_;
    tweak_ += n;
    return out;
}

// ------------------------------------------------------- chosen-message OT ---

void ot_send_blocks(net::Transport& t, IknpSender& ext, std::span<const Block128> messages0,
                    std::span<const Block128> messages1) {
    require(messages0.size() == messages1.size(), "OT message count mismatch");
    const std::size_t n = messages0.size();
    const auto rot = ext.extend(t, n);
    std::vector<std::uint8_t> payload(n * 32);
    for (std::size_t j = 0; j < n; ++j) {
        (messages0[j] ^ rot.m0[j]).to_bytes(payload.data() + 32 * j);
        (messages1[j] ^ rot.m1[j]).to_bytes(payload.data() + 32 * j + 16);
    }
    t.send_bytes(payload);
}

std::vector<Block128> ot_recv_blocks(net::Transport& t, IknpReceiver& ext,
                                     std::span<const std::uint8_t> choices) {
    const std::size_t n = choices.size();
    const auto rot = ext.extend(t, choices);
    const auto payload = t.recv_bytes();
    require(payload.size() == n * 32, "OT payload size mismatch");
    std::vector<Block128> out(n);
    for (std::size_t j = 0; j < n; ++j) {
        const Block128 masked =
            Block128::from_bytes(payload.data() + 32 * j + (choices[j] ? 16 : 0));
        out[j] = masked ^ rot.m[j];
    }
    return out;
}

// ------------------------------------------------------------ correlated OT ---

std::vector<Ring> cot_send(net::Transport& t, IknpSender& ext, std::span<const Ring> deltas) {
    const std::size_t n = deltas.size();
    const auto rot = ext.extend(t, n);
    std::vector<Ring> shares(n);
    std::vector<Ring> adjustments(n);
    for (std::size_t j = 0; j < n; ++j) {
        const Ring t0 = rot.m0[j].lo;
        const Ring t1 = rot.m1[j].lo;
        shares[j] = t0;
        adjustments[j] = t0 + deltas[j] - t1;
    }
    t.send_u64s(adjustments);
    return shares;
}

std::vector<Ring> cot_recv(net::Transport& t, IknpReceiver& ext,
                           std::span<const std::uint8_t> choices) {
    const auto rot = ext.extend(t, choices);
    const auto adjustments = t.recv_u64s();
    require(adjustments.size() == choices.size(), "COT adjustment count mismatch");
    std::vector<Ring> out(choices.size());
    for (std::size_t j = 0; j < choices.size(); ++j) {
        out[j] = rot.m[j].lo + (choices[j] ? adjustments[j] : 0);
    }
    return out;
}

void ot_send_u64_pairs(net::Transport& t, IknpSender& ext, std::span<const Ring> messages0,
                       std::span<const Ring> messages1) {
    require(messages0.size() == messages1.size(), "OT message count mismatch");
    const std::size_t n = messages0.size();
    const auto rot = ext.extend(t, n);
    std::vector<Ring> payload(2 * n);
    for (std::size_t j = 0; j < n; ++j) {
        payload[2 * j] = messages0[j] ^ rot.m0[j].lo;
        payload[2 * j + 1] = messages1[j] ^ rot.m1[j].lo;
    }
    t.send_u64s(payload);
}

std::vector<Ring> ot_recv_u64s(net::Transport& t, IknpReceiver& ext,
                               std::span<const std::uint8_t> choices) {
    const std::size_t n = choices.size();
    const auto rot = ext.extend(t, choices);
    const auto payload = t.recv_u64s();
    require(payload.size() == 2 * n, "OT payload size mismatch");
    std::vector<Ring> out(n);
    for (std::size_t j = 0; j < n; ++j) out[j] = payload[2 * j + (choices[j] ? 1 : 0)] ^ rot.m[j].lo;
    return out;
}

// ---------------------------------------------------------------- 1-of-N OT ---

namespace {
std::size_t log2_exact(std::size_t n) {
    std::size_t bits = 0;
    while ((std::size_t{1} << bits) < n) ++bits;
    require((std::size_t{1} << bits) == n, "1-of-N OT requires power-of-two N");
    return bits;
}
}  // namespace

void ot_1_of_n_send(net::Transport& t, IknpSender& ext, std::span<const std::uint8_t> messages,
                    std::size_t n_groups, std::size_t n_options) {
    const std::size_t log_n = log2_exact(n_options);
    require(messages.size() == n_groups * n_options, "1-of-N message layout mismatch");
    const auto rot = ext.extend(t, n_groups * log_n);

    std::vector<std::uint8_t> payload(n_groups * n_options);
    for (std::size_t g = 0; g < n_groups; ++g) {
        for (std::size_t j = 0; j < n_options; ++j) {
            std::uint8_t pad = 0;
            for (std::size_t i = 0; i < log_n; ++i) {
                const bool bit = ((j >> i) & 1U) != 0;
                const Block128& key = bit ? rot.m1[g * log_n + i] : rot.m0[g * log_n + i];
                pad ^= static_cast<std::uint8_t>(cr_hash_u64(j * log_n + i, key));
            }
            payload[g * n_options + j] = messages[g * n_options + j] ^ pad;
        }
    }
    t.send_bytes(payload);
}

std::vector<std::uint8_t> ot_1_of_n_recv(net::Transport& t, IknpReceiver& ext,
                                         std::span<const std::uint16_t> indices,
                                         std::size_t n_options) {
    const std::size_t log_n = log2_exact(n_options);
    const std::size_t n_groups = indices.size();
    std::vector<std::uint8_t> choices(n_groups * log_n);
    for (std::size_t g = 0; g < n_groups; ++g) {
        require(indices[g] < n_options, "1-of-N index out of range");
        for (std::size_t i = 0; i < log_n; ++i)
            choices[g * log_n + i] = static_cast<std::uint8_t>((indices[g] >> i) & 1U);
    }
    const auto rot = ext.extend(t, choices);
    const auto payload = t.recv_bytes();
    require(payload.size() == n_groups * n_options, "1-of-N payload size mismatch");

    std::vector<std::uint8_t> out(n_groups);
    for (std::size_t g = 0; g < n_groups; ++g) {
        const std::size_t j = indices[g];
        std::uint8_t pad = 0;
        for (std::size_t i = 0; i < log_n; ++i)
            pad ^= static_cast<std::uint8_t>(cr_hash_u64(j * log_n + i, rot.m[g * log_n + i]));
        out[g] = payload[g * n_options + j] ^ pad;
    }
    return out;
}

// ------------------------------------------------------------- bit triples ---

namespace {

/// One cross-term pass: the sender holds bits `a`, the receiver chose bits
/// `b`; afterwards sender_share ^ receiver_share = a & b elementwise.
std::vector<std::uint8_t> cross_term_send(net::Transport& t, IknpSender& ext,
                                          std::span<const std::uint8_t> a) {
    const std::size_t n = a.size();
    const auto rot = ext.extend(t, n);
    std::vector<std::uint8_t> shares(n), corrections((n + 7) / 8, 0);
    for (std::size_t j = 0; j < n; ++j) {
        const std::uint8_t t0 = rot.m0[j].lo & 1U;
        const std::uint8_t t1 = rot.m1[j].lo & 1U;
        shares[j] = t0;
        const std::uint8_t c = static_cast<std::uint8_t>(t0 ^ t1 ^ a[j]);
        corrections[j / 8] |= static_cast<std::uint8_t>(c << (j % 8));
    }
    t.send_bytes(corrections);
    return shares;
}

std::vector<std::uint8_t> cross_term_recv(net::Transport& t, IknpReceiver& ext,
                                          std::span<const std::uint8_t> b) {
    const std::size_t n = b.size();
    const auto rot = ext.extend(t, b);
    const auto corrections = t.recv_bytes();
    require(corrections.size() == (n + 7) / 8, "cross-term correction size mismatch");
    std::vector<std::uint8_t> shares(n);
    for (std::size_t j = 0; j < n; ++j) {
        const std::uint8_t tb = rot.m[j].lo & 1U;
        const std::uint8_t c = (corrections[j / 8] >> (j % 8)) & 1U;
        shares[j] = b[j] ? static_cast<std::uint8_t>(tb ^ c) : tb;
    }
    return shares;
}

}  // namespace

BitTriples bit_triples_party(net::Transport& t, IknpSender& send_ext, IknpReceiver& recv_ext,
                             std::size_t n, ChaCha20Prg& prg) {
    BitTriples out;
    out.a = prg.next_bits(n);
    out.b = prg.next_bits(n);
    out.c.resize(n);

    std::vector<std::uint8_t> cross1, cross2;
    if (t.party_id() == 0) {
        cross1 = cross_term_send(t, send_ext, out.a);   // a0 & b1
        cross2 = cross_term_recv(t, recv_ext, out.b);   // a1 & b0
    } else {
        cross1 = cross_term_recv(t, recv_ext, out.b);   // a0 & b1 (we choose with b1)
        cross2 = cross_term_send(t, send_ext, out.a);   // a1 & b0
    }
    for (std::size_t j = 0; j < n; ++j)
        out.c[j] = static_cast<std::uint8_t>((out.a[j] & out.b[j]) ^ cross1[j] ^ cross2[j]);
    return out;
}

}  // namespace c2pi::crypto
