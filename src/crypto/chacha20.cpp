#include "crypto/chacha20.hpp"

#include <algorithm>
#include <cstring>

#include "core/error.hpp"
#include "he/kernels.hpp"

namespace c2pi::crypto {

ChaCha20Prg::ChaCha20Prg(const Block128& seed, std::uint64_t nonce) {
    std::uint8_t key[32];
    seed.to_bytes(key);
    seed.to_bytes(key + 16);
    *this = ChaCha20Prg(std::span<const std::uint8_t>(key, 32), nonce);
}

ChaCha20Prg::ChaCha20Prg(std::span<const std::uint8_t> key32, std::uint64_t nonce) {
    require(key32.size() == 32, "ChaCha20 key must be 32 bytes");
    // "expand 32-byte k" constants.
    state_[0] = 0x61707865;
    state_[1] = 0x3320646E;
    state_[2] = 0x79622D32;
    state_[3] = 0x6B206574;
    std::memcpy(&state_[4], key32.data(), 32);
    state_[12] = 0;  // block counter
    state_[13] = static_cast<std::uint32_t>(nonce);
    state_[14] = static_cast<std::uint32_t>(nonce >> 32);
    state_[15] = 0;
}

void ChaCha20Prg::generate(std::uint8_t* dst, std::size_t nblocks) {
    // The block function (RFC 8439) lives in the SIMD kernel layer so
    // long streams run 8 blocks wide; state_[12]/state_[13] act as one
    // 64-bit little-endian counter, exactly as the former single-block
    // refill incremented it.
    he::kernels::active().chacha20_blocks(state_, dst, nblocks);
    std::uint64_t counter = static_cast<std::uint64_t>(state_[12]) |
                            (static_cast<std::uint64_t>(state_[13]) << 32);
    counter += nblocks;
    state_[12] = static_cast<std::uint32_t>(counter);
    state_[13] = static_cast<std::uint32_t>(counter >> 32);
}

void ChaCha20Prg::refill() {
    generate(buffer_, refill_blocks_);
    buffer_len_ = refill_blocks_ * 64;
    buffer_pos_ = 0;
    refill_blocks_ = std::min(refill_blocks_ * 2, kMaxRefillBlocks);
}

void ChaCha20Prg::fill_bytes(std::span<std::uint8_t> out) {
    std::size_t off = 0;
    while (off < out.size()) {
        if (buffer_pos_ == buffer_len_) {
            // Whole blocks go straight to the destination, bypassing the
            // buffer (same keystream bytes, no copy).
            const std::size_t whole = (out.size() - off) / 64;
            if (whole > 0) {
                generate(out.data() + off, whole);
                off += whole * 64;
                if (off == out.size()) return;
            }
            refill();
        }
        const std::size_t take = std::min<std::size_t>(buffer_len_ - buffer_pos_, out.size() - off);
        std::memcpy(out.data() + off, buffer_ + buffer_pos_, take);
        buffer_pos_ += take;
        off += take;
    }
}

std::uint64_t ChaCha20Prg::next_u64() {
    std::uint8_t raw[8];
    fill_bytes(raw);
    std::uint64_t v;
    std::memcpy(&v, raw, 8);
    return v;
}

Block128 ChaCha20Prg::next_block() {
    std::uint8_t raw[16];
    fill_bytes(raw);
    return Block128::from_bytes(raw);
}

std::vector<std::uint8_t> ChaCha20Prg::next_bits(std::size_t n) {
    std::vector<std::uint8_t> packed((n + 7) / 8);
    fill_bytes(packed);
    std::vector<std::uint8_t> bits(n);
    for (std::size_t i = 0; i < n; ++i) bits[i] = (packed[i / 8] >> (i % 8)) & 1U;
    return bits;
}

}  // namespace c2pi::crypto
