#include "crypto/chacha20.hpp"

#include "core/error.hpp"

namespace c2pi::crypto {

namespace {
inline std::uint32_t rotl32(std::uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
    a += b; d ^= a; d = rotl32(d, 16);
    c += d; b ^= c; b = rotl32(b, 12);
    a += b; d ^= a; d = rotl32(d, 8);
    c += d; b ^= c; b = rotl32(b, 7);
}

void chacha20_block(const std::uint32_t state[16], std::uint8_t out[64]) {
    std::uint32_t x[16];
    std::memcpy(x, state, sizeof(x));
    for (int round = 0; round < 10; ++round) {
        quarter_round(x[0], x[4], x[8], x[12]);
        quarter_round(x[1], x[5], x[9], x[13]);
        quarter_round(x[2], x[6], x[10], x[14]);
        quarter_round(x[3], x[7], x[11], x[15]);
        quarter_round(x[0], x[5], x[10], x[15]);
        quarter_round(x[1], x[6], x[11], x[12]);
        quarter_round(x[2], x[7], x[8], x[13]);
        quarter_round(x[3], x[4], x[9], x[14]);
    }
    for (int i = 0; i < 16; ++i) {
        const std::uint32_t v = x[i] + state[i];
        std::memcpy(out + 4 * i, &v, 4);
    }
}
}  // namespace

ChaCha20Prg::ChaCha20Prg(const Block128& seed, std::uint64_t nonce) {
    std::uint8_t key[32];
    seed.to_bytes(key);
    seed.to_bytes(key + 16);
    *this = ChaCha20Prg(std::span<const std::uint8_t>(key, 32), nonce);
}

ChaCha20Prg::ChaCha20Prg(std::span<const std::uint8_t> key32, std::uint64_t nonce) {
    require(key32.size() == 32, "ChaCha20 key must be 32 bytes");
    // "expand 32-byte k" constants.
    state_[0] = 0x61707865;
    state_[1] = 0x3320646E;
    state_[2] = 0x79622D32;
    state_[3] = 0x6B206574;
    std::memcpy(&state_[4], key32.data(), 32);
    state_[12] = 0;  // block counter
    state_[13] = static_cast<std::uint32_t>(nonce);
    state_[14] = static_cast<std::uint32_t>(nonce >> 32);
    state_[15] = 0;
}

void ChaCha20Prg::refill() {
    chacha20_block(state_, buffer_);
    buffer_pos_ = 0;
    if (++state_[12] == 0) ++state_[13];  // 64-bit effective counter
}

void ChaCha20Prg::fill_bytes(std::span<std::uint8_t> out) {
    std::size_t off = 0;
    while (off < out.size()) {
        if (buffer_pos_ == 64) refill();
        const std::size_t take = std::min<std::size_t>(64 - buffer_pos_, out.size() - off);
        std::memcpy(out.data() + off, buffer_ + buffer_pos_, take);
        buffer_pos_ += take;
        off += take;
    }
}

std::uint64_t ChaCha20Prg::next_u64() {
    std::uint8_t raw[8];
    fill_bytes(raw);
    std::uint64_t v;
    std::memcpy(&v, raw, 8);
    return v;
}

Block128 ChaCha20Prg::next_block() {
    std::uint8_t raw[16];
    fill_bytes(raw);
    return Block128::from_bytes(raw);
}

std::vector<std::uint8_t> ChaCha20Prg::next_bits(std::size_t n) {
    std::vector<std::uint8_t> packed((n + 7) / 8);
    fill_bytes(packed);
    std::vector<std::uint8_t> bits(n);
    for (std::size_t i = 0; i < n; ++i) bits[i] = (packed[i / 8] >> (i % 8)) & 1U;
    return bits;
}

}  // namespace c2pi::crypto
