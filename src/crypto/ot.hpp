#pragma once

/// \file ot.hpp
/// Oblivious transfer stack.
///
///  * Base OTs (128 of them) are delivered by a trusted-dealer setup
///    standing in for Naor-Pinkas (no big-integer/EC library offline; see
///    DESIGN.md §4, substitution 4). Their traffic is charged explicitly.
///  * IKNP OT extension (Ishai-Kilian-Nissim-Petrank 2003) is implemented
///    faithfully: PRG row expansion, u-matrix transmission, bit-matrix
///    transpose, correlation-robust hashing of columns.
///  * Derived functionalities: chosen-message 1-of-2 OT (blocks / u64 /
///    bytes), additively correlated OT over Z_{2^64}, 1-of-N OT (the
///    millionaire protocol's leaves), and GF(2) Beaver "AND" triples.
///
/// Roles: the *sender* learns (m0, m1) pairs; the *receiver* learns m_b
/// for its choice bits b. In IKNP the extension sender plays base-OT
/// receiver and vice versa, which the setup factory takes care of.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/fixed_point.hpp"
#include "crypto/block.hpp"
#include "crypto/chacha20.hpp"
#include "net/channel.hpp"

namespace c2pi::crypto {

inline constexpr std::size_t kOtSecurityParam = 128;

/// Base-OT state held by the party that will act as extension *sender*:
/// one key per base OT, selected by its random choice bits s.
struct OtSetupSender {
    std::array<Block128, kOtSecurityParam> keys;  ///< k_{s_i}
    std::array<std::uint8_t, kOtSecurityParam> s; ///< choice bits
};

/// Base-OT state held by the extension *receiver*: both keys per base OT.
struct OtSetupReceiver {
    std::array<Block128, kOtSecurityParam> keys0;
    std::array<Block128, kOtSecurityParam> keys1;
};

struct OtSetupPair {
    OtSetupSender sender;
    OtSetupReceiver receiver;
    /// Serialized size of the Naor-Pinkas exchange this setup replaces;
    /// engines charge this many bytes to the offline phase.
    [[nodiscard]] static std::size_t setup_traffic_bytes() {
        return kOtSecurityParam * 3 * sizeof(Block128);
    }
};

/// Deterministic dealer: both parties derive consistent base OTs from a
/// shared session seed.
[[nodiscard]] OtSetupPair dealer_base_ots(const Block128& session_seed);

/// Random OTs produced by one IKNP extension.
struct RotSenderOutput {
    std::vector<Block128> m0, m1;
};
struct RotReceiverOutput {
    std::vector<Block128> m;  ///< m[j] = (b_j ? m1[j] : m0[j])
};

/// IKNP extension sender endpoint (stateful: tweak counter advances so
/// labels never repeat across extensions).
class IknpSender {
public:
    explicit IknpSender(OtSetupSender setup) : setup_(setup) {}

    /// Receive the u-matrix for n OTs and output (m0, m1) pairs.
    [[nodiscard]] RotSenderOutput extend(net::Transport& t, std::size_t n);

private:
    OtSetupSender setup_;
    std::uint64_t round_ = 0;
    std::uint64_t tweak_ = 0;
};

/// IKNP extension receiver endpoint.
class IknpReceiver {
public:
    explicit IknpReceiver(OtSetupReceiver setup) : setup_(setup) {}

    /// Run one extension for the given choice bits (one bit per byte).
    [[nodiscard]] RotReceiverOutput extend(net::Transport& t,
                                           std::span<const std::uint8_t> choices);

private:
    OtSetupReceiver setup_;
    std::uint64_t round_ = 0;
    std::uint64_t tweak_ = 0;
};

// -- chosen-message 1-of-2 OT -------------------------------------------------

/// Sender side: transfer exactly one of (messages0[j], messages1[j]) per OT.
void ot_send_blocks(net::Transport& t, IknpSender& ext, std::span<const Block128> messages0,
                    std::span<const Block128> messages1);
[[nodiscard]] std::vector<Block128> ot_recv_blocks(net::Transport& t, IknpReceiver& ext,
                                                   std::span<const std::uint8_t> choices);

// -- correlated OT over Z_{2^64} ----------------------------------------------

/// Sender inputs per-OT correlations delta[j]; sender learns random x[j],
/// receiver learns x[j] + b_j * delta[j]. Used by the secure multiplexer
/// (ReLU from DReLU) and B2A conversions. Comm: 8 bytes per OT.
[[nodiscard]] std::vector<Ring> cot_send(net::Transport& t, IknpSender& ext,
                                         std::span<const Ring> deltas);
[[nodiscard]] std::vector<Ring> cot_recv(net::Transport& t, IknpReceiver& ext,
                                         std::span<const std::uint8_t> choices);

/// Chosen-message 1-of-2 OT on 64-bit ring elements (the secure
/// multiplexer's workhorse). Comm: 16 bytes per OT.
void ot_send_u64_pairs(net::Transport& t, IknpSender& ext, std::span<const Ring> messages0,
                       std::span<const Ring> messages1);
[[nodiscard]] std::vector<Ring> ot_recv_u64s(net::Transport& t, IknpReceiver& ext,
                                             std::span<const std::uint8_t> choices);

// -- 1-of-N OT ------------------------------------------------------------------

/// Sender holds n_ots groups of N byte-messages (N a power of two, laid
/// out flat: group j occupies messages[j*N .. j*N+N)). The receiver picks
/// one index per group. Built from log2(N) random OTs per group plus N
/// masked bytes (DESIGN.md §6).
void ot_1_of_n_send(net::Transport& t, IknpSender& ext, std::span<const std::uint8_t> messages,
                    std::size_t n_groups, std::size_t n_options);
[[nodiscard]] std::vector<std::uint8_t> ot_1_of_n_recv(net::Transport& t, IknpReceiver& ext,
                                                       std::span<const std::uint16_t> indices,
                                                       std::size_t n_options);

// -- GF(2) Beaver triples --------------------------------------------------------

/// XOR-shared AND triples: a, b, c with (a0^a1)&(b0^b1) = c0^c1. Each
/// party calls its role function; party 0 must be the IknpSender owner
/// for the first pass and receiver for the second (handled internally by
/// taking both endpoints).
struct BitTriples {
    std::vector<std::uint8_t> a, b, c;  // one bit per byte
};
[[nodiscard]] BitTriples bit_triples_party(net::Transport& t, IknpSender& send_ext,
                                           IknpReceiver& recv_ext, std::size_t n,
                                           ChaCha20Prg& prg);

}  // namespace c2pi::crypto
