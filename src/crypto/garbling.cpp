#include "crypto/garbling.hpp"

#include "crypto/hash.hpp"

namespace c2pi::crypto {

Garbling garble(const Circuit& circuit, ChaCha20Prg& prg) {
    Garbling g;
    g.delta = prg.next_block();
    g.delta.lo |= 1ULL;  // point-and-permute: delta colour bit must be 1

    std::vector<Block128> zero(static_cast<std::size_t>(circuit.num_wires));
    const std::size_t n_inputs =
        static_cast<std::size_t>(circuit.num_garbler_inputs + circuit.num_evaluator_inputs);
    for (std::size_t i = 0; i < n_inputs; ++i) zero[i] = prg.next_block();

    g.tables.reserve(circuit.and_count() * 2);
    std::uint64_t tweak = 0;
    for (const auto& gate : circuit.gates) {
        switch (gate.kind) {
            case GateKind::kXor:
                zero[gate.out] = zero[gate.in0] ^ zero[gate.in1];
                break;
            case GateKind::kNot:
                // Free NOT: output zero-label is the input one-label.
                zero[gate.out] = zero[gate.in0] ^ g.delta;
                break;
            case GateKind::kAnd: {
                const Block128 a0 = zero[gate.in0];
                const Block128 b0 = zero[gate.in1];
                const bool pa = a0.colour();
                const bool pb = b0.colour();
                const std::uint64_t j0 = tweak++;
                const std::uint64_t j1 = tweak++;
                // Generator half-gate.
                Block128 tg = cr_hash(j0, a0) ^ cr_hash(j0, a0 ^ g.delta);
                if (pb) tg ^= g.delta;
                Block128 wg = cr_hash(j0, a0);
                if (pa) wg ^= tg;
                // Evaluator half-gate.
                const Block128 te = cr_hash(j1, b0) ^ cr_hash(j1, b0 ^ g.delta) ^ a0;
                Block128 we = cr_hash(j1, b0);
                if (pb) we ^= te ^ a0;
                zero[gate.out] = wg ^ we;
                g.tables.push_back(tg);
                g.tables.push_back(te);
                break;
            }
        }
    }

    g.garbler_zero_labels.assign(zero.begin(),
                                 zero.begin() + circuit.num_garbler_inputs);
    g.evaluator_zero_labels.assign(
        zero.begin() + circuit.num_garbler_inputs,
        zero.begin() + circuit.num_garbler_inputs + circuit.num_evaluator_inputs);
    g.output_decode.reserve(circuit.outputs.size());
    for (const auto w : circuit.outputs)
        g.output_decode.push_back(static_cast<std::uint8_t>(zero[w].colour()));
    return g;
}

std::vector<std::uint8_t> evaluate_garbled(const Circuit& circuit,
                                           std::span<const Block128> tables,
                                           std::span<const Block128> active_garbler_labels,
                                           std::span<const Block128> active_evaluator_labels,
                                           std::span<const std::uint8_t> output_decode) {
    require(active_garbler_labels.size() == static_cast<std::size_t>(circuit.num_garbler_inputs),
            "garbler label count mismatch");
    require(active_evaluator_labels.size() ==
                static_cast<std::size_t>(circuit.num_evaluator_inputs),
            "evaluator label count mismatch");
    require(tables.size() == circuit.and_count() * 2, "garbled table size mismatch");
    require(output_decode.size() == circuit.outputs.size(), "output decode size mismatch");

    std::vector<Block128> active(static_cast<std::size_t>(circuit.num_wires));
    for (std::size_t i = 0; i < active_garbler_labels.size(); ++i) active[i] = active_garbler_labels[i];
    for (std::size_t i = 0; i < active_evaluator_labels.size(); ++i)
        active[active_garbler_labels.size() + i] = active_evaluator_labels[i];

    std::uint64_t tweak = 0;
    std::size_t table_pos = 0;
    for (const auto& gate : circuit.gates) {
        switch (gate.kind) {
            case GateKind::kXor:
                active[gate.out] = active[gate.in0] ^ active[gate.in1];
                break;
            case GateKind::kNot:
                active[gate.out] = active[gate.in0];
                break;
            case GateKind::kAnd: {
                const Block128 a = active[gate.in0];
                const Block128 b = active[gate.in1];
                const bool sa = a.colour();
                const bool sb = b.colour();
                const std::uint64_t j0 = tweak++;
                const std::uint64_t j1 = tweak++;
                const Block128 tg = tables[table_pos++];
                const Block128 te = tables[table_pos++];
                Block128 wg = cr_hash(j0, a);
                if (sa) wg ^= tg;
                Block128 we = cr_hash(j1, b);
                if (sb) we ^= te ^ a;
                active[gate.out] = wg ^ we;
                break;
            }
        }
    }

    std::vector<std::uint8_t> out;
    out.reserve(circuit.outputs.size());
    for (std::size_t i = 0; i < circuit.outputs.size(); ++i) {
        const bool colour = active[circuit.outputs[i]].colour();
        out.push_back(static_cast<std::uint8_t>(colour ^ (output_decode[i] & 1U)));
    }
    return out;
}

}  // namespace c2pi::crypto
