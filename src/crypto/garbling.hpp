#pragma once

/// \file garbling.hpp
/// Half-gates garbling (Zahur, Rosulek, Evans — Eurocrypt 2015) with
/// free-XOR and point-and-permute. AND gates cost two 128-bit table
/// entries; XOR and NOT are free. The correlation-robust hash is
/// crypto::cr_hash (see hash.hpp for the offline substitution note).

#include "crypto/block.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/circuit.hpp"

namespace c2pi::crypto {

/// Everything the garbler produces for one circuit instance.
struct Garbling {
    std::vector<Block128> tables;               ///< 2 entries per AND gate
    std::vector<Block128> garbler_zero_labels;  ///< zero-label per garbler input
    std::vector<Block128> evaluator_zero_labels;///< zero-label per evaluator input
    std::vector<std::uint8_t> output_decode;    ///< colour of each output's zero-label
    Block128 delta;                             ///< free-XOR offset (lsb = 1)

    /// Active label for a garbler input bit.
    [[nodiscard]] Block128 garbler_label(std::size_t i, bool bit) const {
        return bit ? garbler_zero_labels[i] ^ delta : garbler_zero_labels[i];
    }
    /// Label pair for an evaluator input (sent via OT).
    [[nodiscard]] Block128 evaluator_label(std::size_t i, bool bit) const {
        return bit ? evaluator_zero_labels[i] ^ delta : evaluator_zero_labels[i];
    }

    [[nodiscard]] std::size_t table_bytes() const { return tables.size() * sizeof(Block128); }
};

/// Garble one circuit instance with fresh randomness from `prg`.
[[nodiscard]] Garbling garble(const Circuit& circuit, ChaCha20Prg& prg);

/// Evaluate a garbled circuit given the active input labels; returns the
/// decoded output bits.
[[nodiscard]] std::vector<std::uint8_t> evaluate_garbled(
    const Circuit& circuit, std::span<const Block128> tables,
    std::span<const Block128> active_garbler_labels,
    std::span<const Block128> active_evaluator_labels,
    std::span<const std::uint8_t> output_decode);

// -- bit/word packing helpers ----------------------------------------------------

/// Little-endian bit decomposition of a 64-bit ring element.
[[nodiscard]] inline std::vector<std::uint8_t> to_bits(std::uint64_t v, int bits) {
    std::vector<std::uint8_t> out(static_cast<std::size_t>(bits));
    for (int i = 0; i < bits; ++i) out[static_cast<std::size_t>(i)] = (v >> i) & 1U;
    return out;
}

[[nodiscard]] inline std::uint64_t from_bits(std::span<const std::uint8_t> bits) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bits.size(); ++i)
        v |= static_cast<std::uint64_t>(bits[i] & 1U) << i;
    return v;
}

}  // namespace c2pi::crypto
