#pragma once

/// \file secret_sharing.hpp
/// Two-party additive secret sharing over Z_{2^64}: x = <x>_0 + <x>_1.
/// All PI protocols in this repo maintain activations in this form.

#include <cstdint>
#include <span>
#include <vector>

#include "core/fixed_point.hpp"
#include "crypto/chacha20.hpp"

namespace c2pi::crypto {

/// Split each value into two uniformly random additive shares.
struct SharePair {
    std::vector<Ring> share0;
    std::vector<Ring> share1;
};

[[nodiscard]] inline SharePair share_additive(std::span<const Ring> values, ChaCha20Prg& prg) {
    SharePair out;
    out.share0.resize(values.size());
    out.share1.resize(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        const Ring r = prg.next_u64();
        out.share0[i] = r;
        out.share1[i] = values[i] - r;
    }
    return out;
}

[[nodiscard]] inline std::vector<Ring> reconstruct_additive(std::span<const Ring> share0,
                                                            std::span<const Ring> share1) {
    std::vector<Ring> out(share0.size());
    for (std::size_t i = 0; i < share0.size(); ++i) out[i] = share0[i] + share1[i];
    return out;
}

/// XOR (boolean) sharing of single bits, stored one bit per byte.
struct BitSharePair {
    std::vector<std::uint8_t> share0;
    std::vector<std::uint8_t> share1;
};

[[nodiscard]] inline BitSharePair share_bits(std::span<const std::uint8_t> bits, ChaCha20Prg& prg) {
    BitSharePair out;
    out.share0 = prg.next_bits(bits.size());
    out.share1.resize(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) out.share1[i] = bits[i] ^ out.share0[i];
    return out;
}

}  // namespace c2pi::crypto
