#pragma once

/// \file fixed_point.hpp
/// Fixed-point encoding over the ring Z_{2^64}.
///
/// Two-party protocols in this repo operate on additive secret shares over
/// Z_{2^64}. Real-valued network activations/weights are mapped into the
/// ring with a signed fixed-point code: encode(v) = round(v * 2^frac_bits)
/// interpreted modulo 2^64 (two's complement). A 64-bit ring with 16
/// fractional bits gives enough integer headroom that SecureML-style local
/// truncation has negligible wrap probability (see DESIGN.md §6).

#include <cmath>
#include <cstdint>

namespace c2pi {

/// Ring element type used by every MPC protocol in the repo.
using Ring = std::uint64_t;

/// Fixed-point format descriptor. Kept as a value type so engines and
/// protocols can be parameterized per experiment.
struct FixedPointFormat {
    int frac_bits = 16;  ///< fractional bits f; one real unit == 2^f

    [[nodiscard]] double scale() const { return std::ldexp(1.0, frac_bits); }

    /// Encode a real value into the ring (round-to-nearest, two's complement wrap).
    [[nodiscard]] Ring encode(double v) const {
        const double scaled = v * scale();
        // llround saturates UB on overflow; experiments keep |v| << 2^(63-f).
        return static_cast<Ring>(static_cast<std::int64_t>(std::llround(scaled)));
    }

    /// Decode a ring element back to a real value (signed interpretation).
    [[nodiscard]] double decode(Ring r) const {
        return static_cast<double>(static_cast<std::int64_t>(r)) / scale();
    }

    /// Local arithmetic-shift truncation used after fixed-point products:
    /// divides by 2^f preserving sign. On secret shares this is the
    /// SecureML probabilistic truncation (off by at most 1 ulp w.h.p.).
    [[nodiscard]] Ring truncate(Ring r) const {
        return static_cast<Ring>(static_cast<std::int64_t>(r) >> frac_bits);
    }

    /// The format is a public protocol parameter (serialized inside
    /// pi::ModelArtifact); both parties must agree on it exactly.
    friend bool operator==(const FixedPointFormat&, const FixedPointFormat&) = default;
};

}  // namespace c2pi
