#include "core/rng.hpp"

#include <cmath>

namespace c2pi {

float Rng::normal() {
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    // Box–Muller on (0,1] uniforms to avoid log(0).
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = static_cast<float>(radius * std::sin(angle));
    have_cached_normal_ = true;
    return static_cast<float>(radius * std::cos(angle));
}

void Rng::shuffle(std::vector<std::size_t>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
        const std::size_t j = uniform_index(i + 1);
        std::swap(v[i], v[j]);
    }
}

}  // namespace c2pi
