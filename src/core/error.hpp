#pragma once

/// \file error.hpp
/// Error handling for the c2pi library.
///
/// Following the C++ Core Guidelines (E.2, E.3) we report precondition and
/// invariant violations through exceptions carrying a source location, and
/// we keep the checking helpers as plain functions rather than macros
/// wherever the condition message can be built lazily enough.

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace c2pi {

/// Exception thrown when a c2pi API precondition or internal invariant is
/// violated. Carries the failing expression/message and source location.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(std::string_view message, const std::source_location& loc) {
    std::ostringstream os;
    os << loc.file_name() << ':' << loc.line() << " (" << loc.function_name()
       << "): " << message;
    throw Error(os.str());
}
}  // namespace detail

/// Verify a runtime condition; throws c2pi::Error with location on failure.
/// Used for API precondition checks that must stay active in release builds.
inline void require(bool condition, std::string_view message,
                    const std::source_location loc = std::source_location::current()) {
    if (!condition) detail::raise(message, loc);
}

/// Signal an unreachable/unsupported code path.
[[noreturn]] inline void fail(std::string_view message,
                              const std::source_location loc = std::source_location::current()) {
    detail::raise(message, loc);
}

}  // namespace c2pi
