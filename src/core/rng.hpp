#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation for experiments.
///
/// All stochastic components of the library (weight init, synthetic data,
/// attack initialisation, secret sharing randomness used in *tests*) draw
/// from this xoshiro256** generator so that every experiment in the paper
/// reproduction is bit-reproducible from a single seed. Cryptographic
/// randomness inside protocols uses crypto::ChaCha20Prg instead.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace c2pi {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Default seed used across the repo; every experiment is reproducible
/// from it (benches expose a --seed flag to override).
inline constexpr std::uint64_t kDefaultSeed = 0x00C2'F1DE'FA17'5EEDULL;

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, deterministic.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = kDefaultSeed) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        SplitMix64 sm(seed);
        for (auto& s : state_) s = sm.next();
        have_cached_normal_ = false;
    }

    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

    /// Uniform float in [lo, hi).
    float uniform(float lo, float hi) {
        return lo + static_cast<float>(uniform()) * (hi - lo);
    }

    /// Uniform integer in [0, n).  n must be > 0.
    std::uint64_t uniform_index(std::uint64_t n) {
        // Lemire's nearly-divisionless bounded sampling.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next_u64()) * static_cast<unsigned __int128>(n);
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Standard normal via Box–Muller (cached second value).
    float normal();

    /// Normal with mean/stddev.
    float normal(float mean, float stddev) { return mean + stddev * normal(); }

    /// Fisher–Yates shuffle of an index vector.
    void shuffle(std::vector<std::size_t>& v);

    // UniformRandomBitGenerator interface for <random> interop.
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next_u64(); }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

    std::uint64_t state_[4] = {};
    bool have_cached_normal_ = false;
    float cached_normal_ = 0.0F;
};

}  // namespace c2pi
