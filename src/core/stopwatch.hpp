#pragma once

/// \file stopwatch.hpp
/// Wall-clock timing helper used by benches and protocol statistics.

#include <chrono>

namespace c2pi {

/// Simple monotonic stopwatch; starts on construction.
class Stopwatch {
public:
    Stopwatch() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    /// Elapsed seconds since construction or last reset().
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace c2pi
