#pragma once

/// \file thread_pool.hpp
/// The two threading primitives of the serving stack: a fixed-size
/// `ThreadPool` with a blocking `parallel_for` for compute (the HE hot
/// loops: per-output-channel ciphertext responses, RNS limb transforms),
/// and a `WorkQueue` of dedicated workers for long-running blocking
/// tasks (whole serving sessions — see pi::ServingPool). ThreadPool
/// design constraints, in order:
///
///  * determinism of the *protocol* is the caller's job — the pool only
///    promises that every index runs exactly once and that parallel_for
///    returns after all of them finished;
///  * nested parallel_for calls run inline on the calling thread (the
///    per-channel tasks call poly_intt, whose limb loop is itself
///    parallelized — without the depth guard that would deadlock a small
///    pool);
///  * a pool of one thread executes everything inline on the caller, in
///    index order: `num_threads = 1` is bit-and-schedule-identical to the
///    pre-pool serial code;
///  * concurrent parallel_for calls from different threads (many server
///    sessions sharing one CompiledModel) are safe and share the workers.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/error.hpp"

namespace c2pi::core {

/// Hard cap on the pool size, matching the CompiledModel option
/// validation: an absurd C2PI_THREADS must not translate into a million
/// std::thread constructions.
inline constexpr int kMaxThreads = 1024;

/// Resolve a requested worker count: values > 0 pass through; 0 means
/// "auto" — the C2PI_THREADS environment variable if set and positive,
/// else std::thread::hardware_concurrency(). Clamped to [1, kMaxThreads].
[[nodiscard]] inline int resolve_thread_count(int requested) {
    int resolved = 0;
    if (requested > 0) {
        resolved = requested;
    } else if (const char* env = std::getenv("C2PI_THREADS");
               env != nullptr && env[0] != '\0' && std::atoi(env) > 0) {
        resolved = std::atoi(env);
    } else {
        const unsigned hw = std::thread::hardware_concurrency();
        resolved = hw == 0 ? 1 : static_cast<int>(hw);
    }
    return resolved > kMaxThreads ? kMaxThreads : resolved;
}

class ThreadPool {
public:
    /// `num_threads` counts the caller too: a pool of N spawns N-1
    /// workers and the thread calling parallel_for participates. 0 = auto
    /// (see resolve_thread_count).
    explicit ThreadPool(int num_threads = 0) : num_threads_(resolve_thread_count(num_threads)) {
        workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
        for (int i = 1; i < num_threads_; ++i)
            workers_.emplace_back([this] { worker_loop(); });
    }

    ~ThreadPool() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto& w : workers_) w.join();
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] int num_threads() const { return num_threads_; }

    /// Run fn(i) exactly once for every i in [begin, end), blocking until
    /// all finished. The calling thread participates. The first exception
    /// thrown by any fn(i) is rethrown here (remaining indices still run,
    /// so the pool is never left with orphaned work). Runs inline — in
    /// index order, no synchronization — when the pool has one thread,
    /// the range has one element, or the call is nested inside another
    /// parallel_for of any pool.
    void parallel_for(std::int64_t begin, std::int64_t end,
                      const std::function<void(std::int64_t)>& fn) const {
        const std::int64_t count = end - begin;
        if (count <= 0) return;
        if (num_threads_ == 1 || count == 1 || depth() > 0) {
            ++depth();
            try {
                for (std::int64_t i = begin; i < end; ++i) fn(i);
            } catch (...) {
                --depth();
                throw;
            }
            --depth();
            return;
        }
        auto job = std::make_shared<Job>();
        job->begin = begin;
        job->end = end;
        job->next.store(begin, std::memory_order_relaxed);
        job->fn = &fn;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            queue_.push_back(job);
        }
        cv_.notify_all();
        run_job(*job);
        std::unique_lock<std::mutex> lock(job->mutex);
        job->cv.wait(lock, [&] { return job->done.load(std::memory_order_acquire) == count; });
        if (job->error) std::rethrow_exception(job->error);
    }

private:
    /// One parallel_for invocation. Lives on the queue as a shared_ptr so
    /// a worker still draining indices can outlast the caller's wait.
    struct Job {
        std::int64_t begin = 0, end = 0;
        const std::function<void(std::int64_t)>* fn = nullptr;
        std::atomic<std::int64_t> next{0};
        std::atomic<std::int64_t> done{0};
        std::mutex mutex;
        std::condition_variable cv;
        std::exception_ptr error;
    };

    /// Per-thread nesting depth; static so one guard covers every pool.
    [[nodiscard]] static int& depth() {
        thread_local int d = 0;
        return d;
    }

    void run_job(Job& job) const {
        ++depth();
        const std::int64_t count = job.end - job.begin;
        for (;;) {
            const std::int64_t i = job.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= job.end) break;
            try {
                (*job.fn)(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(job.mutex);
                if (!job.error) job.error = std::current_exception();
            }
            if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
                // Lock guards against the waiter checking the predicate
                // between its load and its wait.
                const std::lock_guard<std::mutex> lock(job.mutex);
                job.cv.notify_all();
            }
        }
        --depth();
    }

    void worker_loop() const {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
            if (stop_) return;
            auto job = queue_.front();
            if (job->next.load(std::memory_order_relaxed) >= job->end) {
                queue_.pop_front();  // fully claimed; nothing left to help with
                continue;
            }
            lock.unlock();
            run_job(*job);
            lock.lock();
            // run_job returns only once every index is claimed, so the job
            // no longer belongs on the queue (it may already be gone).
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                if (*it == job) {
                    queue_.erase(it);
                    break;
                }
            }
        }
    }

    int num_threads_;
    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    mutable std::deque<std::shared_ptr<Job>> queue_;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

/// Fixed worker set consuming a bounded queue of long-running tasks —
/// the serving-side complement of ThreadPool. parallel_for splits one
/// computation across threads and blocks for all of it; a WorkQueue
/// hands each task (an accepted connection serving a whole session,
/// seconds of blocking protocol I/O) to one dedicated worker. Design
/// constraints, in order:
///
///  * the in-flight bound counts queued AND running tasks, so a caller
///    holding a connection gets an immediate accept/refuse answer
///    (`try_submit`) instead of an unbounded backlog — the refusal is
///    what pi::ServingPool turns into the wire-level BUSY frame;
///  * `drain()` is graceful: no new submissions, every already-accepted
///    task still runs to completion before the workers join — an
///    in-flight session is never dropped;
///  * tasks must not throw (serving code reports its own failures);
///    a task that does throw terminates, by design — swallowing it
///    here would hide a serving bug.
class WorkQueue {
public:
    /// `workers` dedicated threads; up to `workers + max_pending` tasks
    /// in flight (running + queued) before try_submit refuses.
    WorkQueue(int workers, int max_pending)
        : bound_(static_cast<std::size_t>(workers) + static_cast<std::size_t>(max_pending)) {
        require(workers >= 1 && workers <= kMaxThreads,
                "WorkQueue workers must lie in [1, 1024]");
        require(max_pending >= 0, "WorkQueue max_pending must be >= 0");
        workers_.reserve(static_cast<std::size_t>(workers));
        for (int i = 0; i < workers; ++i)
            workers_.emplace_back([this] { worker_loop(); });
    }

    ~WorkQueue() { drain(); }

    WorkQueue(const WorkQueue&) = delete;
    WorkQueue& operator=(const WorkQueue&) = delete;

    [[nodiscard]] int workers() const { return static_cast<int>(workers_.size()); }

    /// Queue a task unless the queue is draining or the in-flight bound
    /// is reached; returns whether the task was accepted. An accepted
    /// task is guaranteed to run, even if drain() is called right after.
    [[nodiscard]] bool try_submit(std::function<void()> task) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (draining_ || in_flight_ >= bound_) return false;
            ++in_flight_;
            queue_.push_back(std::move(task));
        }
        cv_work_.notify_one();
        return true;
    }

    /// Tasks currently queued or running.
    [[nodiscard]] std::size_t in_flight() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return in_flight_;
    }

    /// Refuse new submissions, run everything already accepted, join the
    /// workers. Idempotent; also run by the destructor.
    void drain() {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            draining_ = true;
            cv_idle_.wait(lock, [&] { return in_flight_ == 0; });
            stop_ = true;
        }
        cv_work_.notify_all();
        for (auto& w : workers_)
            if (w.joinable()) w.join();
    }

private:
    void worker_loop() {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            cv_work_.wait(lock, [&] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stop_ set and nothing left to run
            auto task = std::move(queue_.front());
            queue_.pop_front();
            lock.unlock();
            task();
            lock.lock();
            if (--in_flight_ == 0) cv_idle_.notify_all();
        }
    }

    const std::size_t bound_;
    mutable std::mutex mutex_;
    std::condition_variable cv_work_;  ///< wakes workers on new tasks / stop
    std::condition_variable cv_idle_;  ///< wakes drain() when in_flight_ hits 0
    std::deque<std::function<void()>> queue_;
    std::size_t in_flight_ = 0;  ///< queued + running
    bool draining_ = false;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

/// parallel_for over an optional pool: a null pool runs the plain serial
/// loop (the protocol code treats "no pool" and "one thread" identically).
inline void parallel_for(const ThreadPool* pool, std::int64_t begin, std::int64_t end,
                         const std::function<void(std::int64_t)>& fn) {
    if (pool == nullptr) {
        for (std::int64_t i = begin; i < end; ++i) fn(i);
        return;
    }
    pool->parallel_for(begin, end, fn);
}

/// Validate + resolve a serving thread count and build the pool for it.
/// A one-thread pool is pure overhead, so the result is null whenever the
/// request resolves to serial — callers treat "no pool" as the exact
/// serial schedule. Shared by CompiledModel and ClientModel so the two
/// halves of an artifact can never diverge on thread resolution.
[[nodiscard]] inline std::unique_ptr<ThreadPool> make_serving_pool(int num_threads) {
    require(num_threads >= 0 && num_threads <= kMaxThreads,
            "num_threads must lie in [0, 1024] (0 = auto)");
    const int resolved = resolve_thread_count(num_threads);
    if (resolved <= 1) return nullptr;
    return std::make_unique<ThreadPool>(resolved);
}

}  // namespace c2pi::core
