#pragma once

/// \file ssim.hpp
/// Structural similarity index (SSIM), Wang et al., IEEE TIP 2004 — the
/// metric the paper uses to decide whether an IDPA "succeeded" (the paper
/// uses failure threshold 0.3). Also PSNR for reference.
///
/// Images are CHW or NCHW tensors with values in [0, 1]; SSIM is computed
/// per channel with a Gaussian sliding window and averaged. The default
/// window is 7x7 / sigma 1.5 because the reproduction works on 16x16
/// synthetic images (the canonical 11x11 window barely fits); the window
/// size is a parameter so 32x32 runs can use 11.

#include "tensor/tensor.hpp"

namespace c2pi::metrics {

struct SsimOptions {
    std::int64_t window = 7;   ///< Gaussian window side (odd)
    float sigma = 1.5F;        ///< Gaussian window stddev
    float k1 = 0.01F;          ///< stabilisation constant (luminance)
    float k2 = 0.03F;          ///< stabilisation constant (contrast)
    float dynamic_range = 1.0F;
};

/// Mean SSIM between two images of identical shape ([C,H,W] or [1,C,H,W]).
/// Returns a value in [-1, 1]; 1 iff the images are identical.
[[nodiscard]] double ssim(const Tensor& a, const Tensor& b, const SsimOptions& opt = {});

/// Peak signal-to-noise ratio in dB (dynamic range 1.0).
[[nodiscard]] double psnr(const Tensor& a, const Tensor& b);

/// Top-1 accuracy of logits[n, classes] against labels.
[[nodiscard]] double top1_accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

}  // namespace c2pi::metrics
