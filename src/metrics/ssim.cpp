#include "metrics/ssim.hpp"

#include <cmath>
#include <vector>

namespace c2pi::metrics {

namespace {

/// Normalised 1-D Gaussian taps for a window of side `n`.
std::vector<double> gaussian_kernel(std::int64_t n, float sigma) {
    std::vector<double> k(static_cast<std::size_t>(n));
    const double c = (static_cast<double>(n) - 1.0) / 2.0;
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(i) - c;
        k[static_cast<std::size_t>(i)] = std::exp(-(d * d) / (2.0 * sigma * sigma));
        total += k[static_cast<std::size_t>(i)];
    }
    for (auto& v : k) v /= total;
    return k;
}

struct ImageView {
    const float* data;
    std::int64_t channels, height, width;
    [[nodiscard]] double at(std::int64_t c, std::int64_t y, std::int64_t x) const {
        return data[(c * height + y) * width + x];
    }
};

ImageView as_image(const Tensor& t) {
    if (t.rank() == 4) {
        require(t.dim(0) == 1, "ssim expects a single image");
        return {t.data(), t.dim(1), t.dim(2), t.dim(3)};
    }
    require(t.rank() == 3, "ssim expects [C,H,W] or [1,C,H,W]");
    return {t.data(), t.dim(0), t.dim(1), t.dim(2)};
}

/// Windowed Gaussian-weighted mean of f(y, x) centered at (cy, cx),
/// clamping taps at the border (replicate padding).
template <typename F>
double window_mean(const std::vector<double>& kern, std::int64_t h, std::int64_t w,
                   std::int64_t cy, std::int64_t cx, F&& f) {
    const std::int64_t n = static_cast<std::int64_t>(kern.size());
    const std::int64_t half = n / 2;
    double acc = 0.0;
    for (std::int64_t dy = 0; dy < n; ++dy) {
        std::int64_t y = cy + dy - half;
        y = std::min(std::max<std::int64_t>(y, 0), h - 1);
        for (std::int64_t dx = 0; dx < n; ++dx) {
            std::int64_t x = cx + dx - half;
            x = std::min(std::max<std::int64_t>(x, 0), w - 1);
            acc += kern[static_cast<std::size_t>(dy)] * kern[static_cast<std::size_t>(dx)] * f(y, x);
        }
    }
    return acc;
}

}  // namespace

double ssim(const Tensor& a, const Tensor& b, const SsimOptions& opt) {
    require(a.same_shape(b), "ssim requires identical shapes");
    require(opt.window % 2 == 1 && opt.window >= 3, "ssim window must be odd and >= 3");
    const ImageView ia = as_image(a);
    const ImageView ib = as_image(b);
    const auto kern = gaussian_kernel(opt.window, opt.sigma);

    const double c1 = (opt.k1 * opt.dynamic_range) * (opt.k1 * opt.dynamic_range);
    const double c2 = (opt.k2 * opt.dynamic_range) * (opt.k2 * opt.dynamic_range);

    double total = 0.0;
    std::int64_t count = 0;
    for (std::int64_t ch = 0; ch < ia.channels; ++ch) {
        for (std::int64_t y = 0; y < ia.height; ++y) {
            for (std::int64_t x = 0; x < ia.width; ++x) {
                const double mu_a = window_mean(kern, ia.height, ia.width, y, x,
                                                [&](auto yy, auto xx) { return ia.at(ch, yy, xx); });
                const double mu_b = window_mean(kern, ia.height, ia.width, y, x,
                                                [&](auto yy, auto xx) { return ib.at(ch, yy, xx); });
                const double aa = window_mean(kern, ia.height, ia.width, y, x, [&](auto yy, auto xx) {
                    const double v = ia.at(ch, yy, xx);
                    return v * v;
                });
                const double bb = window_mean(kern, ia.height, ia.width, y, x, [&](auto yy, auto xx) {
                    const double v = ib.at(ch, yy, xx);
                    return v * v;
                });
                const double ab = window_mean(kern, ia.height, ia.width, y, x, [&](auto yy, auto xx) {
                    return ia.at(ch, yy, xx) * ib.at(ch, yy, xx);
                });
                const double var_a = aa - mu_a * mu_a;
                const double var_b = bb - mu_b * mu_b;
                const double cov = ab - mu_a * mu_b;
                const double num = (2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2);
                const double den = (mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2);
                total += num / den;
                ++count;
            }
        }
    }
    return total / static_cast<double>(count);
}

double psnr(const Tensor& a, const Tensor& b) {
    require(a.same_shape(b), "psnr requires identical shapes");
    double mse = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        mse += d * d;
    }
    mse /= static_cast<double>(a.numel());
    if (mse <= 0.0) return 99.0;  // identical images: conventional cap
    return 10.0 * std::log10(1.0 / mse);
}

double top1_accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
    require(logits.rank() == 2, "top1_accuracy expects [batch, classes]");
    const std::int64_t n = logits.dim(0), k = logits.dim(1);
    require(static_cast<std::int64_t>(labels.size()) == n, "label count mismatch");
    std::int64_t correct = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t best = 0;
        for (std::int64_t j = 1; j < k; ++j)
            if (logits.at(i, j) > logits.at(i, best)) best = j;
        if (best == labels[static_cast<std::size_t>(i)]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace c2pi::metrics
