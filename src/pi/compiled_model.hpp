#pragma once

/// \file compiled_model.hpp
/// The server-only compile-once half of the serve-many PI API.
///
/// A `CompiledModel` embeds the public `pi::ModelArtifact` (architecture,
/// boundary, formats — everything the client may learn, artifact.hpp) and
/// adds the server secrets derived from the trained weights: ring-encoded
/// weights/biases (`server_data()`) and the precomputed NTT-form weight
/// plaintexts (`layer_caches()`). It is built exactly once per (model,
/// boundary, format, HE parameters) and is immutable afterwards, so a
/// single `const CompiledModel` can back any number of concurrent
/// `ServerSession`s (session.hpp) or a batched `InferenceService`
/// (service.hpp). The input owner's counterpart is `pi::ClientModel`,
/// compiled from the artifact alone — holding a CompiledModel means
/// holding weights, and only the model owner ever does.
///
/// All option validation happens here, at the API boundary: bad
/// fixed-point formats, non-power-of-two HE ring degrees, and boundaries
/// past the last linear op throw `c2pi::Error` immediately instead of
/// failing deep inside the protocol.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "he/bfv.hpp"
#include "mpc/gc_cache.hpp"
#include "net/cost_model.hpp"
#include "pi/artifact.hpp"

namespace c2pi::pi {

/// Protocol family used for the crypto layers.
///  * kCheetah — Huang et al. 2022 style: HE linear layers + OT millionaire
///    non-linear layers, online-only.
///  * kDelphi — Mishra et al. 2020 style: HE linear work and garbled-circuit
///    tables charged to an input-independent offline phase.
enum class PiBackend { kDelphi, kCheetah };

[[nodiscard]] inline const char* backend_name(PiBackend b) {
    return b == PiBackend::kDelphi ? "Delphi" : "Cheetah";
}

/// Per-inference traffic/time accounting (aggregated per phase). The
/// preprocessing bucket holds the kFss key shipment (KEYS frames), kept
/// apart from both the offline HE traffic and the online nonlinear bytes
/// the paper's tables compare.
struct PiStats {
    std::uint64_t offline_bytes = 0;
    std::uint64_t online_bytes = 0;
    std::uint64_t preprocess_bytes = 0;
    std::uint64_t offline_flights = 0;
    std::uint64_t online_flights = 0;
    std::uint64_t preprocess_flights = 0;
    double wall_seconds = 0.0;
    /// Seconds this party spent blocked on the network (recv waits plus
    /// pipelined-send backpressure/flush), split per phase. Filled by
    /// stats_from_transport; compute time for a phase is its wall share
    /// minus these. Deliberately NOT part of the byte/flight accounting
    /// that parity tests compare — timing is never deterministic.
    double offline_wait_seconds = 0.0;
    double online_wait_seconds = 0.0;
    double preprocess_wait_seconds = 0.0;

    [[nodiscard]] std::uint64_t total_bytes() const {
        return offline_bytes + online_bytes + preprocess_bytes;
    }
    [[nodiscard]] std::uint64_t total_flights() const {
        return offline_flights + online_flights + preprocess_flights;
    }
    [[nodiscard]] double total_wait_seconds() const {
        return offline_wait_seconds + online_wait_seconds + preprocess_wait_seconds;
    }

    /// End-to-end latency under a network model (DESIGN.md §4 subst. 5).
    [[nodiscard]] double latency_seconds(const net::NetworkModel& net) const {
        return net.latency_seconds(wall_seconds, total_bytes(), total_flights());
    }
};

/// Result of one private inference as seen by the client.
struct PiResult {
    Tensor logits;  ///< client's view of the inference output [1, classes]
    PiStats stats;
    std::int64_t crypto_linear_ops = 0;  ///< linear ops run under MPC
    std::int64_t hidden_linear_ops = 0;  ///< clear-layer ops hidden from the client
};

/// Immutable, setup-once server artifact. Construction runs every
/// input-independent step of the protocol setup (layer planning, weight
/// ring-encoding, BFV/NTT precompute); serving never re-runs them.
class CompiledModel {
public:
    struct Options {
        /// Per-sample input shape [C,H,W]; the plan is geometry-dependent.
        Shape input_chw;
        /// Last crypto operation; nullopt = full PI (all linear ops crypto).
        std::optional<nn::CutPoint> boundary;
        FixedPointFormat fmt{.frac_bits = 16};
        std::size_t he_ring_degree = 4096;
        /// Threads for the HE hot loops (per-output-channel responses,
        /// RNS limb transforms) of every session served from this
        /// artifact. 0 = auto: env C2PI_THREADS if set, else
        /// hardware_concurrency. 1 = the exact serial seed schedule.
        /// Any value produces bit-identical transcripts and logits.
        int num_threads = 0;
    };

    /// Compiles the model: builds the public ModelArtifact for these
    /// options, then the server secrets from the weights. The model is
    /// borrowed const and must outlive the CompiledModel; its weights
    /// must not change while sessions use this artifact. Throws
    /// c2pi::Error on invalid options.
    CompiledModel(const nn::Graph& model, Options options);

    /// Compiles server secrets for an existing public artifact (e.g. one
    /// agreed with clients out of band). Verifies that the artifact's
    /// plan matches `model` exactly — a mismatched pairing throws instead
    /// of serving a protocol the client's artifact cannot describe.
    CompiledModel(ModelArtifact artifact, const nn::Graph& model, int num_threads = 0);

    CompiledModel(const CompiledModel&) = delete;
    CompiledModel& operator=(const CompiledModel&) = delete;

    [[nodiscard]] const nn::Graph& model() const { return *model_; }
    /// The public half: ship this (serialized) to clients at session
    /// start; it contains no weights and nothing derived from them.
    [[nodiscard]] const ModelArtifact& artifact() const { return artifact_; }
    [[nodiscard]] const FixedPointFormat& fmt() const { return artifact_.fmt; }
    [[nodiscard]] const he::BfvContext& bfv() const { return bfv_; }
    [[nodiscard]] const Shape& input_shape() const { return artifact_.input_chw; }

    /// Crypto-layer plan (flat layers [0, crypto_end())); architecture only.
    [[nodiscard]] const std::vector<LayerPlan>& plan() const { return artifact_.plan; }
    /// Ring-encoded weights/biases for the crypto layers (server secret).
    [[nodiscard]] const std::vector<ServerLayerData>& server_data() const { return server_data_; }
    /// Per-layer HE precompute: encoders + NTT-form weight plaintexts.
    /// Sessions serve straight from this — no weight NTT runs online.
    [[nodiscard]] const std::vector<LayerCache>& layer_caches() const { return layer_caches_; }
    /// Resolved thread count (Options::num_threads after auto-detection).
    [[nodiscard]] int num_threads() const;

    /// One-past-the-end flat layer index of the crypto prefix.
    [[nodiscard]] std::size_t crypto_end() const { return artifact_.plan.size(); }
    /// The resolved cut point (last linear op for full PI).
    [[nodiscard]] const nn::CutPoint& cut() const { return artifact_.cut; }
    [[nodiscard]] bool full_pi() const { return artifact_.full_pi; }
    [[nodiscard]] std::int64_t crypto_linear_ops() const { return artifact_.crypto_linear_ops(); }
    [[nodiscard]] std::int64_t hidden_linear_ops() const { return artifact_.hidden_linear_ops(); }

    /// Shape of the boundary activation, per sample (no batch dim).
    [[nodiscard]] const Shape& boundary_shape() const { return artifact_.boundary_shape(); }
    /// Boundary activation shape with a batch dimension prepended.
    [[nodiscard]] Shape batched_boundary_shape(std::int64_t batch) const;

    /// Run the revealed clear-layer tail as ONE plaintext pass over a
    /// [N, ...boundary_shape()] batch of boundary activations; returns
    /// [N, classes]. Const and thread-safe (uses the cache-free
    /// Graph::infer_range). Invalid for full-PI artifacts.
    [[nodiscard]] Tensor run_clear_tail(const Tensor& boundary_activations) const;

    /// Number of clear-tail passes executed so far (diagnostic; lets tests
    /// assert that a batched service runs exactly one pass per batch).
    [[nodiscard]] std::uint64_t clear_tail_passes() const {
        return tail_passes_.load(std::memory_order_relaxed);
    }

    /// GC max-circuit cache shared by every session served from this
    /// model (mpc/gc_cache.hpp): per-model rather than process-wide, so
    /// concurrent sessions of different models never contend. Mutable
    /// state with internal locking, like tail_passes_.
    [[nodiscard]] mpc::GcCircuitCache& gc_cache() const { return gc_cache_; }

private:
    /// Tag for artifacts that need no model cross-check: the local
    /// compile path just built its artifact FROM the model, so re-running
    /// plan_layers to compare the plan against itself would only double
    /// the compile cost. Foreign artifacts go through checked_against.
    struct TrustedArtifact {
        ModelArtifact artifact;
    };
    CompiledModel(TrustedArtifact trusted, const nn::Graph& model, int num_threads);

    const nn::Graph* model_;
    ModelArtifact artifact_;
    /// Initialized before server_data_ so an invalid num_threads fails at
    /// the API boundary, not after ring-encoding every weight.
    std::unique_ptr<core::ThreadPool> pool_;  ///< null when serving serially
    std::vector<ServerLayerData> server_data_;
    he::BfvContext bfv_;                      ///< borrows pool_
    std::vector<LayerCache> layer_caches_;    ///< borrows server_data_ + bfv_
    mutable std::atomic<std::uint64_t> tail_passes_{0};
    mutable mpc::GcCircuitCache gc_cache_;
};

}  // namespace c2pi::pi
