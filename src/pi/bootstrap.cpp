#include "pi/bootstrap.hpp"

#include <cstring>

#include "crypto/hash.hpp"

namespace c2pi::pi {

namespace {

/// Want-byte values of bootstrap message 2 (docs/PROTOCOL.md §3).
constexpr std::uint8_t kWantShip = 0x00;
constexpr std::uint8_t kWantCached = 0x01;

}  // namespace

ArtifactDigest digest_of(std::span<const std::uint8_t> bytes) {
    return crypto::Sha256::digest(bytes);
}

std::string digest_hex(const ArtifactDigest& digest) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out(64, '0');
    for (std::size_t i = 0; i < digest.size(); ++i) {
        out[2 * i] = kHex[digest[i] >> 4];
        out[2 * i + 1] = kHex[digest[i] & 0x0F];
    }
    return out;
}

ArtifactDigest digest_from_hex(const std::string& hex) {
    require(hex.size() == 64, "artifact digest must be 64 hex characters");
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        fail("artifact digest: not a hex character");
    };
    ArtifactDigest digest{};
    for (std::size_t i = 0; i < digest.size(); ++i)
        digest[i] = static_cast<std::uint8_t>(nibble(hex[2 * i]) << 4 | nibble(hex[2 * i + 1]));
    return digest;
}

ArtifactSwap::ArtifactSwap(const ArtifactDigest& pinned, const ArtifactDigest& announced)
    : Error("artifact swap detected: server announced model " + digest_hex(announced).substr(0, 16) +
            "... but this client pinned " + digest_hex(pinned).substr(0, 16) + "...") {}

std::shared_ptr<const ClientModel> ArtifactCache::find(const ArtifactDigest& digest) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(digest);
    return it == cache_.end() ? nullptr : it->second;
}

void ArtifactCache::insert(const ArtifactDigest& digest,
                           std::shared_ptr<const ClientModel> model) {
    require(model != nullptr, "ArtifactCache::insert: null model");
    const std::lock_guard<std::mutex> lock(mutex_);
    cache_.emplace(digest, std::move(model));
}

std::size_t ArtifactCache::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

bool ship_artifact(net::Transport& transport, std::span<const std::uint8_t> bytes,
                   const ArtifactDigest& digest) {
    transport.send_artifact_bytes(digest);
    const auto want = transport.recv_artifact_bytes();
    require(want.size() == 1 && (want[0] == kWantShip || want[0] == kWantCached),
            "artifact bootstrap: malformed want reply");
    if (want[0] == kWantCached) return true;
    transport.send_artifact_bytes(bytes);
    return false;
}

Bootstrap fetch_artifact(net::Transport& transport, ArtifactCache* cache,
                         std::optional<ArtifactDigest> pinned, int num_threads) {
    Bootstrap result;
    const auto announced = transport.recv_artifact_bytes();  // ServerBusy propagates
    require(announced.size() == sizeof(ArtifactDigest),
            "artifact bootstrap: digest announcement has the wrong size");
    std::memcpy(result.digest.data(), announced.data(), result.digest.size());
    // Pin check BEFORE the want reply: on a swap the client just walks
    // away, and the server sees an ordinary client abort.
    if (pinned && *pinned != result.digest) throw ArtifactSwap(*pinned, result.digest);

    if (cache != nullptr) {
        if (auto hit = cache->find(result.digest)) {
            const std::uint8_t reply[1] = {kWantCached};
            transport.send_artifact_bytes(reply);
            result.model = std::move(hit);
            result.from_cache = true;
            return result;
        }
    }
    const std::uint8_t reply[1] = {kWantShip};
    transport.send_artifact_bytes(reply);
    const auto bytes = transport.recv_artifact_bytes();
    // The announcement is a commitment: shipment must hash to it, or the
    // server is corrupt/hostile and the session dies before compiling.
    require(digest_of(bytes) == result.digest,
            "artifact bootstrap: shipped artifact does not match the announced digest");
    result.model =
        std::make_shared<const ClientModel>(ModelArtifact::deserialize(bytes), num_threads);
    if (cache != nullptr) cache->insert(result.digest, result.model);
    return result;
}

}  // namespace c2pi::pi
