#include "pi/engine.hpp"

#include "mpc/linear.hpp"
#include "mpc/nonlinear.hpp"

namespace c2pi::pi {

namespace {

mpc::NonlinearBackend nonlinear_backend(PiBackend b) {
    return b == PiBackend::kDelphi ? mpc::NonlinearBackend::kGarbledCircuit
                                   : mpc::NonlinearBackend::kOtMillionaire;
}

/// AvgPool is linear: local window sums, multiply by encode(1/k^2) and
/// truncate (both parties independently).
std::vector<Ring> local_avgpool(std::span<const Ring> x, const LayerPlan& p,
                                const FixedPointFormat& fmt) {
    const std::int64_t c = p.in_shape[0], h = p.in_shape[1], w = p.in_shape[2];
    const std::int64_t oh = p.out_shape[1], ow = p.out_shape[2];
    const Ring inv = fmt.encode(1.0 / static_cast<double>(p.pool_kernel * p.pool_kernel));
    std::vector<Ring> out(static_cast<std::size_t>(c * oh * ow));
    std::size_t idx = 0;
    for (std::int64_t ch = 0; ch < c; ++ch)
        for (std::int64_t oy = 0; oy < oh; ++oy)
            for (std::int64_t ox = 0; ox < ow; ++ox, ++idx) {
                Ring acc = 0;
                for (std::int64_t ky = 0; ky < p.pool_kernel; ++ky)
                    for (std::int64_t kx = 0; kx < p.pool_kernel; ++kx)
                        acc += x[static_cast<std::size_t>(
                            (ch * h + oy * p.pool_stride + ky) * w + ox * p.pool_stride + kx)];
                out[idx] = fmt.truncate(acc * inv);
            }
    return out;
}

struct PartyRun {
    const std::vector<LayerPlan>& plan;
    const std::vector<ServerLayerData>* server_data;  // server only
    PiBackend backend;
    const FixedPointFormat& fmt;

    /// Walk the crypto layers; `share` is this party's share of the
    /// current activation. Sets phase per backend convention.
    std::vector<Ring> execute(mpc::PartyContext& ctx, std::vector<Ring> share) const {
        for (std::size_t i = 0; i < plan.size(); ++i) {
            const LayerPlan& p = plan[i];
            const bool offline_linear = backend == PiBackend::kDelphi;
            switch (p.op) {
                case PlanOp::kConv: {
                    if (offline_linear) ctx.transport().set_phase(net::Phase::kOffline);
                    if (ctx.is_server()) {
                        const auto& data = (*server_data)[i];
                        share = mpc::he_conv_server(ctx, p.geo, data.weights, data.bias2f, share);
                    } else {
                        share = mpc::he_conv_client(ctx, p.geo, share);
                    }
                    ctx.transport().set_phase(net::Phase::kOnline);
                    for (auto& v : share)
                        v = static_cast<Ring>(static_cast<std::int64_t>(v) >> fmt.frac_bits);
                    break;
                }
                case PlanOp::kLinear: {
                    if (offline_linear) ctx.transport().set_phase(net::Phase::kOffline);
                    if (ctx.is_server()) {
                        const auto& data = (*server_data)[i];
                        share = mpc::he_matvec_server(ctx, p.in_features, p.out_features,
                                                      data.weights, data.bias2f, share);
                    } else {
                        share = mpc::he_matvec_client(ctx, p.in_features, p.out_features, share);
                    }
                    ctx.transport().set_phase(net::Phase::kOnline);
                    for (auto& v : share)
                        v = static_cast<Ring>(static_cast<std::int64_t>(v) >> fmt.frac_bits);
                    break;
                }
                case PlanOp::kRelu:
                    share = mpc::secure_relu(ctx, share, nonlinear_backend(backend));
                    break;
                case PlanOp::kMaxPool: {
                    mpc::RingTensor t(p.in_shape, std::move(share));
                    share = mpc::secure_maxpool(ctx, t, p.pool_kernel, p.pool_stride,
                                                nonlinear_backend(backend))
                                .data;
                    break;
                }
                case PlanOp::kAvgPool:
                    share = local_avgpool(share, p, fmt);
                    break;
                case PlanOp::kFlatten:
                    break;  // NCHW flatten is a no-op on contiguous data
            }
        }
        return share;
    }
};

}  // namespace

PiEngine::PiEngine(nn::Sequential& model, Options options)
    : model_(&model),
      options_(options),
      bfv_(he::BfvContext::Params{.n = options.he_ring_degree, .limbs = 4, .noise_bound = 4}) {}

PiResult PiEngine::run(const Tensor& input) {
    require(input.rank() == 4 && input.dim(0) == 1, "engine expects a single [1,C,H,W] input");
    const Shape chw{input.dim(1), input.dim(2), input.dim(3)};

    const nn::CutPoint cut = options_.boundary.value_or(
        nn::CutPoint{.linear_index = model_->num_linear_ops(), .after_relu = false});
    const std::size_t cut_flat = model_->flat_cut_index(cut);
    const bool full_pi = cut_flat + 1 >= model_->size() ||
                         cut.linear_index == model_->num_linear_ops();

    const auto plan = plan_layers(*model_, chw, cut_flat + 1);
    const auto server_data = extract_server_data(*model_, cut_flat + 1, options_.fmt);

    const crypto::Block128 session_seed{options_.seed, options_.seed ^ 0xC2F1};
    net::DuplexChannel channel;
    Tensor logits;

    const auto run_result = net::run_two_party(
        channel,
        // ---------------------------------------------------------- server ---
        [&](net::Transport& t) {
            mpc::PartyContext ctx(t, options_.fmt, bfv_, session_seed);
            // Charge the dealer/base-OT setup to the offline phase.
            t.set_phase(net::Phase::kOffline);
            t.send_bytes(std::vector<std::uint8_t>(crypto::OtSetupPair::setup_traffic_bytes()));
            t.set_phase(net::Phase::kOnline);

            std::vector<Ring> share(static_cast<std::size_t>(shape_numel(chw)), 0);
            const PartyRun runner{plan, &server_data, options_.backend, options_.fmt};
            share = runner.execute(ctx, std::move(share));

            if (full_pi) {
                // Reveal logits to the client only.
                (void)mpc::reveal_shares_to(ctx, share, mpc::kClient);
                return;
            }
            // C2PI: receive the client's (noised) share, finish in the clear.
            const auto boundary = mpc::reveal_shares_to(ctx, share, mpc::kServer);
            const Shape& bshape = plan.back().out_shape;
            Tensor act(bshape.size() == 1 ? Shape{1, bshape[0]}
                                          : Shape{1, bshape[0], bshape[1], bshape[2]});
            for (std::int64_t i = 0; i < act.numel(); ++i)
                act[i] = static_cast<float>(
                    options_.fmt.decode(boundary[static_cast<std::size_t>(i)]));
            const Tensor out = model_->forward_range(cut_flat + 1, model_->size(), act);
            // Ship the plaintext logits to the client (floats).
            std::vector<Ring> packed(static_cast<std::size_t>(out.numel()));
            for (std::int64_t i = 0; i < out.numel(); ++i)
                packed[static_cast<std::size_t>(i)] = options_.fmt.encode(out[i]);
            t.send_u64s(packed);
        },
        // ---------------------------------------------------------- client ---
        [&](net::Transport& t) {
            mpc::PartyContext ctx(t, options_.fmt, bfv_, session_seed);
            t.set_phase(net::Phase::kOffline);
            (void)t.recv_bytes();  // dealer setup
            t.set_phase(net::Phase::kOnline);
            crypto::ChaCha20Prg key_prg(crypto::Block128{options_.seed ^ 0x5E17, 0x11}, 3);
            ctx.set_client_key(bfv_.keygen(key_prg));

            std::vector<Ring> share(static_cast<std::size_t>(shape_numel(chw)));
            for (std::size_t i = 0; i < share.size(); ++i)
                share[i] = options_.fmt.encode(input[static_cast<std::int64_t>(i)]);
            const PartyRun runner{plan, nullptr, options_.backend, options_.fmt};
            share = runner.execute(ctx, std::move(share));

            if (full_pi) {
                const auto out = mpc::reveal_shares_to(ctx, share, mpc::kClient);
                logits = Tensor({1, static_cast<std::int64_t>(out.size())});
                for (std::size_t i = 0; i < out.size(); ++i)
                    logits[static_cast<std::int64_t>(i)] =
                        static_cast<float>(options_.fmt.decode(out[i]));
                return;
            }
            // C2PI: add uniform noise to the share before revealing it.
            if (options_.noise_lambda > 0.0F) {
                for (auto& v : share) {
                    const double u =
                        (static_cast<double>(ctx.prg().next_u64() >> 11) * 0x1.0p-53 * 2.0 - 1.0) *
                        options_.noise_lambda;
                    v += options_.fmt.encode(u);
                }
            }
            (void)mpc::reveal_shares_to(ctx, share, mpc::kServer);
            const auto packed = t.recv_u64s();
            logits = Tensor({1, static_cast<std::int64_t>(packed.size())});
            for (std::size_t i = 0; i < packed.size(); ++i)
                logits[static_cast<std::int64_t>(i)] =
                    static_cast<float>(options_.fmt.decode(packed[i]));
        });

    PiResult result;
    result.logits = std::move(logits);
    result.stats.wall_seconds = run_result.wall_seconds;
    const auto& s = run_result.stats;
    result.stats.offline_bytes = s.phase_bytes(net::Phase::kOffline);
    result.stats.online_bytes = s.phase_bytes(net::Phase::kOnline);
    result.stats.offline_flights = s.flights[static_cast<int>(net::Phase::kOffline)];
    result.stats.online_flights = s.flights[static_cast<int>(net::Phase::kOnline)];
    result.crypto_linear_ops = cut.linear_index;
    result.hidden_linear_ops = model_->num_linear_ops() - cut.linear_index;
    return result;
}

}  // namespace c2pi::pi
