#include "pi/engine.hpp"

namespace c2pi::pi {

PiResult PiEngine::run(const Tensor& input) {
    require(input.rank() == 4 && input.dim(0) == 1, "engine expects a single [1,C,H,W] input");
    const Shape chw{input.dim(1), input.dim(2), input.dim(3)};
    if (compiled_ == nullptr || compiled_->input_shape() != chw) {
        compiled_ = std::make_unique<CompiledModel>(
            *model_, CompiledModel::Options{.input_chw = chw,
                                            .boundary = options_.boundary,
                                            .fmt = options_.fmt,
                                            .he_ring_degree = options_.he_ring_degree});
    }
    const SessionConfig config{.backend = options_.backend,
                               .noise_lambda = options_.noise_lambda,
                               .seed = options_.seed};
    return run_private_inference(*compiled_, config, input);
}

}  // namespace c2pi::pi
