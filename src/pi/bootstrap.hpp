#pragma once

/// \file bootstrap.hpp
/// Resumable session bootstrap: digest-first artifact shipment.
///
/// The session's ARTIFACT exchange (docs/PROTOCOL.md §3) is three
/// messages, all in kArtifact frames and — like the handshake — never
/// metered in ChannelStats:
///
///   1. server -> client: the SHA-256 digest of the serialized artifact
///      (32 bytes). This is the frame the BUSY rejection replaces, so
///      the overload path still fires before the client has sent
///      anything past the handshake.
///   2. client -> server: one want byte. 0x00 = "ship it";
///      0x01 = "I hold these exact bytes — skip".
///   3. server -> client: the full artifact, only if wanted.
///
/// A reconnecting client (retry after BUSY, restart after a fault) that
/// kept its `ArtifactCache` resumes with message 2 = 0x01 and pays zero
/// artifact bytes and zero ClientModel recompilation. The digest also
/// pins the session: a client passes the digest of a previous session
/// and a server that swapped models mid-air is caught *before* any
/// protocol traffic (typed `ArtifactSwap`), closing the ROADMAP's
/// artifact-pinning gap.

#include <array>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/transport.hpp"
#include "pi/artifact.hpp"

namespace c2pi::pi {

/// SHA-256 of the serialized artifact bytes — the session's model
/// identity on the wire.
using ArtifactDigest = std::array<std::uint8_t, 32>;

[[nodiscard]] ArtifactDigest digest_of(std::span<const std::uint8_t> bytes);

/// Lowercase hex, for logs and the pi_client --pin flag.
[[nodiscard]] std::string digest_hex(const ArtifactDigest& digest);
/// Parse digest_hex output (exactly 64 hex chars); throws c2pi::Error.
[[nodiscard]] ArtifactDigest digest_from_hex(const std::string& hex);

/// The server model changed identity across a reconnect: the announced
/// digest does not match the one this client pinned. Typed so a client
/// can refuse to silently continue against a swapped model.
struct ArtifactSwap final : Error {
    ArtifactSwap(const ArtifactDigest& pinned, const ArtifactDigest& announced);
};

/// Client-side cache of compiled artifacts, keyed by digest. Thread-safe;
/// entries are shared-const so concurrent sessions reuse one ClientModel.
/// Sized for serving clients that talk to a handful of servers — entries
/// are never evicted (a ClientModel is a few MB of encoder tables).
class ArtifactCache {
public:
    [[nodiscard]] std::shared_ptr<const ClientModel> find(const ArtifactDigest& digest) const;
    void insert(const ArtifactDigest& digest, std::shared_ptr<const ClientModel> model);
    [[nodiscard]] std::size_t size() const;

private:
    struct Hash {
        std::size_t operator()(const ArtifactDigest& d) const {
            std::size_t h;  // first bytes of a SHA-256 are already uniform
            std::memcpy(&h, d.data(), sizeof(h));
            return h;
        }
    };
    mutable std::mutex mutex_;
    std::unordered_map<ArtifactDigest, std::shared_ptr<const ClientModel>, Hash> cache_;
};

/// Server side of the exchange. `bytes` is the serialized artifact,
/// `digest` its (precomputed) SHA-256. Returns true when the client
/// held the bytes and shipment was skipped.
bool ship_artifact(net::Transport& transport, std::span<const std::uint8_t> bytes,
                   const ArtifactDigest& digest);

/// What fetch_artifact hands back: the compiled client model, the
/// digest that identifies it (pass as `pinned` on reconnect), and
/// whether the cache made shipment unnecessary.
struct Bootstrap {
    std::shared_ptr<const ClientModel> model;
    ArtifactDigest digest{};
    bool from_cache = false;
};

/// Client side of the exchange. With a `cache`, a digest hit skips
/// shipment and recompilation; without one every call ships. A `pinned`
/// digest from a previous session turns a mid-air model swap into a
/// typed ArtifactSwap before any protocol traffic. Shipped bytes are
/// verified against the announced digest before compilation — a server
/// whose shipment does not match its announcement is a protocol
/// violation, not a cache poisoning. `net::ServerBusy` propagates from
/// the first receive (the BUSY frame replaces the digest).
[[nodiscard]] Bootstrap fetch_artifact(net::Transport& transport, ArtifactCache* cache,
                                       std::optional<ArtifactDigest> pinned = std::nullopt,
                                       int num_threads = 0);

}  // namespace c2pi::pi
