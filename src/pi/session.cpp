#include "pi/session.hpp"

#include "mpc/linear.hpp"
#include "mpc/nonlinear.hpp"

namespace c2pi::pi {

namespace {

mpc::NonlinearBackend nonlinear_backend(PiBackend b) {
    return b == PiBackend::kDelphi ? mpc::NonlinearBackend::kGarbledCircuit
                                   : mpc::NonlinearBackend::kOtMillionaire;
}

/// AvgPool is linear: local window sums, multiply by encode(1/k^2) and
/// truncate (both parties independently).
std::vector<Ring> local_avgpool(std::span<const Ring> x, const LayerPlan& p,
                                const FixedPointFormat& fmt) {
    const std::int64_t c = p.in_shape[0], h = p.in_shape[1], w = p.in_shape[2];
    const std::int64_t oh = p.out_shape[1], ow = p.out_shape[2];
    const Ring inv = fmt.encode(1.0 / static_cast<double>(p.pool_kernel * p.pool_kernel));
    std::vector<Ring> out(static_cast<std::size_t>(c * oh * ow));
    std::size_t idx = 0;
    for (std::int64_t ch = 0; ch < c; ++ch)
        for (std::int64_t oy = 0; oy < oh; ++oy)
            for (std::int64_t ox = 0; ox < ow; ++ox, ++idx) {
                Ring acc = 0;
                for (std::int64_t ky = 0; ky < p.pool_kernel; ++ky)
                    for (std::int64_t kx = 0; kx < p.pool_kernel; ++kx)
                        acc += x[static_cast<std::size_t>(
                            (ch * h + oy * p.pool_stride + ky) * w + ox * p.pool_stride + kx)];
                out[idx] = fmt.truncate(acc * inv);
            }
    return out;
}

struct PartyRun {
    const std::vector<LayerPlan>& plan;
    const std::vector<LayerCache>& caches;  ///< compile-time HE precompute
    PiBackend backend;
    const FixedPointFormat& fmt;

    /// Walk the crypto layers; `share` is this party's share of the
    /// current activation. Sets phase per backend convention. The server
    /// serves straight from the compiled caches (no weight encode/NTT
    /// online); the client reuses their encoder geometry.
    std::vector<Ring> execute(mpc::PartyContext& ctx, std::vector<Ring> share) const {
        for (std::size_t i = 0; i < plan.size(); ++i) {
            const LayerPlan& p = plan[i];
            const bool offline_linear = backend == PiBackend::kDelphi;
            switch (p.op) {
                case PlanOp::kConv: {
                    if (offline_linear) ctx.transport().set_phase(net::Phase::kOffline);
                    const mpc::ConvLayerCache& cache = *caches[i].conv;
                    if (ctx.is_server()) {
                        share = mpc::he_conv_server(ctx, cache, share);
                    } else {
                        share = mpc::he_conv_client(ctx, cache.enc, share);
                    }
                    ctx.transport().set_phase(net::Phase::kOnline);
                    for (auto& v : share)
                        v = static_cast<Ring>(static_cast<std::int64_t>(v) >> fmt.frac_bits);
                    break;
                }
                case PlanOp::kLinear: {
                    if (offline_linear) ctx.transport().set_phase(net::Phase::kOffline);
                    const mpc::MatVecLayerCache& cache = *caches[i].matvec;
                    if (ctx.is_server()) {
                        share = mpc::he_matvec_server(ctx, cache, share);
                    } else {
                        share = mpc::he_matvec_client(ctx, cache.enc, share);
                    }
                    ctx.transport().set_phase(net::Phase::kOnline);
                    for (auto& v : share)
                        v = static_cast<Ring>(static_cast<std::int64_t>(v) >> fmt.frac_bits);
                    break;
                }
                case PlanOp::kRelu:
                    share = mpc::secure_relu(ctx, share, nonlinear_backend(backend));
                    break;
                case PlanOp::kMaxPool: {
                    mpc::RingTensor t(p.in_shape, std::move(share));
                    share = mpc::secure_maxpool(ctx, t, p.pool_kernel, p.pool_stride,
                                                nonlinear_backend(backend))
                                .data;
                    break;
                }
                case PlanOp::kAvgPool:
                    share = local_avgpool(share, p, fmt);
                    break;
                case PlanOp::kFlatten:
                    break;  // NCHW flatten is a no-op on contiguous data
            }
        }
        return share;
    }
};

crypto::Block128 session_seed(const SessionConfig& config) {
    return crypto::Block128{config.seed, config.seed ^ 0xC2F1};
}

}  // namespace

void ServerSession::run(net::Transport& transport) const {
    run(transport, [this](const Tensor& boundary) { return model_->run_clear_tail(boundary); });
}

void ServerSession::run(net::Transport& transport, const TailFn& tail) const {
    const CompiledModel& cm = *model_;
    mpc::PartyContext ctx(transport, cm.fmt(), cm.bfv(), session_seed(config_));
    // Charge the dealer/base-OT setup to the offline phase.
    transport.set_phase(net::Phase::kOffline);
    transport.send_bytes(std::vector<std::uint8_t>(crypto::OtSetupPair::setup_traffic_bytes()));
    transport.set_phase(net::Phase::kOnline);

    std::vector<Ring> share(static_cast<std::size_t>(shape_numel(cm.input_shape())), 0);
    const PartyRun runner{cm.plan(), cm.layer_caches(), config_.backend, cm.fmt()};
    share = runner.execute(ctx, std::move(share));

    if (cm.full_pi()) {
        // Reveal logits to the client only.
        (void)mpc::reveal_shares_to(ctx, share, mpc::kClient);
        return;
    }
    // C2PI: receive the client's (noised) share, finish in the clear.
    const auto boundary = mpc::reveal_shares_to(ctx, share, mpc::kServer);
    Tensor act(cm.batched_boundary_shape(1));
    for (std::int64_t i = 0; i < act.numel(); ++i)
        act[i] = static_cast<float>(cm.fmt().decode(boundary[static_cast<std::size_t>(i)]));
    const Tensor out = tail(act);
    // Ship the plaintext logits to the client (floats).
    std::vector<Ring> packed(static_cast<std::size_t>(out.numel()));
    for (std::int64_t i = 0; i < out.numel(); ++i)
        packed[static_cast<std::size_t>(i)] = cm.fmt().encode(out[i]);
    transport.send_u64s(packed);
}

void validate_client_input(const ModelArtifact& artifact, const Tensor& input) {
    require(input.rank() == 4 && input.dim(0) == 1, "expects a single [1,C,H,W] input");
    require(Shape{input.dim(1), input.dim(2), input.dim(3)} == artifact.input_chw,
            "input shape does not match the compiled input shape");
}

Tensor ClientSession::run(net::Transport& transport, const Tensor& input) const {
    const ModelArtifact& art = *artifact_;
    validate_client_input(art, input);

    mpc::PartyContext ctx(transport, art.fmt, *bfv_, session_seed(config_));
    transport.set_phase(net::Phase::kOffline);
    (void)transport.recv_bytes();  // dealer setup
    transport.set_phase(net::Phase::kOnline);
    crypto::ChaCha20Prg key_prg(crypto::Block128{config_.seed ^ 0x5E17, 0x11}, 3);
    ctx.set_client_key(bfv_->keygen(key_prg));

    std::vector<Ring> share(static_cast<std::size_t>(input.numel()));
    for (std::size_t i = 0; i < share.size(); ++i)
        share[i] = art.fmt.encode(input[static_cast<std::int64_t>(i)]);
    const PartyRun runner{art.plan, *caches_, config_.backend, art.fmt};
    share = runner.execute(ctx, std::move(share));

    Tensor logits;
    if (art.full_pi) {
        const auto out = mpc::reveal_shares_to(ctx, share, mpc::kClient);
        logits = Tensor({1, static_cast<std::int64_t>(out.size())});
        for (std::size_t i = 0; i < out.size(); ++i)
            logits[static_cast<std::int64_t>(i)] = static_cast<float>(art.fmt.decode(out[i]));
        return logits;
    }
    // C2PI: add uniform noise to the share before revealing it.
    if (config_.noise_lambda > 0.0F) {
        for (auto& v : share) {
            const double u =
                (static_cast<double>(ctx.prg().next_u64() >> 11) * 0x1.0p-53 * 2.0 - 1.0) *
                config_.noise_lambda;
            v += art.fmt.encode(u);
        }
    }
    (void)mpc::reveal_shares_to(ctx, share, mpc::kServer);
    const auto packed = transport.recv_u64s();
    logits = Tensor({1, static_cast<std::int64_t>(packed.size())});
    for (std::size_t i = 0; i < packed.size(); ++i)
        logits[static_cast<std::int64_t>(i)] = static_cast<float>(art.fmt.decode(packed[i]));
    return logits;
}

PiStats stats_from_channel(const net::ChannelStats& channel) {
    PiStats stats;
    stats.offline_bytes = channel.phase_bytes(net::Phase::kOffline);
    stats.online_bytes = channel.phase_bytes(net::Phase::kOnline);
    stats.offline_flights = channel.phase_flights(net::Phase::kOffline);
    stats.online_flights = channel.phase_flights(net::Phase::kOnline);
    return stats;
}

PiStats stats_from_run(const net::RunResult& run) {
    PiStats stats = stats_from_channel(run.stats);
    stats.wall_seconds = run.wall_seconds;
    return stats;
}

PiResult run_private_inference(const CompiledModel& model, const SessionConfig& config,
                               const Tensor& input) {
    // Validate before spawning the parties: a client-side failure mid-
    // protocol poisons the peer, whose secondary error would mask the
    // root cause (run_two_party rethrows the server's exception first).
    validate_client_input(model, input);
    const ServerSession server(model, config);
    const ClientSession client(model, config);

    net::DuplexChannel channel;
    Tensor logits;
    const auto run = net::run_two_party(
        channel, [&](net::Transport& t) { server.run(t); },
        [&](net::Transport& t) { logits = client.run(t, input); });

    PiResult result;
    result.logits = std::move(logits);
    result.stats = stats_from_run(run);
    result.crypto_linear_ops = model.crypto_linear_ops();
    result.hidden_linear_ops = model.hidden_linear_ops();
    return result;
}

}  // namespace c2pi::pi
