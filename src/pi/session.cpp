#include "pi/session.hpp"

#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>

#include "fss/compare.hpp"
#include "fss/key_pool.hpp"
#include "mpc/linear.hpp"
#include "mpc/nonlinear.hpp"

namespace c2pi::pi {

bool pipeline_default() {
    const char* env = std::getenv("C2PI_PIPELINE");
    if (env == nullptr) return true;
    const std::string_view v(env);
    return !(v == "0" || v == "off");
}

mpc::NonlinearBackend resolve_nonlinear(const SessionConfig& config) {
    if (config.nonlinear.has_value()) return *config.nonlinear;
    return config.backend == PiBackend::kDelphi ? mpc::NonlinearBackend::kGarbledCircuit
                                                : mpc::NonlinearBackend::kOtMillionaire;
}

const char* nonlinear_name(mpc::NonlinearBackend backend) {
    switch (backend) {
        case mpc::NonlinearBackend::kGarbledCircuit:
            return "gc";
        case mpc::NonlinearBackend::kOtMillionaire:
            return "ot";
        case mpc::NonlinearBackend::kFss:
            return "fss";
    }
    fail("unknown nonlinear backend");
}

NonlinearMismatch::NonlinearMismatch(mpc::NonlinearBackend server_choice,
                                     mpc::NonlinearBackend client_choice)
    : Error(std::string("nonlinear backend mismatch: server announced '") +
            nonlinear_name(server_choice) + "' but this client was configured for '" +
            nonlinear_name(client_choice) + "'") {}

namespace {

/// AvgPool is linear: local window sums, multiply by encode(1/k^2) and
/// truncate (both parties independently).
std::vector<Ring> local_avgpool(std::span<const Ring> x, const LayerPlan& p,
                                const FixedPointFormat& fmt) {
    const std::int64_t c = p.in_shape[0], h = p.in_shape[1], w = p.in_shape[2];
    const std::int64_t oh = p.out_shape[1], ow = p.out_shape[2];
    const Ring inv = fmt.encode(1.0 / static_cast<double>(p.pool_kernel * p.pool_kernel));
    std::vector<Ring> out(static_cast<std::size_t>(c * oh * ow));
    std::size_t idx = 0;
    for (std::int64_t ch = 0; ch < c; ++ch)
        for (std::int64_t oy = 0; oy < oh; ++oy)
            for (std::int64_t ox = 0; ox < ow; ++ox, ++idx) {
                Ring acc = 0;
                for (std::int64_t ky = 0; ky < p.pool_kernel; ++ky)
                    for (std::int64_t kx = 0; kx < p.pool_kernel; ++kx)
                        acc += x[static_cast<std::size_t>(
                            (ch * h + oy * p.pool_stride + ky) * w + ox * p.pool_stride + kx)];
                out[idx] = fmt.truncate(acc * inv);
            }
    return out;
}

/// GlobalAvgPool is linear, like AvgPool: local channel-plane sums times
/// encode(1/(h*w)), truncated — no protocol rounds on either side.
std::vector<Ring> local_global_avgpool(std::span<const Ring> x, const LayerPlan& p,
                                       const FixedPointFormat& fmt) {
    const std::int64_t c = p.in_shape[0];
    const std::int64_t plane = p.in_shape[1] * p.in_shape[2];
    const Ring inv = fmt.encode(1.0 / static_cast<double>(plane));
    std::vector<Ring> out(static_cast<std::size_t>(c));
    for (std::int64_t ch = 0; ch < c; ++ch) {
        Ring acc = 0;
        for (std::int64_t k = 0; k < plane; ++k)
            acc += x[static_cast<std::size_t>(ch * plane + k)];
        out[static_cast<std::size_t>(ch)] = fmt.truncate(acc * inv);
    }
    return out;
}

/// Canonical post-nonlinear resharing: the client replaces its output
/// share with fresh draws from the dedicated share stream and shifts the
/// difference to the server (delta is one-time-padded by the fresh draw,
/// so the server learns nothing). The nonlinear backends reshare
/// differently and consume the party PRG differently; re-anchoring every
/// share that enters a linear layer to the backend-independent
/// share_prg() stream is what makes the local truncation error — and
/// therefore the logits — bit-identical across backends (ISSUE 6's
/// parity pin, tested in fss_test.cpp).
std::vector<Ring> reshare_canonical(mpc::PartyContext& ctx, std::vector<Ring> share) {
    if (ctx.is_server()) {
        std::vector<Ring> delta;
        ctx.transport().recv_u64s_into(ctx.recv_scratch(), delta);
        require(delta.size() == share.size(), "reshare delta size mismatch");
        for (std::size_t i = 0; i < share.size(); ++i) share[i] += delta[i];
    } else {
        std::vector<Ring> delta(share.size());
        for (std::size_t i = 0; i < share.size(); ++i) {
            const Ring fresh = ctx.share_prg().next_u64();
            delta[i] = share[i] - fresh;
            share[i] = fresh;
        }
        ctx.transport().send_u64s(delta);
    }
    return share;
}

/// Cross-layer overlap (pipelined sessions, server only): while a
/// nonlinear layer's OT/GC/FSS round trips are in flight, pre-draw the
/// NEXT linear layer's output masks from share_prg() on a helper thread
/// and stash them in the context. The server's share stream is consumed
/// ONLY by linear-layer masks, in layer order (context.hpp), so drawing
/// them early cannot change any value — next_mask_draw() replays the
/// stash in the exact order the live stream would have produced. The
/// client never prefetches: its share stream also feeds encryption noise
/// and post-nonlinear resharing, which interleave with these rounds.
/// Synchronization is by thread create/join only; the protocol thread
/// never touches share_prg() while the helper runs.
class MaskPrefetch {
public:
    MaskPrefetch(mpc::PartyContext& ctx, const std::vector<LayerPlan>& plan, std::size_t after)
        : ctx_(ctx) {
        if (!ctx_.is_server() || !ctx_.pipeline() || ctx_.has_stashed_mask_draws()) return;
        std::int64_t count = 0;
        for (std::size_t j = after + 1; j < plan.size(); ++j) {
            if (plan[j].op == PlanOp::kConv || plan[j].op == PlanOp::kLinear) {
                count = shape_numel(plan[j].out_shape);
                break;
            }
        }
        if (count <= 0) return;
        thread_ = std::thread([this, count] {
            draws_.resize(static_cast<std::size_t>(count));
            for (auto& d : draws_) d = ctx_.share_prg().next_u64();
        });
    }

    /// Joins and hands the draws to the context. Call after the nonlinear
    /// layer completes; if an exception unwinds past instead, the
    /// destructor just joins — the session is dead, the stream state
    /// no longer matters.
    void commit() {
        if (!thread_.joinable()) return;
        thread_.join();
        ctx_.stash_mask_draws(std::move(draws_));
    }

    ~MaskPrefetch() {
        if (thread_.joinable()) thread_.join();
    }
    MaskPrefetch(const MaskPrefetch&) = delete;
    MaskPrefetch& operator=(const MaskPrefetch&) = delete;

private:
    mpc::PartyContext& ctx_;
    std::vector<Ring> draws_;
    std::thread thread_;
};

struct PartyRun {
    const std::vector<LayerPlan>& plan;
    const std::vector<LayerCache>& caches;  ///< compile-time HE precompute
    PiBackend backend;
    const FixedPointFormat& fmt;
    mpc::NonlinearBackend nonlinear;  ///< negotiated at session start

    /// Walk the planned DAG; `share` is this party's share of the
    /// boundary input. Sets phase per backend convention. The server
    /// serves straight from the compiled caches (no weight encode/NTT
    /// online); the client reuses their encoder geometry.
    ///
    /// Plan entries execute in plan order (a topological order by
    /// construction); each entry's output share is kept live until its
    /// last consumer, so a chain plan degenerates to the pre-DAG
    /// move-through-one-buffer walk — identical traffic, identical PRG
    /// consumption, identical transcripts. Residual adds are local share
    /// additions: additive secret sharing makes them free (zero rounds,
    /// zero bytes — pinned by pi_test's residual stats test).
    std::vector<Ring> execute(mpc::PartyContext& ctx, std::vector<Ring> share) const {
        const std::size_t n = plan.size();
        // Slot s holds the share of entry s-1's output (slot 0 = the
        // input); last_use[s] is the index of its final consumer.
        std::vector<std::size_t> last_use(n + 1, 0);
        for (std::size_t i = 0; i < n; ++i) {
            last_use[static_cast<std::size_t>(plan[i].input0 + 1)] = i;
            if (plan[i].op == PlanOp::kResidualAdd)
                last_use[static_cast<std::size_t>(plan[i].input1 + 1)] = i;
        }
        std::vector<std::vector<Ring>> outs(n);
        const auto take = [&](std::size_t i, std::int64_t src) -> std::vector<Ring> {
            std::vector<Ring>& s = src < 0 ? share : outs[static_cast<std::size_t>(src)];
            if (last_use[static_cast<std::size_t>(src + 1)] == i) return std::move(s);
            return s;  // copy: a later entry still consumes this slot
        };

        for (std::size_t i = 0; i < n; ++i) {
            const LayerPlan& p = plan[i];
            const bool offline_linear = backend == PiBackend::kDelphi;
            std::vector<Ring> cur = take(i, p.input0);
            switch (p.op) {
                case PlanOp::kConv: {
                    if (offline_linear) ctx.transport().set_phase(net::Phase::kOffline);
                    const mpc::ConvLayerCache& cache = *caches[i].conv;
                    if (ctx.is_server()) {
                        cur = mpc::he_conv_server(ctx, cache, cur);
                    } else {
                        cur = mpc::he_conv_client(ctx, cache.enc, cur);
                    }
                    ctx.transport().set_phase(net::Phase::kOnline);
                    for (auto& v : cur)
                        v = static_cast<Ring>(static_cast<std::int64_t>(v) >> fmt.frac_bits);
                    break;
                }
                case PlanOp::kLinear: {
                    if (offline_linear) ctx.transport().set_phase(net::Phase::kOffline);
                    const mpc::MatVecLayerCache& cache = *caches[i].matvec;
                    if (ctx.is_server()) {
                        cur = mpc::he_matvec_server(ctx, cache, cur);
                    } else {
                        cur = mpc::he_matvec_client(ctx, cache.enc, cur);
                    }
                    ctx.transport().set_phase(net::Phase::kOnline);
                    for (auto& v : cur)
                        v = static_cast<Ring>(static_cast<std::int64_t>(v) >> fmt.frac_bits);
                    break;
                }
                case PlanOp::kRelu: {
                    MaskPrefetch prefetch(ctx, plan, i);
                    cur = reshare_canonical(ctx, mpc::secure_relu(ctx, cur, nonlinear));
                    prefetch.commit();
                    break;
                }
                case PlanOp::kMaxPool: {
                    MaskPrefetch prefetch(ctx, plan, i);
                    mpc::RingTensor t(p.in_shape, std::move(cur));
                    cur = reshare_canonical(
                        ctx,
                        mpc::secure_maxpool(ctx, t, p.pool_kernel, p.pool_stride, nonlinear)
                            .data);
                    prefetch.commit();
                    break;
                }
                case PlanOp::kAvgPool:
                    cur = local_avgpool(cur, p, fmt);
                    break;
                case PlanOp::kGlobalAvgPool:
                    cur = local_global_avgpool(cur, p, fmt);
                    break;
                case PlanOp::kResidualAdd: {
                    // [x]+[y] per party IS a share of x+y: no rounds, no
                    // bytes, no PRG draws. Shares stay at scale f, so no
                    // truncation either.
                    const std::vector<Ring> other = take(i, p.input1);
                    require(other.size() == cur.size(), "residual add share size mismatch");
                    for (std::size_t k = 0; k < cur.size(); ++k) cur[k] += other[k];
                    break;
                }
                case PlanOp::kFlatten:
                    break;  // NCHW flatten is a no-op on contiguous data
            }
            outs[i] = std::move(cur);
        }
        return std::move(outs.back());
    }
};

crypto::Block128 session_seed(const SessionConfig& config) {
    return crypto::Block128{config.seed, config.seed ^ 0xC2F1};
}

}  // namespace

void ServerSession::run(net::Transport& transport) const {
    run(transport, [this](const Tensor& boundary) { return model_->run_clear_tail(boundary); });
}

void ServerSession::run(net::Transport& transport, const TailFn& tail) const {
    const CompiledModel& cm = *model_;
    mpc::PartyContext ctx(transport, cm.fmt(), cm.bfv(), session_seed(config_));
    ctx.set_gc_cache(&cm.gc_cache());
    // Pipelining is local scheduling only (wire-identical); each party
    // decides for itself, so no negotiation byte is needed.
    ctx.set_pipeline(config_.pipeline);
    transport.set_pipelined_sends(config_.pipeline);
    const mpc::NonlinearBackend nonlinear = resolve_nonlinear(config_);
    // Charge the dealer/base-OT setup to the offline phase. The last byte
    // of the setup message announces the server's (authoritative)
    // nonlinear backend choice.
    transport.set_phase(net::Phase::kOffline);
    std::vector<std::uint8_t> setup(crypto::OtSetupPair::setup_traffic_bytes() + 1);
    setup.back() = static_cast<std::uint8_t>(nonlinear);
    transport.send_bytes(setup);
    transport.set_phase(net::Phase::kOnline);

    // FSS preprocessing: deal the whole inference's key schedule up front
    // (plan-derived count, KEYS frame) so the online nonlinear phase is
    // one reconstruction round + local evals per layer.
    if (nonlinear == mpc::NonlinearBackend::kFss)
        fss::dealer_replenish(transport, ctx.prg(), ctx.fss_pool(),
                              count_fss_comparisons(cm.plan()));

    std::vector<Ring> share(static_cast<std::size_t>(shape_numel(cm.input_shape())), 0);
    const PartyRun runner{cm.plan(), cm.layer_caches(), config_.backend, cm.fmt(), nonlinear};
    share = runner.execute(ctx, std::move(share));

    if (cm.full_pi()) {
        // Reveal logits to the client only.
        (void)mpc::reveal_shares_to(ctx, share, mpc::kClient);
        transport.flush_sends();
        return;
    }
    // C2PI: receive the client's (noised) share, finish in the clear.
    const auto boundary = mpc::reveal_shares_to(ctx, share, mpc::kServer);
    Tensor act(cm.batched_boundary_shape(1));
    for (std::int64_t i = 0; i < act.numel(); ++i)
        act[i] = static_cast<float>(cm.fmt().decode(boundary[static_cast<std::size_t>(i)]));
    const Tensor out = tail(act);
    // Ship the plaintext logits to the client (floats).
    std::vector<Ring> packed(static_cast<std::size_t>(out.numel()));
    for (std::int64_t i = 0; i < out.numel(); ++i)
        packed[static_cast<std::size_t>(i)] = cm.fmt().encode(out[i]);
    transport.send_u64s(packed);
    transport.flush_sends();
}

void validate_client_input(const ModelArtifact& artifact, const Tensor& input) {
    require(input.rank() == 4 && input.dim(0) == 1, "expects a single [1,C,H,W] input");
    require(Shape{input.dim(1), input.dim(2), input.dim(3)} == artifact.input_chw,
            "input shape does not match the compiled input shape");
}

Tensor ClientSession::run(net::Transport& transport, const Tensor& input) const {
    const ModelArtifact& art = *artifact_;
    validate_client_input(art, input);

    mpc::PartyContext ctx(transport, art.fmt, *bfv_, session_seed(config_));
    if (gc_cache_ != nullptr) ctx.set_gc_cache(gc_cache_);
    ctx.set_pipeline(config_.pipeline);
    transport.set_pipelined_sends(config_.pipeline);
    transport.set_phase(net::Phase::kOffline);
    // Dealer setup; its trailing byte is the server's announced nonlinear
    // backend, which is authoritative for the session.
    const auto setup = transport.recv_bytes();
    require(setup.size() == crypto::OtSetupPair::setup_traffic_bytes() + 1,
            "dealer setup message has unexpected size");
    const std::uint8_t announced = setup.back();
    require(announced <= static_cast<std::uint8_t>(mpc::NonlinearBackend::kFss),
            "server announced an unknown nonlinear backend");
    const auto nonlinear = static_cast<mpc::NonlinearBackend>(announced);
    if (config_.nonlinear.has_value() && *config_.nonlinear != nonlinear)
        throw NonlinearMismatch(nonlinear, *config_.nonlinear);
    transport.set_phase(net::Phase::kOnline);
    crypto::ChaCha20Prg key_prg(crypto::Block128{config_.seed ^ 0x5E17, 0x11}, 3);
    ctx.set_client_key(bfv_->keygen(key_prg));

    // FSS preprocessing: receive the dealer's plan-sized key shipment.
    if (nonlinear == mpc::NonlinearBackend::kFss)
        fss::client_replenish(transport, ctx.fss_pool(), count_fss_comparisons(art.plan));

    std::vector<Ring> share(static_cast<std::size_t>(input.numel()));
    for (std::size_t i = 0; i < share.size(); ++i)
        share[i] = art.fmt.encode(input[static_cast<std::int64_t>(i)]);
    const PartyRun runner{art.plan, *caches_, config_.backend, art.fmt, nonlinear};
    share = runner.execute(ctx, std::move(share));

    Tensor logits;
    if (art.full_pi) {
        const auto out = mpc::reveal_shares_to(ctx, share, mpc::kClient);
        transport.flush_sends();
        logits = Tensor({1, static_cast<std::int64_t>(out.size())});
        for (std::size_t i = 0; i < out.size(); ++i)
            logits[static_cast<std::int64_t>(i)] = static_cast<float>(art.fmt.decode(out[i]));
        return logits;
    }
    // C2PI: add uniform noise to the share before revealing it.
    if (config_.noise_lambda > 0.0F) {
        for (auto& v : share) {
            const double u =
                (static_cast<double>(ctx.prg().next_u64() >> 11) * 0x1.0p-53 * 2.0 - 1.0) *
                config_.noise_lambda;
            v += art.fmt.encode(u);
        }
    }
    (void)mpc::reveal_shares_to(ctx, share, mpc::kServer);
    const auto packed = transport.recv_u64s();
    transport.flush_sends();
    logits = Tensor({1, static_cast<std::int64_t>(packed.size())});
    for (std::size_t i = 0; i < packed.size(); ++i)
        logits[static_cast<std::int64_t>(i)] = static_cast<float>(art.fmt.decode(packed[i]));
    return logits;
}

PiStats stats_from_channel(const net::ChannelStats& channel) {
    PiStats stats;
    stats.offline_bytes = channel.phase_bytes(net::Phase::kOffline);
    stats.online_bytes = channel.phase_bytes(net::Phase::kOnline);
    stats.preprocess_bytes = channel.phase_bytes(net::Phase::kPreprocess);
    stats.offline_flights = channel.phase_flights(net::Phase::kOffline);
    stats.online_flights = channel.phase_flights(net::Phase::kOnline);
    stats.preprocess_flights = channel.phase_flights(net::Phase::kPreprocess);
    return stats;
}

PiStats stats_from_transport(const net::Transport& transport) {
    PiStats stats = stats_from_channel(transport.stats());
    const net::WaitStats waits = transport.wait_stats();
    stats.offline_wait_seconds = waits.phase_seconds(net::Phase::kOffline);
    stats.online_wait_seconds = waits.phase_seconds(net::Phase::kOnline);
    stats.preprocess_wait_seconds = waits.phase_seconds(net::Phase::kPreprocess);
    return stats;
}

PiStats stats_from_run(const net::RunResult& run) {
    PiStats stats = stats_from_channel(run.stats);
    stats.wall_seconds = run.wall_seconds;
    return stats;
}

PiResult run_private_inference(const CompiledModel& model, const SessionConfig& config,
                               const Tensor& input) {
    // Validate before spawning the parties: a client-side failure mid-
    // protocol poisons the peer, whose secondary error would mask the
    // root cause (run_two_party rethrows the server's exception first).
    validate_client_input(model, input);
    const ServerSession server(model, config);
    const ClientSession client(model, config);

    net::DuplexChannel channel;
    Tensor logits;
    const auto run = net::run_two_party(
        channel, [&](net::Transport& t) { server.run(t); },
        [&](net::Transport& t) { logits = client.run(t, input); });

    PiResult result;
    result.logits = std::move(logits);
    result.stats = stats_from_run(run);
    result.crypto_linear_ops = model.crypto_linear_ops();
    result.hidden_linear_ops = model.hidden_linear_ops();
    return result;
}

}  // namespace c2pi::pi
