#pragma once

/// \file boundary.hpp
/// Algorithm 1 of the paper: crypto-clear boundary search.
///
/// Phase 1 sweeps cut points from the tail toward the head, running the
/// configured IDPA at each, until the attack first *succeeds* (average
/// SSIM >= sigma); the potential boundary is the cut just after that.
/// Phase 2 verifies the noised-input accuracy at the boundary and pushes
/// it later until the drop from baseline is at most delta (the paper uses
/// 2.5%, matching SNL/SENet conventions).

#include "attack/idpa.hpp"

namespace c2pi::pi {

struct BoundaryConfig {
    double ssim_threshold = 0.3;       ///< sigma — IDPA failure threshold
    double max_accuracy_drop = 0.025;  ///< delta — tolerated absolute accuracy drop
    float noise_lambda = 0.1F;         ///< lambda — client share-noise magnitude
    std::size_t attack_eval_samples = 24;
    std::size_t accuracy_samples = 192;
    bool include_half_points = true;   ///< sweep ".5" (post-ReLU) cuts too
    std::uint64_t seed = kDefaultSeed;
};

struct SsimProbe {
    nn::CutPoint cut;
    double avg_ssim = 0.0;
};

struct AccuracyProbe {
    nn::CutPoint cut;
    double noised_accuracy = 0.0;
};

struct BoundaryResult {
    nn::CutPoint boundary;
    double baseline_accuracy = 0.0;
    double boundary_accuracy = 0.0;
    std::vector<SsimProbe> ssim_sweep;       ///< phase-1 probes, tail to head
    std::vector<AccuracyProbe> accuracy_sweep;  ///< phase-2 probes
};

/// All sweepable cut points of a model: linear ops 1 .. n-1, optionally
/// with their ".5" (post-ReLU) twins, in ascending order. The final
/// classifier op is excluded (cutting there is full PI).
[[nodiscard]] std::vector<nn::CutPoint> candidate_cuts(const nn::Graph& model,
                                                       bool include_half_points);

/// Run Algorithm 1. `make_attack` supplies a fresh IDPA per probe (the
/// paper uses DINA for the final system; MLA/EINA for comparison).
[[nodiscard]] BoundaryResult search_boundary(nn::Graph& model,
                                             const data::SyntheticImageDataset& dataset,
                                             const attack::IdpaFactory& make_attack,
                                             const BoundaryConfig& config);

}  // namespace c2pi::pi
