#include "pi/artifact.hpp"

#include <cstring>

namespace c2pi::pi {

namespace {

// ---------------------------------------------------------------- codec ---
// Layout (all integers little-endian; normative spec: docs/PROTOCOL.md §3):
//
//   magic   4B  'C' '2' 'M' 'A'
//   version u16 1
//   length  u32 total byte count of the whole artifact, header included
//   body        fields in declaration order; shapes as u8 rank + i64 dims,
//               the plan as u32 count + fixed-layout entries
//
// Every entry writes ALL LayerPlan fields (unused ones hold their
// defaults), so decode(encode(a)) == a field-for-field and re-encoding is
// byte-stable.

constexpr std::uint8_t kArtifactMagic[4] = {'C', '2', 'M', 'A'};
/// v1: chain plans (entry i implicitly consumes entry i-1). v2: appends
/// the input0/input1 edge indices to every plan entry, so DAG plans
/// (residual adds, global-avgpool heads) ship; chain plans still emit v1
/// so pre-DAG wire transcripts stay byte-identical.
constexpr std::uint16_t kArtifactVersionV1 = 1;
constexpr std::uint16_t kArtifactVersionV2 = 2;
/// Hostile-input bounds: far above anything the model zoo produces, far
/// below anything that could amplify into a giant allocation or overflow
/// the derived-geometry arithmetic (out_h/out_w, shape_numel).
constexpr std::size_t kMaxPlanEntries = 4096;
constexpr std::size_t kMaxShapeRank = 8;
constexpr std::int64_t kMaxDim = 1 << 20;          ///< per-dimension cap
/// Per-shape element cap. 16M elements is ~8× the largest activation a
/// VGG-scale model produces, while a shape at the cap costs the client
/// at most ~128 MiB of Ring values — survivable, unlike the multi-GiB
/// tensors an unbounded (or 2^32) cap would let a hostile server demand.
constexpr std::int64_t kMaxShapeNumel = 1LL << 24;
constexpr std::size_t kMaxRingDegree = 1 << 16;

/// Every dimension positive and the element count bounded: a hostile
/// artifact must die with a typed error here, not as an OOM (or signed
/// overflow) while a ClientModel builds tensors from it. The per-dim
/// bound is the element cap, not kMaxDim — a Flatten inside the crypto
/// prefix legitimately produces one dimension as large as the whole
/// activation (the cumulative numel check does the real bounding; the
/// pre-multiply dim bound only keeps the product from overflowing).
void check_shape(const Shape& s, const char* what) {
    std::int64_t numel = 1;
    for (const auto d : s) {
        require(d > 0 && d <= kMaxShapeNumel, what);
        numel *= d;  // bounded: both factors <= kMaxShapeNumel, well below 2^63
        require(numel <= kMaxShapeNumel, what);
    }
}

struct Writer {
    std::vector<std::uint8_t> bytes;

    void u8(std::uint8_t v) { bytes.push_back(v); }
    void u16(std::uint16_t v) {
        for (int i = 0; i < 2; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void shape(const Shape& s) {
        require(s.size() <= kMaxShapeRank, "artifact shape rank too large to serialize");
        u8(static_cast<std::uint8_t>(s.size()));
        for (const auto d : s) i64(d);
    }
};

/// Bounds-checked little-endian reader; every overrun is the same typed
/// truncation error, whichever field tripped it.
struct Reader {
    std::span<const std::uint8_t> bytes;
    std::size_t pos = 0;

    [[nodiscard]] std::size_t remaining() const { return bytes.size() - pos; }
    void need(std::size_t n) const {
        require(remaining() >= n, "model artifact: truncated payload");
    }
    std::uint8_t u8() {
        need(1);
        return bytes[pos++];
    }
    std::uint16_t u16() {
        need(2);
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(bytes[pos++]) << (8 * i);
        return v;
    }
    std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
        return v;
    }
    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[pos++]) << (8 * i);
        return v;
    }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    Shape shape() {
        const std::size_t rank = u8();
        require(rank <= kMaxShapeRank, "model artifact: shape rank out of range");
        Shape s(rank);
        for (auto& d : s) d = i64();
        return s;
    }
};

void write_plan_entry(Writer& w, const LayerPlan& p, std::uint16_t version) {
    w.u8(static_cast<std::uint8_t>(p.op));
    w.i64(p.geo.in_channels);
    w.i64(p.geo.height);
    w.i64(p.geo.width);
    w.i64(p.geo.out_channels);
    w.i64(p.geo.kernel);
    w.i64(p.geo.stride);
    w.i64(p.geo.pad);
    w.i64(p.in_features);
    w.i64(p.out_features);
    w.i64(p.pool_kernel);
    w.i64(p.pool_stride);
    w.shape(p.in_shape);
    w.shape(p.out_shape);
    if (version >= kArtifactVersionV2) {
        w.i64(p.input0);
        w.i64(p.input1);
    }
}

LayerPlan read_plan_entry(Reader& r, std::uint16_t version, std::size_t index) {
    LayerPlan p;
    const std::uint8_t op = r.u8();
    // v1 predates the DAG ops; a v1 payload claiming one is hostile.
    const auto max_op = version >= kArtifactVersionV2 ? PlanOp::kResidualAdd : PlanOp::kFlatten;
    require(op <= static_cast<std::uint8_t>(max_op), "model artifact: unknown plan op");
    p.op = static_cast<PlanOp>(op);
    p.geo.in_channels = r.i64();
    p.geo.height = r.i64();
    p.geo.width = r.i64();
    p.geo.out_channels = r.i64();
    p.geo.kernel = r.i64();
    p.geo.stride = r.i64();
    p.geo.pad = r.i64();
    p.in_features = r.i64();
    p.out_features = r.i64();
    p.pool_kernel = r.i64();
    p.pool_stride = r.i64();
    p.in_shape = r.shape();
    p.out_shape = r.shape();
    if (version >= kArtifactVersionV2) {
        p.input0 = r.i64();
        p.input1 = r.i64();
    } else {
        // v1 plans are chains by construction.
        p.input0 = static_cast<std::int64_t>(index) - 1;
        p.input1 = -1;
    }
    return p;
}

/// A plan needs the v2 codec exactly when it is not a pure chain of
/// v1-era ops; everything else round-trips through v1 byte-identically.
bool plan_needs_v2(const std::vector<LayerPlan>& plan) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
        const LayerPlan& p = plan[i];
        if (p.op == PlanOp::kGlobalAvgPool || p.op == PlanOp::kResidualAdd) return true;
        if (p.input0 != static_cast<std::int64_t>(i) - 1 || p.input1 != -1) return true;
    }
    return false;
}

}  // namespace

ModelArtifact ModelArtifact::build(const nn::Graph& model, const Options& options) {
    require(options.input_chw.size() == 3, "ModelArtifact expects a [C,H,W] input shape");
    for (const auto d : options.input_chw)
        require(d > 0, "ModelArtifact input dimensions must be positive");
    require(options.fmt.frac_bits > 0 && options.fmt.frac_bits < 30,
            "frac_bits must lie in (0, 30): too few bits loses all precision, too many "
            "overflow the truncation headroom");
    require(options.he_ring_degree > 0 &&
                (options.he_ring_degree & (options.he_ring_degree - 1)) == 0,
            "he_ring_degree must be a power of two");
    require(model.num_linear_ops() > 0, "model has no linear ops to compile");
    if (options.boundary.has_value()) {
        require(options.boundary->linear_index >= 1, "boundary linear_index must be >= 1");
        require(options.boundary->linear_index <= model.num_linear_ops(),
                "boundary lies past the last linear op of the model");
        // Let flat_cut_index validate the ".5" position (ReLU must follow).
        (void)model.flat_cut_index(*options.boundary);
    }

    ModelArtifact a;
    a.input_chw = options.input_chw;
    a.fmt = options.fmt;
    a.he_ring_degree = options.he_ring_degree;
    a.num_linear_ops = model.num_linear_ops();
    a.cut = options.boundary.value_or(
        nn::CutPoint{.linear_index = model.num_linear_ops(), .after_relu = false});
    const std::size_t crypto_end = model.flat_cut_index(a.cut) + 1;
    // A skip edge crossing the cut would make the boundary activation
    // ill-defined: the clear tail would need a value the crypto prefix
    // never revealed. Only articulation points are valid boundaries.
    require(model.is_articulation(crypto_end - 1),
            "boundary is not an articulation point: a skip connection crosses the cut");
    a.full_pi = crypto_end >= model.size() || a.cut.linear_index == a.num_linear_ops;
    a.plan = plan_layers(model, a.input_chw, crypto_end);
    // The server must never compile-and-serve an artifact that every
    // wire client is required to reject: the structural bounds clients
    // enforce at deserialize() time apply at build() time too, failing
    // the deployment on the model owner's side where it can be fixed.
    a.validate();
    return a;
}

void ModelArtifact::validate() const {
    require(input_chw.size() == 3, "model artifact: input shape must be [C,H,W]");
    check_shape(input_chw, "model artifact: input dimensions out of range");
    require(fmt.frac_bits > 0 && fmt.frac_bits < 30,
            "model artifact: frac_bits out of range");
    require(he_ring_degree >= 8 && he_ring_degree <= kMaxRingDegree &&
                (he_ring_degree & (he_ring_degree - 1)) == 0,
            "model artifact: he_ring_degree must be a power of two in [8, 65536]");
    // The reference BFV parameter set: the mod-switch path is specialised
    // to a four-limb fresh modulus, so anything else is not an artifact
    // this implementation could have produced.
    require(he_limbs == 4, "model artifact: unsupported BFV limb count");
    require(he_noise_bound > 0 && he_noise_bound <= 64,
            "model artifact: BFV noise bound out of range");
    require(!plan.empty() && plan.size() <= kMaxPlanEntries,
            "model artifact: plan size out of range");
    require(cut.linear_index >= 1, "model artifact: boundary before the first linear op");
    require(num_linear_ops >= cut.linear_index && num_linear_ops <= kMaxDim,
            "model artifact: boundary past the model's linear ops");
    // full_pi is derivable, not free: the plan holds every linear op up
    // to the cut, so "no clear tail" holds exactly when the cut is the
    // model's last linear op. A flipped flag would desync the reveal
    // direction of the final protocol step — reject it here.
    require(full_pi == (cut.linear_index == num_linear_ops),
            "model artifact: full_pi flag disagrees with the boundary");

    // The plan must be a consistent shape DAG rooted at the input, with
    // exactly cut.linear_index linear ops, ending as the paper's cut
    // convention demands (a linear op, or its ReLU for a ".5" boundary).
    // Edge indices are hostile input like everything else: they must
    // point strictly backward (a dangling or forward edge would index
    // activations that do not exist at execution time).
    std::int64_t linear_ops = 0;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        const LayerPlan& p = plan[i];
        require(p.input0 >= -1 && p.input0 < static_cast<std::int64_t>(i),
                "model artifact: dangling plan edge index");
        if (p.op == PlanOp::kResidualAdd) {
            require(p.input1 >= 0 && p.input1 < static_cast<std::int64_t>(i),
                    "model artifact: dangling plan edge index");
        } else {
            require(p.input1 == -1,
                    "model artifact: second input edge on a non-add plan entry");
        }
        const Shape& expect_in = p.input0 < 0
                                     ? input_chw
                                     : plan[static_cast<std::size_t>(p.input0)].out_shape;
        require(p.in_shape == expect_in, "model artifact: plan shape chain broken");
        check_shape(p.out_shape, "model artifact: plan shape out of range");
        switch (p.op) {
            case PlanOp::kConv: {
                ++linear_ops;
                const he::ConvGeometry& g = p.geo;
                // Bound every field BEFORE deriving out_h/out_w from it:
                // unbounded i64s would overflow padded_h() first.
                require(g.kernel > 0 && g.kernel <= kMaxDim && g.stride > 0 &&
                            g.stride <= kMaxDim && g.pad >= 0 && g.pad <= kMaxDim &&
                            g.out_channels > 0 && g.out_channels <= kMaxDim,
                        "model artifact: bad conv geometry");
                require(p.in_shape == Shape{g.in_channels, g.height, g.width},
                        "model artifact: conv geometry disagrees with plan shapes");
                require(g.kernel <= g.padded_h() && g.kernel <= g.padded_w(),
                        "model artifact: conv kernel larger than the padded input");
                require(p.out_shape == Shape{g.out_channels, g.out_h(), g.out_w()},
                        "model artifact: conv output shape disagrees with geometry");
                break;
            }
            case PlanOp::kLinear:
                ++linear_ops;
                require(p.in_features > 0 && p.out_features > 0,
                        "model artifact: bad linear dimensions");
                require(p.in_shape == Shape{p.in_features} &&
                            p.out_shape == Shape{p.out_features},
                        "model artifact: linear dimensions disagree with plan shapes");
                break;
            case PlanOp::kMaxPool:
            case PlanOp::kAvgPool:
                require(p.pool_kernel > 0 && p.pool_kernel <= kMaxDim &&
                            p.pool_stride > 0 && p.pool_stride <= kMaxDim,
                        "model artifact: bad pooling parameters");
                // The pooling kernels index the input through these
                // shapes; an inflated out_shape would walk off the
                // activation buffer.
                require(p.in_shape.size() == 3 && p.pool_kernel <= p.in_shape[1] &&
                            p.pool_kernel <= p.in_shape[2],
                        "model artifact: pooling kernel larger than its input");
                // Silent flooring is rejected everywhere: a window that
                // does not tile would desync the plan from the plaintext
                // reference computation.
                require((p.in_shape[1] - p.pool_kernel) % p.pool_stride == 0 &&
                            (p.in_shape[2] - p.pool_kernel) % p.pool_stride == 0,
                        "model artifact: pooling geometry does not tile its input");
                require(p.out_shape ==
                            Shape{p.in_shape[0],
                                  (p.in_shape[1] - p.pool_kernel) / p.pool_stride + 1,
                                  (p.in_shape[2] - p.pool_kernel) / p.pool_stride + 1},
                        "model artifact: pooling output disagrees with its parameters");
                break;
            case PlanOp::kGlobalAvgPool:
                require(p.in_shape.size() == 3 && p.out_shape == Shape{p.in_shape[0]},
                        "model artifact: global-avgpool output disagrees with its input");
                break;
            case PlanOp::kResidualAdd: {
                require(p.in_shape == p.out_shape,
                        "model artifact: shape-changing residual add");
                const Shape& other = p.input1 < 0
                                         ? input_chw
                                         : plan[static_cast<std::size_t>(p.input1)].out_shape;
                require(other == p.out_shape,
                        "model artifact: residual add operand shapes disagree");
                break;
            }
            case PlanOp::kRelu:
                require(p.in_shape == p.out_shape, "model artifact: shape-changing ReLU");
                break;
            case PlanOp::kFlatten:
                require(p.out_shape == Shape{shape_numel(p.in_shape)},
                        "model artifact: flatten output disagrees with its input");
                break;
        }
    }
    require(linear_ops == cut.linear_index,
            "model artifact: plan linear-op count disagrees with the boundary");
    const PlanOp last = plan.back().op;
    require(cut.after_relu ? last == PlanOp::kRelu
                           : (last == PlanOp::kConv || last == PlanOp::kLinear),
            "model artifact: plan does not end at the boundary operation");
}

std::vector<std::uint8_t> ModelArtifact::serialize() const {
    const std::uint16_t version = plan_needs_v2(plan) ? kArtifactVersionV2 : kArtifactVersionV1;
    Writer w;
    w.bytes.insert(w.bytes.end(), kArtifactMagic, kArtifactMagic + 4);
    w.u16(version);
    w.u32(0);  // total length, patched below
    w.shape(input_chw);
    w.i64(cut.linear_index);
    w.u8(cut.after_relu ? 1 : 0);
    w.u8(full_pi ? 1 : 0);
    w.i64(num_linear_ops);
    w.u32(static_cast<std::uint32_t>(fmt.frac_bits));
    w.u64(he_ring_degree);
    w.u32(static_cast<std::uint32_t>(he_limbs));
    w.u32(static_cast<std::uint32_t>(he_noise_bound));
    w.u32(static_cast<std::uint32_t>(plan.size()));
    for (const LayerPlan& p : plan) write_plan_entry(w, p, version);
    const std::uint32_t total = static_cast<std::uint32_t>(w.bytes.size());
    for (int i = 0; i < 4; ++i)
        w.bytes[6 + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(total >> (8 * i));
    return w.bytes;
}

ModelArtifact ModelArtifact::deserialize(std::span<const std::uint8_t> bytes) {
    Reader r{bytes};
    r.need(4);
    require(std::memcmp(bytes.data(), kArtifactMagic, 4) == 0,
            "model artifact: bad magic (not a C2PI model artifact)");
    r.pos = 4;
    const std::uint16_t version = r.u16();
    require(version == kArtifactVersionV1 || version == kArtifactVersionV2,
            "model artifact: unsupported codec version");
    const std::uint32_t total = r.u32();
    require(total == bytes.size(),
            total > bytes.size() ? "model artifact: truncated payload"
                                 : "model artifact: trailing bytes after payload");

    ModelArtifact a;
    a.input_chw = r.shape();
    a.cut.linear_index = r.i64();
    a.cut.after_relu = r.u8() != 0;
    a.full_pi = r.u8() != 0;
    a.num_linear_ops = r.i64();
    a.fmt.frac_bits = static_cast<int>(r.u32());
    a.he_ring_degree = r.u64();
    a.he_limbs = static_cast<int>(r.u32());
    a.he_noise_bound = static_cast<int>(r.u32());
    const std::uint32_t entries = r.u32();
    require(entries > 0 && entries <= kMaxPlanEntries,
            "model artifact: plan size out of range");
    a.plan.reserve(entries);
    for (std::uint32_t i = 0; i < entries; ++i)
        a.plan.push_back(read_plan_entry(r, version, i));
    require(r.remaining() == 0, "model artifact: trailing bytes after payload");
    a.validate();
    return a;
}

// ---------------------------------------------------------- ClientModel ---

ClientModel::ClientModel(ModelArtifact artifact, int num_threads)
    : artifact_((artifact.validate(), std::move(artifact))),
      pool_(core::make_serving_pool(num_threads)),
      bfv_(artifact_.bfv_params(pool_.get())),
      caches_(precompute_client_caches(artifact_.plan, bfv_)) {}

int ClientModel::num_threads() const { return pool_ == nullptr ? 1 : pool_->num_threads(); }

}  // namespace c2pi::pi
