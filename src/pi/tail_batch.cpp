#include "pi/tail_batch.hpp"

namespace c2pi::pi {

TailBatcher::TailBatcher(const CompiledModel& model, Fixed mode)
    : model_(&model),
      target_(mode.expected),
      window_(std::chrono::milliseconds(-1)),
      fixed_(true) {
    require(!model.full_pi(), "TailBatcher: a full-PI model has no clear tail to batch");
    require(mode.expected >= 1, "TailBatcher: fixed group size must be >= 1");
}

TailBatcher::TailBatcher(const CompiledModel& model, Windowed mode)
    : model_(&model), target_(mode.max_group), window_(mode.window), fixed_(false) {
    require(!model.full_pi(), "TailBatcher: a full-PI model has no clear tail to batch");
    require(mode.max_group >= 1, "TailBatcher: max_group must be >= 1");
    require(mode.window.count() >= 0, "TailBatcher: window must be >= 0 ms");
}

Tensor TailBatcher::run(const Tensor& activation) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_) throw Aborted{};
    if (!current_) {
        current_ = std::make_shared<Group>();
        current_->activations =
            Tensor(model_->batched_boundary_shape(static_cast<std::int64_t>(target_)));
        if (!fixed_) current_->deadline = std::chrono::steady_clock::now() + window_;
    }
    const auto group = current_;
    const std::size_t slot = group->arrived++;
    const std::int64_t per = activation.numel();
    for (std::int64_t j = 0; j < per; ++j)
        group->activations[static_cast<std::int64_t>(slot) * per + j] = activation[j];
    ++requests_;

    if (group->arrived >= target_) {
        // A full group closes with zero extra wait: no more sessions can
        // possibly join it (target_ bounds the concurrent depositors).
        close_and_run(group, lock);
    } else if (!fixed_ && slot == 0) {
        // The group's first arrival is its timekeeper: wait out the
        // window and close the group unless someone else closed it first.
        while (!group->closed) {
            if (cv_.wait_until(lock, group->deadline) == std::cv_status::timeout &&
                !group->closed) {
                close_and_run(group, lock);
                break;
            }
        }
    }
    cv_.wait(lock, [&] { return group->done || group->error != nullptr; });
    if (group->error) std::rethrow_exception(group->error);

    const std::int64_t classes = group->logits.dim(1);
    Tensor row({1, classes});
    for (std::int64_t j = 0; j < classes; ++j)
        row[j] = group->logits.at(static_cast<std::int64_t>(slot), j);
    return row;
}

void TailBatcher::close_and_run(const std::shared_ptr<Group>& group,
                                std::unique_lock<std::mutex>& lock) {
    group->closed = true;
    if (current_ == group) current_.reset();  // next deposit starts a new group
    ++batches_;
    const std::size_t n = group->arrived;
    Tensor batch;
    if (n == target_) {
        batch = std::move(group->activations);
    } else {
        // Window expired on a part-filled group: trim to the rows that
        // actually arrived (run_clear_tail derives N from the tensor).
        batch = Tensor(model_->batched_boundary_shape(static_cast<std::int64_t>(n)));
        for (std::int64_t j = 0; j < batch.numel(); ++j) batch[j] = group->activations[j];
    }
    // The pass runs unlocked so new arrivals form the next group (and a
    // fixed-mode abort can land) while this one computes.
    lock.unlock();
    Tensor logits;
    std::exception_ptr error;
    try {
        logits = model_->run_clear_tail(batch);
    } catch (...) {
        error = std::current_exception();
    }
    lock.lock();
    if (error != nullptr) {
        group->error = error;
    } else {
        group->logits = std::move(logits);
        group->done = true;
    }
    cv_.notify_all();
}

void TailBatcher::abort() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        aborted_ = true;
        if (current_ && !current_->closed) {
            current_->closed = true;
            current_->error = std::make_exception_ptr(Aborted{});
            current_.reset();
        }
    }
    cv_.notify_all();
}

std::uint64_t TailBatcher::batches() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return batches_;
}

std::uint64_t TailBatcher::requests() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return requests_;
}

}  // namespace c2pi::pi
