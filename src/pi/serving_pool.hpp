#pragma once

/// \file serving_pool.hpp
/// Concurrent multi-client TCP serving over one shared const CompiledModel.
///
/// A `ServingPool` owns N worker threads (a `core::WorkQueue`), each
/// serving whole sessions — artifact bootstrap, the crypto protocol, the
/// clear tail, stats, close — against ONE `const CompiledModel`. The
/// accept loop (examples/pi_server.cpp) stays single-threaded and does
/// exactly one thing per connection: hand the handshaken transport to
/// `serve()`. Admission is bounded: once `workers + queue_capacity`
/// sessions are in flight, `serve()` refuses, answering the client with
/// the typed wire-level BUSY frame (docs/PROTOCOL.md §5) instead of
/// letting an unbounded backlog build; the client's pending receive
/// raises `net::ServerBusy`, a "come back later" distinct from any
/// protocol failure.
///
/// Shutdown is a graceful drain: `drain()` refuses new sessions but runs
/// every accepted one to completion before the workers join — an
/// in-flight client never loses its inference.
///
/// The paper's crypto-clear boundary pays off *across clients* here:
/// with `tail_window_ms > 0`, sessions whose crypto phase completes
/// within the window deposit their revealed boundary activations into a
/// shared windowed `TailBatcher`, and one batched plaintext pass serves
/// the whole group (`CompiledModel::run_clear_tail` once, not once per
/// client). Batching changes where the tail executes, never its result:
/// per-request logits are bit-identical to sequential serving
/// (tests/serving_pool_test.cpp).

#include <functional>
#include <memory>
#include <string>

#include "core/thread_pool.hpp"
#include "net/tcp.hpp"
#include "pi/bootstrap.hpp"
#include "pi/session.hpp"
#include "pi/tail_batch.hpp"

namespace c2pi::pi {

/// Why a served session failed, classified at the worker boundary so
/// operators can tell dying clients from hostile ones from server bugs
/// (docs/PROTOCOL.md §9). The classification rule, in order:
///   - net::RecvTimeout            -> kTimeout (connected but silent)
///   - net::PeerClosed             -> kClientAbort (EOF/reset/clean goodbye
///                                    mid-protocol: the client went away)
///   - TailBatcher::Aborted        -> kInternal (a *sibling* session
///                                    poisoned the shared batch pass)
///   - any other c2pi::Error       -> kProtocolViolation (malformed frame,
///                                    codec failure, illegal message)
///   - any other std::exception    -> kInternal (our bug, not the peer's)
enum class FailureClass : std::uint8_t {
    kClientAbort = 0,
    kProtocolViolation = 1,
    kTimeout = 2,
    kInternal = 3,
};
inline constexpr int kNumFailureClasses = 4;

/// Stable short name ("client-abort", "protocol-violation", "timeout",
/// "internal") for stats lines and logs.
[[nodiscard]] const char* failure_class_name(FailureClass c);

/// Apply the classification rule to a caught exception (call inside a
/// catch block; inspects the current exception via rethrow).
[[nodiscard]] FailureClass classify_failure(const std::exception& e);

class ServingPool {
public:
    struct Options {
        /// Sessions served concurrently. 0 = auto (env C2PI_THREADS if
        /// set, else hardware_concurrency; see core::resolve_thread_count).
        int workers = 0;
        /// Accepted-but-waiting connections beyond the busy workers;
        /// one more and serve() rejects with the BUSY frame.
        int queue_capacity = 8;
        /// > 0: coalesce the revealed clear tails of sessions reaching
        /// the boundary within this window into one batched plaintext
        /// pass (crypto-clear models only; ignored for full PI). 0: every
        /// session runs its own tail pass immediately.
        int tail_window_ms = 0;
        /// Protocol recv timeout applied to every served transport, so a
        /// stalled client cannot hold a worker forever.
        int recv_timeout_ms = 120'000;
        /// Stricter one-shot deadline covering the session-bootstrap
        /// reads (want byte, first protocol frame): a client that
        /// connects and goes silent is shed in this long, not pinned
        /// against recv_timeout_ms holding an admission slot. Auto-
        /// promotes to recv_timeout_ms at the client's first DATA frame.
        int handshake_timeout_ms = 5'000;
    };

    /// Outcome of one served session, delivered to the `on_session`
    /// callback (serialized — callbacks never run concurrently).
    struct SessionReport {
        std::uint64_t index = 0;  ///< 1-based accept order
        PiStats stats;            ///< per-phase traffic + session wall time
        bool ok = false;
        std::string error;  ///< failure reason when !ok
        /// Failure taxonomy bucket (meaningful only when !ok).
        FailureClass failure = FailureClass::kInternal;
        /// Bootstrap resume: the client already held this artifact and
        /// shipment was skipped (docs/PROTOCOL.md §3).
        bool artifact_from_cache = false;
    };

    /// Aggregate serving statistics (snapshot; monotonic counters).
    struct Stats {
        std::uint64_t accepted = 0;  ///< transports handed to serve()
        std::uint64_t served = 0;    ///< sessions completed cleanly
        std::uint64_t rejected = 0;  ///< refused with the BUSY frame
        std::uint64_t failed = 0;    ///< sessions that raised mid-protocol
        /// failed, broken down by FailureClass (index with
        /// static_cast<int>(FailureClass)); sums to `failed`.
        std::uint64_t failed_by_class[kNumFailureClasses] = {};
        /// Sessions whose client held the artifact already (digest hit).
        std::uint64_t artifact_skips = 0;
        int active = 0;              ///< sessions running right now
        int concurrent_peak = 0;     ///< max simultaneous sessions so far
        /// Summed per-phase traffic of served sessions; wall_seconds is
        /// the sum of per-session wall times (busy-seconds, not uptime).
        PiStats traffic;
        std::uint64_t tail_batches = 0;   ///< batched clear-tail passes
        std::uint64_t tail_requests = 0;  ///< sessions served by those passes
    };

    /// The pool serializes the model's artifact once; every session
    /// ships the same bytes. `on_session` (optional) observes each
    /// session's outcome — pi_server uses it for per-client log lines.
    ServingPool(const CompiledModel& model, SessionConfig config, Options options,
                std::function<void(const SessionReport&)> on_session = {});
    /// Drains: blocks until every accepted session completed.
    ~ServingPool();

    ServingPool(const ServingPool&) = delete;
    ServingPool& operator=(const ServingPool&) = delete;

    /// Hand one accepted (handshaken) connection to the pool. Returns
    /// true if admitted — the session will run to completion on a worker
    /// even if drain() is called right after. Returns false if the pool
    /// is saturated or draining: the transport is sent the BUSY frame
    /// and closed before returning.
    [[nodiscard]] bool serve(std::unique_ptr<net::TcpTransport> transport);

    /// Graceful shutdown: refuse new sessions, finish queued and
    /// in-flight ones, join the workers. Idempotent.
    void drain();

    [[nodiscard]] Stats stats() const;
    /// Resolved worker count (Options::workers after auto-detection).
    [[nodiscard]] int workers() const { return queue_.workers(); }

private:
    void serve_one(net::TcpTransport& transport, std::uint64_t index) noexcept;

    const CompiledModel* model_;
    const ServerSession session_;  ///< stateless; shared by all workers
    const std::vector<std::uint8_t> artifact_bytes_;
    const ArtifactDigest artifact_digest_;  ///< SHA-256 of artifact_bytes_
    const Options options_;
    const std::function<void(const SessionReport&)> on_session_;
    std::unique_ptr<TailBatcher> batcher_;  ///< null unless windowed batching is on

    mutable std::mutex mutex_;  ///< guards the Stats fields below
    Stats stats_;
    std::mutex report_mutex_;  ///< serializes on_session_ callbacks

    core::WorkQueue queue_;  ///< last member: workers stop before the rest dies
};

}  // namespace c2pi::pi
