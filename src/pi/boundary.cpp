#include "pi/boundary.hpp"

#include "nn/trainer.hpp"

namespace c2pi::pi {

std::vector<nn::CutPoint> candidate_cuts(const nn::Graph& model, bool include_half_points) {
    const auto linear_positions = model.linear_op_indices();
    std::vector<nn::CutPoint> cuts;
    const std::int64_t n = static_cast<std::int64_t>(linear_positions.size());
    for (std::int64_t i = 1; i < n; ++i) {  // exclude the classifier op
        const std::size_t flat = linear_positions[static_cast<std::size_t>(i - 1)];
        // On a DAG only articulation points separate prefix from tail: a
        // cut a skip edge crosses has no single boundary activation, so
        // it is not sweepable (on a chain every index qualifies).
        if (model.is_articulation(flat))
            cuts.push_back({.linear_index = i, .after_relu = false});
        if (include_half_points && flat + 1 < model.size() && !model.is_add(flat + 1) &&
            model.layer(flat + 1).kind() == nn::LayerKind::kRelu &&
            model.input0(flat + 1) == static_cast<std::int64_t>(flat) &&
            model.is_articulation(flat + 1)) {
            cuts.push_back({.linear_index = i, .after_relu = true});
        }
    }
    return cuts;
}

BoundaryResult search_boundary(nn::Graph& model, const data::SyntheticImageDataset& dataset,
                               const attack::IdpaFactory& make_attack,
                               const BoundaryConfig& config) {
    const auto cuts = candidate_cuts(model, config.include_half_points);
    require(!cuts.empty(), "model has no sweepable cut points");

    BoundaryResult result;
    const std::span<const data::Sample> acc_subset(
        dataset.test().data(), std::min(config.accuracy_samples, dataset.test().size()));
    result.baseline_accuracy = nn::evaluate_accuracy(model, acc_subset);

    // ---- Phase 1: sweep from the tail until the IDPA first succeeds ----
    std::int64_t idx = static_cast<std::int64_t>(cuts.size()) - 1;
    std::int64_t first_success = -1;  // index where avg_ssim >= sigma
    for (; idx >= 0; --idx) {
        const auto attack = make_attack();
        const auto eval = attack::evaluate_idpa(*attack, model, cuts[static_cast<std::size_t>(idx)],
                                                dataset, config.attack_eval_samples,
                                                config.noise_lambda, config.seed ^ 0x517);
        result.ssim_sweep.push_back({cuts[static_cast<std::size_t>(idx)], eval.avg_ssim});
        if (eval.avg_ssim >= config.ssim_threshold) {
            first_success = idx;
            break;
        }
    }
    // Potential boundary: the cut right after the first successful attack
    // (or the earliest cut if the attack never succeeds).
    std::int64_t boundary_idx =
        first_success < 0 ? 0
                          : std::min<std::int64_t>(first_success + 1,
                                                   static_cast<std::int64_t>(cuts.size()) - 1);

    // ---- Phase 2: push the boundary later until accuracy is acceptable ----
    const double target = result.baseline_accuracy - config.max_accuracy_drop;
    for (; boundary_idx < static_cast<std::int64_t>(cuts.size()); ++boundary_idx) {
        const auto& cut = cuts[static_cast<std::size_t>(boundary_idx)];
        const double acc = nn::evaluate_accuracy_with_noise_at(
            model, cut, acc_subset, config.noise_lambda, config.seed ^ 0xACC);
        result.accuracy_sweep.push_back({cut, acc});
        if (acc >= target) {
            result.boundary = cut;
            result.boundary_accuracy = acc;
            return result;
        }
    }
    // No cut satisfies the accuracy constraint: fall back to full PI on
    // the last sweepable cut (conservative).
    result.boundary = cuts.back();
    result.boundary_accuracy = result.accuracy_sweep.empty()
                                   ? result.baseline_accuracy
                                   : result.accuracy_sweep.back().noised_accuracy;
    return result;
}

}  // namespace c2pi::pi
