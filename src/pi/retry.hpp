#pragma once

/// \file retry.hpp
/// Client-side retry for session *admission* failures.
///
/// Exactly two failures are automatically retryable, and the rule is
/// enforced in code, not convention: `net::ServerBusy` (typed BUSY
/// rejection) and `net::ConnectFailed` (never connected). Both occur
/// strictly before the client has sent any secret-dependent message, so
/// replaying is unconditionally safe. Everything else — a timeout or
/// disconnect mid-protocol, a codec violation, an artifact swap — may
/// have happened *after* input-dependent traffic, and resuming a
/// half-run MPC transcript is unsound (the dealer randomness is spent;
/// replaying shares under fresh randomness leaks correlations). Those
/// failures propagate: the caller must restart a whole inference,
/// never resume one (docs/PROTOCOL.md §9).
///
/// Backoff is capped-exponential with deterministic jitter (a seeded
/// SplitMix64, not a global RNG): a BUSY storm of identical clients
/// decorrelates, and any schedule is replayable from its seed.

#include <cstdint>
#include <functional>

#include "net/tcp.hpp"

namespace c2pi::pi {

/// Backoff schedule for admission retries.
struct RetryPolicy {
    int max_attempts = 5;         ///< total tries, including the first
    int initial_backoff_ms = 50;  ///< delay after the first failure
    int max_backoff_ms = 2'000;   ///< cap for the exponential growth
    double multiplier = 2.0;      ///< growth factor per attempt
    /// Fraction of the computed delay replaced by jitter (0 = none,
    /// 0.5 = delay drawn from [0.5d, d]). Decorrelates a retry storm.
    double jitter = 0.5;
    std::uint64_t jitter_seed = 1;  ///< deterministic jitter stream

    /// Delay before attempt `attempt` (1-based; attempt 1 has none).
    /// Pure function of (policy, attempt) — replayable.
    [[nodiscard]] int backoff_ms(int attempt) const;

    void validate() const;
};

/// Sleep helper behind the template (keeps <thread> out of this header).
void detail_sleep_ms(int milliseconds);

/// Run `attempt` (connect + bootstrap + inference in one closure) under
/// the policy: on ServerBusy/ConnectFailed sleep backoff_ms and retry,
/// up to max_attempts; the final failure rethrows to the caller. Any
/// other exception propagates immediately — by construction there is no
/// way to auto-retry a mid-protocol failure through this interface,
/// because the closure always restarts from connect.
template <typename Fn>
auto with_admission_retry(const RetryPolicy& policy, Fn&& attempt_fn)
    -> decltype(attempt_fn()) {
    policy.validate();
    for (int attempt = 1;; ++attempt) {
        try {
            return attempt_fn();
        } catch (const net::ServerBusy&) {
            if (attempt >= policy.max_attempts) throw;
        } catch (const net::ConnectFailed&) {
            if (attempt >= policy.max_attempts) throw;
        }
        detail_sleep_ms(policy.backoff_ms(attempt + 1));
    }
}

}  // namespace c2pi::pi
