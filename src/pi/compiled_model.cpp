#include "pi/compiled_model.hpp"

namespace c2pi::pi {

namespace {

/// Verify that a (possibly wire-received) artifact describes exactly the
/// crypto prefix this model would plan: same architecture, geometry and
/// boundary, field for field. Serving weights against a mismatched
/// artifact would fail deep inside the protocol — or worse, succeed with
/// a transcript the client misinterprets.
ModelArtifact checked_against(ModelArtifact artifact, const nn::Graph& model) {
    artifact.validate();
    require(model.num_linear_ops() == artifact.num_linear_ops,
            "artifact/model mismatch: different linear-op counts");
    require(model.flat_cut_index(artifact.cut) + 1 == artifact.plan.size(),
            "artifact/model mismatch: boundary maps to a different flat layer");
    require(plan_layers(model, artifact.input_chw, artifact.plan.size()) == artifact.plan,
            "artifact/model mismatch: the model plans a different crypto prefix");
    return artifact;
}

}  // namespace

CompiledModel::CompiledModel(const nn::Graph& model, Options options)
    : CompiledModel(TrustedArtifact{ModelArtifact::build(
                        model, {.input_chw = std::move(options.input_chw),
                                .boundary = options.boundary,
                                .fmt = options.fmt,
                                .he_ring_degree = options.he_ring_degree})},
                    model, options.num_threads) {}

CompiledModel::CompiledModel(ModelArtifact artifact, const nn::Graph& model,
                             int num_threads)
    : CompiledModel(TrustedArtifact{checked_against(std::move(artifact), model)}, model,
                    num_threads) {}

CompiledModel::CompiledModel(TrustedArtifact trusted, const nn::Graph& model,
                             int num_threads)
    : model_(&model),
      artifact_(std::move(trusted.artifact)),
      pool_(core::make_serving_pool(num_threads)),
      server_data_(extract_server_data(model, artifact_.plan.size(), artifact_.fmt)),
      bfv_(artifact_.bfv_params(pool_.get())),
      layer_caches_(precompute_layer_caches(artifact_.plan, server_data_, bfv_)) {}

int CompiledModel::num_threads() const { return pool_ == nullptr ? 1 : pool_->num_threads(); }

Shape CompiledModel::batched_boundary_shape(std::int64_t batch) const {
    Shape s{batch};
    const Shape& b = boundary_shape();
    s.insert(s.end(), b.begin(), b.end());
    return s;
}

Tensor CompiledModel::run_clear_tail(const Tensor& boundary_activations) const {
    require(!full_pi(), "full-PI artifact has no clear tail");
    require(boundary_activations.rank() >= 2,
            "clear tail expects a batched [N, ...] boundary activation");
    tail_passes_.fetch_add(1, std::memory_order_relaxed);
    return model_->infer_range(crypto_end(), model_->size(), boundary_activations);
}

}  // namespace c2pi::pi
