#include "pi/compiled_model.hpp"

namespace c2pi::pi {

namespace {

/// Resolve + validate the options before any member construction work.
/// Returns the validated options (so the member initializer list can run
/// validation exactly once, before the expensive BFV precompute).
CompiledModel::Options validate(const nn::Sequential& model, CompiledModel::Options options) {
    require(options.input_chw.size() == 3, "CompiledModel expects a [C,H,W] input shape");
    for (const auto d : options.input_chw)
        require(d > 0, "CompiledModel input dimensions must be positive");
    require(options.fmt.frac_bits > 0 && options.fmt.frac_bits < 30,
            "frac_bits must lie in (0, 30): too few bits loses all precision, too many "
            "overflow the truncation headroom");
    require(options.he_ring_degree > 0 &&
                (options.he_ring_degree & (options.he_ring_degree - 1)) == 0,
            "he_ring_degree must be a power of two");
    require(options.num_threads >= 0 && options.num_threads <= 1024,
            "num_threads must lie in [0, 1024] (0 = auto)");
    require(model.num_linear_ops() > 0, "model has no linear ops to compile");
    if (options.boundary.has_value()) {
        require(options.boundary->linear_index >= 1, "boundary linear_index must be >= 1");
        require(options.boundary->linear_index <= model.num_linear_ops(),
                "boundary lies past the last linear op of the model");
        // Let flat_cut_index validate the ".5" position (ReLU must follow).
        (void)model.flat_cut_index(*options.boundary);
    }
    return options;
}

/// A one-thread pool is pure overhead: leave it null so every loop runs
/// the plain serial code path.
std::unique_ptr<core::ThreadPool> make_pool(int num_threads) {
    const int resolved = core::resolve_thread_count(num_threads);
    if (resolved <= 1) return nullptr;
    return std::make_unique<core::ThreadPool>(resolved);
}

}  // namespace

CompiledModel::CompiledModel(const nn::Sequential& model, Options options)
    : model_(&model),
      options_(validate(model, std::move(options))),
      cut_(options_.boundary.value_or(
          nn::CutPoint{.linear_index = model.num_linear_ops(), .after_relu = false})),
      num_linear_ops_(model.num_linear_ops()),
      crypto_end_(model.flat_cut_index(cut_) + 1),
      full_pi_(crypto_end_ >= model.size() || cut_.linear_index == num_linear_ops_),
      plan_(plan_layers(model, options_.input_chw, crypto_end_)),
      server_data_(extract_server_data(model, crypto_end_, options_.fmt)),
      pool_(make_pool(options_.num_threads)),
      bfv_(he::BfvContext::Params{
          .n = options_.he_ring_degree, .limbs = 4, .noise_bound = 4, .pool = pool_.get()}),
      layer_caches_(precompute_layer_caches(plan_, server_data_, bfv_,
                                            options_.server_precompute)) {}

int CompiledModel::num_threads() const { return pool_ == nullptr ? 1 : pool_->num_threads(); }

Shape CompiledModel::batched_boundary_shape(std::int64_t batch) const {
    Shape s{batch};
    const Shape& b = boundary_shape();
    s.insert(s.end(), b.begin(), b.end());
    return s;
}

Tensor CompiledModel::run_clear_tail(const Tensor& boundary_activations) const {
    require(!full_pi_, "full-PI artifact has no clear tail");
    require(boundary_activations.rank() >= 2,
            "clear tail expects a batched [N, ...] boundary activation");
    tail_passes_.fetch_add(1, std::memory_order_relaxed);
    return model_->infer_range(crypto_end_, model_->size(), boundary_activations);
}

}  // namespace c2pi::pi
