#include "pi/plan.hpp"

#include <sstream>

#include "nn/layers.hpp"

namespace c2pi::pi {

PoolGeometryError::PoolGeometryError(std::size_t index, const Shape& in_shape,
                                     std::int64_t kernel, std::int64_t stride)
    : Error([&] {
          std::ostringstream os;
          os << "pooling at layer " << index << " does not tile its input: [" << in_shape[1]
             << 'x' << in_shape[2] << "] with kernel " << kernel << ", stride " << stride
             << " leaves a partial window";
          return os.str();
      }()),
      layer_index(index) {}

namespace {

/// (dim - kernel) / stride + 1, refusing geometry that leaves a partial
/// window — silently flooring here would make the plan's out_shape
/// disagree with the plaintext reference computation.
Shape pooled_shape(const Shape& shape, std::int64_t kernel, std::int64_t stride,
                   std::size_t index) {
    if (kernel <= 0 || stride <= 0 || kernel > shape[1] || kernel > shape[2] ||
        (shape[1] - kernel) % stride != 0 || (shape[2] - kernel) % stride != 0)
        throw PoolGeometryError(index, shape, kernel, stride);
    return {shape[0], (shape[1] - kernel) / stride + 1, (shape[2] - kernel) / stride + 1};
}

}  // namespace

std::vector<LayerPlan> plan_layers(const nn::Graph& model, const Shape& input_chw, std::size_t end) {
    require(input_chw.size() == 3, "plan expects a [C,H,W] input shape");
    require(end <= model.size(), "plan range out of bounds");
    std::vector<LayerPlan> plan;
    std::vector<Shape> shapes(end);  // per-node output shapes
    const auto shape_of = [&](std::int64_t src) -> const Shape& {
        return src < 0 ? input_chw : shapes[static_cast<std::size_t>(src)];
    };

    for (std::size_t i = 0; i < end; ++i) {
        LayerPlan entry;
        entry.input0 = model.input0(i);
        entry.in_shape = shape_of(entry.input0);
        Shape shape = entry.in_shape;  // [C,H,W] while spatial, [F] after flatten

        if (model.is_add(i)) {
            entry.op = PlanOp::kResidualAdd;
            entry.input1 = model.input1(i);
            require(shape_of(entry.input1) == shape,
                    "residual add joins operands of different shapes");
            entry.out_shape = shape;
            shapes[i] = shape;
            plan.push_back(std::move(entry));
            continue;
        }

        const nn::Layer& layer = model.layer(i);
        switch (layer.kind()) {
            case nn::LayerKind::kConv2d: {
                const auto& conv = static_cast<const nn::Conv2d&>(layer);
                require(shape.size() == 3, "conv after flatten is unsupported");
                require(conv.spec().dilation == 1, "dilated conv not supported under MPC");
                entry.op = PlanOp::kConv;
                entry.geo = he::ConvGeometry{.in_channels = shape[0],
                                             .height = shape[1],
                                             .width = shape[2],
                                             .out_channels = conv.out_channels(),
                                             .kernel = conv.spec().kernel,
                                             .stride = conv.spec().stride,
                                             .pad = conv.spec().pad};
                shape = {conv.out_channels(), entry.geo.out_h(), entry.geo.out_w()};
                break;
            }
            case nn::LayerKind::kLinear: {
                const auto& fc = static_cast<const nn::Linear&>(layer);
                require(shape.size() == 1, "linear layer requires flattened input");
                entry.op = PlanOp::kLinear;
                entry.in_features = fc.in_features();
                entry.out_features = fc.out_features();
                require(shape[0] == entry.in_features, "linear input size mismatch");
                shape = {entry.out_features};
                break;
            }
            case nn::LayerKind::kRelu:
                entry.op = PlanOp::kRelu;
                break;
            case nn::LayerKind::kMaxPool: {
                const auto& pool = static_cast<const nn::MaxPool2d&>(layer);
                require(shape.size() == 3, "pooling after flatten is unsupported");
                entry.op = PlanOp::kMaxPool;
                entry.pool_kernel = pool.kernel();
                entry.pool_stride = pool.stride();
                shape = pooled_shape(shape, pool.kernel(), pool.stride(), i);
                break;
            }
            case nn::LayerKind::kAvgPool: {
                const auto& pool = static_cast<const nn::AvgPool2d&>(layer);
                require(shape.size() == 3, "pooling after flatten is unsupported");
                entry.op = PlanOp::kAvgPool;
                entry.pool_kernel = pool.kernel();
                entry.pool_stride = pool.stride();
                shape = pooled_shape(shape, pool.kernel(), pool.stride(), i);
                break;
            }
            case nn::LayerKind::kGlobalAvgPool:
                require(shape.size() == 3, "global-avgpool requires a spatial input");
                entry.op = PlanOp::kGlobalAvgPool;
                shape = {shape[0]};
                break;
            case nn::LayerKind::kFlatten:
                entry.op = PlanOp::kFlatten;
                shape = {shape_numel(shape)};
                break;
            case nn::LayerKind::kBatchNorm:
                fail("batch-norm layers must be folded before planning "
                     "(Graph::fold_batch_norms)");
            default:
                fail("layer kind not supported under MPC: " + layer.describe());
        }
        entry.out_shape = shape;
        shapes[i] = shape;
        plan.push_back(std::move(entry));
    }
    return plan;
}

std::vector<ServerLayerData> extract_server_data(const nn::Graph& model, std::size_t end,
                                                 const FixedPointFormat& fmt) {
    std::vector<ServerLayerData> data(end);
    for (std::size_t i = 0; i < end; ++i) {
        if (model.is_add(i)) continue;  // residual adds carry no weights
        const nn::Layer& layer = model.layer(i);
        if (layer.kind() == nn::LayerKind::kConv2d) {
            const auto& conv = static_cast<const nn::Conv2d&>(model.layer(i));
            const Tensor& w = conv.weight().value;
            data[i].weights.resize(static_cast<std::size_t>(w.numel()));
            for (std::int64_t j = 0; j < w.numel(); ++j)
                data[i].weights[static_cast<std::size_t>(j)] = fmt.encode(w[j]);
            const Tensor& b = conv.bias().value;
            if (b.numel() == conv.out_channels()) {
                data[i].bias2f.resize(static_cast<std::size_t>(b.numel()));
                for (std::int64_t j = 0; j < b.numel(); ++j)
                    data[i].bias2f[static_cast<std::size_t>(j)] =
                        fmt.encode(b[j]) << fmt.frac_bits;
            }
        } else if (layer.kind() == nn::LayerKind::kLinear) {
            const auto& fc = static_cast<const nn::Linear&>(model.layer(i));
            const Tensor& w = fc.weight().value;
            data[i].weights.resize(static_cast<std::size_t>(w.numel()));
            for (std::int64_t j = 0; j < w.numel(); ++j)
                data[i].weights[static_cast<std::size_t>(j)] = fmt.encode(w[j]);
            const Tensor& b = fc.bias().value;
            if (b.numel() == fc.out_features()) {
                data[i].bias2f.resize(static_cast<std::size_t>(b.numel()));
                for (std::int64_t j = 0; j < b.numel(); ++j)
                    data[i].bias2f[static_cast<std::size_t>(j)] =
                        fmt.encode(b[j]) << fmt.frac_bits;
            }
        }
    }
    return data;
}

std::vector<LayerCache> precompute_layer_caches(const std::vector<LayerPlan>& plan,
                                                const std::vector<ServerLayerData>& data,
                                                const he::BfvContext& bfv) {
    require(plan.size() == data.size(), "plan/server-data length mismatch");
    std::vector<LayerCache> caches(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        const LayerPlan& p = plan[i];
        if (p.op == PlanOp::kConv) {
            caches[i].conv = std::make_unique<mpc::ConvLayerCache>(
                bfv, p.geo, data[i].weights, data[i].bias2f);
        } else if (p.op == PlanOp::kLinear) {
            caches[i].matvec = std::make_unique<mpc::MatVecLayerCache>(
                bfv, p.in_features, p.out_features, data[i].weights, data[i].bias2f);
        }
    }
    return caches;
}

std::vector<LayerCache> precompute_client_caches(const std::vector<LayerPlan>& plan,
                                                 const he::BfvContext& bfv) {
    std::vector<LayerCache> caches(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        const LayerPlan& p = plan[i];
        if (p.op == PlanOp::kConv) {
            caches[i].conv = std::make_unique<mpc::ConvLayerCache>(
                bfv, p.geo, std::span<const Ring>{}, std::span<const Ring>{},
                /*precompute_weights=*/false);
        } else if (p.op == PlanOp::kLinear) {
            caches[i].matvec = std::make_unique<mpc::MatVecLayerCache>(
                bfv, p.in_features, p.out_features, std::span<const Ring>{},
                std::span<const Ring>{}, /*precompute_weights=*/false);
        }
    }
    return caches;
}

std::size_t count_fss_comparisons(const std::vector<LayerPlan>& plan) {
    std::size_t count = 0;
    for (const LayerPlan& p : plan) {
        if (p.op == PlanOp::kRelu) {
            count += static_cast<std::size_t>(shape_numel(p.out_shape));
        } else if (p.op == PlanOp::kMaxPool) {
            const auto k2 = static_cast<std::size_t>(p.pool_kernel * p.pool_kernel);
            count += static_cast<std::size_t>(shape_numel(p.out_shape)) * (k2 - 1);
        }
    }
    return count;
}

}  // namespace c2pi::pi
