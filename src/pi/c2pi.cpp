#include "pi/c2pi.hpp"

namespace c2pi::pi {

namespace {

CompiledModel::Options compile_options(const nn::CutPoint& boundary, const Shape& input_chw,
                                       const C2piOptions& options) {
    return CompiledModel::Options{.input_chw = input_chw,
                                  .boundary = boundary,
                                  .fmt = options.fmt,
                                  .he_ring_degree = options.he_ring_degree};
}

SessionConfig session_config(const C2piOptions& options) {
    return SessionConfig{.backend = options.backend,
                         .noise_lambda = options.boundary.noise_lambda,
                         .seed = options.seed,
                         .nonlinear = options.nonlinear};
}

Shape dataset_input_shape(const data::SyntheticImageDataset& dataset) {
    require(!dataset.test().empty(), "dataset has no test samples to size the input from");
    const Shape& s = dataset.test()[0].image.shape();
    require(s.size() == 3, "dataset samples must be [C,H,W] images");
    return s;
}

}  // namespace

C2piSystem::C2piSystem(nn::Graph& model, const data::SyntheticImageDataset& dataset,
                       const attack::IdpaFactory& make_attack, const C2piOptions& options)
    : boundary_(search_boundary(model, dataset, make_attack, options.boundary)),
      compiled_(model, compile_options(boundary_.boundary, dataset_input_shape(dataset), options)),
      service_(compiled_, session_config(options)) {}

C2piSystem::C2piSystem(const nn::Graph& model, const nn::CutPoint& boundary,
                       const Shape& input_chw, const C2piOptions& options)
    : boundary_(), compiled_(model, compile_options(boundary, input_chw, options)),
      service_(compiled_, session_config(options)) {
    boundary_.boundary = boundary;
}

}  // namespace c2pi::pi
