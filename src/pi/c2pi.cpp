#include "pi/c2pi.hpp"

namespace c2pi::pi {

namespace {
PiEngine::Options engine_options(const nn::CutPoint& boundary, PiBackend backend,
                                 const C2piOptions& options) {
    PiEngine::Options opts;
    opts.backend = backend;
    opts.fmt = options.fmt;
    opts.he_ring_degree = options.he_ring_degree;
    opts.boundary = boundary;
    opts.noise_lambda = options.boundary.noise_lambda;
    opts.seed = options.seed;
    return opts;
}
}  // namespace

C2piSystem::C2piSystem(nn::Sequential& model, const data::SyntheticImageDataset& dataset,
                       const attack::IdpaFactory& make_attack, const C2piOptions& options)
    : boundary_(search_boundary(model, dataset, make_attack, options.boundary)),
      engine_(model, engine_options(boundary_.boundary, options.backend, options)) {}

C2piSystem::C2piSystem(nn::Sequential& model, const nn::CutPoint& boundary,
                       const C2piOptions& options)
    : boundary_(), engine_(model, engine_options(boundary, options.backend, options)) {
    boundary_.boundary = boundary;
}

PiEngine make_full_pi_engine(nn::Sequential& model, PiBackend backend, const C2piOptions& options) {
    PiEngine::Options opts;
    opts.backend = backend;
    opts.fmt = options.fmt;
    opts.he_ring_degree = options.he_ring_degree;
    opts.boundary = std::nullopt;
    opts.noise_lambda = 0.0F;
    opts.seed = options.seed;
    return PiEngine(model, opts);
}

}  // namespace c2pi::pi
