#pragma once

/// \file session.hpp
/// The serve-many half of the PI API: explicit party roles over a
/// transport seam.
///
/// A `ServerSession` (model owner) and a `ClientSession` (input owner)
/// each drive their own side of a `net::Transport`. The server borrows
/// an immutable `CompiledModel` (weights + HE precompute); the client
/// borrows only the **public** half — a `ClientModel` compiled from a
/// `ModelArtifact`, or the artifact view embedded in a CompiledModel for
/// in-process runs. Per-inference state (PRG, OT extension, client HE
/// key) lives inside the run() call, so one session object can serve any
/// number of concurrent runs.
///
/// `run_private_inference` wires one server and one client through an
/// in-process `net::DuplexChannel` (the classic two-thread setup). The
/// session API itself is transport-agnostic: the same sessions run as
/// two OS processes over `net::TcpTransport` (tcp.hpp), where the server
/// ships its artifact at session start and the client runs **weightless**
/// — see examples/pi_server.cpp and examples/pi_client.cpp.

#include <functional>
#include <optional>

#include "mpc/nonlinear.hpp"
#include "net/runtime.hpp"
#include "pi/compiled_model.hpp"

namespace c2pi::pi {

/// Default for SessionConfig::pipeline: true unless the environment sets
/// C2PI_PIPELINE to "0" or "off" (CI runs the full suite both ways).
[[nodiscard]] bool pipeline_default();

/// Per-connection protocol parameters. Both parties of a session must
/// agree on all fields (the seed feeds the trusted-dealer base-OT
/// substitution, DESIGN.md §4).
struct SessionConfig {
    PiBackend backend = PiBackend::kCheetah;
    /// Uniform noise magnitude the client adds to its revealed share
    /// (C2PI's extra defense; ignored for full PI).
    float noise_lambda = 0.0F;
    std::uint64_t seed = kDefaultSeed;
    /// Nonlinear-layer backend override. nullopt = the protocol family's
    /// native choice (Delphi -> garbled circuits, Cheetah -> OT
    /// millionaire). The server's resolved choice is authoritative: it is
    /// announced at session start, and a client whose own explicit choice
    /// differs raises NonlinearMismatch instead of hanging mid-protocol.
    std::optional<mpc::NonlinearBackend> nonlinear;
    /// Compute/communication overlap (docs/PROTOCOL.md §10): pipelined
    /// transport sends, chunked HE response streaming, and cross-layer
    /// mask prefetch. Purely local scheduling — wire bytes, frame order,
    /// and logits are bit-identical either way, so the two parties need
    /// NOT agree on this field. Default on; --no-pipeline in the demos.
    bool pipeline = pipeline_default();
};

/// The server's resolved nonlinear backend for this config.
[[nodiscard]] mpc::NonlinearBackend resolve_nonlinear(const SessionConfig& config);

/// Short stable name ("gc", "ot", "fss") for flags and stats lines.
[[nodiscard]] const char* nonlinear_name(mpc::NonlinearBackend backend);

/// Typed negotiation failure: the server announced a nonlinear backend
/// and the client was explicitly configured for a different one.
struct NonlinearMismatch final : Error {
    NonlinearMismatch(mpc::NonlinearBackend server_choice, mpc::NonlinearBackend client_choice);
};

/// The model owner's side of one private inference.
class ServerSession {
public:
    /// Clear-tail hook: receives the revealed boundary activation
    /// [1, ...boundary shape] and returns the logits [1, classes]. The
    /// batched InferenceService uses this to coalesce many requests into
    /// one plaintext pass.
    using TailFn = std::function<Tensor(const Tensor&)>;

    ServerSession(const CompiledModel& model, SessionConfig config)
        : model_(&model), config_(config) {}

    /// Serve one inference over the transport; the clear tail (if any)
    /// runs inline as a single-request batch.
    void run(net::Transport& transport) const;
    /// Serve one inference, delegating the clear tail to `tail`.
    void run(net::Transport& transport, const TailFn& tail) const;

    [[nodiscard]] const CompiledModel& model() const { return *model_; }
    [[nodiscard]] const SessionConfig& config() const { return config_; }

private:
    const CompiledModel* model_;
    SessionConfig config_;
};

/// The input owner's side of one private inference. Operates purely on
/// the public artifact: the plan, fixed-point format, BFV context and
/// encoder geometry. It cannot read weights because the types it borrows
/// never contain any.
class ClientSession {
public:
    /// The deployed form: a weightless client compiled from a (typically
    /// wire-received) artifact.
    ClientSession(const ClientModel& model, SessionConfig config)
        : artifact_(&model.artifact()),
          bfv_(&model.bfv()),
          caches_(&model.layer_caches()),
          gc_cache_(&model.gc_cache()),
          config_(config) {}

    /// In-process convenience: borrow the public half of a server-side
    /// CompiledModel (its artifact, BFV context and the encoder geometry
    /// of its caches — the weight plaintexts next to them are never read
    /// by client code).
    ClientSession(const CompiledModel& model, SessionConfig config)
        : artifact_(&model.artifact()),
          bfv_(&model.bfv()),
          caches_(&model.layer_caches()),
          gc_cache_(&model.gc_cache()),
          config_(config) {}

    /// Run one private inference on a [1,C,H,W] input matching the
    /// artifact's input shape; returns the logits [1, classes].
    [[nodiscard]] Tensor run(net::Transport& transport, const Tensor& input) const;

    [[nodiscard]] const ModelArtifact& artifact() const { return *artifact_; }
    [[nodiscard]] const SessionConfig& config() const { return config_; }

private:
    const ModelArtifact* artifact_;
    const he::BfvContext* bfv_;
    const std::vector<LayerCache>* caches_;
    mpc::GcCircuitCache* gc_cache_;
    SessionConfig config_;
};

/// Validate a client input against a public artifact: a single [1,C,H,W]
/// tensor matching the artifact's input shape. Throws c2pi::Error
/// otherwise. Every serving entry point calls this up front so a bad
/// input fails with its root cause instead of a poisoned-peer protocol
/// error.
void validate_client_input(const ModelArtifact& artifact, const Tensor& input);
inline void validate_client_input(const CompiledModel& model, const Tensor& input) {
    validate_client_input(model.artifact(), input);
}

/// Connect one ServerSession and one ClientSession in-process (two
/// threads over a DuplexChannel) and run a single inference.
[[nodiscard]] PiResult run_private_inference(const CompiledModel& model,
                                             const SessionConfig& config, const Tensor& input);

/// Translate per-phase channel accounting into PiStats. Works for any
/// Transport implementation (the in-process channel and TcpTransport
/// keep identical accounting); wall time is not the channel's to know —
/// fill `wall_seconds` from your own clock.
[[nodiscard]] PiStats stats_from_channel(const net::ChannelStats& stats);

/// stats_from_channel plus this party's compute-vs-network split: the
/// transport's per-phase blocked-on-network seconds (recv waits + any
/// pipelined-send backpressure) land in the *_wait_seconds fields.
[[nodiscard]] PiStats stats_from_transport(const net::Transport& transport);

/// Translate a finished run's channel accounting into PiStats.
[[nodiscard]] PiStats stats_from_run(const net::RunResult& run);

}  // namespace c2pi::pi
