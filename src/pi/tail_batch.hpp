#pragma once

/// \file tail_batch.hpp
/// Cross-request coalescing of the revealed clear tail.
///
/// C2PI's crypto-clear boundary makes the server-side tail plain float
/// compute, which is trivially batchable — within one process
/// (`InferenceService::run_batch`) and across independent client
/// connections (`pi::ServingPool`). Both feed this rendezvous: every
/// server session deposits its revealed boundary activation and blocks;
/// one depositor runs the tail for the whole group as a single
/// `CompiledModel::run_clear_tail` pass, and the rest pick up their row.
/// Batching changes *where* the tail executes, never its result: the
/// pass is row-independent, so per-request logits are bit-identical to
/// unbatched serving (tests/service_test.cpp, tests/serving_pool_test.cpp).
///
/// Two closing rules cover the two callers:
///  * **fixed** groups (`Fixed{n}`): the group closes when exactly `n`
///    requests arrived — the batched service knows its batch size up
///    front and waits for all of it (`abort()` wakes the group when a
///    sibling request dies before depositing);
///  * **windowed** groups (`Windowed{max_group, window}`): the group
///    closes when `max_group` requests arrived or `window` elapsed since
///    the group's first arrival — concurrent TCP clients reach the
///    boundary at unpredictable times, so the window bounds the latency
///    a lone request pays for the chance to batch, and `max_group`
///    (typically the serving pool's worker count, an upper bound on
///    concurrent sessions) closes a full group with zero extra wait.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "pi/compiled_model.hpp"

namespace c2pi::pi {

class TailBatcher {
public:
    /// Secondary failure: a sibling request died, so a fixed group can
    /// never fill. Distinct from Error so callers can surface the
    /// sibling's root cause instead of this consequence.
    struct Aborted final : Error {
        Aborted() : Error("batched clear tail aborted: a sibling request failed") {}
    };

    /// Fixed-size groups of exactly `expected` requests (batched service).
    struct Fixed {
        std::size_t expected;
    };
    /// Open groups closed by arrival count or elapsed time (serving pool).
    struct Windowed {
        std::size_t max_group;
        std::chrono::milliseconds window;
    };

    TailBatcher(const CompiledModel& model, Fixed mode);
    TailBatcher(const CompiledModel& model, Windowed mode);
    ~TailBatcher() = default;

    TailBatcher(const TailBatcher&) = delete;
    TailBatcher& operator=(const TailBatcher&) = delete;

    /// Deposit one revealed boundary activation [1, ...boundary shape],
    /// block until this request's group has run its batched pass, and
    /// return this request's logits row [1, classes]. Thread-safe; meant
    /// to be called from `ServerSession::run`'s TailFn. Rethrows the
    /// pass's exception to every member of a failed group, and Aborted
    /// to a fixed group whose sibling died.
    [[nodiscard]] Tensor run(const Tensor& activation);

    /// Fixed mode: mark the current group as unfillable (a sibling
    /// request failed before depositing) and wake its members with
    /// Aborted. Subsequent run() calls throw Aborted immediately.
    void abort();

    /// Batched passes executed so far.
    [[nodiscard]] std::uint64_t batches() const;
    /// Requests that went through a batched pass so far.
    [[nodiscard]] std::uint64_t requests() const;

private:
    /// One rendezvous group: the deposits that will share a single
    /// run_clear_tail pass. Held by shared_ptr because in windowed mode
    /// a closed group computes its pass while new arrivals already form
    /// the next group.
    struct Group {
        Tensor activations;  ///< [capacity, ...boundary shape], filled to `arrived`
        Tensor logits;       ///< [arrived, classes] once done
        std::size_t arrived = 0;
        bool closed = false;  ///< no further deposits join this group
        bool done = false;    ///< logits ready
        std::exception_ptr error;
        std::chrono::steady_clock::time_point deadline;  ///< windowed mode only
    };

    /// Close `group` (detaching it as the current group) and run its
    /// batched pass. Called with `lock` held; the pass itself runs
    /// unlocked so new arrivals can form the next group meanwhile.
    void close_and_run(const std::shared_ptr<Group>& group, std::unique_lock<std::mutex>& lock);

    const CompiledModel* model_;
    const std::size_t target_;  ///< group size that closes with zero wait
    const std::chrono::milliseconds window_;  ///< <0 in fixed mode
    const bool fixed_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::shared_ptr<Group> current_;  ///< open group, or null
    bool aborted_ = false;
    std::uint64_t batches_ = 0;
    std::uint64_t requests_ = 0;
};

}  // namespace c2pi::pi
