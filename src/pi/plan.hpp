#pragma once

/// \file plan.hpp
/// Backend-agnostic execution plan for the crypto layers. The plan holds
/// only architecture/geometry (what the paper allows the client to learn
/// about the crypto layers); weights stay inside ServerModelData, which
/// only the server thread reads. The per-layer HE precompute (encoder
/// geometry + NTT-form weight plaintexts) sits next to it in LayerCache,
/// built once per CompiledModel so serving never re-runs a weight NTT.

#include <memory>

#include "he/encoding.hpp"
#include "mpc/linear.hpp"
#include "mpc/ring_tensor.hpp"
#include "nn/graph.hpp"

namespace c2pi::pi {

/// Byte values are part of the artifact wire format: kGlobalAvgPool and
/// kResidualAdd are appended (v2-only ops) so v1 artifacts keep their
/// original encoding.
enum class PlanOp {
    kConv,
    kLinear,
    kRelu,
    kMaxPool,
    kAvgPool,
    kFlatten,
    kGlobalAvgPool,
    kResidualAdd,
};

struct LayerPlan {
    PlanOp op;
    he::ConvGeometry geo;               ///< kConv
    std::int64_t in_features = 0;       ///< kLinear
    std::int64_t out_features = 0;      ///< kLinear
    std::int64_t pool_kernel = 0;       ///< pooling ops
    std::int64_t pool_stride = 0;
    Shape in_shape;                     ///< [C,H,W] or [F]
    Shape out_shape;
    /// DAG edges: plan-entry index (or -1 = the boundary input) whose
    /// output this entry consumes. input1 is -1 except for kResidualAdd.
    /// A chain plan has input0 == i-1 everywhere (v1 artifacts imply it).
    std::int64_t input0 = -1;
    std::int64_t input1 = -1;

    /// Field-for-field equality: lets CompiledModel verify that a shipped
    /// ModelArtifact matches a locally-planned model exactly.
    friend bool operator==(const LayerPlan&, const LayerPlan&) = default;
};

/// Typed error for pooling geometry that does not tile its input: the
/// seed planner silently floored (shape - kernel) / stride, which made
/// the plan's out_shape disagree with what nn::ops actually computes.
/// Raised at the planning API boundary with the offending node index.
struct PoolGeometryError final : Error {
    PoolGeometryError(std::size_t layer_index, const Shape& in_shape, std::int64_t kernel,
                      std::int64_t stride);
    std::size_t layer_index;
};

/// Per-layer server secrets for the crypto layers.
struct ServerLayerData {
    std::vector<Ring> weights;  ///< fixed-point encoded (scale f)
    std::vector<Ring> bias2f;   ///< bias at scale 2f (empty if no bias)
};

/// Per-layer input-independent HE precompute: exactly one of the members
/// is set for kConv/kLinear plan entries, both are null otherwise. The
/// caches borrow the ServerLayerData weight spans, so the two vectors
/// live (and die) together inside CompiledModel.
struct LayerCache {
    std::unique_ptr<mpc::ConvLayerCache> conv;
    std::unique_ptr<mpc::MatVecLayerCache> matvec;
};

/// Plan graph nodes [0, end) of the model for an input of shape [C,H,W].
/// Plan entry i mirrors node i, including its DAG edges; residual adds
/// become kResidualAdd entries (free under additive sharing — executed
/// locally on shares). Batch-norm nodes are rejected: fold them first
/// (Graph::fold_batch_norms). Throws PoolGeometryError for pooling that
/// does not tile its input.
[[nodiscard]] std::vector<LayerPlan> plan_layers(const nn::Graph& model, const Shape& input_chw,
                                                 std::size_t end);

/// Extract ring-encoded weights for every kConv/kLinear plan entry
/// (entries for other ops are empty).
[[nodiscard]] std::vector<ServerLayerData> extract_server_data(const nn::Graph& model,
                                                               std::size_t end,
                                                               const FixedPointFormat& fmt);

/// Build the server-side HE precompute for every crypto layer: encoder
/// geometry and the NTT-form (Shoup-companioned) weight plaintexts.
/// `data` must outlive the returned caches. Runs the weight NTTs over
/// the context's thread pool when it has one.
[[nodiscard]] std::vector<LayerCache> precompute_layer_caches(
    const std::vector<LayerPlan>& plan, const std::vector<ServerLayerData>& data,
    const he::BfvContext& bfv);

/// Client-side subset of the precompute: encoder geometry and scatter
/// indices only — no weights exist on this side, so no weight NTTs and
/// no PlainNtt memory. Built from a public ModelArtifact plan alone.
[[nodiscard]] std::vector<LayerCache> precompute_client_caches(
    const std::vector<LayerPlan>& plan, const he::BfvContext& bfv);

/// Number of FSS comparisons one inference over this plan consumes: one
/// per ReLU output element, and kernel^2 - 1 per maxpool window (the
/// binary pairwise-max tournament). Both parties derive the kFss
/// preprocessing batch size from this, so the dealer's shipment and the
/// client's expectation agree by construction. The plan is public, so
/// the count is too.
[[nodiscard]] std::size_t count_fss_comparisons(const std::vector<LayerPlan>& plan);

}  // namespace c2pi::pi
