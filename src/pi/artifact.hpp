#pragma once

/// \file artifact.hpp
/// The wire-shippable public half of a compiled model.
///
/// C2PI's deployment premise is asymmetric: the server owns the weights,
/// the client owns the input. Everything the *client* needs at protocol
/// time is public architecture and parameters — the crypto-layer plan,
/// the boundary position, the fixed-point format and the BFV/ring
/// geometry (exactly what plan.hpp says the client may learn). That
/// public half is `ModelArtifact`: a plain value with a versioned binary
/// codec, shipped by the server at session start (docs/PROTOCOL.md,
/// ARTIFACT frame) so a deployed client holds **zero model weights**.
///
/// `ClientModel` is the input owner's compile-once runtime over an
/// artifact: a BFV context plus encoder-only layer caches (no weight
/// NTTs, no weight memory). The server-only counterpart — weights, ring
/// encodings, NTT-form weight plaintexts — is `CompiledModel`
/// (compiled_model.hpp), which embeds the same artifact and is
/// constructed from it plus the trained model.

#include <memory>
#include <optional>
#include <span>

#include "he/bfv.hpp"
#include "mpc/gc_cache.hpp"
#include "pi/plan.hpp"

namespace c2pi::pi {

/// Public, serializable description of a compiled model's crypto prefix.
/// Contains no weights and nothing derived from weights; both parties
/// must agree on every field for a session to succeed.
struct ModelArtifact {
    /// Compile-time knobs that shape the artifact (the server-side
    /// options minus serving-only concerns like thread counts).
    struct Options {
        /// Per-sample input shape [C,H,W]; the plan is geometry-dependent.
        Shape input_chw;
        /// Last crypto operation; nullopt = full PI (all linear ops crypto).
        std::optional<nn::CutPoint> boundary;
        FixedPointFormat fmt{.frac_bits = 16};
        std::size_t he_ring_degree = 4096;
    };

    Shape input_chw;            ///< [C,H,W] per-sample input shape
    nn::CutPoint cut;           ///< resolved boundary (last crypto op)
    bool full_pi = false;       ///< no revealed clear tail
    /// Total linear ops of the model. Disclosing the clear-tail depth is
    /// deliberate and paper-consistent: the client already learns it from
    /// every PiResult (hidden_linear_ops).
    std::int64_t num_linear_ops = 0;
    FixedPointFormat fmt{.frac_bits = 16};
    std::size_t he_ring_degree = 4096;
    /// BFV parameters beyond the ring degree, serialized so the client
    /// reconstructs the exact he::BfvContext from the artifact alone.
    int he_limbs = 4;
    int he_noise_bound = 4;
    std::vector<LayerPlan> plan;  ///< crypto layers [0, flat cut index]

    /// Plan the crypto prefix of `model` under `options` and package the
    /// public half. Throws c2pi::Error on invalid options (bad fixed-point
    /// format, non-power-of-two ring degree, boundary past the last
    /// linear op, a boundary that a skip edge crosses) — validation
    /// happens here, at the API boundary.
    [[nodiscard]] static ModelArtifact build(const nn::Graph& model, const Options& options);

    /// Structural validation (no model required): shape chain consistency,
    /// parameter ranges, plan/boundary agreement. deserialize() runs this
    /// on every decoded artifact so a corrupt or hostile payload fails
    /// with a typed c2pi::Error instead of poisoning the protocol.
    void validate() const;

    /// Versioned binary codec (magic/version/length-checked; all integers
    /// little-endian; see docs/PROTOCOL.md §3 for the normative layout).
    /// serialize() is deterministic: equal artifacts produce identical
    /// bytes, so re-serializing a decoded artifact is byte-stable. Chain
    /// plans emit version 1 (byte-identical to pre-DAG artifacts); plans
    /// with skip edges or v2-only ops emit version 2, which appends the
    /// two edge indices to every plan entry.
    [[nodiscard]] std::vector<std::uint8_t> serialize() const;

    /// Decode + validate. Throws c2pi::Error on bad magic, unsupported
    /// version, truncation, trailing bytes, or any validate() failure.
    [[nodiscard]] static ModelArtifact deserialize(std::span<const std::uint8_t> bytes);

    /// BFV context parameters encoded by this artifact.
    [[nodiscard]] he::BfvContext::Params bfv_params(
        const core::ThreadPool* pool = nullptr) const {
        return he::BfvContext::Params{.n = he_ring_degree,
                                      .limbs = he_limbs,
                                      .noise_bound = he_noise_bound,
                                      .pool = pool};
    }

    /// Shape of the boundary activation, per sample (no batch dim).
    [[nodiscard]] const Shape& boundary_shape() const { return plan.back().out_shape; }
    [[nodiscard]] std::int64_t crypto_linear_ops() const { return cut.linear_index; }
    [[nodiscard]] std::int64_t hidden_linear_ops() const {
        return num_linear_ops - cut.linear_index;
    }

    friend bool operator==(const ModelArtifact&, const ModelArtifact&) = default;
};

/// The input owner's compile-once runtime: a BFV context and encoder-only
/// layer caches built from a public artifact. Holds zero model weights —
/// a process linking only this type cannot leak what it never had.
/// Immutable after construction and const-shareable across sessions,
/// mirroring CompiledModel on the server side.
class ClientModel {
public:
    /// Compiles the client half from an artifact (typically received over
    /// the wire). `num_threads` parallelizes the client's HE hot loops:
    /// 0 = auto (C2PI_THREADS / hardware_concurrency), 1 = serial. Any
    /// value is transcript-preserving. Throws c2pi::Error if the artifact
    /// fails validate().
    explicit ClientModel(ModelArtifact artifact, int num_threads = 0);

    ClientModel(const ClientModel&) = delete;
    ClientModel& operator=(const ClientModel&) = delete;

    [[nodiscard]] const ModelArtifact& artifact() const { return artifact_; }
    [[nodiscard]] const he::BfvContext& bfv() const { return bfv_; }
    /// Encoder geometry per crypto layer; w_ntt of every cache is empty.
    [[nodiscard]] const std::vector<LayerCache>& layer_caches() const { return caches_; }
    /// Resolved thread count (after auto-detection).
    [[nodiscard]] int num_threads() const;

    /// GC max-circuit cache shared by this client's sessions, mirroring
    /// CompiledModel::gc_cache() on the server side.
    [[nodiscard]] mpc::GcCircuitCache& gc_cache() const { return gc_cache_; }

private:
    ModelArtifact artifact_;
    std::unique_ptr<core::ThreadPool> pool_;  ///< null when running serially
    he::BfvContext bfv_;                      ///< borrows pool_
    std::vector<LayerCache> caches_;          ///< borrows bfv_; encoders only
    mutable mpc::GcCircuitCache gc_cache_;
};

}  // namespace c2pi::pi
