#include "pi/service.hpp"

#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/stopwatch.hpp"

namespace c2pi::pi {

namespace {

/// Rendezvous for the batched clear tail: every server session deposits
/// its revealed boundary activation; the last arrival runs ONE batched
/// plaintext pass and wakes the rest, which pick up their row.
struct TailBatch {
    /// Secondary failure: a sibling request died, so the rendezvous can
    /// never complete. Distinct from Error so the batch can surface the
    /// sibling's root cause instead of this consequence.
    struct Aborted final : Error {
        Aborted() : Error("batched clear tail aborted: a sibling request failed") {}
    };

    std::mutex mutex;
    std::condition_variable cv;
    Tensor activations;  ///< [N, ...boundary shape]
    Tensor logits;       ///< [N, classes] once done
    std::size_t expected = 0;
    std::size_t arrived = 0;
    bool done = false;
    bool failed = false;

    void abort() {
        {
            const std::lock_guard<std::mutex> lock(mutex);
            failed = true;
        }
        cv.notify_all();
    }

    Tensor deposit_and_wait(const CompiledModel& cm, std::size_t slot, const Tensor& act) {
        std::unique_lock<std::mutex> lock(mutex);
        const std::int64_t per = act.numel();
        for (std::int64_t j = 0; j < per; ++j)
            activations[static_cast<std::int64_t>(slot) * per + j] = act[j];
        if (++arrived == expected) {
            logits = cm.run_clear_tail(activations);  // the single batched pass
            done = true;
            cv.notify_all();
        } else {
            cv.wait(lock, [&] { return done || failed; });
            if (!done) throw Aborted{};
        }
        const std::int64_t classes = logits.dim(1);
        Tensor row({1, classes});
        for (std::int64_t j = 0; j < classes; ++j)
            row[j] = logits.at(static_cast<std::int64_t>(slot), j);
        return row;
    }
};

/// Upper bound on a tail-rendezvous group: every request in a group runs
/// concurrently (three threads each), so this caps thread usage while a
/// batch of any size still executes at most ceil(n / group) tail passes.
constexpr std::size_t kMaxRendezvousGroup = 64;

}  // namespace

InferenceService::BatchResult InferenceService::run_batch(std::span<const Tensor> inputs) const {
    const std::size_t n = inputs.size();
    require(n > 0, "run_batch on an empty batch");
    const CompiledModel& cm = *model_;
    // Validate the whole batch before any session starts: one bad input
    // failing mid-protocol would otherwise poison its peer and abort the
    // batched tail for every sibling request.
    for (const Tensor& input : inputs) validate_client_input(cm, input);
    Stopwatch watch;

    BatchResult batch;
    batch.results.resize(n);

    // Every request of a rendezvous group must be in flight at once (the
    // batched tail blocks until all of them reach the boundary), and each
    // request costs three threads. Serve oversized batches as a sequence
    // of bounded groups — one tail pass per group — instead of spawning
    // an unbounded number of OS threads.
    const bool batched_tail = !cm.full_pi();
    const auto serve_group = [&](std::size_t begin, std::size_t count) {
        TailBatch tail_batch;
        if (batched_tail) {
            tail_batch.expected = count;
            tail_batch.activations =
                Tensor(cm.batched_boundary_shape(static_cast<std::int64_t>(count)));
        }
        std::vector<net::DuplexChannel> channels(count);
        std::vector<std::exception_ptr> errors(count);
        std::vector<std::thread> workers;
        workers.reserve(count);
        for (std::size_t g = 0; g < count; ++g) {
            workers.emplace_back([&, g] {
                const std::size_t i = begin + g;
                try {
                    const ServerSession server(cm, config_);
                    const ClientSession client(cm, config_);
                    Tensor logits;
                    const auto run = net::run_two_party(
                        channels[g],
                        [&](net::Transport& t) {
                            if (batched_tail) {
                                server.run(t, [&](const Tensor& act) {
                                    return tail_batch.deposit_and_wait(cm, g, act);
                                });
                            } else {
                                server.run(t);
                            }
                        },
                        [&](net::Transport& t) { logits = client.run(t, inputs[i]); });
                    PiResult& res = batch.results[i];
                    res.logits = std::move(logits);
                    res.stats = stats_from_run(run);
                    res.crypto_linear_ops = cm.crypto_linear_ops();
                    res.hidden_linear_ops = cm.hidden_linear_ops();
                } catch (...) {
                    errors[g] = std::current_exception();
                    if (batched_tail) tail_batch.abort();
                }
            });
        }
        for (auto& w : workers) w.join();
        // Surface the root cause: a request woken by abort() only carries
        // the secondary TailBatch::Aborted error, so prefer any other one.
        std::exception_ptr first;
        for (const auto& e : errors) {
            if (!e) continue;
            if (!first) first = e;
            try {
                std::rethrow_exception(e);
            } catch (const TailBatch::Aborted&) {
                continue;  // consequence, keep looking for the cause
            } catch (...) {
                throw;
            }
        }
        if (first) std::rethrow_exception(first);
    };
    for (std::size_t begin = 0; begin < n; begin += kMaxRendezvousGroup)
        serve_group(begin, std::min(kMaxRendezvousGroup, n - begin));

    for (const PiResult& res : batch.results) {
        batch.aggregate.offline_bytes += res.stats.offline_bytes;
        batch.aggregate.online_bytes += res.stats.online_bytes;
        batch.aggregate.offline_flights += res.stats.offline_flights;
        batch.aggregate.online_flights += res.stats.online_flights;
    }
    batch.aggregate.wall_seconds = watch.seconds();
    return batch;
}

}  // namespace c2pi::pi
