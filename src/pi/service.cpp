#include "pi/service.hpp"

#include <optional>
#include <thread>

#include "core/stopwatch.hpp"
#include "pi/tail_batch.hpp"

namespace c2pi::pi {

namespace {

/// Upper bound on a tail-rendezvous group: every request in a group runs
/// concurrently (three threads each), so this caps thread usage while a
/// batch of any size still executes at most ceil(n / group) tail passes.
constexpr std::size_t kMaxRendezvousGroup = 64;

}  // namespace

InferenceService::BatchResult InferenceService::run_batch(std::span<const Tensor> inputs) const {
    const std::size_t n = inputs.size();
    require(n > 0, "run_batch on an empty batch");
    const CompiledModel& cm = *model_;
    // Validate the whole batch before any session starts: one bad input
    // failing mid-protocol would otherwise poison its peer and abort the
    // batched tail for every sibling request.
    for (const Tensor& input : inputs) validate_client_input(cm, input);
    Stopwatch watch;

    BatchResult batch;
    batch.results.resize(n);

    // Every request of a rendezvous group must be in flight at once (the
    // batched tail blocks until all of them reach the boundary), and each
    // request costs three threads. Serve oversized batches as a sequence
    // of bounded groups — one tail pass per group — instead of spawning
    // an unbounded number of OS threads.
    const bool batched_tail = !cm.full_pi();
    const auto serve_group = [&](std::size_t begin, std::size_t count) {
        // Fixed-size rendezvous: the batch size is known up front, so the
        // group waits for all of it and runs ONE clear-tail pass
        // (tail_batch.hpp; the serving pool shares the same batcher in
        // its windowed mode).
        std::optional<TailBatcher> tail_batch;
        if (batched_tail) tail_batch.emplace(cm, TailBatcher::Fixed{count});
        std::vector<net::DuplexChannel> channels(count);
        std::vector<std::exception_ptr> errors(count);
        std::vector<std::thread> workers;
        workers.reserve(count);
        for (std::size_t g = 0; g < count; ++g) {
            workers.emplace_back([&, g] {
                const std::size_t i = begin + g;
                try {
                    const ServerSession server(cm, config_);
                    const ClientSession client(cm, config_);
                    Tensor logits;
                    const auto run = net::run_two_party(
                        channels[g],
                        [&](net::Transport& t) {
                            if (batched_tail) {
                                server.run(t, [&](const Tensor& act) {
                                    return tail_batch->run(act);
                                });
                            } else {
                                server.run(t);
                            }
                        },
                        [&](net::Transport& t) { logits = client.run(t, inputs[i]); });
                    PiResult& res = batch.results[i];
                    res.logits = std::move(logits);
                    res.stats = stats_from_run(run);
                    res.crypto_linear_ops = cm.crypto_linear_ops();
                    res.hidden_linear_ops = cm.hidden_linear_ops();
                } catch (...) {
                    errors[g] = std::current_exception();
                    if (batched_tail) tail_batch->abort();
                }
            });
        }
        for (auto& w : workers) w.join();
        // Surface the root cause: a request woken by abort() only carries
        // the secondary TailBatch::Aborted error, so prefer any other one.
        std::exception_ptr first;
        for (const auto& e : errors) {
            if (!e) continue;
            if (!first) first = e;
            try {
                std::rethrow_exception(e);
            } catch (const TailBatcher::Aborted&) {
                continue;  // consequence, keep looking for the cause
            } catch (...) {
                throw;
            }
        }
        if (first) std::rethrow_exception(first);
    };
    for (std::size_t begin = 0; begin < n; begin += kMaxRendezvousGroup)
        serve_group(begin, std::min(kMaxRendezvousGroup, n - begin));

    for (const PiResult& res : batch.results) {
        batch.aggregate.offline_bytes += res.stats.offline_bytes;
        batch.aggregate.online_bytes += res.stats.online_bytes;
        batch.aggregate.preprocess_bytes += res.stats.preprocess_bytes;
        batch.aggregate.offline_flights += res.stats.offline_flights;
        batch.aggregate.online_flights += res.stats.online_flights;
        batch.aggregate.preprocess_flights += res.stats.preprocess_flights;
    }
    batch.aggregate.wall_seconds = watch.seconds();
    return batch;
}

}  // namespace c2pi::pi
