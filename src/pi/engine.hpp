#pragma once

/// \file engine.hpp
/// Two-party private inference engines and the C2PI runner.
///
/// Backends:
///  * kCheetah — Huang et al. 2022 style: HE linear layers + OT millionaire
///    non-linear layers, online-only.
///  * kDelphi — Mishra et al. 2020 style: the HE linear work and the
///    garbled-circuit tables are charged to an input-independent offline
///    phase; online traffic is GC label transfer/evaluation and share
///    reveals. (Our implementation executes the phases inline but tags
///    traffic per phase, which preserves the cost profile — DESIGN.md §6.)
///
/// C2PI (the paper's contribution): only the layers up to `boundary` run
/// under MPC. The client then adds uniform noise of magnitude
/// `noise_lambda` to its share and reveals it; the server finishes the
/// clear layers in plaintext and returns the logits. Full PI is the
/// special case boundary == last linear op (paper §I).

#include <optional>

#include "net/cost_model.hpp"
#include "net/runtime.hpp"
#include "pi/plan.hpp"

namespace c2pi::pi {

enum class PiBackend { kDelphi, kCheetah };

[[nodiscard]] inline const char* backend_name(PiBackend b) {
    return b == PiBackend::kDelphi ? "Delphi" : "Cheetah";
}

struct PiStats {
    std::uint64_t offline_bytes = 0;
    std::uint64_t online_bytes = 0;
    std::uint64_t offline_flights = 0;
    std::uint64_t online_flights = 0;
    double wall_seconds = 0.0;

    [[nodiscard]] std::uint64_t total_bytes() const { return offline_bytes + online_bytes; }
    [[nodiscard]] std::uint64_t total_flights() const { return offline_flights + online_flights; }

    /// End-to-end latency under a network model (DESIGN.md §4 subst. 5).
    [[nodiscard]] double latency_seconds(const net::NetworkModel& net) const {
        return net.latency_seconds(wall_seconds, total_bytes(), total_flights());
    }
};

struct PiResult {
    Tensor logits;  ///< client's view of the inference output [1, classes]
    PiStats stats;
    std::int64_t crypto_linear_ops = 0;  ///< linear ops run under MPC
    std::int64_t hidden_linear_ops = 0;  ///< clear-layer ops hidden from the client
};

class PiEngine {
public:
    struct Options {
        PiBackend backend = PiBackend::kCheetah;
        FixedPointFormat fmt{.frac_bits = 16};
        std::size_t he_ring_degree = 4096;
        /// Last crypto operation; nullopt = full PI (all linear ops crypto).
        std::optional<nn::CutPoint> boundary;
        /// Uniform noise magnitude the client adds to its revealed share
        /// (C2PI's extra defense; ignored for full PI).
        float noise_lambda = 0.0F;
        std::uint64_t seed = kDefaultSeed;
    };

    /// The engine borrows the model; it must outlive the engine.
    PiEngine(nn::Sequential& model, Options options);

    /// Run one private inference on a [1,C,H,W] client input.
    [[nodiscard]] PiResult run(const Tensor& input);

    [[nodiscard]] const Options& options() const { return options_; }

private:
    nn::Sequential* model_;
    Options options_;
    he::BfvContext bfv_;
};

}  // namespace c2pi::pi
