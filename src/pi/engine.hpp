#pragma once

/// \file engine.hpp
/// DEPRECATED single-shot engine API, kept as a thin adapter for older
/// call sites. New code should use the compile-once/serve-many API
/// directly (see docs/API.md):
///
///   pi::CompiledModel   — immutable setup artifact (compiled_model.hpp)
///   pi::ServerSession / pi::ClientSession — party roles (session.hpp)
///   pi::InferenceService — batched serving front-end (service.hpp)
///
/// `PiEngine` fuses both parties into one object and recompiles nothing
/// across runs anymore: the first run() compiles a CompiledModel for the
/// input's shape and every later run() reuses it. For a fixed model this
/// is bit-identical to the historical engine (logits, traffic,
/// determinism). One semantic difference: the crypto-layer weights are
/// snapshotted at the first run(), so mutating the model between runs
/// (e.g. further training) is not picked up — construct a fresh engine,
/// or better, a fresh CompiledModel, after changing weights.

#include <memory>

#include "pi/service.hpp"

namespace c2pi::pi {

/// \deprecated Adapter over CompiledModel + sessions; see file comment.
class PiEngine {
public:
    struct Options {
        PiBackend backend = PiBackend::kCheetah;
        FixedPointFormat fmt{.frac_bits = 16};
        std::size_t he_ring_degree = 4096;
        /// Last crypto operation; nullopt = full PI (all linear ops crypto).
        std::optional<nn::CutPoint> boundary;
        /// Uniform noise magnitude the client adds to its revealed share
        /// (C2PI's extra defense; ignored for full PI).
        float noise_lambda = 0.0F;
        std::uint64_t seed = kDefaultSeed;
    };

    /// The engine borrows the model; it must outlive the engine.
    PiEngine(const nn::Sequential& model, Options options)
        : model_(&model), options_(options) {}

    /// Run one private inference on a [1,C,H,W] client input. Compiles
    /// once (per input shape) and reuses the artifact afterwards.
    [[nodiscard]] PiResult run(const Tensor& input);

    [[nodiscard]] const Options& options() const { return options_; }

    /// The underlying artifact; available after the first run().
    [[nodiscard]] const CompiledModel* compiled() const { return compiled_.get(); }

private:
    const nn::Sequential* model_;
    Options options_;
    std::unique_ptr<CompiledModel> compiled_;
};

}  // namespace c2pi::pi
