#pragma once

/// \file c2pi.hpp
/// The top-level C2PI facade (paper Fig. 2): the server (a) searches for
/// the crypto-clear boundary with Algorithm 1 + DINA, then (b) compiles
/// the model ONCE for that boundary into an immutable `CompiledModel`,
/// and (c) serves any number of private inferences against it through an
/// `InferenceService` — per-request crypto layers, batched clear tail.
/// This header wires boundary search and the serve-many PI API into one
/// object; see docs/API.md for the underlying compile-once flow.

#include "pi/boundary.hpp"
#include "pi/service.hpp"

namespace c2pi::pi {

struct C2piOptions {
    PiBackend backend = PiBackend::kCheetah;
    BoundaryConfig boundary;  ///< sigma / delta / lambda of Algorithm 1
    FixedPointFormat fmt{.frac_bits = 16};
    std::size_t he_ring_degree = 4096;
    std::uint64_t seed = kDefaultSeed;
    /// Nonlinear backend override (nullopt = the family's native choice;
    /// see SessionConfig::nonlinear).
    std::optional<mpc::NonlinearBackend> nonlinear;
};

/// A configured crypto-clear private inference system: one boundary
/// search + one compilation, then serve-many.
class C2piSystem {
public:
    /// Server-side setup: run Algorithm 1 with the given IDPA, then
    /// compile the model once for the discovered boundary. The input
    /// shape is taken from the dataset's samples.
    C2piSystem(nn::Graph& model, const data::SyntheticImageDataset& dataset,
               const attack::IdpaFactory& make_attack, const C2piOptions& options);

    /// Setup with a pre-computed boundary (skips Algorithm 1).
    C2piSystem(const nn::Graph& model, const nn::CutPoint& boundary,
               const Shape& input_chw, const C2piOptions& options);

    /// One private inference; see InferenceService::run.
    [[nodiscard]] PiResult infer(const Tensor& input) const { return service_.run(input); }

    /// Batched private inference: crypto layers per request, the revealed
    /// clear tail as one batched plaintext pass on the server.
    [[nodiscard]] InferenceService::BatchResult infer_batch(std::span<const Tensor> inputs) const {
        return service_.run_batch(inputs);
    }

    [[nodiscard]] const BoundaryResult& boundary() const { return boundary_; }
    [[nodiscard]] const CompiledModel& compiled() const { return compiled_; }
    [[nodiscard]] const InferenceService& service() const { return service_; }

private:
    BoundaryResult boundary_;
    CompiledModel compiled_;
    InferenceService service_;
};

}  // namespace c2pi::pi
