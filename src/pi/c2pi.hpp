#pragma once

/// \file c2pi.hpp
/// The top-level C2PI facade (paper Fig. 2): the server (a) searches for
/// the crypto-clear boundary with Algorithm 1 + DINA, then (b) the two
/// parties run the crypto layers under an existing PI backend and (c) the
/// client reveals its noised share so the server finishes the clear
/// layers alone. This header wires boundary search and the PI engine into
/// one object — the API most examples use.

#include "pi/boundary.hpp"
#include "pi/engine.hpp"

namespace c2pi::pi {

struct C2piOptions {
    PiBackend backend = PiBackend::kCheetah;
    BoundaryConfig boundary;  ///< sigma / delta / lambda of Algorithm 1
    FixedPointFormat fmt{.frac_bits = 16};
    std::size_t he_ring_degree = 4096;
    std::uint64_t seed = kDefaultSeed;
};

/// A configured crypto-clear private inference system.
class C2piSystem {
public:
    /// Server-side setup: run Algorithm 1 with the given IDPA and build
    /// the engine for the discovered boundary.
    C2piSystem(nn::Sequential& model, const data::SyntheticImageDataset& dataset,
               const attack::IdpaFactory& make_attack, const C2piOptions& options);

    /// Setup with a pre-computed boundary (skips Algorithm 1).
    C2piSystem(nn::Sequential& model, const nn::CutPoint& boundary, const C2piOptions& options);

    /// One private inference; see PiEngine::run.
    [[nodiscard]] PiResult infer(const Tensor& input) { return engine_.run(input); }

    [[nodiscard]] const BoundaryResult& boundary() const { return boundary_; }
    [[nodiscard]] const PiEngine& engine() const { return engine_; }

private:
    BoundaryResult boundary_;
    PiEngine engine_;
};

/// Full-PI baseline engine for the same model/backend (the paper's
/// comparison point in Table II).
[[nodiscard]] PiEngine make_full_pi_engine(nn::Sequential& model, PiBackend backend,
                                           const C2piOptions& options);

}  // namespace c2pi::pi
