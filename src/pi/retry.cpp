#include "pi/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace c2pi::pi {

void RetryPolicy::validate() const {
    require(max_attempts >= 1, "RetryPolicy: max_attempts must be >= 1");
    require(initial_backoff_ms >= 0, "RetryPolicy: initial_backoff_ms must be >= 0");
    require(max_backoff_ms >= initial_backoff_ms,
            "RetryPolicy: max_backoff_ms must be >= initial_backoff_ms");
    require(multiplier >= 1.0, "RetryPolicy: multiplier must be >= 1");
    require(jitter >= 0.0 && jitter <= 1.0, "RetryPolicy: jitter must lie in [0, 1]");
}

int RetryPolicy::backoff_ms(int attempt) const {
    if (attempt <= 1) return 0;
    const double grown =
        static_cast<double>(initial_backoff_ms) * std::pow(multiplier, attempt - 2);
    const double capped = std::min(grown, static_cast<double>(max_backoff_ms));
    if (jitter <= 0.0) return static_cast<int>(capped);
    // SplitMix64 over (seed, attempt): deterministic, replayable, and
    // different seeds decorrelate a storm of identical clients.
    std::uint64_t s = jitter_seed + static_cast<std::uint64_t>(attempt) * 0x9e3779b97f4a7c15ULL;
    s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ULL;
    s = (s ^ (s >> 27)) * 0x94d049bb133111ebULL;
    s ^= s >> 31;
    const double unit = static_cast<double>(s >> 11) * 0x1.0p-53;  // [0, 1)
    // Delay drawn from [(1 - jitter) * capped, capped].
    return static_cast<int>(capped * (1.0 - jitter * unit));
}

void detail_sleep_ms(int milliseconds) {
    if (milliseconds > 0) std::this_thread::sleep_for(std::chrono::milliseconds(milliseconds));
}

}  // namespace c2pi::pi
