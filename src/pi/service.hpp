#pragma once

/// \file service.hpp
/// Batched serving front-end over the session API.
///
/// `InferenceService` accepts a batch of client inputs and serves them
/// against one shared `const CompiledModel`. The crypto layers run
/// per-request (each request gets its own in-process session pair, all
/// concurrently), but the revealed clear-layer tail — plain float compute
/// on the server — is coalesced into ONE batched plaintext pass: the
/// paper's crypto-clear split makes the server tail trivially batchable.
/// The rendezvous is a fixed-group `pi::TailBatcher` (tail_batch.hpp);
/// `pi::ServingPool` (serving_pool.hpp) shares the same batcher in its
/// windowed mode to coalesce tails across independent TCP clients.

#include <span>

#include "pi/session.hpp"

namespace c2pi::pi {

class InferenceService {
public:
    InferenceService(const CompiledModel& model, SessionConfig config)
        : model_(&model), config_(config) {}

    /// Serve a single request (one in-process session pair).
    [[nodiscard]] PiResult run(const Tensor& input) const {
        return run_private_inference(*model_, config_, input);
    }

    struct BatchResult {
        /// One per input, in order. A request's `stats.wall_seconds` is its
        /// end-to-end latency *inside the batch*, which includes waiting at
        /// the tail rendezvous for sibling requests — by design, as a real
        /// batched server's per-request latency would. Use `aggregate` for
        /// the joint cost of the batch.
        std::vector<PiResult> results;
        PiStats aggregate;  ///< summed traffic, joint wall time
    };

    /// Serve a batch of [1,C,H,W] inputs. Crypto layers run per-request
    /// (concurrent session pairs); for a crypto-clear boundary the clear
    /// tail executes as ONE batched plaintext pass per rendezvous group
    /// (a single pass for batches up to the internal group bound of 64;
    /// larger batches are served as a sequence of bounded groups to cap
    /// thread usage).
    [[nodiscard]] BatchResult run_batch(std::span<const Tensor> inputs) const;

    [[nodiscard]] const CompiledModel& model() const { return *model_; }
    [[nodiscard]] const SessionConfig& config() const { return config_; }

private:
    const CompiledModel* model_;
    SessionConfig config_;
};

}  // namespace c2pi::pi
