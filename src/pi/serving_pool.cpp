#include "pi/serving_pool.hpp"

#include <algorithm>

#include "core/stopwatch.hpp"

namespace c2pi::pi {

namespace {

/// Validate every option at the API boundary, then resolve the worker
/// count (0 = auto, like CompiledModel::Options::num_threads).
int validated_workers(const ServingPool::Options& o) {
    require(o.workers >= 0 && o.workers <= core::kMaxThreads,
            "ServingPool workers must lie in [0, 1024] (0 = auto)");
    require(o.queue_capacity >= 0, "ServingPool queue_capacity must be >= 0");
    require(o.recv_timeout_ms >= 0, "ServingPool recv_timeout_ms must be >= 0");
    require(o.handshake_timeout_ms >= 0,
            "ServingPool handshake_timeout_ms must be >= 0 (0 disables the short deadline)");
    require(o.tail_window_ms >= 0, "ServingPool tail_window_ms must be >= 0");
    return core::resolve_thread_count(o.workers);
}

}  // namespace

const char* failure_class_name(FailureClass c) {
    switch (c) {
        case FailureClass::kClientAbort: return "client-abort";
        case FailureClass::kProtocolViolation: return "protocol-violation";
        case FailureClass::kTimeout: return "timeout";
        case FailureClass::kInternal: return "internal";
    }
    return "internal";
}

FailureClass classify_failure(const std::exception& e) {
    // Order matters: the typed transport failures derive c2pi::Error, so
    // they must be tested before the generic Error bucket.
    if (dynamic_cast<const net::RecvTimeout*>(&e) != nullptr) return FailureClass::kTimeout;
    if (dynamic_cast<const net::PeerClosed*>(&e) != nullptr) return FailureClass::kClientAbort;
    // A sibling session poisoned the shared batch pass — not this
    // client's doing, and not its protocol's.
    if (dynamic_cast<const TailBatcher::Aborted*>(&e) != nullptr) return FailureClass::kInternal;
    if (dynamic_cast<const Error*>(&e) != nullptr) return FailureClass::kProtocolViolation;
    return FailureClass::kInternal;
}

ServingPool::ServingPool(const CompiledModel& model, SessionConfig config, Options options,
                         std::function<void(const SessionReport&)> on_session)
    : model_(&model),
      session_(model, config),
      artifact_bytes_(model.artifact().serialize()),
      artifact_digest_(digest_of(artifact_bytes_)),
      options_(options),
      on_session_(std::move(on_session)),
      queue_(validated_workers(options), options.queue_capacity) {
    if (options.tail_window_ms > 0 && !model.full_pi()) {
        // At most `workers` sessions can be at the boundary at once, so a
        // group of that size closes with zero extra wait.
        batcher_ = std::make_unique<TailBatcher>(
            model, TailBatcher::Windowed{static_cast<std::size_t>(workers()),
                                         std::chrono::milliseconds(options.tail_window_ms)});
    }
}

ServingPool::~ServingPool() { drain(); }

bool ServingPool::serve(std::unique_ptr<net::TcpTransport> transport) {
    require(transport != nullptr, "ServingPool::serve needs a connected transport");
    // shared_ptr: std::function requires a copyable callable.
    std::shared_ptr<net::TcpTransport> shared(std::move(transport));
    std::uint64_t index = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        index = ++stats_.accepted;
    }
    const bool admitted =
        queue_.try_submit([this, shared, index] { serve_one(*shared, index); });
    if (!admitted) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.rejected;
        }
        // Typed refusal, then an immediate goodbye: the client's pending
        // recv raises net::ServerBusy instead of a protocol error.
        // close_now (no drain) because serve() runs on the accept loop —
        // a slow or hostile peer must not stall admission; the drain is
        // safe to skip here since the peer has sent nothing past the
        // handshake we already consumed.
        try {
            shared->send_busy();
        } catch (...) {  // peer already gone; nothing to refuse
        }
        shared->close_now();
    }
    return admitted;
}

void ServingPool::serve_one(net::TcpTransport& transport, std::uint64_t index) noexcept {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.active;
        stats_.concurrent_peak = std::max(stats_.concurrent_peak, stats_.active);
    }
    SessionReport report;
    report.index = index;
    Stopwatch watch;
    try {
        transport.set_recv_timeout(options_.recv_timeout_ms);
        // Bootstrap-phase laggards (connected-then-silent, died after the
        // handshake) are shed on the short deadline; the transport
        // promotes to the steady timeout at the first DATA frame.
        if (options_.handshake_timeout_ms > 0)
            transport.arm_handshake_deadline(options_.handshake_timeout_ms);
        report.artifact_from_cache =
            ship_artifact(transport, artifact_bytes_, artifact_digest_);
        if (batcher_ != nullptr) {
            session_.run(transport,
                         [this](const Tensor& act) { return batcher_->run(act); });
        } else {
            session_.run(transport);
        }
        report.stats = stats_from_transport(transport);
        report.stats.wall_seconds = watch.seconds();
        report.ok = true;
    } catch (const std::exception& e) {
        report.ok = false;
        report.error = e.what();
        report.failure = classify_failure(e);
    } catch (...) {
        report.ok = false;
        report.error = "unknown error";
        report.failure = FailureClass::kInternal;
    }
    transport.close();  // noexcept; idempotent
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        --stats_.active;
        if (report.artifact_from_cache) ++stats_.artifact_skips;
        if (report.ok) {
            ++stats_.served;
            stats_.traffic.offline_bytes += report.stats.offline_bytes;
            stats_.traffic.online_bytes += report.stats.online_bytes;
            stats_.traffic.preprocess_bytes += report.stats.preprocess_bytes;
            stats_.traffic.offline_flights += report.stats.offline_flights;
            stats_.traffic.online_flights += report.stats.online_flights;
            stats_.traffic.preprocess_flights += report.stats.preprocess_flights;
            stats_.traffic.wall_seconds += report.stats.wall_seconds;
            stats_.traffic.offline_wait_seconds += report.stats.offline_wait_seconds;
            stats_.traffic.online_wait_seconds += report.stats.online_wait_seconds;
            stats_.traffic.preprocess_wait_seconds += report.stats.preprocess_wait_seconds;
        } else {
            ++stats_.failed;
            ++stats_.failed_by_class[static_cast<int>(report.failure)];
        }
    }
    if (on_session_) {
        // Serialized on its own mutex so one slow observer (stdout) never
        // blocks a stats() reader.
        const std::lock_guard<std::mutex> lock(report_mutex_);
        on_session_(report);
    }
}

void ServingPool::drain() { queue_.drain(); }

ServingPool::Stats ServingPool::stats() const {
    Stats snapshot;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        snapshot = stats_;
    }
    if (batcher_ != nullptr) {
        snapshot.tail_batches = batcher_->batches();
        snapshot.tail_requests = batcher_->requests();
    }
    return snapshot;
}

}  // namespace c2pi::pi
