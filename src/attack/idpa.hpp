#pragma once

/// \file idpa.hpp
/// Inference-data-privacy attacks (IDPAs): the adversarial server tries to
/// reconstruct the client's input x from an intermediate activation
/// M_l(x) (paper §II). The attack interface plus the SSIM evaluation
/// harness that Algorithm 1 and Figs. 1/4/5/6/8 are built on.

#include <functional>
#include <memory>

#include "data/synthetic.hpp"
#include "nn/sequential.hpp"

namespace c2pi::attack {

class Idpa {
public:
    virtual ~Idpa() = default;
    Idpa(const Idpa&) = delete;
    Idpa& operator=(const Idpa&) = delete;

    /// Prepare the attack for a cut point (e.g., train the inversion
    /// network on the attacker's own data). `noise_lambda` is the uniform
    /// share-noise magnitude the defense adds — the attacker knows it and
    /// trains against it (strongest-attack convention, paper §IV-A).
    virtual void fit(nn::Graph& model, const nn::CutPoint& cut,
                     const data::SyntheticImageDataset& dataset, float noise_lambda) = 0;

    /// Reconstruct an input estimate from an activation (batch of one).
    [[nodiscard]] virtual Tensor recover(nn::Graph& model, const nn::CutPoint& cut,
                                         const Tensor& activation) = 0;

    [[nodiscard]] virtual std::string name() const = 0;

protected:
    Idpa() = default;
};

using IdpaFactory = std::function<std::unique_ptr<Idpa>()>;

struct IdpaEvaluation {
    double avg_ssim = 0.0;
    double avg_psnr = 0.0;
    std::size_t samples = 0;
};

/// Fit the attack, then recover `n_eval` test images from their (noised)
/// activations at `cut` and report average SSIM/PSNR against the truth.
[[nodiscard]] IdpaEvaluation evaluate_idpa(Idpa& attack, nn::Graph& model,
                                           const nn::CutPoint& cut,
                                           const data::SyntheticImageDataset& dataset,
                                           std::size_t n_eval, float noise_lambda,
                                           std::uint64_t seed);

/// Noised activation M_l(x) + U(-lambda, lambda), batch of one.
[[nodiscard]] Tensor noised_activation(nn::Graph& model, const nn::CutPoint& cut,
                                       const Tensor& image_chw, float noise_lambda, Rng& rng);

}  // namespace c2pi::attack
