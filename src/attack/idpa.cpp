#include "attack/idpa.hpp"

#include "metrics/ssim.hpp"
#include "tensor/tensor_ops.hpp"

namespace c2pi::attack {

Tensor noised_activation(nn::Graph& model, const nn::CutPoint& cut, const Tensor& image_chw,
                         float noise_lambda, Rng& rng) {
    const Tensor batched =
        image_chw.rank() == 3
            ? image_chw.reshaped({1, image_chw.dim(0), image_chw.dim(1), image_chw.dim(2)})
            : image_chw;
    Tensor act = model.forward_prefix(cut, batched);
    if (noise_lambda > 0.0F) {
        for (std::int64_t i = 0; i < act.numel(); ++i)
            act[i] += rng.uniform(-noise_lambda, noise_lambda);
    }
    return act;
}

IdpaEvaluation evaluate_idpa(Idpa& attack, nn::Graph& model, const nn::CutPoint& cut,
                             const data::SyntheticImageDataset& dataset, std::size_t n_eval,
                             float noise_lambda, std::uint64_t seed) {
    attack.fit(model, cut, dataset, noise_lambda);
    Rng rng(seed);
    IdpaEvaluation eval;
    const auto& test = dataset.test();
    n_eval = std::min(n_eval, test.size());
    for (std::size_t i = 0; i < n_eval; ++i) {
        const Tensor& truth = test[i].image;
        const Tensor act = noised_activation(model, cut, truth, noise_lambda, rng);
        Tensor guess = attack.recover(model, cut, act);
        if (guess.rank() == 4) guess = guess.reshaped({guess.dim(1), guess.dim(2), guess.dim(3)});
        guess = ops::clamp(guess, 0.0F, 1.0F);
        eval.avg_ssim += metrics::ssim(truth, guess);
        eval.avg_psnr += metrics::psnr(truth, guess);
        ++eval.samples;
    }
    if (eval.samples > 0) {
        eval.avg_ssim /= static_cast<double>(eval.samples);
        eval.avg_psnr /= static_cast<double>(eval.samples);
    }
    return eval;
}

}  // namespace c2pi::attack
