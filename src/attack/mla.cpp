#include "attack/mla.hpp"

#include <cmath>

#include "nn/layers.hpp"
#include "tensor/tensor_ops.hpp"

namespace c2pi::attack {

Tensor MlaAttack::recover(nn::Graph& model, const nn::CutPoint& cut,
                          const Tensor& activation) {
    Rng rng(config_.seed);
    require(model.layer(0).kind() == nn::LayerKind::kConv2d, "MLA expects a conv-first model");
    // Infer the input resolution: probe candidate sizes and keep the one
    // whose prefix output matches the target activation shape.
    const auto& conv1 = static_cast<const nn::Conv2d&>(model.layer(0));
    const std::int64_t channels = conv1.in_channels();
    Shape input_shape;
    for (const std::int64_t hw : {32L, 16L, 8L, 64L, 24L, 48L}) {
        Tensor probe({1, channels, hw, hw});
        try {
            const Tensor out = model.forward_prefix(cut, probe);
            if (out.shape() == activation.shape()) {
                input_shape = {1, channels, hw, hw};
                break;
            }
        } catch (const Error&) {
            continue;
        }
    }
    require(!input_shape.empty(), "could not infer input resolution for MLA");

    const std::size_t end = model.flat_cut_index(cut) + 1;
    Tensor x = Tensor::uniform(input_shape, rng, 0.0F, 1.0F);

    // Adam state for the input-space optimisation.
    Tensor m(input_shape), v(input_shape);
    const float beta1 = 0.9F, beta2 = 0.999F, eps = 1e-8F;
    for (int it = 1; it <= config_.iterations; ++it) {
        const Tensor out = model.forward_range(0, end, x);
        const auto loss = ops::mse_loss(out, activation);
        const Tensor grad = model.backward_range(0, end, loss.grad_logits);
        const float bc1 = 1.0F - std::pow(beta1, static_cast<float>(it));
        const float bc2 = 1.0F - std::pow(beta2, static_cast<float>(it));
        for (std::int64_t i = 0; i < x.numel(); ++i) {
            m[i] = beta1 * m[i] + (1.0F - beta1) * grad[i];
            v[i] = beta2 * v[i] + (1.0F - beta2) * grad[i] * grad[i];
            x[i] -= config_.lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
            x[i] = std::clamp(x[i], 0.0F, 1.0F);
        }
    }
    model.zero_grad();  // discard parameter gradients accumulated above
    return x;
}

}  // namespace c2pi::attack
