#pragma once

/// \file inverse.hpp
/// Inverse-network IDPAs: INA (He et al. 2019), EINA (Li et al. 2022,
/// residual blocks), and the paper's contribution DINA (§III-B):
///
///  * the target prefix M_l is partitioned into sub-blocks that each end
///    with a ReLU;
///  * the inversion model is a chain of *basic inverse blocks* (ResNet
///    basic block + dilated convolution), one per sub-block, run from the
///    activation back to the image;
///  * DINA adds distillation points between sub-blocks and trains with
///    L = sum_j alpha_j ||D_j - I_j||^2 + alpha_0 ||x - x_hat||^2 (Eq. 1),
///    with monotonically increasing coefficients alpha_0 < alpha_1 < ...
///    (DINA-c1; uniform coefficients give the DINA-c2 ablation of Fig. 5).

#include "attack/idpa.hpp"

namespace c2pi::attack {

enum class InverseKind {
    kPlain,      ///< INA: conv+ReLU blocks, no distillation
    kResidual,   ///< EINA: residual basic blocks, no distillation
    kDistilled,  ///< DINA: basic inverse blocks + distillation loss
};

struct InverseConfig {
    int epochs = 8;
    std::int64_t batch_size = 8;
    std::size_t train_samples = 256;  ///< attacker-side training subset
    float lr = 0.01F;
    /// Distillation coefficients (DINA only): alpha_0, alpha_1 and the
    /// geometric growth factor alpha_j = growth * alpha_{j-1} (j >= 2).
    /// The paper's DINA-c1 uses (1, 3, 2); DINA-c2 uses (1, 1, 1).
    float alpha0 = 1.0F;
    float alpha1 = 3.0F;
    float alpha_growth = 2.0F;
    std::uint64_t seed = kDefaultSeed;
};

class InverseNetAttack final : public Idpa {
public:
    explicit InverseNetAttack(InverseKind kind, InverseConfig config = {})
        : kind_(kind), config_(config) {}

    void fit(nn::Graph& model, const nn::CutPoint& cut,
             const data::SyntheticImageDataset& dataset, float noise_lambda) override;

    [[nodiscard]] Tensor recover(nn::Graph& model, const nn::CutPoint& cut,
                                 const Tensor& activation) override;

    [[nodiscard]] std::string name() const override {
        switch (kind_) {
            case InverseKind::kPlain: return "INA";
            case InverseKind::kResidual: return "EINA";
            case InverseKind::kDistilled: return "DINA";
        }
        return "?";
    }

    /// Number of basic inverse blocks after fit() (exposed for tests).
    [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }

private:
    /// One basic inverse block: inverts one target sub-block.
    struct InverseBlock {
        nn::Sequential net;
        Shape in_shape;   ///< per-sample shape it consumes
        Shape out_shape;  ///< per-sample shape it produces
    };

    void build(nn::Graph& model, const nn::CutPoint& cut, const Shape& image_chw);

    /// Target-model activations at the sub-block boundaries for a batch
    /// (D_m = attack input first, ..., D_1 last-but-one, then the image).
    [[nodiscard]] std::vector<Tensor> target_boundary_activations(nn::Graph& model,
                                                                  const Tensor& batch) const;

    InverseKind kind_;
    InverseConfig config_;
    std::vector<InverseBlock> blocks_;          ///< execution order: activation -> image
    std::vector<std::size_t> boundary_layers_;  ///< flat indices ending each sub-block
    Shape image_shape_;
};

}  // namespace c2pi::attack
