#include "attack/inverse.hpp"

#include <numeric>

#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "tensor/tensor_ops.hpp"

namespace c2pi::attack {

namespace {
Shape drop_batch(const Shape& s) { return Shape(s.begin() + 1, s.end()); }
}  // namespace

void InverseNetAttack::build(nn::Graph& model, const nn::CutPoint& cut,
                             const Shape& image_chw) {
    blocks_.clear();
    boundary_layers_.clear();
    image_shape_ = image_chw;

    const std::size_t end = model.flat_cut_index(cut) + 1;

    // Probe per-layer output shapes.
    std::vector<Shape> shape_after(end);
    {
        Tensor probe({1, image_chw[0], image_chw[1], image_chw[2]});
        Tensor a = probe;
        for (std::size_t i = 0; i < end; ++i) {
            a = model.forward_range(i, i + 1, a);
            shape_after[i] = a.shape();
        }
    }

    // Sub-blocks end at each ReLU; the final partial run (if the cut is at
    // a linear op) forms the last sub-block.
    for (std::size_t i = 0; i < end; ++i) {
        if (model.layer(i).kind() == nn::LayerKind::kRelu) boundary_layers_.push_back(i);
    }
    if (boundary_layers_.empty() || boundary_layers_.back() != end - 1)
        boundary_layers_.push_back(end - 1);

    // Per-sample boundary shapes: S_0 = image, S_k = after boundary k.
    std::vector<Shape> s(boundary_layers_.size() + 1);
    s[0] = image_chw;
    for (std::size_t k = 0; k < boundary_layers_.size(); ++k)
        s[k + 1] = drop_batch(shape_after[boundary_layers_[k]]);

    Rng rng(config_.seed ^ 0xD1A);
    const std::size_t m = boundary_layers_.size();
    for (std::size_t t = 0; t < m; ++t) {
        const Shape& in = s[m - t];       // block t inverts sub-block m-t
        const Shape& out = s[m - t - 1];
        InverseBlock block;
        block.in_shape = in;
        block.out_shape = out;

        if (in.size() == 1 && out.size() == 1) {
            block.net.emplace<nn::Linear>(in[0], out[0], rng);
            block.net.emplace<nn::Relu>();
        } else if (in.size() == 1 && out.size() == 3) {
            block.net.emplace<nn::Linear>(in[0], shape_numel(out), rng);
            block.net.emplace<nn::Reshape>(out);
            if (kind_ == InverseKind::kDistilled) {
                block.net.emplace<nn::Conv2d>(
                    out[0], out[0], ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 2, .dilation = 2},
                    rng);
            }
        } else {
            require(in.size() == 3 && out.size() == 3, "unsupported sub-block shapes");
            const std::int64_t factor = out[1] / in[1];
            if (factor > 1) block.net.emplace<nn::Upsample>(factor);
            switch (kind_) {
                case InverseKind::kPlain:
                    block.net.emplace<nn::Conv2d>(
                        in[0], out[0], ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
                    if (m - t - 1 != 0) block.net.emplace<nn::Relu>();
                    break;
                case InverseKind::kResidual:
                    block.net.emplace<nn::ResidualBlock>(in[0], out[0], rng);
                    break;
                case InverseKind::kDistilled:
                    // Basic inverse block: ResNet basic block + dilated conv.
                    block.net.emplace<nn::ResidualBlock>(in[0], in[0], rng);
                    block.net.emplace<nn::Conv2d>(
                        in[0], out[0],
                        ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 2, .dilation = 2}, rng);
                    break;
            }
        }
        blocks_.push_back(std::move(block));
    }
}

std::vector<Tensor> InverseNetAttack::target_boundary_activations(nn::Graph& model,
                                                                  const Tensor& batch) const {
    std::vector<Tensor> d;
    d.reserve(boundary_layers_.size());
    Tensor a = batch;
    std::size_t prev = 0;
    for (const std::size_t b : boundary_layers_) {
        a = model.forward_range(prev, b + 1, a);
        d.push_back(a);
        prev = b + 1;
    }
    return d;  // D_1 .. D_m (D_m is the attacked activation)
}

void InverseNetAttack::fit(nn::Graph& model, const nn::CutPoint& cut,
                           const data::SyntheticImageDataset& dataset, float noise_lambda) {
    const Shape image_chw = dataset.train().front().image.shape();
    build(model, cut, image_chw);

    std::vector<nn::Parameter*> params;
    for (auto& b : blocks_)
        for (auto* p : b.net.parameters()) params.push_back(p);
    nn::Adam opt(params, config_.lr);

    Rng rng(config_.seed ^ 0xF17);
    const std::size_t m = blocks_.size();

    // Distillation coefficients alpha_1..alpha_{m-1} (alpha_0 separate).
    std::vector<float> alphas(m, 0.0F);
    if (kind_ == InverseKind::kDistilled && m >= 2) {
        alphas[1] = config_.alpha1;
        for (std::size_t j = 2; j < m; ++j) alphas[j] = config_.alpha_growth * alphas[j - 1];
    }

    const std::size_t train_count = std::min(config_.train_samples, dataset.train().size());
    std::vector<std::size_t> order(train_count);
    std::iota(order.begin(), order.end(), 0);

    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order);
        for (std::size_t start = 0; start + 1 < train_count;
             start += static_cast<std::size_t>(config_.batch_size)) {
            const std::size_t count =
                std::min(static_cast<std::size_t>(config_.batch_size), train_count - start);
            const std::span<const std::size_t> idx(order.data() + start, count);
            const Tensor x = dataset.make_batch(dataset.train(), idx);
            const auto d = target_boundary_activations(model, x);

            // Attack input: the (noised) boundary activation.
            Tensor input = d.back();
            if (noise_lambda > 0.0F)
                for (std::int64_t i = 0; i < input.numel(); ++i)
                    input[i] += rng.uniform(-noise_lambda, noise_lambda);

            // Forward through inverse blocks, capturing block inputs I.
            std::vector<Tensor> block_inputs(m);
            Tensor h = input;
            for (std::size_t t = 0; t < m; ++t) {
                block_inputs[t] = h;
                h = blocks_[t].net.forward(h);
            }

            // Output loss (alpha_0 term).
            const auto out_loss = ops::mse_loss(h, x);
            Tensor g = ops::scale(out_loss.grad_logits, config_.alpha0);

            // Backward with distillation gradients injected at block inputs:
            // block t's input approximates D_{m-t} (t >= 1).
            for (std::size_t t = m; t > 0; --t) {
                auto& net = blocks_[t - 1].net;
                g = net.backward_range(0, net.size(), g);
                const std::size_t j = m - (t - 1);  // distillation index of this input
                if (kind_ == InverseKind::kDistilled && t - 1 >= 1 && j < m && alphas[j] > 0.0F) {
                    const auto dist = ops::mse_loss(block_inputs[t - 1], d[j - 1]);
                    ops::axpy(alphas[j], dist.grad_logits, g);
                }
            }
            opt.step();
        }
    }
}

Tensor InverseNetAttack::recover(nn::Graph& /*model*/, const nn::CutPoint& /*cut*/,
                                 const Tensor& activation) {
    require(!blocks_.empty(), "recover() before fit()");
    Tensor h = activation;
    for (auto& b : blocks_) h = b.net.forward(h);
    return ops::clamp(h, 0.0F, 1.0F);
}

}  // namespace c2pi::attack
