#pragma once

/// \file mla.hpp
/// Maximum-likelihood attack (He, Zhang, Lee — ACSAC 2019, paper §II):
/// recover x by solving argmin_x ||M_l(x) - M_l(target)||_2^2 with
/// gradient descent through the first l layers. The paper runs 10000
/// iterations; the default here is scaled for CPU (DESIGN.md §4 subst. 6)
/// and configurable.

#include "attack/idpa.hpp"

namespace c2pi::attack {

struct MlaConfig {
    int iterations = 300;
    float lr = 0.05F;
    std::uint64_t seed = kDefaultSeed;
};

class MlaAttack final : public Idpa {
public:
    explicit MlaAttack(MlaConfig config = {}) : config_(config) {}

    void fit(nn::Graph&, const nn::CutPoint&, const data::SyntheticImageDataset&,
             float) override {}

    [[nodiscard]] Tensor recover(nn::Graph& model, const nn::CutPoint& cut,
                                 const Tensor& activation) override;

    [[nodiscard]] std::string name() const override { return "MLA"; }

private:
    MlaConfig config_;
};

}  // namespace c2pi::attack
