#pragma once

/// \file linear.hpp
/// HE-based secure linear layers over additive shares (the Cheetah linear
/// protocol; the Delphi offline pair generation is the same protocol with
/// the server's share zeroed — see DESIGN.md §6).
///
/// Protocol (conv): the client encrypts its input share group-by-group;
/// the server homomorphically convolves with its plaintext weights, folds
/// in its own share's plain convolution, the bias and a fresh random mask
/// -r, mod-switches and replies. The client decrypts its new share; the
/// server's new share is r (plus its plain contribution). Outputs carry
/// fixed-point scale 2f and must be truncated by the caller.

#include "mpc/context.hpp"
#include "mpc/ring_ops.hpp"

namespace c2pi::mpc {

/// Server side of the secure convolution. `weights` are ring-encoded
/// [O,C,k,k], `bias2f` (may be empty) is per-output-channel at scale 2^2f.
/// `x_share` is the server's input share ([C,H,W]); returns the server's
/// output share ([O,OH,OW] flattened).
[[nodiscard]] std::vector<Ring> he_conv_server(PartyContext& ctx, const he::ConvGeometry& geo,
                                               std::span<const Ring> weights,
                                               std::span<const Ring> bias2f,
                                               std::span<const Ring> x_share);

/// Client side; `x_share` is the client's input share.
[[nodiscard]] std::vector<Ring> he_conv_client(PartyContext& ctx, const he::ConvGeometry& geo,
                                               std::span<const Ring> x_share);

/// Fully-connected counterpart: weights [out,in] row-major.
[[nodiscard]] std::vector<Ring> he_matvec_server(PartyContext& ctx, std::int64_t in,
                                                 std::int64_t out, std::span<const Ring> weights,
                                                 std::span<const Ring> bias2f,
                                                 std::span<const Ring> x_share);
[[nodiscard]] std::vector<Ring> he_matvec_client(PartyContext& ctx, std::int64_t in,
                                                 std::int64_t out, std::span<const Ring> x_share);

}  // namespace c2pi::mpc
