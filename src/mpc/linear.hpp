#pragma once

/// \file linear.hpp
/// HE-based secure linear layers over additive shares (the Cheetah linear
/// protocol; the Delphi offline pair generation is the same protocol with
/// the server's share zeroed — see DESIGN.md §6).
///
/// Protocol (conv): the client encrypts its input share group-by-group;
/// the server homomorphically convolves with its plaintext weights, folds
/// in its own share's plain convolution, the bias and a fresh random mask
/// -r, mod-switches and replies. The client decrypts its new share; the
/// server's new share is r (plus its plain contribution). Outputs carry
/// fixed-point scale 2f and must be truncated by the caller.
///
/// Two server entry points per layer type:
///
///  * the cache-based fast path (`ConvLayerCache` / `MatVecLayerCache`):
///    every input-independent piece — encoder geometry, the NTT-form
///    weight plaintexts and their Shoup companions — is precomputed once
///    (CompiledModel construction) and only the input-dependent work runs
///    per inference. The per-response ciphertexts are computed in
///    parallel over the cache's thread pool but SENT in deterministic
///    channel order, so the wire transcript, the traffic accounting and
///    the client's view are bit-identical to the serial path;
///
///  * the span-based convenience overloads, which build a throwaway cache
///    per call. Same transcript, seed-era cost; kept for tests and
///    one-shot callers.

#include <memory>

#include "he/encoding.hpp"
#include "mpc/context.hpp"
#include "mpc/ring_ops.hpp"

namespace c2pi::mpc {

/// Input-independent server precompute for one conv layer: encoder
/// geometry plus one NTT-form weight plaintext per (output channel,
/// input group) pair. `weights`/`bias2f` are borrowed views (the ring
/// conv of the server's own share still needs the raw weights); the
/// owner — CompiledModel's ServerLayerData — must outlive the cache.
struct ConvLayerCache {
    /// `precompute_weights = false` builds a client-side cache: encoder
    /// geometry and scatter indices only, no weight NTTs (the client
    /// never multiplies; a server handed such a cache throws).
    ConvLayerCache(const he::BfvContext& bfv, const he::ConvGeometry& geo,
                   std::span<const Ring> weights, std::span<const Ring> bias2f,
                   bool precompute_weights = true);

    he::ConvEncoder enc;
    std::span<const Ring> weights;
    std::span<const Ring> bias2f;
    std::vector<he::PlainNtt> w_ntt;  ///< [o * num_groups + g]
    /// Coefficient index of each output pixel (row-major), for the sparse
    /// mask fold (add_plain_at) — the scatter poly is zero elsewhere.
    std::vector<std::int64_t> scatter_idx;

    [[nodiscard]] const he::PlainNtt& weight_ntt(std::int64_t g, std::int64_t o) const {
        return w_ntt[static_cast<std::size_t>(o * enc.num_groups() + g)];
    }
};

/// Fully-connected counterpart: one NTT-form weight plaintext per output
/// block.
struct MatVecLayerCache {
    MatVecLayerCache(const he::BfvContext& bfv, std::int64_t in, std::int64_t out,
                     std::span<const Ring> weights, std::span<const Ring> bias2f,
                     bool precompute_weights = true);

    he::MatVecEncoder enc;
    std::int64_t in = 0, out = 0;
    std::span<const Ring> weights;
    std::span<const Ring> bias2f;
    std::vector<he::PlainNtt> w_ntt;                    ///< [block]
    std::vector<std::vector<std::int64_t>> scatter_idx; ///< [block][row]
};

/// Server side of the secure convolution over a precomputed layer cache.
/// `x_share` is the server's input share ([C,H,W]); returns the server's
/// output share ([O,OH,OW] flattened).
[[nodiscard]] std::vector<Ring> he_conv_server(PartyContext& ctx, const ConvLayerCache& cache,
                                               std::span<const Ring> x_share);

/// Convenience overload: builds a throwaway cache. `weights` are
/// ring-encoded [O,C,k,k], `bias2f` (may be empty) is per-output-channel
/// at scale 2^2f.
[[nodiscard]] std::vector<Ring> he_conv_server(PartyContext& ctx, const he::ConvGeometry& geo,
                                               std::span<const Ring> weights,
                                               std::span<const Ring> bias2f,
                                               std::span<const Ring> x_share);

/// Client side; `x_share` is the client's input share. The encoder
/// carries only public geometry, so the client reuses the compiled
/// artifact's encoder instead of rebuilding it per request.
[[nodiscard]] std::vector<Ring> he_conv_client(PartyContext& ctx, const he::ConvEncoder& enc,
                                               std::span<const Ring> x_share);
[[nodiscard]] std::vector<Ring> he_conv_client(PartyContext& ctx, const he::ConvGeometry& geo,
                                               std::span<const Ring> x_share);

/// Fully-connected counterparts: weights [out,in] row-major.
[[nodiscard]] std::vector<Ring> he_matvec_server(PartyContext& ctx,
                                                 const MatVecLayerCache& cache,
                                                 std::span<const Ring> x_share);
[[nodiscard]] std::vector<Ring> he_matvec_server(PartyContext& ctx, std::int64_t in,
                                                 std::int64_t out, std::span<const Ring> weights,
                                                 std::span<const Ring> bias2f,
                                                 std::span<const Ring> x_share);
[[nodiscard]] std::vector<Ring> he_matvec_client(PartyContext& ctx, const he::MatVecEncoder& enc,
                                                 std::span<const Ring> x_share);
[[nodiscard]] std::vector<Ring> he_matvec_client(PartyContext& ctx, std::int64_t in,
                                                 std::int64_t out, std::span<const Ring> x_share);

}  // namespace c2pi::mpc
