#pragma once

/// \file ring_ops.hpp
/// Exact plaintext linear algebra over Z_{2^64}: the server-side "plain
/// contribution" computations in the HE conv protocols and the reference
/// used by protocol tests. Geometry matches he::ConvGeometry.

#include "he/encoding.hpp"
#include "mpc/ring_tensor.hpp"

namespace c2pi::mpc {

/// conv over the ring: x laid out [C,H,W], w [O,C,k,k]; output [O,OH,OW].
[[nodiscard]] std::vector<Ring> ring_conv2d(const he::ConvGeometry& g, std::span<const Ring> x,
                                            std::span<const Ring> w);

/// y[o] = sum_j w[o*in+j] * x[j].
[[nodiscard]] std::vector<Ring> ring_matvec(std::span<const Ring> w, std::span<const Ring> x,
                                            std::int64_t in, std::int64_t out);

}  // namespace c2pi::mpc
