#pragma once

/// \file gc_cache.hpp
/// Cache of built GC max-circuits, scoped to a compiled model.
///
/// secure_maxpool's k^2-input max circuit takes real time to build, so it
/// is cached — but process-wide state (the original fix) serializes every
/// session behind one lock. Instead each CompiledModel/ClientModel owns a
/// cache and sessions point their PartyContext at it, so concurrent
/// sessions of different models never contend and the lock a session does
/// take is uncontended in the common single-model case. A PartyContext
/// without a model (unit tests, micro-benches) falls back to an owned
/// private instance.

#include <map>
#include <mutex>

#include "crypto/circuit.hpp"

namespace c2pi::mpc {

class GcCircuitCache {
public:
    /// The k2-input, 64-bit max circuit, built on first use. The map's
    /// node stability keeps the returned reference valid after unlock,
    /// and a built Circuit is immutable.
    [[nodiscard]] const crypto::Circuit& max_circuit(int k2) {
        const std::lock_guard<std::mutex> lock(mutex_);
        auto it = circuits_.find(k2);
        if (it == circuits_.end())
            it = circuits_.emplace(k2, crypto::build_max_circuit(64, k2)).first;
        return it->second;
    }

private:
    std::mutex mutex_;
    std::map<int, crypto::Circuit> circuits_;
};

}  // namespace c2pi::mpc
