#include "mpc/linear.hpp"

#include <condition_variable>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "core/thread_pool.hpp"

namespace c2pi::mpc {

namespace {

/// Wire format: [limbs u32][flags u32][seed 16B] then c0 limbs, then c1
/// limbs unless seed-compressed. Flag bit 0: seed-compressed. The payload
/// is staged in the session's send scratch buffer — one allocation per
/// session, not per ciphertext.
void send_ciphertext(PartyContext& ctx, const he::Ciphertext& ct) {
    const he::BfvContext& bfv = ctx.bfv();
    require(!ct.ntt_form, "ciphertexts travel in coefficient form");
    const std::size_t n = bfv.n();
    const int limbs = ct.active_limbs();
    const std::size_t c1_words = ct.seed_compressed ? 0 : static_cast<std::size_t>(limbs) * n;
    std::vector<std::uint8_t>& payload = ctx.send_scratch();
    payload.resize(24 + (static_cast<std::size_t>(limbs) * n + c1_words) * 8);
    std::uint32_t header[2] = {static_cast<std::uint32_t>(limbs),
                               static_cast<std::uint32_t>(ct.seed_compressed ? 1 : 0)};
    std::memcpy(payload.data(), header, 8);
    ct.seed.to_bytes(payload.data() + 8);
    std::size_t off = 24;
    for (int i = 0; i < limbs; ++i) {
        std::memcpy(payload.data() + off, ct.c0.limbs[static_cast<std::size_t>(i)].data(), n * 8);
        off += n * 8;
    }
    if (!ct.seed_compressed) {
        for (int i = 0; i < limbs; ++i) {
            std::memcpy(payload.data() + off, ct.c1.limbs[static_cast<std::size_t>(i)].data(), n * 8);
            off += n * 8;
        }
    }
    ctx.transport().send_bytes(payload);
}

[[nodiscard]] he::Ciphertext recv_ciphertext(PartyContext& ctx) {
    const he::BfvContext& bfv = ctx.bfv();
    std::vector<std::uint8_t>& payload = ctx.recv_scratch();
    ctx.transport().recv_bytes_into(payload);
    require(payload.size() >= 24, "ciphertext payload too small");
    std::uint32_t header[2];
    std::memcpy(header, payload.data(), 8);
    const int limbs = static_cast<int>(header[0]);
    const bool seeded = (header[1] & 1U) != 0;
    const std::size_t n = bfv.n();

    he::Ciphertext ct;
    ct.seed = crypto::Block128::from_bytes(payload.data() + 8);
    ct.seed_compressed = seeded;
    ct.c0.limbs.assign(static_cast<std::size_t>(limbs), std::vector<he::u64>(n));
    std::size_t off = 24;
    for (int i = 0; i < limbs; ++i) {
        std::memcpy(ct.c0.limbs[static_cast<std::size_t>(i)].data(), payload.data() + off, n * 8);
        off += n * 8;
    }
    if (seeded) {
        // Re-derive c1 from the seed exactly as encrypt() sampled it:
        // uniform in the NTT domain. It stays there — the server's next
        // step is to_ntt, which now only transforms c0.
        ct.c1 = bfv.expand_seed_poly_ntt(ct.seed, limbs);
    } else {
        ct.c1.limbs.assign(static_cast<std::size_t>(limbs), std::vector<he::u64>(n));
        for (int i = 0; i < limbs; ++i) {
            std::memcpy(ct.c1.limbs[static_cast<std::size_t>(i)].data(), payload.data() + off, n * 8);
            off += n * 8;
        }
    }
    require(off == payload.size(), "ciphertext payload size mismatch");
    return ct;
}

/// Channel-order handoff between the compute side (one thread driving
/// the layer's parallel_for) and the protocol thread shipping responses:
/// slot i is published the moment its ciphertext is finalized; take(i)
/// blocks until then. A compute-side exception is parked and rethrown
/// from the next take() so the protocol thread never deadlocks on a slot
/// that will never fill.
class ChunkStream {
public:
    explicit ChunkStream(std::size_t count) : slots_(count), ready_(count, 0) {}

    void put(std::size_t i, he::Ciphertext ct) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            slots_[i] = std::move(ct);
            ready_[i] = 1;
        }
        cv_.notify_all();
    }
    void fail(std::exception_ptr error) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            error_ = std::move(error);
        }
        cv_.notify_all();
    }
    [[nodiscard]] he::Ciphertext take(std::size_t i) {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return ready_[i] != 0 || error_ != nullptr; });
        if (ready_[i] == 0) std::rethrow_exception(error_);
        return std::move(slots_[i]);
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<he::Ciphertext> slots_;
    std::vector<char> ready_;
    std::exception_ptr error_;
};

/// Compute `count` response ciphertexts and ship them in index order.
/// Synchronous mode (ctx.pipeline() off) keeps the historical barrier:
/// one parallel_for over all indices, then all sends. Pipelined mode
/// overlaps the two: a producer thread drives the SAME parallel_for and
/// publishes each chunk as it finishes, while the protocol thread ships
/// chunk o the moment it is ready — later chunks are still in the NTT.
/// Send order and per-message bytes are identical in both modes, so the
/// wire transcript (and ChannelStats) never changes; parallel_for's
/// rethrow semantics guarantee every index either publishes or the
/// producer fails the stream after the loop unwinds.
template <typename ComputeFn>
void emit_responses(PartyContext& ctx, std::int64_t count, ComputeFn&& compute) {
    const core::ThreadPool* pool = ctx.bfv().thread_pool();
    if (!ctx.pipeline()) {
        std::vector<he::Ciphertext> responses(static_cast<std::size_t>(count));
        core::parallel_for(pool, 0, count, [&](std::int64_t o) {
            responses[static_cast<std::size_t>(o)] = compute(o);
        });
        for (std::int64_t o = 0; o < count; ++o)
            send_ciphertext(ctx, responses[static_cast<std::size_t>(o)]);
        return;
    }
    ChunkStream stream(static_cast<std::size_t>(count));
    std::thread producer([&] {
        try {
            core::parallel_for(pool, 0, count, [&](std::int64_t o) {
                stream.put(static_cast<std::size_t>(o), compute(o));
            });
        } catch (...) {
            stream.fail(std::current_exception());
        }
    });
    try {
        for (std::int64_t o = 0; o < count; ++o)
            send_ciphertext(ctx, stream.take(static_cast<std::size_t>(o)));
    } catch (...) {
        producer.join();  // compute references stack state; outlive it
        throw;
    }
    producer.join();
}

}  // namespace

ConvLayerCache::ConvLayerCache(const he::BfvContext& bfv, const he::ConvGeometry& geo,
                               std::span<const Ring> weights, std::span<const Ring> bias2f,
                               bool precompute_weights)
    : enc(bfv, geo), weights(weights), bias2f(bias2f) {
    if (precompute_weights) {
        const std::int64_t groups = enc.num_groups();
        w_ntt.resize(static_cast<std::size_t>(geo.out_channels * groups));
        core::parallel_for(bfv.thread_pool(), 0, geo.out_channels * groups, [&](std::int64_t idx) {
            const std::int64_t o = idx / groups;
            const std::int64_t g = idx % groups;
            w_ntt[static_cast<std::size_t>(idx)] =
                bfv.to_plain_ntt(enc.encode_weight(weights, g, o));
        });
    }
    scatter_idx.reserve(static_cast<std::size_t>(geo.out_h() * geo.out_w()));
    for (std::int64_t oy = 0; oy < geo.out_h(); ++oy)
        for (std::int64_t ox = 0; ox < geo.out_w(); ++ox)
            scatter_idx.push_back(enc.output_coeff_index(oy, ox));
}

MatVecLayerCache::MatVecLayerCache(const he::BfvContext& bfv, std::int64_t in, std::int64_t out,
                                   std::span<const Ring> weights, std::span<const Ring> bias2f,
                                   bool precompute_weights)
    : enc(bfv, in, out), in(in), out(out), weights(weights), bias2f(bias2f) {
    if (precompute_weights) {
        w_ntt.resize(static_cast<std::size_t>(enc.num_blocks()));
        core::parallel_for(bfv.thread_pool(), 0, enc.num_blocks(), [&](std::int64_t b) {
            w_ntt[static_cast<std::size_t>(b)] =
                bfv.to_plain_ntt(enc.encode_weight_block(weights, b));
        });
    }
    scatter_idx.resize(static_cast<std::size_t>(enc.num_blocks()));
    for (std::int64_t b = 0; b < enc.num_blocks(); ++b) {
        const std::int64_t rows = std::min(enc.outs_per_block(), out - b * enc.outs_per_block());
        for (std::int64_t r = 0; r < rows; ++r)
            scatter_idx[static_cast<std::size_t>(b)].push_back(enc.output_coeff_index(r));
    }
}

std::vector<Ring> he_conv_server(PartyContext& ctx, const ConvLayerCache& cache,
                                 std::span<const Ring> x_share) {
    require(!cache.w_ntt.empty(),
            "he_conv_server needs a cache with precomputed weights (client-only artifact?)");
    const he::BfvContext& bfv = ctx.bfv();
    const he::ConvEncoder& enc = cache.enc;
    const he::ConvGeometry& geo = enc.geometry();
    const std::int64_t out_pixels = geo.out_h() * geo.out_w();

    // Receive the client's encrypted input groups.
    std::vector<he::Ciphertext> input_cts;
    input_cts.reserve(static_cast<std::size_t>(enc.num_groups()));
    for (std::int64_t g = 0; g < enc.num_groups(); ++g) {
        he::Ciphertext ct = recv_ciphertext(ctx);
        bfv.to_ntt(ct);
        input_cts.push_back(std::move(ct));
    }

    // Plain contribution of the server's own share (exact ring conv).
    const auto plain_part = ring_conv2d(geo, x_share, cache.weights);

    // Fresh mask r per channel: client will end with conv(x_c) - r; the
    // server's share is conv(x_s) + bias + r. Masks are drawn up front in
    // channel order so the share-PRG stream never depends on the
    // parallel schedule below (next_mask_draw serves the session layer's
    // prefetched stash first — same draw sequence either way).
    std::vector<Ring> out_share(static_cast<std::size_t>(geo.out_channels * out_pixels));
    std::vector<std::vector<Ring>> masks(static_cast<std::size_t>(geo.out_channels));
    for (std::int64_t o = 0; o < geo.out_channels; ++o) {
        std::vector<Ring>& mask = masks[static_cast<std::size_t>(o)];
        mask.resize(static_cast<std::size_t>(out_pixels));
        for (std::int64_t i = 0; i < out_pixels; ++i) {
            const Ring r = ctx.next_mask_draw();
            mask[static_cast<std::size_t>(i)] = Ring{0} - r;
            Ring server_val = plain_part[static_cast<std::size_t>(o * out_pixels + i)] + r;
            if (!cache.bias2f.empty()) server_val += cache.bias2f[static_cast<std::size_t>(o)];
            out_share[static_cast<std::size_t>(o * out_pixels + i)] = server_val;
        }
    }

    // Per-channel responses in parallel, shipped in channel order (the
    // wire transcript is identical to the serial loop); pipelined
    // sessions stream each channel the moment it finalizes.
    emit_responses(ctx, geo.out_channels, [&](std::int64_t o) {
        he::Ciphertext acc;
        bfv.multiply_plain(input_cts[0], cache.weight_ntt(0, o), acc);
        for (std::int64_t g = 1; g < enc.num_groups(); ++g) {
            bfv.multiply_plain_accumulate(input_cts[static_cast<std::size_t>(g)],
                                          cache.weight_ntt(g, o), acc);
        }
        bfv.from_ntt(acc);
        bfv.add_plain_at(acc, cache.scatter_idx, masks[static_cast<std::size_t>(o)]);
        bfv.mod_switch_to_two_limbs(acc);
        return acc;
    });
    return out_share;
}

std::vector<Ring> he_conv_server(PartyContext& ctx, const he::ConvGeometry& geo,
                                 std::span<const Ring> weights, std::span<const Ring> bias2f,
                                 std::span<const Ring> x_share) {
    const ConvLayerCache cache(ctx.bfv(), geo, weights, bias2f);
    return he_conv_server(ctx, cache, x_share);
}

std::vector<Ring> he_conv_client(PartyContext& ctx, const he::ConvEncoder& enc,
                                 std::span<const Ring> x_share) {
    const he::BfvContext& bfv = ctx.bfv();
    const he::ConvGeometry& geo = enc.geometry();
    const std::int64_t out_pixels = geo.out_h() * geo.out_w();

    for (std::int64_t g = 0; g < enc.num_groups(); ++g) {
        const he::Ciphertext ct =
            bfv.encrypt(enc.encode_input_group(x_share, g), ctx.client_key(), ctx.share_prg());
        send_ciphertext(ctx, ct);
    }

    std::vector<Ring> out_share(static_cast<std::size_t>(geo.out_channels * out_pixels));
    for (std::int64_t o = 0; o < geo.out_channels; ++o) {
        const he::Ciphertext response = recv_ciphertext(ctx);
        const auto poly = bfv.decrypt(response, ctx.client_key());
        const auto vals = enc.gather_outputs(poly);
        std::copy(vals.begin(), vals.end(),
                  out_share.begin() + static_cast<std::ptrdiff_t>(o * out_pixels));
    }
    return out_share;
}

std::vector<Ring> he_conv_client(PartyContext& ctx, const he::ConvGeometry& geo,
                                 std::span<const Ring> x_share) {
    const he::ConvEncoder enc(ctx.bfv(), geo);
    return he_conv_client(ctx, enc, x_share);
}

std::vector<Ring> he_matvec_server(PartyContext& ctx, const MatVecLayerCache& cache,
                                   std::span<const Ring> x_share) {
    require(!cache.w_ntt.empty(),
            "he_matvec_server needs a cache with precomputed weights (client-only artifact?)");
    const he::BfvContext& bfv = ctx.bfv();
    const he::MatVecEncoder& enc = cache.enc;
    const std::int64_t in = cache.in, out = cache.out;

    he::Ciphertext input_ct = recv_ciphertext(ctx);
    bfv.to_ntt(input_ct);

    const auto plain_part = ring_matvec(cache.weights, x_share, in, out);
    std::vector<Ring> out_share(static_cast<std::size_t>(out));

    // Block masks in block order first (PRG determinism — next_mask_draw
    // serves any session-layer prefetch stash in the same order), then
    // the block responses in parallel, sent in block order.
    std::vector<std::vector<Ring>> masks(static_cast<std::size_t>(enc.num_blocks()));
    for (std::int64_t b = 0; b < enc.num_blocks(); ++b) {
        const std::int64_t rows = std::min(enc.outs_per_block(), out - b * enc.outs_per_block());
        std::vector<Ring>& mask = masks[static_cast<std::size_t>(b)];
        mask.resize(static_cast<std::size_t>(rows));
        for (std::int64_t r = 0; r < rows; ++r) {
            const std::int64_t row = b * enc.outs_per_block() + r;
            const Ring rv = ctx.next_mask_draw();
            mask[static_cast<std::size_t>(r)] = Ring{0} - rv;
            Ring server_val = plain_part[static_cast<std::size_t>(row)] + rv;
            if (!cache.bias2f.empty()) server_val += cache.bias2f[static_cast<std::size_t>(row)];
            out_share[static_cast<std::size_t>(row)] = server_val;
        }
    }

    emit_responses(ctx, enc.num_blocks(), [&](std::int64_t b) {
        he::Ciphertext acc;
        bfv.multiply_plain(input_ct, cache.w_ntt[static_cast<std::size_t>(b)], acc);
        bfv.from_ntt(acc);
        bfv.add_plain_at(acc, cache.scatter_idx[static_cast<std::size_t>(b)],
                         masks[static_cast<std::size_t>(b)]);
        bfv.mod_switch_to_two_limbs(acc);
        return acc;
    });
    return out_share;
}

std::vector<Ring> he_matvec_server(PartyContext& ctx, std::int64_t in, std::int64_t out,
                                   std::span<const Ring> weights, std::span<const Ring> bias2f,
                                   std::span<const Ring> x_share) {
    const MatVecLayerCache cache(ctx.bfv(), in, out, weights, bias2f);
    return he_matvec_server(ctx, cache, x_share);
}

std::vector<Ring> he_matvec_client(PartyContext& ctx, const he::MatVecEncoder& enc,
                                   std::span<const Ring> x_share) {
    const he::BfvContext& bfv = ctx.bfv();

    const he::Ciphertext ct =
        bfv.encrypt(enc.encode_input(x_share), ctx.client_key(), ctx.share_prg());
    send_ciphertext(ctx, ct);

    std::vector<Ring> out_share(static_cast<std::size_t>(enc.out_features()));
    for (std::int64_t b = 0; b < enc.num_blocks(); ++b) {
        const he::Ciphertext response = recv_ciphertext(ctx);
        const auto poly = bfv.decrypt(response, ctx.client_key());
        const auto vals = enc.gather_outputs(poly, b);
        std::copy(vals.begin(), vals.end(),
                  out_share.begin() + static_cast<std::ptrdiff_t>(b * enc.outs_per_block()));
    }
    return out_share;
}

std::vector<Ring> he_matvec_client(PartyContext& ctx, std::int64_t in, std::int64_t out,
                                   std::span<const Ring> x_share) {
    const he::MatVecEncoder enc(ctx.bfv(), in, out);
    return he_matvec_client(ctx, enc, x_share);
}

}  // namespace c2pi::mpc
