#include "mpc/linear.hpp"

#include <cstring>

namespace c2pi::mpc {

namespace {

/// Wire format: [limbs u32][flags u32][seed 16B] then c0 limbs, then c1
/// limbs unless seed-compressed. Flag bit 0: seed-compressed.
void send_ciphertext(net::Transport& t, const he::BfvContext& bfv, const he::Ciphertext& ct) {
    require(!ct.ntt_form, "ciphertexts travel in coefficient form");
    const std::size_t n = bfv.n();
    const int limbs = ct.active_limbs();
    const std::size_t c1_words = ct.seed_compressed ? 0 : static_cast<std::size_t>(limbs) * n;
    std::vector<std::uint8_t> payload(24 + (static_cast<std::size_t>(limbs) * n + c1_words) * 8);
    std::uint32_t header[2] = {static_cast<std::uint32_t>(limbs),
                               static_cast<std::uint32_t>(ct.seed_compressed ? 1 : 0)};
    std::memcpy(payload.data(), header, 8);
    ct.seed.to_bytes(payload.data() + 8);
    std::size_t off = 24;
    for (int i = 0; i < limbs; ++i) {
        std::memcpy(payload.data() + off, ct.c0.limbs[static_cast<std::size_t>(i)].data(), n * 8);
        off += n * 8;
    }
    if (!ct.seed_compressed) {
        for (int i = 0; i < limbs; ++i) {
            std::memcpy(payload.data() + off, ct.c1.limbs[static_cast<std::size_t>(i)].data(), n * 8);
            off += n * 8;
        }
    }
    t.send_bytes(payload);
}

[[nodiscard]] he::Ciphertext recv_ciphertext(net::Transport& t, const he::BfvContext& bfv) {
    const auto payload = t.recv_bytes();
    require(payload.size() >= 24, "ciphertext payload too small");
    std::uint32_t header[2];
    std::memcpy(header, payload.data(), 8);
    const int limbs = static_cast<int>(header[0]);
    const bool seeded = (header[1] & 1U) != 0;
    const std::size_t n = bfv.n();

    he::Ciphertext ct;
    ct.seed = crypto::Block128::from_bytes(payload.data() + 8);
    ct.seed_compressed = seeded;
    ct.c0.limbs.assign(static_cast<std::size_t>(limbs), std::vector<he::u64>(n));
    std::size_t off = 24;
    for (int i = 0; i < limbs; ++i) {
        std::memcpy(ct.c0.limbs[static_cast<std::size_t>(i)].data(), payload.data() + off, n * 8);
        off += n * 8;
    }
    if (seeded) {
        // Re-derive c1 from the seed exactly as encrypt() did: uniform in
        // NTT form, then back to coefficients.
        ct.c1 = bfv.expand_seed_poly(ct.seed, limbs);
    } else {
        ct.c1.limbs.assign(static_cast<std::size_t>(limbs), std::vector<he::u64>(n));
        for (int i = 0; i < limbs; ++i) {
            std::memcpy(ct.c1.limbs[static_cast<std::size_t>(i)].data(), payload.data() + off, n * 8);
            off += n * 8;
        }
    }
    require(off == payload.size(), "ciphertext payload size mismatch");
    return ct;
}

}  // namespace

std::vector<Ring> he_conv_server(PartyContext& ctx, const he::ConvGeometry& geo,
                                 std::span<const Ring> weights, std::span<const Ring> bias2f,
                                 std::span<const Ring> x_share) {
    const he::BfvContext& bfv = ctx.bfv();
    const he::ConvEncoder enc(bfv, geo);
    const std::int64_t out_pixels = geo.out_h() * geo.out_w();

    // Receive the client's encrypted input groups.
    std::vector<he::Ciphertext> input_cts;
    input_cts.reserve(static_cast<std::size_t>(enc.num_groups()));
    for (std::int64_t g = 0; g < enc.num_groups(); ++g) {
        he::Ciphertext ct = recv_ciphertext(ctx.transport(), bfv);
        bfv.to_ntt(ct);
        input_cts.push_back(std::move(ct));
    }

    // Plain contribution of the server's own share (exact ring conv).
    const auto plain_part = ring_conv2d(geo, x_share, weights);

    std::vector<Ring> out_share(static_cast<std::size_t>(geo.out_channels * out_pixels));
    for (std::int64_t o = 0; o < geo.out_channels; ++o) {
        he::Ciphertext acc = bfv.make_accumulator();
        for (std::int64_t g = 0; g < enc.num_groups(); ++g) {
            bfv.multiply_plain_accumulate(input_cts[static_cast<std::size_t>(g)],
                                          bfv.lift_to_ntt(enc.encode_weight(weights, g, o)), acc);
        }
        bfv.from_ntt(acc);

        // Fresh mask r: client will end with conv(x_c) - r; the server's
        // share is conv(x_s) + bias + r.
        std::vector<Ring> mask(static_cast<std::size_t>(out_pixels));
        for (std::int64_t i = 0; i < out_pixels; ++i) {
            const Ring r = ctx.prg().next_u64();
            mask[static_cast<std::size_t>(i)] = Ring{0} - r;
            Ring server_val = plain_part[static_cast<std::size_t>(o * out_pixels + i)] + r;
            if (!bias2f.empty()) server_val += bias2f[static_cast<std::size_t>(o)];
            out_share[static_cast<std::size_t>(o * out_pixels + i)] = server_val;
        }
        bfv.add_plain_inplace(acc, enc.scatter_outputs(mask));
        bfv.mod_switch_to_two_limbs(acc);
        send_ciphertext(ctx.transport(), bfv, acc);
    }
    return out_share;
}

std::vector<Ring> he_conv_client(PartyContext& ctx, const he::ConvGeometry& geo,
                                 std::span<const Ring> x_share) {
    const he::BfvContext& bfv = ctx.bfv();
    const he::ConvEncoder enc(bfv, geo);
    const std::int64_t out_pixels = geo.out_h() * geo.out_w();

    for (std::int64_t g = 0; g < enc.num_groups(); ++g) {
        const he::Ciphertext ct =
            bfv.encrypt(enc.encode_input_group(x_share, g), ctx.client_key(), ctx.prg());
        send_ciphertext(ctx.transport(), bfv, ct);
    }

    std::vector<Ring> out_share(static_cast<std::size_t>(geo.out_channels * out_pixels));
    for (std::int64_t o = 0; o < geo.out_channels; ++o) {
        const he::Ciphertext response = recv_ciphertext(ctx.transport(), bfv);
        const auto poly = bfv.decrypt(response, ctx.client_key());
        const auto vals = enc.gather_outputs(poly);
        std::copy(vals.begin(), vals.end(),
                  out_share.begin() + static_cast<std::ptrdiff_t>(o * out_pixels));
    }
    return out_share;
}

std::vector<Ring> he_matvec_server(PartyContext& ctx, std::int64_t in, std::int64_t out,
                                   std::span<const Ring> weights, std::span<const Ring> bias2f,
                                   std::span<const Ring> x_share) {
    const he::BfvContext& bfv = ctx.bfv();
    const he::MatVecEncoder enc(bfv, in, out);

    he::Ciphertext input_ct = recv_ciphertext(ctx.transport(), bfv);
    bfv.to_ntt(input_ct);

    const auto plain_part = ring_matvec(weights, x_share, in, out);
    std::vector<Ring> out_share(static_cast<std::size_t>(out));
    for (std::int64_t b = 0; b < enc.num_blocks(); ++b) {
        he::Ciphertext acc = bfv.make_accumulator();
        bfv.multiply_plain_accumulate(input_ct, bfv.lift_to_ntt(enc.encode_weight_block(weights, b)),
                                      acc);
        bfv.from_ntt(acc);

        const std::int64_t rows =
            std::min(enc.outs_per_block(), out - b * enc.outs_per_block());
        std::vector<Ring> mask(static_cast<std::size_t>(rows));
        for (std::int64_t r = 0; r < rows; ++r) {
            const std::int64_t row = b * enc.outs_per_block() + r;
            const Ring rv = ctx.prg().next_u64();
            mask[static_cast<std::size_t>(r)] = Ring{0} - rv;
            Ring server_val = plain_part[static_cast<std::size_t>(row)] + rv;
            if (!bias2f.empty()) server_val += bias2f[static_cast<std::size_t>(row)];
            out_share[static_cast<std::size_t>(row)] = server_val;
        }
        bfv.add_plain_inplace(acc, enc.scatter_outputs(mask, b));
        bfv.mod_switch_to_two_limbs(acc);
        send_ciphertext(ctx.transport(), bfv, acc);
    }
    return out_share;
}

std::vector<Ring> he_matvec_client(PartyContext& ctx, std::int64_t in, std::int64_t out,
                                   std::span<const Ring> x_share) {
    const he::BfvContext& bfv = ctx.bfv();
    const he::MatVecEncoder enc(bfv, in, out);

    const he::Ciphertext ct = bfv.encrypt(enc.encode_input(x_share), ctx.client_key(), ctx.prg());
    send_ciphertext(ctx.transport(), bfv, ct);

    std::vector<Ring> out_share(static_cast<std::size_t>(out));
    for (std::int64_t b = 0; b < enc.num_blocks(); ++b) {
        const he::Ciphertext response = recv_ciphertext(ctx.transport(), bfv);
        const auto poly = bfv.decrypt(response, ctx.client_key());
        const auto vals = enc.gather_outputs(poly, b);
        std::copy(vals.begin(), vals.end(),
                  out_share.begin() + static_cast<std::ptrdiff_t>(b * enc.outs_per_block()));
    }
    return out_share;
}

}  // namespace c2pi::mpc
