#pragma once

/// \file ring_tensor.hpp
/// Tensor of Z_{2^64} elements — the secret-shared counterpart of Tensor.
/// Conversions apply the fixed-point code from core/fixed_point.hpp.

#include <vector>

#include "core/fixed_point.hpp"
#include "tensor/tensor.hpp"

namespace c2pi::mpc {

struct RingTensor {
    Shape shape;
    std::vector<Ring> data;

    RingTensor() = default;
    explicit RingTensor(Shape s) : shape(std::move(s)) {
        data.assign(static_cast<std::size_t>(shape_numel(shape)), 0);
    }
    RingTensor(Shape s, std::vector<Ring> values) : shape(std::move(s)), data(std::move(values)) {
        require(static_cast<std::int64_t>(data.size()) == shape_numel(shape),
                "ring tensor value count mismatch");
    }

    [[nodiscard]] std::int64_t numel() const { return static_cast<std::int64_t>(data.size()); }
    [[nodiscard]] std::span<const Ring> span() const { return data; }
    [[nodiscard]] std::span<Ring> span() { return data; }
};

/// Fixed-point encode a float tensor into the ring.
[[nodiscard]] inline RingTensor encode_tensor(const Tensor& t, const FixedPointFormat& fmt) {
    RingTensor out(t.shape());
    for (std::int64_t i = 0; i < t.numel(); ++i)
        out.data[static_cast<std::size_t>(i)] = fmt.encode(t[i]);
    return out;
}

/// Decode a ring tensor back to floats.
[[nodiscard]] inline Tensor decode_tensor(const RingTensor& t, const FixedPointFormat& fmt) {
    Tensor out(t.shape);
    for (std::int64_t i = 0; i < t.numel(); ++i)
        out[i] = static_cast<float>(fmt.decode(t.data[static_cast<std::size_t>(i)]));
    return out;
}

/// Elementwise helpers on ring tensors (shape-checked).
[[nodiscard]] inline RingTensor ring_add(const RingTensor& a, const RingTensor& b) {
    require(a.shape == b.shape, "ring_add shape mismatch");
    RingTensor out(a.shape);
    for (std::size_t i = 0; i < a.data.size(); ++i) out.data[i] = a.data[i] + b.data[i];
    return out;
}

[[nodiscard]] inline RingTensor ring_sub(const RingTensor& a, const RingTensor& b) {
    require(a.shape == b.shape, "ring_sub shape mismatch");
    RingTensor out(a.shape);
    for (std::size_t i = 0; i < a.data.size(); ++i) out.data[i] = a.data[i] - b.data[i];
    return out;
}

/// Local share truncation by f fractional bits (SecureML-style): both
/// parties arithmetic-shift their share; the reconstructed value is off
/// by at most one ulp except with probability ~|x|/2^63 (DESIGN.md §6).
[[nodiscard]] inline RingTensor truncate_shares(const RingTensor& t, int frac_bits) {
    RingTensor out(t.shape);
    for (std::size_t i = 0; i < t.data.size(); ++i)
        out.data[i] = static_cast<Ring>(static_cast<std::int64_t>(t.data[i]) >> frac_bits);
    return out;
}

}  // namespace c2pi::mpc
