#pragma once

/// \file millionaire.hpp
/// OT-based secure comparison and DReLU (CrypTFlow2-style radix-16
/// millionaire protocol, the non-linear engine of the Cheetah backend).
///
/// millionaire_*: P0 holds values a, P1 holds values c; the parties end
/// with XOR shares of 1{a > c} per element. Each 64-bit value is split
/// into 16 radix-16 blocks; leaf lt/eq shares come from 1-of-16 OT, the
/// combine tree uses GF(2) Beaver triples (4 levels -> 4 rounds).
///
/// drelu_*: from additive shares of y, XOR shares of b = 1{y >= 0} via
/// the MSB-carry decomposition msb(y) = msb(y0) ^ msb(y1) ^ carry, with
/// carry decided by one millionaire comparison on the low 63 bits.
///
/// mux_*: additive shares of b * y from XOR shares of b and additive
/// shares of y (two chosen-message u64 OTs per element).
///
/// relu_*: DReLU + mux.

#include "mpc/context.hpp"
#include "mpc/ring_tensor.hpp"

namespace c2pi::mpc {

/// XOR-shared bits, one per byte.
using BitVec = std::vector<std::uint8_t>;

[[nodiscard]] BitVec millionaire_party0(PartyContext& ctx, std::span<const Ring> a);
[[nodiscard]] BitVec millionaire_party1(PartyContext& ctx, std::span<const Ring> c);

[[nodiscard]] BitVec drelu_shares(PartyContext& ctx, std::span<const Ring> y_share);

/// b * y where b is XOR-shared and y additively shared.
[[nodiscard]] std::vector<Ring> mux_shares(PartyContext& ctx, std::span<const std::uint8_t> b_share,
                                           std::span<const Ring> y_share);

/// ReLU on additive shares (batched): returns this party's share of
/// relu(y) elementwise.
[[nodiscard]] std::vector<Ring> relu_shares_ot(PartyContext& ctx, std::span<const Ring> y_share);

/// max over non-overlapping windows: values laid out so that each window's
/// k elements are strided; used by the OT-backend MaxPool. Computes the
/// tournament with batched relu on differences.
[[nodiscard]] std::vector<Ring> max_pairwise_ot(PartyContext& ctx, std::span<const Ring> a_share,
                                                std::span<const Ring> b_share);

}  // namespace c2pi::mpc
