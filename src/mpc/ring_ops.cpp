#include "mpc/ring_ops.hpp"

namespace c2pi::mpc {

std::vector<Ring> ring_conv2d(const he::ConvGeometry& g, std::span<const Ring> x,
                              std::span<const Ring> w) {
    require(x.size() == static_cast<std::size_t>(g.in_channels * g.height * g.width),
            "ring_conv2d input size mismatch");
    require(w.size() == static_cast<std::size_t>(g.out_channels * g.in_channels * g.kernel * g.kernel),
            "ring_conv2d weight size mismatch");
    const std::int64_t oh = g.out_h(), ow = g.out_w();
    std::vector<Ring> y(static_cast<std::size_t>(g.out_channels * oh * ow), 0);
    for (std::int64_t o = 0; o < g.out_channels; ++o) {
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
            const Ring* wbase =
                w.data() + static_cast<std::size_t>((o * g.in_channels + c) * g.kernel * g.kernel);
            const Ring* xbase = x.data() + static_cast<std::size_t>(c * g.height * g.width);
            for (std::int64_t oy = 0; oy < oh; ++oy) {
                for (std::int64_t ox = 0; ox < ow; ++ox) {
                    Ring acc = 0;
                    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
                        const std::int64_t iy = oy * g.stride - g.pad + ky;
                        if (iy < 0 || iy >= g.height) continue;
                        for (std::int64_t kx = 0; kx < g.kernel; ++kx) {
                            const std::int64_t ix = ox * g.stride - g.pad + kx;
                            if (ix < 0 || ix >= g.width) continue;
                            acc += xbase[iy * g.width + ix] * wbase[ky * g.kernel + kx];
                        }
                    }
                    y[static_cast<std::size_t>((o * oh + oy) * ow + ox)] += acc;
                }
            }
        }
    }
    return y;
}

std::vector<Ring> ring_matvec(std::span<const Ring> w, std::span<const Ring> x, std::int64_t in,
                              std::int64_t out) {
    require(w.size() == static_cast<std::size_t>(in * out), "ring_matvec weight size mismatch");
    require(x.size() == static_cast<std::size_t>(in), "ring_matvec input size mismatch");
    std::vector<Ring> y(static_cast<std::size_t>(out), 0);
    for (std::int64_t o = 0; o < out; ++o) {
        Ring acc = 0;
        for (std::int64_t j = 0; j < in; ++j)
            acc += w[static_cast<std::size_t>(o * in + j)] * x[static_cast<std::size_t>(j)];
        y[static_cast<std::size_t>(o)] = acc;
    }
    return y;
}

}  // namespace c2pi::mpc
