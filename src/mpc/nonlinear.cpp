#include "mpc/nonlinear.hpp"

#include "crypto/circuit.hpp"
#include "crypto/garbling.hpp"
#include "fss/compare.hpp"
#include "fss/key_pool.hpp"

namespace c2pi::mpc {

namespace {

constexpr std::size_t kGcChunk = 512;  ///< GC instances garbled/streamed per flight

/// Garbler (client) side of one batched GC evaluation. Each element feeds
/// `garbler_words` 64-bit garbler inputs (its shares, then neg_r last) and
/// `eval_words` evaluator inputs. Output value goes to the evaluator.
void gc_batch_garbler(PartyContext& ctx, const crypto::Circuit& circuit,
                      const std::vector<std::span<const Ring>>& garbler_values,
                      std::span<const Ring> neg_r) {
    const std::size_t n = neg_r.size();
    const std::size_t g_words = garbler_values.size() + 1;
    require(static_cast<std::size_t>(circuit.num_garbler_inputs) == 64 * g_words,
            "garbler word count mismatch");
    const std::size_t eval_bits = static_cast<std::size_t>(circuit.num_evaluator_inputs);

    for (std::size_t chunk_begin = 0; chunk_begin < n; chunk_begin += kGcChunk) {
        const std::size_t count = std::min(kGcChunk, n - chunk_begin);

        // ---- offline: garble + ship tables and output-decode bits ----
        const auto saved_phase = ctx.transport().phase();
        ctx.transport().set_phase(net::Phase::kOffline);
        std::vector<crypto::Garbling> garblings;
        garblings.reserve(count);
        std::vector<std::uint8_t> tables_payload;
        tables_payload.reserve(count * circuit.and_count() * 32 + count * 8);
        for (std::size_t i = 0; i < count; ++i) {
            garblings.push_back(crypto::garble(circuit, ctx.prg()));
            const auto& g = garblings.back();
            const std::size_t off = tables_payload.size();
            tables_payload.resize(off + g.tables.size() * 16 + (g.output_decode.size() + 7) / 8);
            for (std::size_t k = 0; k < g.tables.size(); ++k)
                g.tables[k].to_bytes(tables_payload.data() + off + 16 * k);
            std::uint8_t* decode = tables_payload.data() + off + g.tables.size() * 16;
            for (std::size_t k = 0; k < g.output_decode.size(); ++k)
                decode[k / 8] |= static_cast<std::uint8_t>((g.output_decode[k] & 1U) << (k % 8));
        }
        ctx.transport().send_bytes(tables_payload);
        ctx.transport().set_phase(saved_phase);

        // ---- online: evaluator labels via OT (server chooses its bits) ----
        std::vector<crypto::Block128> label0(count * eval_bits), label1(count * eval_bits);
        for (std::size_t i = 0; i < count; ++i)
            for (std::size_t b = 0; b < eval_bits; ++b) {
                label0[i * eval_bits + b] = garblings[i].evaluator_label(b, false);
                label1[i * eval_bits + b] = garblings[i].evaluator_label(b, true);
            }
        crypto::ot_send_blocks(ctx.transport(), ctx.ot_sender(), label0, label1);

        // ---- online: active garbler-input labels ----
        std::vector<std::uint8_t> label_payload(count * 64 * g_words * 16);
        for (std::size_t i = 0; i < count; ++i) {
            const std::size_t e = chunk_begin + i;
            std::size_t wire = 0;
            for (std::size_t w = 0; w < g_words; ++w) {
                const Ring value = w + 1 < g_words ? garbler_values[w][e] : neg_r[e];
                for (int b = 0; b < 64; ++b, ++wire) {
                    garblings[i]
                        .garbler_label(wire, ((value >> b) & 1U) != 0)
                        .to_bytes(label_payload.data() + (i * 64 * g_words + wire) * 16);
                }
            }
        }
        ctx.transport().send_bytes(label_payload);
    }
}

/// Evaluator (server) side; returns the decoded 64-bit output per element.
std::vector<Ring> gc_batch_evaluator(PartyContext& ctx, const crypto::Circuit& circuit,
                                     const std::vector<std::span<const Ring>>& eval_values,
                                     std::size_t n) {
    const std::size_t e_words = eval_values.size();
    require(static_cast<std::size_t>(circuit.num_evaluator_inputs) == 64 * e_words,
            "evaluator word count mismatch");
    const std::size_t g_bits = static_cast<std::size_t>(circuit.num_garbler_inputs);
    const std::size_t table_blocks = circuit.and_count() * 2;
    const std::size_t decode_bytes = (circuit.outputs.size() + 7) / 8;

    std::vector<Ring> out(n);
    for (std::size_t chunk_begin = 0; chunk_begin < n; chunk_begin += kGcChunk) {
        const std::size_t count = std::min(kGcChunk, n - chunk_begin);

        // Garbled tables land in the AUX scratch: they must stay live
        // while the label transfer below refills the primary scratch.
        const auto saved_phase = ctx.transport().phase();
        ctx.transport().set_phase(net::Phase::kOffline);
        std::vector<std::uint8_t>& tables_payload = ctx.aux_recv_scratch();
        ctx.transport().recv_bytes_into(tables_payload);
        ctx.transport().set_phase(saved_phase);
        require(tables_payload.size() == count * (table_blocks * 16 + decode_bytes),
                "GC table payload size mismatch");

        // Evaluator label OT: choice bits are this party's share bits.
        std::vector<std::uint8_t> choices(count * 64 * e_words);
        for (std::size_t i = 0; i < count; ++i) {
            const std::size_t e = chunk_begin + i;
            std::size_t wire = 0;
            for (std::size_t w = 0; w < e_words; ++w) {
                const Ring value = eval_values[w][e];
                for (int b = 0; b < 64; ++b, ++wire)
                    choices[i * 64 * e_words + wire] =
                        static_cast<std::uint8_t>((value >> b) & 1U);
            }
        }
        const auto eval_labels = crypto::ot_recv_blocks(ctx.transport(), ctx.ot_receiver(), choices);
        std::vector<std::uint8_t>& label_payload = ctx.recv_scratch();
        ctx.transport().recv_bytes_into(label_payload);
        require(label_payload.size() == count * g_bits * 16, "GC garbler label size mismatch");

        for (std::size_t i = 0; i < count; ++i) {
            const std::uint8_t* base = tables_payload.data() + i * (table_blocks * 16 + decode_bytes);
            std::vector<crypto::Block128> tables(table_blocks);
            for (std::size_t k = 0; k < table_blocks; ++k)
                tables[k] = crypto::Block128::from_bytes(base + 16 * k);
            std::vector<std::uint8_t> decode(circuit.outputs.size());
            const std::uint8_t* dec_base = base + table_blocks * 16;
            for (std::size_t k = 0; k < decode.size(); ++k)
                decode[k] = (dec_base[k / 8] >> (k % 8)) & 1U;

            std::vector<crypto::Block128> g_labels(g_bits);
            for (std::size_t k = 0; k < g_bits; ++k)
                g_labels[k] =
                    crypto::Block128::from_bytes(label_payload.data() + (i * g_bits + k) * 16);
            const std::span<const crypto::Block128> e_labels(
                eval_labels.data() + i * 64 * e_words, 64 * e_words);

            const auto bits = crypto::evaluate_garbled(circuit, tables, g_labels, e_labels, decode);
            out[chunk_begin + i] = crypto::from_bits(bits);
        }
    }
    return out;
}

std::vector<Ring> pick_fresh(PartyContext& ctx, std::span<const Ring> pinned, std::size_t n) {
    std::vector<Ring> fresh(n);
    if (pinned.empty()) {
        for (auto& v : fresh) v = ctx.prg().next_u64();
    } else {
        require(pinned.size() == n, "client_fresh_share size mismatch");
        std::copy(pinned.begin(), pinned.end(), fresh.begin());
    }
    return fresh;
}

std::vector<Ring> relu_shares_gc(PartyContext& ctx, std::span<const Ring> y_share,
                                 std::span<const Ring> client_fresh_share) {
    const std::size_t n = y_share.size();
    static const crypto::Circuit circuit = crypto::build_relu_circuit(64);
    if (ctx.is_server()) {
        return gc_batch_evaluator(ctx, circuit, {y_share}, n);
    }
    const auto fresh = pick_fresh(ctx, client_fresh_share, n);
    std::vector<Ring> neg_r(n);
    for (std::size_t i = 0; i < n; ++i) neg_r[i] = Ring{0} - fresh[i];
    gc_batch_garbler(ctx, circuit, {y_share}, neg_r);
    return fresh;
}

/// FSS backend: drain preprocessed key material (replenishing any
/// deficit first — both parties compute the identical deficit from their
/// equal-sized pools, so the dealer/recv calls pair up), reconstruct the
/// masked values in one round, then evaluate locally.
std::vector<Ring> relu_shares_fss(PartyContext& ctx, std::span<const Ring> y_share) {
    const std::size_t n = y_share.size();
    auto& pool = ctx.fss_pool();
    if (pool.size() < n) {
        const std::size_t deficit = n - pool.size();
        if (ctx.is_server())
            fss::dealer_replenish(ctx.transport(), ctx.prg(), pool, deficit);
        else
            fss::client_replenish(ctx.transport(), pool, deficit);
    }
    const auto keys = pool.take(n);
    std::vector<Ring> masked(n);
    for (std::size_t i = 0; i < n; ++i) masked[i] = y_share[i] + keys[i].r_share;
    const auto z = reveal_shares(ctx, masked);
    std::vector<Ring> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = fss::eval_relu(keys[i], ctx.party(), z[i]);
    return out;
}

/// max(a, b) = a + ReLU(b - a), elementwise over shares (FSS flavour of
/// millionaire.hpp's max_pairwise_ot).
std::vector<Ring> max_pairwise_fss(PartyContext& ctx, std::span<const Ring> a,
                                   std::span<const Ring> b) {
    require(a.size() == b.size(), "max_pairwise_fss size mismatch");
    std::vector<Ring> diff(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) diff[i] = b[i] - a[i];
    auto out = relu_shares_fss(ctx, diff);
    for (std::size_t i = 0; i < a.size(); ++i) out[i] += a[i];
    return out;
}

}  // namespace

std::vector<Ring> secure_relu(PartyContext& ctx, std::span<const Ring> y_share,
                              NonlinearBackend backend,
                              std::span<const Ring> client_fresh_share) {
    if (backend == NonlinearBackend::kGarbledCircuit)
        return relu_shares_gc(ctx, y_share, client_fresh_share);
    if (backend == NonlinearBackend::kFss) return relu_shares_fss(ctx, y_share);
    return relu_shares_ot(ctx, y_share);
}

RingTensor secure_maxpool(PartyContext& ctx, const RingTensor& x_share, std::int64_t kernel,
                          std::int64_t stride, NonlinearBackend backend,
                          std::span<const Ring> client_fresh_share) {
    require(x_share.shape.size() == 3, "secure_maxpool expects [C,H,W] shares");
    const std::int64_t c = x_share.shape[0], h = x_share.shape[1], w = x_share.shape[2];
    const std::int64_t oh = (h - kernel) / stride + 1;
    const std::int64_t ow = (w - kernel) / stride + 1;
    const std::size_t windows = static_cast<std::size_t>(c * oh * ow);
    const std::size_t k2 = static_cast<std::size_t>(kernel * kernel);

    // Gather window elements: lanes[j][win] = share of j-th element of win.
    std::vector<std::vector<Ring>> lanes(k2, std::vector<Ring>(windows));
    std::size_t win = 0;
    for (std::int64_t ch = 0; ch < c; ++ch)
        for (std::int64_t oy = 0; oy < oh; ++oy)
            for (std::int64_t ox = 0; ox < ow; ++ox, ++win) {
                std::size_t j = 0;
                for (std::int64_t ky = 0; ky < kernel; ++ky)
                    for (std::int64_t kx = 0; kx < kernel; ++kx, ++j) {
                        const std::int64_t iy = oy * stride + ky;
                        const std::int64_t ix = ox * stride + kx;
                        lanes[j][win] =
                            x_share.data[static_cast<std::size_t>((ch * h + iy) * w + ix)];
                    }
            }

    std::vector<Ring> result;
    if (backend == NonlinearBackend::kGarbledCircuit) {
        // The circuit cache is scoped to the session's compiled model
        // (mpc/gc_cache.hpp) rather than process-wide, so concurrent
        // sessions of different models never contend on its lock.
        const crypto::Circuit& circuit = ctx.gc_cache().max_circuit(static_cast<int>(k2));
        std::vector<std::span<const Ring>> spans;
        spans.reserve(k2);
        for (const auto& lane : lanes) spans.emplace_back(lane);
        if (ctx.is_server()) {
            result = gc_batch_evaluator(ctx, circuit, spans, windows);
        } else {
            const auto fresh = pick_fresh(ctx, client_fresh_share, windows);
            std::vector<Ring> neg_r(windows);
            for (std::size_t i = 0; i < windows; ++i) neg_r[i] = Ring{0} - fresh[i];
            gc_batch_garbler(ctx, circuit, spans, neg_r);
            result = fresh;
        }
    } else {
        // OT and FSS backends: binary tournament of batched pairwise max.
        std::vector<std::vector<Ring>> round = std::move(lanes);
        while (round.size() > 1) {
            std::vector<std::vector<Ring>> next;
            for (std::size_t i = 0; i + 1 < round.size(); i += 2)
                next.push_back(backend == NonlinearBackend::kFss
                                   ? max_pairwise_fss(ctx, round[i], round[i + 1])
                                   : max_pairwise_ot(ctx, round[i], round[i + 1]));
            if (round.size() % 2 == 1) next.push_back(std::move(round.back()));
            round = std::move(next);
        }
        result = std::move(round[0]);
    }
    return RingTensor({c, oh, ow}, std::move(result));
}

std::vector<Ring> reveal_shares(PartyContext& ctx, std::span<const Ring> share) {
    std::vector<Ring> theirs;
    if (ctx.is_server()) {
        ctx.transport().send_u64s(share);
        ctx.transport().recv_u64s_into(ctx.recv_scratch(), theirs);
    } else {
        ctx.transport().recv_u64s_into(ctx.recv_scratch(), theirs);
        ctx.transport().send_u64s(share);
    }
    require(theirs.size() == share.size(), "reveal size mismatch");
    std::vector<Ring> out(share.size());
    for (std::size_t i = 0; i < share.size(); ++i) out[i] = share[i] + theirs[i];
    return out;
}

std::vector<Ring> reveal_shares_to(PartyContext& ctx, std::span<const Ring> share, int to_party) {
    if (ctx.party() == to_party) {
        std::vector<Ring> theirs;
        ctx.transport().recv_u64s_into(ctx.recv_scratch(), theirs);
        require(theirs.size() == share.size(), "reveal size mismatch");
        std::vector<Ring> out(share.size());
        for (std::size_t i = 0; i < share.size(); ++i) out[i] = share[i] + theirs[i];
        return out;
    }
    ctx.transport().send_u64s(share);
    return {};
}

}  // namespace c2pi::mpc
