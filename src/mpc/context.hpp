#pragma once

/// \file context.hpp
/// Per-party protocol state shared by every secure-layer protocol: the
/// transport endpoint, fixed-point format, BFV context (with the client's
/// secret key), local randomness, and both directions of IKNP OT
/// extension. Party 0 is always the server (model owner), party 1 the
/// client (input owner).

#include <memory>
#include <optional>

#include "crypto/ot.hpp"
#include "fss/key_pool.hpp"
#include "he/bfv.hpp"
#include "mpc/gc_cache.hpp"
#include "net/channel.hpp"

namespace c2pi::mpc {

inline constexpr int kServer = 0;
inline constexpr int kClient = 1;

class PartyContext {
public:
    /// `session_seed` must be shared by both parties (it seeds the base-OT
    /// dealer); per-party secret randomness is derived from party id.
    PartyContext(net::Transport& transport, const FixedPointFormat& fmt,
                 const he::BfvContext& bfv, const crypto::Block128& session_seed)
        : transport_(&transport),
          fmt_(fmt),
          bfv_(&bfv),
          prg_(crypto::Block128{session_seed.lo ^ 0x5EC4E7ULL * (transport.party_id() + 1),
                                session_seed.hi ^ 0x9D0FULL},
               /*nonce=*/static_cast<std::uint64_t>(transport.party_id()) + 100),
          share_prg_(crypto::Block128{session_seed.lo ^ 0x5EC4E7ULL * (transport.party_id() + 1),
                                      session_seed.hi ^ 0x9D0FULL},
                     /*nonce=*/static_cast<std::uint64_t>(transport.party_id()) + 200) {
        // Two base-OT setups, one per sender direction. Both parties derive
        // them deterministically from the session seed (trusted-dealer
        // substitution, DESIGN.md §4); the replaced Naor-Pinkas traffic is
        // charged to whoever first touches the channel in setup_charged().
        const auto setup_a = crypto::dealer_base_ots(
            crypto::Block128{session_seed.lo ^ 0xA, session_seed.hi});
        const auto setup_b = crypto::dealer_base_ots(
            crypto::Block128{session_seed.lo ^ 0xB, session_seed.hi});
        if (transport.party_id() == kServer) {
            ot_sender_.emplace(setup_a.sender);
            ot_receiver_.emplace(setup_b.receiver);
        } else {
            ot_receiver_.emplace(setup_a.receiver);
            ot_sender_.emplace(setup_b.sender);
        }
    }

    [[nodiscard]] int party() const { return transport_->party_id(); }
    [[nodiscard]] bool is_server() const { return party() == kServer; }
    [[nodiscard]] net::Transport& transport() { return *transport_; }
    [[nodiscard]] const FixedPointFormat& fmt() const { return fmt_; }
    [[nodiscard]] const he::BfvContext& bfv() const { return *bfv_; }
    [[nodiscard]] crypto::ChaCha20Prg& prg() { return prg_; }

    /// Dedicated stream for randomness that determines SHARE VALUES:
    /// the HE linear layers' output masks and encryption noise, and the
    /// session layer's canonical post-nonlinear resharing. Kept separate
    /// from prg() (protocol-internal randomness: garbling, OT offsets,
    /// FSS key material) so its state depends only on the layer plan,
    /// never on which nonlinear backend ran in between. Local share
    /// truncation makes reconstructed values share-dependent, so this
    /// separation is the invariant behind bit-identical logits across
    /// nonlinear backends (fss_test.cpp pins it).
    [[nodiscard]] crypto::ChaCha20Prg& share_prg() { return share_prg_; }

    /// OT endpoint where this party plays extension sender.
    [[nodiscard]] crypto::IknpSender& ot_sender() { return *ot_sender_; }
    /// OT endpoint where this party plays extension receiver.
    [[nodiscard]] crypto::IknpReceiver& ot_receiver() { return *ot_receiver_; }

    /// The client's BFV secret key (client only).
    void set_client_key(he::SecretKey key) { client_key_ = std::move(key); }
    [[nodiscard]] const he::SecretKey& client_key() const {
        require(client_key_.has_value(), "client key not set on this party");
        return *client_key_;
    }

    /// This party's pool of preprocessed FSS ReLU material (kFss backend).
    /// Per-session by necessity: the keys pair with the peer's halves
    /// shipped over THIS connection, so sharing a pool across sessions
    /// would mismatch key halves.
    [[nodiscard]] fss::KeyPool& fss_pool() { return fss_pool_; }

    /// GC circuit cache for secure_maxpool. Sessions point this at their
    /// compiled model's cache (set_gc_cache) so concurrent sessions of
    /// different models never contend; contexts without a model (unit
    /// tests, benches) fall back to a private owned instance.
    void set_gc_cache(GcCircuitCache* cache) { gc_cache_ = cache; }
    [[nodiscard]] GcCircuitCache& gc_cache() {
        return gc_cache_ != nullptr ? *gc_cache_ : owned_gc_cache_;
    }

    /// Per-session scratch payload buffers for ciphertext (de)serialization:
    /// the HE linear layers move many same-sized multi-megabyte messages,
    /// so the send path stages payloads here (one allocation per session)
    /// and the recv path hands this buffer to Transport::recv_bytes_into
    /// (TcpTransport refills it in place; the in-process queue hands over
    /// its own message vector, which is already allocation-optimal for a
    /// by-value handoff). Only the session's protocol thread may touch them.
    [[nodiscard]] std::vector<std::uint8_t>& send_scratch() { return send_scratch_; }
    [[nodiscard]] std::vector<std::uint8_t>& recv_scratch() { return recv_scratch_; }
    /// Second recv scratch for protocols holding TWO payloads live at
    /// once (the GC evaluator keeps the garbled tables while the label
    /// transfer reuses recv_scratch()). Same single-thread rule.
    [[nodiscard]] std::vector<std::uint8_t>& aux_recv_scratch() { return aux_recv_scratch_; }

    /// Pipelined-session flag (SessionConfig::pipeline, default off for
    /// bare contexts): when set, the HE linear layers stream per-channel
    /// response chunks as they finish instead of batching the full
    /// response. Wire bytes and order are identical either way.
    void set_pipeline(bool enabled) { pipeline_ = enabled; }
    [[nodiscard]] bool pipeline() const { return pipeline_; }

    // -- prefetched share-mask draws -----------------------------------------
    /// The server's share_prg() is consumed ONLY by the linear layers'
    /// output masks, in layer order — so while layer k's nonlinear round
    /// trips are in flight, the session layer may pre-draw layer k+1's
    /// masks on another thread (synchronized by thread join) and stash
    /// them here. next_mask_draw() then serves the stash in order before
    /// falling back to the live stream; the draw sequence is identical
    /// to the unprefetched path by construction.
    void stash_mask_draws(std::vector<Ring> draws) {
        require(!has_stashed_mask_draws(), "mask prefetch: previous stash not fully consumed");
        mask_stash_ = std::move(draws);
        mask_stash_pos_ = 0;
    }
    [[nodiscard]] bool has_stashed_mask_draws() const {
        return mask_stash_pos_ < mask_stash_.size();
    }
    [[nodiscard]] Ring next_mask_draw() {
        if (mask_stash_pos_ < mask_stash_.size()) return mask_stash_[mask_stash_pos_++];
        return share_prg_.next_u64();
    }

private:
    net::Transport* transport_;
    FixedPointFormat fmt_;
    const he::BfvContext* bfv_;
    crypto::ChaCha20Prg prg_;
    crypto::ChaCha20Prg share_prg_;
    std::optional<crypto::IknpSender> ot_sender_;
    std::optional<crypto::IknpReceiver> ot_receiver_;
    std::optional<he::SecretKey> client_key_;
    fss::KeyPool fss_pool_;
    GcCircuitCache* gc_cache_ = nullptr;
    GcCircuitCache owned_gc_cache_;
    std::vector<std::uint8_t> send_scratch_, recv_scratch_, aux_recv_scratch_;
    bool pipeline_ = false;
    std::vector<Ring> mask_stash_;
    std::size_t mask_stash_pos_ = 0;
};

}  // namespace c2pi::mpc
