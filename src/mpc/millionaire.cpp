#include "mpc/millionaire.hpp"

namespace c2pi::mpc {

namespace {

constexpr int kRadixBits = 4;
constexpr int kNumBlocks = 16;  // 64 / 4
constexpr std::size_t kNumOptions = 1 << kRadixBits;

/// Open XOR-shared bits to both parties (one message each way, packed).
BitVec open_bits(PartyContext& ctx, std::span<const std::uint8_t> share) {
    std::vector<std::uint8_t> packed((share.size() + 7) / 8, 0);
    for (std::size_t i = 0; i < share.size(); ++i)
        packed[i / 8] |= static_cast<std::uint8_t>((share[i] & 1U) << (i % 8));
    // Deterministic order: server sends first. The reply lands in the
    // session's recv scratch — the open runs once per AND round, so the
    // buffer stays warm across the whole millionaire tree.
    std::vector<std::uint8_t>& theirs = ctx.recv_scratch();
    if (ctx.is_server()) {
        ctx.transport().send_bytes(packed);
        ctx.transport().recv_bytes_into(theirs);
    } else {
        ctx.transport().recv_bytes_into(theirs);
        ctx.transport().send_bytes(packed);
    }
    require(theirs.size() == packed.size(), "open_bits size mismatch");
    BitVec out(share.size());
    for (std::size_t i = 0; i < share.size(); ++i) {
        const std::uint8_t other = (theirs[i / 8] >> (i % 8)) & 1U;
        out[i] = static_cast<std::uint8_t>((share[i] & 1U) ^ other);
    }
    return out;
}

/// Batched AND of XOR-shared bit vectors via fresh OT-generated triples.
BitVec and_bits(PartyContext& ctx, std::span<const std::uint8_t> x, std::span<const std::uint8_t> y) {
    require(x.size() == y.size(), "and_bits size mismatch");
    const std::size_t n = x.size();
    const auto triples =
        crypto::bit_triples_party(ctx.transport(), ctx.ot_sender(), ctx.ot_receiver(), n, ctx.prg());

    BitVec de(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        de[2 * i] = static_cast<std::uint8_t>((x[i] ^ triples.a[i]) & 1U);
        de[2 * i + 1] = static_cast<std::uint8_t>((y[i] ^ triples.b[i]) & 1U);
    }
    const BitVec opened = open_bits(ctx, de);

    BitVec z(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t d = opened[2 * i];
        const std::uint8_t e = opened[2 * i + 1];
        std::uint8_t v = static_cast<std::uint8_t>(triples.c[i] ^ (d & triples.b[i]) ^
                                                   (e & triples.a[i]));
        if (ctx.is_server()) v ^= static_cast<std::uint8_t>(d & e);
        z[i] = static_cast<std::uint8_t>(v & 1U);
    }
    return z;
}

struct LeafShares {
    BitVec lt;  ///< per (element, block): share of 1{c_blk < a_blk}
    BitVec eq;  ///< per (element, block): share of 1{c_blk == a_blk}
};

/// Merge the per-block lt/eq shares into one GT bit per element.
BitVec combine_tree(PartyContext& ctx, LeafShares leaves, std::size_t n_elements) {
    std::size_t blocks = kNumBlocks;
    BitVec lt = std::move(leaves.lt);
    BitVec eq = std::move(leaves.eq);
    while (blocks > 1) {
        const std::size_t half = blocks / 2;
        // Gather AND operands for all merges of this level:
        //   new_lt = lt_hi ^ (eq_hi & lt_lo);  new_eq = eq_hi & eq_lo.
        BitVec left(2 * half * n_elements), right(2 * half * n_elements);
        for (std::size_t e = 0; e < n_elements; ++e) {
            for (std::size_t m = 0; m < half; ++m) {
                const std::size_t lo = e * blocks + 2 * m;
                const std::size_t hi = lo + 1;
                const std::size_t base = (e * half + m) * 2;
                left[base] = eq[hi];
                right[base] = lt[lo];
                left[base + 1] = eq[hi];
                right[base + 1] = eq[lo];
            }
        }
        const BitVec products = and_bits(ctx, left, right);
        BitVec new_lt(half * n_elements), new_eq(half * n_elements);
        for (std::size_t e = 0; e < n_elements; ++e) {
            for (std::size_t m = 0; m < half; ++m) {
                const std::size_t hi = e * blocks + 2 * m + 1;
                const std::size_t base = (e * half + m) * 2;
                new_lt[e * half + m] = static_cast<std::uint8_t>(lt[hi] ^ products[base]);
                new_eq[e * half + m] = products[base + 1];
            }
        }
        lt = std::move(new_lt);
        eq = std::move(new_eq);
        blocks = half;
    }
    return lt;
}

}  // namespace

BitVec millionaire_party0(PartyContext& ctx, std::span<const Ring> a) {
    const std::size_t n = a.size();
    LeafShares leaves;
    leaves.lt.resize(n * kNumBlocks);
    leaves.eq.resize(n * kNumBlocks);

    // Leaf OT messages: for each (element, block) group, 16 options, each a
    // byte packing (lt ^ r_lt) | ((eq ^ r_eq) << 1) for the receiver's
    // candidate block value v.
    std::vector<std::uint8_t> messages(n * kNumBlocks * kNumOptions);
    const auto randomness = ctx.prg().next_bits(2 * n * kNumBlocks);
    for (std::size_t e = 0; e < n; ++e) {
        for (int k = 0; k < kNumBlocks; ++k) {
            const std::size_t g = e * kNumBlocks + static_cast<std::size_t>(k);
            const unsigned a_blk = static_cast<unsigned>((a[e] >> (kRadixBits * k)) & 0xF);
            const std::uint8_t r_lt = randomness[2 * g];
            const std::uint8_t r_eq = randomness[2 * g + 1];
            leaves.lt[g] = r_lt;
            leaves.eq[g] = r_eq;
            for (unsigned v = 0; v < kNumOptions; ++v) {
                const std::uint8_t lt = static_cast<std::uint8_t>((v < a_blk ? 1 : 0) ^ r_lt);
                const std::uint8_t eq = static_cast<std::uint8_t>((v == a_blk ? 1 : 0) ^ r_eq);
                messages[g * kNumOptions + v] = static_cast<std::uint8_t>(lt | (eq << 1));
            }
        }
    }
    crypto::ot_1_of_n_send(ctx.transport(), ctx.ot_sender(), messages, n * kNumBlocks, kNumOptions);
    return combine_tree(ctx, std::move(leaves), n);
}

BitVec millionaire_party1(PartyContext& ctx, std::span<const Ring> c) {
    const std::size_t n = c.size();
    std::vector<std::uint16_t> indices(n * kNumBlocks);
    for (std::size_t e = 0; e < n; ++e)
        for (int k = 0; k < kNumBlocks; ++k)
            indices[e * kNumBlocks + static_cast<std::size_t>(k)] =
                static_cast<std::uint16_t>((c[e] >> (kRadixBits * k)) & 0xF);

    const auto received =
        crypto::ot_1_of_n_recv(ctx.transport(), ctx.ot_receiver(), indices, kNumOptions);
    LeafShares leaves;
    leaves.lt.resize(n * kNumBlocks);
    leaves.eq.resize(n * kNumBlocks);
    for (std::size_t g = 0; g < received.size(); ++g) {
        leaves.lt[g] = received[g] & 1U;
        leaves.eq[g] = (received[g] >> 1) & 1U;
    }
    return combine_tree(ctx, std::move(leaves), n);
}

BitVec drelu_shares(PartyContext& ctx, std::span<const Ring> y_share) {
    const std::size_t n = y_share.size();
    constexpr Ring kLowMask = (Ring{1} << 63) - 1;

    // carry = 1{ low(y0) + low(y1) >= 2^63 } = millionaire(low0 > 2^63-1-low1).
    std::vector<Ring> operand(n);
    BitVec carry;
    if (ctx.is_server()) {
        for (std::size_t i = 0; i < n; ++i) operand[i] = y_share[i] & kLowMask;
        carry = millionaire_party0(ctx, operand);
    } else {
        for (std::size_t i = 0; i < n; ++i) operand[i] = kLowMask - (y_share[i] & kLowMask);
        carry = millionaire_party1(ctx, operand);
    }

    // b = 1 ^ msb(y0) ^ msb(y1) ^ carry; the constant 1 goes to the server.
    BitVec b(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint8_t v = static_cast<std::uint8_t>((y_share[i] >> 63) & 1U) ^ carry[i];
        if (ctx.is_server()) v ^= 1U;
        b[i] = static_cast<std::uint8_t>(v & 1U);
    }
    return b;
}

std::vector<Ring> mux_shares(PartyContext& ctx, std::span<const std::uint8_t> b_share,
                             std::span<const Ring> y_share) {
    require(b_share.size() == y_share.size(), "mux operand size mismatch");
    const std::size_t n = y_share.size();

    // Each party plays OT sender once (transferring b * y_own - x) and
    // receiver once (choosing with its own b bit). Server sends first.
    std::vector<Ring> own_offset(n), m0(n), m1(n);
    for (std::size_t i = 0; i < n; ++i) {
        own_offset[i] = ctx.prg().next_u64();
        const Ring y_if_zero = (b_share[i] & 1U) ? y_share[i] : 0;
        const Ring y_if_one = (b_share[i] & 1U) ? 0 : y_share[i];
        m0[i] = y_if_zero - own_offset[i];
        m1[i] = y_if_one - own_offset[i];
    }

    std::vector<Ring> received;
    if (ctx.is_server()) {
        crypto::ot_send_u64_pairs(ctx.transport(), ctx.ot_sender(), m0, m1);
        received = crypto::ot_recv_u64s(ctx.transport(), ctx.ot_receiver(), b_share);
    } else {
        received = crypto::ot_recv_u64s(ctx.transport(), ctx.ot_receiver(), b_share);
        crypto::ot_send_u64_pairs(ctx.transport(), ctx.ot_sender(), m0, m1);
    }

    std::vector<Ring> z(n);
    for (std::size_t i = 0; i < n; ++i) z[i] = own_offset[i] + received[i];
    return z;
}

std::vector<Ring> relu_shares_ot(PartyContext& ctx, std::span<const Ring> y_share) {
    const BitVec b = drelu_shares(ctx, y_share);
    return mux_shares(ctx, b, y_share);
}

std::vector<Ring> max_pairwise_ot(PartyContext& ctx, std::span<const Ring> a_share,
                                  std::span<const Ring> b_share) {
    require(a_share.size() == b_share.size(), "max operand size mismatch");
    std::vector<Ring> diff(a_share.size());
    for (std::size_t i = 0; i < diff.size(); ++i) diff[i] = b_share[i] - a_share[i];
    const auto relu_diff = relu_shares_ot(ctx, diff);
    std::vector<Ring> out(a_share.size());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = a_share[i] + relu_diff[i];
    return out;
}

}  // namespace c2pi::mpc
