#pragma once

/// \file nonlinear.hpp
/// Secure non-linear layers over additive shares, with the two backends
/// the paper benchmarks:
///
///  * kGarbledCircuit — Delphi-style: the client garbles ReLU/Max circuits
///    (tables shipped in the offline phase), the server evaluates online
///    and ends up holding the freshly re-shared output. The client's
///    output share can be pinned via `client_fresh_share` so the Delphi
///    engine can pre-commit its offline masks.
///  * kOtMillionaire — Cheetah-style: DReLU via the radix-16 millionaire
///    protocol + COT multiplexer (see millionaire.hpp), online-only.
///  * kFss — function-secret-sharing comparisons (fss/compare.hpp):
///    DCF key pairs are dealt in the preprocessing phase (the pool in
///    PartyContext), so the online cost per ReLU batch is one masked-
///    value reconstruction round plus local DCF evaluations.
///
/// All backends expose the same share-in/share-out signature so the PI
/// engines stay backend-agnostic.

#include "mpc/millionaire.hpp"

namespace c2pi::mpc {

enum class NonlinearBackend { kGarbledCircuit, kOtMillionaire, kFss };

/// Batched secure ReLU. `client_fresh_share` (client side, GC backend
/// only) pins the client's output share; pass empty to draw from the
/// party PRG. Server must pass empty.
[[nodiscard]] std::vector<Ring> secure_relu(PartyContext& ctx, std::span<const Ring> y_share,
                                            NonlinearBackend backend,
                                            std::span<const Ring> client_fresh_share = {});

/// Secure MaxPool over an NCHW share tensor (kernel k, stride s, square,
/// non-overlapping as in the paper's models). Returns pooled shares.
[[nodiscard]] RingTensor secure_maxpool(PartyContext& ctx, const RingTensor& x_share,
                                        std::int64_t kernel, std::int64_t stride,
                                        NonlinearBackend backend,
                                        std::span<const Ring> client_fresh_share = {});

/// Reveal additive shares to both parties (each sends its share).
[[nodiscard]] std::vector<Ring> reveal_shares(PartyContext& ctx, std::span<const Ring> share);

/// Reveal to one party only (`to_party` receives the plaintext, other
/// party gets an empty vector).
[[nodiscard]] std::vector<Ring> reveal_shares_to(PartyContext& ctx, std::span<const Ring> share,
                                                 int to_party);

}  // namespace c2pi::mpc
