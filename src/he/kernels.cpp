#include "he/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "core/error.hpp"

namespace c2pi::he::kernels {

bool cpu_supports(Tier tier) {
    switch (tier) {
        case Tier::kScalar:
            return true;
#if defined(__x86_64__) || defined(__i386__)
        case Tier::kAvx2:
            return __builtin_cpu_supports("avx2") != 0;
        case Tier::kAvx512:
            // F for the 512-bit registers, DQ for 64-bit mullo, BW for the
            // byte shuffles in the ChaCha20 rotations, VL for the 256-bit
            // tail ops — the kernel TU is compiled with exactly this set.
            return __builtin_cpu_supports("avx512f") != 0 &&
                   __builtin_cpu_supports("avx512dq") != 0 &&
                   __builtin_cpu_supports("avx512bw") != 0 &&
                   __builtin_cpu_supports("avx512vl") != 0;
#endif
        default:
            return false;
    }
}

namespace {

const Kernels* registered(Tier tier) {
    switch (tier) {
        case Tier::kScalar: return scalar_kernels();
        case Tier::kAvx2: return avx2_kernels();
        case Tier::kAvx512: return avx512_kernels();
    }
    return nullptr;
}

/// Compiled in AND usable on this CPU.
const Kernels* usable(Tier tier) {
    const Kernels* k = registered(tier);
    return (k != nullptr && cpu_supports(tier)) ? k : nullptr;
}

const Kernels* resolve() {
    if (const char* env = std::getenv("C2PI_KERNELS"); env != nullptr && env[0] != '\0') {
        const Kernels* k = by_name(env);
        require(k != nullptr, std::string("C2PI_KERNELS=") + env +
                                  " names an unknown kernel tier or one this CPU/build "
                                  "does not support (valid: scalar, avx2, avx512)");
        return k;
    }
    if (const Kernels* k = usable(Tier::kAvx512)) return k;
    if (const Kernels* k = usable(Tier::kAvx2)) return k;
    return scalar_kernels();
}

std::atomic<const Kernels*> g_override{nullptr};

}  // namespace

const Kernels& active() {
    if (const Kernels* forced = g_override.load(std::memory_order_acquire))
        return *forced;
    static const Kernels* const resolved = resolve();
    return *resolved;
}

const std::vector<const Kernels*>& supported() {
    static const std::vector<const Kernels*> list = [] {
        std::vector<const Kernels*> v{scalar_kernels()};
        if (const Kernels* k = usable(Tier::kAvx2)) v.push_back(k);
        if (const Kernels* k = usable(Tier::kAvx512)) v.push_back(k);
        return v;
    }();
    return list;
}

const Kernels* by_name(std::string_view name) {
    if (name == "scalar") return scalar_kernels();
    if (name == "avx2") return usable(Tier::kAvx2);
    if (name == "avx512") return usable(Tier::kAvx512);
    return nullptr;
}

void set_active_for_testing(const Kernels* k) {
    g_override.store(k, std::memory_order_release);
}

}  // namespace c2pi::he::kernels
