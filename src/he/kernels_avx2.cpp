// AVX2 kernel variant: 4 x u64 lanes for the ring arithmetic, 8 x u32
// lanes (8 blocks) for ChaCha20. Every operation reproduces the scalar
// lazy-reduction sequence exactly — AVX2 has no 64x64 high multiply, so
// mulhi/mullo are emulated from 32-bit partial products, which is still
// a win because the butterfly's compare/select logic and the second
// operand's low multiply vectorize alongside. The NTT's final stages
// (t = 2, t = 1), where lanes need distinct twiddles, are handled with
// unpack/permute deinterleaves over contiguous twiddle loads instead of
// falling back to scalar.
//
// This TU (alone) is compiled with -mavx2; dispatch guarantees the
// entry points only run after a cpuid check.

#include "he/kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "he/modmath.hpp"

namespace c2pi::he::kernels {

namespace {

using V = __m256i;

inline V load(const u64* p) { return _mm256_loadu_si256(reinterpret_cast<const V*>(p)); }
inline void store(u64* p, V x) { _mm256_storeu_si256(reinterpret_cast<V*>(p), x); }

const V kSign = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
const V kLo32 = _mm256_set1_epi64x(0xFFFFFFFFLL);

/// Unsigned 64-bit b > a, per lane (all-ones mask where true).
inline V gt_u64(V b, V a) {
    return _mm256_cmpgt_epi64(_mm256_xor_si256(b, kSign), _mm256_xor_si256(a, kSign));
}

/// a >= bound ? a - bound : a (unsigned lanes).
inline V csub_u64(V a, V bound) {
    const V keep = gt_u64(bound, a);  // bound > a -> keep a
    return _mm256_blendv_epi8(_mm256_sub_epi64(a, bound), a, keep);
}

/// (a + b) mod p for a, b < p < 2^63.
inline V add_mod_v(V a, V b, V p) { return csub_u64(_mm256_add_epi64(a, b), p); }

/// (a - b) mod p for a, b < p.
inline V sub_mod_v(V a, V b, V p) {
    const V diff = _mm256_sub_epi64(a, b);
    return _mm256_blendv_epi8(diff, _mm256_add_epi64(diff, p), gt_u64(b, a));
}

/// Low 64 bits of a * b.
inline V mullo_u64(V a, V b) {
    const V cross = _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                                     _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
    return _mm256_add_epi64(_mm256_mul_epu32(a, b), _mm256_slli_epi64(cross, 32));
}

/// High 64 bits of a * b (schoolbook over 32-bit halves).
inline V mulhi_u64(V a, V b) {
    const V a_hi = _mm256_srli_epi64(a, 32);
    const V b_hi = _mm256_srli_epi64(b, 32);
    const V ll = _mm256_mul_epu32(a, b);
    const V lh = _mm256_mul_epu32(a, b_hi);
    const V hl = _mm256_mul_epu32(a_hi, b);
    const V hh = _mm256_mul_epu32(a_hi, b_hi);
    const V cross = _mm256_add_epi64(_mm256_and_si256(lh, kLo32), _mm256_and_si256(hl, kLo32));
    const V carry =
        _mm256_srli_epi64(_mm256_add_epi64(_mm256_srli_epi64(ll, 32), cross), 32);
    return _mm256_add_epi64(_mm256_add_epi64(hh, carry),
                            _mm256_add_epi64(_mm256_srli_epi64(lh, 32),
                                             _mm256_srli_epi64(hl, 32)));
}

/// Lazy Shoup product: a * w - floor(a * w_shoup / 2^64) * p, in [0, 2p).
inline V mul_shoup_lazy_v(V a, V w, V w_shoup, V p) {
    const V q = mulhi_u64(a, w_shoup);
    return _mm256_sub_epi64(mullo_u64(a, w), mullo_u64(q, p));
}

/// Exact Shoup product in [0, p).
inline V mul_shoup_v(V a, V w, V w_shoup, V p) {
    return csub_u64(mul_shoup_lazy_v(a, w, w_shoup, p), p);
}

/// a mod p for arbitrary a (Shoup reduction by 1).
inline V reduce_mod_v(V a, V one_shoup, V p) {
    const V q = mulhi_u64(a, one_shoup);
    return csub_u64(_mm256_sub_epi64(a, mullo_u64(q, p)), p);
}

// ------------------------------------------------------------------- NTT ---

/// Forward Harvey butterfly on 4 lanes: (u, x) -> (u' + v, u' + 2p - v)
/// with u' = csub(u, 2p), v = lazy(x * s).
inline void fwd_butterfly(V& u, V& x, V s, V s_shoup, V p, V two_p) {
    u = csub_u64(u, two_p);
    const V v = mul_shoup_lazy_v(x, s, s_shoup, p);
    x = _mm256_add_epi64(u, _mm256_sub_epi64(two_p, v));
    u = _mm256_add_epi64(u, v);
}

void ntt_forward_avx2(u64* a, std::size_t n, const u64* psi_rev,
                      const u64* psi_rev_shoup, u64 p) {
    if (n < 16) {  // specialized tail stages assume >= 4 blocks per stage
        scalar_kernels()->ntt_forward(a, n, psi_rev, psi_rev_shoup, p);
        return;
    }
    const V vp = _mm256_set1_epi64x(static_cast<long long>(p));
    const V v2p = _mm256_set1_epi64x(static_cast<long long>(2 * p));

    std::size_t m = 1;
    std::size_t t = n >> 1;
    for (; t >= 4; m <<= 1, t >>= 1) {
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const V s = _mm256_set1_epi64x(static_cast<long long>(psi_rev[m + i]));
            const V ss = _mm256_set1_epi64x(static_cast<long long>(psi_rev_shoup[m + i]));
            for (std::size_t j = j1; j < j1 + t; j += 4) {
                V u = load(a + j);
                V x = load(a + j + t);
                fwd_butterfly(u, x, s, ss, vp, v2p);
                store(a + j, u);
                store(a + j + t, x);
            }
        }
    }

    // t == 2 (m = n/4): blocks [u0 u1 v0 v1]; two blocks per pass, the
    // 128-bit halves of a register are one block's u-part / v-part.
    for (std::size_t i = 0; i < m; i += 2) {
        const std::size_t j = 4 * i;
        const V x0 = load(a + j);
        const V x1 = load(a + j + 4);
        V u = _mm256_permute2x128_si256(x0, x1, 0x20);
        V x = _mm256_permute2x128_si256(x0, x1, 0x31);
        const V tw = load(psi_rev + m + i);
        const V tws = load(psi_rev_shoup + m + i);
        const V s = _mm256_permute4x64_epi64(tw, 0x50);   // [s_i s_i s_i+1 s_i+1]
        const V ss = _mm256_permute4x64_epi64(tws, 0x50);
        fwd_butterfly(u, x, s, ss, vp, v2p);
        store(a + j, _mm256_permute2x128_si256(u, x, 0x20));
        store(a + j + 4, _mm256_permute2x128_si256(u, x, 0x31));
    }
    m <<= 1;

    // t == 1 (m = n/2): adjacent pairs; unpack gives pair order
    // [0 2 1 3], matched by the same permute of the contiguous twiddles.
    for (std::size_t i = 0; i < m; i += 4) {
        const std::size_t j = 2 * i;
        const V x0 = load(a + j);
        const V x1 = load(a + j + 4);
        V u = _mm256_unpacklo_epi64(x0, x1);
        V x = _mm256_unpackhi_epi64(x0, x1);
        const V tw = load(psi_rev + m + i);
        const V tws = load(psi_rev_shoup + m + i);
        const V s = _mm256_permute4x64_epi64(tw, _MM_SHUFFLE(3, 1, 2, 0));
        const V ss = _mm256_permute4x64_epi64(tws, _MM_SHUFFLE(3, 1, 2, 0));
        fwd_butterfly(u, x, s, ss, vp, v2p);
        store(a + j, _mm256_unpacklo_epi64(u, x));
        store(a + j + 4, _mm256_unpackhi_epi64(u, x));
    }

    for (std::size_t j = 0; j < n; j += 4)
        store(a + j, csub_u64(csub_u64(load(a + j), v2p), vp));
}

/// Inverse Gentleman-Sande butterfly: (u, v) -> (csub(u+v, 2p),
/// lazy((u + 2p - v) * s)).
inline void inv_butterfly(V& u, V& v, V s, V s_shoup, V p, V two_p) {
    const V diff = _mm256_add_epi64(u, _mm256_sub_epi64(two_p, v));
    u = csub_u64(_mm256_add_epi64(u, v), two_p);
    v = mul_shoup_lazy_v(diff, s, s_shoup, p);
}

void ntt_inverse_avx2(u64* a, std::size_t n, const u64* ipsi_rev,
                      const u64* ipsi_rev_shoup, u64 n_inv, u64 n_inv_shoup, u64 p) {
    if (n < 16) {
        scalar_kernels()->ntt_inverse(a, n, ipsi_rev, ipsi_rev_shoup, n_inv, n_inv_shoup, p);
        return;
    }
    const V vp = _mm256_set1_epi64x(static_cast<long long>(p));
    const V v2p = _mm256_set1_epi64x(static_cast<long long>(2 * p));

    // t == 1 (h = n/2): adjacent pairs, same deinterleave as forward.
    {
        const std::size_t h = n >> 1;
        for (std::size_t i = 0; i < h; i += 4) {
            const std::size_t j = 2 * i;
            const V x0 = load(a + j);
            const V x1 = load(a + j + 4);
            V u = _mm256_unpacklo_epi64(x0, x1);
            V v = _mm256_unpackhi_epi64(x0, x1);
            const V tw = load(ipsi_rev + h + i);
            const V tws = load(ipsi_rev_shoup + h + i);
            const V s = _mm256_permute4x64_epi64(tw, _MM_SHUFFLE(3, 1, 2, 0));
            const V ss = _mm256_permute4x64_epi64(tws, _MM_SHUFFLE(3, 1, 2, 0));
            inv_butterfly(u, v, s, ss, vp, v2p);
            store(a + j, _mm256_unpacklo_epi64(u, v));
            store(a + j + 4, _mm256_unpackhi_epi64(u, v));
        }
    }

    // t == 2 (h = n/4): blocks [u0 u1 v0 v1].
    {
        const std::size_t h = n >> 2;
        for (std::size_t i = 0; i < h; i += 2) {
            const std::size_t j = 4 * i;
            const V x0 = load(a + j);
            const V x1 = load(a + j + 4);
            V u = _mm256_permute2x128_si256(x0, x1, 0x20);
            V v = _mm256_permute2x128_si256(x0, x1, 0x31);
            const V tw = load(ipsi_rev + h + i);
            const V tws = load(ipsi_rev_shoup + h + i);
            const V s = _mm256_permute4x64_epi64(tw, 0x50);
            const V ss = _mm256_permute4x64_epi64(tws, 0x50);
            inv_butterfly(u, v, s, ss, vp, v2p);
            store(a + j, _mm256_permute2x128_si256(u, v, 0x20));
            store(a + j + 4, _mm256_permute2x128_si256(u, v, 0x31));
        }
    }

    // t >= 4: broadcast twiddle per run.
    for (std::size_t t = 4, h = n >> 3; h >= 1; t <<= 1, h >>= 1) {
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < h; ++i) {
            const V s = _mm256_set1_epi64x(static_cast<long long>(ipsi_rev[h + i]));
            const V ss = _mm256_set1_epi64x(static_cast<long long>(ipsi_rev_shoup[h + i]));
            for (std::size_t j = j1; j < j1 + t; j += 4) {
                V u = load(a + j);
                V v = load(a + j + t);
                inv_butterfly(u, v, s, ss, vp, v2p);
                store(a + j, u);
                store(a + j + t, v);
            }
            j1 += 2 * t;
        }
    }

    const V s = _mm256_set1_epi64x(static_cast<long long>(n_inv));
    const V ss = _mm256_set1_epi64x(static_cast<long long>(n_inv_shoup));
    for (std::size_t j = 0; j < n; j += 4)
        store(a + j, csub_u64(mul_shoup_lazy_v(load(a + j), s, ss, vp), vp));
}

// ----------------------------------------------------- element-wise loops ---

void mul_shoup_avx2(u64* dst, const u64* a, const u64* w, const u64* w_shoup,
                    std::size_t n, u64 p) {
    const V vp = _mm256_set1_epi64x(static_cast<long long>(p));
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4)
        store(dst + j, mul_shoup_v(load(a + j), load(w + j), load(w_shoup + j), vp));
    for (; j < n; ++j) dst[j] = mul_mod_shoup(a[j], w[j], w_shoup[j], p);
}

void mul_shoup_accumulate_avx2(u64* acc, const u64* a, const u64* w,
                               const u64* w_shoup, std::size_t n, u64 p) {
    const V vp = _mm256_set1_epi64x(static_cast<long long>(p));
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const V prod = mul_shoup_v(load(a + j), load(w + j), load(w_shoup + j), vp);
        store(acc + j, add_mod_v(load(acc + j), prod, vp));
    }
    for (; j < n; ++j)
        acc[j] = add_mod(acc[j], mul_mod_shoup(a[j], w[j], w_shoup[j], p), p);
}

void fold_delta_avx2(u64* c0, const u64* plain, std::size_t n, u64 p,
                     u64 one_shoup, u64 delta, u64 delta_shoup) {
    const V vp = _mm256_set1_epi64x(static_cast<long long>(p));
    const V vone = _mm256_set1_epi64x(static_cast<long long>(one_shoup));
    const V vd = _mm256_set1_epi64x(static_cast<long long>(delta));
    const V vds = _mm256_set1_epi64x(static_cast<long long>(delta_shoup));
    const V zero = _mm256_setzero_si256();
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const V v = load(plain + j);
        const V neg = _mm256_cmpgt_epi64(zero, v);  // signed v < 0
        const V mag = _mm256_blendv_epi8(v, _mm256_sub_epi64(zero, v), neg);
        const V red = reduce_mod_v(mag, vone, vp);
        // negative lift: red == 0 ? 0 : p - red
        V lifted_neg = _mm256_sub_epi64(vp, red);
        lifted_neg = _mm256_andnot_si256(_mm256_cmpeq_epi64(red, zero), lifted_neg);
        const V m = _mm256_blendv_epi8(red, lifted_neg, neg);
        const V term = mul_shoup_v(m, vd, vds, vp);
        store(c0 + j, add_mod_v(load(c0 + j), term, vp));
    }
    for (; j < n; ++j) {
        const auto sv = static_cast<std::int64_t>(plain[j]);
        u64 m;
        if (sv >= 0) {
            m = reduce_mod_shoup(static_cast<u64>(sv), one_shoup, p);
        } else {
            const u64 mag = reduce_mod_shoup(u64{0} - plain[j], one_shoup, p);
            m = mag == 0 ? 0 : p - mag;
        }
        c0[j] = add_mod(c0[j], mul_mod_shoup(m, delta, delta_shoup, p), p);
    }
}

void mod_switch_4to2_avx2(u64* l0, u64* l1, const u64* l2, const u64* l3,
                          std::size_t n, const ModSwitchConsts& k) {
    const V vq3 = _mm256_set1_epi64x(static_cast<long long>(k.q3));
    const V vq4 = _mm256_set1_epi64x(static_cast<long long>(k.q4));
    const V vone_q4 = _mm256_set1_epi64x(static_cast<long long>(k.one_shoup_q4));
    const V vq3i = _mm256_set1_epi64x(static_cast<long long>(k.q3_inv));
    const V vq3is = _mm256_set1_epi64x(static_cast<long long>(k.q3_inv_shoup));
    V vpk[2], vonek[2], vr64[2], vr64s[2], vdrop[2], vdrops[2];
    for (int i = 0; i < 2; ++i) {
        vpk[i] = _mm256_set1_epi64x(static_cast<long long>(k.p[i]));
        vonek[i] = _mm256_set1_epi64x(static_cast<long long>(k.one_shoup[i]));
        vr64[i] = _mm256_set1_epi64x(static_cast<long long>(k.r64[i]));
        vr64s[i] = _mm256_set1_epi64x(static_cast<long long>(k.r64_shoup[i]));
        vdrop[i] = _mm256_set1_epi64x(static_cast<long long>(k.drop_inv[i]));
        vdrops[i] = _mm256_set1_epi64x(static_cast<long long>(k.drop_inv_shoup[i]));
    }
    u64* dst[2] = {l0, l1};
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const V c3 = load(l2 + j);
        const V c4 = load(l3 + j);
        const V d = sub_mod_v(reduce_mod_v(c4, vone_q4, vq4),
                              reduce_mod_v(c3, vone_q4, vq4), vq4);
        const V w = mul_shoup_v(d, vq3i, vq3is, vq4);
        // 128-bit v = c3 + q3 * w, split into (hi, lo) with carry.
        const V prod_lo = mullo_u64(vq3, w);
        const V lo = _mm256_add_epi64(prod_lo, c3);
        const V carry = gt_u64(prod_lo, lo);  // all-ones where overflowed
        const V hi = _mm256_sub_epi64(mulhi_u64(vq3, w), carry);
        for (int i = 0; i < 2; ++i) {
            const V v_mod = add_mod_v(mul_shoup_v(hi, vr64[i], vr64s[i], vpk[i]),
                                      reduce_mod_v(lo, vonek[i], vpk[i]), vpk[i]);
            const V cur = load(dst[i] + j);
            store(dst[i] + j,
                  mul_shoup_v(sub_mod_v(cur, v_mod, vpk[i]), vdrop[i], vdrops[i], vpk[i]));
        }
    }
    if (j < n) {
        ModSwitchConsts tail = k;
        scalar_kernels()->mod_switch_4to2(l0 + j, l1 + j, l2 + j, l3 + j, n - j, tail);
    }
}

// -------------------------------------------------------------- ChaCha20 ---

using W = __m256i;  // 8 x u32 lanes = 8 blocks, one state word per register

inline W rotl_v(W x, int r) {
    return _mm256_or_si256(_mm256_slli_epi32(x, r), _mm256_srli_epi32(x, 32 - r));
}

inline void quarter_round_v(W& a, W& b, W& c, W& d, W rot16, W rot8) {
    a = _mm256_add_epi32(a, b);
    d = _mm256_shuffle_epi8(_mm256_xor_si256(d, a), rot16);
    c = _mm256_add_epi32(c, d);
    b = rotl_v(_mm256_xor_si256(b, c), 12);
    a = _mm256_add_epi32(a, b);
    d = _mm256_shuffle_epi8(_mm256_xor_si256(d, a), rot8);
    c = _mm256_add_epi32(c, d);
    b = rotl_v(_mm256_xor_si256(b, c), 7);
}

/// 8x8 u32 transpose: rows r[0..7] in, columns out (column b lands in r[b]).
inline void transpose_8x8_u32(W r[8]) {
    const W t0 = _mm256_unpacklo_epi32(r[0], r[1]);
    const W t1 = _mm256_unpackhi_epi32(r[0], r[1]);
    const W t2 = _mm256_unpacklo_epi32(r[2], r[3]);
    const W t3 = _mm256_unpackhi_epi32(r[2], r[3]);
    const W t4 = _mm256_unpacklo_epi32(r[4], r[5]);
    const W t5 = _mm256_unpackhi_epi32(r[4], r[5]);
    const W t6 = _mm256_unpacklo_epi32(r[6], r[7]);
    const W t7 = _mm256_unpackhi_epi32(r[6], r[7]);
    const W u0 = _mm256_unpacklo_epi64(t0, t2);
    const W u1 = _mm256_unpackhi_epi64(t0, t2);
    const W u2 = _mm256_unpacklo_epi64(t1, t3);
    const W u3 = _mm256_unpackhi_epi64(t1, t3);
    const W u4 = _mm256_unpacklo_epi64(t4, t6);
    const W u5 = _mm256_unpackhi_epi64(t4, t6);
    const W u6 = _mm256_unpacklo_epi64(t5, t7);
    const W u7 = _mm256_unpackhi_epi64(t5, t7);
    r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
    r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
    r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
    r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
    r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
    r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
    r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
    r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

/// 8 consecutive keystream blocks starting at `counter`.
void chacha20_8blocks(const std::uint32_t state[16], std::uint64_t counter,
                      std::uint8_t* out) {
    const W rot16 = _mm256_set_epi8(13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2,
                                    13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2);
    const W rot8 = _mm256_set_epi8(14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3,
                                   14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3);
    W init[16];
    for (int i = 0; i < 16; ++i) init[i] = _mm256_set1_epi32(static_cast<int>(state[i]));
    alignas(32) std::uint32_t ctr_lo[8], ctr_hi[8];
    for (int b = 0; b < 8; ++b) {
        const std::uint64_t c = counter + static_cast<std::uint64_t>(b);
        ctr_lo[b] = static_cast<std::uint32_t>(c);
        ctr_hi[b] = static_cast<std::uint32_t>(c >> 32);
    }
    init[12] = _mm256_load_si256(reinterpret_cast<const W*>(ctr_lo));
    init[13] = _mm256_load_si256(reinterpret_cast<const W*>(ctr_hi));

    W x[16];
    for (int i = 0; i < 16; ++i) x[i] = init[i];
    for (int round = 0; round < 10; ++round) {
        quarter_round_v(x[0], x[4], x[8], x[12], rot16, rot8);
        quarter_round_v(x[1], x[5], x[9], x[13], rot16, rot8);
        quarter_round_v(x[2], x[6], x[10], x[14], rot16, rot8);
        quarter_round_v(x[3], x[7], x[11], x[15], rot16, rot8);
        quarter_round_v(x[0], x[5], x[10], x[15], rot16, rot8);
        quarter_round_v(x[1], x[6], x[11], x[12], rot16, rot8);
        quarter_round_v(x[2], x[7], x[8], x[13], rot16, rot8);
        quarter_round_v(x[3], x[4], x[9], x[14], rot16, rot8);
    }
    for (int i = 0; i < 16; ++i) x[i] = _mm256_add_epi32(x[i], init[i]);

    // Transpose words 0..7 and 8..15 separately; block b is then row b of
    // the first transpose (32 bytes) followed by row b of the second.
    transpose_8x8_u32(x);
    transpose_8x8_u32(x + 8);
    for (int b = 0; b < 8; ++b) {
        _mm256_storeu_si256(reinterpret_cast<W*>(out + 64 * b), x[b]);
        _mm256_storeu_si256(reinterpret_cast<W*>(out + 64 * b + 32), x[8 + b]);
    }
}

void chacha20_blocks_avx2_impl(const std::uint32_t state[16], std::uint8_t* out,
                               std::size_t nblocks) {
    std::uint64_t counter = static_cast<std::uint64_t>(state[12]) |
                            (static_cast<std::uint64_t>(state[13]) << 32);
    while (nblocks >= 8) {
        chacha20_8blocks(state, counter, out);
        counter += 8;
        out += 8 * 64;
        nblocks -= 8;
    }
    if (nblocks > 0) {
        std::uint32_t tail_state[16];
        std::memcpy(tail_state, state, sizeof(tail_state));
        tail_state[12] = static_cast<std::uint32_t>(counter);
        tail_state[13] = static_cast<std::uint32_t>(counter >> 32);
        scalar_kernels()->chacha20_blocks(tail_state, out, nblocks);
    }
}

}  // namespace

namespace detail {
// Shared with the AVX-512 tier: 8-wide block batching is already
// memory-bound there, so the 512-bit tier reuses this implementation.
void chacha20_blocks_avx2(const std::uint32_t state[16], std::uint8_t* out,
                          std::size_t nblocks) {
    chacha20_blocks_avx2_impl(state, out, nblocks);
}
}  // namespace detail

const Kernels* avx2_kernels() {
    static constexpr Kernels k{
        .tier = Tier::kAvx2,
        .name = "avx2",
        .ntt_forward = &ntt_forward_avx2,
        .ntt_inverse = &ntt_inverse_avx2,
        .mul_shoup = &mul_shoup_avx2,
        .mul_shoup_accumulate = &mul_shoup_accumulate_avx2,
        .fold_delta = &fold_delta_avx2,
        .mod_switch_4to2 = &mod_switch_4to2_avx2,
        .chacha20_blocks = &chacha20_blocks_avx2_impl,
    };
    return &k;
}

}  // namespace c2pi::he::kernels

#else  // !__AVX2__

namespace c2pi::he::kernels {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace c2pi::he::kernels

#endif
