// Scalar kernel variant — the reference semantics every SIMD tier must
// reproduce bit-for-bit. The NTT bodies are the Harvey lazy-reduction
// passes that lived in he/ntt.cpp before the kernel split; the ChaCha20
// block is the RFC 8439 function that lived in crypto/chacha20.cpp.

#include <cstring>

#include "he/kernels.hpp"
#include "he/modmath.hpp"

namespace c2pi::he::kernels {

namespace {

void ntt_forward_scalar(u64* a, std::size_t n, const u64* psi_rev,
                        const u64* psi_rev_shoup, u64 p) {
    // Harvey-style lazy butterflies: values stay below 4p between stages
    // (fine for ~49-bit primes; 4p < 2^51), the twiddle product accepts
    // any operand < 2^64 and returns a value < 2p, and a single final
    // pass reduces to [0, p).
    const u64 two_p = 2 * p;
    std::size_t t = n;
    for (std::size_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const u64 s = psi_rev[m + i];
            const u64 s_shoup = psi_rev_shoup[m + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                if (u >= two_p) u -= two_p;                               // < 2p
                const u64 v = mul_mod_shoup_lazy(a[j + t], s, s_shoup, p); // < 2p
                a[j] = u + v;                                             // < 4p
                a[j + t] = u + two_p - v;                                 // < 4p
            }
        }
    }
    for (std::size_t j = 0; j < n; ++j) {
        u64 x = a[j];
        if (x >= two_p) x -= two_p;
        if (x >= p) x -= p;
        a[j] = x;
    }
}

void ntt_inverse_scalar(u64* a, std::size_t n, const u64* ipsi_rev,
                        const u64* ipsi_rev_shoup, u64 n_inv, u64 n_inv_shoup,
                        u64 p) {
    // Gentleman-Sande stages with the same lazy discipline: sums are
    // conditionally reduced to < 2p, differences go through the lazy
    // twiddle product (< 2p), and the closing n^{-1} scaling performs the
    // single exact reduction to [0, p).
    const u64 two_p = 2 * p;
    std::size_t t = 1;
    for (std::size_t m = n; m > 1; m >>= 1) {
        std::size_t j1 = 0;
        const std::size_t h = m >> 1;
        for (std::size_t i = 0; i < h; ++i) {
            const u64 s = ipsi_rev[h + i];
            const u64 s_shoup = ipsi_rev_shoup[h + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = a[j + t];
                u64 sum = u + v;                                            // < 4p
                if (sum >= two_p) sum -= two_p;                             // < 2p
                a[j] = sum;
                a[j + t] = mul_mod_shoup_lazy(u + two_p - v, s, s_shoup, p); // < 2p
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (std::size_t j = 0; j < n; ++j) {
        u64 x = mul_mod_shoup_lazy(a[j], n_inv, n_inv_shoup, p);
        if (x >= p) x -= p;
        a[j] = x;
    }
}

void mul_shoup_scalar(u64* dst, const u64* a, const u64* w, const u64* w_shoup,
                      std::size_t n, u64 p) {
    for (std::size_t j = 0; j < n; ++j) dst[j] = mul_mod_shoup(a[j], w[j], w_shoup[j], p);
}

void mul_shoup_accumulate_scalar(u64* acc, const u64* a, const u64* w,
                                 const u64* w_shoup, std::size_t n, u64 p) {
    for (std::size_t j = 0; j < n; ++j)
        acc[j] = add_mod(acc[j], mul_mod_shoup(a[j], w[j], w_shoup[j], p), p);
}

void fold_delta_scalar(u64* c0, const u64* plain, std::size_t n, u64 p,
                       u64 one_shoup, u64 delta, u64 delta_shoup) {
    for (std::size_t j = 0; j < n; ++j) {
        // Divisionless signed lift of the ring element into [0, p): the
        // magnitude of a negative value is computed in unsigned
        // arithmetic (negating INT64_MIN would be signed-overflow UB).
        const auto sv = static_cast<std::int64_t>(plain[j]);
        u64 m;
        if (sv >= 0) {
            m = reduce_mod_shoup(static_cast<u64>(sv), one_shoup, p);
        } else {
            const u64 mag = reduce_mod_shoup(u64{0} - plain[j], one_shoup, p);
            m = mag == 0 ? 0 : p - mag;
        }
        c0[j] = add_mod(c0[j], mul_mod_shoup(m, delta, delta_shoup, p), p);
    }
}

void mod_switch_4to2_scalar(u64* l0, u64* l1, const u64* l2, const u64* l3,
                            std::size_t n, const ModSwitchConsts& k) {
    for (std::size_t j = 0; j < n; ++j) {
        const u64 c3 = l2[j];
        const u64 c4 = l3[j];
        // CRT compose the dropped part: v = c3 + q3 * ((c4 - c3) q3^{-1} mod q4).
        const u64 w = mul_mod_shoup(sub_mod(reduce_mod_shoup(c4, k.one_shoup_q4, k.q4),
                                            reduce_mod_shoup(c3, k.one_shoup_q4, k.q4), k.q4),
                                    k.q3_inv, k.q3_inv_shoup, k.q4);
        const u128 v = static_cast<u128>(c3) + static_cast<u128>(k.q3) * w;
        // v mod p via the split v = hi·2^64 + lo (hi < 2^34), with
        // precomputed 2^64 mod p — no 128-bit division on this path.
        const u64 hi = static_cast<u64>(v >> 64);
        const u64 lo = static_cast<u64>(v);
        u64* dst[2] = {l0, l1};
        for (int i = 0; i < 2; ++i) {
            const u64 p = k.p[i];
            const u64 v_mod = add_mod(mul_mod_shoup(hi, k.r64[i], k.r64_shoup[i], p),
                                      reduce_mod_shoup(lo, k.one_shoup[i], p), p);
            dst[i][j] = mul_mod_shoup(sub_mod(dst[i][j], v_mod, p),
                                      k.drop_inv[i], k.drop_inv_shoup[i], p);
        }
    }
}

// ------------------------------------------------------------- ChaCha20 ---

inline std::uint32_t rotl32(std::uint32_t x, int r) { return (x << r) | (x >> (32 - r)); }

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
    a += b; d ^= a; d = rotl32(d, 16);
    c += d; b ^= c; b = rotl32(b, 12);
    a += b; d ^= a; d = rotl32(d, 8);
    c += d; b ^= c; b = rotl32(b, 7);
}

void chacha20_blocks_scalar(const std::uint32_t state[16], std::uint8_t* out,
                            std::size_t nblocks) {
    std::uint64_t counter = static_cast<std::uint64_t>(state[12]) |
                            (static_cast<std::uint64_t>(state[13]) << 32);
    for (std::size_t b = 0; b < nblocks; ++b, ++counter, out += 64) {
        std::uint32_t input[16];
        std::memcpy(input, state, sizeof(input));
        input[12] = static_cast<std::uint32_t>(counter);
        input[13] = static_cast<std::uint32_t>(counter >> 32);
        std::uint32_t x[16];
        std::memcpy(x, input, sizeof(x));
        for (int round = 0; round < 10; ++round) {
            quarter_round(x[0], x[4], x[8], x[12]);
            quarter_round(x[1], x[5], x[9], x[13]);
            quarter_round(x[2], x[6], x[10], x[14]);
            quarter_round(x[3], x[7], x[11], x[15]);
            quarter_round(x[0], x[5], x[10], x[15]);
            quarter_round(x[1], x[6], x[11], x[12]);
            quarter_round(x[2], x[7], x[8], x[13]);
            quarter_round(x[3], x[4], x[9], x[14]);
        }
        for (int i = 0; i < 16; ++i) {
            const std::uint32_t v = x[i] + input[i];
            std::memcpy(out + 4 * i, &v, 4);
        }
    }
}

}  // namespace

const Kernels* scalar_kernels() {
    static constexpr Kernels k{
        .tier = Tier::kScalar,
        .name = "scalar",
        .ntt_forward = &ntt_forward_scalar,
        .ntt_inverse = &ntt_inverse_scalar,
        .mul_shoup = &mul_shoup_scalar,
        .mul_shoup_accumulate = &mul_shoup_accumulate_scalar,
        .fold_delta = &fold_delta_scalar,
        .mod_switch_4to2 = &mod_switch_4to2_scalar,
        .chacha20_blocks = &chacha20_blocks_scalar,
    };
    return &k;
}

}  // namespace c2pi::he::kernels
