#include "he/bfv.hpp"

#include <cmath>

namespace c2pi::he {

namespace {
/// Signed lift of a ring element into [0, p). The magnitude of a
/// negative value is computed in unsigned arithmetic (u64{0} - v):
/// negating INT64_MIN — a perfectly legal ring element, and a uniformly
/// likely mask value — would be signed-overflow UB.
u64 lift_signed(Ring v, u64 p) {
    const auto sv = static_cast<std::int64_t>(v);
    if (sv >= 0) return static_cast<u64>(sv) % p;
    const u64 mag = (u64{0} - v) % p;
    return mag == 0 ? 0 : p - mag;
}

/// Divisionless lift_signed (identical values) for the per-inference
/// paths: add_plain folds a full mask polynomial per response, so the
/// per-coefficient division shows up in the server's online wall time.
u64 lift_signed_shoup(Ring v, u64 p, u64 one_shoup) {
    const auto sv = static_cast<std::int64_t>(v);
    if (sv >= 0) return reduce_mod_shoup(static_cast<u64>(sv), one_shoup, p);
    const u64 mag = reduce_mod_shoup(u64{0} - v, one_shoup, p);
    return mag == 0 ? 0 : p - mag;
}
}  // namespace

BfvContext::BfvContext(Params params) : params_(params) {
    require(params_.limbs >= 2 && params_.limbs <= 8, "limb count out of range");
    require(params_.n >= 16, "ring degree too small");
    const u64 step = 2 * static_cast<u64>(params_.n);
    u64 start = (1ULL << 49) + 1;
    for (int i = 0; i < params_.limbs; ++i) {
        const u64 p = next_ntt_prime(start, step);
        primes_.push_back(p);
        ntt_.emplace_back(p, params_.n);
        start = p + 2;
    }

    // Δ = floor(q / 2^64): with ~49-bit primes q has 4*49 = 196 bits; the
    // division by 2^64 is exactly "drop the lowest 64-bit word" of q.
    // Compute q as a little-endian multiword integer.
    std::vector<u64> q_words{1};
    for (const u64 p : primes_) {
        std::vector<u64> next(q_words.size() + 1, 0);
        u128 carry = 0;
        for (std::size_t w = 0; w < q_words.size(); ++w) {
            const u128 prod = static_cast<u128>(q_words[w]) * p + carry;
            next[w] = static_cast<u64>(prod);
            carry = prod >> 64;
        }
        next[q_words.size()] = static_cast<u64>(carry);
        while (next.size() > 1 && next.back() == 0) next.pop_back();
        q_words = std::move(next);
    }
    require(q_words.size() >= 2, "modulus must exceed 2^64");
    const std::vector<u64> delta_words(q_words.begin() + 1, q_words.end());

    // Δ mod q_i by multiword Horner reduction.
    delta_mod_.resize(primes_.size());
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        const u64 p = primes_[i];
        u64 r = 0;
        for (std::size_t w = delta_words.size(); w > 0; --w) {
            const u128 val = (static_cast<u128>(r) << 64) | delta_words[w - 1];
            r = static_cast<u64>(val % p);
        }
        delta_mod_[i] = r;
    }

    // Online-phase Shoup companions: every per-coefficient division in
    // the response path (add_plain, mod switch) becomes a high-mul.
    delta_shoup_.resize(primes_.size());
    one_shoup_.resize(primes_.size());
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        delta_shoup_[i] = shoup_precompute(delta_mod_[i], primes_[i]);
        one_shoup_[i] = reduce_precompute(primes_[i]);
    }

    if (params_.limbs >= 4) {
        const u128 drop = static_cast<u128>(primes_[2]) * primes_[3];
        for (int i = 0; i < 2; ++i) {
            const u64 p = primes_[static_cast<std::size_t>(i)];
            drop_inv_mod_[i] = inv_mod(static_cast<u64>(drop % p), p);
            drop_inv_shoup_[i] = shoup_precompute(drop_inv_mod_[i], p);
            r64_mod_[i] = static_cast<u64>((static_cast<u128>(1) << 64) % p);
            r64_shoup_[i] = shoup_precompute(r64_mod_[i], p);
        }
        q3_inv_mod_q4_ = inv_mod(primes_[2] % primes_[3], primes_[3]);
        q3_inv_shoup_ = shoup_precompute(q3_inv_mod_q4_, primes_[3]);

        ms_consts_.q3 = primes_[2];
        ms_consts_.q4 = primes_[3];
        ms_consts_.one_shoup_q4 = one_shoup_[3];
        ms_consts_.q3_inv = q3_inv_mod_q4_;
        ms_consts_.q3_inv_shoup = q3_inv_shoup_;
        for (int i = 0; i < 2; ++i) {
            const auto ui = static_cast<std::size_t>(i);
            ms_consts_.p[i] = primes_[ui];
            ms_consts_.one_shoup[i] = one_shoup_[ui];
            ms_consts_.r64[i] = r64_mod_[i];
            ms_consts_.r64_shoup[i] = r64_shoup_[i];
            ms_consts_.drop_inv[i] = drop_inv_mod_[i];
            ms_consts_.drop_inv_shoup[i] = drop_inv_shoup_[i];
        }
    }
}

RnsPoly BfvContext::zero_poly(int limbs) const {
    RnsPoly p;
    p.limbs.assign(static_cast<std::size_t>(limbs), std::vector<u64>(params_.n, 0));
    return p;
}

RnsPoly BfvContext::uniform_poly_from_seed(const crypto::Block128& seed, int limbs) const {
    RnsPoly p = zero_poly(limbs);
    for (int i = 0; i < limbs; ++i) {
        crypto::ChaCha20Prg prg(seed, /*nonce=*/0xA0000 + static_cast<std::uint64_t>(i));
        const u64 q = primes_[static_cast<std::size_t>(i)];
        const u64 limit = ~0ULL - (~0ULL % q) - 1;  // rejection bound
        for (std::size_t j = 0; j < params_.n; ++j) {
            u64 v = prg.next_u64();
            while (v > limit) v = prg.next_u64();
            p.limbs[static_cast<std::size_t>(i)][j] = v % q;
        }
    }
    return p;
}

void BfvContext::poly_ntt(RnsPoly& p) const {
    require(!p.ntt_form, "poly already in NTT form");
    core::parallel_for(params_.pool, 0, static_cast<std::int64_t>(p.limbs.size()),
                       [&](std::int64_t i) {
                           const auto u = static_cast<std::size_t>(i);
                           ntt_[u].forward(p.limbs[u]);
                       });
    p.ntt_form = true;
}

void BfvContext::poly_intt(RnsPoly& p) const {
    require(p.ntt_form, "poly not in NTT form");
    core::parallel_for(params_.pool, 0, static_cast<std::int64_t>(p.limbs.size()),
                       [&](std::int64_t i) {
                           const auto u = static_cast<std::size_t>(i);
                           ntt_[u].inverse(p.limbs[u]);
                       });
    p.ntt_form = false;
}

SecretKey BfvContext::keygen(crypto::ChaCha20Prg& prg) const {
    SecretKey sk;
    sk.s_ntt = zero_poly(params_.limbs);
    for (std::size_t j = 0; j < params_.n; ++j) {
        const std::uint64_t bits = prg.next_u64();
        // P(-1) = P(+1) = 1/4, P(0) = 1/2.
        const int v = static_cast<int>(bits & 1U) - static_cast<int>((bits >> 1) & 1U);
        for (std::size_t i = 0; i < primes_.size(); ++i) {
            sk.s_ntt.limbs[i][j] = v >= 0 ? static_cast<u64>(v) : primes_[i] - 1;
        }
    }
    poly_ntt(sk.s_ntt);
    return sk;
}

Ciphertext BfvContext::encrypt(std::span<const Ring> plain, const SecretKey& sk,
                               crypto::ChaCha20Prg& prg) const {
    require(plain.size() <= params_.n, "plaintext longer than ring degree");
    Ciphertext ct;
    ct.seed = prg.next_block();
    ct.seed_compressed = true;

    // c1 = a (uniform), sampled in NTT form directly from the seed.
    RnsPoly a = uniform_poly_from_seed(ct.seed, params_.limbs);
    a.ntt_form = true;

    // a * s in NTT domain, back to coefficients.
    RnsPoly as = zero_poly(params_.limbs);
    as.ntt_form = true;
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        const u64 p = primes_[i];
        for (std::size_t j = 0; j < params_.n; ++j)
            as.limbs[i][j] = mul_mod(a.limbs[i][j], sk.s_ntt.limbs[i][j], p);
    }
    poly_intt(as);

    // c0 = -(a s) + e + Δ m   (coefficient form).
    ct.c0 = zero_poly(params_.limbs);
    for (std::size_t j = 0; j < params_.n; ++j) {
        const int e = static_cast<int>(prg.next_u64() % (2 * params_.noise_bound + 1)) -
                      params_.noise_bound;
        const Ring m = j < plain.size() ? plain[j] : 0;
        for (std::size_t i = 0; i < primes_.size(); ++i) {
            const u64 p = primes_[i];
            u64 v = sub_mod(0, as.limbs[i][j], p);
            v = add_mod(v, e >= 0 ? static_cast<u64>(e) : p - static_cast<u64>(-e), p);
            v = add_mod(v, mul_mod(delta_mod_[i], lift_signed(m, p), p), p);
            ct.c0.limbs[i][j] = v;
        }
    }

    // Store c1 in coefficient form so the whole ciphertext is uniform.
    poly_intt(a);
    ct.c1 = std::move(a);
    ct.ntt_form = false;
    return ct;
}

std::vector<Ring> BfvContext::decrypt(const Ciphertext& ct, const SecretKey& sk) const {
    require(!ct.ntt_form, "decrypt expects coefficient form");
    const int limbs = ct.active_limbs();

    // c(s) = c0 + c1 * s per limb.
    std::vector<std::vector<u64>> cs(static_cast<std::size_t>(limbs));
    for (int i = 0; i < limbs; ++i) {
        const u64 p = primes_[static_cast<std::size_t>(i)];
        std::vector<u64> c1 = ct.c1.limbs[static_cast<std::size_t>(i)];
        ntt_[static_cast<std::size_t>(i)].forward(c1);
        for (std::size_t j = 0; j < params_.n; ++j)
            c1[j] = mul_mod(c1[j], sk.s_ntt.limbs[static_cast<std::size_t>(i)][j], p);
        ntt_[static_cast<std::size_t>(i)].inverse(c1);
        for (std::size_t j = 0; j < params_.n; ++j)
            c1[j] = add_mod(c1[j], ct.c0.limbs[static_cast<std::size_t>(i)][j], p);
        cs[static_cast<std::size_t>(i)] = std::move(c1);
    }

    // m = round(t * c(s) / q) mod t with t = 2^64:
    //   write c = sum_i y_i * (q / q_i) - h q with y_i = [c_i * qhat_i^{-1}]_{q_i};
    //   then t c / q = sum_i y_i * 2^64 / q_i  (mod 2^64) since h t ≡ 0.
    std::vector<u64> qhat_inv(static_cast<std::size_t>(limbs));
    for (int i = 0; i < limbs; ++i) {
        const u64 p = primes_[static_cast<std::size_t>(i)];
        u64 qhat = 1;
        for (int k = 0; k < limbs; ++k)
            if (k != i) qhat = mul_mod(qhat, primes_[static_cast<std::size_t>(k)] % p, p);
        qhat_inv[static_cast<std::size_t>(i)] = inv_mod(qhat, p);
    }

    std::vector<Ring> out(params_.n);
    for (std::size_t j = 0; j < params_.n; ++j) {
        u64 integer_part = 0;
        long double fraction = 0.0L;
        for (int i = 0; i < limbs; ++i) {
            const u64 p = primes_[static_cast<std::size_t>(i)];
            const u64 y = mul_mod(cs[static_cast<std::size_t>(i)][j],
                                  qhat_inv[static_cast<std::size_t>(i)], p);
            const u128 scaled = static_cast<u128>(y) << 64;
            integer_part += static_cast<u64>(scaled / p);
            fraction += static_cast<long double>(static_cast<u64>(scaled % p)) /
                        static_cast<long double>(p);
        }
        out[j] = integer_part + static_cast<u64>(llroundl(fraction));
    }
    return out;
}

RnsPoly BfvContext::lift_to_ntt(std::span<const Ring> poly) const {
    require(poly.size() <= params_.n, "plain poly longer than ring degree");
    RnsPoly p = zero_poly(params_.limbs);
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        for (std::size_t j = 0; j < poly.size(); ++j)
            p.limbs[i][j] = lift_signed(poly[j], primes_[i]);
    }
    poly_ntt(p);
    return p;
}

PlainNtt BfvContext::to_plain_ntt(std::span<const Ring> poly) const {
    const RnsPoly lifted = lift_to_ntt(poly);
    PlainNtt out;
    out.limbs = lifted.limbs;
    out.shoup.resize(out.limbs.size());
    for (std::size_t i = 0; i < out.limbs.size(); ++i) {
        const u64 p = primes_[i];
        out.shoup[i].resize(params_.n);
        for (std::size_t j = 0; j < params_.n; ++j)
            out.shoup[i][j] = shoup_precompute(out.limbs[i][j], p);
    }
    return out;
}

void BfvContext::to_ntt(Ciphertext& ct) const {
    require(!ct.ntt_form, "ciphertext already in NTT form");
    // Polys already in NTT form pass through: a seed-expanded c1
    // (expand_seed_poly_ntt) is sampled NTT-side and needs no transform.
    if (!ct.c0.ntt_form) poly_ntt(ct.c0);
    if (!ct.c1.ntt_form) poly_ntt(ct.c1);
    ct.ntt_form = true;
}

void BfvContext::from_ntt(Ciphertext& ct) const {
    require(ct.ntt_form, "ciphertext not in NTT form");
    poly_intt(ct.c0);
    poly_intt(ct.c1);
    ct.ntt_form = false;
}

RnsPoly BfvContext::expand_seed_poly_ntt(const crypto::Block128& seed, int limbs) const {
    RnsPoly a = uniform_poly_from_seed(seed, limbs);
    a.ntt_form = true;  // sampled in the NTT domain by convention
    return a;
}

Ciphertext BfvContext::make_accumulator() const {
    Ciphertext acc;
    acc.c0 = zero_poly(params_.limbs);
    acc.c1 = zero_poly(params_.limbs);
    acc.c0.ntt_form = acc.c1.ntt_form = true;
    acc.ntt_form = true;
    acc.seed_compressed = false;
    return acc;
}

void BfvContext::multiply_plain_accumulate(const Ciphertext& ct_ntt, const RnsPoly& plain_ntt,
                                           Ciphertext& acc) const {
    require(ct_ntt.ntt_form && acc.ntt_form && plain_ntt.ntt_form,
            "multiply_plain_accumulate expects NTT operands");
    require(ct_ntt.active_limbs() == params_.limbs, "operand must be at fresh modulus");
    core::parallel_for(params_.pool, 0, static_cast<std::int64_t>(primes_.size()),
                       [&](std::int64_t limb) {
        const auto i = static_cast<std::size_t>(limb);
        const u64 p = primes_[i];
        const auto& w = plain_ntt.limbs[i];
        for (std::size_t j = 0; j < params_.n; ++j) {
            acc.c0.limbs[i][j] =
                add_mod(acc.c0.limbs[i][j], mul_mod(ct_ntt.c0.limbs[i][j], w[j], p), p);
            acc.c1.limbs[i][j] =
                add_mod(acc.c1.limbs[i][j], mul_mod(ct_ntt.c1.limbs[i][j], w[j], p), p);
        }
    });
}

void BfvContext::multiply_plain_accumulate(const Ciphertext& ct_ntt, const PlainNtt& plain_ntt,
                                           Ciphertext& acc) const {
    require(ct_ntt.ntt_form && acc.ntt_form, "multiply_plain_accumulate expects NTT operands");
    require(ct_ntt.active_limbs() == params_.limbs, "operand must be at fresh modulus");
    require(plain_ntt.active_limbs() == params_.limbs, "precomputed plain must be fresh-limb");
    const auto& kr = kernels::active();
    core::parallel_for(params_.pool, 0, static_cast<std::int64_t>(primes_.size()),
                       [&](std::int64_t limb) {
        const auto i = static_cast<std::size_t>(limb);
        const u64 p = primes_[i];
        const auto& w = plain_ntt.limbs[i];
        const auto& ws = plain_ntt.shoup[i];
        kr.mul_shoup_accumulate(acc.c0.limbs[i].data(), ct_ntt.c0.limbs[i].data(), w.data(),
                                ws.data(), params_.n, p);
        kr.mul_shoup_accumulate(acc.c1.limbs[i].data(), ct_ntt.c1.limbs[i].data(), w.data(),
                                ws.data(), params_.n, p);
    });
}

void BfvContext::multiply_plain(const Ciphertext& ct_ntt, const PlainNtt& plain_ntt,
                                Ciphertext& out) const {
    require(ct_ntt.ntt_form, "multiply_plain expects an NTT operand");
    require(ct_ntt.active_limbs() == params_.limbs, "operand must be at fresh modulus");
    require(plain_ntt.active_limbs() == params_.limbs, "precomputed plain must be fresh-limb");
    const auto limbs = static_cast<std::size_t>(params_.limbs);
    out.c0.limbs.resize(limbs);
    out.c1.limbs.resize(limbs);
    const auto& kr = kernels::active();
    core::parallel_for(params_.pool, 0, static_cast<std::int64_t>(limbs), [&](std::int64_t limb) {
        const auto i = static_cast<std::size_t>(limb);
        const u64 p = primes_[i];
        const auto& w = plain_ntt.limbs[i];
        const auto& ws = plain_ntt.shoup[i];
        out.c0.limbs[i].resize(params_.n);
        out.c1.limbs[i].resize(params_.n);
        kr.mul_shoup(out.c0.limbs[i].data(), ct_ntt.c0.limbs[i].data(), w.data(), ws.data(),
                     params_.n, p);
        kr.mul_shoup(out.c1.limbs[i].data(), ct_ntt.c1.limbs[i].data(), w.data(), ws.data(),
                     params_.n, p);
    });
    out.c0.ntt_form = out.c1.ntt_form = true;
    out.ntt_form = true;
    out.seed_compressed = false;
}

void BfvContext::add_plain_inplace(Ciphertext& ct, std::span<const Ring> plain) const {
    require(!ct.ntt_form, "add_plain expects coefficient form");
    require(ct.active_limbs() == params_.limbs,
            "add_plain only supported at the fresh modulus (see DESIGN.md §6)");
    require(plain.size() <= params_.n, "plain poly longer than ring degree");
    const auto& kr = kernels::active();
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        kr.fold_delta(ct.c0.limbs[i].data(), plain.data(), plain.size(), primes_[i],
                      one_shoup_[i], delta_mod_[i], delta_shoup_[i]);
    }
    ct.seed_compressed = false;
}

void BfvContext::add_plain_at(Ciphertext& ct, std::span<const std::int64_t> positions,
                              std::span<const Ring> values) const {
    require(!ct.ntt_form, "add_plain expects coefficient form");
    require(ct.active_limbs() == params_.limbs,
            "add_plain only supported at the fresh modulus (see DESIGN.md §6)");
    require(positions.size() == values.size(), "add_plain_at positions/values mismatch");
    for (const std::int64_t pos : positions)
        require(pos >= 0 && static_cast<std::size_t>(pos) < params_.n,
                "add_plain_at position out of range");
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        const u64 p = primes_[i];
        const u64 one_shoup = one_shoup_[i];
        const u64 delta = delta_mod_[i];
        const u64 delta_shoup = delta_shoup_[i];
        auto& c0 = ct.c0.limbs[i];
        for (std::size_t k = 0; k < positions.size(); ++k) {
            const auto j = static_cast<std::size_t>(positions[k]);
            const u64 m = lift_signed_shoup(values[k], p, one_shoup);
            c0[j] = add_mod(c0[j], mul_mod_shoup(m, delta, delta_shoup, p), p);
        }
    }
    ct.seed_compressed = false;
}

void BfvContext::mod_switch_to_two_limbs(Ciphertext& ct) const {
    require(!ct.ntt_form, "mod switch expects coefficient form");
    require(ct.active_limbs() == 4, "mod switch implemented for 4 -> 2 limbs");
    const auto& kr = kernels::active();
    for (RnsPoly* poly : {&ct.c0, &ct.c1}) {
        kr.mod_switch_4to2(poly->limbs[0].data(), poly->limbs[1].data(), poly->limbs[2].data(),
                           poly->limbs[3].data(), params_.n, ms_consts_);
        poly->limbs.resize(2);
    }
    ct.seed_compressed = false;
}

std::size_t BfvContext::serialized_bytes(const Ciphertext& ct) const {
    const std::size_t per_poly = static_cast<std::size_t>(ct.active_limbs()) * params_.n * 8;
    const std::size_t c1_bytes = ct.seed_compressed ? 32 : per_poly;
    return per_poly + c1_bytes;
}

}  // namespace c2pi::he
