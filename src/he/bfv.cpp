#include "he/bfv.hpp"

#include <cmath>

namespace c2pi::he {

namespace {
/// Signed lift of a ring element into [0, p).
u64 lift_signed(Ring v, u64 p) {
    const auto sv = static_cast<std::int64_t>(v);
    if (sv >= 0) return static_cast<u64>(sv) % p;
    const u64 mag = static_cast<u64>(-sv) % p;
    return mag == 0 ? 0 : p - mag;
}
}  // namespace

BfvContext::BfvContext(Params params) : params_(params) {
    require(params_.limbs >= 2 && params_.limbs <= 8, "limb count out of range");
    require(params_.n >= 16, "ring degree too small");
    const u64 step = 2 * static_cast<u64>(params_.n);
    u64 start = (1ULL << 49) + 1;
    for (int i = 0; i < params_.limbs; ++i) {
        const u64 p = next_ntt_prime(start, step);
        primes_.push_back(p);
        ntt_.emplace_back(p, params_.n);
        start = p + 2;
    }

    // Δ = floor(q / 2^64): with ~49-bit primes q has 4*49 = 196 bits; the
    // division by 2^64 is exactly "drop the lowest 64-bit word" of q.
    // Compute q as a little-endian multiword integer.
    std::vector<u64> q_words{1};
    for (const u64 p : primes_) {
        std::vector<u64> next(q_words.size() + 1, 0);
        u128 carry = 0;
        for (std::size_t w = 0; w < q_words.size(); ++w) {
            const u128 prod = static_cast<u128>(q_words[w]) * p + carry;
            next[w] = static_cast<u64>(prod);
            carry = prod >> 64;
        }
        next[q_words.size()] = static_cast<u64>(carry);
        while (next.size() > 1 && next.back() == 0) next.pop_back();
        q_words = std::move(next);
    }
    require(q_words.size() >= 2, "modulus must exceed 2^64");
    const std::vector<u64> delta_words(q_words.begin() + 1, q_words.end());

    // Δ mod q_i by multiword Horner reduction.
    delta_mod_.resize(primes_.size());
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        const u64 p = primes_[i];
        u64 r = 0;
        for (std::size_t w = delta_words.size(); w > 0; --w) {
            const u128 val = (static_cast<u128>(r) << 64) | delta_words[w - 1];
            r = static_cast<u64>(val % p);
        }
        delta_mod_[i] = r;
    }

    if (params_.limbs >= 4) {
        const u128 drop = static_cast<u128>(primes_[2]) * primes_[3];
        for (int i = 0; i < 2; ++i) {
            const u64 p = primes_[static_cast<std::size_t>(i)];
            drop_inv_mod_[i] = inv_mod(static_cast<u64>(drop % p), p);
        }
    }
}

RnsPoly BfvContext::zero_poly(int limbs) const {
    RnsPoly p;
    p.limbs.assign(static_cast<std::size_t>(limbs), std::vector<u64>(params_.n, 0));
    return p;
}

RnsPoly BfvContext::uniform_poly_from_seed(const crypto::Block128& seed, int limbs) const {
    RnsPoly p = zero_poly(limbs);
    for (int i = 0; i < limbs; ++i) {
        crypto::ChaCha20Prg prg(seed, /*nonce=*/0xA0000 + static_cast<std::uint64_t>(i));
        const u64 q = primes_[static_cast<std::size_t>(i)];
        const u64 limit = ~0ULL - (~0ULL % q) - 1;  // rejection bound
        for (std::size_t j = 0; j < params_.n; ++j) {
            u64 v = prg.next_u64();
            while (v > limit) v = prg.next_u64();
            p.limbs[static_cast<std::size_t>(i)][j] = v % q;
        }
    }
    return p;
}

void BfvContext::poly_ntt(RnsPoly& p) const {
    require(!p.ntt_form, "poly already in NTT form");
    for (std::size_t i = 0; i < p.limbs.size(); ++i) ntt_[i].forward(p.limbs[i]);
    p.ntt_form = true;
}

void BfvContext::poly_intt(RnsPoly& p) const {
    require(p.ntt_form, "poly not in NTT form");
    for (std::size_t i = 0; i < p.limbs.size(); ++i) ntt_[i].inverse(p.limbs[i]);
    p.ntt_form = false;
}

SecretKey BfvContext::keygen(crypto::ChaCha20Prg& prg) const {
    SecretKey sk;
    sk.s_ntt = zero_poly(params_.limbs);
    for (std::size_t j = 0; j < params_.n; ++j) {
        const std::uint64_t bits = prg.next_u64();
        // P(-1) = P(+1) = 1/4, P(0) = 1/2.
        const int v = static_cast<int>(bits & 1U) - static_cast<int>((bits >> 1) & 1U);
        for (std::size_t i = 0; i < primes_.size(); ++i) {
            sk.s_ntt.limbs[i][j] = v >= 0 ? static_cast<u64>(v) : primes_[i] - 1;
        }
    }
    poly_ntt(sk.s_ntt);
    return sk;
}

Ciphertext BfvContext::encrypt(std::span<const Ring> plain, const SecretKey& sk,
                               crypto::ChaCha20Prg& prg) const {
    require(plain.size() <= params_.n, "plaintext longer than ring degree");
    Ciphertext ct;
    ct.seed = prg.next_block();
    ct.seed_compressed = true;

    // c1 = a (uniform), sampled in NTT form directly from the seed.
    RnsPoly a = uniform_poly_from_seed(ct.seed, params_.limbs);
    a.ntt_form = true;

    // a * s in NTT domain, back to coefficients.
    RnsPoly as = zero_poly(params_.limbs);
    as.ntt_form = true;
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        const u64 p = primes_[i];
        for (std::size_t j = 0; j < params_.n; ++j)
            as.limbs[i][j] = mul_mod(a.limbs[i][j], sk.s_ntt.limbs[i][j], p);
    }
    poly_intt(as);

    // c0 = -(a s) + e + Δ m   (coefficient form).
    ct.c0 = zero_poly(params_.limbs);
    for (std::size_t j = 0; j < params_.n; ++j) {
        const int e = static_cast<int>(prg.next_u64() % (2 * params_.noise_bound + 1)) -
                      params_.noise_bound;
        const Ring m = j < plain.size() ? plain[j] : 0;
        for (std::size_t i = 0; i < primes_.size(); ++i) {
            const u64 p = primes_[i];
            u64 v = sub_mod(0, as.limbs[i][j], p);
            v = add_mod(v, e >= 0 ? static_cast<u64>(e) : p - static_cast<u64>(-e), p);
            v = add_mod(v, mul_mod(delta_mod_[i], lift_signed(m, p), p), p);
            ct.c0.limbs[i][j] = v;
        }
    }

    // Store c1 in coefficient form so the whole ciphertext is uniform.
    poly_intt(a);
    ct.c1 = std::move(a);
    ct.ntt_form = false;
    return ct;
}

std::vector<Ring> BfvContext::decrypt(const Ciphertext& ct, const SecretKey& sk) const {
    require(!ct.ntt_form, "decrypt expects coefficient form");
    const int limbs = ct.active_limbs();

    // c(s) = c0 + c1 * s per limb.
    std::vector<std::vector<u64>> cs(static_cast<std::size_t>(limbs));
    for (int i = 0; i < limbs; ++i) {
        const u64 p = primes_[static_cast<std::size_t>(i)];
        std::vector<u64> c1 = ct.c1.limbs[static_cast<std::size_t>(i)];
        ntt_[static_cast<std::size_t>(i)].forward(c1);
        for (std::size_t j = 0; j < params_.n; ++j)
            c1[j] = mul_mod(c1[j], sk.s_ntt.limbs[static_cast<std::size_t>(i)][j], p);
        ntt_[static_cast<std::size_t>(i)].inverse(c1);
        for (std::size_t j = 0; j < params_.n; ++j)
            c1[j] = add_mod(c1[j], ct.c0.limbs[static_cast<std::size_t>(i)][j], p);
        cs[static_cast<std::size_t>(i)] = std::move(c1);
    }

    // m = round(t * c(s) / q) mod t with t = 2^64:
    //   write c = sum_i y_i * (q / q_i) - h q with y_i = [c_i * qhat_i^{-1}]_{q_i};
    //   then t c / q = sum_i y_i * 2^64 / q_i  (mod 2^64) since h t ≡ 0.
    std::vector<u64> qhat_inv(static_cast<std::size_t>(limbs));
    for (int i = 0; i < limbs; ++i) {
        const u64 p = primes_[static_cast<std::size_t>(i)];
        u64 qhat = 1;
        for (int k = 0; k < limbs; ++k)
            if (k != i) qhat = mul_mod(qhat, primes_[static_cast<std::size_t>(k)] % p, p);
        qhat_inv[static_cast<std::size_t>(i)] = inv_mod(qhat, p);
    }

    std::vector<Ring> out(params_.n);
    for (std::size_t j = 0; j < params_.n; ++j) {
        u64 integer_part = 0;
        long double fraction = 0.0L;
        for (int i = 0; i < limbs; ++i) {
            const u64 p = primes_[static_cast<std::size_t>(i)];
            const u64 y = mul_mod(cs[static_cast<std::size_t>(i)][j],
                                  qhat_inv[static_cast<std::size_t>(i)], p);
            const u128 scaled = static_cast<u128>(y) << 64;
            integer_part += static_cast<u64>(scaled / p);
            fraction += static_cast<long double>(static_cast<u64>(scaled % p)) /
                        static_cast<long double>(p);
        }
        out[j] = integer_part + static_cast<u64>(llroundl(fraction));
    }
    return out;
}

RnsPoly BfvContext::lift_to_ntt(std::span<const Ring> poly) const {
    require(poly.size() <= params_.n, "plain poly longer than ring degree");
    RnsPoly p = zero_poly(params_.limbs);
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        for (std::size_t j = 0; j < poly.size(); ++j)
            p.limbs[i][j] = lift_signed(poly[j], primes_[i]);
    }
    poly_ntt(p);
    return p;
}

void BfvContext::to_ntt(Ciphertext& ct) const {
    require(!ct.ntt_form, "ciphertext already in NTT form");
    poly_ntt(ct.c0);
    poly_ntt(ct.c1);
    ct.ntt_form = true;
}

void BfvContext::from_ntt(Ciphertext& ct) const {
    require(ct.ntt_form, "ciphertext not in NTT form");
    poly_intt(ct.c0);
    poly_intt(ct.c1);
    ct.ntt_form = false;
}

RnsPoly BfvContext::expand_seed_poly(const crypto::Block128& seed, int limbs) const {
    RnsPoly a = uniform_poly_from_seed(seed, limbs);
    a.ntt_form = true;  // sampled in the NTT domain by convention
    poly_intt(a);
    return a;
}

Ciphertext BfvContext::make_accumulator() const {
    Ciphertext acc;
    acc.c0 = zero_poly(params_.limbs);
    acc.c1 = zero_poly(params_.limbs);
    acc.c0.ntt_form = acc.c1.ntt_form = true;
    acc.ntt_form = true;
    acc.seed_compressed = false;
    return acc;
}

void BfvContext::multiply_plain_accumulate(const Ciphertext& ct_ntt, const RnsPoly& plain_ntt,
                                           Ciphertext& acc) const {
    require(ct_ntt.ntt_form && acc.ntt_form && plain_ntt.ntt_form,
            "multiply_plain_accumulate expects NTT operands");
    require(ct_ntt.active_limbs() == params_.limbs, "operand must be at fresh modulus");
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        const u64 p = primes_[i];
        const auto& w = plain_ntt.limbs[i];
        for (std::size_t j = 0; j < params_.n; ++j) {
            acc.c0.limbs[i][j] =
                add_mod(acc.c0.limbs[i][j], mul_mod(ct_ntt.c0.limbs[i][j], w[j], p), p);
            acc.c1.limbs[i][j] =
                add_mod(acc.c1.limbs[i][j], mul_mod(ct_ntt.c1.limbs[i][j], w[j], p), p);
        }
    }
}

void BfvContext::add_plain_inplace(Ciphertext& ct, std::span<const Ring> plain) const {
    require(!ct.ntt_form, "add_plain expects coefficient form");
    require(ct.active_limbs() == params_.limbs,
            "add_plain only supported at the fresh modulus (see DESIGN.md §6)");
    require(plain.size() <= params_.n, "plain poly longer than ring degree");
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        const u64 p = primes_[i];
        for (std::size_t j = 0; j < plain.size(); ++j) {
            ct.c0.limbs[i][j] =
                add_mod(ct.c0.limbs[i][j], mul_mod(delta_mod_[i], lift_signed(plain[j], p), p), p);
        }
    }
    ct.seed_compressed = false;
}

void BfvContext::mod_switch_to_two_limbs(Ciphertext& ct) const {
    require(!ct.ntt_form, "mod switch expects coefficient form");
    require(ct.active_limbs() == 4, "mod switch implemented for 4 -> 2 limbs");
    const u64 q3 = primes_[2], q4 = primes_[3];
    const u64 q3_inv_mod_q4 = inv_mod(q3 % q4, q4);

    for (RnsPoly* poly : {&ct.c0, &ct.c1}) {
        for (std::size_t j = 0; j < params_.n; ++j) {
            const u64 c3 = poly->limbs[2][j];
            const u64 c4 = poly->limbs[3][j];
            // CRT compose the dropped part: v = c3 + q3 * ((c4 - c3) q3^{-1} mod q4).
            const u64 w = mul_mod(sub_mod(c4 % q4, c3 % q4, q4), q3_inv_mod_q4, q4);
            const u128 v = static_cast<u128>(c3) + static_cast<u128>(q3) * w;
            for (int i = 0; i < 2; ++i) {
                const u64 p = primes_[static_cast<std::size_t>(i)];
                const u64 v_mod = static_cast<u64>(v % p);
                poly->limbs[static_cast<std::size_t>(i)][j] =
                    mul_mod(sub_mod(poly->limbs[static_cast<std::size_t>(i)][j], v_mod, p),
                            drop_inv_mod_[i], p);
            }
        }
        poly->limbs.resize(2);
    }
    ct.seed_compressed = false;
}

std::size_t BfvContext::serialized_bytes(const Ciphertext& ct) const {
    const std::size_t per_poly = static_cast<std::size_t>(ct.active_limbs()) * params_.n * 8;
    const std::size_t c1_bytes = ct.seed_compressed ? 32 : per_poly;
    return per_poly + c1_bytes;
}

}  // namespace c2pi::he
