#pragma once

/// \file bfv.hpp
/// Mini-BFV over an RNS modulus, specialised for the two-party PI linear
/// layers (SEAL stands in for nothing here — everything is implemented
/// from scratch; DESIGN.md §4, substitution 3):
///
///  * plaintext modulus t = 2^64 == the MPC share ring, so homomorphic
///    conv results are *exact* ring arithmetic;
///  * ciphertext modulus q = product of four ~49-bit NTT primes
///    (q ≈ 2^196, Δ = q/t ≈ 2^132) — enough headroom for VGG-scale
///    plain-weight convolutions (noise ≈ 2^93, see DESIGN.md §6);
///  * symmetric encryption only (the client owns the key; the server only
///    computes ct (+) ct, ct (x) plain, ct (+) plain);
///  * responses are modulus-switched down to two limbs before shipping;
///  * fresh ciphertexts are seed-compressed (c1 = 32-byte PRG seed), as
///    in Cheetah.

#include <vector>

#include "core/fixed_point.hpp"
#include "crypto/chacha20.hpp"
#include "he/ntt.hpp"

namespace c2pi::he {

/// Polynomial in RNS representation: limbs[i][j] = coeff j mod prime i.
struct RnsPoly {
    std::vector<std::vector<u64>> limbs;
    bool ntt_form = false;

    [[nodiscard]] int active_limbs() const { return static_cast<int>(limbs.size()); }
};

struct Ciphertext {
    RnsPoly c0, c1;
    bool ntt_form = false;
    bool seed_compressed = false;   ///< c1 derivable from `seed`
    crypto::Block128 seed{};

    [[nodiscard]] int active_limbs() const { return c0.active_limbs(); }
};

struct SecretKey {
    RnsPoly s_ntt;  ///< ternary secret, NTT form, all limbs
};

class BfvContext {
public:
    struct Params {
        std::size_t n = 4096;   ///< ring degree (power of two)
        int limbs = 4;          ///< RNS primes in the fresh modulus
        int noise_bound = 4;    ///< uniform noise in [-noise_bound, noise_bound]
    };

    explicit BfvContext(Params params);

    [[nodiscard]] std::size_t n() const { return params_.n; }
    [[nodiscard]] int fresh_limbs() const { return params_.limbs; }
    [[nodiscard]] u64 prime(int i) const { return primes_[static_cast<std::size_t>(i)]; }

    // -- keys & encryption ----------------------------------------------------
    [[nodiscard]] SecretKey keygen(crypto::ChaCha20Prg& prg) const;

    /// Encrypt a plaintext polynomial (coefficients in Z_{2^64}; at most n
    /// of them, zero padded). Result is in coefficient form, fresh limbs,
    /// seed-compressed.
    [[nodiscard]] Ciphertext encrypt(std::span<const Ring> plain, const SecretKey& sk,
                                     crypto::ChaCha20Prg& prg) const;

    /// Decrypt to n plaintext coefficients in Z_{2^64}.
    [[nodiscard]] std::vector<Ring> decrypt(const Ciphertext& ct, const SecretKey& sk) const;

    // -- homomorphic ops --------------------------------------------------------
    /// Lift an integer polynomial (signed interpretation of Ring values)
    /// to NTT form over the fresh modulus — used for weight plaintexts.
    [[nodiscard]] RnsPoly lift_to_ntt(std::span<const Ring> poly) const;

    void to_ntt(Ciphertext& ct) const;
    void from_ntt(Ciphertext& ct) const;

    /// Zero accumulator in NTT form over the fresh modulus.
    [[nodiscard]] Ciphertext make_accumulator() const;
    /// acc += ct * plain_ntt (all operands NTT form, fresh limbs).
    void multiply_plain_accumulate(const Ciphertext& ct_ntt, const RnsPoly& plain_ntt,
                                   Ciphertext& acc) const;

    /// c0 += Δ * plain   (coefficient form). Used by the server to fold
    /// its own plaintext contribution / fresh share mask into a response.
    void add_plain_inplace(Ciphertext& ct, std::span<const Ring> plain) const;

    /// Drop to the first two limbs with rounding (response compression).
    void mod_switch_to_two_limbs(Ciphertext& ct) const;

    /// Re-derive the c1 polynomial of a seed-compressed ciphertext
    /// (coefficient form), exactly as encrypt() produced it.
    [[nodiscard]] RnsPoly expand_seed_poly(const crypto::Block128& seed, int limbs) const;

    // -- traffic accounting -------------------------------------------------------
    /// Serialized size: per-limb 8 bytes per coefficient per polynomial;
    /// seed-compressed fresh ciphertexts replace c1 with 32 bytes.
    [[nodiscard]] std::size_t serialized_bytes(const Ciphertext& ct) const;

    // exposed for tests
    [[nodiscard]] u64 delta_mod(int limb) const { return delta_mod_[static_cast<std::size_t>(limb)]; }

private:
    [[nodiscard]] RnsPoly zero_poly(int limbs) const;
    [[nodiscard]] RnsPoly uniform_poly_from_seed(const crypto::Block128& seed, int limbs) const;
    void poly_ntt(RnsPoly& p) const;
    void poly_intt(RnsPoly& p) const;

    Params params_;
    std::vector<u64> primes_;
    std::vector<NttTables> ntt_;
    std::vector<u64> delta_mod_;          ///< Δ mod q_i (fresh modulus)
    std::vector<u64> delta2_mod_;         ///< Δ' = floor(q1q2 / t) mod q_i, i<2
    u64 drop_inv_mod_[2] = {};            ///< (q3 q4)^{-1} mod q_i for the switch
};

}  // namespace c2pi::he
