#pragma once

/// \file bfv.hpp
/// Mini-BFV over an RNS modulus, specialised for the two-party PI linear
/// layers (SEAL stands in for nothing here — everything is implemented
/// from scratch; DESIGN.md §4, substitution 3):
///
///  * plaintext modulus t = 2^64 == the MPC share ring, so homomorphic
///    conv results are *exact* ring arithmetic;
///  * ciphertext modulus q = product of four ~49-bit NTT primes
///    (q ≈ 2^196, Δ = q/t ≈ 2^132) — enough headroom for VGG-scale
///    plain-weight convolutions (noise ≈ 2^93, see DESIGN.md §6);
///  * symmetric encryption only (the client owns the key; the server only
///    computes ct (+) ct, ct (x) plain, ct (+) plain);
///  * responses are modulus-switched down to two limbs before shipping;
///  * fresh ciphertexts are seed-compressed (c1 = 32-byte PRG seed), as
///    in Cheetah.

#include <vector>

#include "core/fixed_point.hpp"
#include "core/thread_pool.hpp"
#include "crypto/chacha20.hpp"
#include "he/ntt.hpp"

namespace c2pi::he {

/// Polynomial in RNS representation: limbs[i][j] = coeff j mod prime i.
struct RnsPoly {
    std::vector<std::vector<u64>> limbs;
    bool ntt_form = false;

    [[nodiscard]] int active_limbs() const { return static_cast<int>(limbs.size()); }
};

/// NTT-form plaintext with per-coefficient Shoup companions — the
/// compile-time shape of a server weight polynomial. Built once by
/// BfvContext::to_plain_ntt; the multiply_plain_accumulate fast path then
/// replaces every 128-bit modular division with a Shoup high-mul.
/// Numerically identical to multiplying the plain RnsPoly.
struct PlainNtt {
    std::vector<std::vector<u64>> limbs;  ///< NTT-form values, [limb][coeff]
    std::vector<std::vector<u64>> shoup;  ///< floor(w * 2^64 / q_i), same layout

    [[nodiscard]] int active_limbs() const { return static_cast<int>(limbs.size()); }
};

struct Ciphertext {
    RnsPoly c0, c1;
    bool ntt_form = false;
    bool seed_compressed = false;   ///< c1 derivable from `seed`
    crypto::Block128 seed{};

    [[nodiscard]] int active_limbs() const { return c0.active_limbs(); }
};

struct SecretKey {
    RnsPoly s_ntt;  ///< ternary secret, NTT form, all limbs
};

class BfvContext {
public:
    struct Params {
        std::size_t n = 4096;   ///< ring degree (power of two)
        int limbs = 4;          ///< RNS primes in the fresh modulus
        int noise_bound = 4;    ///< uniform noise in [-noise_bound, noise_bound]
        /// Borrowed pool for the per-limb loops (poly_ntt/poly_intt/
        /// multiply_plain_accumulate); must outlive the context. Null =
        /// serial, identical schedule to the pre-pool code.
        const core::ThreadPool* pool = nullptr;
    };

    explicit BfvContext(Params params);

    [[nodiscard]] std::size_t n() const { return params_.n; }
    [[nodiscard]] int fresh_limbs() const { return params_.limbs; }
    [[nodiscard]] u64 prime(int i) const { return primes_[static_cast<std::size_t>(i)]; }
    [[nodiscard]] const core::ThreadPool* thread_pool() const { return params_.pool; }

    // -- keys & encryption ----------------------------------------------------
    [[nodiscard]] SecretKey keygen(crypto::ChaCha20Prg& prg) const;

    /// Encrypt a plaintext polynomial (coefficients in Z_{2^64}; at most n
    /// of them, zero padded). Result is in coefficient form, fresh limbs,
    /// seed-compressed.
    [[nodiscard]] Ciphertext encrypt(std::span<const Ring> plain, const SecretKey& sk,
                                     crypto::ChaCha20Prg& prg) const;

    /// Decrypt to n plaintext coefficients in Z_{2^64}.
    [[nodiscard]] std::vector<Ring> decrypt(const Ciphertext& ct, const SecretKey& sk) const;

    // -- homomorphic ops --------------------------------------------------------
    /// Lift an integer polynomial (signed interpretation of Ring values)
    /// to NTT form over the fresh modulus — used for weight plaintexts.
    [[nodiscard]] RnsPoly lift_to_ntt(std::span<const Ring> poly) const;

    /// Compile-time form of lift_to_ntt: also precomputes the per-
    /// coefficient Shoup companions so the online multiply needs no
    /// 128-bit division. One PlainNtt per (weight poly) is built once in
    /// CompiledModel and reused by every inference.
    [[nodiscard]] PlainNtt to_plain_ntt(std::span<const Ring> poly) const;

    void to_ntt(Ciphertext& ct) const;
    void from_ntt(Ciphertext& ct) const;

    /// Zero accumulator in NTT form over the fresh modulus.
    [[nodiscard]] Ciphertext make_accumulator() const;
    /// acc += ct * plain_ntt (all operands NTT form, fresh limbs).
    void multiply_plain_accumulate(const Ciphertext& ct_ntt, const RnsPoly& plain_ntt,
                                   Ciphertext& acc) const;
    /// Fast path over a precomputed PlainNtt; bit-identical accumulator.
    void multiply_plain_accumulate(const Ciphertext& ct_ntt, const PlainNtt& plain_ntt,
                                   Ciphertext& acc) const;
    /// out = ct * plain (assign variant: allocates/overwrites `out`, no
    /// zero accumulator needed). Equals make_accumulator() followed by
    /// multiply_plain_accumulate, minus the zero-fill and adds.
    void multiply_plain(const Ciphertext& ct_ntt, const PlainNtt& plain_ntt,
                        Ciphertext& out) const;

    /// c0 += Δ * plain   (coefficient form). Used by the server to fold
    /// its own plaintext contribution / fresh share mask into a response.
    void add_plain_inplace(Ciphertext& ct, std::span<const Ring> plain) const;

    /// Sparse add_plain: c0[positions[i]] += Δ * values[i]. Identical to
    /// add_plain_inplace over the scatter polynomial (zero everywhere
    /// else), but touches only the populated coefficients — the response
    /// masks of the linear layers live at a few known output positions.
    void add_plain_at(Ciphertext& ct, std::span<const std::int64_t> positions,
                      std::span<const Ring> values) const;

    /// Drop to the first two limbs with rounding (response compression).
    void mod_switch_to_two_limbs(Ciphertext& ct) const;

    /// Re-derive the c1 polynomial of a seed-compressed ciphertext,
    /// exactly as encrypt() sampled it: uniform in the NTT domain, left
    /// there. A receiver that immediately to_ntt()s the ciphertext skips
    /// the inverse+forward round-trip entirely (to_ntt transforms only
    /// polys still in coefficient form); one that needs coefficients
    /// runs poly_intt, reproducing the historical coefficient expansion.
    [[nodiscard]] RnsPoly expand_seed_poly_ntt(const crypto::Block128& seed, int limbs) const;

    // -- traffic accounting -------------------------------------------------------
    /// Serialized size: per-limb 8 bytes per coefficient per polynomial;
    /// seed-compressed fresh ciphertexts replace c1 with 32 bytes.
    [[nodiscard]] std::size_t serialized_bytes(const Ciphertext& ct) const;

    // exposed for tests
    [[nodiscard]] u64 delta_mod(int limb) const { return delta_mod_[static_cast<std::size_t>(limb)]; }

private:
    [[nodiscard]] RnsPoly zero_poly(int limbs) const;
    [[nodiscard]] RnsPoly uniform_poly_from_seed(const crypto::Block128& seed, int limbs) const;
    void poly_ntt(RnsPoly& p) const;
    void poly_intt(RnsPoly& p) const;

    Params params_;
    std::vector<u64> primes_;
    std::vector<NttTables> ntt_;
    std::vector<u64> delta_mod_;          ///< Δ mod q_i (fresh modulus)
    std::vector<u64> delta_shoup_;        ///< Shoup companions of Δ mod q_i
    std::vector<u64> one_shoup_;          ///< floor(2^64 / q_i) for divisionless a mod q_i
    std::vector<u64> delta2_mod_;         ///< Δ' = floor(q1q2 / t) mod q_i, i<2
    u64 drop_inv_mod_[2] = {};            ///< (q3 q4)^{-1} mod q_i for the switch
    u64 drop_inv_shoup_[2] = {};
    u64 r64_mod_[2] = {};                 ///< 2^64 mod q_i (CRT-compose reduction)
    u64 r64_shoup_[2] = {};
    u64 q3_inv_mod_q4_ = 0;               ///< q3^{-1} mod q4, hoisted out of mod switch
    u64 q3_inv_shoup_ = 0;
    kernels::ModSwitchConsts ms_consts_;  ///< the same constants, kernel layout
};

}  // namespace c2pi::he
