// AVX-512 kernel variant: 8 x u64 lanes. Compared to the AVX2 tier this
// gets native 64-bit low multiplies (DQ), mask-register compares instead
// of blendv sequences, and vpermt2q two-source shuffles that make the
// NTT's t = 4/2/1 tail stages single-permute. The high multiply is still
// emulated from 32-bit partial products (no unsigned 64x64 mulhi before
// AVX-512IFMA, and IFMA's 52-bit limbs would change the lazy-reduction
// intermediate values — bit-compatibility across tiers forbids that).
//
// ChaCha20 reuses the 8-block AVX2 path: the batch is 8 blocks either
// way and the function is memory-bound at that width.
//
// This TU (alone) is compiled with -mavx512{f,dq,bw,vl}; dispatch
// guarantees the entry points only run after a cpuid check.

#include "he/kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512BW__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include "he/modmath.hpp"

namespace c2pi::he::kernels {

namespace detail {
void chacha20_blocks_avx2(const std::uint32_t state[16], std::uint8_t* out,
                          std::size_t nblocks);
}  // namespace detail

namespace {

using V = __m512i;

inline V load(const u64* p) { return _mm512_loadu_si512(p); }
inline void store(u64* p, V x) { _mm512_storeu_si512(p, x); }
inline V bcast(u64 x) { return _mm512_set1_epi64(static_cast<long long>(x)); }

/// a >= bound ? a - bound : a (unsigned lanes).
inline V csub_u64(V a, V bound) {
    const __mmask8 ge = _mm512_cmpge_epu64_mask(a, bound);
    return _mm512_mask_sub_epi64(a, ge, a, bound);
}

inline V add_mod_v(V a, V b, V p) { return csub_u64(_mm512_add_epi64(a, b), p); }

inline V sub_mod_v(V a, V b, V p) {
    const __mmask8 lt = _mm512_cmplt_epu64_mask(a, b);
    const V diff = _mm512_sub_epi64(a, b);
    return _mm512_mask_add_epi64(diff, lt, diff, p);
}

const V kLo32 = _mm512_set1_epi64(0xFFFFFFFFLL);

/// High 64 bits of a * b (schoolbook over 32-bit halves).
inline V mulhi_u64(V a, V b) {
    const V a_hi = _mm512_srli_epi64(a, 32);
    const V b_hi = _mm512_srli_epi64(b, 32);
    const V ll = _mm512_mul_epu32(a, b);
    const V lh = _mm512_mul_epu32(a, b_hi);
    const V hl = _mm512_mul_epu32(a_hi, b);
    const V hh = _mm512_mul_epu32(a_hi, b_hi);
    const V cross = _mm512_add_epi64(_mm512_and_si512(lh, kLo32), _mm512_and_si512(hl, kLo32));
    const V carry = _mm512_srli_epi64(_mm512_add_epi64(_mm512_srli_epi64(ll, 32), cross), 32);
    return _mm512_add_epi64(_mm512_add_epi64(hh, carry),
                            _mm512_add_epi64(_mm512_srli_epi64(lh, 32),
                                             _mm512_srli_epi64(hl, 32)));
}

/// Lazy Shoup product in [0, 2p).
inline V mul_shoup_lazy_v(V a, V w, V w_shoup, V p) {
    const V q = mulhi_u64(a, w_shoup);
    return _mm512_sub_epi64(_mm512_mullo_epi64(a, w), _mm512_mullo_epi64(q, p));
}

/// Exact Shoup product in [0, p).
inline V mul_shoup_v(V a, V w, V w_shoup, V p) {
    return csub_u64(mul_shoup_lazy_v(a, w, w_shoup, p), p);
}

/// a mod p for arbitrary a.
inline V reduce_mod_v(V a, V one_shoup, V p) {
    const V q = mulhi_u64(a, one_shoup);
    return csub_u64(_mm512_sub_epi64(a, _mm512_mullo_epi64(q, p)), p);
}

// ------------------------------------------------------------------- NTT ---

inline void fwd_butterfly(V& u, V& x, V s, V s_shoup, V p, V two_p) {
    u = csub_u64(u, two_p);
    const V v = mul_shoup_lazy_v(x, s, s_shoup, p);
    x = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
    u = _mm512_add_epi64(u, v);
}

inline void inv_butterfly(V& u, V& v, V s, V s_shoup, V p, V two_p) {
    const V diff = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
    u = csub_u64(_mm512_add_epi64(u, v), two_p);
    v = mul_shoup_lazy_v(diff, s, s_shoup, p);
}

// Two-source deinterleave/interleave indices for the t = 4/2/1 stages
// (vpermt2q: entries 0..7 select from the first source, 8..15 from the
// second). Deinterleaving with these preserves block order, so the
// u-lanes line up with contiguous twiddle loads.
const V kIdxA4 = _mm512_set_epi64(11, 10, 9, 8, 3, 2, 1, 0);
const V kIdxB4 = _mm512_set_epi64(15, 14, 13, 12, 7, 6, 5, 4);
const V kIdxA2 = _mm512_set_epi64(13, 12, 9, 8, 5, 4, 1, 0);
const V kIdxB2 = _mm512_set_epi64(15, 14, 11, 10, 7, 6, 3, 2);
const V kIdxA1 = _mm512_set_epi64(14, 12, 10, 8, 6, 4, 2, 0);
const V kIdxB1 = _mm512_set_epi64(15, 13, 11, 9, 7, 5, 3, 1);
const V kIdxL2 = _mm512_set_epi64(11, 10, 3, 2, 9, 8, 1, 0);
const V kIdxH2 = _mm512_set_epi64(15, 14, 7, 6, 13, 12, 5, 4);
const V kIdxL1 = _mm512_set_epi64(11, 3, 10, 2, 9, 1, 8, 0);
const V kIdxH1 = _mm512_set_epi64(15, 7, 14, 6, 13, 5, 12, 4);
// Twiddle spread: replicate each of the first k loaded twiddles 8/k times.
const V kTw4 = _mm512_set_epi64(1, 1, 1, 1, 0, 0, 0, 0);
const V kTw2 = _mm512_set_epi64(3, 3, 2, 2, 1, 1, 0, 0);

void ntt_forward_avx512(u64* a, std::size_t n, const u64* psi_rev,
                        const u64* psi_rev_shoup, u64 p) {
    if (n < 16) {
        scalar_kernels()->ntt_forward(a, n, psi_rev, psi_rev_shoup, p);
        return;
    }
    const V vp = bcast(p);
    const V v2p = bcast(2 * p);

    std::size_t m = 1;
    std::size_t t = n >> 1;
    for (; t >= 8; m <<= 1, t >>= 1) {
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const V s = bcast(psi_rev[m + i]);
            const V ss = bcast(psi_rev_shoup[m + i]);
            for (std::size_t j = j1; j < j1 + t; j += 8) {
                V u = load(a + j);
                V x = load(a + j + t);
                fwd_butterfly(u, x, s, ss, vp, v2p);
                store(a + j, u);
                store(a + j + t, x);
            }
        }
    }

    // t == 4 (m = n/8): two blocks [u0..u3 v0..v3] per pass.
    for (std::size_t i = 0; i < m; i += 2) {
        const std::size_t j = 8 * i;
        const V x0 = load(a + j);
        const V x1 = load(a + j + 8);
        V u = _mm512_permutex2var_epi64(x0, kIdxA4, x1);
        V x = _mm512_permutex2var_epi64(x0, kIdxB4, x1);
        const V s = _mm512_permutexvar_epi64(kTw4, load(psi_rev + m + i));
        const V ss = _mm512_permutexvar_epi64(kTw4, load(psi_rev_shoup + m + i));
        fwd_butterfly(u, x, s, ss, vp, v2p);
        store(a + j, _mm512_permutex2var_epi64(u, kIdxA4, x));
        store(a + j + 8, _mm512_permutex2var_epi64(u, kIdxB4, x));
    }
    m <<= 1;

    // t == 2 (m = n/4): four blocks [u0 u1 v0 v1] per pass.
    for (std::size_t i = 0; i < m; i += 4) {
        const std::size_t j = 4 * i;
        const V x0 = load(a + j);
        const V x1 = load(a + j + 8);
        V u = _mm512_permutex2var_epi64(x0, kIdxA2, x1);
        V x = _mm512_permutex2var_epi64(x0, kIdxB2, x1);
        const V s = _mm512_permutexvar_epi64(kTw2, load(psi_rev + m + i));
        const V ss = _mm512_permutexvar_epi64(kTw2, load(psi_rev_shoup + m + i));
        fwd_butterfly(u, x, s, ss, vp, v2p);
        store(a + j, _mm512_permutex2var_epi64(u, kIdxL2, x));
        store(a + j + 8, _mm512_permutex2var_epi64(u, kIdxH2, x));
    }
    m <<= 1;

    // t == 1 (m = n/2): eight adjacent pairs per pass; the deinterleave
    // keeps pair order, so the twiddle vector is a plain contiguous load.
    for (std::size_t i = 0; i < m; i += 8) {
        const std::size_t j = 2 * i;
        const V x0 = load(a + j);
        const V x1 = load(a + j + 8);
        V u = _mm512_permutex2var_epi64(x0, kIdxA1, x1);
        V x = _mm512_permutex2var_epi64(x0, kIdxB1, x1);
        const V s = load(psi_rev + m + i);
        const V ss = load(psi_rev_shoup + m + i);
        fwd_butterfly(u, x, s, ss, vp, v2p);
        store(a + j, _mm512_permutex2var_epi64(u, kIdxL1, x));
        store(a + j + 8, _mm512_permutex2var_epi64(u, kIdxH1, x));
    }

    for (std::size_t j = 0; j < n; j += 8)
        store(a + j, csub_u64(csub_u64(load(a + j), v2p), vp));
}

void ntt_inverse_avx512(u64* a, std::size_t n, const u64* ipsi_rev,
                        const u64* ipsi_rev_shoup, u64 n_inv, u64 n_inv_shoup,
                        u64 p) {
    if (n < 16) {
        scalar_kernels()->ntt_inverse(a, n, ipsi_rev, ipsi_rev_shoup, n_inv, n_inv_shoup, p);
        return;
    }
    const V vp = bcast(p);
    const V v2p = bcast(2 * p);

    // t == 1 (h = n/2).
    {
        const std::size_t h = n >> 1;
        for (std::size_t i = 0; i < h; i += 8) {
            const std::size_t j = 2 * i;
            const V x0 = load(a + j);
            const V x1 = load(a + j + 8);
            V u = _mm512_permutex2var_epi64(x0, kIdxA1, x1);
            V v = _mm512_permutex2var_epi64(x0, kIdxB1, x1);
            const V s = load(ipsi_rev + h + i);
            const V ss = load(ipsi_rev_shoup + h + i);
            inv_butterfly(u, v, s, ss, vp, v2p);
            store(a + j, _mm512_permutex2var_epi64(u, kIdxL1, v));
            store(a + j + 8, _mm512_permutex2var_epi64(u, kIdxH1, v));
        }
    }

    // t == 2 (h = n/4).
    {
        const std::size_t h = n >> 2;
        for (std::size_t i = 0; i < h; i += 4) {
            const std::size_t j = 4 * i;
            const V x0 = load(a + j);
            const V x1 = load(a + j + 8);
            V u = _mm512_permutex2var_epi64(x0, kIdxA2, x1);
            V v = _mm512_permutex2var_epi64(x0, kIdxB2, x1);
            const V s = _mm512_permutexvar_epi64(kTw2, load(ipsi_rev + h + i));
            const V ss = _mm512_permutexvar_epi64(kTw2, load(ipsi_rev_shoup + h + i));
            inv_butterfly(u, v, s, ss, vp, v2p);
            store(a + j, _mm512_permutex2var_epi64(u, kIdxL2, v));
            store(a + j + 8, _mm512_permutex2var_epi64(u, kIdxH2, v));
        }
    }

    // t == 4 (h = n/8).
    {
        const std::size_t h = n >> 3;
        for (std::size_t i = 0; i < h; i += 2) {
            const std::size_t j = 8 * i;
            const V x0 = load(a + j);
            const V x1 = load(a + j + 8);
            V u = _mm512_permutex2var_epi64(x0, kIdxA4, x1);
            V v = _mm512_permutex2var_epi64(x0, kIdxB4, x1);
            const V s = _mm512_permutexvar_epi64(kTw4, load(ipsi_rev + h + i));
            const V ss = _mm512_permutexvar_epi64(kTw4, load(ipsi_rev_shoup + h + i));
            inv_butterfly(u, v, s, ss, vp, v2p);
            store(a + j, _mm512_permutex2var_epi64(u, kIdxA4, v));
            store(a + j + 8, _mm512_permutex2var_epi64(u, kIdxB4, v));
        }
    }

    // t >= 8: broadcast twiddle per run.
    for (std::size_t t = 8, h = n >> 4; h >= 1; t <<= 1, h >>= 1) {
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < h; ++i) {
            const V s = bcast(ipsi_rev[h + i]);
            const V ss = bcast(ipsi_rev_shoup[h + i]);
            for (std::size_t j = j1; j < j1 + t; j += 8) {
                V u = load(a + j);
                V v = load(a + j + t);
                inv_butterfly(u, v, s, ss, vp, v2p);
                store(a + j, u);
                store(a + j + t, v);
            }
            j1 += 2 * t;
        }
    }

    const V s = bcast(n_inv);
    const V ss = bcast(n_inv_shoup);
    for (std::size_t j = 0; j < n; j += 8)
        store(a + j, csub_u64(mul_shoup_lazy_v(load(a + j), s, ss, vp), vp));
}

// ----------------------------------------------------- element-wise loops ---

void mul_shoup_avx512(u64* dst, const u64* a, const u64* w, const u64* w_shoup,
                      std::size_t n, u64 p) {
    const V vp = bcast(p);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8)
        store(dst + j, mul_shoup_v(load(a + j), load(w + j), load(w_shoup + j), vp));
    for (; j < n; ++j) dst[j] = mul_mod_shoup(a[j], w[j], w_shoup[j], p);
}

void mul_shoup_accumulate_avx512(u64* acc, const u64* a, const u64* w,
                                 const u64* w_shoup, std::size_t n, u64 p) {
    const V vp = bcast(p);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const V prod = mul_shoup_v(load(a + j), load(w + j), load(w_shoup + j), vp);
        store(acc + j, add_mod_v(load(acc + j), prod, vp));
    }
    for (; j < n; ++j)
        acc[j] = add_mod(acc[j], mul_mod_shoup(a[j], w[j], w_shoup[j], p), p);
}

void fold_delta_avx512(u64* c0, const u64* plain, std::size_t n, u64 p,
                       u64 one_shoup, u64 delta, u64 delta_shoup) {
    const V vp = bcast(p);
    const V vone = bcast(one_shoup);
    const V vd = bcast(delta);
    const V vds = bcast(delta_shoup);
    const V zero = _mm512_setzero_si512();
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const V v = load(plain + j);
        const __mmask8 neg = _mm512_cmplt_epi64_mask(v, zero);  // signed v < 0
        const V mag = _mm512_mask_sub_epi64(v, neg, zero, v);
        const V red = reduce_mod_v(mag, vone, vp);
        // negative lanes lift to p - red, except red == 0 stays 0
        V m = _mm512_mask_sub_epi64(red, neg, vp, red);
        const __mmask8 kill = neg & _mm512_cmpeq_epi64_mask(red, zero);
        m = _mm512_maskz_mov_epi64(static_cast<__mmask8>(~kill), m);
        const V term = mul_shoup_v(m, vd, vds, vp);
        store(c0 + j, add_mod_v(load(c0 + j), term, vp));
    }
    for (; j < n; ++j) {
        const auto sv = static_cast<std::int64_t>(plain[j]);
        u64 m;
        if (sv >= 0) {
            m = reduce_mod_shoup(static_cast<u64>(sv), one_shoup, p);
        } else {
            const u64 mag = reduce_mod_shoup(u64{0} - plain[j], one_shoup, p);
            m = mag == 0 ? 0 : p - mag;
        }
        c0[j] = add_mod(c0[j], mul_mod_shoup(m, delta, delta_shoup, p), p);
    }
}

void mod_switch_4to2_avx512(u64* l0, u64* l1, const u64* l2, const u64* l3,
                            std::size_t n, const ModSwitchConsts& k) {
    const V vq3 = bcast(k.q3);
    const V vq4 = bcast(k.q4);
    const V vone_q4 = bcast(k.one_shoup_q4);
    const V vq3i = bcast(k.q3_inv);
    const V vq3is = bcast(k.q3_inv_shoup);
    const V vone1 = _mm512_set1_epi64(1);
    V vpk[2], vonek[2], vr64[2], vr64s[2], vdrop[2], vdrops[2];
    for (int i = 0; i < 2; ++i) {
        vpk[i] = bcast(k.p[i]);
        vonek[i] = bcast(k.one_shoup[i]);
        vr64[i] = bcast(k.r64[i]);
        vr64s[i] = bcast(k.r64_shoup[i]);
        vdrop[i] = bcast(k.drop_inv[i]);
        vdrops[i] = bcast(k.drop_inv_shoup[i]);
    }
    u64* dst[2] = {l0, l1};
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const V c3 = load(l2 + j);
        const V c4 = load(l3 + j);
        const V d = sub_mod_v(reduce_mod_v(c4, vone_q4, vq4),
                              reduce_mod_v(c3, vone_q4, vq4), vq4);
        const V w = mul_shoup_v(d, vq3i, vq3is, vq4);
        // 128-bit v = c3 + q3 * w, split into (hi, lo) with carry.
        const V prod_lo = _mm512_mullo_epi64(vq3, w);
        const V lo = _mm512_add_epi64(prod_lo, c3);
        const __mmask8 carry = _mm512_cmplt_epu64_mask(lo, prod_lo);
        const V prod_hi = mulhi_u64(vq3, w);
        const V hi = _mm512_mask_add_epi64(prod_hi, carry, prod_hi, vone1);
        for (int i = 0; i < 2; ++i) {
            const V v_mod = add_mod_v(mul_shoup_v(hi, vr64[i], vr64s[i], vpk[i]),
                                      reduce_mod_v(lo, vonek[i], vpk[i]), vpk[i]);
            const V cur = load(dst[i] + j);
            store(dst[i] + j,
                  mul_shoup_v(sub_mod_v(cur, v_mod, vpk[i]), vdrop[i], vdrops[i], vpk[i]));
        }
    }
    if (j < n)
        scalar_kernels()->mod_switch_4to2(l0 + j, l1 + j, l2 + j, l3 + j, n - j, k);
}

void chacha20_blocks_avx512(const std::uint32_t state[16], std::uint8_t* out,
                            std::size_t nblocks) {
    detail::chacha20_blocks_avx2(state, out, nblocks);
}

}  // namespace

const Kernels* avx512_kernels() {
    static constexpr Kernels k{
        .tier = Tier::kAvx512,
        .name = "avx512",
        .ntt_forward = &ntt_forward_avx512,
        .ntt_inverse = &ntt_inverse_avx512,
        .mul_shoup = &mul_shoup_avx512,
        .mul_shoup_accumulate = &mul_shoup_accumulate_avx512,
        .fold_delta = &fold_delta_avx512,
        .mod_switch_4to2 = &mod_switch_4to2_avx512,
        .chacha20_blocks = &chacha20_blocks_avx512,
    };
    return &k;
}

}  // namespace c2pi::he::kernels

#else  // !AVX-512

namespace c2pi::he::kernels {
const Kernels* avx512_kernels() { return nullptr; }
}  // namespace c2pi::he::kernels

#endif
