#pragma once

/// \file kernels.hpp
/// Runtime-dispatched SIMD kernels for the ring-arithmetic and PRG hot
/// loops: the NTT butterfly passes, the Shoup modular-multiply limb
/// loops behind multiply_plain(_accumulate), the add_plain delta fold,
/// the 4->2 mod-switch compose, and the batched ChaCha20 block function.
///
/// Three variants exist — scalar, AVX2 and AVX-512 — compiled into
/// separate translation units (only the kernel TUs carry -m arch flags,
/// so the binary still runs on any x86-64). One variant is selected at
/// startup from a cpuid probe; `C2PI_KERNELS=scalar|avx2|avx512`
/// overrides the probe for testing and benchmarking. Every variant
/// computes the exact same sequence of lazy-reduction operations, so
/// outputs are bit-identical across tiers — pinned by the differential
/// suite in tests/kernels_test.cpp.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace c2pi::he::kernels {

using u64 = std::uint64_t;

enum class Tier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Hoisted constants of BfvContext::mod_switch_to_two_limbs (4 -> 2
/// limbs): everything input-independent about the CRT compose of the
/// dropped (q3, q4) pair and the rescale of the kept (p[0], p[1]) pair.
struct ModSwitchConsts {
    u64 q3 = 0, q4 = 0;                 ///< dropped primes
    u64 one_shoup_q4 = 0;               ///< floor(2^64 / q4)
    u64 q3_inv = 0, q3_inv_shoup = 0;   ///< q3^{-1} mod q4 (+ companion)
    u64 p[2] = {};                      ///< kept primes
    u64 one_shoup[2] = {};              ///< floor(2^64 / p_i)
    u64 r64[2] = {}, r64_shoup[2] = {};           ///< 2^64 mod p_i
    u64 drop_inv[2] = {}, drop_inv_shoup[2] = {}; ///< (q3 q4)^{-1} mod p_i
};

/// One kernel variant: a table of function pointers, resolved once.
struct Kernels {
    Tier tier = Tier::kScalar;
    const char* name = "scalar";

    /// In-place forward negacyclic NTT (Longa-Naehrig order, Harvey lazy
    /// reduction; output exactly reduced to [0, p)). Precondition:
    /// a[j] < 4p, n a power of two >= 2.
    void (*ntt_forward)(u64* a, std::size_t n, const u64* psi_rev,
                        const u64* psi_rev_shoup, u64 p) = nullptr;
    /// In-place inverse counterpart (scales by n^{-1}, reduces to [0, p)).
    void (*ntt_inverse)(u64* a, std::size_t n, const u64* ipsi_rev,
                        const u64* ipsi_rev_shoup, u64 n_inv, u64 n_inv_shoup,
                        u64 p) = nullptr;
    /// dst[j] = a[j] * w[j] mod p (exact Shoup product; a[j] < p).
    void (*mul_shoup)(u64* dst, const u64* a, const u64* w, const u64* w_shoup,
                      std::size_t n, u64 p) = nullptr;
    /// acc[j] = (acc[j] + a[j] * w[j]) mod p.
    void (*mul_shoup_accumulate)(u64* acc, const u64* a, const u64* w,
                                 const u64* w_shoup, std::size_t n, u64 p) = nullptr;
    /// c0[j] = (c0[j] + lift_signed(plain[j]) * delta) mod p — the
    /// add_plain_inplace fold of a full mask polynomial into a response.
    void (*fold_delta)(u64* c0, const u64* plain, std::size_t n, u64 p,
                       u64 one_shoup, u64 delta, u64 delta_shoup) = nullptr;
    /// The per-coefficient 4->2 mod-switch: CRT-compose the dropped pair
    /// (l2, l3), subtract and rescale the kept pair (l0, l1) in place.
    void (*mod_switch_4to2)(u64* l0, u64* l1, const u64* l2, const u64* l3,
                            std::size_t n, const ModSwitchConsts& k) = nullptr;
    /// nblocks consecutive ChaCha20 keystream blocks (64 bytes each) into
    /// `out`, starting at the counter held in state[12]/state[13] (64-bit
    /// little-endian effective counter). `state` is not modified; the
    /// caller advances the counter by nblocks.
    void (*chacha20_blocks)(const std::uint32_t state[16], std::uint8_t* out,
                            std::size_t nblocks) = nullptr;
};

/// The variant every hot loop uses: the best tier the CPU supports,
/// unless C2PI_KERNELS overrides. Resolved once on first call; an
/// override naming an unknown or unsupported tier throws c2pi::Error.
const Kernels& active();

/// All variants this process can run (scalar always; AVX2/AVX-512 when
/// both compiled in and reported by cpuid). The differential tests
/// iterate this list, so unsupported ISAs are skipped at runtime.
const std::vector<const Kernels*>& supported();

/// Variant by tier name ("scalar", "avx2", "avx512"); nullptr when the
/// name is unknown or the tier is unsupported on this CPU.
const Kernels* by_name(std::string_view name);

[[nodiscard]] bool cpu_supports(Tier tier);

/// Test-only hook: force the active variant (nullptr restores the
/// startup resolution). Swap only while no session threads are running.
void set_active_for_testing(const Kernels* k);

// Registration points, defined in the per-ISA TUs. A TU built without
// its ISA (non-x86 target, old compiler) returns nullptr.
const Kernels* scalar_kernels();
const Kernels* avx2_kernels();
const Kernels* avx512_kernels();

}  // namespace c2pi::he::kernels
