#pragma once

/// \file ntt.hpp
/// Negacyclic number-theoretic transform over Z_p[X]/(X^n + 1) with
/// Shoup-precomputed twiddles (Longa-Naehrig iteration order). Forward
/// maps natural order to bit-reversed; inverse undoes it; pointwise
/// multiplication between two forward-transformed polys yields the
/// negacyclic product after the inverse transform.

#include <vector>

#include "he/kernels.hpp"
#include "he/modmath.hpp"

namespace c2pi::he {

class NttTables {
public:
    NttTables(u64 prime, std::size_t n);

    [[nodiscard]] u64 prime() const { return prime_; }
    [[nodiscard]] std::size_t n() const { return n_; }

    /// In-place forward negacyclic NTT (natural -> bit-reversed order).
    /// Runs on the dispatched kernel variant (kernels::active()).
    void forward(std::vector<u64>& a) const;
    /// In-place inverse (bit-reversed -> natural order), scales by n^{-1}.
    void inverse(std::vector<u64>& a) const;

    /// Same transforms pinned to an explicit kernel variant — the
    /// differential and property tests use these to compare tiers
    /// without touching the process-wide dispatch.
    void forward_with(const kernels::Kernels& k, std::vector<u64>& a) const;
    void inverse_with(const kernels::Kernels& k, std::vector<u64>& a) const;

private:
    u64 prime_;
    std::size_t n_;
    std::vector<u64> psi_rev_, psi_rev_shoup_;    ///< bit-reversed powers of psi
    std::vector<u64> ipsi_rev_, ipsi_rev_shoup_;  ///< bit-reversed powers of psi^{-1}
    u64 n_inv_, n_inv_shoup_;
};

}  // namespace c2pi::he
