#include "he/modmath.hpp"

namespace c2pi::he {

bool is_prime(u64 n) {
    if (n < 2) return false;
    for (const u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL, 31ULL}) {
        if (n % p == 0) return n == p;
    }
    u64 d = n - 1;
    int r = 0;
    while ((d & 1U) == 0) {
        d >>= 1;
        ++r;
    }
    // These witnesses are sufficient for all n < 3.3e24 (Sorenson & Webster).
    for (const u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        u64 x = pow_mod(a, d, n);
        if (x == 1 || x == n - 1) continue;
        bool composite = true;
        for (int i = 0; i < r - 1; ++i) {
            x = mul_mod(x, x, n);
            if (x == n - 1) {
                composite = false;
                break;
            }
        }
        if (composite) return false;
    }
    return true;
}

u64 next_ntt_prime(u64 start, u64 modulus_step) {
    u64 candidate = start - (start % modulus_step) + 1;
    if (candidate < start) candidate += modulus_step;
    while (!is_prime(candidate)) candidate += modulus_step;
    return candidate;
}

u64 find_primitive_root(u64 p, u64 two_n) {
    require((p - 1) % two_n == 0, "p-1 must be divisible by 2n");
    const u64 cofactor = (p - 1) / two_n;
    for (u64 g = 2;; ++g) {
        const u64 psi = pow_mod(g, cofactor, p);
        // psi has order dividing 2n; it is primitive iff psi^n == -1.
        if (pow_mod(psi, two_n / 2, p) == p - 1) return psi;
        require(g < 1000, "no primitive root found (non-prime modulus?)");
    }
}

}  // namespace c2pi::he
