#pragma once

/// \file encoding.hpp
/// Cheetah-style rotation-free coefficient packing (Huang et al. 2022).
///
/// Convolution: a group of input channels is packed into one plaintext
/// polynomial (channel-major, row-major inside a zero-padded channel);
/// the kernel of one output channel is packed reversed. One negacyclic
/// polynomial product then carries every output pixel of that (group,
/// output-channel) pair in known coefficient positions. Groups satisfy
/// C_g * Hp * Wp <= n so no wrapped (negated) term can collide with a
/// needed coefficient — see the carry analysis in DESIGN.md §6.
///
/// Fully-connected: x packed ascending, each weight row packed reversed,
/// floor(n / in) rows per polynomial; output o sits at coefficient
/// (o+1)*in - 1.

#include <cstdint>

#include "he/bfv.hpp"

namespace c2pi::he {

/// Geometry of one convolution layer (square kernel, no dilation — the
/// model zoo uses dilation only inside attacks, which never run under HE).
struct ConvGeometry {
    std::int64_t in_channels = 0;
    std::int64_t height = 0;     ///< unpadded input H
    std::int64_t width = 0;      ///< unpadded input W
    std::int64_t out_channels = 0;
    std::int64_t kernel = 3;
    std::int64_t stride = 1;
    std::int64_t pad = 1;

    [[nodiscard]] std::int64_t padded_h() const { return height + 2 * pad; }
    [[nodiscard]] std::int64_t padded_w() const { return width + 2 * pad; }
    [[nodiscard]] std::int64_t out_h() const { return (padded_h() - kernel) / stride + 1; }
    [[nodiscard]] std::int64_t out_w() const { return (padded_w() - kernel) / stride + 1; }

    /// Geometry is public protocol data (it travels inside the serialized
    /// pi::ModelArtifact); equality lets both parties verify agreement.
    friend bool operator==(const ConvGeometry&, const ConvGeometry&) = default;
};

class ConvEncoder {
public:
    ConvEncoder(const BfvContext& ctx, ConvGeometry geometry);

    [[nodiscard]] const ConvGeometry& geometry() const { return geo_; }
    /// Input channels per ciphertext group (last group zero-padded).
    [[nodiscard]] std::int64_t channels_per_group() const { return channels_per_group_; }
    [[nodiscard]] std::int64_t num_groups() const { return num_groups_; }

    /// Pack the input channels of group `g` (x laid out [C,H,W]) into a
    /// plaintext polynomial, applying the zero padding.
    [[nodiscard]] std::vector<Ring> encode_input_group(std::span<const Ring> x,
                                                       std::int64_t g) const;

    /// Pack kernel weights w (laid out [O,C,k,k], fixed-point encoded) for
    /// (group g, output channel o).
    [[nodiscard]] std::vector<Ring> encode_weight(std::span<const Ring> w, std::int64_t g,
                                                  std::int64_t o) const;

    /// Coefficient index of output pixel (oy, ox) in the product poly.
    [[nodiscard]] std::int64_t output_coeff_index(std::int64_t oy, std::int64_t ox) const;

    /// Scatter per-pixel values of one output channel into a length-n
    /// plaintext polynomial at the output coefficient positions (used by
    /// the server to fold its plain contribution + fresh mask into the
    /// response ciphertext).
    [[nodiscard]] std::vector<Ring> scatter_outputs(std::span<const Ring> values) const;

    /// Gather output pixels of one output channel from a decrypted poly.
    [[nodiscard]] std::vector<Ring> gather_outputs(std::span<const Ring> poly) const;

private:
    const BfvContext* ctx_;
    ConvGeometry geo_;
    std::int64_t channels_per_group_ = 0;
    std::int64_t num_groups_ = 0;
};

class MatVecEncoder {
public:
    MatVecEncoder(const BfvContext& ctx, std::int64_t in_features, std::int64_t out_features);

    [[nodiscard]] std::int64_t in_features() const { return in_; }
    [[nodiscard]] std::int64_t out_features() const { return out_; }
    [[nodiscard]] std::int64_t outs_per_block() const { return outs_per_block_; }
    [[nodiscard]] std::int64_t num_blocks() const { return num_blocks_; }

    [[nodiscard]] std::vector<Ring> encode_input(std::span<const Ring> x) const;
    /// Weight rows of block b (W laid out [out, in] row-major).
    [[nodiscard]] std::vector<Ring> encode_weight_block(std::span<const Ring> w,
                                                        std::int64_t b) const;
    /// Coefficient index of local output row `o` within a block product.
    [[nodiscard]] std::int64_t output_coeff_index(std::int64_t o_local) const;

    /// Scatter/gather over one block (values.size() == rows in block b).
    [[nodiscard]] std::vector<Ring> scatter_outputs(std::span<const Ring> values,
                                                    std::int64_t b) const;
    [[nodiscard]] std::vector<Ring> gather_outputs(std::span<const Ring> poly,
                                                   std::int64_t b) const;

private:
    [[nodiscard]] std::int64_t rows_in_block(std::int64_t b) const;

    const BfvContext* ctx_;
    std::int64_t in_ = 0, out_ = 0;
    std::int64_t outs_per_block_ = 0;
    std::int64_t num_blocks_ = 0;
};

}  // namespace c2pi::he
