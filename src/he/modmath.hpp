#pragma once

/// \file modmath.hpp
/// 64-bit modular arithmetic for the RNS-BFV scheme: __int128 mul-mod,
/// Shoup-precomputed twiddle multiplication, Miller-Rabin primality, and
/// NTT-friendly prime generation (p ≡ 1 mod 2n).

#include <cstdint>

#include "core/error.hpp"

namespace c2pi::he {

using u64 = std::uint64_t;
using u128 = unsigned __int128;
using i128 = __int128;

[[nodiscard]] inline u64 add_mod(u64 a, u64 b, u64 p) {
    const u64 s = a + b;  // p < 2^63 so no overflow
    return s >= p ? s - p : s;
}

[[nodiscard]] inline u64 sub_mod(u64 a, u64 b, u64 p) { return a >= b ? a - b : a + p - b; }

[[nodiscard]] inline u64 mul_mod(u64 a, u64 b, u64 p) {
    return static_cast<u64>((static_cast<u128>(a) * b) % p);
}

/// Shoup multiplication: w_shoup = floor(w * 2^64 / p) precomputed; then
/// a*w mod p costs one high-mul and one low-mul (no division).
[[nodiscard]] inline u64 shoup_precompute(u64 w, u64 p) {
    return static_cast<u64>((static_cast<u128>(w) << 64) / p);
}

[[nodiscard]] inline u64 mul_mod_shoup(u64 a, u64 w, u64 w_shoup, u64 p) {
    const u64 q = static_cast<u64>((static_cast<u128>(a) * w_shoup) >> 64);
    const u64 r = a * w - q * p;  // in [0, 2p)
    return r >= p ? r - p : r;
}

/// Lazy Shoup multiplication: result in [0, 2p) without the final
/// conditional subtraction. Valid for ANY a < 2^64 (not just a < p):
/// with w_shoup = floor(w 2^64 / p) the error term is a·e/2^64 + p·f/2^64
/// < 2p for e < p, f < 2^64 (Harvey 2014). Callers chain these across
/// butterfly stages, reducing once at the end.
[[nodiscard]] inline u64 mul_mod_shoup_lazy(u64 a, u64 w, u64 w_shoup, u64 p) {
    const u64 q = static_cast<u64>((static_cast<u128>(a) * w_shoup) >> 64);
    return a * w - q * p;
}

/// Precompute for reduce_mod_shoup: floor(2^64 / p) (Shoup constant of
/// w = 1).
[[nodiscard]] inline u64 reduce_precompute(u64 p) { return shoup_precompute(1, p); }

/// a mod p for arbitrary a < 2^64, one high-mul instead of a division
/// (Shoup multiplication by 1).
[[nodiscard]] inline u64 reduce_mod_shoup(u64 a, u64 one_shoup, u64 p) {
    const u64 q = static_cast<u64>((static_cast<u128>(a) * one_shoup) >> 64);
    const u64 r = a - q * p;  // in [0, 2p)
    return r >= p ? r - p : r;
}

[[nodiscard]] inline u64 pow_mod(u64 base, u64 exp, u64 p) {
    u64 result = 1;
    base %= p;
    while (exp > 0) {
        if (exp & 1U) result = mul_mod(result, base, p);
        base = mul_mod(base, base, p);
        exp >>= 1;
    }
    return result;
}

/// Inverse modulo prime p (Fermat).
[[nodiscard]] inline u64 inv_mod(u64 a, u64 p) {
    require(a % p != 0, "inverse of zero");
    return pow_mod(a, p - 2, p);
}

/// Deterministic Miller-Rabin, valid for all 64-bit integers.
[[nodiscard]] bool is_prime(u64 n);

/// Smallest prime p >= start with p ≡ 1 (mod modulus_step).
[[nodiscard]] u64 next_ntt_prime(u64 start, u64 modulus_step);

/// A primitive 2n-th root of unity mod p (requires 2n | p-1).
[[nodiscard]] u64 find_primitive_root(u64 p, u64 two_n);

}  // namespace c2pi::he
