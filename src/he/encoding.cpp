#include "he/encoding.hpp"

namespace c2pi::he {

ConvEncoder::ConvEncoder(const BfvContext& ctx, ConvGeometry geometry)
    : ctx_(&ctx), geo_(geometry) {
    const std::int64_t plane = geo_.padded_h() * geo_.padded_w();
    require(plane <= static_cast<std::int64_t>(ctx.n()),
            "padded image plane larger than ring degree");
    channels_per_group_ = std::min<std::int64_t>(
        geo_.in_channels, static_cast<std::int64_t>(ctx.n()) / plane);
    num_groups_ = (geo_.in_channels + channels_per_group_ - 1) / channels_per_group_;
}

std::vector<Ring> ConvEncoder::encode_input_group(std::span<const Ring> x, std::int64_t g) const {
    require(x.size() == static_cast<std::size_t>(geo_.in_channels * geo_.height * geo_.width),
            "conv input size mismatch");
    require(g >= 0 && g < num_groups_, "group index out of range");
    const std::int64_t hp = geo_.padded_h(), wp = geo_.padded_w();
    std::vector<Ring> poly(ctx_->n(), 0);
    const std::int64_t c_begin = g * channels_per_group_;
    const std::int64_t c_end = std::min(c_begin + channels_per_group_, geo_.in_channels);
    for (std::int64_t c = c_begin; c < c_end; ++c) {
        const std::int64_t local = c - c_begin;
        for (std::int64_t y = 0; y < geo_.height; ++y) {
            for (std::int64_t xx = 0; xx < geo_.width; ++xx) {
                const std::int64_t idx =
                    local * hp * wp + (y + geo_.pad) * wp + (xx + geo_.pad);
                poly[static_cast<std::size_t>(idx)] =
                    x[static_cast<std::size_t>((c * geo_.height + y) * geo_.width + xx)];
            }
        }
    }
    return poly;
}

std::vector<Ring> ConvEncoder::encode_weight(std::span<const Ring> w, std::int64_t g,
                                             std::int64_t o) const {
    require(w.size() == static_cast<std::size_t>(geo_.out_channels * geo_.in_channels *
                                                 geo_.kernel * geo_.kernel),
            "conv weight size mismatch");
    require(o >= 0 && o < geo_.out_channels, "output channel out of range");
    const std::int64_t hp = geo_.padded_h(), wp = geo_.padded_w();
    const std::int64_t k = geo_.kernel;
    std::vector<Ring> poly(ctx_->n(), 0);
    const std::int64_t c_begin = g * channels_per_group_;
    const std::int64_t c_end = std::min(c_begin + channels_per_group_, geo_.in_channels);
    for (std::int64_t c = c_begin; c < c_end; ++c) {
        const std::int64_t local = c - c_begin;
        for (std::int64_t ky = 0; ky < k; ++ky) {
            for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t idx = (channels_per_group_ - 1 - local) * hp * wp +
                                         (k - 1 - ky) * wp + (k - 1 - kx);
                poly[static_cast<std::size_t>(idx)] =
                    w[static_cast<std::size_t>(((o * geo_.in_channels + c) * k + ky) * k + kx)];
            }
        }
    }
    return poly;
}

std::int64_t ConvEncoder::output_coeff_index(std::int64_t oy, std::int64_t ox) const {
    const std::int64_t hp = geo_.padded_h(), wp = geo_.padded_w();
    return (channels_per_group_ - 1) * hp * wp + (geo_.kernel - 1 + oy * geo_.stride) * wp +
           (geo_.kernel - 1 + ox * geo_.stride);
}

std::vector<Ring> ConvEncoder::scatter_outputs(std::span<const Ring> values) const {
    require(values.size() == static_cast<std::size_t>(geo_.out_h() * geo_.out_w()),
            "conv output size mismatch");
    std::vector<Ring> poly(ctx_->n(), 0);
    std::size_t i = 0;
    for (std::int64_t oy = 0; oy < geo_.out_h(); ++oy)
        for (std::int64_t ox = 0; ox < geo_.out_w(); ++ox)
            poly[static_cast<std::size_t>(output_coeff_index(oy, ox))] = values[i++];
    return poly;
}

std::vector<Ring> ConvEncoder::gather_outputs(std::span<const Ring> poly) const {
    std::vector<Ring> out(static_cast<std::size_t>(geo_.out_h() * geo_.out_w()));
    std::size_t i = 0;
    for (std::int64_t oy = 0; oy < geo_.out_h(); ++oy)
        for (std::int64_t ox = 0; ox < geo_.out_w(); ++ox)
            out[i++] = poly[static_cast<std::size_t>(output_coeff_index(oy, ox))];
    return out;
}

// ---------------------------------------------------------------- MatVec ---

MatVecEncoder::MatVecEncoder(const BfvContext& ctx, std::int64_t in_features,
                             std::int64_t out_features)
    : ctx_(&ctx), in_(in_features), out_(out_features) {
    require(in_ > 0 && out_ > 0, "matvec dims must be positive");
    require(in_ <= static_cast<std::int64_t>(ctx.n()), "matvec input exceeds ring degree");
    outs_per_block_ = std::min<std::int64_t>(out_, static_cast<std::int64_t>(ctx.n()) / in_);
    num_blocks_ = (out_ + outs_per_block_ - 1) / outs_per_block_;
}

std::int64_t MatVecEncoder::rows_in_block(std::int64_t b) const {
    return std::min(outs_per_block_, out_ - b * outs_per_block_);
}

std::vector<Ring> MatVecEncoder::encode_input(std::span<const Ring> x) const {
    require(x.size() == static_cast<std::size_t>(in_), "matvec input size mismatch");
    std::vector<Ring> poly(ctx_->n(), 0);
    std::copy(x.begin(), x.end(), poly.begin());
    return poly;
}

std::vector<Ring> MatVecEncoder::encode_weight_block(std::span<const Ring> w, std::int64_t b) const {
    require(w.size() == static_cast<std::size_t>(in_ * out_), "matvec weight size mismatch");
    require(b >= 0 && b < num_blocks_, "block index out of range");
    std::vector<Ring> poly(ctx_->n(), 0);
    const std::int64_t rows = rows_in_block(b);
    for (std::int64_t r = 0; r < rows; ++r) {
        const std::int64_t row = b * outs_per_block_ + r;
        for (std::int64_t j = 0; j < in_; ++j) {
            poly[static_cast<std::size_t>((r + 1) * in_ - 1 - j)] =
                w[static_cast<std::size_t>(row * in_ + j)];
        }
    }
    return poly;
}

std::int64_t MatVecEncoder::output_coeff_index(std::int64_t o_local) const {
    return (o_local + 1) * in_ - 1;
}

std::vector<Ring> MatVecEncoder::scatter_outputs(std::span<const Ring> values, std::int64_t b) const {
    require(values.size() == static_cast<std::size_t>(rows_in_block(b)), "matvec scatter mismatch");
    std::vector<Ring> poly(ctx_->n(), 0);
    for (std::size_t r = 0; r < values.size(); ++r)
        poly[static_cast<std::size_t>(output_coeff_index(static_cast<std::int64_t>(r)))] = values[r];
    return poly;
}

std::vector<Ring> MatVecEncoder::gather_outputs(std::span<const Ring> poly, std::int64_t b) const {
    std::vector<Ring> out(static_cast<std::size_t>(rows_in_block(b)));
    for (std::size_t r = 0; r < out.size(); ++r)
        out[r] = poly[static_cast<std::size_t>(output_coeff_index(static_cast<std::int64_t>(r)))];
    return out;
}

}  // namespace c2pi::he
