#include "he/ntt.hpp"

namespace c2pi::he {

namespace {
std::size_t bit_reverse(std::size_t x, int bits) {
    std::size_t r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1U);
        x >>= 1;
    }
    return r;
}
}  // namespace

NttTables::NttTables(u64 prime, std::size_t n) : prime_(prime), n_(n) {
    require(n >= 2 && (n & (n - 1)) == 0, "NTT size must be a power of two");
    require((prime - 1) % (2 * n) == 0, "prime must be 1 mod 2n");
    int log_n = 0;
    while ((std::size_t{1} << log_n) < n) ++log_n;

    const u64 psi = find_primitive_root(prime, 2 * static_cast<u64>(n));
    const u64 ipsi = inv_mod(psi, prime);

    psi_rev_.resize(n);
    ipsi_rev_.resize(n);
    u64 power = 1, ipower = 1;
    std::vector<u64> psi_powers(n), ipsi_powers(n);
    for (std::size_t i = 0; i < n; ++i) {
        psi_powers[i] = power;
        ipsi_powers[i] = ipower;
        power = mul_mod(power, psi, prime);
        ipower = mul_mod(ipower, ipsi, prime);
    }
    for (std::size_t i = 0; i < n; ++i) {
        psi_rev_[i] = psi_powers[bit_reverse(i, log_n)];
        ipsi_rev_[i] = ipsi_powers[bit_reverse(i, log_n)];
    }
    psi_rev_shoup_.resize(n);
    ipsi_rev_shoup_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        psi_rev_shoup_[i] = shoup_precompute(psi_rev_[i], prime);
        ipsi_rev_shoup_[i] = shoup_precompute(ipsi_rev_[i], prime);
    }
    n_inv_ = inv_mod(static_cast<u64>(n), prime);
    n_inv_shoup_ = shoup_precompute(n_inv_, prime);
}

// The butterfly passes themselves live in the kernels layer
// (he/kernels*.cpp): the scalar variant is the Harvey lazy-reduction /
// Gentleman-Sande code that used to be inlined here, and the SIMD
// variants reproduce it bit-for-bit.

void NttTables::forward(std::vector<u64>& a) const {
    forward_with(kernels::active(), a);
}

void NttTables::inverse(std::vector<u64>& a) const {
    inverse_with(kernels::active(), a);
}

void NttTables::forward_with(const kernels::Kernels& k, std::vector<u64>& a) const {
    require(a.size() == n_, "NTT operand size mismatch");
    k.ntt_forward(a.data(), n_, psi_rev_.data(), psi_rev_shoup_.data(), prime_);
}

void NttTables::inverse_with(const kernels::Kernels& k, std::vector<u64>& a) const {
    require(a.size() == n_, "NTT operand size mismatch");
    k.ntt_inverse(a.data(), n_, ipsi_rev_.data(), ipsi_rev_shoup_.data(), n_inv_,
                  n_inv_shoup_, prime_);
}

}  // namespace c2pi::he
