#include "he/ntt.hpp"

namespace c2pi::he {

namespace {
std::size_t bit_reverse(std::size_t x, int bits) {
    std::size_t r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1U);
        x >>= 1;
    }
    return r;
}
}  // namespace

NttTables::NttTables(u64 prime, std::size_t n) : prime_(prime), n_(n) {
    require(n >= 2 && (n & (n - 1)) == 0, "NTT size must be a power of two");
    require((prime - 1) % (2 * n) == 0, "prime must be 1 mod 2n");
    int log_n = 0;
    while ((std::size_t{1} << log_n) < n) ++log_n;

    const u64 psi = find_primitive_root(prime, 2 * static_cast<u64>(n));
    const u64 ipsi = inv_mod(psi, prime);

    psi_rev_.resize(n);
    ipsi_rev_.resize(n);
    u64 power = 1, ipower = 1;
    std::vector<u64> psi_powers(n), ipsi_powers(n);
    for (std::size_t i = 0; i < n; ++i) {
        psi_powers[i] = power;
        ipsi_powers[i] = ipower;
        power = mul_mod(power, psi, prime);
        ipower = mul_mod(ipower, ipsi, prime);
    }
    for (std::size_t i = 0; i < n; ++i) {
        psi_rev_[i] = psi_powers[bit_reverse(i, log_n)];
        ipsi_rev_[i] = ipsi_powers[bit_reverse(i, log_n)];
    }
    psi_rev_shoup_.resize(n);
    ipsi_rev_shoup_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        psi_rev_shoup_[i] = shoup_precompute(psi_rev_[i], prime);
        ipsi_rev_shoup_[i] = shoup_precompute(ipsi_rev_[i], prime);
    }
    n_inv_ = inv_mod(static_cast<u64>(n), prime);
    n_inv_shoup_ = shoup_precompute(n_inv_, prime);
}

void NttTables::forward(std::vector<u64>& a) const {
    require(a.size() == n_, "NTT operand size mismatch");
    // Harvey-style lazy butterflies: values stay below 4p between stages
    // (fine for ~49-bit primes; 4p < 2^51), the twiddle product accepts
    // any operand < 2^64 and returns a value < 2p, and a single final
    // pass reduces to [0, p). Output is bit-identical to the per-butterfly
    // exact reduction it replaced.
    const u64 p = prime_;
    const u64 two_p = 2 * p;
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const u64 s = psi_rev_[m + i];
            const u64 s_shoup = psi_rev_shoup_[m + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                if (u >= two_p) u -= two_p;                                  // < 2p
                const u64 v = mul_mod_shoup_lazy(a[j + t], s, s_shoup, p);   // < 2p
                a[j] = u + v;                                                // < 4p
                a[j + t] = u + two_p - v;                                    // < 4p
            }
        }
    }
    for (auto& x : a) {
        if (x >= two_p) x -= two_p;
        if (x >= p) x -= p;
    }
}

void NttTables::inverse(std::vector<u64>& a) const {
    require(a.size() == n_, "NTT operand size mismatch");
    // Gentleman-Sande stages with the same lazy discipline: sums are
    // conditionally reduced to < 2p, differences go through the lazy
    // twiddle product (< 2p), and the closing n^{-1} scaling performs the
    // single exact reduction to [0, p).
    const u64 p = prime_;
    const u64 two_p = 2 * p;
    std::size_t t = 1;
    for (std::size_t m = n_; m > 1; m >>= 1) {
        std::size_t j1 = 0;
        const std::size_t h = m >> 1;
        for (std::size_t i = 0; i < h; ++i) {
            const u64 s = ipsi_rev_[h + i];
            const u64 s_shoup = ipsi_rev_shoup_[h + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = a[j + t];
                u64 sum = u + v;                                             // < 4p
                if (sum >= two_p) sum -= two_p;                              // < 2p
                a[j] = sum;
                a[j + t] = mul_mod_shoup_lazy(u + two_p - v, s, s_shoup, p); // < 2p
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (auto& x : a) {
        x = mul_mod_shoup_lazy(x, n_inv_, n_inv_shoup_, p);
        if (x >= p) x -= p;
    }
}

}  // namespace c2pi::he
