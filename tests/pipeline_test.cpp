// Pipelined-online-phase parity suite (compute/communication overlap):
// the tentpole claim is that pipelining is pure *scheduling* — chunked
// HE response streaming, the transport's writer-thread send queue, and
// the cross-layer mask prefetch change WHEN work happens, never what
// goes on the wire. Pinned here at three levels:
//
//  * session (in-process): pipeline on vs off across the full
//    {gc,ot,fss} x {Cheetah, Delphi, full-PI} matrix — bit-identical
//    logits, identical per-phase ChannelStats, and byte-identical
//    per-message wire payloads (every payload compared, not totals);
//  * transport (loopback TCP): the pipelined writer thread delivers the
//    exact frame sequence of the synchronous path with identical
//    enqueue-time accounting, a full pipelined session over TCP matches
//    the synchronous in-process reference, and blocked-recv time lands
//    in the wait bucket of the phase that was current at the call;
//  * serving (chaos): a client that dies MID-STREAM while the server's
//    pipelined response chunks are in flight is contained and
//    classified as a client abort by the ServingPool, and a clean
//    follow-up client gets logits bit-identical to a fault-free run.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "net/faulty.hpp"
#include "net/runtime.hpp"
#include "net/tcp.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"
#include "pi/bootstrap.hpp"
#include "pi/serving_pool.hpp"
#include "pi/session.hpp"

namespace c2pi {
namespace {

using namespace std::chrono_literals;

/// Transport decorator that records every sent payload verbatim and
/// forwards the pipelined-send controls (parity_test.cpp idiom; over an
/// InProcTransport the controls are no-ops, so recording stays on the
/// protocol thread and is race-free even with pipelining on).
class RecordingTransport final : public net::Transport {
public:
    RecordingTransport(net::Transport& inner, std::vector<std::vector<std::uint8_t>>& sent)
        : Transport(inner.party_id()), inner_(&inner), sent_(&sent) {}

    void send_bytes(std::span<const std::uint8_t> data) override {
        sent_->emplace_back(data.begin(), data.end());
        inner_->set_phase(phase_);
        inner_->send_bytes(data);
    }
    [[nodiscard]] std::vector<std::uint8_t> recv_bytes() override { return inner_->recv_bytes(); }
    void recv_bytes_into(std::vector<std::uint8_t>& out) override {
        inner_->recv_bytes_into(out);
    }
    [[nodiscard]] net::ChannelStats stats() const override { return inner_->stats(); }
    [[nodiscard]] net::WaitStats wait_stats() const override { return inner_->wait_stats(); }
    void set_pipelined_sends(bool enabled) override { inner_->set_pipelined_sends(enabled); }
    void flush_sends() override { inner_->flush_sends(); }

    void send_artifact_bytes(std::span<const std::uint8_t> bytes) override {
        inner_->send_artifact_bytes(bytes);
    }
    [[nodiscard]] std::vector<std::uint8_t> recv_artifact_bytes() override {
        return inner_->recv_artifact_bytes();
    }
    void send_keys_bytes(std::span<const std::uint8_t> bytes) override {
        sent_->emplace_back(bytes.begin(), bytes.end());
        inner_->send_keys_bytes(bytes);
    }
    [[nodiscard]] std::vector<std::uint8_t> recv_keys_bytes() override {
        return inner_->recv_keys_bytes();
    }

private:
    net::Transport* inner_;
    std::vector<std::vector<std::uint8_t>>* sent_;
};

/// Cheap model with conv/ReLU/FC coverage (fault_test.cpp's topology):
/// the matrix below runs 18 full sessions, so each must be fast.
nn::Sequential tiny_model(std::uint64_t seed = 3) {
    Rng rng(seed);
    nn::Sequential m;
    m.emplace<nn::Conv2d>(3, 2, ops::ConvSpec{.kernel = 3, .stride = 2, .pad = 1}, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::Flatten>();
    m.emplace<nn::Linear>(2 * 4 * 4, 8, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::Linear>(8, 4, rng);
    return m;
}

pi::CompiledModel::Options tiny_options(bool full_pi) {
    pi::CompiledModel::Options opts;
    opts.input_chw = {3, 8, 8};
    opts.he_ring_degree = 1024;
    if (!full_pi) opts.boundary = nn::CutPoint{.linear_index = 1, .after_relu = true};
    return opts;
}

Tensor tiny_input(std::uint64_t seed = 100) {
    Rng rng(seed);
    return Tensor::uniform({1, 3, 8, 8}, rng, 0.0F, 1.0F);
}

struct SessionTranscript {
    std::vector<std::vector<std::uint8_t>> server_sent, client_sent;
    Tensor logits;
    net::ChannelStats stats;
};

SessionTranscript run_session(const pi::CompiledModel& compiled, pi::SessionConfig config,
                              const Tensor& input, bool pipeline) {
    config.pipeline = pipeline;
    const pi::ServerSession server(compiled, config);
    const pi::ClientSession client(compiled, config);
    SessionTranscript tr;
    net::DuplexChannel channel;
    (void)net::run_two_party(
        channel,
        [&](net::Transport& t) {
            RecordingTransport rec(t, tr.server_sent);
            server.run(rec);
        },
        [&](net::Transport& t) {
            RecordingTransport rec(t, tr.client_sent);
            tr.logits = client.run(rec, input);
        });
    tr.stats = channel.stats();
    return tr;
}

void expect_same_transcript(const SessionTranscript& sync, const SessionTranscript& piped,
                            const std::string& what) {
    ASSERT_TRUE(piped.logits.same_shape(sync.logits)) << what;
    EXPECT_TRUE(piped.logits.allclose(sync.logits, 0.0F))
        << what << ": pipelining changed the logits";
    EXPECT_EQ(piped.stats, sync.stats) << what << ": per-phase byte/flight stats diverged";
    ASSERT_EQ(piped.server_sent.size(), sync.server_sent.size())
        << what << ": server message count";
    ASSERT_EQ(piped.client_sent.size(), sync.client_sent.size())
        << what << ": client message count";
    for (std::size_t i = 0; i < sync.server_sent.size(); ++i)
        EXPECT_EQ(piped.server_sent[i], sync.server_sent[i])
            << what << ": server message " << i << " diverged";
    for (std::size_t i = 0; i < sync.client_sent.size(); ++i)
        EXPECT_EQ(piped.client_sent[i], sync.client_sent[i])
            << what << ": client message " << i << " diverged";
}

// ------------------------------------------------- session-level parity ---

TEST(PipelineParity, StreamingMatchesSynchronousAcrossBackendMatrix) {
    struct Cell {
        const char* name;
        pi::PiBackend backend;
        bool full_pi;
    };
    const Cell cells[] = {
        {"cheetah", pi::PiBackend::kCheetah, false},
        {"delphi", pi::PiBackend::kDelphi, false},
        {"full-pi", pi::PiBackend::kCheetah, true},
    };
    const mpc::NonlinearBackend nonlinears[] = {mpc::NonlinearBackend::kGarbledCircuit,
                                                mpc::NonlinearBackend::kOtMillionaire,
                                                mpc::NonlinearBackend::kFss};
    const nn::Sequential model = tiny_model();
    const Tensor input = tiny_input();
    for (const Cell& cell : cells) {
        // num_threads = 3 so the streamed HE responses come out of a real
        // parallel_for (the single-thread path would serialize anyway).
        auto opts = tiny_options(cell.full_pi);
        opts.num_threads = 3;
        const pi::CompiledModel compiled(model, opts);
        for (const auto nonlinear : nonlinears) {
            pi::SessionConfig config{.backend = cell.backend, .seed = 77};
            config.nonlinear = nonlinear;
            const std::string what =
                std::string(cell.name) + "/" + pi::nonlinear_name(nonlinear);
            const auto sync = run_session(compiled, config, input, /*pipeline=*/false);
            const auto piped = run_session(compiled, config, input, /*pipeline=*/true);
            ASSERT_GT(sync.server_sent.size(), 0U) << what;
            expect_same_transcript(sync, piped, what);
        }
    }
}

// ----------------------------------------------- transport-level parity ---

TEST(PipelineTransport, TcpWriterThreadPreservesFrameSequenceAndStats) {
    // The same message schedule over a synchronous and a pipelined
    // connection: the receiver must observe identical frames in order,
    // and the sender's enqueue-time accounting must match byte for byte
    // even with a phase flip mid-stream while frames are still queued.
    const auto run_one = [](bool pipelined) {
        net::TcpListener listener(/*port=*/0);
        std::vector<std::vector<std::uint8_t>> received;
        std::thread server_thread([&] {
            auto t = listener.accept(/*timeout_ms=*/10'000);
            t->set_recv_timeout(10'000);
            for (int i = 0; i < 6; ++i) received.push_back(t->recv_bytes());
            t->send_bytes(std::vector<std::uint8_t>{0xAA});  // release the client
            t->close();
        });
        auto t = net::connect("127.0.0.1", listener.port(), /*timeout_ms=*/10'000);
        t->set_recv_timeout(10'000);
        t->set_pipelined_sends(pipelined);
        Rng rng(17);
        for (int i = 0; i < 6; ++i) {
            t->set_phase(i < 3 ? net::Phase::kOffline : net::Phase::kOnline);
            std::vector<std::uint8_t> msg(static_cast<std::size_t>(64 + 1000 * i));
            for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
            t->send_bytes(msg);
        }
        t->flush_sends();
        (void)t->recv_bytes();
        const auto stats = t->stats();
        const auto waits = t->wait_stats();
        t->close();
        server_thread.join();
        return std::make_tuple(std::move(received), stats, waits);
    };

    const auto [sync_frames, sync_stats, sync_waits] = run_one(false);
    const auto [piped_frames, piped_stats, piped_waits] = run_one(true);
    ASSERT_EQ(piped_frames.size(), sync_frames.size());
    for (std::size_t i = 0; i < sync_frames.size(); ++i)
        EXPECT_EQ(piped_frames[i], sync_frames[i]) << "frame " << i << " diverged";
    EXPECT_EQ(piped_stats, sync_stats)
        << "pipelined sends changed the per-phase byte/flight accounting";
    // Wait accounting exists in both modes and never goes negative.
    EXPECT_GE(sync_waits.total_seconds(), 0.0);
    EXPECT_GE(piped_waits.total_seconds(), 0.0);
}

TEST(PipelineTransport, RecvWaitIsChargedToTheCurrentPhase) {
    net::DuplexChannel channel;
    net::InProcTransport a(channel, 0);
    net::InProcTransport b(channel, 1);
    b.set_phase(net::Phase::kOnline);
    std::thread sender([&] {
        std::this_thread::sleep_for(100ms);
        a.send_bytes(std::vector<std::uint8_t>{1, 2, 3});
    });
    (void)b.recv_bytes();
    sender.join();
    const auto waits = b.wait_stats();
    EXPECT_GE(waits.recv_seconds[static_cast<int>(net::Phase::kOnline)], 0.05)
        << "the 100 ms blocked recv must be visible in the online wait bucket";
    EXPECT_EQ(waits.recv_seconds[static_cast<int>(net::Phase::kOffline)], 0.0);
    EXPECT_EQ(waits.send_seconds[static_cast<int>(net::Phase::kOnline)], 0.0)
        << "in-proc sends never block";
    // The sender never waited on anything.
    EXPECT_EQ(a.wait_stats().total_seconds(), 0.0);
}

TEST(PipelineParity, PipelinedTcpSessionMatchesSynchronousInProc) {
    const nn::Sequential model = tiny_model();
    auto opts = tiny_options(/*full_pi=*/false);
    opts.num_threads = 3;
    const pi::CompiledModel compiled(model, opts);
    pi::SessionConfig config{.seed = 41};
    const Tensor input = tiny_input();

    config.pipeline = false;
    const pi::PiResult reference = pi::run_private_inference(compiled, config, input);

    config.pipeline = true;
    const pi::ServerSession server(compiled, config);
    const pi::ClientSession client(compiled, config);
    net::TcpListener listener(/*port=*/0);
    std::exception_ptr server_error;
    std::thread server_thread([&] {
        try {
            auto t = listener.accept(/*timeout_ms=*/10'000);
            t->set_recv_timeout(30'000);
            server.run(*t);
            t->close();
        } catch (...) {
            server_error = std::current_exception();
        }
    });
    auto t = net::connect("127.0.0.1", listener.port(), /*timeout_ms=*/10'000);
    t->set_recv_timeout(30'000);
    const Tensor logits = client.run(*t, input);
    const pi::PiStats client_stats = pi::stats_from_transport(*t);
    t->close();
    server_thread.join();
    ASSERT_FALSE(server_error) << "server side threw";

    ASSERT_TRUE(logits.same_shape(reference.logits));
    EXPECT_TRUE(logits.allclose(reference.logits, 0.0F))
        << "pipelined TCP diverged from the synchronous in-process run";
    EXPECT_EQ(client_stats.offline_bytes, reference.stats.offline_bytes);
    EXPECT_EQ(client_stats.online_bytes, reference.stats.online_bytes);
    EXPECT_EQ(client_stats.preprocess_bytes, reference.stats.preprocess_bytes);
    EXPECT_EQ(client_stats.offline_flights, reference.stats.offline_flights);
    EXPECT_EQ(client_stats.online_flights, reference.stats.online_flights);
    EXPECT_EQ(client_stats.preprocess_flights, reference.stats.preprocess_flights);
}

// ---------------------------------------------------- chaos containment ---

TEST(PipelineChaos, MidStreamDisconnectUnderPipeliningIsContained) {
    // A client that aborts while the server's pipelined HE response
    // chunks are in flight: the writer thread hits the dead socket
    // asynchronously, and the failure must still surface as an ordinary
    // classified client abort — never a hang, a crash, or a poisoned
    // pool. Shape follows fault_test.cpp's chaos harness.
    const nn::Sequential model = tiny_model();
    const pi::CompiledModel compiled(model, tiny_options(/*full_pi=*/false));
    pi::SessionConfig config{.seed = 53};
    const Tensor input = tiny_input();
    config.pipeline = false;
    const Tensor reference = pi::run_private_inference(compiled, config, input).logits;
    config.pipeline = true;  // explicit: the property under test

    struct ReportLog {
        std::mutex m;
        std::condition_variable cv;
        std::vector<pi::ServingPool::SessionReport> reports;
    };
    auto log = std::make_shared<ReportLog>();
    pi::ServingPool pool(compiled, config,
                         {.workers = 2, .queue_capacity = 2, .recv_timeout_ms = 30'000},
                         [log](const pi::ServingPool::SessionReport& r) {
                             {
                                 const std::lock_guard<std::mutex> lock(log->m);
                                 log->reports.push_back(r);
                             }
                             log->cv.notify_all();
                         });
    net::TcpListener listener(/*port=*/0);
    std::atomic<bool> stopped{false};
    std::thread accept_thread([&] {
        while (!stopped.load()) {
            try {
                auto transport = listener.try_accept(/*timeout_ms=*/50);
                if (transport) (void)pool.serve(std::move(transport));
            } catch (const std::exception&) {  // failed handshake; keep accepting
            }
        }
    });
    const auto wait_report = [&](std::size_t count) {
        std::unique_lock<std::mutex> lock(log->m);
        const bool arrived =
            log->cv.wait_for(lock, 60s, [&] { return log->reports.size() >= count; });
        require(arrived, "timed out waiting for a session report");
        return log->reports[count - 1];
    };

    pi::ArtifactCache cache;
    const auto run_client = [&](const net::FaultSchedule& schedule) {
        struct Outcome {
            bool ok = false;
            Tensor logits;
            std::size_t ops = 0;
        } out;
        auto tcp = net::connect("127.0.0.1", listener.port(), /*timeout_ms=*/30'000);
        tcp->set_recv_timeout(30'000);
        net::FaultyTransport faulty(*tcp, schedule);
        try {
            const pi::Bootstrap boot = pi::fetch_artifact(faulty, &cache);
            const pi::ClientSession session(*boot.model, config);
            out.logits = session.run(faulty, input);
            out.ok = true;
        } catch (const std::exception&) {  // chaos outcomes are data
        }
        out.ops = faulty.ops_seen();
        tcp->close();
        return out;
    };

    // Cold pass ships the artifact and warms the cache; the warm
    // counting pass learns the op address space every later run shares.
    std::size_t session_count = 0;
    {
        const auto cold = run_client({});
        ASSERT_TRUE(cold.ok);
        EXPECT_TRUE(wait_report(++session_count).ok);
    }
    std::size_t total_ops = 0;
    {
        const auto counting = run_client({});
        ASSERT_TRUE(counting.ok);
        EXPECT_TRUE(counting.logits.allclose(reference, 0.0F))
            << "pipelined serving diverged from the synchronous reference";
        EXPECT_TRUE(wait_report(++session_count).ok);
        total_ops = counting.ops;
    }
    ASSERT_GE(total_ops, 6U);

    // Disconnect mid-stream: while the conv layer's streamed response
    // chunks are arriving (past bootstrap + setup, before the reveal).
    for (const std::size_t at : {total_ops / 3, total_ops / 2}) {
        net::FaultSchedule schedule(
            {{.kind = net::FaultKind::kDisconnect, .op = net::FaultOp::kAny, .at_op = at}});
        const auto outcome = run_client(schedule);
        EXPECT_FALSE(outcome.ok) << "disconnect at op " << at;
        const auto report = wait_report(++session_count);
        if (!report.ok)
            EXPECT_EQ(report.failure, pi::FailureClass::kClientAbort)
                << "disconnect at op " << at << " classified as "
                << pi::failure_class_name(report.failure) << ": " << report.error;
    }

    // Containment: the pool still serves a clean client bit-identically.
    {
        const auto clean = run_client({});
        ASSERT_TRUE(clean.ok);
        EXPECT_TRUE(clean.logits.allclose(reference, 0.0F))
            << "post-chaos pipelined client diverged";
        EXPECT_TRUE(wait_report(++session_count).ok);
    }

    stopped.store(true);
    accept_thread.join();
    pool.drain();
    const auto stats = pool.stats();
    EXPECT_EQ(stats.accepted, session_count);
    EXPECT_EQ(stats.active, 0);
    EXPECT_EQ(stats.served + stats.failed, stats.accepted);
    std::uint64_t classified = 0;
    for (const std::uint64_t n : stats.failed_by_class) classified += n;
    EXPECT_EQ(classified, stats.failed) << "every failure must land in exactly one class";
}

}  // namespace
}  // namespace c2pi
