// Tests for the socket-backed transport (net/tcp.hpp): handshake and
// framed message semantics over loopback, graceful vs abrupt shutdown,
// and — the property the Table II cost model depends on — *parity* with
// the in-process DuplexChannel: a private inference over real TCP must
// produce bit-identical logits and identical per-phase byte/message/
// flight accounting on both endpoints.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "net/tcp.hpp"

// The parity tests deliberately run the SAME model/options the deployed
// pi_server/pi_client binaries use, so passing here certifies the demo
// pairing too (and avoids a fourth copy of the test topology).
#include "../examples/remote_common.hpp"

namespace c2pi::net {
namespace {

/// Run `server_fn` / `client_fn` as the two endpoints of one loopback TCP
/// connection (ephemeral port) and return each endpoint's final stats.
/// Exceptions from either thread are rethrown on the caller (server's
/// first, mirroring run_two_party).
struct LoopbackRun {
    ChannelStats server_stats, client_stats;
};

template <typename ServerFn, typename ClientFn>
LoopbackRun run_loopback(ServerFn&& server_fn, ClientFn&& client_fn) {
    TcpListener listener(/*port=*/0);
    LoopbackRun run;
    std::exception_ptr server_error, client_error;

    std::thread server_thread([&] {
        try {
            auto t = listener.accept(/*timeout_ms=*/10'000);
            server_fn(*t);
            run.server_stats = t->stats();
            t->close();
        } catch (...) {
            server_error = std::current_exception();
        }
    });
    try {
        auto t = connect("127.0.0.1", listener.port(), /*timeout_ms=*/10'000);
        client_fn(*t);
        run.client_stats = t->stats();
        t->close();
    } catch (...) {
        client_error = std::current_exception();
    }
    server_thread.join();
    if (server_error) std::rethrow_exception(server_error);
    if (client_error) std::rethrow_exception(client_error);
    return run;
}

void expect_stats_equal(const ChannelStats& a, const ChannelStats& b, const char* what) {
    for (int p = 0; p < kNumPhases; ++p) {
        for (int sender = 0; sender < 2; ++sender) {
            EXPECT_EQ(a.bytes[p][sender], b.bytes[p][sender])
                << what << ": bytes[" << p << "][" << sender << "]";
            EXPECT_EQ(a.messages[p][sender], b.messages[p][sender])
                << what << ": messages[" << p << "][" << sender << "]";
        }
        EXPECT_EQ(a.flights[p], b.flights[p]) << what << ": flights[" << p << "]";
    }
}

TEST(TcpTransport, HandshakeAndTypedRoundTrip) {
    std::vector<std::uint64_t> got;
    const auto run = run_loopback(
        [](Transport& t) {
            EXPECT_EQ(t.party_id(), 0);
            t.set_phase(Phase::kOffline);
            t.send_bytes(std::vector<std::uint8_t>(100));
            t.set_phase(Phase::kOnline);
            t.send_u64s(std::vector<std::uint64_t>{1, 0xFFFFFFFFFFFFFFFFULL, 42});
            EXPECT_EQ(t.recv_u64(), 7U);
        },
        [&](Transport& t) {
            EXPECT_EQ(t.party_id(), 1);
            EXPECT_EQ(t.recv_bytes().size(), 100U);
            got = t.recv_u64s();
            t.send_u64(7);
        });
    EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 0xFFFFFFFFFFFFFFFFULL, 42}));

    // Both endpoints reconstruct the same accounting: the phase tag in
    // each frame attributes received traffic to the sender's phase.
    expect_stats_equal(run.server_stats, run.client_stats, "server vs client");
    EXPECT_EQ(run.client_stats.bytes[static_cast<int>(Phase::kOffline)][0], 100U);
    EXPECT_EQ(run.client_stats.bytes[static_cast<int>(Phase::kOnline)][0], 24U);
    EXPECT_EQ(run.client_stats.bytes[static_cast<int>(Phase::kOnline)][1], 8U);
    EXPECT_EQ(run.client_stats.total_flights(), 2U);
}

TEST(TcpTransport, EmptyAndLargeMessagesSurviveFraming) {
    // Framing must preserve message boundaries: a 0-byte message arrives
    // as a 0-byte message, and a multi-megabyte one arrives whole even
    // though TCP delivers it in many segments.
    const std::size_t big = 3 * 1024 * 1024 + 13;
    (void)run_loopback(
        [&](Transport& t) {
            t.send_bytes({});
            std::vector<std::uint8_t> msg(big);
            for (std::size_t i = 0; i < big; ++i) msg[i] = static_cast<std::uint8_t>(i * 31);
            t.send_bytes(msg);
        },
        [&](Transport& t) {
            EXPECT_TRUE(t.recv_bytes().empty());
            const auto msg = t.recv_bytes();
            ASSERT_EQ(msg.size(), big);
            bool ok = true;
            for (std::size_t i = 0; i < big; ++i)
                ok = ok && msg[i] == static_cast<std::uint8_t>(i * 31);
            EXPECT_TRUE(ok) << "payload corrupted in transit";
        });
}

TEST(TcpTransport, CleanShutdownThrowsTypedErrorOnPendingRecv) {
    // Server ends the session immediately; the client's recv must fail
    // with the clean end-of-session error, not an EOF/reset surprise.
    try {
        (void)run_loopback([](Transport&) {},  // close() right after handshake
                           [](Transport& t) { (void)t.recv_bytes(); });
        FAIL() << "client recv after peer shutdown must throw";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("ended the session"), std::string::npos)
            << e.what();
    }
}

TEST(TcpTransport, BusyFrameIsTypedAtSessionStartOnly) {
    // Legal (PROTOCOL.md §4): BUSY in place of the ARTIFACT frame is the
    // typed load-shedding signal.
    (void)run_loopback([](TcpTransport& t) { t.send_busy(); },
                       [](TcpTransport& t) {
                           EXPECT_THROW((void)t.recv_artifact_bytes(), ServerBusy);
                       });

    // Illegal position: BUSY mid-protocol is a violation, not load
    // shedding — it must NOT surface as the typed ServerBusy.
    (void)run_loopback(
        [](TcpTransport& t) {
            t.send_bytes(std::vector<std::uint8_t>{1, 2, 3});
            t.send_busy();
        },
        [](TcpTransport& t) {
            (void)t.recv_bytes();
            try {
                (void)t.recv_bytes();
                FAIL() << "mid-protocol BUSY must raise";
            } catch (const ServerBusy&) {
                FAIL() << "mid-protocol BUSY must not read as load shedding";
            } catch (const Error&) {  // expected: protocol violation
            }
        });

    // Illegal sender: only party 0 sheds load; a client claiming "busy"
    // is a misbehaving peer.
    (void)run_loopback(
        [](TcpTransport& t) {
            try {
                (void)t.recv_bytes();
                FAIL() << "BUSY from party 1 must raise";
            } catch (const ServerBusy&) {
                FAIL() << "BUSY from party 1 must not read as load shedding";
            } catch (const Error&) {  // expected: protocol violation
            }
        },
        [](TcpTransport& t) { t.send_busy(); });
}

TEST(TcpTransport, RejectsNonC2piPeer) {
    // A peer speaking the wrong protocol (bad magic) is rejected during
    // the handshake, before any protocol data is exchanged.
    TcpListener listener(/*port=*/0);
    std::thread garbage_client([port = listener.port()] {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
        const char junk[8] = {'H', 'T', 'T', 'P', '/', '1', '.', '1'};
        (void)::send(fd, junk, sizeof(junk), MSG_NOSIGNAL);
        char sink[64];
        while (::recv(fd, sink, sizeof(sink), 0) > 0) {}
        ::close(fd);
    });
    EXPECT_THROW((void)listener.accept(/*timeout_ms=*/10'000), Error);
    garbage_client.join();
}

TEST(TcpTransport, ConnectTimesOutWhenNobodyListens) {
    // Grab an ephemeral port, then close the listener so nothing accepts.
    std::uint16_t dead_port;
    {
        TcpListener listener(/*port=*/0);
        dead_port = listener.port();
    }
    EXPECT_THROW((void)connect("127.0.0.1", dead_port, /*timeout_ms=*/300), Error);
}

// ------------------------------------------------------ inference parity ---

/// One inference over loopback TCP vs the same inference over the
/// in-process DuplexChannel: logits must be bit-identical and the
/// traffic accounting must agree byte-for-byte, per phase, on the
/// channel and on BOTH socket endpoints.
void check_tcp_parity(bool full_pi, pi::SessionConfig config) {
    const nn::Sequential model = demo::make_demo_model();
    const pi::CompiledModel compiled(model, demo::demo_compile_options(full_pi));

    Rng rng(100);
    const Tensor input = Tensor::uniform({1, 3, 16, 16}, rng, 0.0F, 1.0F);
    const pi::PiResult reference = pi::run_private_inference(compiled, config, input);

    const pi::ServerSession server(compiled, config);
    const pi::ClientSession client(compiled, config);
    Tensor logits;
    const auto run = run_loopback([&](Transport& t) { server.run(t); },
                                  [&](Transport& t) { logits = client.run(t, input); });

    ASSERT_TRUE(logits.same_shape(reference.logits));
    EXPECT_TRUE(logits.allclose(reference.logits, 0.0F))
        << "TCP transport changed the inference result";

    expect_stats_equal(run.server_stats, run.client_stats, "server vs client endpoint");
    const pi::PiStats tcp = pi::stats_from_channel(run.client_stats);
    EXPECT_EQ(tcp.offline_bytes, reference.stats.offline_bytes);
    EXPECT_EQ(tcp.online_bytes, reference.stats.online_bytes);
    EXPECT_EQ(tcp.preprocess_bytes, reference.stats.preprocess_bytes);
    EXPECT_EQ(tcp.offline_flights, reference.stats.offline_flights);
    EXPECT_EQ(tcp.online_flights, reference.stats.online_flights);
    EXPECT_EQ(tcp.preprocess_flights, reference.stats.preprocess_flights);
}

TEST(TcpInferenceParity, CryptoClearBoundaryWithNoise) {
    check_tcp_parity(/*full_pi=*/false, pi::SessionConfig{.noise_lambda = 0.05F, .seed = 42});
}

TEST(TcpInferenceParity, FullPiCheetah) {
    check_tcp_parity(/*full_pi=*/true, pi::SessionConfig{.seed = 9});
}

TEST(TcpInferenceParity, FullPiFssPreprocessKeysFrame) {
    // kFss ships its DCF key batch in the preprocessing KEYS frame; the
    // frame must survive the wire with the same accounting the in-process
    // channel reports (same bytes, same phase bucket) and identical logits.
    pi::SessionConfig config{.seed = 13};
    config.nonlinear = mpc::NonlinearBackend::kFss;
    check_tcp_parity(/*full_pi=*/true, config);
}

TEST(TcpInferenceParity, DelphiOfflinePhaseAttribution) {
    // Delphi charges HE linear work to the offline phase; the frame's
    // phase tag must carry that attribution across the wire.
    check_tcp_parity(/*full_pi=*/false,
                     pi::SessionConfig{.backend = pi::PiBackend::kDelphi, .seed = 11});
}

}  // namespace
}  // namespace c2pi::net
