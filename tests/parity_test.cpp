// Parity suite for the compile-time HE precompute + parallel serving
// path (PR 3): the tentpole claim is that the optimization is
// *transcript-preserving*. Asserted here, at three levels:
//
//  * mpc: the cache-based he_conv/he_matvec server against the span-based
//    seed path — byte-identical wire transcripts (every payload compared,
//    not just totals) and identical output shares, with and without a
//    thread pool;
//  * session: CompiledModel{num_threads=1} vs a multi-thread artifact —
//    bit-identical logits and identical per-phase ChannelStats across
//    Cheetah / Delphi / full-PI / crypto-clear-with-noise;
//  * transport: the multi-thread artifact over real loopback TCP vs the
//    in-process DuplexChannel — same logits, same per-phase accounting.

#include <gtest/gtest.h>

#include <thread>

#include "core/rng.hpp"
#include "he/kernels.hpp"
#include "mpc/linear.hpp"
#include "net/runtime.hpp"
#include "net/tcp.hpp"
#include "pi/session.hpp"

#include "../examples/remote_common.hpp"

namespace c2pi {
namespace {

/// Transport decorator that records every sent payload verbatim.
class RecordingTransport final : public net::Transport {
public:
    RecordingTransport(net::Transport& inner, std::vector<std::vector<std::uint8_t>>& sent)
        : Transport(inner.party_id()), inner_(&inner), sent_(&sent) {}

    void send_bytes(std::span<const std::uint8_t> data) override {
        sent_->emplace_back(data.begin(), data.end());
        inner_->set_phase(phase_);
        inner_->send_bytes(data);
    }
    [[nodiscard]] std::vector<std::uint8_t> recv_bytes() override { return inner_->recv_bytes(); }
    void recv_bytes_into(std::vector<std::uint8_t>& out) override {
        inner_->recv_bytes_into(out);
    }
    [[nodiscard]] net::ChannelStats stats() const override { return inner_->stats(); }

    // Bootstrap/preprocessing channels forward to the wrapped transport;
    // FSS key batches are protocol traffic and are recorded like any
    // other payload (artifact shipping is setup and is not).
    void send_artifact_bytes(std::span<const std::uint8_t> bytes) override {
        inner_->send_artifact_bytes(bytes);
    }
    [[nodiscard]] std::vector<std::uint8_t> recv_artifact_bytes() override {
        return inner_->recv_artifact_bytes();
    }
    void send_keys_bytes(std::span<const std::uint8_t> bytes) override {
        sent_->emplace_back(bytes.begin(), bytes.end());
        inner_->send_keys_bytes(bytes);
    }
    [[nodiscard]] std::vector<std::uint8_t> recv_keys_bytes() override {
        return inner_->recv_keys_bytes();
    }

private:
    net::Transport* inner_;
    std::vector<std::vector<std::uint8_t>>* sent_;
};

struct Transcript {
    std::vector<std::vector<std::uint8_t>> server_sent, client_sent;
    net::ChannelStats stats;
    std::vector<Ring> server_out, client_out;
};

/// One run of a linear-layer protocol with recorded transcripts. The
/// session seed fixes both parties' PRG streams, so two runs differ only
/// through the code path under test.
template <typename ServerFn, typename ClientFn>
Transcript run_recorded(const he::BfvContext& bfv, ServerFn&& server_fn, ClientFn&& client_fn) {
    const FixedPointFormat fmt{.frac_bits = 16};
    const crypto::Block128 session_seed{0xFEED, 0xF00D};
    net::DuplexChannel channel;
    Transcript tr;
    net::run_two_party(
        channel,
        [&](net::Transport& t) {
            RecordingTransport rec(t, tr.server_sent);
            mpc::PartyContext ctx(rec, fmt, bfv, session_seed);
            tr.server_out = server_fn(ctx);
        },
        [&](net::Transport& t) {
            RecordingTransport rec(t, tr.client_sent);
            mpc::PartyContext ctx(rec, fmt, bfv, session_seed);
            crypto::ChaCha20Prg key_prg(crypto::Block128{77, 78});
            ctx.set_client_key(bfv.keygen(key_prg));
            tr.client_out = client_fn(ctx);
        });
    tr.stats = channel.stats();
    return tr;
}

void expect_transcripts_equal(const Transcript& a, const Transcript& b, const char* what) {
    EXPECT_EQ(a.server_out, b.server_out) << what << ": server output shares diverged";
    EXPECT_EQ(a.client_out, b.client_out) << what << ": client output shares diverged";
    EXPECT_EQ(a.stats, b.stats) << what << ": channel stats diverged";
    ASSERT_EQ(a.server_sent.size(), b.server_sent.size()) << what << ": server message count";
    ASSERT_EQ(a.client_sent.size(), b.client_sent.size()) << what << ": client message count";
    for (std::size_t i = 0; i < a.server_sent.size(); ++i)
        EXPECT_EQ(a.server_sent[i], b.server_sent[i])
            << what << ": server ciphertext bytes of message " << i << " diverged";
    for (std::size_t i = 0; i < a.client_sent.size(); ++i)
        EXPECT_EQ(a.client_sent[i], b.client_sent[i])
            << what << ": client ciphertext bytes of message " << i << " diverged";
}

/// Random fixed-point ring values in [-2, 2].
std::vector<Ring> random_ring(std::size_t count, std::uint64_t seed) {
    Rng rng(seed);
    const FixedPointFormat fmt{.frac_bits = 16};
    std::vector<Ring> v(count);
    for (auto& x : v) x = fmt.encode(rng.uniform(-2.0F, 2.0F));
    return v;
}

TEST(MpcLinearParity, ConvCacheAndPoolPreserveTranscriptBytes) {
    // Geometry with two input groups so the per-(group, channel) weight
    // cache is exercised beyond the trivial single-group case.
    const he::ConvGeometry geo{.in_channels = 12,
                               .height = 8,
                               .width = 8,
                               .out_channels = 3,
                               .kernel = 3,
                               .stride = 1,
                               .pad = 1};
    const auto w = random_ring(
        static_cast<std::size_t>(geo.out_channels * geo.in_channels * geo.kernel * geo.kernel), 1);
    const auto bias = random_ring(static_cast<std::size_t>(geo.out_channels), 2);
    const auto x0 = random_ring(static_cast<std::size_t>(geo.in_channels * geo.height * geo.width), 3);
    const auto x1 = random_ring(static_cast<std::size_t>(geo.in_channels * geo.height * geo.width), 4);

    const he::BfvContext serial({.n = 1024, .limbs = 4, .noise_bound = 4});
    const auto seed_path = run_recorded(
        serial,
        [&](mpc::PartyContext& ctx) { return mpc::he_conv_server(ctx, geo, w, bias, x0); },
        [&](mpc::PartyContext& ctx) { return mpc::he_conv_client(ctx, geo, x1); });
    ASSERT_GT(seed_path.server_sent.size(), 0U);

    const mpc::ConvLayerCache serial_cache(serial, geo, w, bias);
    const auto cached = run_recorded(
        serial,
        [&](mpc::PartyContext& ctx) { return mpc::he_conv_server(ctx, serial_cache, x0); },
        [&](mpc::PartyContext& ctx) { return mpc::he_conv_client(ctx, serial_cache.enc, x1); });
    expect_transcripts_equal(seed_path, cached, "cache vs seed path");

    const core::ThreadPool pool(3);
    const he::BfvContext pooled({.n = 1024, .limbs = 4, .noise_bound = 4, .pool = &pool});
    const mpc::ConvLayerCache pooled_cache(pooled, geo, w, bias);
    const auto parallel = run_recorded(
        pooled,
        [&](mpc::PartyContext& ctx) { return mpc::he_conv_server(ctx, pooled_cache, x0); },
        [&](mpc::PartyContext& ctx) { return mpc::he_conv_client(ctx, pooled_cache.enc, x1); });
    expect_transcripts_equal(seed_path, parallel, "parallel cache vs seed path");
}

TEST(MpcLinearParity, MatvecCacheAndPoolPreserveTranscriptBytes) {
    const std::int64_t in = 96, out = 25;  // 1024/96 -> 10 rows/block, 3 blocks (last partial)
    const auto w = random_ring(static_cast<std::size_t>(in * out), 5);
    const auto bias = random_ring(static_cast<std::size_t>(out), 6);
    const auto x0 = random_ring(static_cast<std::size_t>(in), 7);
    const auto x1 = random_ring(static_cast<std::size_t>(in), 8);

    const he::BfvContext serial({.n = 1024, .limbs = 4, .noise_bound = 4});
    const auto seed_path = run_recorded(
        serial,
        [&](mpc::PartyContext& ctx) { return mpc::he_matvec_server(ctx, in, out, w, bias, x0); },
        [&](mpc::PartyContext& ctx) { return mpc::he_matvec_client(ctx, in, out, x1); });

    const core::ThreadPool pool(3);
    const he::BfvContext pooled({.n = 1024, .limbs = 4, .noise_bound = 4, .pool = &pool});
    const mpc::MatVecLayerCache cache(pooled, in, out, w, bias);
    const auto parallel = run_recorded(
        pooled,
        [&](mpc::PartyContext& ctx) { return mpc::he_matvec_server(ctx, cache, x0); },
        [&](mpc::PartyContext& ctx) { return mpc::he_matvec_client(ctx, cache.enc, x1); });
    expect_transcripts_equal(seed_path, parallel, "parallel cache vs seed path");

    // The correctness of the shares themselves: reconstruct and compare
    // against the plain ring matvec (scale 2f).
    std::vector<Ring> x(static_cast<std::size_t>(in));
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = x0[i] + x1[i];
    const auto expect = mpc::ring_matvec(w, x, in, out);
    for (std::int64_t o = 0; o < out; ++o) {
        const Ring got = parallel.server_out[static_cast<std::size_t>(o)] +
                         parallel.client_out[static_cast<std::size_t>(o)];
        EXPECT_EQ(got, expect[static_cast<std::size_t>(o)] + bias[static_cast<std::size_t>(o)])
            << "row " << o;
    }
}

// ----------------------------------------------------- session-level parity ---

void expect_pi_stats_equal(const pi::PiStats& a, const pi::PiStats& b, const char* what) {
    EXPECT_EQ(a.offline_bytes, b.offline_bytes) << what;
    EXPECT_EQ(a.online_bytes, b.online_bytes) << what;
    EXPECT_EQ(a.offline_flights, b.offline_flights) << what;
    EXPECT_EQ(a.online_flights, b.online_flights) << what;
}

void check_thread_parity(bool full_pi, const pi::SessionConfig& config) {
    const nn::Sequential model = demo::make_demo_model();
    auto serial_opts = demo::demo_compile_options(full_pi);
    serial_opts.num_threads = 1;
    auto parallel_opts = demo::demo_compile_options(full_pi);
    parallel_opts.num_threads = 3;
    const pi::CompiledModel serial(model, serial_opts);
    const pi::CompiledModel parallel(model, parallel_opts);
    EXPECT_EQ(serial.num_threads(), 1);
    EXPECT_EQ(parallel.num_threads(), 3);

    Rng rng(200);
    const Tensor input = Tensor::uniform({1, 3, 16, 16}, rng, 0.0F, 1.0F);
    const pi::PiResult a = pi::run_private_inference(serial, config, input);
    const pi::PiResult b = pi::run_private_inference(parallel, config, input);

    ASSERT_TRUE(a.logits.same_shape(b.logits));
    EXPECT_TRUE(a.logits.allclose(b.logits, 0.0F))
        << "num_threads changed the inference result";
    expect_pi_stats_equal(a.stats, b.stats, "serial vs parallel artifact");
}

TEST(SessionThreadParity, CheetahCryptoClearWithNoise) {
    check_thread_parity(/*full_pi=*/false, pi::SessionConfig{.noise_lambda = 0.05F, .seed = 42});
}

TEST(SessionThreadParity, DelphiOfflineLinear) {
    check_thread_parity(/*full_pi=*/false,
                        pi::SessionConfig{.backend = pi::PiBackend::kDelphi, .seed = 11});
}

TEST(SessionThreadParity, FullPiCheetah) {
    check_thread_parity(/*full_pi=*/true, pi::SessionConfig{.seed = 9});
}

TEST(SessionThreadParity, WeightlessClientModelSkipsWeightPrecompute) {
    // An input-owner process compiles a pi::ClientModel from the public
    // artifact alone: encoder geometry only — no weight NTTs, no weight
    // memory, same protocol. Serve it against the server's CompiledModel
    // and require the logits to match the shared-artifact reference.
    // (A ServerSession over a ClientModel is not a runtime error anymore:
    // the type split makes it unrepresentable.)
    const nn::Sequential model = demo::make_demo_model();
    const pi::SessionConfig config{.noise_lambda = 0.05F, .seed = 42};
    const pi::CompiledModel server_side(model, demo::demo_compile_options(/*full_pi=*/false));
    const pi::ClientModel client_side(server_side.artifact());
    for (const auto& cache : client_side.layer_caches()) {
        if (cache.conv != nullptr) EXPECT_TRUE(cache.conv->w_ntt.empty());
        if (cache.matvec != nullptr) EXPECT_TRUE(cache.matvec->w_ntt.empty());
    }

    Rng rng(200);
    const Tensor input = Tensor::uniform({1, 3, 16, 16}, rng, 0.0F, 1.0F);
    const pi::PiResult reference = pi::run_private_inference(server_side, config, input);

    const pi::ServerSession server(server_side, config);
    const pi::ClientSession client(client_side, config);
    net::DuplexChannel channel;
    Tensor logits;
    (void)net::run_two_party(
        channel, [&](net::Transport& t) { server.run(t); },
        [&](net::Transport& t) { logits = client.run(t, input); });
    ASSERT_TRUE(logits.same_shape(reference.logits));
    EXPECT_TRUE(logits.allclose(reference.logits, 0.0F));
}

// ----------------------------------------------- kernel-dispatch parity ---
// The SIMD kernel tiers (he/kernels*.cpp) claim bit-identical outputs to
// the scalar reference, so swapping the dispatch must be invisible at
// every level of a full private inference: logits, every wire payload,
// and the per-phase traffic accounting.

struct SessionTranscript {
    std::vector<std::vector<std::uint8_t>> server_sent, client_sent;
    Tensor logits;
    net::ChannelStats client_stats;
};

SessionTranscript run_full_session(const he::kernels::Kernels* forced, pi::PiBackend backend,
                                   mpc::NonlinearBackend nonlinear) {
    // Force the tier for the whole run, compile included: weight
    // precompute (NTT + Shoup companions) goes through the kernels too.
    he::kernels::set_active_for_testing(forced);
    const nn::Sequential model = demo::make_demo_model();
    const pi::CompiledModel compiled(model, demo::demo_compile_options(/*full_pi=*/true));
    pi::SessionConfig config{.backend = backend, .seed = 5150};
    config.nonlinear = nonlinear;
    const pi::ServerSession server(compiled, config);
    const pi::ClientSession client(compiled, config);
    Rng rng(400);
    const Tensor input = Tensor::uniform({1, 3, 16, 16}, rng, 0.0F, 1.0F);

    SessionTranscript tr;
    net::DuplexChannel channel;
    (void)net::run_two_party(
        channel,
        [&](net::Transport& t) {
            RecordingTransport rec(t, tr.server_sent);
            server.run(rec);
        },
        [&](net::Transport& t) {
            RecordingTransport rec(t, tr.client_sent);
            tr.logits = client.run(rec, input);
            tr.client_stats = rec.stats();
        });
    he::kernels::set_active_for_testing(nullptr);
    return tr;
}

TEST(KernelDispatchParity, ScalarVsBestBitIdenticalAcrossBackends) {
    const auto* best = &he::kernels::active();
    std::cout << "[ kernels  ] parity run: scalar vs " << best->name << "\n";
    if (best->tier == he::kernels::Tier::kScalar)
        GTEST_SKIP() << "no SIMD tier on this CPU/build; scalar-vs-scalar is vacuous";

    struct Combo {
        const char* name;
        pi::PiBackend backend;
        mpc::NonlinearBackend nonlinear;
    };
    const Combo combos[] = {
        {"cheetah/ot", pi::PiBackend::kCheetah, mpc::NonlinearBackend::kOtMillionaire},
        {"cheetah/fss", pi::PiBackend::kCheetah, mpc::NonlinearBackend::kFss},
        {"delphi/gc", pi::PiBackend::kDelphi, mpc::NonlinearBackend::kGarbledCircuit},
        {"delphi/fss", pi::PiBackend::kDelphi, mpc::NonlinearBackend::kFss},
    };
    for (const auto& combo : combos) {
        const auto scalar_run =
            run_full_session(he::kernels::scalar_kernels(), combo.backend, combo.nonlinear);
        const auto best_run = run_full_session(best, combo.backend, combo.nonlinear);

        ASSERT_TRUE(best_run.logits.same_shape(scalar_run.logits)) << combo.name;
        EXPECT_TRUE(best_run.logits.allclose(scalar_run.logits, 0.0F))
            << combo.name << ": kernel tier changed the logits";
        EXPECT_EQ(best_run.client_stats, scalar_run.client_stats)
            << combo.name << ": per-phase stats diverged";
        ASSERT_EQ(best_run.server_sent.size(), scalar_run.server_sent.size()) << combo.name;
        ASSERT_EQ(best_run.client_sent.size(), scalar_run.client_sent.size()) << combo.name;
        for (std::size_t i = 0; i < scalar_run.server_sent.size(); ++i)
            EXPECT_EQ(best_run.server_sent[i], scalar_run.server_sent[i])
                << combo.name << ": server message " << i << " diverged";
        for (std::size_t i = 0; i < scalar_run.client_sent.size(); ++i)
            EXPECT_EQ(best_run.client_sent[i], scalar_run.client_sent[i])
                << combo.name << ": client message " << i << " diverged";
    }
}

// --------------------------------------------------- transport-level parity ---

TEST(SessionThreadParity, MultiThreadArtifactOverTcpMatchesInProc) {
    const nn::Sequential model = demo::make_demo_model();
    auto opts = demo::demo_compile_options(/*full_pi=*/false);
    opts.num_threads = 3;
    const pi::CompiledModel compiled(model, opts);
    const pi::SessionConfig config{.noise_lambda = 0.05F, .seed = 21};

    Rng rng(300);
    const Tensor input = Tensor::uniform({1, 3, 16, 16}, rng, 0.0F, 1.0F);
    const pi::PiResult reference = pi::run_private_inference(compiled, config, input);

    const pi::ServerSession server(compiled, config);
    const pi::ClientSession client(compiled, config);
    net::TcpListener listener(/*port=*/0);
    net::ChannelStats client_stats;
    Tensor logits;
    std::exception_ptr server_error;
    std::thread server_thread([&] {
        try {
            auto t = listener.accept(/*timeout_ms=*/10'000);
            server.run(*t);
            t->close();
        } catch (...) {
            server_error = std::current_exception();
        }
    });
    auto t = net::connect("127.0.0.1", listener.port(), /*timeout_ms=*/10'000);
    logits = client.run(*t, input);
    client_stats = t->stats();
    t->close();
    server_thread.join();
    ASSERT_FALSE(server_error) << "server side threw";

    ASSERT_TRUE(logits.same_shape(reference.logits));
    EXPECT_TRUE(logits.allclose(reference.logits, 0.0F));
    expect_pi_stats_equal(pi::stats_from_channel(client_stats), reference.stats,
                          "TCP vs in-process with threads");
}

}  // namespace
}  // namespace c2pi
