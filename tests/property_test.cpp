// Cross-module property tests: secure inference on randomized small
// architectures must match plaintext inference (parameterized over
// architecture variants including the AvgPool path), the millionaire
// protocol at ring boundary values, GC max circuits across window sizes,
// and end-to-end determinism of the whole pipeline.

#include <gtest/gtest.h>

#include <random>

#include "crypto/garbling.hpp"
#include "he/kernels.hpp"
#include "he/ntt.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"
#include "pi/session.hpp"
#include "mpc/nonlinear.hpp"
#include "net/runtime.hpp"

namespace c2pi {
namespace {

// ---------------------------------------------------- engine x architectures ---

struct ArchCase {
    const char* name;
    pi::PiBackend backend;
    int variant;
};

nn::Sequential build_variant(int variant, Rng& rng) {
    nn::Sequential m;
    switch (variant) {
        case 0:  // conv -> relu -> fc (minimal)
            m.emplace<nn::Conv2d>(3, 4, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
            m.emplace<nn::Relu>();
            m.emplace<nn::Flatten>();
            m.emplace<nn::Linear>(4 * 8 * 8, 5, rng);
            break;
        case 1:  // avgpool path (linear pooling under MPC is local)
            m.emplace<nn::Conv2d>(3, 4, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
            m.emplace<nn::Relu>();
            m.emplace<nn::AvgPool2d>(2, 2);
            m.emplace<nn::Flatten>();
            m.emplace<nn::Linear>(4 * 4 * 4, 5, rng);
            break;
        case 2:  // stride-2 conv, no padding, maxpool, two fcs
            m.emplace<nn::Conv2d>(3, 6, ops::ConvSpec{.kernel = 3, .stride = 2, .pad = 1}, rng);
            m.emplace<nn::Relu>();
            m.emplace<nn::MaxPool2d>(2, 2);
            m.emplace<nn::Flatten>();
            m.emplace<nn::Linear>(6 * 2 * 2, 8, rng);
            m.emplace<nn::Relu>();
            m.emplace<nn::Linear>(8, 5, rng);
            break;
        default:  // conv stack without bias
            m.emplace<nn::Conv2d>(3, 4, ops::ConvSpec{.kernel = 1, .stride = 1, .pad = 0}, rng,
                                  /*with_bias=*/false);
            m.emplace<nn::Relu>();
            m.emplace<nn::Conv2d>(4, 4, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
            m.emplace<nn::Relu>();
            m.emplace<nn::Flatten>();
            m.emplace<nn::Linear>(4 * 8 * 8, 5, rng);
            break;
    }
    return m;
}

class EngineArchTest : public ::testing::TestWithParam<ArchCase> {};

TEST_P(EngineArchTest, SecureInferenceMatchesPlaintext) {
    const auto param = GetParam();
    Rng rng(33 + static_cast<std::uint64_t>(param.variant));
    nn::Sequential model = build_variant(param.variant, rng);
    const Tensor x = Tensor::uniform({1, 3, 8, 8}, rng, 0.0F, 1.0F);
    const Tensor want = model.forward(x);

    pi::CompiledModel::Options copts;
    copts.input_chw = {3, 8, 8};
    copts.he_ring_degree = 512;
    const pi::CompiledModel compiled(model, copts);
    const auto res =
        pi::run_private_inference(compiled, pi::SessionConfig{.backend = param.backend}, x);
    ASSERT_TRUE(res.logits.same_shape(want));
    for (std::int64_t i = 0; i < want.numel(); ++i)
        EXPECT_NEAR(res.logits[i], want[i], 0.02F) << param.name << " logit " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, EngineArchTest,
    ::testing::Values(ArchCase{"minimal_cheetah", pi::PiBackend::kCheetah, 0},
                      ArchCase{"avgpool_cheetah", pi::PiBackend::kCheetah, 1},
                      ArchCase{"stride2_cheetah", pi::PiBackend::kCheetah, 2},
                      ArchCase{"nobias_cheetah", pi::PiBackend::kCheetah, 3},
                      ArchCase{"minimal_delphi", pi::PiBackend::kDelphi, 0},
                      ArchCase{"avgpool_delphi", pi::PiBackend::kDelphi, 1},
                      ArchCase{"stride2_delphi", pi::PiBackend::kDelphi, 2}));

TEST(EngineDeterminism, SameSeedSameTrafficAndLogits) {
    Rng rng(44);
    nn::Sequential model = build_variant(0, rng);
    const Tensor x = Tensor::uniform({1, 3, 8, 8}, rng, 0.0F, 1.0F);
    pi::CompiledModel::Options copts;
    copts.input_chw = {3, 8, 8};
    copts.he_ring_degree = 512;
    const pi::SessionConfig cfg{.seed = 777};
    const pi::CompiledModel a(model, copts);
    const auto ra = pi::run_private_inference(a, cfg, x);
    const pi::CompiledModel b(model, copts);
    const auto rb = pi::run_private_inference(b, cfg, x);
    EXPECT_TRUE(ra.logits.allclose(rb.logits, 0.0F));
    EXPECT_EQ(ra.stats.total_bytes(), rb.stats.total_bytes());
    EXPECT_EQ(ra.stats.total_flights(), rb.stats.total_flights());
}

// ----------------------------------------------------- millionaire boundaries ---

TEST(MillionaireEdges, RingBoundaryValues) {
    net::DuplexChannel channel;
    const FixedPointFormat fmt{.frac_bits = 16};
    const he::BfvContext bfv({.n = 256, .limbs = 4});
    constexpr Ring kLow = (Ring{1} << 63) - 1;
    // Edge pairs (a, c) for 1{a > c} on 63-bit operands.
    const std::vector<Ring> a{0, kLow, kLow, 0, 1, kLow - 1, 12345};
    const std::vector<Ring> c{0, kLow, 0, kLow, 0, kLow, 12345};
    mpc::BitVec b0, b1;
    net::run_two_party(
        channel,
        [&](net::Transport& t) {
            mpc::PartyContext ctx(t, fmt, bfv, crypto::Block128{3, 3});
            b0 = mpc::millionaire_party0(ctx, a);
        },
        [&](net::Transport& t) {
            mpc::PartyContext ctx(t, fmt, bfv, crypto::Block128{3, 3});
            b1 = mpc::millionaire_party1(ctx, c);
        });
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ((b0[i] ^ b1[i]) != 0, a[i] > c[i]) << "pair " << i;
}

// ------------------------------------------------------------ GC max windows ---

class MaxCircuitWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxCircuitWidthTest, GarbledMaxMatchesPlain) {
    const int k = GetParam();
    const crypto::Circuit circuit = crypto::build_max_circuit(64, k);
    crypto::ChaCha20Prg grg(crypto::Block128{10, static_cast<std::uint64_t>(k)});
    Rng rng(55 + static_cast<std::uint64_t>(k));
    for (int trial = 0; trial < 5; ++trial) {
        const crypto::Garbling g = crypto::garble(circuit, grg);
        std::vector<std::uint8_t> gbits, ebits;
        std::vector<std::int64_t> values(static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i) {
            values[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(rng.next_u64()) >> 4;
            const std::uint64_t x1 = rng.next_u64();
            const std::uint64_t x0 =
                static_cast<std::uint64_t>(values[static_cast<std::size_t>(i)]) - x1;
            const auto b0 = crypto::to_bits(x0, 64);
            const auto b1 = crypto::to_bits(x1, 64);
            gbits.insert(gbits.end(), b0.begin(), b0.end());
            ebits.insert(ebits.end(), b1.begin(), b1.end());
        }
        const std::uint64_t r = rng.next_u64();
        const auto neg_r = crypto::to_bits(~r + 1, 64);
        gbits.insert(gbits.end(), neg_r.begin(), neg_r.end());

        std::vector<crypto::Block128> ga, ea;
        for (std::size_t i = 0; i < gbits.size(); ++i) ga.push_back(g.garbler_label(i, gbits[i]));
        for (std::size_t i = 0; i < ebits.size(); ++i) ea.push_back(g.evaluator_label(i, ebits[i]));
        const auto out = crypto::evaluate_garbled(circuit, g.tables, ga, ea, g.output_decode);
        const std::int64_t mx = *std::max_element(values.begin(), values.end());
        EXPECT_EQ(crypto::from_bits(out), static_cast<std::uint64_t>(mx) - r) << "k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, MaxCircuitWidthTest, ::testing::Values(2, 3, 4, 9));

// ---------------------------------------------------------- truncation sweep ---

class TruncationSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweepTest, SharewiseTruncationBoundedError) {
    const int frac = GetParam();
    const FixedPointFormat fmt{.frac_bits = frac};
    Rng rng(66);
    for (int trial = 0; trial < 100; ++trial) {
        const double v = rng.uniform(-50.0F, 50.0F);
        const Ring scaled = static_cast<Ring>(
            static_cast<std::int64_t>(std::llround(v * fmt.scale() * fmt.scale())));
        const Ring s0 = rng.next_u64();
        const Ring s1 = scaled - s0;
        const Ring back = fmt.truncate(s0) + fmt.truncate(s1);
        EXPECT_NEAR(fmt.decode(back), v, 3.0 / fmt.scale());
    }
}

INSTANTIATE_TEST_SUITE_P(FracBits, TruncationSweepTest, ::testing::Values(8, 12, 16, 20));

// ------------------------------------------------- kernel variant properties ---
// Randomized algebraic properties of the SIMD kernel layer, >= 1000
// seeds per registered variant (unsupported ISAs are skipped by
// kernels::supported() at runtime). The differential suite in
// kernels_test.cpp pins variants against each other; these pin each
// variant against the mathematics.

TEST(KernelProperty, NttRoundTripIdentityPerVariant) {
    constexpr std::size_t n = 64;
    const he::u64 p = he::next_ntt_prime((1ULL << 49) + 1, 2 * n);
    const he::NttTables tables(p, n);
    for (const auto* k : he::kernels::supported()) {
        for (std::uint64_t seed = 0; seed < 1000; ++seed) {
            std::mt19937_64 rng(seed * 6364136223846793005ULL + 1442695040888963407ULL);
            std::vector<he::u64> a(n);
            for (auto& x : a) x = rng() % p;
            std::vector<he::u64> b = a;
            tables.forward_with(*k, b);
            tables.inverse_with(*k, b);
            ASSERT_EQ(b, a) << "variant " << k->name << " seed " << seed;
        }
    }
}

TEST(KernelProperty, MulShoupMatchesInt128OraclePerVariant) {
    constexpr std::size_t n = 16;
    const he::u64 p = he::next_ntt_prime((1ULL << 49) + 1, 8192);
    for (const auto* k : he::kernels::supported()) {
        for (std::uint64_t seed = 0; seed < 1000; ++seed) {
            std::mt19937_64 rng(seed ^ 0x9E3779B97F4A7C15ULL);
            std::vector<he::u64> a(n), w(n), ws(n), got(n);
            for (std::size_t j = 0; j < n; ++j) {
                a[j] = rng() % p;
                w[j] = rng() % p;
                ws[j] = he::shoup_precompute(w[j], p);
            }
            k->mul_shoup(got.data(), a.data(), w.data(), ws.data(), n, p);
            for (std::size_t j = 0; j < n; ++j) {
                const he::u64 want =
                    static_cast<he::u64>(static_cast<he::u128>(a[j]) * w[j] % p);
                ASSERT_EQ(got[j], want)
                    << "variant " << k->name << " seed " << seed << " j " << j;
            }
        }
    }
}

TEST(KernelProperty, AccumulateLinearityPerVariant) {
    constexpr std::size_t n = 32;
    const he::u64 p = he::next_ntt_prime((1ULL << 49) + 1, 8192);
    for (const auto* k : he::kernels::supported()) {
        for (std::uint64_t seed = 0; seed < 1000; ++seed) {
            std::mt19937_64 rng(seed * 0xD1342543DE82EF95ULL + 7);
            std::vector<he::u64> a(n), b(n), w(n), ws(n);
            for (std::size_t j = 0; j < n; ++j) {
                a[j] = rng() % p;
                b[j] = rng() % p;
                w[j] = rng() % p;
                ws[j] = he::shoup_precompute(w[j], p);
            }
            // acc = a*w, then += b*w — must equal (a + b)*w by the oracle.
            std::vector<he::u64> acc(n, 0);
            k->mul_shoup_accumulate(acc.data(), a.data(), w.data(), ws.data(), n, p);
            k->mul_shoup_accumulate(acc.data(), b.data(), w.data(), ws.data(), n, p);
            for (std::size_t j = 0; j < n; ++j) {
                const he::u128 sum = static_cast<he::u128>(a[j]) + b[j];
                const he::u64 want = static_cast<he::u64>(sum % p * w[j] % p);
                ASSERT_EQ(acc[j], want)
                    << "variant " << k->name << " seed " << seed << " j " << j;
            }
        }
    }
}

}  // namespace
}  // namespace c2pi
