// Tests for the synthetic dataset: determinism, value ranges, class
// structure (same-class images more similar than cross-class), batching.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "metrics/ssim.hpp"

namespace c2pi {
namespace {

data::DatasetConfig small_config() {
    auto cfg = data::DatasetConfig::cifar10_like();
    cfg.train_size = 60;
    cfg.test_size = 20;
    cfg.image_size = 16;
    return cfg;
}

TEST(SyntheticData, DeterministicFromSeed) {
    data::SyntheticImageDataset a(small_config());
    data::SyntheticImageDataset b(small_config());
    ASSERT_EQ(a.train().size(), b.train().size());
    for (std::size_t i = 0; i < a.train().size(); ++i) {
        EXPECT_TRUE(a.train()[i].image.allclose(b.train()[i].image, 0.0F));
        EXPECT_EQ(a.train()[i].label, b.train()[i].label);
    }
}

TEST(SyntheticData, PixelValuesInUnitRange) {
    data::SyntheticImageDataset ds(small_config());
    for (const auto& s : ds.train()) {
        for (std::int64_t i = 0; i < s.image.numel(); ++i) {
            EXPECT_GE(s.image[i], 0.0F);
            EXPECT_LE(s.image[i], 1.0F);
        }
    }
}

TEST(SyntheticData, LabelsCoverAllClasses) {
    data::SyntheticImageDataset ds(small_config());
    std::vector<int> counts(10, 0);
    for (const auto& s : ds.train()) ++counts[static_cast<std::size_t>(s.label)];
    for (const int c : counts) EXPECT_GT(c, 0);
}

TEST(SyntheticData, SameClassMoreSimilarThanCrossClass) {
    auto cfg = small_config();
    cfg.train_size = 100;
    data::SyntheticImageDataset ds(cfg);
    // Average SSIM between pairs of class-0 images vs class-0/class-5 pairs.
    std::vector<const Tensor*> class0, class5;
    for (const auto& s : ds.train()) {
        if (s.label == 0) class0.push_back(&s.image);
        if (s.label == 5) class5.push_back(&s.image);
    }
    ASSERT_GE(class0.size(), 3U);
    ASSERT_GE(class5.size(), 3U);
    double same = 0.0, cross = 0.0;
    int n = 0;
    for (int i = 0; i < 3; ++i) {
        same += metrics::ssim(*class0[static_cast<std::size_t>(i)],
                              *class0[static_cast<std::size_t>(i) + 1]);
        cross += metrics::ssim(*class0[static_cast<std::size_t>(i)],
                               *class5[static_cast<std::size_t>(i)]);
        ++n;
    }
    EXPECT_GT(same / n, cross / n);
}

TEST(SyntheticData, TrainTestDisjointPixels) {
    data::SyntheticImageDataset ds(small_config());
    // Same generator parameters but different jitter: images must differ.
    EXPECT_FALSE(ds.train()[0].image.allclose(ds.test()[0].image, 1e-4F));
}

TEST(SyntheticData, Cifar100LikeHasTwentyClasses) {
    auto cfg = data::DatasetConfig::cifar100_like();
    cfg.train_size = 40;
    cfg.test_size = 20;
    data::SyntheticImageDataset ds(cfg);
    std::int64_t max_label = 0;
    for (const auto& s : ds.train()) max_label = std::max(max_label, s.label);
    EXPECT_EQ(max_label, 19);
}

TEST(SyntheticData, MakeBatchStacksImages) {
    data::SyntheticImageDataset ds(small_config());
    const std::vector<std::size_t> idx{0, 3, 5};
    const Tensor batch = ds.make_batch(ds.train(), idx);
    EXPECT_EQ(batch.dim(0), 3);
    EXPECT_EQ(batch.dim(1), 3);
    EXPECT_EQ(batch.dim(2), 16);
    // Row 1 equals sample 3.
    const auto& img = ds.train()[3].image;
    for (std::int64_t i = 0; i < img.numel(); ++i)
        EXPECT_FLOAT_EQ(batch[img.numel() + i], img[i]);
    const auto labels = ds.make_labels(ds.train(), idx);
    EXPECT_EQ(labels[2], ds.train()[5].label);
}

TEST(SyntheticData, StackImagesClampsCount) {
    data::SyntheticImageDataset ds(small_config());
    const Tensor batch = ds.stack_images(ds.test(), 9999);
    EXPECT_EQ(batch.dim(0), static_cast<std::int64_t>(ds.test().size()));
}

}  // namespace
}  // namespace c2pi
