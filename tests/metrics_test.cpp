// Tests for SSIM / PSNR / accuracy metrics, including the SSIM axioms the
// boundary search relies on (identity => 1, noise monotonically degrades).

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "metrics/ssim.hpp"

namespace c2pi {
namespace {

Tensor test_image(std::uint64_t seed, std::int64_t hw = 16) {
    // Smooth structured image: gradient + sinusoid (SSIM needs structure).
    Rng rng(seed);
    Tensor img({3, hw, hw});
    const float phase = rng.uniform(0.0F, 6.28F);
    for (std::int64_t c = 0; c < 3; ++c)
        for (std::int64_t y = 0; y < hw; ++y)
            for (std::int64_t x = 0; x < hw; ++x)
                img[(c * hw + y) * hw + x] =
                    0.5F + 0.3F * std::sin(0.7F * static_cast<float>(x + y) + phase) +
                    0.1F * static_cast<float>(y) / static_cast<float>(hw);
    return img;
}

TEST(Ssim, IdenticalImagesScoreOne) {
    const Tensor img = test_image(1);
    EXPECT_NEAR(metrics::ssim(img, img), 1.0, 1e-9);
}

TEST(Ssim, SymmetricInArguments) {
    const Tensor a = test_image(1);
    Tensor b = a;
    Rng rng(2);
    for (std::int64_t i = 0; i < b.numel(); ++i) b[i] += rng.normal(0.0F, 0.1F);
    EXPECT_NEAR(metrics::ssim(a, b), metrics::ssim(b, a), 1e-12);
}

TEST(Ssim, BoundedAboveByOne) {
    const Tensor a = test_image(3);
    const Tensor b = test_image(4);
    EXPECT_LE(metrics::ssim(a, b), 1.0 + 1e-9);
}

class SsimNoiseTest : public ::testing::TestWithParam<float> {};

TEST_P(SsimNoiseTest, NoiseDegradesSimilarity) {
    const float sigma = GetParam();
    const Tensor a = test_image(5);
    Tensor b = a;
    Rng rng(6);
    for (std::int64_t i = 0; i < b.numel(); ++i) b[i] += rng.normal(0.0F, sigma);
    const double s = metrics::ssim(a, b);
    EXPECT_LT(s, 1.0);
    // Heavier noise must score lower than lighter noise.
    Tensor c = a;
    for (std::int64_t i = 0; i < c.numel(); ++i) c[i] += rng.normal(0.0F, sigma * 3.0F);
    EXPECT_LT(metrics::ssim(a, c), s);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, SsimNoiseTest, ::testing::Values(0.02F, 0.05F, 0.1F));

TEST(Ssim, UnstructuredNoiseScoresLow) {
    const Tensor a = test_image(7);
    Rng rng(8);
    const Tensor noise = Tensor::uniform(a.shape(), rng, 0.0F, 1.0F);
    EXPECT_LT(metrics::ssim(a, noise), 0.35);
}

TEST(Ssim, AcceptsBatchOfOne) {
    const Tensor a = test_image(9);
    const Tensor b4 = a.reshaped({1, 3, 16, 16});
    EXPECT_NEAR(metrics::ssim(b4, b4), 1.0, 1e-9);
}

TEST(Ssim, RejectsMismatchedShapes) {
    const Tensor a = test_image(1, 16);
    const Tensor b = test_image(1, 8);
    EXPECT_THROW((void)metrics::ssim(a, b), Error);
}

TEST(Ssim, RejectsEvenWindow) {
    const Tensor a = test_image(1);
    metrics::SsimOptions opt;
    opt.window = 8;
    EXPECT_THROW((void)metrics::ssim(a, a, opt), Error);
}

TEST(Psnr, IdenticalImagesCapAt99) {
    const Tensor a = test_image(2);
    EXPECT_DOUBLE_EQ(metrics::psnr(a, a), 99.0);
}

TEST(Psnr, KnownMseGivesKnownPsnr) {
    Tensor a({4}, {0, 0, 0, 0});
    Tensor b({4}, {0.1F, 0.1F, 0.1F, 0.1F});
    EXPECT_NEAR(metrics::psnr(a, b), 20.0, 1e-3);  // mse = 0.01 -> 20 dB
}

TEST(Accuracy, Top1CountsCorrectRows) {
    Tensor logits({3, 4}, {0, 1, 0, 0, /**/ 5, 1, 0, 0, /**/ 0, 0, 0, 9});
    EXPECT_DOUBLE_EQ(metrics::top1_accuracy(logits, {1, 0, 3}), 1.0);
    EXPECT_NEAR(metrics::top1_accuracy(logits, {0, 0, 3}), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace c2pi
