// Integration tests for the compile-once/serve-many PI API and the C2PI
// framework: full PI (both backends) must reproduce plaintext inference
// within fixed-point tolerance; C2PI must agree with plaintext when noise
// is off, hide the clear layers, and cost less than full PI; Algorithm 1
// is unit-tested with a scripted IDPA. Concurrency and batching tests
// for the serving API live in service_test.cpp; the ModelArtifact codec
// and the weightless-client path live in artifact_test.cpp.

#include <gtest/gtest.h>

#include "attack/idpa.hpp"
#include "crypto/ot.hpp"
#include "nn/layers.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "pi/c2pi.hpp"

namespace c2pi::pi {
namespace {

/// Small conv net: 2 convs + 2 FCs on 16x16 RGB inputs — big enough to
/// exercise conv groups, pooling, ReLU and FC protocols, small enough for
/// fast MPC in tests.
nn::Sequential make_test_model(std::uint64_t seed = 7) {
    Rng rng(seed);
    nn::Sequential m;
    m.emplace<nn::Conv2d>(3, 6, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::MaxPool2d>(2, 2);
    m.emplace<nn::Conv2d>(6, 8, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::MaxPool2d>(2, 2);
    m.emplace<nn::Flatten>();
    m.emplace<nn::Linear>(8 * 4 * 4, 16, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::Linear>(16, 10, rng);
    return m;
}

Tensor make_test_input(std::uint64_t seed = 8) {
    Rng rng(seed);
    return Tensor::uniform({1, 3, 16, 16}, rng, 0.0F, 1.0F);
}

CompiledModel::Options small_compile_options() {
    CompiledModel::Options opts;
    opts.input_chw = {3, 16, 16};
    opts.he_ring_degree = 1024;
    return opts;
}

class FullPiBackendTest : public ::testing::TestWithParam<PiBackend> {};

TEST_P(FullPiBackendTest, MatchesPlaintextInference) {
    const nn::Sequential model = make_test_model();
    const Tensor x = make_test_input();
    const Tensor want = model.infer(x);

    const CompiledModel compiled(model, small_compile_options());
    const PiResult res =
        run_private_inference(compiled, SessionConfig{.backend = GetParam()}, x);
    ASSERT_TRUE(res.logits.same_shape(want));
    for (std::int64_t i = 0; i < want.numel(); ++i)
        EXPECT_NEAR(res.logits[i], want[i], 0.02F) << "logit " << i;
    EXPECT_EQ(res.hidden_linear_ops, 0);
    EXPECT_EQ(res.crypto_linear_ops, 4);
}

INSTANTIATE_TEST_SUITE_P(Backends, FullPiBackendTest,
                         ::testing::Values(PiBackend::kCheetah, PiBackend::kDelphi));

TEST(Session, CheetahIsOnlineDominated) {
    const nn::Sequential model = make_test_model();
    const CompiledModel compiled(model, small_compile_options());
    const PiResult res = run_private_inference(
        compiled, SessionConfig{.backend = PiBackend::kCheetah}, make_test_input());
    // Only the dealer setup (plus its trailing nonlinear-backend byte) is
    // charged offline for Cheetah.
    EXPECT_EQ(res.stats.offline_bytes, crypto::OtSetupPair::setup_traffic_bytes() + 1);
    EXPECT_GT(res.stats.online_bytes, res.stats.offline_bytes);
}

TEST(Session, DelphiMovesWorkOffline) {
    const nn::Sequential model = make_test_model();
    const CompiledModel compiled(model, small_compile_options());
    const PiResult res = run_private_inference(
        compiled, SessionConfig{.backend = PiBackend::kDelphi}, make_test_input());
    // HE pairs + garbled tables offline: the offline phase dominates.
    EXPECT_GT(res.stats.offline_bytes, res.stats.online_bytes);
}

TEST(Session, DelphiCostsMoreTrafficThanCheetah) {
    const nn::Sequential model = make_test_model();
    // One compiled artifact serves both backends: the plan and encoded
    // weights are backend-agnostic, only the session protocol differs.
    const CompiledModel compiled(model, small_compile_options());
    const auto c = run_private_inference(
        compiled, SessionConfig{.backend = PiBackend::kCheetah}, make_test_input());
    const auto d = run_private_inference(
        compiled, SessionConfig{.backend = PiBackend::kDelphi}, make_test_input());
    EXPECT_GT(d.stats.total_bytes(), c.stats.total_bytes());
}

TEST(Session, WanLatencyExceedsLan) {
    const nn::Sequential model = make_test_model();
    const CompiledModel compiled(model, small_compile_options());
    const PiResult res = run_private_inference(compiled, SessionConfig{}, make_test_input());
    EXPECT_GT(res.stats.latency_seconds(net::NetworkModel::wan()),
              res.stats.latency_seconds(net::NetworkModel::lan()));
}

TEST(C2pi, NoiselessBoundaryMatchesPlaintext) {
    const nn::Sequential model = make_test_model();
    const Tensor x = make_test_input();
    const Tensor want = model.infer(x);

    auto copts = small_compile_options();
    copts.boundary = nn::CutPoint{.linear_index = 2, .after_relu = true};
    const CompiledModel compiled(model, copts);
    const PiResult res =
        run_private_inference(compiled, SessionConfig{.noise_lambda = 0.0F}, x);
    for (std::int64_t i = 0; i < want.numel(); ++i)
        EXPECT_NEAR(res.logits[i], want[i], 0.02F) << i;
    EXPECT_EQ(res.crypto_linear_ops, 2);
    EXPECT_EQ(res.hidden_linear_ops, 2);
}

TEST(C2pi, CostsLessThanFullPi) {
    const nn::Sequential model = make_test_model();
    const Tensor x = make_test_input();
    const CompiledModel full(model, small_compile_options());
    const auto full_res = run_private_inference(full, SessionConfig{}, x);

    auto copts = small_compile_options();
    copts.boundary = nn::CutPoint{.linear_index = 1, .after_relu = true};
    const CompiledModel compiled(model, copts);
    const auto c2pi_res =
        run_private_inference(compiled, SessionConfig{.noise_lambda = 0.1F}, x);

    EXPECT_LT(c2pi_res.stats.total_bytes(), full_res.stats.total_bytes());
    EXPECT_LT(c2pi_res.stats.total_flights(), full_res.stats.total_flights());
}

TEST(C2pi, NoisePerturbsButPreservesShape) {
    const nn::Sequential model = make_test_model();
    const Tensor x = make_test_input();
    auto copts = small_compile_options();
    copts.boundary = nn::CutPoint{.linear_index = 2, .after_relu = true};
    const CompiledModel compiled(model, copts);
    const auto res = run_private_inference(compiled, SessionConfig{.noise_lambda = 0.3F}, x);
    const Tensor want = model.infer(x);
    ASSERT_TRUE(res.logits.same_shape(want));
    // With noise the logits differ, but remain finite and plausible.
    float diff = 0.0F;
    for (std::int64_t i = 0; i < want.numel(); ++i) {
        EXPECT_TRUE(std::isfinite(res.logits[i]));
        diff += std::fabs(res.logits[i] - want[i]);
    }
    EXPECT_GT(diff, 0.0F);
}

TEST(C2pi, DelphiBackendAlsoSupportsBoundary) {
    const nn::Sequential model = make_test_model();
    const Tensor x = make_test_input();
    const Tensor want = model.infer(x);
    auto copts = small_compile_options();
    copts.boundary = nn::CutPoint{.linear_index = 2, .after_relu = false};
    const CompiledModel compiled(model, copts);
    const auto res = run_private_inference(
        compiled, SessionConfig{.backend = PiBackend::kDelphi, .noise_lambda = 0.0F}, x);
    for (std::int64_t i = 0; i < want.numel(); ++i) EXPECT_NEAR(res.logits[i], want[i], 0.02F);
}

// ------------------------------------------------------------ Algorithm 1 ---

/// Scripted IDPA: "succeeds" (returns the true image) iff the cut is at or
/// before `success_until`; otherwise returns noise. Lets us unit-test the
/// search logic deterministically.
class ScriptedIdpa final : public attack::Idpa {
public:
    ScriptedIdpa(double success_until, const data::SyntheticImageDataset& dataset)
        : success_until_(success_until), dataset_(&dataset) {}

    void fit(nn::Graph&, const nn::CutPoint&, const data::SyntheticImageDataset&,
             float) override {}

    Tensor recover(nn::Graph&, const nn::CutPoint& cut, const Tensor& activation) override {
        if (cut.as_decimal() <= success_until_) {
            // Return the test image whose activation this is: the harness
            // evaluates images in order, so emulate success by returning a
            // copy of the matching truth image via index bookkeeping.
            const auto& img = dataset_->test()[index_++ % dataset_->test().size()].image;
            return img;
        }
        Rng rng(99 + index_++);
        (void)activation;
        const auto& shape = dataset_->test()[0].image.shape();
        return Tensor::uniform(shape, rng, 0.0F, 1.0F);
    }

    [[nodiscard]] std::string name() const override { return "scripted"; }

private:
    double success_until_;
    const data::SyntheticImageDataset* dataset_;
    std::size_t index_ = 0;
};

struct BoundaryFixture {
    data::SyntheticImageDataset dataset = [] {
        auto cfg = data::DatasetConfig::cifar10_like();
        cfg.train_size = 96;
        cfg.test_size = 48;
        cfg.image_size = 16;
        return data::SyntheticImageDataset(cfg);
    }();
    nn::Sequential model = [] {
        nn::ModelConfig cfg;
        cfg.width_multiplier = 0.1F;
        cfg.input_hw = 16;
        return nn::make_alexnet(cfg);
    }();

    BoundaryFixture() {
        nn::TrainConfig tcfg;
        tcfg.epochs = 4;
        tcfg.lr = 0.03F;
        (void)nn::train_classifier(model, dataset, tcfg);
    }
};

TEST(BoundarySearch, CandidateCutsExcludeClassifier) {
    BoundaryFixture fx;
    const auto cuts = candidate_cuts(fx.model, /*include_half_points=*/true);
    ASSERT_FALSE(cuts.empty());
    // AlexNet: 8 linear ops -> cuts over ops 1..7, each with a ReLU twin.
    EXPECT_EQ(cuts.size(), 14U);
    EXPECT_EQ(cuts.front().linear_index, 1);
    EXPECT_FALSE(cuts.front().after_relu);
    EXPECT_EQ(cuts.back().linear_index, 7);
    EXPECT_TRUE(cuts.back().after_relu);
}

TEST(BoundarySearch, FindsBoundaryAfterAttackSuccessPoint) {
    BoundaryFixture fx;
    BoundaryConfig cfg;
    cfg.ssim_threshold = 0.3;
    cfg.noise_lambda = 0.0F;
    cfg.max_accuracy_drop = 1.0;  // phase 2 always satisfied
    cfg.attack_eval_samples = 4;
    // Attack succeeds up to cut 3.5; the boundary must be the next cut (4).
    const auto result = search_boundary(
        fx.model, fx.dataset, [&] { return std::make_unique<ScriptedIdpa>(3.5, fx.dataset); }, cfg);
    EXPECT_EQ(result.boundary.linear_index, 4);
    EXPECT_FALSE(result.boundary.after_relu);
}

TEST(BoundarySearch, AttackNeverSucceedsGivesEarliestCut) {
    BoundaryFixture fx;
    BoundaryConfig cfg;
    cfg.max_accuracy_drop = 1.0;
    cfg.attack_eval_samples = 4;
    cfg.noise_lambda = 0.0F;
    const auto result = search_boundary(
        fx.model, fx.dataset, [&] { return std::make_unique<ScriptedIdpa>(0.0, fx.dataset); }, cfg);
    EXPECT_EQ(result.boundary.linear_index, 1);
    EXPECT_FALSE(result.boundary.after_relu);
}

TEST(BoundarySearch, AccuracyPhasePushesBoundaryLater) {
    BoundaryFixture fx;
    BoundaryConfig cfg;
    cfg.attack_eval_samples = 4;
    cfg.noise_lambda = 30.0F;       // catastrophic noise at every cut
    cfg.max_accuracy_drop = 0.05;   // demand near-baseline accuracy
    const auto result = search_boundary(
        fx.model, fx.dataset, [&] { return std::make_unique<ScriptedIdpa>(1.0, fx.dataset); }, cfg);
    // Phase 1 stops at cut 1 (success) -> potential boundary 1.5; heavy
    // noise pushes phase 2 strictly later than that.
    EXPECT_GT(result.boundary.as_decimal(), 1.5);
    EXPECT_FALSE(result.accuracy_sweep.empty());
}

TEST(BoundarySearch, SsimSweepIsTailToHead) {
    BoundaryFixture fx;
    BoundaryConfig cfg;
    cfg.max_accuracy_drop = 1.0;
    cfg.attack_eval_samples = 4;
    cfg.noise_lambda = 0.0F;
    const auto result = search_boundary(
        fx.model, fx.dataset, [&] { return std::make_unique<ScriptedIdpa>(2.0, fx.dataset); }, cfg);
    ASSERT_GE(result.ssim_sweep.size(), 2U);
    for (std::size_t i = 1; i < result.ssim_sweep.size(); ++i)
        EXPECT_GT(result.ssim_sweep[i - 1].cut.as_decimal(),
                  result.ssim_sweep[i].cut.as_decimal());
    // The last probe is the first success.
    EXPECT_GE(result.ssim_sweep.back().avg_ssim, cfg.ssim_threshold);
}

TEST(C2piSystem, EndToEndWithScriptedAttack) {
    BoundaryFixture fx;
    C2piOptions opts;
    opts.backend = PiBackend::kCheetah;
    opts.he_ring_degree = 1024;
    opts.boundary.attack_eval_samples = 4;
    opts.boundary.max_accuracy_drop = 1.0;
    opts.boundary.noise_lambda = 0.05F;
    C2piSystem system(
        fx.model, fx.dataset, [&] { return std::make_unique<ScriptedIdpa>(2.0, fx.dataset); },
        opts);
    EXPECT_GT(system.boundary().boundary.as_decimal(), 2.0);

    const auto& img = fx.dataset.test()[0].image;
    const auto res = system.infer(img.reshaped({1, 3, 16, 16}));
    EXPECT_EQ(res.logits.dim(1), 10);
    EXPECT_GT(res.hidden_linear_ops, 0);
}

TEST(Plan, NonTilingPoolGeometryThrowsTypedError) {
    // (5 - 2) % 2 != 0: the window doesn't tile. The old planner silently
    // floored the output shape, disagreeing with plaintext inference.
    nn::Sequential m;
    m.emplace<nn::Relu>();
    m.emplace<nn::MaxPool2d>(2, 2);
    try {
        (void)plan_layers(m, {1, 5, 5}, m.size());
        FAIL() << "non-tiling pool must throw";
    } catch (const PoolGeometryError& e) {
        EXPECT_EQ(e.layer_index, 1U);
        EXPECT_NE(std::string(e.what()).find("does not tile"), std::string::npos) << e.what();
    }
}

// -------------------------------------------------------- residual models ---

nn::Graph make_resnet_under_test() {
    nn::ModelConfig cfg;
    cfg.input_hw = 16;
    cfg.width_multiplier = 0.125F;
    return nn::make_resnet9(cfg);
}

/// Boundary past the first residual block: the crypto prefix carries a
/// secret-shared skip-add, the clear tail the second block.
CompiledModel::Options resnet_compile_options() {
    CompiledModel::Options opts;
    opts.input_chw = {3, 16, 16};
    opts.he_ring_degree = 1024;
    opts.boundary = nn::CutPoint{.linear_index = 5, .after_relu = false};
    return opts;
}

TEST(ResNetPi, CrossBackendLogitsBitIdentical) {
    const nn::Graph model = make_resnet_under_test();
    const CompiledModel compiled(model, resnet_compile_options());
    bool has_add = false;
    for (const auto& p : compiled.artifact().plan) has_add |= p.op == PlanOp::kResidualAdd;
    ASSERT_TRUE(has_add) << "crypto prefix must contain the block's skip-add";

    Rng rng(700);
    const Tensor input = Tensor::uniform({1, 3, 16, 16}, rng, 0.0F, 1.0F);
    Tensor reference;
    for (const auto nonlinear :
         {mpc::NonlinearBackend::kGarbledCircuit, mpc::NonlinearBackend::kOtMillionaire,
          mpc::NonlinearBackend::kFss}) {
        for (const bool pipeline : {true, false}) {
            SessionConfig config{.seed = 7};
            config.nonlinear = nonlinear;
            config.pipeline = pipeline;
            const PiResult res = run_private_inference(compiled, config, input);
            if (reference.numel() == 0) {
                reference = res.logits;
            } else {
                ASSERT_TRUE(res.logits.same_shape(reference));
                EXPECT_TRUE(res.logits.allclose(reference, 0.0F))
                    << "nonlinear backend / pipelining changed resnet logits";
            }
        }
    }
    // And the shared secret reconstructs the plaintext model (fixed-point
    // error only).
    const Tensor want = model.infer(input);
    ASSERT_TRUE(reference.same_shape(want));
    EXPECT_TRUE(reference.allclose(want, 0.05F));
}

TEST(ResNetPi, StridedProjectionBlockMatchesPlaintext) {
    // A downsampling basic block (resnet18's stage transition): stride-2
    // main path, 1x1 stride-2 projection skip. Exercises strided conv
    // planning and a residual whose operands are both computed nodes.
    Rng rng(41);
    nn::Graph g;
    const auto c0 = g.add_node(
        std::make_unique<nn::Conv2d>(2, 4, ops::ConvSpec{.kernel = 3, .stride = 2, .pad = 1},
                                     rng),
        nn::Graph::kInput);
    const auto r0 = g.add_node(std::make_unique<nn::Relu>(), c0);
    const auto c1 = g.add_node(
        std::make_unique<nn::Conv2d>(4, 4, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1},
                                     rng),
        r0);
    const auto proj = g.add_node(
        std::make_unique<nn::Conv2d>(2, 4, ops::ConvSpec{.kernel = 1, .stride = 2, .pad = 0},
                                     rng),
        nn::Graph::kInput);
    auto h = g.add_residual(c1, proj);
    h = g.add_node(std::make_unique<nn::Relu>(), h);
    h = g.add_node(std::make_unique<nn::Flatten>(), h);
    (void)g.add_node(std::make_unique<nn::Linear>(4 * 4 * 4, 3, rng), h);

    CompiledModel::Options opts;
    opts.input_chw = {2, 8, 8};
    opts.he_ring_degree = 1024;  // full PI
    const CompiledModel compiled(g, opts);
    Rng in_rng(42);
    const Tensor input = Tensor::uniform({1, 2, 8, 8}, in_rng, 0.0F, 1.0F);
    const PiResult res = run_private_inference(compiled, SessionConfig{.seed = 5}, input);
    const Tensor want = g.infer(input);
    ASSERT_TRUE(res.logits.same_shape(want));
    EXPECT_TRUE(res.logits.allclose(want, 0.05F));
}

TEST(ResNetPi, ResidualAddCostsZeroCommunication) {
    // Two models identical except for the skip-add: same conv/ReLU/FC
    // shapes, one with a residual edge. The add runs locally on shares,
    // so every traffic counter must match the chain model exactly.
    const auto build = [](bool with_skip) {
        Rng rng(31);
        nn::Graph g;
        const auto c0 = g.add_node(
            std::make_unique<nn::Conv2d>(2, 2, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1},
                                         rng),
            nn::Graph::kInput);
        const auto r0 = g.add_node(std::make_unique<nn::Relu>(), c0);
        const auto c1 = g.add_node(
            std::make_unique<nn::Conv2d>(2, 2, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1},
                                         rng),
            r0);
        auto h = with_skip ? g.add_residual(c1, c0) : c1;
        h = g.add_node(std::make_unique<nn::Relu>(), h);
        h = g.add_node(std::make_unique<nn::Flatten>(), h);
        (void)g.add_node(std::make_unique<nn::Linear>(2 * 6 * 6, 4, rng), h);
        return g;
    };
    CompiledModel::Options opts;
    opts.input_chw = {2, 6, 6};
    opts.he_ring_degree = 1024;  // full PI: the add sits inside the crypto region

    const nn::Graph skip_model = build(true);
    const nn::Graph chain_model = build(false);
    const CompiledModel with_skip(skip_model, opts);
    const CompiledModel chain(chain_model, opts);
    Rng rng(32);
    const Tensor input = Tensor::uniform({1, 2, 6, 6}, rng, 0.0F, 1.0F);
    for (const auto backend : {PiBackend::kCheetah, PiBackend::kDelphi}) {
        const SessionConfig config{.backend = backend, .seed = 3};
        const PiResult a = run_private_inference(with_skip, config, input);
        const PiResult b = run_private_inference(chain, config, input);
        EXPECT_EQ(a.stats.preprocess_bytes, b.stats.preprocess_bytes);
        EXPECT_EQ(a.stats.offline_bytes, b.stats.offline_bytes);
        EXPECT_EQ(a.stats.online_bytes, b.stats.online_bytes) << "skip-add leaked online bytes";
        EXPECT_EQ(a.stats.preprocess_flights, b.stats.preprocess_flights);
        EXPECT_EQ(a.stats.offline_flights, b.stats.offline_flights);
        EXPECT_EQ(a.stats.online_flights, b.stats.online_flights)
            << "skip-add added a communication round";
    }
}

}  // namespace
}  // namespace c2pi::pi
