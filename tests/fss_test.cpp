// Unit and integration tests for the FSS comparison subsystem
// (src/fss/): the DCF primitive against a plaintext comparison oracle,
// the interval-containment ReLU material, the KEYS-frame batch codec,
// and the kFss backend at the session layer — cross-backend logit
// parity (bit-identical vs GC and OT), the preprocessing traffic
// bucket, and the typed NonlinearMismatch negotiation error. The
// secure_relu/secure_maxpool protocol-level coverage lives in
// mpc_test.cpp (kFss is a parameterization there); TCP-transport parity
// for kFss lives next to the other transport parity cases in
// tcp_test.cpp.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "crypto/ot.hpp"
#include "fss/compare.hpp"
#include "fss/dcf.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"
#include "pi/session.hpp"

namespace c2pi::fss {
namespace {

constexpr Ring kMid = Ring{1} << 63;
constexpr Ring kMax = ~Ring{0};

/// Plaintext oracle: f(x) = beta if x < alpha else 0, unsigned.
DcfPayload oracle(Ring alpha, const DcfPayload& beta, Ring x) {
    return x < alpha ? beta : DcfPayload{};
}

TEST(Dcf, MatchesComparisonOracleOnBoundaryAndRandomInputs) {
    crypto::ChaCha20Prg prg(crypto::Block128{0x5EED, 0xF55}, 1);
    const DcfPayload beta{1, 0x1234'5678'9ABC'DEF0ULL};

    std::vector<Ring> alphas = {0, 1, kMid, kMax};
    for (int i = 0; i < 4; ++i) alphas.push_back(prg.next_u64());

    for (const Ring alpha : alphas) {
        const DcfKeyPair keys = dcf_gen(alpha, beta, prg);
        std::vector<Ring> xs = {0,         1,         alpha - 1, alpha,
                                alpha + 1, kMid - 1,  kMid,      kMax};
        for (int i = 0; i < 8; ++i) xs.push_back(prg.next_u64());
        for (const Ring x : xs) {
            const DcfPayload sum = dcf_eval(keys.k0, 0, x) + dcf_eval(keys.k1, 1, x);
            EXPECT_EQ(sum, oracle(alpha, beta, x))
                << "alpha=" << alpha << " x=" << x << " (u=" << sum.u << " v=" << sum.v << ")";
        }
    }
}

TEST(Dcf, SingleKeyRevealsNothingObviouslyStructured) {
    // Not a cryptographic test — just a sanity check that one share alone
    // is not the function: party 0's eval at points straddling alpha must
    // not already equal the oracle (the correction from party 1 matters).
    crypto::ChaCha20Prg prg(crypto::Block128{7, 7}, 2);
    const Ring alpha = kMid;
    const DcfPayload beta{1, 99};
    const DcfKeyPair keys = dcf_gen(alpha, beta, prg);
    int disagreements = 0;
    for (Ring x : {Ring{0}, alpha - 1, alpha, alpha + 1, kMax})
        if (dcf_eval(keys.k0, 0, x) != oracle(alpha, beta, x)) ++disagreements;
    EXPECT_GT(disagreements, 0);
}

TEST(Dcf, KeyCodecRoundTripsBitExactly) {
    crypto::ChaCha20Prg prg(crypto::Block128{0xC0DE, 0xC}, 3);
    const DcfKeyPair keys = dcf_gen(prg.next_u64(), DcfPayload{1, prg.next_u64()}, prg);

    std::vector<std::uint8_t> bytes(DcfKey::kSerializedBytes);
    keys.k1.serialize_into(bytes.data());
    const DcfKey back = DcfKey::deserialize(bytes.data());

    std::vector<std::uint8_t> again(DcfKey::kSerializedBytes);
    back.serialize_into(again.data());
    EXPECT_EQ(bytes, again);
    for (int i = 0; i < 16; ++i) {
        const Ring x = prg.next_u64();
        EXPECT_EQ(dcf_eval(back, 1, x), dcf_eval(keys.k1, 1, x));
    }
}

TEST(FssRelu, MaterialEvaluatesToReluOverSignedBoundaryValues) {
    crypto::ChaCha20Prg prg(crypto::Block128{0xABCD, 0x1}, 4);
    // Signed boundary values encoded into the unsigned ring: zero, +/-1,
    // the most negative value (ring midpoint), the most positive value.
    const std::vector<Ring> ys = {0,        1,        Ring{0} - 1, kMid,
                                  kMid - 1, kMid + 1, 1000,        Ring{0} - 1000};
    for (int trial = 0; trial < 8; ++trial) {
        const ReluKeyPair pair = gen_relu_material(prg);
        const Ring r = pair.server.r_share + pair.client.r_share;
        for (const Ring y : ys) {
            const Ring z = y + r;  // the reconstructed masked value
            const Ring got = eval_relu(pair.server, 0, z) + eval_relu(pair.client, 1, z);
            const Ring want = y < kMid ? y : 0;  // ReLU under signed semantics
            EXPECT_EQ(got, want) << "trial=" << trial << " y=" << y;
        }
        for (int i = 0; i < 8; ++i) {
            const Ring y = prg.next_u64();
            const Ring z = y + r;
            EXPECT_EQ(eval_relu(pair.server, 0, z) + eval_relu(pair.client, 1, z),
                      y < kMid ? y : 0);
        }
    }
}

TEST(FssRelu, BatchCodecRoundTripsAndRejectsTruncation) {
    crypto::ChaCha20Prg prg(crypto::Block128{0xBA7C, 0x2}, 5);
    std::vector<ReluKeyShare> batch;
    for (int i = 0; i < 3; ++i) batch.push_back(gen_relu_material(prg).client);

    const std::vector<std::uint8_t> bytes = serialize_batch(batch);
    ASSERT_EQ(bytes.size(), 3 * ReluKeyShare::kSerializedBytes);
    const std::vector<ReluKeyShare> back = deserialize_batch(bytes);
    ASSERT_EQ(back.size(), batch.size());
    EXPECT_EQ(serialize_batch(back), bytes);

    std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 1);
    EXPECT_THROW((void)deserialize_batch(truncated), Error);
}

// ------------------------------------------------- session integration ---

/// Smaller than pi_test's reference net (one conv block) but still
/// covering every nonlinear protocol: ReLU and 2x2 maxpool.
nn::Sequential make_fss_test_model() {
    Rng rng(21);
    nn::Sequential m;
    m.emplace<nn::Conv2d>(3, 4, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::MaxPool2d>(2, 2);
    m.emplace<nn::Flatten>();
    m.emplace<nn::Linear>(4 * 4 * 4, 8, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::Linear>(8, 5, rng);
    return m;
}

pi::CompiledModel::Options fss_compile_options(bool full_pi) {
    pi::CompiledModel::Options opts;
    opts.input_chw = {3, 8, 8};
    opts.he_ring_degree = 1024;
    if (!full_pi) opts.boundary = nn::CutPoint{.linear_index = 1, .after_relu = true};
    return opts;
}

Tensor make_fss_test_input() {
    Rng rng(22);
    return Tensor::uniform({1, 3, 8, 8}, rng, 0.0F, 1.0F);
}

struct ParityCase {
    const char* name;
    pi::PiBackend backend;
    bool full_pi;
};

class CrossBackendParityTest : public ::testing::TestWithParam<ParityCase> {};

/// The tentpole acceptance criterion: for one compiled model and one
/// input, the three nonlinear backends must produce BIT-IDENTICAL
/// logits. The nonlinear protocols differ in how shares are produced
/// but reconstruct the same ring values, and everything downstream of
/// reconstruction is deterministic.
TEST_P(CrossBackendParityTest, LogitsBitIdenticalAcrossNonlinearBackends) {
    const ParityCase& pc = GetParam();
    const nn::Sequential model = make_fss_test_model();
    const pi::CompiledModel compiled(model, fss_compile_options(pc.full_pi));
    const Tensor input = make_fss_test_input();

    pi::SessionConfig config{.backend = pc.backend};
    config.nonlinear = mpc::NonlinearBackend::kGarbledCircuit;
    const pi::PiResult gc = pi::run_private_inference(compiled, config, input);
    config.nonlinear = mpc::NonlinearBackend::kOtMillionaire;
    const pi::PiResult ot = pi::run_private_inference(compiled, config, input);
    config.nonlinear = mpc::NonlinearBackend::kFss;
    const pi::PiResult fss = pi::run_private_inference(compiled, config, input);

    ASSERT_TRUE(gc.logits.same_shape(fss.logits));
    ASSERT_TRUE(ot.logits.same_shape(fss.logits));
    for (std::int64_t i = 0; i < gc.logits.numel(); ++i) {
        EXPECT_EQ(gc.logits[i], fss.logits[i]) << "gc vs fss, logit " << i;
        EXPECT_EQ(ot.logits[i], fss.logits[i]) << "ot vs fss, logit " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CrossBackendParityTest,
    ::testing::Values(ParityCase{"CheetahFullPi", pi::PiBackend::kCheetah, true},
                      ParityCase{"DelphiFullPi", pi::PiBackend::kDelphi, true},
                      ParityCase{"CheetahCryptoClear", pi::PiBackend::kCheetah, false}),
    [](const auto& info) { return info.param.name; });

/// The satellite acceptance criterion: FSS moves the nonlinear traffic
/// into the preprocessing bucket, so for the same model its ONLINE bytes
/// must be strictly below GC's, while GC ships nothing in preprocessing.
TEST(FssSession, OnlineBytesStrictlyBelowGc) {
    const nn::Sequential model = make_fss_test_model();
    const pi::CompiledModel compiled(model, fss_compile_options(/*full_pi=*/true));
    const Tensor input = make_fss_test_input();

    pi::SessionConfig config;
    config.nonlinear = mpc::NonlinearBackend::kGarbledCircuit;
    const pi::PiResult gc = pi::run_private_inference(compiled, config, input);
    config.nonlinear = mpc::NonlinearBackend::kFss;
    const pi::PiResult fss = pi::run_private_inference(compiled, config, input);

    EXPECT_EQ(gc.stats.preprocess_bytes, 0U);
    EXPECT_EQ(gc.stats.preprocess_flights, 0U);
    // The preprocessing bucket holds exactly the plan-sized key shipment
    // (no flight of its own: the KEYS frame rides the server->client
    // flight the dealer-setup message already opened).
    EXPECT_EQ(fss.stats.preprocess_bytes,
              pi::count_fss_comparisons(compiled.plan()) * ReluKeyShare::kSerializedBytes);
    EXPECT_LT(fss.stats.online_bytes, gc.stats.online_bytes)
        << "FSS online traffic must undercut GC once keys are preprocessed";
}

TEST(FssSession, MismatchedClientRaisesTypedError) {
    const nn::Sequential model = make_fss_test_model();
    const pi::CompiledModel compiled(model, fss_compile_options(/*full_pi=*/true));
    const Tensor input = make_fss_test_input();

    // Scripted fake server: send only the dealer-setup message, with the
    // trailing byte announcing kFss, then return. The real client is
    // explicitly configured for GC and must fail with the TYPED mismatch
    // error before any protocol round (a real server/client pair would
    // otherwise hang mid-protocol).
    pi::SessionConfig client_config;
    client_config.nonlinear = mpc::NonlinearBackend::kGarbledCircuit;
    const pi::ClientSession client(compiled, client_config);

    net::DuplexChannel channel;
    EXPECT_THROW(
        (void)net::run_two_party(
            channel,
            [](net::Transport& t) {
                std::vector<std::uint8_t> setup(crypto::OtSetupPair::setup_traffic_bytes() + 1);
                setup.back() = static_cast<std::uint8_t>(mpc::NonlinearBackend::kFss);
                t.send_bytes(setup);
            },
            [&](net::Transport& t) { (void)client.run(t, input); }),
        pi::NonlinearMismatch);
}

TEST(FssSession, UnknownAnnouncedBackendRejected) {
    const nn::Sequential model = make_fss_test_model();
    const pi::CompiledModel compiled(model, fss_compile_options(/*full_pi=*/true));
    const Tensor input = make_fss_test_input();

    const pi::ClientSession client(compiled, pi::SessionConfig{});
    net::DuplexChannel channel;
    EXPECT_THROW((void)net::run_two_party(
                     channel,
                     [](net::Transport& t) {
                         std::vector<std::uint8_t> setup(
                             crypto::OtSetupPair::setup_traffic_bytes() + 1);
                         setup.back() = 0x7F;  // no such backend
                         t.send_bytes(setup);
                     },
                     [&](net::Transport& t) { (void)client.run(t, input); }),
                 Error);
}

}  // namespace
}  // namespace c2pi::fss
