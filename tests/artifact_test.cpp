// Tests for the wire-shippable ModelArtifact and the weightless-client
// path: the versioned binary codec must round-trip byte-stably and
// reject truncated/corrupt/foreign payloads with typed c2pi::Errors; a
// client compiled from a SHIPPED artifact (serialized, sent over the
// transport, deserialized) must produce bit-identical logits and
// identical per-phase traffic stats to the locally-compiled client —
// over both the in-process channel and real loopback TCP, where the
// artifact travels in its own unmetered frame (docs/PROTOCOL.md §3).

#include <gtest/gtest.h>

#include <thread>

#include "net/runtime.hpp"
#include "net/tcp.hpp"
#include "pi/session.hpp"

// Reuse the deployed pi_server/pi_client topology so passing here
// certifies the demo pairing too.
#include "../examples/remote_common.hpp"

namespace c2pi::pi {
namespace {

ModelArtifact demo_artifact(bool full_pi = false) {
    const nn::Sequential model = demo::make_demo_model();
    const auto opts = demo::demo_compile_options(full_pi);
    return ModelArtifact::build(model, {.input_chw = opts.input_chw,
                                        .boundary = opts.boundary,
                                        .fmt = opts.fmt,
                                        .he_ring_degree = opts.he_ring_degree});
}

/// A DAG artifact: resnet9 at smoke scale, cut past the first residual
/// block so the crypto-prefix plan carries a kResidualAdd entry and the
/// codec must emit version 2.
ModelArtifact resnet_artifact() {
    const nn::Graph model = demo::make_remote_model("resnet9");
    const auto opts = demo::remote_compile_options(model, "resnet9", /*full_pi=*/false);
    return ModelArtifact::build(model, {.input_chw = opts.input_chw,
                                        .boundary = opts.boundary,
                                        .fmt = opts.fmt,
                                        .he_ring_degree = opts.he_ring_degree});
}

// ------------------------------------------------------------------ codec ---

TEST(ArtifactCodec, RoundTripIsByteStable) {
    const ModelArtifact artifact = demo_artifact();
    const auto bytes = artifact.serialize();
    ASSERT_FALSE(bytes.empty());

    const ModelArtifact back = ModelArtifact::deserialize(bytes);
    EXPECT_EQ(back, artifact);
    // Deterministic codec: re-serializing the decoded artifact must
    // reproduce the exact bytes (the server ships the same frame to
    // every client; a drifting encoding would break caching and audits).
    EXPECT_EQ(back.serialize(), bytes);
}

TEST(ArtifactCodec, FullPiArtifactRoundTrips) {
    const ModelArtifact artifact = demo_artifact(/*full_pi=*/true);
    EXPECT_TRUE(artifact.full_pi);
    EXPECT_EQ(artifact.hidden_linear_ops(), 0);
    const ModelArtifact back = ModelArtifact::deserialize(artifact.serialize());
    EXPECT_EQ(back, artifact);
}

TEST(ArtifactCodec, RejectsEveryTruncation) {
    const auto bytes = demo_artifact().serialize();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_THROW((void)ModelArtifact::deserialize(
                         std::span<const std::uint8_t>(bytes.data(), len)),
                     Error)
            << "prefix of " << len << " bytes must not decode";
    }
}

TEST(ArtifactCodec, RejectsBadMagic) {
    auto bytes = demo_artifact().serialize();
    bytes[0] = 'X';
    try {
        (void)ModelArtifact::deserialize(bytes);
        FAIL() << "bad magic must throw";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos) << e.what();
    }
}

TEST(ArtifactCodec, RejectsVersionMismatch) {
    auto bytes = demo_artifact().serialize();
    bytes[4] = 3;  // version u16 lives right after the 4-byte magic; 1 and 2 are supported
    try {
        (void)ModelArtifact::deserialize(bytes);
        FAIL() << "future codec version must throw";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
    }
}

// -------------------------------------------------------- v2 (DAG) codec ---

TEST(ArtifactCodecV2, ChainPlansStillEmitVersion1) {
    // The pre-DAG wire format is load-bearing: sequential models must
    // keep producing byte-identical v1 artifacts after the Graph refactor.
    const auto bytes = demo_artifact().serialize();
    EXPECT_EQ(bytes[4], 1);  // version u16 LE after the 4-byte magic
    EXPECT_EQ(bytes[5], 0);
}

TEST(ArtifactCodecV2, DagRoundTripIsByteStable) {
    const ModelArtifact artifact = resnet_artifact();
    bool has_add = false;
    for (const auto& p : artifact.plan) has_add |= p.op == PlanOp::kResidualAdd;
    ASSERT_TRUE(has_add) << "resnet9 boundary must put a residual add in the crypto prefix";

    const auto bytes = artifact.serialize();
    EXPECT_EQ(bytes[4], 2);
    EXPECT_EQ(bytes[5], 0);
    const ModelArtifact back = ModelArtifact::deserialize(bytes);
    EXPECT_EQ(back, artifact);
    EXPECT_EQ(back.serialize(), bytes);
}

TEST(ArtifactCodecV2, RejectsEveryTruncation) {
    const auto bytes = resnet_artifact().serialize();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_THROW((void)ModelArtifact::deserialize(
                         std::span<const std::uint8_t>(bytes.data(), len)),
                     Error)
            << "prefix of " << len << " bytes must not decode";
    }
}

TEST(ArtifactCodecV2, V1BytesSynthesizeChainEdges) {
    // A v1 payload (no edge fields on the wire) must decode to the
    // canonical chain edges so old artifacts keep working unchanged.
    const auto bytes = demo_artifact().serialize();
    const ModelArtifact back = ModelArtifact::deserialize(bytes);
    for (std::size_t i = 0; i < back.plan.size(); ++i) {
        EXPECT_EQ(back.plan[i].input0, static_cast<std::int64_t>(i) - 1);
        EXPECT_EQ(back.plan[i].input1, -1);
    }
}

TEST(ArtifactCodecV2, RejectsDanglingPlanEdge) {
    ModelArtifact artifact = resnet_artifact();
    // Forward reference: entry 1 consuming entry 5 has no defined value yet.
    artifact.plan[1].input0 = 5;
    try {
        artifact.validate();
        FAIL() << "dangling edge must throw";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("dangling plan edge"), std::string::npos)
            << e.what();
    }
    // And the same hostile payload is rejected at the wire boundary.
    EXPECT_THROW((void)ModelArtifact::deserialize(artifact.serialize()), Error);
}

TEST(ArtifactCodecV2, RejectsSecondEdgeOnNonAddEntry) {
    ModelArtifact artifact = resnet_artifact();
    for (std::size_t i = 0; i < artifact.plan.size(); ++i) {
        if (artifact.plan[i].op == PlanOp::kResidualAdd) continue;
        artifact.plan[i].input1 = 0;
        EXPECT_THROW(artifact.validate(), Error);
        EXPECT_THROW((void)ModelArtifact::deserialize(artifact.serialize()), Error);
        artifact.plan[i].input1 = -1;
        break;
    }
}

TEST(ArtifactCodec, RejectsTrailingBytes) {
    auto bytes = demo_artifact().serialize();
    bytes.push_back(0);
    EXPECT_THROW((void)ModelArtifact::deserialize(bytes), Error);
}

TEST(ArtifactCodec, RejectsCorruptPlan) {
    const ModelArtifact artifact = demo_artifact();
    {
        // Unknown plan op byte: the first entry's op sits right after the
        // fixed-size header fields.
        ModelArtifact bad = artifact;
        bad.plan[0].op = static_cast<PlanOp>(250);
        EXPECT_THROW((void)ModelArtifact::deserialize(bad.serialize()), Error);
    }
    {
        // Structurally broken shape chain survives decoding but must die
        // in validate().
        ModelArtifact bad = artifact;
        bad.plan[1].in_shape = {1, 2, 3};
        EXPECT_THROW((void)ModelArtifact::deserialize(bad.serialize()), Error);
    }
    {
        // Boundary/plan disagreement: claim one more crypto linear op
        // than the plan contains.
        ModelArtifact bad = artifact;
        bad.cut.linear_index += 1;
        bad.num_linear_ops += 1;
        EXPECT_THROW((void)ModelArtifact::deserialize(bad.serialize()), Error);
    }
    {
        // Flipped full_pi flag: the final reveal direction would desync
        // (client waits on logits the server never sends). The flag is
        // derivable from the boundary, so a disagreement is corruption.
        ModelArtifact bad = artifact;
        bad.full_pi = !bad.full_pi;
        EXPECT_THROW((void)ModelArtifact::deserialize(bad.serialize()), Error);
    }
    {
        // Hostile resource amplification: a huge (power-of-two) ring
        // degree must die as a typed error, not as the client's BFV
        // table allocation.
        ModelArtifact bad = artifact;
        bad.he_ring_degree = std::size_t{1} << 40;
        EXPECT_THROW((void)ModelArtifact::deserialize(bad.serialize()), Error);
    }
    {
        // Inflated pooling output shape would walk the client's pooling
        // kernels off the activation buffer.
        ModelArtifact bad = artifact;
        for (auto& p : bad.plan) {
            if (p.op != PlanOp::kMaxPool) continue;
            p.out_shape[1] += 1;
            break;
        }
        EXPECT_THROW((void)ModelArtifact::deserialize(bad.serialize()), Error);
    }
}

TEST(ArtifactModelBinding, CompiledModelRejectsForeignArtifact) {
    // Serving weights against an artifact for a DIFFERENT architecture
    // must throw at compile time, not fail mid-protocol.
    const nn::Sequential model = demo::make_demo_model();
    ModelArtifact other = demo_artifact();
    other.plan[0].geo.kernel = 1;  // not what this model plans
    other.plan[0].geo.pad = 0;
    EXPECT_THROW(CompiledModel(other, model), Error);

    // The untampered artifact pairs fine.
    EXPECT_NO_THROW(CompiledModel(demo_artifact(), model));
}

// ------------------------------------------------- weightless-client parity ---

void expect_pi_stats_equal(const PiStats& a, const PiStats& b, const char* what) {
    EXPECT_EQ(a.offline_bytes, b.offline_bytes) << what;
    EXPECT_EQ(a.online_bytes, b.online_bytes) << what;
    EXPECT_EQ(a.offline_flights, b.offline_flights) << what;
    EXPECT_EQ(a.online_flights, b.online_flights) << what;
}

/// Shipped-artifact parity over the in-process transport: the server
/// sends its serialized artifact through the channel's unmetered
/// bootstrap path; the client compiles a ClientModel from the received
/// bytes and runs. Logits must be bit-identical to the locally-compiled
/// reference and the channel stats must not move by a single byte.
void check_shipped_artifact_inproc(bool full_pi, const SessionConfig& config) {
    const nn::Sequential model = demo::make_demo_model();
    const CompiledModel compiled(model, demo::demo_compile_options(full_pi));

    Rng rng(100);
    const Tensor input = Tensor::uniform({1, 3, 16, 16}, rng, 0.0F, 1.0F);
    const PiResult reference = run_private_inference(compiled, config, input);

    const ServerSession server(compiled, config);
    const std::vector<std::uint8_t> artifact_bytes = compiled.artifact().serialize();
    net::DuplexChannel channel;
    Tensor logits;
    const auto run = net::run_two_party(
        channel,
        [&](net::Transport& t) {
            t.send_artifact_bytes(artifact_bytes);
            server.run(t);
        },
        [&](net::Transport& t) {
            const ModelArtifact artifact = ModelArtifact::deserialize(t.recv_artifact_bytes());
            const ClientModel client_model(artifact);
            const ClientSession client(client_model, config);
            logits = client.run(t, input);
        });

    ASSERT_TRUE(logits.same_shape(reference.logits));
    EXPECT_TRUE(logits.allclose(reference.logits, 0.0F))
        << "shipped artifact changed the inference result";
    expect_pi_stats_equal(stats_from_run(run), reference.stats,
                          "shipped vs local artifact (in-process)");
}

TEST(WeightlessClient, InProcCryptoClearWithNoise) {
    check_shipped_artifact_inproc(/*full_pi=*/false,
                                  SessionConfig{.noise_lambda = 0.05F, .seed = 42});
}

TEST(WeightlessClient, InProcFullPi) {
    check_shipped_artifact_inproc(/*full_pi=*/true, SessionConfig{.seed = 9});
}

TEST(WeightlessClient, InProcDelphiBackend) {
    check_shipped_artifact_inproc(
        /*full_pi=*/false, SessionConfig{.backend = PiBackend::kDelphi, .seed = 11});
}

TEST(WeightlessClient, TcpShippedArtifactMatchesLocalCompile) {
    // The deployed shape, exactly as pi_server/pi_client wire it: the
    // artifact travels in its own kArtifact frame and is excluded from
    // the per-phase accounting on BOTH endpoints.
    const nn::Sequential model = demo::make_demo_model();
    const CompiledModel compiled(model, demo::demo_compile_options(/*full_pi=*/false));
    const SessionConfig config{.noise_lambda = 0.05F, .seed = 21};

    Rng rng(300);
    const Tensor input = Tensor::uniform({1, 3, 16, 16}, rng, 0.0F, 1.0F);
    const PiResult reference = run_private_inference(compiled, config, input);

    const ServerSession server(compiled, config);
    net::TcpListener listener(/*port=*/0);
    net::ChannelStats server_stats, client_stats;
    Tensor logits;
    std::exception_ptr server_error;
    std::thread server_thread([&] {
        try {
            auto t = listener.accept(/*timeout_ms=*/10'000);
            t->send_artifact_bytes(compiled.artifact().serialize());
            server.run(*t);
            server_stats = t->stats();
            t->close();
        } catch (...) {
            server_error = std::current_exception();
        }
    });
    auto t = net::connect("127.0.0.1", listener.port(), /*timeout_ms=*/10'000);
    const ModelArtifact artifact = ModelArtifact::deserialize(t->recv_artifact_bytes());
    const ClientModel client_model(artifact);
    const ClientSession client(client_model, config);
    logits = client.run(*t, input);
    client_stats = t->stats();
    t->close();
    server_thread.join();
    ASSERT_FALSE(server_error) << "server side threw";

    ASSERT_TRUE(logits.same_shape(reference.logits));
    EXPECT_TRUE(logits.allclose(reference.logits, 0.0F));
    expect_pi_stats_equal(stats_from_channel(client_stats), reference.stats,
                          "TCP shipped artifact vs local compile");
    expect_pi_stats_equal(stats_from_channel(server_stats),
                          stats_from_channel(client_stats),
                          "server vs client endpoint accounting");
}

TEST(WeightlessClient, InProcArtifactMessageMidProtocolIsRejected) {
    // The in-process transport must enforce the same §2 rule TCP does:
    // bootstrap and protocol messages are not interchangeable.
    net::DuplexChannel channel;
    net::InProcTransport server(channel, 0);
    net::InProcTransport client(channel, 1);
    server.send_artifact_bytes(std::vector<std::uint8_t>{1, 2, 3});
    EXPECT_THROW((void)client.recv_bytes(), Error);
    server.send_bytes(std::vector<std::uint8_t>{4});
    EXPECT_THROW((void)client.recv_artifact_bytes(), Error);
}

TEST(WeightlessClient, ArtifactFrameMidProtocolIsRejected) {
    // A DATA recv that meets an ARTIFACT frame (or vice versa) is a
    // protocol violation and must raise, not silently reinterpret bytes.
    net::TcpListener listener(/*port=*/0);
    std::exception_ptr server_error;
    std::thread server_thread([&] {
        try {
            auto t = listener.accept(/*timeout_ms=*/10'000);
            t->send_bytes(std::vector<std::uint8_t>{1, 2, 3});  // DATA, not ARTIFACT
            t->close();
        } catch (...) {
            server_error = std::current_exception();
        }
    });
    auto t = net::connect("127.0.0.1", listener.port(), /*timeout_ms=*/10'000);
    EXPECT_THROW((void)t->recv_artifact_bytes(), Error);
    t->close();
    server_thread.join();
    ASSERT_FALSE(server_error) << "server side threw";
}

}  // namespace
}  // namespace c2pi::pi
