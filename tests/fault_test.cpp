// Fault-injection suite: seeded chaos schedules against a live
// ServingPool must be CONTAINED — every failure lands in the typed
// class taxonomy, no admission slot leaks, the windowed tail batcher
// never stalls survivors past its window, and a clean follow-up client
// gets logits bit-identical to a fault-free run. Plus unit coverage for
// the deterministic RetryPolicy backoff, the FaultSchedule replay
// guarantee, the in-proc abort semantics, and the digest-first
// resumable bootstrap (cache skip, pin mismatch, commitment check).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <thread>
#include <vector>

#include "net/channel.hpp"
#include "net/faulty.hpp"
#include "net/tcp.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"
#include "pi/bootstrap.hpp"
#include "pi/retry.hpp"
#include "pi/serving_pool.hpp"

namespace c2pi::pi {
namespace {

using namespace std::chrono_literals;

/// Smallest model with real conv/ReLU/FC coverage and a crypto-clear
/// boundary: chaos needs MANY sessions, so each must be cheap even
/// under TSan.
nn::Sequential make_tiny_model(std::uint64_t seed = 3) {
    Rng rng(seed);
    nn::Sequential m;
    m.emplace<nn::Conv2d>(3, 2, ops::ConvSpec{.kernel = 3, .stride = 2, .pad = 1}, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::Flatten>();
    m.emplace<nn::Linear>(2 * 4 * 4, 8, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::Linear>(8, 4, rng);
    return m;
}

CompiledModel::Options tiny_options() {
    CompiledModel::Options opts;
    opts.input_chw = {3, 8, 8};
    opts.he_ring_degree = 1024;
    opts.boundary = nn::CutPoint{.linear_index = 1, .after_relu = true};
    return opts;
}

Tensor tiny_input(std::uint64_t seed = 100) {
    Rng rng(seed);
    return Tensor::uniform({1, 3, 8, 8}, rng, 0.0F, 1.0F);
}

/// Session reports in completion order, waitable so tests can block on
/// "the N-th session finished" instead of sleeping.
struct ReportLog {
    std::mutex m;
    std::condition_variable cv;
    std::vector<ServingPool::SessionReport> reports;

    void push(const ServingPool::SessionReport& r) {
        {
            const std::lock_guard<std::mutex> lock(m);
            reports.push_back(r);
        }
        cv.notify_all();
    }
    [[nodiscard]] ServingPool::SessionReport wait_for(std::size_t count) {
        std::unique_lock<std::mutex> lock(m);
        const bool arrived = cv.wait_for(lock, 60s, [&] { return reports.size() >= count; });
        require(arrived, "timed out waiting for a session report");
        return reports[count - 1];
    }
};

/// A live pool behind its own accept loop: the shape of pi_server,
/// in-process. Handshake failures never kill the loop (a port scanner
/// must not take the server down).
class PoolHarness {
public:
    PoolHarness(const CompiledModel& model, SessionConfig config, ServingPool::Options opts)
        : log_(std::make_shared<ReportLog>()),
          pool_(model, config, opts,
                [log = log_](const ServingPool::SessionReport& r) { log->push(r); }),
          listener_(0),
          accept_thread_([this] { loop(); }) {}

    ~PoolHarness() { stop(); }

    void stop() {
        if (stopped_.exchange(true)) return;
        accept_thread_.join();
        pool_.drain();
    }

    [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
    [[nodiscard]] ServingPool& pool() { return pool_; }
    [[nodiscard]] ReportLog& log() { return *log_; }

private:
    void loop() {
        while (!stopped_.load()) {
            try {
                auto transport = listener_.try_accept(/*timeout_ms=*/50);
                if (transport) (void)pool_.serve(std::move(transport));
            } catch (const std::exception&) {  // failed handshake; keep accepting
            }
        }
    }

    std::shared_ptr<ReportLog> log_;
    ServingPool pool_;
    net::TcpListener listener_;
    std::atomic<bool> stopped_{false};
    std::thread accept_thread_;
};

/// One weightless client run through a FaultyTransport (empty schedule
/// = clean). Never throws: chaos outcomes are data, not aborts.
struct ClientOutcome {
    bool ok = false;
    Tensor logits;
    bool from_cache = false;
    std::string error;
    std::size_t ops = 0;  ///< transport ops executed (schedule address space)
};

ClientOutcome run_client(std::uint16_t port, const SessionConfig& config, const Tensor& input,
                         ArtifactCache* cache, const net::FaultSchedule& schedule = {}) {
    ClientOutcome out;
    std::unique_ptr<net::TcpTransport> tcp;
    try {
        tcp = net::connect("127.0.0.1", port, /*timeout_ms=*/30'000);
    } catch (const std::exception& e) {
        out.error = e.what();
        return out;
    }
    tcp->set_recv_timeout(30'000);
    net::FaultyTransport faulty(*tcp, schedule);
    try {
        const Bootstrap boot = fetch_artifact(faulty, cache);
        out.from_cache = boot.from_cache;
        const ClientSession session(*boot.model, config);
        out.logits = session.run(faulty, input);
        out.ok = true;
    } catch (const std::exception& e) {
        out.error = e.what();
    }
    out.ops = faulty.ops_seen();
    tcp->close();
    return out;
}

// ------------------------------------------------------------ chaos matrix ---

TEST(FaultInjection, ChaosMatrixIsContainedAndClassified) {
    const nn::Sequential model = make_tiny_model();
    const CompiledModel compiled(model, tiny_options());
    const SessionConfig config{.seed = 21};
    const Tensor input = tiny_input();
    const Tensor reference = run_private_inference(compiled, config, input).logits;

    PoolHarness harness(compiled, config,
                        {.workers = 2,
                         .queue_capacity = 2,
                         .recv_timeout_ms = 30'000,
                         .handshake_timeout_ms = 5'000});
    ArtifactCache cache;
    std::size_t session_count = 0;
    const auto next_report = [&] { return harness.log().wait_for(++session_count); };

    // Cold clean run ships the artifact and warms the cache, so every
    // later run (faulty or not) has the SAME op sequence.
    {
        const auto cold = run_client(harness.port(), config, input, &cache);
        ASSERT_TRUE(cold.ok) << cold.error;
        EXPECT_FALSE(cold.from_cache);
        EXPECT_TRUE(next_report().ok);
    }
    // Counting pass: learn the warm-cache op count to address the sweep.
    std::size_t total_ops = 0;
    {
        const auto counting = run_client(harness.port(), config, input, &cache);
        ASSERT_TRUE(counting.ok) << counting.error;
        EXPECT_TRUE(counting.from_cache);
        EXPECT_TRUE(counting.logits.allclose(reference, 0.0F));
        EXPECT_TRUE(next_report().ok);
        total_ops = counting.ops;
    }
    ASSERT_GE(total_ops, 6U) << "tiny session has implausibly few transport ops";

    // -- disconnect sweep: crashed-client shape at chosen phases -----------
    // Early ops (bootstrap) are deterministic client-aborts: the server
    // has protocol left to run, so it MUST observe the disconnect.
    const std::size_t kDeterministic = 4;  // ops 0..3 span bootstrap + setup
    std::vector<std::size_t> disconnect_ops = {0, 1, 2, 3, total_ops / 2, total_ops - 2};
    for (std::size_t i = 0; i < disconnect_ops.size(); ++i) {
        net::FaultSchedule schedule(
            {{.kind = net::FaultKind::kDisconnect, .op = net::FaultOp::kAny,
              .at_op = disconnect_ops[i]}});
        const auto outcome = run_client(harness.port(), config, input, &cache, schedule);
        EXPECT_FALSE(outcome.ok) << "disconnect at op " << disconnect_ops[i];
        const auto report = next_report();
        if (i < kDeterministic) {
            EXPECT_FALSE(report.ok);
            EXPECT_EQ(report.failure, FailureClass::kClientAbort)
                << "disconnect at op " << disconnect_ops[i] << " classified as "
                << failure_class_name(report.failure) << ": " << report.error;
        }
        // Late disconnects may race a completed server session — either
        // way the failure (if any) must still be a client abort.
        if (!report.ok) EXPECT_EQ(report.failure, FailureClass::kClientAbort);
    }

    // -- truncation: transport-clean frames the codec must reject ----------
    // Op 1 is the client's 1-byte want reply; truncating it to empty is a
    // deterministic protocol violation on the server.
    {
        net::FaultSchedule schedule({{.kind = net::FaultKind::kTruncate,
                                      .op = net::FaultOp::kSend,
                                      .at_op = 1,
                                      .param = 0}});
        const auto outcome = run_client(harness.port(), config, input, &cache, schedule);
        EXPECT_FALSE(outcome.ok);
        const auto report = next_report();
        EXPECT_FALSE(report.ok);
        EXPECT_EQ(report.failure, FailureClass::kProtocolViolation)
            << failure_class_name(report.failure) << ": " << report.error;
    }
    // Mid-protocol sends: whichever of these ops is a client send gets a
    // 2-byte frame. Containment is asserted; the class (when the fault
    // fired) must be a protocol violation or the resulting client abort.
    for (const std::size_t op : {std::size_t{3}, std::size_t{4}}) {
        net::FaultSchedule schedule({{.kind = net::FaultKind::kTruncate,
                                      .op = net::FaultOp::kSend,
                                      .at_op = op,
                                      .param = 2}});
        (void)run_client(harness.port(), config, input, &cache, schedule);
        const auto report = next_report();
        if (!report.ok)
            EXPECT_TRUE(report.failure == FailureClass::kProtocolViolation ||
                        report.failure == FailureClass::kClientAbort)
                << failure_class_name(report.failure) << ": " << report.error;
    }

    // -- corruption: semi-honest protocols may not even notice -------------
    // A flipped digest announcement IS deterministic: the client detects
    // the broken commitment and walks away (server sees a client abort).
    {
        net::FaultSchedule schedule({{.kind = net::FaultKind::kCorrupt,
                                      .op = net::FaultOp::kRecv,
                                      .at_op = 0,
                                      .param = 5}});
        const auto outcome = run_client(harness.port(), config, input, &cache, schedule);
        EXPECT_FALSE(outcome.ok);
        const auto report = next_report();
        EXPECT_FALSE(report.ok);
        EXPECT_EQ(report.failure, FailureClass::kClientAbort)
            << failure_class_name(report.failure) << ": " << report.error;
    }
    // Mid-protocol payload corruption: random ring data often decodes
    // fine, so only containment is asserted — never a specific class.
    {
        net::FaultSchedule schedule({{.kind = net::FaultKind::kCorrupt,
                                      .op = net::FaultOp::kAny,
                                      .at_op = total_ops / 2,
                                      .param = 3}});
        (void)run_client(harness.port(), config, input, &cache, schedule);
        (void)next_report();
    }

    // -- seeded sweep: replayable grab-bag over the kind x op grid ---------
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const auto schedule = net::FaultSchedule::from_seed(seed, total_ops);
        (void)run_client(harness.port(), config, input, &cache, schedule);
        (void)next_report();
    }

    // -- containment invariants after the storm ----------------------------
    // A clean client on the same pool still gets bit-identical logits...
    {
        const auto clean = run_client(harness.port(), config, input, &cache);
        ASSERT_TRUE(clean.ok) << clean.error;
        EXPECT_TRUE(clean.from_cache);
        EXPECT_TRUE(clean.logits.allclose(reference, 0.0F))
            << "post-chaos client diverged from the fault-free run";
        EXPECT_TRUE(next_report().ok);
    }
    harness.stop();
    const auto stats = harness.pool().stats();
    EXPECT_EQ(stats.accepted, session_count);
    EXPECT_EQ(stats.rejected, 0U) << "a leaked admission slot would surface as BUSY here";
    EXPECT_EQ(stats.active, 0);
    EXPECT_EQ(stats.served + stats.failed, stats.accepted);
    std::uint64_t classified = 0;
    for (const std::uint64_t n : stats.failed_by_class) classified += n;
    EXPECT_EQ(classified, stats.failed) << "every failure must land in exactly one class";
    EXPECT_GE(stats.failed_by_class[static_cast<int>(FailureClass::kClientAbort)], 5U);
    EXPECT_GE(stats.failed_by_class[static_cast<int>(FailureClass::kProtocolViolation)], 1U);
    EXPECT_GE(stats.artifact_skips, 5U);  // warm-cache sessions resumed weightless
}

// ------------------------------------------------ handshake-phase laggards ---

TEST(FaultInjection, HandshakeDeadlineShedsConnectThenSilentClient) {
    const nn::Sequential model = make_tiny_model();
    const CompiledModel compiled(model, tiny_options());
    const SessionConfig config{.seed = 23};
    const Tensor input = tiny_input();

    // ONE worker, zero queue, a 2-minute steady timeout and a 400 ms
    // bootstrap deadline: the regression this pins is a connect-then-
    // silent client holding the only admission slot for the FULL steady
    // timeout.
    PoolHarness harness(compiled, config,
                        {.workers = 1,
                         .queue_capacity = 0,
                         .recv_timeout_ms = 120'000,
                         .handshake_timeout_ms = 400});

    const auto start = std::chrono::steady_clock::now();
    std::thread silent([&] {
        // Completes the wire handshake (net::connect does) and then says
        // nothing — the shape of a port prober or a client that died
        // right after connecting.
        auto transport = net::connect("127.0.0.1", harness.port(), 10'000);
        std::this_thread::sleep_for(2500ms);
        transport->close();
    });
    const auto report = harness.log().wait_for(1);
    const auto shed_after = std::chrono::steady_clock::now() - start;
    EXPECT_FALSE(report.ok);
    EXPECT_EQ(report.failure, FailureClass::kTimeout)
        << failure_class_name(report.failure) << ": " << report.error;
    // Shed on the bootstrap deadline (plus the bounded close-drain), not
    // pinned against the 2-minute protocol timeout.
    EXPECT_LT(shed_after, 10s);

    // The slot is free again: a real client is served immediately.
    ArtifactCache cache;
    const auto clean = run_client(harness.port(), config, input, &cache);
    EXPECT_TRUE(clean.ok) << clean.error;
    silent.join();
    harness.stop();
    const auto stats = harness.pool().stats();
    EXPECT_EQ(stats.active, 0);
    EXPECT_EQ(stats.served, 1U);
    EXPECT_EQ(stats.failed_by_class[static_cast<int>(FailureClass::kTimeout)], 1U);
}

// ----------------------------------------------------- BUSY-storm retries ---

TEST(FaultInjection, RetryPolicyOutlastsBusyStormWhilePolicyFreeClientFailsFast) {
    const nn::Sequential model = make_tiny_model();
    const CompiledModel compiled(model, tiny_options());
    const SessionConfig config{.seed = 29};
    const Tensor input = tiny_input();
    const Tensor reference = run_private_inference(compiled, config, input).logits;

    PoolHarness harness(compiled, config, {.workers = 1, .queue_capacity = 0});
    ArtifactCache cache;

    // Occupy the only slot: a client whose schedule sleeps mid-protocol.
    std::thread holder([&] {
        net::FaultSchedule schedule({{.kind = net::FaultKind::kDelay,
                                      .op = net::FaultOp::kAny,
                                      .at_op = 4,
                                      .param = 2'000}});
        const auto outcome = run_client(harness.port(), config, input, &cache, schedule);
        EXPECT_TRUE(outcome.ok) << outcome.error;  // a delay is not a failure
    });
    // Wait until the holder's session actually occupies the worker.
    while (harness.pool().stats().active < 1) std::this_thread::sleep_for(10ms);

    // Policy-free client: fails fast with the typed BUSY.
    {
        auto transport = net::connect("127.0.0.1", harness.port(), 10'000);
        transport->set_recv_timeout(10'000);
        EXPECT_THROW((void)fetch_artifact(*transport, nullptr), net::ServerBusy);
        transport->close();
    }

    // Policy client: retries through the storm and succeeds once the
    // holder finishes.
    RetryPolicy policy;
    policy.max_attempts = 30;
    policy.initial_backoff_ms = 100;
    policy.max_backoff_ms = 400;
    policy.jitter_seed = 7;
    int attempts = 0;
    const Tensor logits = with_admission_retry(policy, [&]() -> Tensor {
        ++attempts;
        auto transport = net::connect("127.0.0.1", harness.port(), 10'000);
        transport->set_recv_timeout(30'000);
        const Bootstrap boot = fetch_artifact(*transport, &cache);
        const ClientSession session(*boot.model, config);
        Tensor out = session.run(*transport, input);
        transport->close();
        return out;
    });
    EXPECT_GT(attempts, 1) << "the storm should have forced at least one retry";
    EXPECT_TRUE(logits.allclose(reference, 0.0F));

    holder.join();
    harness.stop();
    const auto stats = harness.pool().stats();
    EXPECT_GE(stats.rejected, 2U);  // the fast-fail client + >=1 policy attempt
    EXPECT_EQ(stats.served, 2U);    // holder + the policy client's final attempt
}

// ------------------------------------------- windowed tail under a death ---

TEST(FaultInjection, WindowedTailSurvivorNotStalledByDyingSibling) {
    const nn::Sequential model = make_tiny_model();
    const CompiledModel compiled(model, tiny_options());
    const SessionConfig config{.seed = 31};
    const Tensor input = tiny_input();
    const Tensor reference = run_private_inference(compiled, config, input).logits;

    // Group size = workers = 2 and a short window: the dying client's
    // session never deposits, so the survivor's group can only close on
    // the window deadline — the regression is it waiting forever (or for
    // the 30 s recv timeout) on a member that will never come.
    PoolHarness harness(compiled, config,
                        {.workers = 2,
                         .queue_capacity = 2,
                         .tail_window_ms = 700,
                         .recv_timeout_ms = 30'000});
    ArtifactCache cache;

    std::thread dying([&] {
        net::FaultSchedule schedule(
            {{.kind = net::FaultKind::kDisconnect, .op = net::FaultOp::kAny, .at_op = 2}});
        const auto outcome = run_client(harness.port(), config, input, &cache, schedule);
        EXPECT_FALSE(outcome.ok);
    });

    const auto start = std::chrono::steady_clock::now();
    const auto survivor = run_client(harness.port(), config, input, &cache);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_TRUE(survivor.ok) << survivor.error;
    EXPECT_TRUE(survivor.logits.allclose(reference, 0.0F))
        << "window-deadline close changed the survivor's logits";
    EXPECT_LT(elapsed, 15s) << "survivor stalled far past the 700 ms window";

    dying.join();
    harness.stop();
    const auto stats = harness.pool().stats();
    EXPECT_EQ(stats.active, 0);
    EXPECT_EQ(stats.tail_requests, 1U);
    EXPECT_GE(stats.tail_batches, 1U);
    EXPECT_EQ(stats.failed_by_class[static_cast<int>(FailureClass::kClientAbort)], 1U);
}

// ------------------------------------------------------ resumable bootstrap ---

TEST(FaultInjection, DigestCacheSkipsSecondShipmentAcrossReconnects) {
    const nn::Sequential model = make_tiny_model();
    const CompiledModel compiled(model, tiny_options());
    const SessionConfig config{.seed = 37};
    const Tensor input = tiny_input();
    const Tensor reference = run_private_inference(compiled, config, input).logits;

    PoolHarness harness(compiled, config, {.workers = 1, .queue_capacity = 1});
    ArtifactCache cache;

    const auto first = run_client(harness.port(), config, input, &cache);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_FALSE(first.from_cache);
    const auto second = run_client(harness.port(), config, input, &cache);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_TRUE(second.from_cache) << "reconnect should resume from the digest cache";
    // The resumed session is a real session: same transcript, same logits.
    EXPECT_TRUE(first.logits.allclose(reference, 0.0F));
    EXPECT_TRUE(second.logits.allclose(reference, 0.0F));
    // The cached path executes fewer transport ops (no artifact frame).
    EXPECT_LT(second.ops, first.ops);
    EXPECT_EQ(cache.size(), 1U);

    harness.stop();
    EXPECT_EQ(harness.pool().stats().artifact_skips, 1U);
}

TEST(FaultInjection, PinnedDigestDetectsMidAirArtifactSwap) {
    const nn::Sequential model = make_tiny_model();
    // Two servers whose PUBLIC halves differ (the pin is about model
    // identity, which weights alone cannot change).
    auto options_b = tiny_options();
    options_b.boundary = std::nullopt;  // full PI: a different artifact
    const CompiledModel compiled_a(model, tiny_options());
    const std::vector<std::uint8_t> bytes_a = compiled_a.artifact().serialize();
    const std::vector<std::uint8_t> bytes_b =
        CompiledModel(model, options_b).artifact().serialize();
    const ArtifactDigest digest_a = digest_of(bytes_a);
    const ArtifactDigest digest_b = digest_of(bytes_b);
    ASSERT_NE(digest_a, digest_b);

    // Server B ships its artifact; the client pinned server A's digest.
    net::DuplexChannel channel;
    net::InProcTransport server(channel, 0);
    net::InProcTransport client(channel, 1);
    std::thread server_thread([&] {
        // The swapped-out client walks away without the want byte; the
        // server must see an ordinary client abort, not a hang.
        EXPECT_THROW((void)ship_artifact(server, bytes_b, digest_b), net::PeerClosed);
    });
    EXPECT_THROW((void)fetch_artifact(client, nullptr, digest_a), ArtifactSwap);
    client.abort_connection();
    server_thread.join();
}

TEST(FaultInjection, ShippedBytesMustMatchAnnouncedDigest) {
    const nn::Sequential model = make_tiny_model();
    const CompiledModel compiled(model, tiny_options());
    std::vector<std::uint8_t> bytes = compiled.artifact().serialize();
    const ArtifactDigest announced = digest_of(bytes);
    bytes.back() ^= 0x01;  // ship something else than was announced

    net::DuplexChannel channel;
    net::InProcTransport server(channel, 0);
    net::InProcTransport client(channel, 1);
    std::thread server_thread([&] {
        server.send_artifact_bytes(announced);
        const auto want = server.recv_artifact_bytes();
        EXPECT_EQ(want.size(), 1U);
        server.send_artifact_bytes(bytes);
    });
    try {
        (void)fetch_artifact(client, nullptr);
        FAIL() << "a broken digest commitment must not compile";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("announced digest"), std::string::npos);
    }
    server_thread.join();
}

// -------------------------------------------------- in-proc abort parity ---

TEST(FaultInjection, InProcAbortDeliversQueuedMessagesThenRaisesPeerClosed) {
    net::DuplexChannel channel;
    net::InProcTransport a(channel, 0);
    net::InProcTransport b(channel, 1);
    const std::vector<std::uint8_t> msg = {1, 2, 3};
    a.send_bytes(msg);
    a.abort_connection();
    // FIN-like: what was sent before the abort still delivers...
    EXPECT_EQ(b.recv_bytes(), msg);
    // ...then both ends observe the crashed-peer shape.
    EXPECT_THROW((void)b.recv_bytes(), net::PeerClosed);
    EXPECT_THROW((void)a.recv_bytes(), net::PeerClosed);
}

// ----------------------------------------------------- schedule replayability ---

TEST(FaultInjection, FaultScheduleIsDeterministicAndDirectionFiltered) {
    const auto s1 = net::FaultSchedule::from_seed(99, 40);
    const auto s2 = net::FaultSchedule::from_seed(99, 40);
    ASSERT_EQ(s1.faults().size(), 1U);
    EXPECT_EQ(s1.faults()[0].kind, s2.faults()[0].kind);
    EXPECT_EQ(s1.faults()[0].at_op, s2.faults()[0].at_op);
    EXPECT_EQ(s1.faults()[0].param, s2.faults()[0].param);
    EXPECT_LT(s1.faults()[0].at_op, 40U);

    net::FaultSchedule schedule({{.kind = net::FaultKind::kTruncate,
                                  .op = net::FaultOp::kSend,
                                  .at_op = 7,
                                  .param = 1}});
    EXPECT_FALSE(schedule.match(7, net::FaultOp::kRecv).has_value());
    EXPECT_TRUE(schedule.match(7, net::FaultOp::kSend).has_value());
    EXPECT_FALSE(schedule.match(6, net::FaultOp::kSend).has_value());
}

// ------------------------------------------------------- retry policy unit ---

TEST(FaultInjection, RetryBackoffIsDeterministicCappedAndJittered) {
    RetryPolicy policy;
    policy.initial_backoff_ms = 100;
    policy.max_backoff_ms = 800;
    policy.multiplier = 2.0;
    policy.jitter = 0.5;
    policy.jitter_seed = 42;
    policy.validate();

    EXPECT_EQ(policy.backoff_ms(1), 0);  // the first attempt never waits
    for (int attempt = 2; attempt <= 12; ++attempt) {
        const int d = policy.backoff_ms(attempt);
        const double cap =
            std::min(100.0 * std::pow(2.0, attempt - 2), 800.0);
        EXPECT_GE(d, static_cast<int>(cap * 0.5) - 1) << attempt;
        EXPECT_LE(d, static_cast<int>(cap)) << attempt;
        EXPECT_EQ(d, policy.backoff_ms(attempt)) << "backoff must be replayable";
    }
    // Different seeds decorrelate (at least one attempt differs).
    RetryPolicy other = policy;
    other.jitter_seed = 43;
    bool any_diff = false;
    for (int attempt = 2; attempt <= 12; ++attempt)
        any_diff |= other.backoff_ms(attempt) != policy.backoff_ms(attempt);
    EXPECT_TRUE(any_diff);

    RetryPolicy bad = policy;
    bad.max_attempts = 0;
    EXPECT_THROW(bad.validate(), Error);
    bad = policy;
    bad.jitter = 1.5;
    EXPECT_THROW(bad.validate(), Error);
    bad = policy;
    bad.max_backoff_ms = 10;  // below initial
    EXPECT_THROW(bad.validate(), Error);
}

TEST(FaultInjection, AdmissionRetryOnlyCatchesBusyAndConnectFailures) {
    RetryPolicy policy;
    policy.max_attempts = 4;
    policy.initial_backoff_ms = 1;  // keep the unit test fast
    policy.max_backoff_ms = 2;

    // BUSY twice, then success: retried to completion.
    int calls = 0;
    const int result = with_admission_retry(policy, [&] {
        if (++calls < 3) throw net::ServerBusy{};
        return 17;
    });
    EXPECT_EQ(result, 17);
    EXPECT_EQ(calls, 3);

    // ConnectFailed is retryable in the same way.
    calls = 0;
    (void)with_admission_retry(policy, [&] {
        if (++calls < 2) throw net::ConnectFailed("nobody listening");
        return 0;
    });
    EXPECT_EQ(calls, 2);

    // Exhaustion rethrows the final BUSY.
    calls = 0;
    EXPECT_THROW((void)with_admission_retry(policy,
                                            [&]() -> int {
                                                ++calls;
                                                throw net::ServerBusy{};
                                            }),
                 net::ServerBusy);
    EXPECT_EQ(calls, policy.max_attempts);

    // The safety rule, enforced in code: a mid-protocol failure shape
    // (PeerClosed, timeout, codec error) is NEVER auto-retried — the
    // closure runs exactly once.
    calls = 0;
    EXPECT_THROW((void)with_admission_retry(policy,
                                            [&]() -> int {
                                                ++calls;
                                                throw net::PeerClosed("mid-online EOF");
                                            }),
                 net::PeerClosed);
    EXPECT_EQ(calls, 1);
    calls = 0;
    EXPECT_THROW((void)with_admission_retry(policy,
                                            [&]() -> int {
                                                ++calls;
                                                throw net::RecvTimeout("stalled peer");
                                            }),
                 net::RecvTimeout);
    EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace c2pi::pi
