// Tests for the network simulation layer: byte/message/flight accounting,
// phase attribution, typed send/recv helpers, the LAN/WAN latency model,
// and error propagation (peer poisoning) in the two-party runtime.

#include <gtest/gtest.h>

#include "net/cost_model.hpp"
#include "net/runtime.hpp"

namespace c2pi::net {
namespace {

TEST(Channel, CountsBytesPerSenderAndPhase) {
    DuplexChannel channel;
    run_two_party(
        channel,
        [](Transport& t) {
            t.set_phase(Phase::kOffline);
            t.send_bytes(std::vector<std::uint8_t>(100));
            t.set_phase(Phase::kOnline);
            t.send_bytes(std::vector<std::uint8_t>(7));
            (void)t.recv_bytes();
        },
        [](Transport& t) {
            (void)t.recv_bytes();
            (void)t.recv_bytes();
            t.send_bytes(std::vector<std::uint8_t>(11));
        });
    const auto s = channel.stats();
    EXPECT_EQ(s.bytes[static_cast<int>(Phase::kOffline)][0], 100U);
    EXPECT_EQ(s.bytes[static_cast<int>(Phase::kOnline)][0], 7U);
    EXPECT_EQ(s.bytes[static_cast<int>(Phase::kOnline)][1], 11U);
    EXPECT_EQ(s.total_bytes(), 118U);
    EXPECT_EQ(s.phase_bytes(Phase::kOffline), 100U);
}

TEST(Channel, FlightCountingTracksDirectionChanges) {
    DuplexChannel channel;
    run_two_party(
        channel,
        [](Transport& t) {
            // Two consecutive sends = one flight; then a reply flight; then
            // another server flight.
            t.send_u64(1);
            t.send_u64(2);
            (void)t.recv_u64();
            t.send_u64(3);
        },
        [](Transport& t) {
            (void)t.recv_u64();
            (void)t.recv_u64();
            t.send_u64(9);
            (void)t.recv_u64();
        });
    EXPECT_EQ(channel.stats().total_flights(), 3U);
}

TEST(ChannelStats, RecordCountsDirectionChangeRunsPerPhase) {
    // A flight is a maximal run of messages in ONE direction; it is
    // charged to the phase of the message that OPENS it, and a phase
    // change inside a run does not open a new flight.
    ChannelStats s;
    s.record(0, Phase::kOffline, 10);  // flight 1 (offline)
    s.record(0, Phase::kOffline, 10);  // same run
    s.record(0, Phase::kOnline, 10);   // same run: phase flip, no turn
    s.record(1, Phase::kOnline, 5);    // flight 2 (online)
    s.record(0, Phase::kOffline, 1);   // flight 3 (offline)
    s.record(1, Phase::kOffline, 1);   // flight 4 (offline)
    EXPECT_EQ(s.phase_flights(Phase::kOffline), 3U);
    EXPECT_EQ(s.phase_flights(Phase::kOnline), 1U);
    EXPECT_EQ(s.total_flights(), 4U);
    EXPECT_EQ(s.bytes[static_cast<int>(Phase::kOffline)][0], 21U);
    EXPECT_EQ(s.messages[static_cast<int>(Phase::kOffline)][0], 3U);
    EXPECT_EQ(s.messages[static_cast<int>(Phase::kOnline)][1], 1U);
}

TEST(Channel, FlightsAttributedToPhasesAcrossTheWireProtocol) {
    // The same per-phase attribution, end to end through a transport
    // pair: an offline run, an online reply, an offline turn.
    DuplexChannel channel;
    run_two_party(
        channel,
        [](Transport& t) {
            t.set_phase(Phase::kOffline);
            t.send_u64(1);  // flight 1 opens offline
            t.set_phase(Phase::kOnline);
            t.send_u64(2);  // same flight, now online bytes
            (void)t.recv_u64();
            t.set_phase(Phase::kOffline);
            t.send_u64(3);  // flight 3 opens offline
        },
        [](Transport& t) {
            (void)t.recv_u64();
            (void)t.recv_u64();
            t.send_u64(9);  // flight 2 opens online
            (void)t.recv_u64();
        });
    const auto s = channel.stats();
    EXPECT_EQ(s.phase_flights(Phase::kOffline), 2U);
    EXPECT_EQ(s.phase_flights(Phase::kOnline), 1U);
    EXPECT_EQ(s.phase_bytes(Phase::kOffline), 16U);
    EXPECT_EQ(s.phase_bytes(Phase::kOnline), 16U);
}

TEST(Channel, TypedHelpersRoundTrip) {
    DuplexChannel channel;
    std::vector<std::uint64_t> got;
    run_two_party(
        channel,
        [](Transport& t) {
            const std::vector<std::uint64_t> values{1, 0xFFFFFFFFFFFFFFFFULL, 42};
            t.send_u64s(values);
        },
        [&](Transport& t) { got = t.recv_u64s(); });
    EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 0xFFFFFFFFFFFFFFFFULL, 42}));
}

TEST(Channel, RecvU64sRejectsRaggedPayload) {
    DuplexChannel channel;
    EXPECT_THROW(run_two_party(
                     channel,
                     [](Transport& t) { t.send_bytes(std::vector<std::uint8_t>(3)); },
                     [](Transport& t) { (void)t.recv_u64s(); }),
                 Error);
}

TEST(Channel, ResetStatsClears) {
    DuplexChannel channel;
    run_two_party(
        channel, [](Transport& t) { t.send_u64(5); }, [](Transport& t) { (void)t.recv_u64(); });
    EXPECT_GT(channel.stats().total_bytes(), 0U);
    channel.reset_stats();
    EXPECT_EQ(channel.stats().total_bytes(), 0U);
    EXPECT_EQ(channel.stats().total_flights(), 0U);
}

TEST(Runtime, PropagatesServerException) {
    DuplexChannel channel;
    EXPECT_THROW(run_two_party(
                     channel, [](Transport&) { fail("server exploded"); },
                     [](Transport& t) { (void)t.recv_bytes(); }),
                 Error);
}

TEST(Runtime, PropagatesClientExceptionWhileServerBlocks) {
    // The poisoning mechanism must unblock the peer waiting on recv.
    DuplexChannel channel;
    EXPECT_THROW(run_two_party(
                     channel, [](Transport& t) { (void)t.recv_u64(); },
                     [](Transport&) { fail("client exploded"); }),
                 Error);
}

TEST(Runtime, ReportsWallTime) {
    DuplexChannel channel;
    const auto result = run_two_party(
        channel, [](Transport& t) { t.send_u64(1); }, [](Transport& t) { (void)t.recv_u64(); });
    EXPECT_GE(result.wall_seconds, 0.0);
    EXPECT_LT(result.wall_seconds, 5.0);
}

TEST(CostModel, PaperLinkParameters) {
    const auto lan = NetworkModel::lan();
    const auto wan = NetworkModel::wan();
    EXPECT_NEAR(lan.bandwidth_bytes_per_s, 384.0 * 1024 * 1024, 1.0);
    EXPECT_NEAR(lan.rtt_seconds, 0.3e-3, 1e-9);
    EXPECT_NEAR(wan.bandwidth_bytes_per_s, 44.0 * 1024 * 1024, 1.0);
    EXPECT_NEAR(wan.rtt_seconds, 40e-3, 1e-9);
}

TEST(CostModel, LatencyDecomposition) {
    const NetworkModel net{"test", 1000.0, 0.2};
    // 1s compute + 500 bytes / 1000 Bps + 4 flights * 0.1s = 1.9s.
    EXPECT_NEAR(net.latency_seconds(1.0, 500, 4), 1.9, 1e-12);
}

TEST(CostModel, WanDominatedByRoundTripsForChattyProtocols) {
    // Same bytes, many flights: WAN latency must blow up relative to LAN.
    const double lan = NetworkModel::lan().latency_seconds(0.0, 1 << 20, 100);
    const double wan = NetworkModel::wan().latency_seconds(0.0, 1 << 20, 100);
    EXPECT_GT(wan, 10.0 * lan);
}

}  // namespace
}  // namespace c2pi::net
