// Tests for the MPC protocol layer: fixed-point ring tensors, truncation
// error bounds, millionaire comparison, DReLU, multiplexer, secure ReLU
// under both backends, secure MaxPool, and HE-based conv/FC protocols —
// each verified against plaintext references over the threaded channel.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "mpc/linear.hpp"
#include "tensor/tensor_ops.hpp"
#include "mpc/nonlinear.hpp"
#include "net/runtime.hpp"

namespace c2pi::mpc {
namespace {

struct MpcFixture {
    net::DuplexChannel channel;
    FixedPointFormat fmt{.frac_bits = 16};
    he::BfvContext bfv{he::BfvContext::Params{.n = 1024, .limbs = 4, .noise_bound = 4}};
    crypto::Block128 session_seed{0xDEAD, 0xBEEF};

    /// Run server/client bodies with fresh contexts; returns both outputs.
    template <typename S, typename C>
    void run(S&& server_body, C&& client_body) {
        net::run_two_party(
            channel,
            [&](net::Transport& t) {
                PartyContext ctx(t, fmt, bfv, session_seed);
                server_body(ctx);
            },
            [&](net::Transport& t) {
                PartyContext ctx(t, fmt, bfv, session_seed);
                crypto::ChaCha20Prg key_prg(crypto::Block128{42, 43});
                ctx.set_client_key(bfv.keygen(key_prg));
                client_body(ctx);
            });
    }
};

/// Split plaintext ring values into random shares.
std::pair<std::vector<Ring>, std::vector<Ring>> make_shares(std::span<const Ring> values,
                                                            std::uint64_t seed) {
    c2pi::Rng rng(seed);
    std::vector<Ring> s0(values.size()), s1(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        s0[i] = rng.next_u64();
        s1[i] = values[i] - s0[i];
    }
    return {std::move(s0), std::move(s1)};
}

TEST(RingTensorOps, EncodeDecodeRoundTrip) {
    const FixedPointFormat fmt{.frac_bits = 16};
    c2pi::Rng rng(1);
    const Tensor t = Tensor::uniform({2, 3, 4}, rng, -5.0F, 5.0F);
    const RingTensor r = encode_tensor(t, fmt);
    const Tensor back = decode_tensor(r, fmt);
    EXPECT_TRUE(t.allclose(back, 2.0F / static_cast<float>(fmt.scale())));
}

TEST(RingTensorOps, TruncationErrorWithinOneUlp) {
    const FixedPointFormat fmt{.frac_bits = 16};
    c2pi::Rng rng(2);
    for (int trial = 0; trial < 200; ++trial) {
        const double value = rng.uniform(-100.0F, 100.0F);
        // Scale-2f value split into random shares, truncated per share.
        const Ring v2f = static_cast<Ring>(
            static_cast<std::int64_t>(std::llround(value * fmt.scale() * fmt.scale())));
        const Ring s0 = rng.next_u64();
        const Ring s1 = v2f - s0;
        const Ring t0 = static_cast<Ring>(static_cast<std::int64_t>(s0) >> fmt.frac_bits);
        const Ring t1 = static_cast<Ring>(static_cast<std::int64_t>(s1) >> fmt.frac_bits);
        const double back = fmt.decode(t0 + t1);
        EXPECT_NEAR(back, value, 3.0 / fmt.scale()) << value;
    }
}

TEST(Millionaire, ComparesCorrectly) {
    MpcFixture fx;
    c2pi::Rng rng(3);
    const std::size_t n = 64;
    std::vector<Ring> a(n), c(n);
    constexpr Ring kLow = (Ring{1} << 63) - 1;
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.next_u64() & kLow;
        c[i] = rng.next_u64() & kLow;
    }
    a[0] = c[0];       // equality edge
    a[1] = c[1] + 1;   // just above
    a[2] = c[2] - 1;   // just below (if c[2]>0)
    BitVec b0, b1;
    fx.run([&](PartyContext& ctx) { b0 = millionaire_party0(ctx, a); },
           [&](PartyContext& ctx) { b1 = millionaire_party1(ctx, c); });
    for (std::size_t i = 0; i < n; ++i) {
        const bool want = a[i] > c[i];
        EXPECT_EQ((b0[i] ^ b1[i]) != 0, want) << "element " << i;
    }
}

TEST(Drelu, SignSharesCorrect) {
    MpcFixture fx;
    c2pi::Rng rng(4);
    const std::size_t n = 100;
    std::vector<Ring> values(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double v = rng.uniform(-50.0F, 50.0F);
        values[i] = fx.fmt.encode(v);
    }
    values[0] = 0;                      // zero edge: counts as non-negative
    values[1] = fx.fmt.encode(-0.0001); // tiny negative
    auto [s0, s1] = make_shares(values, 5);
    BitVec b0, b1;
    fx.run([&](PartyContext& ctx) { b0 = drelu_shares(ctx, s0); },
           [&](PartyContext& ctx) { b1 = drelu_shares(ctx, s1); });
    for (std::size_t i = 0; i < n; ++i) {
        const bool non_negative = static_cast<std::int64_t>(values[i]) >= 0;
        EXPECT_EQ((b0[i] ^ b1[i]) != 0, non_negative) << "element " << i;
    }
}

TEST(Mux, SelectsValueOrZero) {
    MpcFixture fx;
    c2pi::Rng rng(6);
    const std::size_t n = 50;
    std::vector<Ring> values(n);
    std::vector<std::uint8_t> bits(n), bits0(n), bits1(n);
    for (std::size_t i = 0; i < n; ++i) {
        values[i] = rng.next_u64();
        bits[i] = static_cast<std::uint8_t>(rng.next_u64() & 1);
        bits0[i] = static_cast<std::uint8_t>(rng.next_u64() & 1);
        bits1[i] = bits[i] ^ bits0[i];
    }
    auto [s0, s1] = make_shares(values, 7);
    std::vector<Ring> z0, z1;
    fx.run([&](PartyContext& ctx) { z0 = mux_shares(ctx, bits0, s0); },
           [&](PartyContext& ctx) { z1 = mux_shares(ctx, bits1, s1); });
    for (std::size_t i = 0; i < n; ++i) {
        const Ring want = bits[i] ? values[i] : 0;
        EXPECT_EQ(z0[i] + z1[i], want) << i;
    }
}

class SecureReluTest : public ::testing::TestWithParam<NonlinearBackend> {};

TEST_P(SecureReluTest, MatchesPlaintextRelu) {
    const NonlinearBackend backend = GetParam();
    MpcFixture fx;
    c2pi::Rng rng(8);
    const std::size_t n = 80;
    std::vector<Ring> values(n);
    std::vector<double> plain(n);
    for (std::size_t i = 0; i < n; ++i) {
        plain[i] = rng.uniform(-20.0F, 20.0F);
        values[i] = fx.fmt.encode(plain[i]);
    }
    auto [s0, s1] = make_shares(values, 9);
    std::vector<Ring> z0, z1;
    fx.run([&](PartyContext& ctx) { z0 = secure_relu(ctx, s0, backend); },
           [&](PartyContext& ctx) { z1 = secure_relu(ctx, s1, backend); });
    for (std::size_t i = 0; i < n; ++i) {
        const double want = plain[i] > 0 ? plain[i] : 0.0;
        EXPECT_NEAR(fx.fmt.decode(z0[i] + z1[i]), want, 2.0 / fx.fmt.scale()) << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Backends, SecureReluTest,
                         ::testing::Values(NonlinearBackend::kGarbledCircuit,
                                           NonlinearBackend::kOtMillionaire,
                                           NonlinearBackend::kFss));

TEST(SecureRelu, GcBackendHonoursPinnedClientShare) {
    MpcFixture fx;
    c2pi::Rng rng(10);
    const std::size_t n = 16;
    std::vector<Ring> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = fx.fmt.encode(rng.uniform(-5.0F, 5.0F));
    auto [s0, s1] = make_shares(values, 11);
    std::vector<Ring> pinned(n);
    for (std::size_t i = 0; i < n; ++i) pinned[i] = 0x1000 + i;
    std::vector<Ring> z0, z1;
    fx.run(
        [&](PartyContext& ctx) {
            z0 = secure_relu(ctx, s0, NonlinearBackend::kGarbledCircuit);
        },
        [&](PartyContext& ctx) {
            z1 = secure_relu(ctx, s1, NonlinearBackend::kGarbledCircuit, pinned);
        });
    EXPECT_EQ(z1, pinned);
    for (std::size_t i = 0; i < n; ++i) {
        const double want = std::max(fx.fmt.decode(values[i]), 0.0);
        EXPECT_NEAR(fx.fmt.decode(z0[i] + z1[i]), want, 2.0 / fx.fmt.scale());
    }
}

class SecureMaxPoolTest : public ::testing::TestWithParam<NonlinearBackend> {};

TEST_P(SecureMaxPoolTest, MatchesPlaintextMaxPool) {
    const NonlinearBackend backend = GetParam();
    MpcFixture fx;
    c2pi::Rng rng(12);
    const std::int64_t c = 2, h = 6, w = 6;
    Tensor x({1, c, h, w});
    for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-3.0F, 3.0F);
    const auto pooled = c2pi::ops::maxpool2d(x, 2, 2);

    RingTensor rx({c, h, w});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        rx.data[static_cast<std::size_t>(i)] = fx.fmt.encode(x[i]);
    auto [s0, s1] = make_shares(rx.data, 13);

    RingTensor z0, z1;
    fx.run(
        [&](PartyContext& ctx) {
            z0 = secure_maxpool(ctx, RingTensor({c, h, w}, s0), 2, 2, backend);
        },
        [&](PartyContext& ctx) {
            z1 = secure_maxpool(ctx, RingTensor({c, h, w}, s1), 2, 2, backend);
        });
    ASSERT_EQ(z0.shape, (Shape{c, 3, 3}));
    for (std::int64_t i = 0; i < pooled.output.numel(); ++i) {
        EXPECT_NEAR(fx.fmt.decode(z0.data[static_cast<std::size_t>(i)] +
                                  z1.data[static_cast<std::size_t>(i)]),
                    pooled.output[i], 2.0 / fx.fmt.scale())
            << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Backends, SecureMaxPoolTest,
                         ::testing::Values(NonlinearBackend::kGarbledCircuit,
                                           NonlinearBackend::kOtMillionaire,
                                           NonlinearBackend::kFss));

TEST(Reveal, BothPartiesRecoverValue) {
    MpcFixture fx;
    std::vector<Ring> values{1, 2, 0xFFFFFFFFFFFFFFFFULL};
    auto [s0, s1] = make_shares(values, 14);
    std::vector<Ring> r0, r1;
    fx.run([&](PartyContext& ctx) { r0 = reveal_shares(ctx, s0); },
           [&](PartyContext& ctx) { r1 = reveal_shares(ctx, s1); });
    EXPECT_EQ(r0, values);
    EXPECT_EQ(r1, values);
}

TEST(Reveal, DirectedRevealOnlyToTarget) {
    MpcFixture fx;
    std::vector<Ring> values{7, 8, 9};
    auto [s0, s1] = make_shares(values, 15);
    std::vector<Ring> r0, r1;
    fx.run([&](PartyContext& ctx) { r0 = reveal_shares_to(ctx, s0, kServer); },
           [&](PartyContext& ctx) { r1 = reveal_shares_to(ctx, s1, kServer); });
    EXPECT_EQ(r0, values);
    EXPECT_TRUE(r1.empty());
}

TEST(HeConv, SharesSumToPlaintextConv) {
    MpcFixture fx;
    c2pi::Rng rng(16);
    const he::ConvGeometry geo{.in_channels = 3, .height = 8, .width = 8, .out_channels = 4,
                               .kernel = 3, .stride = 1, .pad = 1};
    std::vector<Ring> x(static_cast<std::size_t>(geo.in_channels * geo.height * geo.width));
    for (auto& v : x) v = fx.fmt.encode(rng.uniform(-1.0F, 1.0F));
    std::vector<Ring> w(static_cast<std::size_t>(geo.out_channels * geo.in_channels * 9));
    for (auto& v : w) v = fx.fmt.encode(rng.uniform(-0.5F, 0.5F));
    std::vector<Ring> bias(static_cast<std::size_t>(geo.out_channels));
    for (std::size_t i = 0; i < bias.size(); ++i)
        bias[i] = static_cast<Ring>(static_cast<std::int64_t>(
            std::llround(0.1 * static_cast<double>(i + 1) * fx.fmt.scale() * fx.fmt.scale())));

    auto [x0, x1] = make_shares(x, 17);
    std::vector<Ring> y0, y1;
    fx.run([&](PartyContext& ctx) { y0 = he_conv_server(ctx, geo, w, bias, x0); },
           [&](PartyContext& ctx) { y1 = he_conv_client(ctx, geo, x1); });

    auto want = ring_conv2d(geo, x, w);
    const std::int64_t pixels = geo.out_h() * geo.out_w();
    for (std::int64_t o = 0; o < geo.out_channels; ++o)
        for (std::int64_t i = 0; i < pixels; ++i)
            want[static_cast<std::size_t>(o * pixels + i)] += bias[static_cast<std::size_t>(o)];
    ASSERT_EQ(y0.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(y0[i] + y1[i], want[i]) << i;
}

TEST(HeConv, MultiGroupGeometry) {
    MpcFixture fx;  // n=1024, 10x10 padded to 12x12=144 -> 7 channels/group
    c2pi::Rng rng(18);
    const he::ConvGeometry geo{.in_channels = 9, .height = 10, .width = 10, .out_channels = 2,
                               .kernel = 3, .stride = 1, .pad = 1};
    std::vector<Ring> x(static_cast<std::size_t>(geo.in_channels * 100));
    for (auto& v : x) v = rng.next_u64();
    std::vector<Ring> w(static_cast<std::size_t>(geo.out_channels * geo.in_channels * 9));
    for (auto& v : w)
        v = static_cast<Ring>(static_cast<std::int64_t>(rng.next_u64() % 1001) - 500);

    auto [x0, x1] = make_shares(x, 19);
    std::vector<Ring> y0, y1;
    fx.run([&](PartyContext& ctx) { y0 = he_conv_server(ctx, geo, w, {}, x0); },
           [&](PartyContext& ctx) { y1 = he_conv_client(ctx, geo, x1); });
    const auto want = ring_conv2d(geo, x, w);
    for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(y0[i] + y1[i], want[i]) << i;
}

TEST(HeMatVec, SharesSumToPlaintextMatVec) {
    MpcFixture fx;
    c2pi::Rng rng(20);
    const std::int64_t in = 96, out = 30;
    std::vector<Ring> x(static_cast<std::size_t>(in)), w(static_cast<std::size_t>(in * out));
    for (auto& v : x) v = rng.next_u64();
    for (auto& v : w)
        v = static_cast<Ring>(static_cast<std::int64_t>(rng.next_u64() % 1001) - 500);
    std::vector<Ring> bias(static_cast<std::size_t>(out));
    for (auto& v : bias) v = rng.next_u64() % 10000;

    auto [x0, x1] = make_shares(x, 21);
    std::vector<Ring> y0, y1;
    fx.run([&](PartyContext& ctx) { y0 = he_matvec_server(ctx, in, out, w, bias, x0); },
           [&](PartyContext& ctx) { y1 = he_matvec_client(ctx, in, out, x1); });
    auto want = ring_matvec(w, x, in, out);
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(y0[i] + y1[i], want[i] + bias[i]) << i;
}

TEST(Traffic, GcReluChargesOfflineTables) {
    MpcFixture fx;
    c2pi::Rng rng(22);
    const std::size_t n = 32;
    std::vector<Ring> values(n);
    for (auto& v : values) v = fx.fmt.encode(rng.uniform(-1.0F, 1.0F));
    auto [s0, s1] = make_shares(values, 23);
    fx.run([&](PartyContext& ctx) { (void)secure_relu(ctx, s0, NonlinearBackend::kGarbledCircuit); },
           [&](PartyContext& ctx) { (void)secure_relu(ctx, s1, NonlinearBackend::kGarbledCircuit); });
    const auto stats = fx.channel.stats();
    EXPECT_GT(stats.phase_bytes(net::Phase::kOffline), 0U);   // garbled tables
    EXPECT_GT(stats.phase_bytes(net::Phase::kOnline), 0U);    // labels + OT
    // Tables dominate: GC offline >> online for ReLU.
    EXPECT_GT(stats.phase_bytes(net::Phase::kOffline), stats.phase_bytes(net::Phase::kOnline));
}

TEST(Traffic, OtReluIsOnlineOnly) {
    MpcFixture fx;
    c2pi::Rng rng(24);
    const std::size_t n = 32;
    std::vector<Ring> values(n);
    for (auto& v : values) v = fx.fmt.encode(rng.uniform(-1.0F, 1.0F));
    auto [s0, s1] = make_shares(values, 25);
    fx.run([&](PartyContext& ctx) { (void)secure_relu(ctx, s0, NonlinearBackend::kOtMillionaire); },
           [&](PartyContext& ctx) { (void)secure_relu(ctx, s1, NonlinearBackend::kOtMillionaire); });
    const auto stats = fx.channel.stats();
    EXPECT_EQ(stats.phase_bytes(net::Phase::kOffline), 0U);
    EXPECT_GT(stats.phase_bytes(net::Phase::kOnline), 0U);
}

}  // namespace
}  // namespace c2pi::mpc
