// Tests for the mini-BFV stack: modular arithmetic, NTT round-trips and
// negacyclic product property, BFV encrypt/decrypt correctness over the
// full 2^64 plaintext ring, homomorphic conv/matvec against plaintext
// reference, mod-switch, and serialized-size accounting.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "he/bfv.hpp"
#include "he/encoding.hpp"

namespace c2pi::he {
namespace {

// ---------------------------------------------------------------- modmath ---

TEST(ModMath, MulModMatchesInt128) {
    c2pi::Rng rng(1);
    const u64 p = next_ntt_prime(1ULL << 49, 1 << 13);
    for (int i = 0; i < 200; ++i) {
        const u64 a = rng.next_u64() % p;
        const u64 b = rng.next_u64() % p;
        EXPECT_EQ(mul_mod(a, b, p), static_cast<u64>((static_cast<u128>(a) * b) % p));
    }
}

TEST(ModMath, ShoupMultiplicationAgrees) {
    c2pi::Rng rng(2);
    const u64 p = next_ntt_prime(1ULL << 49, 1 << 13);
    for (int i = 0; i < 200; ++i) {
        const u64 w = rng.next_u64() % p;
        const u64 ws = shoup_precompute(w, p);
        const u64 a = rng.next_u64() % p;
        EXPECT_EQ(mul_mod_shoup(a, w, ws, p), mul_mod(a, w, p));
    }
}

TEST(ModMath, PrimalityKnownValues) {
    EXPECT_TRUE(is_prime(2));
    EXPECT_TRUE(is_prime(1000000007ULL));
    EXPECT_TRUE(is_prime((1ULL << 61) - 1));  // Mersenne prime
    EXPECT_FALSE(is_prime(1));
    EXPECT_FALSE(is_prime(561));         // Carmichael
    EXPECT_FALSE(is_prime(3215031751ULL));  // strong pseudoprime to bases 2,3,5,7
}

TEST(ModMath, NttPrimeHasCorrectResidue) {
    const u64 p = next_ntt_prime(1ULL << 49, 8192);
    EXPECT_TRUE(is_prime(p));
    EXPECT_EQ((p - 1) % 8192, 0U);
}

TEST(ModMath, PrimitiveRootHasOrderTwoN) {
    const u64 two_n = 4096;
    const u64 p = next_ntt_prime(1ULL << 49, two_n);
    const u64 psi = find_primitive_root(p, two_n);
    EXPECT_EQ(pow_mod(psi, two_n / 2, p), p - 1);  // psi^n = -1
    EXPECT_EQ(pow_mod(psi, two_n, p), 1U);
}

TEST(ModMath, InverseIsInverse) {
    const u64 p = next_ntt_prime(1ULL << 49, 4096);
    for (const u64 a : {u64{2}, u64{12345}, u64{p - 1}}) {
        EXPECT_EQ(mul_mod(a, inv_mod(a, p), p), 1U);
    }
}

// -------------------------------------------------------------------- NTT ---

class NttSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NttSizeTest, ForwardInverseRoundTrip) {
    const std::size_t n = GetParam();
    const u64 p = next_ntt_prime(1ULL << 49, 2 * n);
    const NttTables tables(p, n);
    c2pi::Rng rng(3);
    std::vector<u64> a(n);
    for (auto& v : a) v = rng.next_u64() % p;
    auto b = a;
    tables.forward(b);
    tables.inverse(b);
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NttSizeTest, ::testing::Values(16, 64, 256, 1024, 4096));

/// The seed's exact-reduction NTT, reimplemented as a reference: every
/// butterfly fully reduces mod p. The production NttTables switched to
/// Harvey-style lazy reduction (coefficients < 4p, one closing pass), so
/// this property test pins the lazy path to the exact one bit-for-bit.
struct ReferenceNtt {
    u64 p;
    std::size_t n;
    std::vector<u64> psi_rev, ipsi_rev;
    u64 n_inv;

    ReferenceNtt(u64 prime, std::size_t size) : p(prime), n(size) {
        int log_n = 0;
        while ((std::size_t{1} << log_n) < n) ++log_n;
        const u64 psi = find_primitive_root(p, 2 * static_cast<u64>(n));
        const u64 ipsi = inv_mod(psi, p);
        std::vector<u64> psi_powers(n), ipsi_powers(n);
        u64 power = 1, ipower = 1;
        for (std::size_t i = 0; i < n; ++i) {
            psi_powers[i] = power;
            ipsi_powers[i] = ipower;
            power = mul_mod(power, psi, p);
            ipower = mul_mod(ipower, ipsi, p);
        }
        const auto bit_reverse = [log_n](std::size_t x) {
            std::size_t r = 0;
            for (int b = 0; b < log_n; ++b) {
                r = (r << 1) | (x & 1U);
                x >>= 1;
            }
            return r;
        };
        psi_rev.resize(n);
        ipsi_rev.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            psi_rev[i] = psi_powers[bit_reverse(i)];
            ipsi_rev[i] = ipsi_powers[bit_reverse(i)];
        }
        n_inv = inv_mod(static_cast<u64>(n), p);
    }

    void forward(std::vector<u64>& a) const {
        std::size_t t = n;
        for (std::size_t m = 1; m < n; m <<= 1) {
            t >>= 1;
            for (std::size_t i = 0; i < m; ++i) {
                const std::size_t j1 = 2 * i * t;
                const u64 s = psi_rev[m + i];
                for (std::size_t j = j1; j < j1 + t; ++j) {
                    const u64 u = a[j];
                    const u64 v = mul_mod(a[j + t], s, p);
                    a[j] = add_mod(u, v, p);
                    a[j + t] = sub_mod(u, v, p);
                }
            }
        }
    }

    void inverse(std::vector<u64>& a) const {
        std::size_t t = 1;
        for (std::size_t m = n; m > 1; m >>= 1) {
            std::size_t j1 = 0;
            const std::size_t h = m >> 1;
            for (std::size_t i = 0; i < h; ++i) {
                const u64 s = ipsi_rev[h + i];
                for (std::size_t j = j1; j < j1 + t; ++j) {
                    const u64 u = a[j];
                    const u64 v = a[j + t];
                    a[j] = add_mod(u, v, p);
                    a[j + t] = mul_mod(sub_mod(u, v, p), s, p);
                }
                j1 += 2 * t;
            }
            t <<= 1;
        }
        for (auto& coeff : a) coeff = mul_mod(coeff, n_inv, p);
    }
};

class NttLazyReductionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NttLazyReductionTest, MatchesExactReductionReference) {
    const std::size_t n = GetParam();
    const u64 p = next_ntt_prime(1ULL << 49, 2 * n);
    const NttTables lazy(p, n);
    const ReferenceNtt exact(p, n);
    c2pi::Rng rng(17 + n);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<u64> a(n);
        for (auto& v : a) v = rng.next_u64() % p;
        // Edge coefficients: 0 and p-1 stress the lazy bounds.
        a[0] = 0;
        a[n - 1] = p - 1;

        auto lazy_fwd = a, exact_fwd = a;
        lazy.forward(lazy_fwd);
        exact.forward(exact_fwd);
        ASSERT_EQ(lazy_fwd, exact_fwd) << "forward diverged, trial " << trial;
        for (const u64 v : lazy_fwd) ASSERT_LT(v, p) << "forward output not fully reduced";

        auto lazy_inv = lazy_fwd, exact_inv = exact_fwd;
        lazy.inverse(lazy_inv);
        exact.inverse(exact_inv);
        ASSERT_EQ(lazy_inv, exact_inv) << "inverse diverged, trial " << trial;
        ASSERT_EQ(lazy_inv, a) << "round trip lost the input, trial " << trial;
        for (const u64 v : lazy_inv) ASSERT_LT(v, p) << "inverse output not fully reduced";
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NttLazyReductionTest, ::testing::Values(16, 256, 1024));

TEST(Ntt, PointwiseProductIsNegacyclicConvolution) {
    const std::size_t n = 32;
    const u64 p = next_ntt_prime(1ULL << 49, 2 * n);
    const NttTables tables(p, n);
    c2pi::Rng rng(4);
    std::vector<u64> a(n), b(n);
    for (auto& v : a) v = rng.next_u64() % 1000;
    for (auto& v : b) v = rng.next_u64() % 1000;

    // Reference negacyclic product mod p.
    std::vector<u64> want(n, 0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            const std::size_t k = i + j;
            const u64 prod = mul_mod(a[i], b[j], p);
            if (k < n)
                want[k] = add_mod(want[k], prod, p);
            else
                want[k - n] = sub_mod(want[k - n], prod, p);
        }

    auto fa = a, fb = b;
    tables.forward(fa);
    tables.forward(fb);
    std::vector<u64> fc(n);
    for (std::size_t i = 0; i < n; ++i) fc[i] = mul_mod(fa[i], fb[i], p);
    tables.inverse(fc);
    EXPECT_EQ(fc, want);
}

// -------------------------------------------------------------------- BFV ---

BfvContext::Params small_params() {
    BfvContext::Params p;
    p.n = 256;
    p.limbs = 4;
    return p;
}

TEST(Bfv, EncryptDecryptRoundTripSmallValues) {
    const BfvContext ctx(small_params());
    crypto::ChaCha20Prg prg(crypto::Block128{1, 2});
    const SecretKey sk = ctx.keygen(prg);
    std::vector<Ring> plain(ctx.n());
    for (std::size_t i = 0; i < plain.size(); ++i) plain[i] = i * 3;
    const Ciphertext ct = ctx.encrypt(plain, sk, prg);
    EXPECT_EQ(ctx.decrypt(ct, sk), plain);
}

TEST(Bfv, EncryptDecryptFullRangeRingValues) {
    const BfvContext ctx(small_params());
    crypto::ChaCha20Prg prg(crypto::Block128{3, 4});
    const SecretKey sk = ctx.keygen(prg);
    c2pi::Rng rng(5);
    std::vector<Ring> plain(ctx.n());
    for (auto& v : plain) v = rng.next_u64();  // uniform shares: full range
    const Ciphertext ct = ctx.encrypt(plain, sk, prg);
    EXPECT_EQ(ctx.decrypt(ct, sk), plain);
}

TEST(Bfv, HomomorphicPlainMultiplyMatchesNegacyclicRingProduct) {
    const BfvContext ctx(small_params());
    crypto::ChaCha20Prg prg(crypto::Block128{5, 6});
    const SecretKey sk = ctx.keygen(prg);
    c2pi::Rng rng(6);
    std::vector<Ring> plain(ctx.n()), weight(ctx.n(), 0);
    for (auto& v : plain) v = rng.next_u64();
    for (std::size_t i = 0; i < 20; ++i)
        weight[i] = static_cast<Ring>(static_cast<std::int64_t>(rng.next_u64() % 4001) - 2000);

    Ciphertext ct = ctx.encrypt(plain, sk, prg);
    ctx.to_ntt(ct);
    Ciphertext acc = ctx.make_accumulator();
    const RnsPoly w = ctx.lift_to_ntt(weight);
    ctx.multiply_plain_accumulate(ct, w, acc);
    ctx.from_ntt(acc);
    const auto got = ctx.decrypt(acc, sk);

    // Negacyclic product over Z_{2^64}.
    std::vector<Ring> want(ctx.n(), 0);
    for (std::size_t i = 0; i < ctx.n(); ++i) {
        if (weight[i] == 0 && i >= 20) continue;
        for (std::size_t j = 0; j < ctx.n(); ++j) {
            const Ring prod = plain[j] * weight[i];
            const std::size_t k = i + j;
            if (k < ctx.n())
                want[k] += prod;
            else
                want[k - ctx.n()] -= prod;
        }
    }
    EXPECT_EQ(got, want);
}

TEST(Bfv, AddPlainFoldsIntoMessage) {
    const BfvContext ctx(small_params());
    crypto::ChaCha20Prg prg(crypto::Block128{7, 8});
    const SecretKey sk = ctx.keygen(prg);
    std::vector<Ring> plain(ctx.n(), 10), extra(ctx.n());
    c2pi::Rng rng(7);
    for (auto& v : extra) v = rng.next_u64();
    Ciphertext ct = ctx.encrypt(plain, sk, prg);
    ctx.add_plain_inplace(ct, extra);
    const auto got = ctx.decrypt(ct, sk);
    for (std::size_t i = 0; i < ctx.n(); ++i) EXPECT_EQ(got[i], plain[i] + extra[i]);
}

TEST(Bfv, ModSwitchPreservesMessage) {
    const BfvContext ctx(small_params());
    crypto::ChaCha20Prg prg(crypto::Block128{9, 10});
    const SecretKey sk = ctx.keygen(prg);
    c2pi::Rng rng(8);
    std::vector<Ring> plain(ctx.n());
    for (auto& v : plain) v = rng.next_u64();
    Ciphertext ct = ctx.encrypt(plain, sk, prg);
    ctx.mod_switch_to_two_limbs(ct);
    EXPECT_EQ(ct.active_limbs(), 2);
    EXPECT_EQ(ctx.decrypt(ct, sk), plain);
}

TEST(Bfv, ModSwitchAfterMultiplyPreservesMessage) {
    const BfvContext ctx(small_params());
    crypto::ChaCha20Prg prg(crypto::Block128{11, 12});
    const SecretKey sk = ctx.keygen(prg);
    c2pi::Rng rng(9);
    std::vector<Ring> plain(ctx.n()), weight(ctx.n(), 0);
    for (auto& v : plain) v = rng.next_u64();
    for (std::size_t i = 0; i < 16; ++i) weight[i] = rng.next_u64() % 1000;

    Ciphertext ct = ctx.encrypt(plain, sk, prg);
    ctx.to_ntt(ct);
    Ciphertext acc = ctx.make_accumulator();
    ctx.multiply_plain_accumulate(ct, ctx.lift_to_ntt(weight), acc);
    ctx.from_ntt(acc);
    const auto before = ctx.decrypt(acc, sk);
    ctx.mod_switch_to_two_limbs(acc);
    EXPECT_EQ(ctx.decrypt(acc, sk), before);
}

TEST(Bfv, SerializedSizesMatchSpec) {
    const BfvContext ctx(small_params());
    crypto::ChaCha20Prg prg(crypto::Block128{13, 14});
    const SecretKey sk = ctx.keygen(prg);
    std::vector<Ring> plain(ctx.n(), 1);
    Ciphertext fresh = ctx.encrypt(plain, sk, prg);
    // Fresh: c0 full (4 limbs * n * 8) + 32-byte seed.
    EXPECT_EQ(ctx.serialized_bytes(fresh), 4U * ctx.n() * 8 + 32);
    ctx.mod_switch_to_two_limbs(fresh);
    // Switched response: both polys at 2 limbs.
    EXPECT_EQ(ctx.serialized_bytes(fresh), 2U * (2U * ctx.n() * 8));
}

// ---------------------------------------------------------------- encoding ---

/// Plaintext conv reference over the ring (exact arithmetic mod 2^64).
std::vector<Ring> ring_conv_reference(const ConvGeometry& g, std::span<const Ring> x,
                                      std::span<const Ring> w) {
    std::vector<Ring> y(static_cast<std::size_t>(g.out_channels * g.out_h() * g.out_w()), 0);
    for (std::int64_t o = 0; o < g.out_channels; ++o)
        for (std::int64_t oy = 0; oy < g.out_h(); ++oy)
            for (std::int64_t ox = 0; ox < g.out_w(); ++ox) {
                Ring acc = 0;
                for (std::int64_t c = 0; c < g.in_channels; ++c)
                    for (std::int64_t ky = 0; ky < g.kernel; ++ky)
                        for (std::int64_t kx = 0; kx < g.kernel; ++kx) {
                            const std::int64_t iy = oy * g.stride - g.pad + ky;
                            const std::int64_t ix = ox * g.stride - g.pad + kx;
                            if (iy < 0 || iy >= g.height || ix < 0 || ix >= g.width) continue;
                            acc += x[static_cast<std::size_t>((c * g.height + iy) * g.width + ix)] *
                                   w[static_cast<std::size_t>(((o * g.in_channels + c) * g.kernel + ky) *
                                                              g.kernel + kx)];
                        }
                y[static_cast<std::size_t>((o * g.out_h() + oy) * g.out_w() + ox)] = acc;
            }
    return y;
}

struct ConvEncCase {
    std::int64_t c, hw, o, kernel, stride, pad;
};

class ConvEncodingTest : public ::testing::TestWithParam<ConvEncCase> {};

TEST_P(ConvEncodingTest, HomomorphicConvMatchesRingReference) {
    const auto p = GetParam();
    BfvContext::Params params;
    params.n = 1024;
    params.limbs = 4;
    const BfvContext ctx(params);
    const ConvGeometry geo{.in_channels = p.c,
                           .height = p.hw,
                           .width = p.hw,
                           .out_channels = p.o,
                           .kernel = p.kernel,
                           .stride = p.stride,
                           .pad = p.pad};
    const ConvEncoder enc(ctx, geo);

    c2pi::Rng rng(11);
    std::vector<Ring> x(static_cast<std::size_t>(p.c * p.hw * p.hw));
    for (auto& v : x) v = rng.next_u64();  // full-range shares
    std::vector<Ring> w(static_cast<std::size_t>(p.o * p.c * p.kernel * p.kernel));
    for (auto& v : w)
        v = static_cast<Ring>(static_cast<std::int64_t>(rng.next_u64() % 2001) - 1000);

    crypto::ChaCha20Prg prg(crypto::Block128{15, 16});
    const SecretKey sk = ctx.keygen(prg);

    // One accumulator per output channel, summed over input groups.
    std::vector<Ciphertext> input_cts;
    for (std::int64_t g = 0; g < enc.num_groups(); ++g) {
        Ciphertext ct = ctx.encrypt(enc.encode_input_group(x, g), sk, prg);
        ctx.to_ntt(ct);
        input_cts.push_back(std::move(ct));
    }
    const auto want = ring_conv_reference(geo, x, w);
    for (std::int64_t o = 0; o < p.o; ++o) {
        Ciphertext acc = ctx.make_accumulator();
        for (std::int64_t g = 0; g < enc.num_groups(); ++g) {
            ctx.multiply_plain_accumulate(input_cts[static_cast<std::size_t>(g)],
                                          ctx.lift_to_ntt(enc.encode_weight(w, g, o)), acc);
        }
        ctx.from_ntt(acc);
        ctx.mod_switch_to_two_limbs(acc);
        const auto poly = ctx.decrypt(acc, sk);
        const auto got = enc.gather_outputs(poly);
        for (std::int64_t i = 0; i < geo.out_h() * geo.out_w(); ++i) {
            EXPECT_EQ(got[static_cast<std::size_t>(i)],
                      want[static_cast<std::size_t>(o * geo.out_h() * geo.out_w() + i)])
                << "o=" << o << " i=" << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvEncodingTest,
                         ::testing::Values(ConvEncCase{3, 8, 4, 3, 1, 1},    // one group
                                           ConvEncCase{8, 8, 2, 3, 1, 1},    // multiple groups
                                           ConvEncCase{1, 8, 3, 3, 1, 0},    // no padding
                                           ConvEncCase{2, 9, 2, 3, 2, 1},    // stride 2
                                           ConvEncCase{4, 6, 5, 5, 1, 2},    // 5x5 kernel
                                           ConvEncCase{2, 30, 2, 3, 1, 1})); // plane ~ n boundary

TEST(MatVecEncoding, HomomorphicMatVecMatchesRingReference) {
    BfvContext::Params params;
    params.n = 256;
    const BfvContext ctx(params);
    const std::int64_t in = 48, out = 20;
    const MatVecEncoder enc(ctx, in, out);

    c2pi::Rng rng(12);
    std::vector<Ring> x(static_cast<std::size_t>(in));
    for (auto& v : x) v = rng.next_u64();
    std::vector<Ring> w(static_cast<std::size_t>(in * out));
    for (auto& v : w)
        v = static_cast<Ring>(static_cast<std::int64_t>(rng.next_u64() % 2001) - 1000);

    crypto::ChaCha20Prg prg(crypto::Block128{17, 18});
    const SecretKey sk = ctx.keygen(prg);
    Ciphertext ct = ctx.encrypt(enc.encode_input(x), sk, prg);
    ctx.to_ntt(ct);

    std::vector<Ring> got;
    for (std::int64_t b = 0; b < enc.num_blocks(); ++b) {
        Ciphertext acc = ctx.make_accumulator();
        ctx.multiply_plain_accumulate(ct, ctx.lift_to_ntt(enc.encode_weight_block(w, b)), acc);
        ctx.from_ntt(acc);
        const auto poly = ctx.decrypt(acc, sk);
        const auto rows = enc.gather_outputs(poly, b);
        got.insert(got.end(), rows.begin(), rows.end());
    }
    ASSERT_EQ(got.size(), static_cast<std::size_t>(out));
    for (std::int64_t o = 0; o < out; ++o) {
        Ring want = 0;
        for (std::int64_t j = 0; j < in; ++j)
            want += x[static_cast<std::size_t>(j)] * w[static_cast<std::size_t>(o * in + j)];
        EXPECT_EQ(got[static_cast<std::size_t>(o)], want) << o;
    }
}

TEST(ConvEncoding, GroupingRespectsRingCapacity) {
    BfvContext::Params params;
    params.n = 1024;
    const BfvContext ctx(params);
    // 10x10 padded to 12x12 = 144; 1024/144 = 7 channels per group.
    const ConvGeometry geo{.in_channels = 16, .height = 10, .width = 10, .out_channels = 1,
                           .kernel = 3, .stride = 1, .pad = 1};
    const ConvEncoder enc(ctx, geo);
    EXPECT_EQ(enc.channels_per_group(), 7);
    EXPECT_EQ(enc.num_groups(), 3);
    EXPECT_LE(enc.channels_per_group() * geo.padded_h() * geo.padded_w(),
              static_cast<std::int64_t>(ctx.n()));
}

TEST(ConvEncoding, ScatterGatherRoundTrip) {
    BfvContext::Params params;
    params.n = 256;
    const BfvContext ctx(params);
    const ConvGeometry geo{.in_channels = 1, .height = 6, .width = 6, .out_channels = 1,
                           .kernel = 3, .stride = 1, .pad = 1};
    const ConvEncoder enc(ctx, geo);
    c2pi::Rng rng(13);
    std::vector<Ring> vals(static_cast<std::size_t>(geo.out_h() * geo.out_w()));
    for (auto& v : vals) v = rng.next_u64();
    EXPECT_EQ(enc.gather_outputs(enc.scatter_outputs(vals)), vals);
}

}  // namespace
}  // namespace c2pi::he
