// Unit tests for core utilities: RNG determinism and statistics,
// fixed-point codec round-trips, error helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/error.hpp"
#include "core/fixed_point.hpp"
#include "core/rng.hpp"

namespace c2pi {
namespace {

TEST(Rng, DeterministicFromSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const float u = rng.uniform(-0.5F, 0.5F);
        EXPECT_GE(u, -0.5F);
        EXPECT_LT(u, 0.5F);
    }
}

TEST(Rng, UniformIndexInRange) {
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_index(10);
        EXPECT_LT(v, 10U);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10U);  // all buckets hit over 1000 draws
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
    Rng rng(11);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(3);
    std::vector<std::size_t> v(50);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
    rng.shuffle(v);
    std::set<std::size_t> s(v.begin(), v.end());
    EXPECT_EQ(s.size(), 50U);
}

TEST(FixedPoint, EncodeDecodeRoundTrip) {
    const FixedPointFormat fmt{.frac_bits = 16};
    for (const double v : {0.0, 1.0, -1.0, 0.5, -0.25, 123.456, -98.75, 1e-3}) {
        EXPECT_NEAR(fmt.decode(fmt.encode(v)), v, 1.0 / fmt.scale());
    }
}

TEST(FixedPoint, AdditiveHomomorphism) {
    const FixedPointFormat fmt{.frac_bits = 16};
    const Ring a = fmt.encode(3.25), b = fmt.encode(-1.75);
    EXPECT_NEAR(fmt.decode(a + b), 1.5, 2.0 / fmt.scale());
}

TEST(FixedPoint, ProductNeedsTruncation) {
    const FixedPointFormat fmt{.frac_bits = 16};
    const Ring a = fmt.encode(2.0), b = fmt.encode(3.0);
    const Ring prod = fmt.truncate(a * b);
    EXPECT_NEAR(fmt.decode(prod), 6.0, 4.0 / fmt.scale());
}

TEST(FixedPoint, NegativeValuesUseTwosComplement) {
    const FixedPointFormat fmt{.frac_bits = 12};
    const Ring r = fmt.encode(-5.5);
    EXPECT_NEAR(fmt.decode(r), -5.5, 1.0 / fmt.scale());
    EXPECT_GT(r, Ring{1} << 62);  // high bit set for negatives
}

TEST(FixedPoint, TruncatePreservesSign) {
    const FixedPointFormat fmt{.frac_bits = 16};
    const Ring neg = fmt.encode(-8.0) * fmt.encode(2.0);
    EXPECT_NEAR(fmt.decode(fmt.truncate(neg)), -16.0, 4.0 / fmt.scale());
}

TEST(Error, RequireThrowsWithLocation) {
    EXPECT_NO_THROW(require(true, "fine"));
    try {
        require(false, "boom");
        FAIL() << "expected throw";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("core_test"), std::string::npos);
    }
}

TEST(Error, FailAlwaysThrows) { EXPECT_THROW(fail("nope"), Error); }

}  // namespace
}  // namespace c2pi
