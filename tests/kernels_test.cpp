// Differential tests for the SIMD kernel layer (he/kernels*.cpp): every
// variant the CPU can run (scalar, AVX2, AVX-512) is driven with
// identical inputs and must produce bit-identical outputs — the SIMD
// tiers are required to reproduce the scalar lazy-reduction sequence
// exactly, not merely compute congruent values. Coverage includes
// lazy-reduction boundary values (near p, 2p and 4p), non-multiple-of-
// vector-width lengths (tail loops), the small-n scalar fallback inside
// the SIMD NTTs, and ChaCha20 counter propagation across 32-bit wraps.

#include <gtest/gtest.h>

#include <cstring>
#include <iostream>
#include <random>
#include <vector>

#include "crypto/chacha20.hpp"
#include "he/kernels.hpp"
#include "he/modmath.hpp"
#include "he/ntt.hpp"

namespace {

using c2pi::he::u64;
namespace kernels = c2pi::he::kernels;

u64 test_prime(std::size_t n) { return c2pi::he::next_ntt_prime((1ULL << 49) + 1, 2 * n); }

/// Random values biased toward the lazy-reduction boundaries: the SIMD
/// compare/select sequences are most likely to diverge from the scalar
/// branches exactly at p, 2p and 4p.
std::vector<u64> boundary_biased(std::mt19937_64& rng, std::size_t n, u64 p, u64 bound) {
    std::vector<u64> v(n);
    const u64 edges[] = {0,      1,          p - 1,     p,     p + 1,
                         2 * p - 1, 2 * p,   2 * p + 1, 4 * p - 1, bound - 1};
    for (auto& x : v) {
        if (rng() % 4 == 0) {
            x = edges[rng() % std::size(edges)];
            if (x >= bound) x = bound - 1;
        } else {
            x = rng() % bound;
        }
    }
    return v;
}

class KernelsTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        std::cout << "[ kernels  ] active tier: " << kernels::active().name
                  << " (supported:";
        for (const auto* k : kernels::supported()) std::cout << ' ' << k->name;
        std::cout << ")\n";
    }
};

TEST_F(KernelsTest, DispatchListSane) {
    const auto& variants = kernels::supported();
    ASSERT_FALSE(variants.empty());
    EXPECT_EQ(variants.front()->tier, kernels::Tier::kScalar);
    EXPECT_NE(kernels::by_name("scalar"), nullptr);
    EXPECT_EQ(kernels::by_name("nonsense"), nullptr);
    for (const auto* k : variants) {
        EXPECT_TRUE(kernels::cpu_supports(k->tier)) << k->name;
        EXPECT_NE(k->ntt_forward, nullptr);
        EXPECT_NE(k->ntt_inverse, nullptr);
        EXPECT_NE(k->mul_shoup, nullptr);
        EXPECT_NE(k->mul_shoup_accumulate, nullptr);
        EXPECT_NE(k->fold_delta, nullptr);
        EXPECT_NE(k->mod_switch_4to2, nullptr);
        EXPECT_NE(k->chacha20_blocks, nullptr);
    }
}

TEST_F(KernelsTest, NttForwardBitIdenticalAcrossVariants) {
    std::mt19937_64 rng(0xC2B1'0001);
    // Small sizes exercise the SIMD TUs' n < 16 scalar fallback; the rest
    // cover every vector stage specialisation (t = 1, 2, 4 tails).
    for (const std::size_t n : {2UL, 4UL, 8UL, 16UL, 32UL, 64UL, 256UL, 1024UL, 4096UL}) {
        const u64 p = test_prime(n);
        const c2pi::he::NttTables tables(p, n);
        for (int rep = 0; rep < 8; ++rep) {
            // Precondition of the lazy forward pass: inputs < 4p.
            const std::vector<u64> input = boundary_biased(rng, n, p, 4 * p);
            std::vector<u64> ref = input;
            tables.forward_with(*kernels::scalar_kernels(), ref);
            for (const auto* k : kernels::supported()) {
                std::vector<u64> got = input;
                tables.forward_with(*k, got);
                ASSERT_EQ(got, ref) << "variant " << k->name << " n=" << n;
            }
        }
    }
}

TEST_F(KernelsTest, NttInverseBitIdenticalAcrossVariants) {
    std::mt19937_64 rng(0xC2B1'0002);
    for (const std::size_t n : {2UL, 4UL, 8UL, 16UL, 32UL, 64UL, 256UL, 1024UL, 4096UL}) {
        const u64 p = test_prime(n);
        const c2pi::he::NttTables tables(p, n);
        for (int rep = 0; rep < 8; ++rep) {
            // Precondition of the lazy inverse pass: inputs < 2p.
            const std::vector<u64> input = boundary_biased(rng, n, p, 2 * p);
            std::vector<u64> ref = input;
            tables.inverse_with(*kernels::scalar_kernels(), ref);
            for (const auto* k : kernels::supported()) {
                std::vector<u64> got = input;
                tables.inverse_with(*k, got);
                ASSERT_EQ(got, ref) << "variant " << k->name << " n=" << n;
            }
        }
    }
}

TEST_F(KernelsTest, MulShoupBitIdenticalIncludingTails) {
    std::mt19937_64 rng(0xC2B1'0003);
    const u64 p = test_prime(4096);
    // Lengths straddling the 4- and 8-lane widths pin the tail loops.
    for (std::size_t n = 1; n <= 33; ++n) {
        const std::vector<u64> a = boundary_biased(rng, n, p, p);
        std::vector<u64> w(n), ws(n);
        for (std::size_t j = 0; j < n; ++j) {
            w[j] = rng() % p;
            ws[j] = c2pi::he::shoup_precompute(w[j], p);
        }
        std::vector<u64> ref(n);
        kernels::scalar_kernels()->mul_shoup(ref.data(), a.data(), w.data(), ws.data(), n, p);
        for (const auto* k : kernels::supported()) {
            std::vector<u64> got(n, 0xDEAD);
            k->mul_shoup(got.data(), a.data(), w.data(), ws.data(), n, p);
            ASSERT_EQ(got, ref) << "variant " << k->name << " n=" << n;
        }
    }
}

TEST_F(KernelsTest, MulShoupAccumulateBitIdenticalIncludingTails) {
    std::mt19937_64 rng(0xC2B1'0004);
    const u64 p = test_prime(4096);
    for (std::size_t n = 1; n <= 33; ++n) {
        const std::vector<u64> a = boundary_biased(rng, n, p, p);
        const std::vector<u64> acc0 = boundary_biased(rng, n, p, p);
        std::vector<u64> w(n), ws(n);
        for (std::size_t j = 0; j < n; ++j) {
            w[j] = rng() % p;
            ws[j] = c2pi::he::shoup_precompute(w[j], p);
        }
        std::vector<u64> ref = acc0;
        kernels::scalar_kernels()->mul_shoup_accumulate(ref.data(), a.data(), w.data(),
                                                        ws.data(), n, p);
        for (const auto* k : kernels::supported()) {
            std::vector<u64> got = acc0;
            k->mul_shoup_accumulate(got.data(), a.data(), w.data(), ws.data(), n, p);
            ASSERT_EQ(got, ref) << "variant " << k->name << " n=" << n;
        }
    }
}

TEST_F(KernelsTest, FoldDeltaBitIdenticalIncludingSignedEdges) {
    std::mt19937_64 rng(0xC2B1'0005);
    const u64 p = test_prime(4096);
    const u64 one_shoup = c2pi::he::reduce_precompute(p);
    const u64 delta = rng() % p;
    const u64 delta_shoup = c2pi::he::shoup_precompute(delta, p);
    for (std::size_t n = 1; n <= 33; ++n) {
        std::vector<u64> plain(n);
        for (auto& x : plain) {
            // Signed-lift edges: INT64_MIN is a legal ring element whose
            // magnitude must be computed without signed overflow.
            switch (rng() % 5) {
                case 0: x = 0x8000000000000000ULL; break;          // INT64_MIN
                case 1: x = 0x7FFFFFFFFFFFFFFFULL; break;          // INT64_MAX
                case 2: x = u64{0} - (rng() % (2 * p)); break;     // small negatives
                default: x = rng(); break;
            }
        }
        const std::vector<u64> c0 = boundary_biased(rng, n, p, p);
        std::vector<u64> ref = c0;
        kernels::scalar_kernels()->fold_delta(ref.data(), plain.data(), n, p, one_shoup,
                                              delta, delta_shoup);
        for (const auto* k : kernels::supported()) {
            std::vector<u64> got = c0;
            k->fold_delta(got.data(), plain.data(), n, p, one_shoup, delta, delta_shoup);
            ASSERT_EQ(got, ref) << "variant " << k->name << " n=" << n;
        }
    }
}

TEST_F(KernelsTest, ModSwitchBitIdenticalIncludingTails) {
    std::mt19937_64 rng(0xC2B1'0006);
    // Four-prime chain exactly as BfvContext builds it.
    const std::size_t ring_n = 4096;
    const u64 step = 2 * ring_n;
    u64 primes[4];
    u64 start = (1ULL << 49) + 1;
    for (auto& q : primes) {
        q = c2pi::he::next_ntt_prime(start, step);
        start = q + 2;
    }
    kernels::ModSwitchConsts c;
    c.q3 = primes[2];
    c.q4 = primes[3];
    c.one_shoup_q4 = c2pi::he::reduce_precompute(primes[3]);
    c.q3_inv = c2pi::he::inv_mod(primes[2] % primes[3], primes[3]);
    c.q3_inv_shoup = c2pi::he::shoup_precompute(c.q3_inv, primes[3]);
    const c2pi::he::u128 drop = static_cast<c2pi::he::u128>(primes[2]) * primes[3];
    for (int i = 0; i < 2; ++i) {
        const u64 p = primes[i];
        c.p[i] = p;
        c.one_shoup[i] = c2pi::he::reduce_precompute(p);
        c.r64[i] = static_cast<u64>((static_cast<c2pi::he::u128>(1) << 64) % p);
        c.r64_shoup[i] = c2pi::he::shoup_precompute(c.r64[i], p);
        c.drop_inv[i] = c2pi::he::inv_mod(static_cast<u64>(drop % p), p);
        c.drop_inv_shoup[i] = c2pi::he::shoup_precompute(c.drop_inv[i], p);
    }
    for (std::size_t n = 1; n <= 33; ++n) {
        const std::vector<u64> l0 = boundary_biased(rng, n, c.p[0], c.p[0]);
        const std::vector<u64> l1 = boundary_biased(rng, n, c.p[1], c.p[1]);
        const std::vector<u64> l2 = boundary_biased(rng, n, c.q3, c.q3);
        const std::vector<u64> l3 = boundary_biased(rng, n, c.q4, c.q4);
        std::vector<u64> ref0 = l0, ref1 = l1;
        kernels::scalar_kernels()->mod_switch_4to2(ref0.data(), ref1.data(), l2.data(),
                                                   l3.data(), n, c);
        for (const auto* k : kernels::supported()) {
            std::vector<u64> got0 = l0, got1 = l1;
            k->mod_switch_4to2(got0.data(), got1.data(), l2.data(), l3.data(), n, c);
            ASSERT_EQ(got0, ref0) << "variant " << k->name << " n=" << n;
            ASSERT_EQ(got1, ref1) << "variant " << k->name << " n=" << n;
        }
    }
}

TEST_F(KernelsTest, ChaCha20BatchesBitIdenticalIncludingTails) {
    std::mt19937_64 rng(0xC2B1'0007);
    for (std::size_t nblocks = 1; nblocks <= 17; ++nblocks) {
        std::uint32_t state[16];
        for (auto& w : state) w = static_cast<std::uint32_t>(rng());
        std::vector<std::uint8_t> ref(nblocks * 64);
        kernels::scalar_kernels()->chacha20_blocks(state, ref.data(), nblocks);
        for (const auto* k : kernels::supported()) {
            std::vector<std::uint8_t> got(nblocks * 64, 0xAA);
            k->chacha20_blocks(state, got.data(), nblocks);
            ASSERT_EQ(got, ref) << "variant " << k->name << " nblocks=" << nblocks;
        }
    }
}

TEST_F(KernelsTest, ChaCha20CounterWrapsIdentically) {
    std::mt19937_64 rng(0xC2B1'0008);
    std::uint32_t state[16];
    for (auto& w : state) w = static_cast<std::uint32_t>(rng());
    // Straddle the 32-bit boundary of the 64-bit effective counter inside
    // a single batch: per-lane carry handling must match the scalar loop.
    state[12] = 0xFFFFFFFCU;
    state[13] = 0x12345678U;
    constexpr std::size_t nblocks = 12;
    std::vector<std::uint8_t> ref(nblocks * 64);
    kernels::scalar_kernels()->chacha20_blocks(state, ref.data(), nblocks);
    for (const auto* k : kernels::supported()) {
        std::vector<std::uint8_t> got(nblocks * 64, 0);
        k->chacha20_blocks(state, got.data(), nblocks);
        ASSERT_EQ(got, ref) << "variant " << k->name;
    }
}

// Independent RFC 8439 reference (written against the spec, not the
// library) — pins the ChaCha20Prg byte stream across the batching
// change: buffered refills, direct bulk fills and ragged reads must all
// produce the exact keystream of sequential single blocks.
void reference_block(const std::uint32_t in[16], std::uint8_t out[64]) {
    auto qr = [](std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
        auto rot = [](std::uint32_t x, int r) { return (x << r) | (x >> (32 - r)); };
        a += b; d ^= a; d = rot(d, 16);
        c += d; b ^= c; b = rot(b, 12);
        a += b; d ^= a; d = rot(d, 8);
        c += d; b ^= c; b = rot(b, 7);
    };
    std::uint32_t x[16];
    std::memcpy(x, in, sizeof(x));
    for (int i = 0; i < 10; ++i) {
        qr(x[0], x[4], x[8], x[12]);
        qr(x[1], x[5], x[9], x[13]);
        qr(x[2], x[6], x[10], x[14]);
        qr(x[3], x[7], x[11], x[15]);
        qr(x[0], x[5], x[10], x[15]);
        qr(x[1], x[6], x[11], x[12]);
        qr(x[2], x[7], x[8], x[13]);
        qr(x[3], x[4], x[9], x[14]);
    }
    for (int i = 0; i < 16; ++i) {
        const std::uint32_t v = x[i] + in[i];
        std::memcpy(out + 4 * i, &v, 4);
    }
}

TEST_F(KernelsTest, PrgStreamUnchangedByBatching) {
    const c2pi::crypto::Block128 seed{0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL};
    const std::uint64_t nonce = 42;

    // Reference keystream: sequential blocks of the RFC function.
    std::uint8_t key[32];
    seed.to_bytes(key);
    seed.to_bytes(key + 16);
    std::uint32_t state[16] = {0x61707865, 0x3320646E, 0x79622D32, 0x6B206574};
    std::memcpy(&state[4], key, 32);
    state[12] = 0;
    state[13] = static_cast<std::uint32_t>(nonce);
    state[14] = static_cast<std::uint32_t>(nonce >> 32);
    state[15] = 0;
    constexpr std::size_t total = 4096;
    std::vector<std::uint8_t> expect(total);
    for (std::size_t off = 0; off < total; off += 64) {
        reference_block(state, expect.data() + off);
        if (++state[12] == 0) ++state[13];
    }

    // Ragged reads spanning buffered refills and the direct bulk path.
    c2pi::crypto::ChaCha20Prg prg(seed, nonce);
    std::vector<std::uint8_t> got;
    got.reserve(total);
    const std::size_t chunks[] = {1, 3, 8, 60, 5, 64, 129, 7, 256, 1000, 31};
    std::size_t ci = 0;
    while (got.size() < total) {
        std::size_t take = std::min(chunks[ci++ % std::size(chunks)], total - got.size());
        std::vector<std::uint8_t> piece(take);
        prg.fill_bytes(piece);
        got.insert(got.end(), piece.begin(), piece.end());
    }
    EXPECT_EQ(got, expect);
}

TEST_F(KernelsTest, NttRoundTripPerVariant) {
    std::mt19937_64 rng(0xC2B1'0009);
    for (const std::size_t n : {16UL, 1024UL}) {
        const u64 p = test_prime(n);
        const c2pi::he::NttTables tables(p, n);
        for (const auto* k : kernels::supported()) {
            std::vector<u64> a(n);
            for (auto& x : a) x = rng() % p;
            std::vector<u64> b = a;
            tables.forward_with(*k, b);
            tables.inverse_with(*k, b);
            ASSERT_EQ(b, a) << "variant " << k->name << " n=" << n;
        }
    }
}

}  // namespace
