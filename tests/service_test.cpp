// Serve-many API tests: one const CompiledModel shared by many concurrent
// ServerSession/ClientSession pairs must produce bit-identical logits to
// sequential runs; batched InferenceService output must match independent
// run() calls request-for-request (same per-phase ChannelStats) while
// executing the revealed clear tail as exactly ONE batched plaintext
// pass; option validation must reject bad formats/ring degrees/boundaries
// at the API boundary with typed c2pi::Error.

#include <gtest/gtest.h>

#include <thread>

#include "nn/layers.hpp"
#include "nn/sequential.hpp"
#include "pi/service.hpp"

namespace c2pi::pi {
namespace {

/// Small conv net: 2 convs + 2 FCs on 16x16 RGB inputs (same topology as
/// pi_test.cpp's model — big enough to exercise conv, pooling, ReLU and
/// FC protocols, small enough for fast MPC in tests).
nn::Sequential make_test_model(std::uint64_t seed = 7) {
    Rng rng(seed);
    nn::Sequential m;
    m.emplace<nn::Conv2d>(3, 6, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::MaxPool2d>(2, 2);
    m.emplace<nn::Conv2d>(6, 8, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::MaxPool2d>(2, 2);
    m.emplace<nn::Flatten>();
    m.emplace<nn::Linear>(8 * 4 * 4, 16, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::Linear>(16, 10, rng);
    return m;
}

CompiledModel::Options small_compile_options() {
    CompiledModel::Options opts;
    opts.input_chw = {3, 16, 16};
    opts.he_ring_degree = 1024;
    return opts;
}

std::vector<Tensor> make_inputs(std::size_t n) {
    std::vector<Tensor> inputs;
    for (std::size_t i = 0; i < n; ++i) {
        Rng rng(100 + i);
        inputs.push_back(Tensor::uniform({1, 3, 16, 16}, rng, 0.0F, 1.0F));
    }
    return inputs;
}

// ----------------------------------------------------------- concurrency ---

TEST(CompiledModelSharing, ConcurrentSessionsMatchSequentialBitwise) {
    const nn::Sequential model = make_test_model();
    auto copts = small_compile_options();
    copts.boundary = nn::CutPoint{.linear_index = 2, .after_relu = true};
    const CompiledModel compiled(model, copts);  // compiled ONCE, shared const
    const SessionConfig config{.noise_lambda = 0.05F, .seed = 42};

    constexpr std::size_t kSessions = 4;
    const auto inputs = make_inputs(kSessions);

    // Sequential reference runs.
    std::vector<Tensor> sequential;
    for (const auto& x : inputs)
        sequential.push_back(run_private_inference(compiled, config, x).logits);

    // The same runs, all in flight at once against the same const artifact
    // (each run itself spawns a server and a client thread).
    std::vector<Tensor> concurrent(kSessions);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kSessions; ++i)
        threads.emplace_back([&, i] {
            concurrent[i] = run_private_inference(compiled, config, inputs[i]).logits;
        });
    for (auto& t : threads) t.join();

    for (std::size_t i = 0; i < kSessions; ++i) {
        ASSERT_TRUE(concurrent[i].same_shape(sequential[i])) << "session " << i;
        EXPECT_TRUE(concurrent[i].allclose(sequential[i], 0.0F))
            << "session " << i << " diverged from its sequential twin";
    }
}

TEST(CompiledModelSharing, FullPiConcurrentSessionsAlsoDeterministic) {
    const nn::Sequential model = make_test_model();
    const CompiledModel compiled(model, small_compile_options());
    const SessionConfig config{.seed = 9};

    constexpr std::size_t kSessions = 4;
    const auto inputs = make_inputs(kSessions);
    std::vector<Tensor> sequential;
    for (const auto& x : inputs)
        sequential.push_back(run_private_inference(compiled, config, x).logits);

    std::vector<Tensor> concurrent(kSessions);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kSessions; ++i)
        threads.emplace_back([&, i] {
            concurrent[i] = run_private_inference(compiled, config, inputs[i]).logits;
        });
    for (auto& t : threads) t.join();
    for (std::size_t i = 0; i < kSessions; ++i)
        EXPECT_TRUE(concurrent[i].allclose(sequential[i], 0.0F)) << "session " << i;
}

// -------------------------------------------------------------- batching ---

TEST(InferenceService, BatchMatchesIndependentRuns) {
    const nn::Sequential model = make_test_model();
    auto copts = small_compile_options();
    copts.boundary = nn::CutPoint{.linear_index = 2, .after_relu = true};
    const CompiledModel compiled(model, copts);
    const InferenceService service(compiled, SessionConfig{.noise_lambda = 0.1F, .seed = 5});

    constexpr std::size_t kBatch = 4;
    const auto inputs = make_inputs(kBatch);
    const auto batch = service.run_batch(inputs);
    ASSERT_EQ(batch.results.size(), kBatch);

    for (std::size_t i = 0; i < kBatch; ++i) {
        const PiResult individual = service.run(inputs[i]);
        ASSERT_TRUE(batch.results[i].logits.same_shape(individual.logits)) << i;
        EXPECT_TRUE(batch.results[i].logits.allclose(individual.logits, 0.0F))
            << "request " << i << " differs between batched and independent serving";
        // Per-phase traffic accounting must be request-for-request
        // identical: batching changes where the tail executes, not the
        // protocol transcript.
        EXPECT_EQ(batch.results[i].stats.offline_bytes, individual.stats.offline_bytes) << i;
        EXPECT_EQ(batch.results[i].stats.online_bytes, individual.stats.online_bytes) << i;
        EXPECT_EQ(batch.results[i].stats.offline_flights, individual.stats.offline_flights) << i;
        EXPECT_EQ(batch.results[i].stats.online_flights, individual.stats.online_flights) << i;
    }

    // The aggregate traffic is the sum over requests.
    std::uint64_t bytes = 0;
    for (const auto& r : batch.results) bytes += r.stats.total_bytes();
    EXPECT_EQ(batch.aggregate.total_bytes(), bytes);
}

TEST(InferenceService, BatchedClearTailIsASinglePass) {
    const nn::Sequential model = make_test_model();
    auto copts = small_compile_options();
    copts.boundary = nn::CutPoint{.linear_index = 2, .after_relu = true};
    const CompiledModel compiled(model, copts);
    const InferenceService service(compiled, SessionConfig{.seed = 5});

    constexpr std::size_t kBatch = 5;
    const auto inputs = make_inputs(kBatch);

    const std::uint64_t passes_before = compiled.clear_tail_passes();
    const auto batch = service.run_batch(inputs);
    EXPECT_EQ(compiled.clear_tail_passes() - passes_before, 1U)
        << "a batch must coalesce all clear tails into one plaintext pass";

    // By contrast, independent serving pays one pass per request.
    for (const auto& x : inputs) (void)service.run(x);
    EXPECT_EQ(compiled.clear_tail_passes() - passes_before, 1U + kBatch);

    for (const auto& r : batch.results) {
        EXPECT_EQ(r.crypto_linear_ops, 2);
        EXPECT_EQ(r.hidden_linear_ops, 2);
    }
}

TEST(InferenceService, FullPiBatchHasNoClearTail) {
    const nn::Sequential model = make_test_model();
    const CompiledModel compiled(model, small_compile_options());
    const InferenceService service(compiled, SessionConfig{});

    const auto inputs = make_inputs(2);
    const auto batch = service.run_batch(inputs);
    EXPECT_EQ(compiled.clear_tail_passes(), 0U);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const PiResult individual = service.run(inputs[i]);
        EXPECT_TRUE(batch.results[i].logits.allclose(individual.logits, 0.0F)) << i;
    }
}

TEST(InferenceService, EmptyBatchIsRejected) {
    const nn::Sequential model = make_test_model();
    const CompiledModel compiled(model, small_compile_options());
    const InferenceService service(compiled, SessionConfig{});
    EXPECT_THROW((void)service.run_batch({}), Error);
}

// ------------------------------------------------------------ validation ---

TEST(CompiledModelValidation, RejectsBadFixedPointFormat) {
    const nn::Sequential model = make_test_model();
    for (const int frac_bits : {0, -3, 30, 40}) {
        auto copts = small_compile_options();
        copts.fmt.frac_bits = frac_bits;
        EXPECT_THROW(CompiledModel(model, copts), Error) << "frac_bits=" << frac_bits;
    }
    auto ok = small_compile_options();
    ok.fmt.frac_bits = 12;
    EXPECT_NO_THROW(CompiledModel(model, ok));
}

TEST(CompiledModelValidation, RejectsNonPowerOfTwoRingDegree) {
    const nn::Sequential model = make_test_model();
    for (const std::size_t n : {std::size_t{0}, std::size_t{1000}, std::size_t{4097}}) {
        auto copts = small_compile_options();
        copts.he_ring_degree = n;
        EXPECT_THROW(CompiledModel(model, copts), Error) << "n=" << n;
    }
}

TEST(CompiledModelValidation, RejectsBoundaryPastLastLinearOp) {
    const nn::Sequential model = make_test_model();  // 4 linear ops
    for (const std::int64_t idx : {std::int64_t{0}, std::int64_t{5}, std::int64_t{-1}}) {
        auto copts = small_compile_options();
        copts.boundary = nn::CutPoint{.linear_index = idx, .after_relu = false};
        EXPECT_THROW(CompiledModel(model, copts), Error) << "linear_index=" << idx;
    }
    // A ".5" position whose linear op has no following ReLU is also caught
    // at compile time (the final classifier op here).
    auto copts = small_compile_options();
    copts.boundary = nn::CutPoint{.linear_index = 4, .after_relu = true};
    EXPECT_THROW(CompiledModel(model, copts), Error);
}

TEST(CompiledModelValidation, RejectsBadInputShape) {
    const nn::Sequential model = make_test_model();
    auto copts = small_compile_options();
    copts.input_chw = {3, 16};  // not [C,H,W]
    EXPECT_THROW(CompiledModel(model, copts), Error);
}

TEST(SessionValidation, RejectsMismatchedClientInput) {
    const nn::Sequential model = make_test_model();
    const CompiledModel compiled(model, small_compile_options());
    Rng rng(1);
    const Tensor wrong = Tensor::uniform({1, 3, 8, 8}, rng, 0.0F, 1.0F);
    EXPECT_THROW((void)run_private_inference(compiled, SessionConfig{}, wrong), Error);
}

}  // namespace
}  // namespace c2pi::pi
