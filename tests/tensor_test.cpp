// Unit + property tests for the tensor library: shape handling, matmul
// against brute force, conv/pool forward against naive reference, and
// gradient checks of every backward kernel via central finite differences.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace c2pi {
namespace {

using ops::ConvSpec;

TEST(Tensor, ConstructionAndShape) {
    Tensor t({2, 3, 4, 5});
    EXPECT_EQ(t.numel(), 120);
    EXPECT_EQ(t.rank(), 4);
    EXPECT_EQ(t.dim(2), 4);
    EXPECT_FLOAT_EQ(t[0], 0.0F);
}

TEST(Tensor, RejectsNonPositiveDims) {
    EXPECT_THROW(Tensor({2, 0}), Error);
    EXPECT_THROW(Tensor({-1}), Error);
}

TEST(Tensor, At4dIndexing) {
    Tensor t({2, 3, 4, 4});
    t.at(1, 2, 3, 3) = 7.0F;
    EXPECT_FLOAT_EQ(t[t.numel() - 1], 7.0F);
}

TEST(Tensor, ReshapePreservesData) {
    Rng rng(1);
    const Tensor t = Tensor::randn({3, 8}, rng);
    const Tensor r = t.reshaped({4, 6});
    EXPECT_EQ(r.numel(), t.numel());
    for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], r[i]);
    EXPECT_THROW(t.reshaped({5, 5}), Error);
}

TEST(Tensor, AllcloseDetectsDifferences) {
    Tensor a({4}), b({4});
    EXPECT_TRUE(a.allclose(b));
    b[2] = 1e-3F;
    EXPECT_FALSE(a.allclose(b, 1e-5F));
    EXPECT_TRUE(a.allclose(b, 1e-2F));
}

TEST(TensorOps, ElementwiseArithmetic) {
    Tensor a({2, 2}, {1, 2, 3, 4});
    Tensor b({2, 2}, {5, 6, 7, 8});
    EXPECT_TRUE(ops::add(a, b).allclose(Tensor({2, 2}, {6, 8, 10, 12})));
    EXPECT_TRUE(ops::sub(b, a).allclose(Tensor({2, 2}, {4, 4, 4, 4})));
    EXPECT_TRUE(ops::mul(a, b).allclose(Tensor({2, 2}, {5, 12, 21, 32})));
    EXPECT_TRUE(ops::scale(a, 2.0F).allclose(Tensor({2, 2}, {2, 4, 6, 8})));
}

TEST(TensorOps, Reductions) {
    Tensor a({4}, {1, -2, 3, -4});
    EXPECT_FLOAT_EQ(ops::sum(a), -2.0F);
    EXPECT_FLOAT_EQ(ops::mean(a), -0.5F);
    EXPECT_FLOAT_EQ(ops::max_abs(a), 4.0F);
    EXPECT_DOUBLE_EQ(ops::squared_distance(a, a), 0.0);
}

TEST(TensorOps, MatmulMatchesBruteForce) {
    Rng rng(2);
    const Tensor a = Tensor::randn({5, 7}, rng);
    const Tensor b = Tensor::randn({7, 3}, rng);
    const Tensor c = ops::matmul(a, b);
    for (std::int64_t i = 0; i < 5; ++i)
        for (std::int64_t j = 0; j < 3; ++j) {
            float acc = 0.0F;
            for (std::int64_t k = 0; k < 7; ++k) acc += a.at(i, k) * b.at(k, j);
            EXPECT_NEAR(c.at(i, j), acc, 1e-4F);
        }
}

TEST(TensorOps, MatmulShapeChecks) {
    Tensor a({2, 3}), b({4, 2});
    EXPECT_THROW(ops::matmul(a, b), Error);
}

TEST(TensorOps, TransposeRoundTrip) {
    Rng rng(3);
    const Tensor a = Tensor::randn({4, 6}, rng);
    EXPECT_TRUE(ops::transpose2d(ops::transpose2d(a)).allclose(a));
}

/// Naive direct convolution used as the reference implementation.
Tensor conv_reference(const Tensor& x, const Tensor& w, const Tensor& bias, const ConvSpec& s) {
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), ww = x.dim(3);
    const std::int64_t o = w.dim(0), oh = s.out_dim(h), ow = s.out_dim(ww);
    Tensor y({n, o, oh, ow});
    for (std::int64_t b = 0; b < n; ++b)
        for (std::int64_t oc = 0; oc < o; ++oc)
            for (std::int64_t oy = 0; oy < oh; ++oy)
                for (std::int64_t ox = 0; ox < ow; ++ox) {
                    float acc = bias.empty() ? 0.0F : bias[oc];
                    for (std::int64_t ic = 0; ic < c; ++ic)
                        for (std::int64_t ky = 0; ky < s.kernel; ++ky)
                            for (std::int64_t kx = 0; kx < s.kernel; ++kx) {
                                const std::int64_t iy = oy * s.stride - s.pad + ky * s.dilation;
                                const std::int64_t ix = ox * s.stride - s.pad + kx * s.dilation;
                                if (iy < 0 || iy >= h || ix < 0 || ix >= ww) continue;
                                acc += x.at(b, ic, iy, ix) * w.at(oc, ic, ky, kx);
                            }
                    y.at(b, oc, oy, ox) = acc;
                }
    return y;
}

struct ConvCase {
    std::int64_t in_c, out_c, hw, kernel, stride, pad, dilation;
};

class ConvParamTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvParamTest, MatchesNaiveReference) {
    const auto p = GetParam();
    Rng rng(17);
    const ConvSpec spec{.kernel = p.kernel, .stride = p.stride, .pad = p.pad, .dilation = p.dilation};
    const Tensor x = Tensor::randn({2, p.in_c, p.hw, p.hw}, rng);
    const Tensor w = Tensor::randn({p.out_c, p.in_c, p.kernel, p.kernel}, rng);
    const Tensor bias = Tensor::randn({p.out_c}, rng);
    const Tensor got = ops::conv2d(x, w, bias, spec);
    const Tensor want = conv_reference(x, w, bias, spec);
    EXPECT_TRUE(got.allclose(want, 1e-3F)) << "conv mismatch";
}

INSTANTIATE_TEST_SUITE_P(ConvShapes, ConvParamTest,
                         ::testing::Values(ConvCase{3, 8, 8, 3, 1, 1, 1},
                                           ConvCase{1, 4, 7, 3, 1, 1, 1},
                                           ConvCase{4, 4, 8, 1, 1, 0, 1},
                                           ConvCase{2, 6, 9, 3, 2, 1, 1},
                                           ConvCase{3, 5, 10, 5, 1, 2, 1},
                                           ConvCase{2, 3, 12, 3, 1, 2, 2},
                                           ConvCase{4, 2, 8, 3, 1, 3, 3}));

TEST(TensorOps, MaxPoolForward) {
    Tensor x({1, 1, 4, 4}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
    const auto res = ops::maxpool2d(x, 2, 2);
    EXPECT_TRUE(res.output.allclose(Tensor({1, 1, 2, 2}, {6, 8, 14, 16})));
}

TEST(TensorOps, AvgPoolForward) {
    Tensor x({1, 1, 4, 4}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
    const auto y = ops::avgpool2d(x, 2, 2);
    EXPECT_TRUE(y.allclose(Tensor({1, 1, 2, 2}, {3.5F, 5.5F, 11.5F, 13.5F})));
}

TEST(TensorOps, UpsampleNearest) {
    Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
    const Tensor y = ops::upsample_nearest(x, 2);
    EXPECT_TRUE(y.allclose(Tensor({1, 1, 4, 4}, {1, 1, 2, 2, 1, 1, 2, 2, 3, 3, 4, 4, 3, 3, 4, 4})));
}

TEST(TensorOps, ReluForwardBackward) {
    Tensor x({4}, {-1, 0, 2, -3});
    EXPECT_TRUE(ops::relu(x).allclose(Tensor({4}, {0, 0, 2, 0})));
    Tensor g({4}, {1, 1, 1, 1});
    EXPECT_TRUE(ops::relu_backward(g, x).allclose(Tensor({4}, {0, 0, 1, 0})));
}

TEST(TensorOps, SoftmaxRowsSumToOne) {
    Rng rng(5);
    const Tensor logits = Tensor::randn({6, 10}, rng, 3.0F);
    const Tensor p = ops::softmax(logits);
    for (std::int64_t i = 0; i < 6; ++i) {
        float row = 0.0F;
        for (std::int64_t j = 0; j < 10; ++j) {
            EXPECT_GE(p.at(i, j), 0.0F);
            row += p.at(i, j);
        }
        EXPECT_NEAR(row, 1.0F, 1e-5F);
    }
}

TEST(TensorOps, CrossEntropyGradientMatchesFiniteDifference) {
    Rng rng(6);
    Tensor logits = Tensor::randn({3, 5}, rng);
    const std::vector<std::int64_t> labels{1, 4, 0};
    const auto base = ops::softmax_cross_entropy(logits, labels);
    const float eps = 1e-3F;
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
        Tensor lp = logits, lm = logits;
        lp[i] += eps;
        lm[i] -= eps;
        const float num =
            (ops::softmax_cross_entropy(lp, labels).loss - ops::softmax_cross_entropy(lm, labels).loss) /
            (2 * eps);
        EXPECT_NEAR(base.grad_logits[i], num, 5e-3F);
    }
}

TEST(TensorOps, MseLossAndGradient) {
    Tensor a({3}, {1, 2, 3});
    Tensor b({3}, {1, 0, 6});
    const auto r = ops::mse_loss(a, b);
    EXPECT_NEAR(r.loss, (0 + 4 + 9) / 3.0F, 1e-6F);
    EXPECT_NEAR(r.grad_logits[1], 2.0F * 2 / 3, 1e-6F);
    EXPECT_NEAR(r.grad_logits[2], 2.0F * -3 / 3, 1e-6F);
}

/// Finite-difference check of conv backward (input and weight gradients)
/// through a scalar loss L = sum(conv(x, w)).
TEST(TensorOps, ConvBackwardMatchesFiniteDifference) {
    Rng rng(8);
    const ConvSpec spec{.kernel = 3, .stride = 1, .pad = 1, .dilation = 1};
    Tensor x = Tensor::randn({1, 2, 5, 5}, rng);
    Tensor w = Tensor::randn({3, 2, 3, 3}, rng);
    Tensor bias = Tensor::randn({3}, rng);

    const Tensor y = ops::conv2d(x, w, bias, spec);
    Tensor gy(y.shape());
    gy.fill(1.0F);

    const Tensor gx = ops::conv2d_backward_input(gy, w, x.shape(), spec);
    Tensor gw({3, 2, 3, 3}), gb({3});
    ops::conv2d_backward_params(gy, x, spec, gw, gb);

    const float eps = 1e-2F;
    for (const std::int64_t i : {0L, 7L, 24L, 49L}) {
        Tensor xp = x, xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        const float num = (ops::sum(ops::conv2d(xp, w, bias, spec)) -
                           ops::sum(ops::conv2d(xm, w, bias, spec))) /
                          (2 * eps);
        EXPECT_NEAR(gx[i], num, 2e-2F);
    }
    for (const std::int64_t i : {0L, 5L, 17L, 53L}) {
        Tensor wp = w, wm = w;
        wp[i] += eps;
        wm[i] -= eps;
        const float num = (ops::sum(ops::conv2d(x, wp, bias, spec)) -
                           ops::sum(ops::conv2d(x, wm, bias, spec))) /
                          (2 * eps);
        EXPECT_NEAR(gw[i], num, 2e-2F);
    }
    for (std::int64_t i = 0; i < 3; ++i) EXPECT_NEAR(gb[i], 25.0F, 1e-3F);
}

TEST(TensorOps, MaxPoolBackwardRoutesToArgmax) {
    Tensor x({1, 1, 2, 2}, {1, 5, 2, 3});
    const auto res = ops::maxpool2d(x, 2, 2);
    Tensor gy({1, 1, 1, 1}, {10});
    const Tensor gx = ops::maxpool2d_backward(gy, x.shape(), res.argmax);
    EXPECT_TRUE(gx.allclose(Tensor({1, 1, 2, 2}, {0, 10, 0, 0})));
}

TEST(TensorOps, AvgPoolBackwardSpreadsUniformly) {
    Tensor gy({1, 1, 1, 1}, {8});
    const Tensor gx = ops::avgpool2d_backward(gy, {1, 1, 2, 2}, 2, 2);
    EXPECT_TRUE(gx.allclose(Tensor({1, 1, 2, 2}, {2, 2, 2, 2})));
}

TEST(TensorOps, UpsampleBackwardAccumulates) {
    Tensor gy({1, 1, 2, 2}, {1, 2, 3, 4});
    const Tensor gx = ops::upsample_nearest_backward(gy, 2);
    EXPECT_EQ(gx.dim(2), 1);
    EXPECT_FLOAT_EQ(gx[0], 10.0F);
}

TEST(TensorOps, Im2ColCol2ImAdjoint) {
    // <im2col(x), y> == <x, col2im(y)> — adjointness property that makes
    // conv backward correct for arbitrary geometry.
    Rng rng(9);
    const ConvSpec spec{.kernel = 3, .stride = 2, .pad = 1, .dilation = 1};
    const Tensor x = Tensor::randn({1, 2, 6, 6}, rng);
    const Tensor cx = ops::im2col(x, spec);
    const Tensor y = Tensor::randn(cx.shape(), rng);
    const Tensor ay = ops::col2im(y, x.shape(), spec);
    double lhs = 0.0, rhs = 0.0;
    for (std::int64_t i = 0; i < cx.numel(); ++i) lhs += static_cast<double>(cx[i]) * y[i];
    for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * ay[i];
    EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(TensorOps, ClampBounds) {
    Tensor a({4}, {-2, 0.5F, 2, 0});
    EXPECT_TRUE(ops::clamp(a, 0.0F, 1.0F).allclose(Tensor({4}, {0, 0.5F, 1, 0})));
}

}  // namespace
}  // namespace c2pi
